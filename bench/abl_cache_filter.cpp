// Ablation — the neighbour-cache redundancy filter. Algorithm 3's
// per-edge `nbrs` values let the engine prove an update_all_nbrs send
// useless (the neighbour's monotone state is already no-worse). This
// bench toggles the filter and reports saturation event rate plus the
// total message volume per algorithm.
#include <cstdio>

#include "bench_util.hpp"

using namespace remo;
using namespace remo::bench;

namespace {

struct Outcome {
  double rate = 0;
  std::uint64_t messages = 0;
};

template <typename Setup>
Outcome run(const EdgeList& edges, RankId ranks, bool filter, int repeats,
            Setup&& setup) {
  Outcome out;
  std::vector<double> rates;
  for (int rep = 0; rep < repeats; ++rep) {
    EngineConfig cfg;
    cfg.num_ranks = ranks;
    cfg.nbr_cache_filter = filter;
    Engine engine(cfg);
    setup(engine);
    const StreamSet streams = make_streams(edges, ranks, StreamOptions{.seed = 7});
    rates.push_back(engine.ingest(streams).events_per_second);
    out.messages = engine.metrics().messages_sent;
  }
  out.rate = mean(rates);
  return out;
}

}  // namespace

int main() {
  const int repeats = repeats_from_env();
  const RankId ranks = ranks_from_env({2})[0];
  const Dataset data = make_synth_twitter(bench_scale_from_env());
  const VertexId source = data.edges.front().src;

  print_banner("Ablation — neighbour-cache redundancy filter",
               strfmt("dataset %s (|E|=%s), %u ranks, %d repeats",
                      data.name.c_str(), with_commas(data.edges.size()).c_str(),
                      ranks, repeats));

  struct Algo {
    const char* name;
    std::function<void(Engine&)> setup;
  };
  const Algo algos[] = {
      {"bfs",
       [&](Engine& e) {
         auto [id, p] = e.attach_make<DynamicBfs>(source);
         e.inject_init(id, source);
       }},
      {"sssp",
       [&](Engine& e) {
         auto [id, p] = e.attach_make<DynamicSssp>(source);
         e.inject_init(id, source);
       }},
      {"cc", [](Engine& e) { e.attach_make<DynamicCc>(); }},
      {"st",
       [&](Engine& e) {
         auto [id, p] =
             e.attach_make<MultiStConnectivity>(std::vector<VertexId>{source});
         inject_st_sources(e, id, *p);
       }},
  };

  std::printf("%-8s %16s %16s %16s %16s %10s\n", "algo", "rate(off)", "rate(on)",
              "msgs(off)", "msgs(on)", "msg cut");
  BenchReport report("abl_cache_filter", "neighbour-cache redundancy filter");
  for (const Algo& a : algos) {
    const Outcome off = run(data.edges, ranks, false, repeats, a.setup);
    const Outcome on = run(data.edges, ranks, true, repeats, a.setup);
    std::printf("%-8s %16s %16s %16s %16s %9.1f%%\n", a.name, rate(off.rate).c_str(),
                rate(on.rate).c_str(), with_commas(off.messages).c_str(),
                with_commas(on.messages).c_str(),
                100.0 * (1.0 - static_cast<double>(on.messages) /
                                   static_cast<double>(off.messages)));
    for (const bool filter : {false, true}) {
      const Outcome& o = filter ? on : off;
      Json row = Json::object();
      row["dataset"] = data.name;
      row["ranks"] = static_cast<std::uint64_t>(ranks);
      row["query"] = a.name;
      row["nbr_cache_filter"] = filter;
      row["events_per_second"] = o.rate;
      row["messages_sent"] = o.messages;
      report.add_run(std::move(row));
    }
  }
  report.write();
  return 0;
}
