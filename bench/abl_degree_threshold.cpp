// Ablation — the low/high-degree promotion threshold of the two-tier
// adjacency. Small thresholds push everything into Robin Hood edge
// tables; huge thresholds keep heavy hitters in linear-scan arrays. The
// sweet spot in a scale-free graph sits at a small constant.
#include <cstdio>

#include "bench_util.hpp"

using namespace remo;
using namespace remo::bench;

int main() {
  const int repeats = repeats_from_env();
  RmatParams p;
  p.scale = static_cast<std::uint32_t>(15 + bench_scale_from_env().scale_shift);
  p.edge_factor = 16;
  const EdgeList edges = generate_rmat(p);

  print_banner("Ablation — degree-aware promotion threshold",
               strfmt("RMAT scale %u, |E|=%s, %d repeats", p.scale,
                      with_commas(edges.size()).c_str(), repeats));

  std::printf("%-12s %16s %16s %14s\n", "threshold", "insert", "lookup",
              "store bytes");
  BenchReport report("abl_degree_threshold", "two-tier promotion threshold sweep");
  const std::string dataset = strfmt("rmat-%u", p.scale);
  for (const std::uint32_t thresh : {0u, 2u, 4u, 8u, 16u, 64u, 1024u}) {
    std::vector<double> ins, look;
    std::size_t bytes = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      DegAwareStore store(StoreConfig{.promote_threshold = thresh});
      Timer t;
      for (const Edge& e : edges) store.insert_edge(e.src, e.dst, e.weight);
      ins.push_back(static_cast<double>(edges.size()) / t.seconds());

      t.reset();
      std::uint64_t hits = 0;
      for (const Edge& e : edges) hits += store.has_edge(e.src, e.dst);
      look.push_back(static_cast<double>(edges.size()) / t.seconds());
      bytes = store.memory_bytes();
      (void)hits;
    }
    std::printf("%-12u %16s %16s %14s\n", thresh, rate(mean(ins)).c_str(),
                rate(mean(look)).c_str(), human_bytes(bytes).c_str());
    Json row = Json::object();
    row["dataset"] = dataset;
    row["promote_threshold"] = thresh;
    row["insert_edges_per_second"] = mean(ins);
    row["lookup_edges_per_second"] = mean(look);
    row["store_bytes"] = static_cast<std::uint64_t>(bytes);
    report.add_run(std::move(row));
  }
  report.write();
  return 0;
}
