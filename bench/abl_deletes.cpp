// Ablation — decremental strategy (Section VI-B): incremental
// invalidate/probe repair vs the "trivial, yet costly" full recompute
// (reset the program, re-init, re-converge). Sweeps the delete fraction;
// the crossover illustrates when the generational-style repair pays off.
#include <cstdio>

#include "bench_util.hpp"

using namespace remo;
using namespace remo::bench;

int main() {
  const int repeats = repeats_from_env();
  const RankId ranks = ranks_from_env({2})[0];
  const EdgeList edges = [] {
    PrefAttachParams p;
    p.num_vertices = std::uint64_t{1}
                     << (14 + bench_scale_from_env().scale_shift);
    p.edges_per_vertex = 8;
    return generate_pref_attach(p);
  }();

  print_banner("Ablation — delete handling: incremental repair vs full recompute",
               strfmt("pref-attach |E|=%s, %u ranks, BFS, %d repeats",
                      with_commas(edges.size()).c_str(), ranks, repeats));

  const VertexId source = edges.front().src;

  std::printf("%-12s %14s %18s %18s %10s\n", "delete %", "#deletes", "repair_ms",
              "recompute_ms", "ratio");

  BenchReport report("abl_deletes", "incremental repair vs full recompute");
  for (const int pct : {1, 5, 10, 25, 50}) {
    std::vector<double> repair_ms, recompute_ms;
    std::uint64_t n_deletes = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      // Build once per rep, with delete support on.
      Engine engine(EngineConfig{.num_ranks = ranks});
      auto [id, bfs] = engine.attach_make<DynamicBfs>(
          source, DynamicBfs::Options{.support_deletes = true});
      engine.inject_init(id, source);
      engine.ingest(make_streams(edges, ranks, StreamOptions{.seed = 7}));

      Xoshiro256 rng(100 + static_cast<std::uint64_t>(rep));
      std::vector<EdgeEvent> deletes;
      for (const Edge& e : edges)
        if (rng.bounded(100) < static_cast<std::uint64_t>(pct))
          deletes.push_back({e.src, e.dst, e.weight, EdgeOp::kDelete});
      n_deletes = deletes.size();
      engine.ingest(split_events(deletes, ranks, /*shuffle=*/true, 3));

      Timer t;
      engine.repair(id);
      repair_ms.push_back(t.millis());

      // Full recompute on the same post-delete topology.
      t.reset();
      engine.reset_program(id);
      engine.inject_init(id, source);
      engine.drain();
      recompute_ms.push_back(t.millis());
    }
    std::printf("%-12d %14s %18.2f %18.2f %9.2fx\n", pct,
                with_commas(n_deletes).c_str(), mean(repair_ms), mean(recompute_ms),
                mean(recompute_ms) / mean(repair_ms));
    Json row = Json::object();
    row["dataset"] = "pref-attach";
    row["ranks"] = static_cast<std::uint64_t>(ranks);
    row["delete_pct"] = pct;
    row["deletes"] = n_deletes;
    row["repair_ms"] = mean(repair_ms);
    row["recompute_ms"] = mean(recompute_ms);
    report.add_run(std::move(row));
  }
  report.write();
  return 0;
}
