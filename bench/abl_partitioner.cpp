// Ablation — vertex placement: the paper's consistent hashing vs naive
// modulo placement. Reports the saturation event rate and the edge-count
// imbalance across ranks (max/mean); the paper notes hashing balances
// vertices but the power-law edge distribution still skews edges
// (Section III-C) — modulo placement on structured id spaces is worse on
// both axes.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"

using namespace remo;
using namespace remo::bench;

namespace {

struct Outcome {
  double rate = 0;
  double edge_imbalance = 0;  // max/mean stored arcs per rank
  double vertex_imbalance = 0;
};

Outcome run(const EdgeList& edges, RankId ranks, PartitionMode mode, int repeats) {
  Outcome out;
  std::vector<double> rates;
  for (int rep = 0; rep < repeats; ++rep) {
    EngineConfig cfg;
    cfg.num_ranks = ranks;
    cfg.partition = mode;
    Engine engine(cfg);
    rates.push_back(
        engine
            .ingest(make_streams(edges, ranks,
                                 StreamOptions{.seed = 7 + static_cast<std::uint64_t>(rep)}))
            .events_per_second);
    if (rep == 0) {
      std::vector<double> e_per_rank, v_per_rank;
      for (RankId r = 0; r < ranks; ++r) {
        e_per_rank.push_back(static_cast<double>(engine.store(r).edge_count()));
        v_per_rank.push_back(static_cast<double>(engine.store(r).vertex_count()));
      }
      out.edge_imbalance = *std::max_element(e_per_rank.begin(), e_per_rank.end()) /
                           (mean(e_per_rank) + 1e-9);
      out.vertex_imbalance =
          *std::max_element(v_per_rank.begin(), v_per_rank.end()) /
          (mean(v_per_rank) + 1e-9);
    }
  }
  out.rate = mean(rates);
  return out;
}

}  // namespace

int main() {
  const int repeats = repeats_from_env();
  const RankId ranks = ranks_from_env({4})[0];
  const Dataset data = make_synth_twitter(bench_scale_from_env());

  // Two id spaces: the generator's dense sequential ids (benign for both
  // placements), and a strided relabelling (id * 4096 — think padded or
  // region-prefixed identifiers, ubiquitous in real datasets). Consistent
  // hashing is oblivious to id structure; modulo placement collapses the
  // strided space onto a fraction of the ranks.
  EdgeList strided = data.edges;
  for (Edge& e : strided) {
    e.src *= 4096;
    e.dst *= 4096;
  }

  print_banner("Ablation — vertex placement (consistent hash vs modulo)",
               strfmt("dataset %s (|E|=%s), %u ranks, %d repeats",
                      data.name.c_str(), with_commas(data.edges.size()).c_str(),
                      ranks, repeats));

  std::printf("%-14s %-12s %16s %18s %18s\n", "placement", "id space", "rate",
              "edge max/mean", "vertex max/mean");
  const struct {
    const char* placement;
    const char* ids;
    const EdgeList* edges;
    PartitionMode mode;
  } rows[] = {
      {"hash (paper)", "sequential", &data.edges, PartitionMode::kHash},
      {"modulo", "sequential", &data.edges, PartitionMode::kModulo},
      {"hash (paper)", "strided", &strided, PartitionMode::kHash},
      {"modulo", "strided", &strided, PartitionMode::kModulo},
  };
  BenchReport report("abl_partitioner", "vertex placement: hash vs modulo");
  for (const auto& row : rows) {
    const Outcome o = run(*row.edges, ranks, row.mode, repeats);
    std::printf("%-14s %-12s %16s %18.3f %18.3f\n", row.placement, row.ids,
                rate(o.rate).c_str(), o.edge_imbalance, o.vertex_imbalance);
    Json jr = Json::object();
    jr["dataset"] = data.name;
    jr["ranks"] = static_cast<std::uint64_t>(ranks);
    jr["placement"] = row.mode == PartitionMode::kHash ? "hash" : "modulo";
    jr["id_space"] = row.ids;
    jr["events_per_second"] = o.rate;
    jr["edge_imbalance"] = o.edge_imbalance;
    jr["vertex_imbalance"] = o.vertex_imbalance;
    report.add_run(std::move(jr));
  }
  report.write();
  return 0;
}
