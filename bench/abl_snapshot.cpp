// Ablation — global state collection strategy (Section III-D): the simple
// quiescent drain (pauses stream pulls) vs the versioned Chandy-Lamport
// style collection (streams keep flowing). Reports collection latency and
// the end-to-end ingestion slowdown caused by collecting repeatedly.
#include <cstdio>

#include "bench_util.hpp"

using namespace remo;
using namespace remo::bench;

namespace {

struct Outcome {
  double collect_ms = 0;
  double total_s = 0;
};

Outcome run(const EdgeList& edges, RankId ranks, bool versioned, int collections) {
  Engine engine(EngineConfig{.num_ranks = ranks});
  const VertexId source = edges.front().src;
  auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
  engine.inject_init(id, source);

  const StreamSet streams = make_streams(edges, ranks, StreamOptions{.seed = 7});
  Timer total;
  engine.ingest_async(streams);
  std::vector<double> lat;
  for (int i = 0; i < collections; ++i) {
    Timer t;
    const Snapshot s =
        versioned ? engine.collect_versioned(id) : engine.collect_quiescent(id);
    lat.push_back(t.millis());
    (void)s;
  }
  engine.await_quiescence();
  return {mean(lat), total.seconds()};
}

}  // namespace

int main() {
  const int repeats = repeats_from_env();
  const RankId ranks = ranks_from_env({2})[0];
  RmatParams p;
  p.scale = static_cast<std::uint32_t>(16 + bench_scale_from_env().scale_shift);
  p.edge_factor = 16;
  const EdgeList edges = generate_rmat(p);

  print_banner("Ablation — snapshot strategy (quiescent pause vs versioned)",
               strfmt("RMAT scale %u, |E|=%s, %u ranks, 4 collections mid-ingest",
                      p.scale, with_commas(edges.size()).c_str(), ranks));

  // Baseline: no collections at all.
  std::vector<double> base;
  for (int rep = 0; rep < repeats; ++rep)
    base.push_back(run(edges, ranks, true, 0).total_s);

  std::vector<double> q_lat, q_tot, v_lat, v_tot;
  for (int rep = 0; rep < repeats; ++rep) {
    const Outcome q = run(edges, ranks, /*versioned=*/false, 4);
    const Outcome v = run(edges, ranks, /*versioned=*/true, 4);
    q_lat.push_back(q.collect_ms);
    q_tot.push_back(q.total_s);
    v_lat.push_back(v.collect_ms);
    v_tot.push_back(v.total_s);
  }

  std::printf("%-28s %16s %18s %14s\n", "strategy", "collect_ms", "ingest_total_s",
              "slowdown");
  std::printf("%-28s %16s %18.3f %14s\n", "no collection", "-", mean(base), "1.00x");
  std::printf("%-28s %16.2f %18.3f %13.2fx\n", "quiescent (pauses streams)",
              mean(q_lat), mean(q_tot), mean(q_tot) / mean(base));
  std::printf("%-28s %16.2f %18.3f %13.2fx\n", "versioned (Chandy-Lamport)",
              mean(v_lat), mean(v_tot), mean(v_tot) / mean(base));

  BenchReport report("abl_snapshot", "snapshot strategy: quiescent vs versioned");
  const std::string dataset = strfmt("rmat-%u", p.scale);
  const auto strategy_row = [&](const char* strategy, double collect_ms,
                                double total_s) {
    Json row = Json::object();
    row["dataset"] = dataset;
    row["ranks"] = static_cast<std::uint64_t>(ranks);
    row["strategy"] = strategy;
    if (collect_ms >= 0) row["collect_ms"] = collect_ms;
    row["ingest_total_seconds"] = total_s;
    row["slowdown"] = total_s / mean(base);
    return row;
  };
  report.add_run(strategy_row("none", -1.0, mean(base)));
  report.add_run(strategy_row("quiescent", mean(q_lat), mean(q_tot)));
  report.add_run(strategy_row("versioned", mean(v_lat), mean(v_tot)));
  report.write();
  return 0;
}
