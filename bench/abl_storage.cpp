// Ablation — storage backend: DegAwareStore (two-tier Robin Hood) vs the
// std::unordered_map baseline (Section III-B: DegAwareRHH "significantly
// improves the performance over a baseline implementation").
// Measures raw directed-edge insert throughput and full neighbour-scan
// throughput on a skewed RMAT workload.
#include <cstdio>

#include "bench_util.hpp"
#include "storage/std_store.hpp"

using namespace remo;
using namespace remo::bench;

namespace {

template <typename Store>
std::pair<double, double> run(const EdgeList& edges, int repeats) {
  std::vector<double> ins, scan;
  for (int rep = 0; rep < repeats; ++rep) {
    Store store;
    Timer t;
    for (const Edge& e : edges) store.insert_edge(e.src, e.dst, e.weight);
    ins.push_back(static_cast<double>(edges.size()) / t.seconds());

    // Neighbour scan: iterate every stored arc once.
    t.reset();
    std::uint64_t touched = 0;
    if constexpr (requires(Store& s) { s.for_each_vertex([](VertexId, TwoTierAdjacency&) {}); }) {
      store.for_each_vertex([&](VertexId, TwoTierAdjacency& adj) {
        adj.for_each([&](VertexId, EdgeProp&) { ++touched; });
      });
    } else {
      for (const Edge& e : edges)
        store.for_each_neighbour(e.src, [&](VertexId, EdgeProp&) { ++touched; });
    }
    scan.push_back(static_cast<double>(touched) / t.seconds());
  }
  return {mean(ins), mean(scan)};
}

}  // namespace

int main() {
  const int repeats = repeats_from_env();
  RmatParams p;
  p.scale = static_cast<std::uint32_t>(16 + bench_scale_from_env().scale_shift);
  p.edge_factor = 16;
  const EdgeList edges = generate_rmat(p);

  print_banner("Ablation — storage backend (DegAwareStore vs std::unordered_map)",
               strfmt("RMAT scale %u, |E|=%s, %d repeats", p.scale,
                      with_commas(edges.size()).c_str(), repeats));

  const auto [da_ins, da_scan] = run<DegAwareStore>(edges, repeats);
  const auto [std_ins, std_scan] = run<StdStore>(edges, repeats);

  std::printf("%-24s %16s %16s\n", "backend", "insert", "scan");
  std::printf("%-24s %16s %16s\n", "DegAwareStore", rate(da_ins).c_str(),
              rate(da_scan).c_str());
  std::printf("%-24s %16s %16s\n", "std::unordered_map", rate(std_ins).c_str(),
              rate(std_scan).c_str());
  std::printf("\nspeedup: insert %.2fx, scan %.2fx\n", da_ins / std_ins,
              da_scan / std_scan);

  BenchReport report("abl_storage", "storage backend: DegAwareStore vs std");
  const std::string dataset = strfmt("rmat-%u", p.scale);
  const auto backend_row = [&](const char* backend, double ins, double scan) {
    Json row = Json::object();
    row["dataset"] = dataset;
    row["backend"] = backend;
    row["insert_edges_per_second"] = ins;
    row["scan_edges_per_second"] = scan;
    return row;
  };
  report.add_run(backend_row("degaware", da_ins, da_scan));
  report.add_run(backend_row("std_unordered_map", std_ins, std_scan));
  report.write();
  return 0;
}
