// Ablation — termination detector: exact in-flight counting (single-host
// shortcut) vs Safra's token ring (deployable over point-to-point
// messages only). Reports saturation ingest rate under each detector and
// the detection latency after the last event (time from final event
// processed to quiescence declared).
#include <cstdio>

#include "bench_util.hpp"

using namespace remo;
using namespace remo::bench;

int main() {
  const int repeats = repeats_from_env();
  const auto ranks_list = ranks_from_env();
  RmatParams p;
  p.scale = static_cast<std::uint32_t>(15 + bench_scale_from_env().scale_shift);
  p.edge_factor = 16;
  const EdgeList edges = generate_rmat(p);
  const VertexId source = edges.front().src;

  print_banner("Ablation — termination detection (counting vs Safra ring)",
               strfmt("RMAT scale %u, |E|=%s, BFS maintained, %d repeats", p.scale,
                      with_commas(edges.size()).c_str(), repeats));

  std::printf("%-10s %18s %18s %12s\n", "ranks", "counting", "safra", "safra/cnt");
  BenchReport report("abl_termination", "termination detection: counting vs Safra");
  const std::string dataset = strfmt("rmat-%u", p.scale);
  for (const RankId ranks : ranks_list) {
    double rates[2];
    for (int mode = 0; mode < 2; ++mode) {
      std::vector<double> rs;
      std::uint64_t events = 0;
      for (int rep = 0; rep < repeats; ++rep) {
        EngineConfig cfg;
        cfg.num_ranks = ranks;
        cfg.termination =
            mode == 0 ? TerminationMode::kCounting : TerminationMode::kSafra;
        Engine engine(cfg);
        auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
        engine.inject_init(id, source);
        const StreamSet streams =
            make_streams(edges, ranks, StreamOptions{.seed = 7});
        const IngestStats st = engine.ingest(streams);
        rs.push_back(st.events_per_second);
        events = st.events;
      }
      rates[mode] = mean(rs);
      Json row = run_row(dataset, ranks, events,
                         rates[mode] > 0 ? static_cast<double>(events) / rates[mode] : 0.0,
                         rates[mode]);
      row["termination"] = mode == 0 ? "counting" : "safra";
      report.add_run(std::move(row));
    }
    std::printf("%-10u %18s %18s %11.2fx\n", ranks, rate(rates[0]).c_str(),
                rate(rates[1]).c_str(), rates[1] / rates[0]);
  }
  report.write();
  return 0;
}
