// Ablation — termination detector: exact in-flight counting (single-host
// shortcut) vs Safra's token ring (deployable over point-to-point
// messages only). Reports saturation ingest rate under each detector and
// the detection latency after the last event (time from final event
// processed to quiescence declared).
#include <cstdio>

#include "bench_util.hpp"

using namespace remo;
using namespace remo::bench;

int main() {
  const int repeats = repeats_from_env();
  const auto ranks_list = ranks_from_env();
  RmatParams p;
  p.scale = static_cast<std::uint32_t>(15 + bench_scale_from_env().scale_shift);
  p.edge_factor = 16;
  const EdgeList edges = generate_rmat(p);
  const VertexId source = edges.front().src;

  print_banner("Ablation — termination detection (counting vs Safra ring)",
               strfmt("RMAT scale %u, |E|=%s, BFS maintained, %d repeats", p.scale,
                      with_commas(edges.size()).c_str(), repeats));

  std::printf("%-10s %18s %18s %12s\n", "ranks", "counting", "safra", "safra/cnt");
  for (const RankId ranks : ranks_list) {
    double rates[2];
    for (int mode = 0; mode < 2; ++mode) {
      std::vector<double> rs;
      for (int rep = 0; rep < repeats; ++rep) {
        EngineConfig cfg;
        cfg.num_ranks = ranks;
        cfg.termination =
            mode == 0 ? TerminationMode::kCounting : TerminationMode::kSafra;
        Engine engine(cfg);
        auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
        engine.inject_init(id, source);
        const StreamSet streams =
            make_streams(edges, ranks, StreamOptions{.seed = 7});
        rs.push_back(engine.ingest(streams).events_per_second);
      }
      rates[mode] = mean(rs);
    }
    std::printf("%-10u %18s %18s %11.2fx\n", ranks, rate(rates[0]).c_str(),
                rate(rates[1]).c_str(), rates[1] / rates[0]);
  }
  return 0;
}
