#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <numeric>
#include <sstream>

namespace remo::bench {

std::vector<RankId> ranks_from_env(std::vector<RankId> fallback) {
  const char* env = std::getenv("REMO_BENCH_RANKS");
  if (!env) return fallback;
  std::vector<RankId> out;
  std::istringstream in(env);
  unsigned r = 0;
  while (in >> r)
    if (r > 0) out.push_back(static_cast<RankId>(r));
  return out.empty() ? fallback : out;
}

int repeats_from_env(int fallback) {
  if (const char* env = std::getenv("REMO_BENCH_REPEATS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

void print_banner(const std::string& figure, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("(scale shift %d; host note: single-node thread-backed ranks —\n"
              " see EXPERIMENTS.md for how shapes map to the paper's cluster)\n",
              bench_scale_from_env().scale_shift);
  std::printf("==============================================================\n");
}

std::string rate(double eps) {
  if (eps >= 1e9) return strfmt("%.2fB ev/s", eps / 1e9);
  if (eps >= 1e6) return strfmt("%.2fM ev/s", eps / 1e6);
  if (eps >= 1e3) return strfmt("%.2fK ev/s", eps / 1e3);
  return strfmt("%.0f ev/s", eps);
}

std::uint64_t distinct_vertices(const EdgeList& edges) {
  RobinHoodMap<VertexId, std::uint8_t> seen;
  for (const Edge& e : edges) {
    seen.insert_or_assign(e.src, 1);
    seen.insert_or_assign(e.dst, 1);
  }
  return seen.size();
}

BenchReport::BenchReport(std::string name, std::string title)
    : name_(std::move(name)), doc_(Json::object()) {
  doc_["schema"] = "remo-bench-1";
  doc_["name"] = name_;
  doc_["title"] = std::move(title);
  doc_["scale_shift"] = bench_scale_from_env().scale_shift;
  doc_["repeats"] = repeats_from_env();
  Json config = comm_config_json();
  config["build"] = build_info_json();
  {
    // Record the observability knobs the environment resolved to, so A/B
    // evidence (prof on vs off, lineage on vs off) is self-describing and
    // bench-compare can refuse apples-to-oranges comparisons.
    EngineConfig cfg;
    apply_obs_env(cfg);
    Json obs = Json::object();
    obs["prof"] = cfg.obs.prof;
    obs["prof_backend"] = obs::prof_backend_name(cfg.obs.prof_backend);
    obs["prof_sample_shift"] = static_cast<std::uint64_t>(cfg.obs.prof_sample_shift);
    obs["lineage"] = cfg.obs.lineage;
    obs["lineage_sample_shift"] =
        static_cast<std::uint64_t>(cfg.obs.lineage_sample_shift);
    config["obs"] = obs;
  }
  // Memory-plane knobs (pinning / arenas / huge pages) likewise: the fig6
  // NUMA A/B baselines differ only in this block, and bench-compare refuses
  // to diff reports whose config blocks disagree unless forced.
  config["memory"] = memory_config_json();
  doc_["config"] = std::move(config);
  doc_["runs"] = Json::array();
}

std::string BenchReport::path() const {
  std::string dir = ".";
  if (const char* env = std::getenv("REMO_BENCH_OUT_DIR"); env && *env) dir = env;
  return dir + "/BENCH_" + name_ + ".json";
}

bool BenchReport::write() const {
  const std::string out = path();
  // Process-level resource accounting rides along in every report — the
  // always-available fallback tier of the counter stack (max RSS, context
  // switches, faults) needs no perf_event access. Stamped at write time so
  // it covers the whole harness run.
  Json doc = doc_;
  doc["rusage"] = obs::proc_rusage_json(obs::read_proc_rusage());
  if (const auto dir = std::filesystem::path(out).parent_path(); !dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // best effort; fopen reports
  }
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench: cannot open %s\n", out.c_str());
    return false;
  }
  const std::string text = doc.dump(2);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (ok) std::printf("\nmachine-readable results: %s\n", out.c_str());
  return ok;
}

Json run_row(const std::string& dataset, RankId ranks, std::uint64_t events,
             double seconds, double events_per_second) {
  Json row = Json::object();
  row["dataset"] = dataset;
  row["ranks"] = static_cast<std::uint64_t>(ranks);
  row["events"] = events;
  row["seconds"] = seconds;
  row["events_per_second"] = events_per_second;
  return row;
}

Json engine_obs_json(const Engine& engine) {
  const obs::MetricsSnapshot snap = engine.metrics_snapshot();
  const Json full = snap.to_json(/*include_per_rank=*/false);
  Json out = Json::object();
  for (const char* key : {"counters", "update_latency", "phases", "lineage", "prof"})
    if (const Json* sec = full.find(key)) out[key] = *sec;
  out["gauges"] = engine.sample_gauges().to_json(/*include_per_rank=*/false);
  // Achieved memory-plane state (page backing tier, degradation) — the
  // config block records what was *asked*; this records what was *got*.
  out["memory"] = engine.memory_plane().to_json();
  return out;
}

void apply_obs_env(EngineConfig& cfg) {
  if (const char* on = std::getenv("REMO_OBS_LINEAGE"); on && *on && *on != '0')
    cfg.obs.lineage = true;
  if (const char* s = std::getenv("REMO_OBS_LINEAGE_SHIFT")) {
    const int shift = std::atoi(s);
    if (shift >= 0 && shift <= 32)
      cfg.obs.lineage_sample_shift = static_cast<std::uint32_t>(shift);
  }
  if (const char* on = std::getenv("REMO_OBS_PROF"); on && *on && *on != '0')
    cfg.obs.prof = true;
  if (const char* s = std::getenv("REMO_OBS_PROF_SHIFT")) {
    const int shift = std::atoi(s);
    if (shift >= 0 && shift <= 31)
      cfg.obs.prof_sample_shift = static_cast<std::uint32_t>(shift);
  }
  if (const char* b = std::getenv("REMO_OBS_PROF_BACKEND")) {
    const std::string name = b;
    if (name == "perf" || name == "perf_event")
      cfg.obs.prof_backend = obs::ProfBackendKind::kPerfEvent;
    else if (name == "rusage")
      cfg.obs.prof_backend = obs::ProfBackendKind::kRusage;
    else if (name == "noop" || name == "none")
      cfg.obs.prof_backend = obs::ProfBackendKind::kNoop;
    else if (name == "auto")
      cfg.obs.prof_backend = obs::ProfBackendKind::kAuto;
  }
}

void apply_memory_env(EngineConfig& cfg) {
  if (const char* p = std::getenv("REMO_PINNING"); p && *p) {
    PinningMode mode;
    if (parse_pinning_mode(p, &mode))
      cfg.pinning = mode;
    else
      std::fprintf(stderr, "bench: unknown REMO_PINNING mode '%s' (ignored)\n", p);
  }
  if (const char* on = std::getenv("REMO_ARENAS"); on && *on && *on != '0')
    cfg.memory.arenas = true;
  if (const char* hp = std::getenv("REMO_HUGEPAGES"); hp && *hp && *hp == '0')
    cfg.memory.huge_pages = false;
  if (const char* nb = std::getenv("REMO_NUMA_BIND"); nb && *nb && *nb == '0')
    cfg.memory.numa_bind = false;
  if (const char* c = std::getenv("REMO_ARENA_CHUNK_BYTES")) {
    const long long n = std::atoll(c);
    if (n > 0) cfg.memory.arena_chunk_bytes = static_cast<std::size_t>(n);
  }
}

Json memory_config_json() {
  EngineConfig cfg;
  apply_memory_env(cfg);
  Json j = Json::object();
  j["pinning"] = pinning_mode_name(cfg.pinning);
  j["arenas"] = cfg.memory.arenas;
  j["huge_pages"] = cfg.memory.huge_pages;
  j["numa_bind"] = cfg.memory.numa_bind;
  j["arena_chunk_bytes"] = static_cast<std::uint64_t>(cfg.memory.arena_chunk_bytes);
  return j;
}

void apply_comm_env(EngineConfig& cfg) {
  if (const char* b = std::getenv("REMO_BATCH_SIZE")) {
    const long n = std::atol(b);
    if (n > 0) cfg.batch_size = static_cast<std::size_t>(n);
  }
  if (const char* off = std::getenv("REMO_NO_COALESCE"); off && *off && *off != '0')
    cfg.coalesce = false;
  if (const char* r = std::getenv("REMO_RING_CAPACITY")) {
    const long n = std::atol(r);
    if (n > 0) cfg.mailbox_ring_capacity = static_cast<std::size_t>(n);
  }
}

Json comm_config_json() {
  EngineConfig cfg;
  apply_comm_env(cfg);
  Json j = Json::object();
  j["batch_size"] = static_cast<std::uint64_t>(cfg.batch_size);
  j["coalesce"] = cfg.coalesce;
  j["mailbox_ring_capacity"] = static_cast<std::uint64_t>(cfg.mailbox_ring_capacity);
  return j;
}

void write_lineage_from_env(const Engine& engine) {
  const char* path = std::getenv("REMO_LINEAGE_OUT");
  if (!path || !*path || !engine.lineage_enabled()) return;
  if (engine.write_lineage(path))
    std::printf("lineage dump: %s\n", path);
  else
    std::fprintf(stderr, "bench: cannot write lineage dump %s\n", path);
}

std::unique_ptr<obs::MetricsExporter> exporter_from_env(Engine& engine) {
  const char* path = std::getenv("REMO_METRICS_OUT");
  if (!path || !*path) return nullptr;
  obs::MetricsExporter::Config cfg;
  cfg.path = path;
  if (const char* p = std::getenv("REMO_METRICS_PERIOD_MS")) {
    const int ms = std::atoi(p);
    if (ms > 0) cfg.period = std::chrono::milliseconds(ms);
  }
  if (const char* f = std::getenv("REMO_METRICS_FORMAT")) {
    const std::string fmt = f;
    if (fmt == "prom" || fmt == "prometheus")
      cfg.format = obs::MetricsExporter::Format::kPrometheus;
  }
  return std::make_unique<obs::MetricsExporter>(
      [&engine] { return engine.sample_gauges(); }, cfg);
}

}  // namespace remo::bench
