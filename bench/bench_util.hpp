// Shared helpers for the figure/table harnesses.
//
// Environment knobs (apply to every bench binary):
//   REMO_BENCH_SCALE   dataset scale shift (default 0; -2 quarters sizes)
//   REMO_BENCH_RANKS   space-separated rank counts (default "1 2 4")
//   REMO_BENCH_REPEATS runs per configuration, averaged (default 3; the
//                      paper averaged 10)
#pragma once

#include <string>
#include <vector>

#include "remo/remo.hpp"

namespace remo::bench {

std::vector<RankId> ranks_from_env(std::vector<RankId> fallback = {1, 2, 4});
int repeats_from_env(int fallback = 3);

/// Mean of a sample vector.
double mean(const std::vector<double>& xs);

/// Print a header block for a harness: figure id + what the paper showed.
void print_banner(const std::string& figure, const std::string& description);

/// "1.3e9" style events/s formatting.
std::string rate(double events_per_second);

/// Count distinct vertices in an edge list.
std::uint64_t distinct_vertices(const EdgeList& edges);

/// Run one saturation ingest of `dataset` with `programs` pre-attached by
/// the caller via the callback (invoked once, before ingestion). Returns
/// mean events/s over `repeats` fresh engines.
struct SaturationResult {
  double events_per_second = 0;
  double seconds = 0;
  std::uint64_t events = 0;
};

template <typename Setup>
SaturationResult measure_saturation(const EdgeList& edges, RankId ranks, int repeats,
                                    Setup&& setup, bool undirected = true) {
  SaturationResult out;
  std::vector<double> rates, secs;
  for (int rep = 0; rep < repeats; ++rep) {
    EngineConfig cfg;
    cfg.num_ranks = ranks;
    cfg.undirected = undirected;
    Engine engine(cfg);
    setup(engine);
    const StreamSet streams =
        make_streams(edges, ranks, StreamOptions{.seed = 7 + static_cast<std::uint64_t>(rep)});
    const IngestStats stats = engine.ingest(streams);
    rates.push_back(stats.events_per_second);
    secs.push_back(stats.seconds);
    out.events = stats.events;
  }
  out.events_per_second = mean(rates);
  out.seconds = mean(secs);
  return out;
}

}  // namespace remo::bench
