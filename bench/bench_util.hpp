// Shared helpers for the figure/table harnesses.
//
// Environment knobs (apply to every bench binary):
//   REMO_BENCH_SCALE   dataset scale shift (default 0; -2 quarters sizes)
//   REMO_BENCH_RANKS   space-separated rank counts (default "1 2 4")
//   REMO_BENCH_REPEATS runs per configuration, averaged (default 3; the
//                      paper averaged 10)
#pragma once

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "remo/remo.hpp"

namespace remo::bench {

std::vector<RankId> ranks_from_env(std::vector<RankId> fallback = {1, 2, 4});
int repeats_from_env(int fallback = 3);

/// Machine-readable harness output (docs/OBSERVABILITY.md, "BENCH_*.json").
/// Each harness builds one report and writes `BENCH_<name>.json` into
/// $REMO_BENCH_OUT_DIR (default: the working directory) alongside its
/// human-readable stdout table.
class BenchReport {
 public:
  /// `name` is the file stem ("fig3" -> BENCH_fig3.json).
  BenchReport(std::string name, std::string title);

  Json& doc() { return doc_; }
  void set(const std::string& key, Json value) { doc_[key] = std::move(value); }
  void add_run(Json row) { doc_["runs"].push_back(std::move(row)); }

  std::string path() const;

  /// Serialise to BENCH_<name>.json and report the path on stdout.
  bool write() const;

 private:
  std::string name_;
  Json doc_;
};

/// Standard run row: dataset / ranks / throughput triple every harness
/// emits. Harnesses append extra fields via operator[].
Json run_row(const std::string& dataset, RankId ranks, std::uint64_t events,
             double seconds, double events_per_second);

/// Latency percentiles + message counters of a (quiescent) engine in the
/// stats-JSON shape — attach as a run row's "latency"/"messages"/"phases".
/// Includes a "gauges" section: the final live-telemetry sample, whose
/// convergence_lag_events must be 0 at quiescence (CI's bench-smoke job
/// asserts this). When lineage tracing is on, a "lineage" amplification
/// summary block rides along (sampled causes, visitors/update p50/p99,
/// depth percentiles, cross-rank hop ratio).
Json engine_obs_json(const Engine& engine);

/// Apply observability env knobs to an engine config (the lineage- and
/// prof-overhead A/B knobs and CI's lineage-/prof-smoke jobs):
///   REMO_OBS_LINEAGE        "1" enables lineage tracing ("0"/unset: off)
///   REMO_OBS_LINEAGE_SHIFT  sampling shift (every 2^shift-th topology
///                           event traced; default ObsConfig's 6)
///   REMO_OBS_PROF           "1" enables hardware-counter profiling
///   REMO_OBS_PROF_SHIFT     counter-read stride shift (every 2^shift-th
///                           phase boundary read; default ObsConfig's 4)
///   REMO_OBS_PROF_BACKEND   "auto" (default) | "perf" | "rusage" | "noop"
void apply_obs_env(EngineConfig& cfg);

/// Apply the comm hot-path env knobs (the coalescing/mailbox A/B sweeps):
///   REMO_BATCH_SIZE     per-destination send-buffer batch size
///   REMO_NO_COALESCE    "1" disables monotonic visitor coalescing
///   REMO_RING_CAPACITY  per-producer mailbox SPSC ring capacity
/// Every BenchReport records the resolved values in its "config" block so
/// committed A/B evidence is self-describing.
void apply_comm_env(EngineConfig& cfg);

/// The comm knobs as resolved by apply_comm_env on a default config.
Json comm_config_json();

/// Apply the memory-plane env knobs (the fig6 NUMA locality A/B sweeps):
///   REMO_PINNING           rank-to-core pinning: "none" (default) |
///                          "compact" | "scatter" | "numa-spread"
///   REMO_ARENAS            "1" routes storage + mailbox rings through the
///                          per-rank huge-page arenas ("0"/unset: heap)
///   REMO_HUGEPAGES         "0" skips the hugetlb/THP tiers (plain pages)
///   REMO_NUMA_BIND         "0" skips mbind (first-touch only)
///   REMO_ARENA_CHUNK_BYTES arena chunk size in bytes (default 8 MiB)
/// Every BenchReport records the resolved values in config.memory so the
/// committed BENCH_fig6_numa_{off,on}.json arms are self-describing.
void apply_memory_env(EngineConfig& cfg);

/// The memory knobs as resolved by apply_memory_env on a default config.
Json memory_config_json();

/// When $REMO_LINEAGE_OUT is set and `engine` has lineage tracing on, dump
/// the merged remo-lineage-1 snapshot there for `remo_cli trace-analyze`.
/// Call at quiescence (after ingest returns). No-op otherwise.
void write_lineage_from_env(const Engine& engine);

/// Attach a live-telemetry exporter when $REMO_METRICS_OUT is set (the
/// bench-overhead A/B knob and CI's bench-smoke job):
///   REMO_METRICS_OUT        output path ("-" = stdout JSONL)
///   REMO_METRICS_PERIOD_MS  sampling period (default 100)
///   REMO_METRICS_FORMAT     "jsonl" (default) or "prom"
/// Returns null when the knob is unset. The exporter samples `engine`, so
/// destroy it before the engine (declare it after).
std::unique_ptr<obs::MetricsExporter> exporter_from_env(Engine& engine);

/// Mean of a sample vector.
double mean(const std::vector<double>& xs);

/// Print a header block for a harness: figure id + what the paper showed.
void print_banner(const std::string& figure, const std::string& description);

/// "1.3e9" style events/s formatting.
std::string rate(double events_per_second);

/// Count distinct vertices in an edge list.
std::uint64_t distinct_vertices(const EdgeList& edges);

/// Run one saturation ingest of `dataset` with `programs` pre-attached by
/// the caller via the callback (invoked once, before ingestion). Returns
/// mean events/s over `repeats` fresh engines.
struct SaturationResult {
  double events_per_second = 0;
  double seconds = 0;
  std::uint64_t events = 0;
  /// Observability sections (latency / messages / phases) captured from the
  /// final repeat's engine, ready to merge into a BenchReport run row.
  Json obs = Json::object();
};

template <typename Setup>
SaturationResult measure_saturation(const EdgeList& edges, RankId ranks, int repeats,
                                    Setup&& setup, bool undirected = true) {
  SaturationResult out;
  std::vector<double> rates, secs;
  for (int rep = 0; rep < repeats; ++rep) {
    EngineConfig cfg;
    cfg.num_ranks = ranks;
    cfg.undirected = undirected;
    apply_obs_env(cfg);
    apply_comm_env(cfg);
    apply_memory_env(cfg);
    Engine engine(cfg);
    setup(engine);
    const auto exporter = exporter_from_env(engine);
    const StreamSet streams =
        make_streams(edges, ranks, StreamOptions{.seed = 7 + static_cast<std::uint64_t>(rep)});
    const IngestStats stats = engine.ingest(streams);
    rates.push_back(stats.events_per_second);
    secs.push_back(stats.seconds);
    out.events = stats.events;
    if (rep == repeats - 1) {
      out.obs = engine_obs_json(engine);
      write_lineage_from_env(engine);
    }
  }
  out.events_per_second = mean(rates);
  out.seconds = mean(secs);
  return out;
}

}  // namespace remo::bench
