// Figure 3 — static vs dynamic strategies (1 node, Twitter in the paper;
// synth-twitter here). Three stacked bars:
//   (a) static construction (CSR build incl. compression) + static BFS
//   (b) dynamic construction (engine ingest, no programs) + static BFS
//       executed over the dynamic store
//   (c) dynamic construction overlapped with dynamic BFS (live queryable
//       state throughout)
// Expected shape (paper §V-B): (a) construction ~2x faster than (b);
// static-BFS-on-dynamic slower than static-on-CSR; (c) total ≈ (b)'s
// construction bar — the live algorithm rides along nearly for free.
#include <cstdio>

#include "bench_util.hpp"

using namespace remo;
using namespace remo::bench;

int main() {
  const int repeats = repeats_from_env();
  const Dataset data = make_synth_twitter(bench_scale_from_env());
  const RankId ranks = ranks_from_env({2})[0];

  print_banner("Figure 3 — static vs dynamic strategies",
               strfmt("dataset %s (|E|=%s), %u ranks, %d repeats", data.name.c_str(),
                      with_commas(data.edges.size()).c_str(), ranks, repeats));

  const CsrGraph probe = CsrGraph::build(with_reverse_edges(data.edges));
  // Paper methodology: a source known to lie in the largest component.
  const auto cc = static_cc_union_find(probe);
  RobinHoodMap<StateWord, std::uint64_t> sizes;
  for (const StateWord l : cc) ++sizes.get_or_insert(l);
  StateWord best_label = 0;
  std::uint64_t best = 0;
  sizes.for_each([&](const StateWord& l, std::uint64_t& n) {
    if (n > best) {
      best = n;
      best_label = l;
    }
  });
  VertexId source = 0;
  for (CsrGraph::Dense v = 0; v < probe.num_vertices(); ++v)
    if (cc[v] == best_label) {
      source = probe.external_of(v);
      break;
    }

  std::vector<double> a_con, a_alg, b_con, b_alg, c_tot;
  std::uint64_t stream_events = 0;
  Json b_obs = Json::object(), c_obs = Json::object();
  for (int rep = 0; rep < repeats; ++rep) {
    {  // (a) static CSR + static BFS
      Timer t;
      const CsrGraph g = CsrGraph::build(with_reverse_edges(data.edges));
      a_con.push_back(t.seconds());
      t.reset();
      const auto levels = static_bfs(g, g.dense_of(source));
      a_alg.push_back(t.seconds());
      (void)levels;
    }
    {  // (b) dynamic construction, then static BFS over the dynamic store
      EngineConfig cfg{.num_ranks = ranks};
      apply_obs_env(cfg);
      Engine engine(cfg);
      const auto exporter = exporter_from_env(engine);
      Timer t;
      const IngestStats st = engine.ingest(make_streams(
          data.edges, ranks, StreamOptions{.seed = 7 + static_cast<std::uint64_t>(rep)}));
      b_con.push_back(t.seconds());
      stream_events = st.events;
      t.reset();
      const auto levels = static_bfs_on_store(engine, source);
      b_alg.push_back(t.seconds());
      (void)levels;
      if (rep == repeats - 1) b_obs = engine_obs_json(engine);
    }
    {  // (c) dynamic construction overlapped with dynamic BFS
      EngineConfig cfg{.num_ranks = ranks};
      apply_obs_env(cfg);
      Engine engine(cfg);
      const auto exporter = exporter_from_env(engine);
      auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
      engine.inject_init(id, source);
      Timer t;
      engine.ingest(make_streams(data.edges, ranks,
                                 StreamOptions{.seed = 7 + static_cast<std::uint64_t>(rep)}));
      c_tot.push_back(t.seconds());
      if (rep == repeats - 1) {
        c_obs = engine_obs_json(engine);
        write_lineage_from_env(engine);  // (c) has live propagation: richest dump
      }
    }
  }

  std::printf("%-42s %12s %12s %12s\n", "Strategy", "construct_s", "algorithm_s",
              "total_s");
  std::printf("%-42s %12.3f %12.3f %12.3f\n", "(a) static CSR + static BFS",
              mean(a_con), mean(a_alg), mean(a_con) + mean(a_alg));
  std::printf("%-42s %12.3f %12.3f %12.3f\n",
              "(b) dynamic construct + static BFS on store", mean(b_con), mean(b_alg),
              mean(b_con) + mean(b_alg));
  std::printf("%-42s %12.3f %12.3f %12.3f\n",
              "(c) dynamic construct || dynamic BFS (live)", mean(c_tot), 0.0,
              mean(c_tot));
  std::printf("\nkey ratios: dyn/static construction = %.2fx, overlap overhead "
              "(c vs b-construct) = %.2fx\n",
              mean(b_con) / mean(a_con), mean(c_tot) / mean(b_con));

  BenchReport report("fig3", "static vs dynamic strategies");
  const auto strategy_row = [&](const char* strategy, double construct_s,
                                double algorithm_s, const Json& obs) {
    const double total = construct_s + algorithm_s;
    Json row = run_row(data.name, ranks, stream_events, total,
                       total > 0 ? static_cast<double>(stream_events) / total : 0.0);
    row["strategy"] = strategy;
    row["construct_seconds"] = construct_s;
    row["algorithm_seconds"] = algorithm_s;
    for (const auto& [key, value] : obs.members()) row[key] = value;
    return row;
  };
  report.add_run(strategy_row("static_csr_static_bfs", mean(a_con), mean(a_alg),
                              Json::object()));
  report.add_run(strategy_row("dynamic_construct_static_bfs", mean(b_con),
                              mean(b_alg), b_obs));
  report.add_run(strategy_row("dynamic_construct_dynamic_bfs", mean(c_tot), 0.0,
                              c_obs));
  report.set("dyn_over_static_construction", mean(b_con) / mean(a_con));
  report.set("overlap_overhead", mean(c_tot) / mean(b_con));
  report.write();
  return 0;
}
