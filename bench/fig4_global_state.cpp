// Figure 4 — global algorithm state collection for BFS during RMAT
// ingestion. At each interval: (left bar) the latency of an on-the-fly
// versioned collection, issued while the next stream segment is already
// ingesting; (right bar) the time to run the algorithm statically from
// scratch on the same topology; plus the graph size at the interval.
// The paper's intervals are 15 s of cluster ingest; we scale to event-count
// segments. Expected shape: collection latency in the milliseconds range,
// orders of magnitude below the static recompute.
#include <cstdio>

#include "bench_util.hpp"

using namespace remo;
using namespace remo::bench;

int main() {
  const DatasetScale scale = bench_scale_from_env();
  const RankId ranks = ranks_from_env({2})[0];
  constexpr int kIntervals = 6;

  RmatParams p;
  p.scale = static_cast<std::uint32_t>(16 + scale.scale_shift);
  p.edge_factor = 16;
  const EdgeList edges = generate_rmat(p);

  print_banner("Figure 4 — global state collection vs static recompute",
               strfmt("RMAT scale %u (|E|=%s), %u ranks, %d intervals", p.scale,
                      with_commas(edges.size()).c_str(), ranks, kIntervals));

  // Source: most frequent endpoint of the first events (always connected
  // early in a scrambled RMAT stream).
  const VertexId source = edges.front().src;

  EngineConfig cfg{.num_ranks = ranks};
  apply_obs_env(cfg);
  apply_comm_env(cfg);
  Engine engine(cfg);
  auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
  engine.inject_init(id, source);

  const std::size_t seg = edges.size() / kIntervals;
  std::printf("%-10s %14s %16s %18s %12s\n", "interval", "|E| stored",
              "collect_ms", "static_bfs_ms", "speedup");

  BenchReport report("fig4", "global state collection vs static recompute");
  const std::string dataset = strfmt("rmat-%u", p.scale);

  for (int i = 0; i < kIntervals; ++i) {
    EdgeList segment(edges.begin() + static_cast<std::ptrdiff_t>(i * seg),
                     i + 1 == kIntervals
                         ? edges.end()
                         : edges.begin() + static_cast<std::ptrdiff_t>((i + 1) * seg));
    const StreamSet streams = make_streams(segment, ranks, StreamOptions{.seed = 7});

    // Start the interval's ingestion, then immediately request the global
    // state at "now" — the collection runs while events keep flowing.
    engine.ingest_async(streams);
    Timer t;
    const Snapshot snap = engine.collect_versioned(id);
    const double collect_ms = t.millis();
    engine.await_quiescence();

    // Static reference: recompute from scratch on the same topology (the
    // topology is already in memory, as the paper notes — a snapshotting
    // system would pay load time on top).
    t.reset();
    const auto levels = static_bfs_on_store(engine, source);
    const double static_ms = t.millis();
    (void)levels;

    std::printf("%-10d %14s %16.2f %18.2f %11.1fx\n", i + 1,
                with_commas(engine.total_stored_edges()).c_str(), collect_ms,
                static_ms, static_ms / (collect_ms > 0 ? collect_ms : 1e-9));
    (void)snap;

    Json row = Json::object();
    row["dataset"] = dataset;
    row["ranks"] = static_cast<std::uint64_t>(ranks);
    row["interval"] = i + 1;
    row["edges_stored"] = static_cast<std::uint64_t>(engine.total_stored_edges());
    row["collect_ms"] = collect_ms;
    row["static_bfs_ms"] = static_ms;
    report.add_run(std::move(row));
  }
  report.set("final_obs", engine_obs_json(engine));
  report.write();
  return 0;
}
