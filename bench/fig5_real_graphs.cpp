// Figure 5 — events/s for each query on the "real-world" datasets, scaling
// the rank count. Columns CON (construction only) / BFS / SSSP / CC / ST
// per dataset, one bar per rank count. The paper's observations to
// reproduce: maintaining a live algorithm costs little over CON (updates
// amortise onto construction messaging), and per-dataset structure shifts
// the absolute rates.
#include <cstdio>

#include "bench_util.hpp"

using namespace remo;
using namespace remo::bench;

namespace {

VertexId source_in_largest_cc(const EdgeList& edges) {
  const CsrGraph g = CsrGraph::build(with_reverse_edges(edges));
  const auto cc = static_cc_union_find(g);
  RobinHoodMap<StateWord, std::uint64_t> sizes;
  for (const StateWord l : cc) ++sizes.get_or_insert(l);
  StateWord best_label = 0;
  std::uint64_t best = 0;
  sizes.for_each([&](const StateWord& l, std::uint64_t& n) {
    if (n > best) {
      best = n;
      best_label = l;
    }
  });
  for (CsrGraph::Dense v = 0; v < g.num_vertices(); ++v)
    if (cc[v] == best_label) return g.external_of(v);
  return 0;
}

}  // namespace

int main() {
  const int repeats = repeats_from_env();
  const auto ranks_list = ranks_from_env();
  const auto datasets = table1_datasets(bench_scale_from_env());

  print_banner("Figure 5 — per-algorithm event rates on real-graph stand-ins",
               strfmt("queries: CON/BFS/SSSP/CC/ST; ranks swept; %d repeats",
                      repeats));

  std::printf("%-18s %6s %14s %14s %14s %14s %14s\n", "dataset", "ranks", "CON",
              "BFS", "SSSP", "CC", "ST");

  BenchReport report("fig5", "per-algorithm event rates on real-graph stand-ins");
  const auto record = [&](const std::string& dataset, RankId ranks,
                          const char* query, const SaturationResult& res) {
    Json row = run_row(dataset, ranks, res.events, res.seconds,
                       res.events_per_second);
    row["query"] = query;
    for (const auto& [key, value] : res.obs.members()) row[key] = value;
    report.add_run(std::move(row));
  };

  for (const Dataset& d : datasets) {
    const VertexId source = source_in_largest_cc(d.edges);
    for (const RankId ranks : ranks_list) {
      const auto con = measure_saturation(d.edges, ranks, repeats, [](Engine&) {});
      const auto bfs =
          measure_saturation(d.edges, ranks, repeats, [&](Engine& e) {
            auto [id, prog] = e.attach_make<DynamicBfs>(source);
            e.inject_init(id, source);
          });
      const auto sssp =
          measure_saturation(d.edges, ranks, repeats, [&](Engine& e) {
            auto [id, prog] = e.attach_make<DynamicSssp>(source);
            e.inject_init(id, source);
          });
      const auto cc = measure_saturation(d.edges, ranks, repeats, [](Engine& e) {
        e.attach_make<DynamicCc>();
      });
      const auto st = measure_saturation(d.edges, ranks, repeats, [&](Engine& e) {
        auto [id, prog] =
            e.attach_make<MultiStConnectivity>(std::vector<VertexId>{source});
        inject_st_sources(e, id, *prog);
      });
      std::printf("%-18s %6u %14s %14s %14s %14s %14s\n", d.name.c_str(), ranks,
                  rate(con.events_per_second).c_str(),
                  rate(bfs.events_per_second).c_str(),
                  rate(sssp.events_per_second).c_str(),
                  rate(cc.events_per_second).c_str(),
                  rate(st.events_per_second).c_str());
      record(d.name, ranks, "con", con);
      record(d.name, ranks, "bfs", bfs);
      record(d.name, ranks, "sssp", sssp);
      record(d.name, ranks, "cc", cc);
      record(d.name, ranks, "st", st);
    }
  }
  report.write();
  return 0;
}
