// Figure 6 — strong & weak scaling on RMAT while maintaining BFS during
// construction. Rows: RMAT scale; columns: rank count; cells: events/s.
// Paper take-aways to reproduce: (strong) event rate grows with rank count
// for a fixed graph; (weak) for a fixed rank count, graph size barely
// moves the event rate — rate tracks structure, not scale.
// Host note: with a single physical core, multi-rank cells measure
// middleware overhead shape rather than true parallel speedup.
#include <cstdio>

#include "bench_util.hpp"

using namespace remo;
using namespace remo::bench;

int main() {
  const int repeats = repeats_from_env();
  const auto ranks_list = ranks_from_env();
  const DatasetScale scale = bench_scale_from_env();
  const std::uint32_t base = static_cast<std::uint32_t>(13 + scale.scale_shift);

  print_banner("Figure 6 — RMAT scaling, BFS maintained during construction",
               strfmt("scales %u..%u; events/s per (scale, ranks) cell; %d repeats",
                      base, base + 2, repeats));

  std::printf("%-12s %14s", "dataset", "|E|");
  for (const RankId r : ranks_list) std::printf(" %10u rk", r);
  std::printf("\n");

  BenchReport report("fig6", "RMAT scaling, BFS maintained during construction");

  for (std::uint32_t s = base; s <= base + 2; ++s) {
    RmatParams p;
    p.scale = s;
    p.edge_factor = 16;
    const EdgeList edges = generate_rmat(p);
    const VertexId source = edges.front().src;

    std::printf("rmat-%-7u %14s", s, with_commas(edges.size()).c_str());
    for (const RankId ranks : ranks_list) {
      const auto res = measure_saturation(edges, ranks, repeats, [&](Engine& e) {
        auto [id, prog] = e.attach_make<DynamicBfs>(source);
        e.inject_init(id, source);
      });
      std::printf(" %12s", rate(res.events_per_second).c_str());
      Json row = run_row(strfmt("rmat-%u", s), ranks, res.events, res.seconds,
                         res.events_per_second);
      for (const auto& [key, value] : res.obs.members()) row[key] = value;
      report.add_run(std::move(row));
    }
    std::printf("\n");
  }
  std::printf("\nweak scaling read: fix a column, go down rows (graph 4x bigger "
              "per row) — rates should stay flat.\nstrong scaling read: fix a "
              "row, go right.\n");
  report.write();
  return 0;
}
