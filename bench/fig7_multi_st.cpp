// Figure 7 — Multi S-T connectivity: events/s vs rank count for source
// counts 0 (construction only), 1, 2, 4, ..., 64 on the Twitter stand-in.
// Paper shapes to reproduce: the first few sources are nearly free (1->2
// under 10% cost), doubling the source set eventually nearly halves the
// rate.
#include <cstdio>

#include "bench_util.hpp"

using namespace remo;
using namespace remo::bench;

int main() {
  const int repeats = repeats_from_env();
  const auto ranks_list = ranks_from_env();
  const Dataset data = make_synth_twitter(bench_scale_from_env());

  print_banner("Figure 7 — Multi S-T source-count scaling",
               strfmt("dataset %s (|E|=%s); %d repeats", data.name.c_str(),
                      with_commas(data.edges.size()).c_str(), repeats));

  // Deterministic, distinct sources: the highest-degree vertices make the
  // flows overlap heavily, matching the stress intent.
  RobinHoodMap<VertexId, std::uint64_t> degree;
  for (const Edge& e : data.edges) {
    ++degree.get_or_insert(e.src);
    ++degree.get_or_insert(e.dst);
  }
  std::vector<std::pair<std::uint64_t, VertexId>> by_degree;
  degree.for_each([&](const VertexId& v, std::uint64_t& d) {
    by_degree.emplace_back(d, v);
  });
  std::sort(by_degree.rbegin(), by_degree.rend());

  const int source_counts[] = {0, 1, 2, 4, 8, 16, 32, 64};
  BenchReport report("fig7", "Multi S-T source-count scaling");

  // Two engine configurations: the paper's raw exchange (no redundancy
  // filter — Algorithm 7 exactly as written, whose messaging grows with
  // the source count), and with remo's neighbour-cache filter (which
  // suppresses most repeat mask broadcasts and flattens the curve).
  for (const bool filter : {false, true}) {
    std::printf("\n[nbr-cache filter %s]\n", filter ? "ON" : "OFF (paper behaviour)");
    std::printf("%-10s", "sources");
    for (const RankId r : ranks_list) std::printf(" %10u rk", r);
    std::printf("\n");

    for (const int n_sources : source_counts) {
      std::vector<VertexId> sources;
      for (int i = 0; i < n_sources; ++i)
        sources.push_back(by_degree[static_cast<std::size_t>(i)].second);

      std::printf("%-10d", n_sources);
      for (const RankId ranks : ranks_list) {
        std::vector<double> rates_acc;
        Json obs = Json::object();
        std::uint64_t events = 0;
        for (int rep = 0; rep < repeats; ++rep) {
          EngineConfig cfg;
          cfg.num_ranks = ranks;
          cfg.nbr_cache_filter = filter;
          Engine engine(cfg);
          if (!sources.empty()) {
            auto [id, prog] = engine.attach_make<MultiStConnectivity>(sources);
            inject_st_sources(engine, id, *prog);
          }
          const StreamSet streams = make_streams(
              data.edges, ranks, StreamOptions{.seed = 7 + static_cast<std::uint64_t>(rep)});
          const IngestStats st = engine.ingest(streams);
          rates_acc.push_back(st.events_per_second);
          events = st.events;
          if (rep == repeats - 1) obs = engine_obs_json(engine);
        }
        std::printf(" %12s", rate(mean(rates_acc)).c_str());
        const double eps = mean(rates_acc);
        Json row = run_row(data.name, ranks, events,
                           eps > 0 ? static_cast<double>(events) / eps : 0.0, eps);
        row["sources"] = n_sources;
        row["nbr_cache_filter"] = filter;
        for (const auto& [key, value] : obs.members()) row[key] = value;
        report.add_run(std::move(row));
      }
      std::printf("\n");
    }
  }
  report.write();
  return 0;
}
