// Figure 8 (serving extension, docs/SERVING.md) — mixed read/write plane:
// concurrent point queries answered from epoch-consistent views while a
// live RMAT ingest runs underneath. Reported shapes:
//   * query p50/p99 latency (pinned-view reads are RobinHood lookups, so
//     both should sit far below the refresh period);
//   * sustained update throughput with readers attached vs the no-reader
//     baseline (the "gates.throughput_ratio" — CI asserts >= the floor);
//   * WriteGate admission as a third row: conflict-scheduled concurrent
//     submission with wave-occupancy stats.
//
// Extra env knobs (on top of bench_util's):
//   REMO_SERVE_QUERIES     queries to issue per repeat (default 1,000,000)
//   REMO_SERVE_READERS     reader thread count (default 2)
//   REMO_SERVE_SCALE       RMAT scale (default 15, shifted by REMO_BENCH_SCALE)
//   REMO_SERVE_REFRESH_MS  view refresh cadence (default 50 — on a host
//                          where ranks and the refresher share cores, a
//                          cadence shorter than a versioned cut keeps a
//                          cut permanently in flight and taxes ingest)
//   REMO_SERVE_SPANS       1 (default) records a write-path span per gate
//                          batch in phase C; 0 disables the recorder (the
//                          A/B overhead baseline)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_util.hpp"

using namespace remo;
using namespace remo::bench;

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* s = std::getenv(name);
  return s && *s ? std::strtoull(s, nullptr, 10) : fallback;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ServeSetup {
  ProgramId bfs_id{}, cc_id{}, deg_id{};
  VertexId source = 0;
};

/// Attach the three served programs (BFS + CC + degree) and init the BFS.
ServeSetup attach_served(Engine& engine, const Dataset& data) {
  ServeSetup s;
  // Highest-degree vertex: cheap and guaranteed inside the giant component.
  RobinHoodMap<VertexId, std::uint64_t> degree;
  for (const Edge& e : data.edges) {
    ++degree.get_or_insert(e.src);
    ++degree.get_or_insert(e.dst);
  }
  std::uint64_t best = 0;
  degree.for_each([&](const VertexId& v, std::uint64_t& d) {
    if (d > best) {
      best = d;
      s.source = v;
    }
  });
  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(s.source);
  auto [cc_id, cc] = engine.attach_make<DynamicCc>();
  auto [deg_id, deg] = engine.attach_make<DegreeTracker>();
  s.bfs_id = bfs_id;
  s.cc_id = cc_id;
  s.deg_id = deg_id;
  engine.inject_init(bfs_id, s.source);
  return s;
}

}  // namespace

int main() {
  const int repeats = repeats_from_env();
  const RankId ranks = ranks_from_env({2}).front();
  const std::uint64_t query_target = env_u64("REMO_SERVE_QUERIES", 1'000'000);
  const std::uint64_t reader_count = env_u64("REMO_SERVE_READERS", 2);
  const std::uint64_t refresh_ms = env_u64("REMO_SERVE_REFRESH_MS", 50);
  const auto scale = static_cast<std::uint32_t>(std::max<std::int64_t>(
      8, static_cast<std::int64_t>(env_u64("REMO_SERVE_SCALE", 15)) +
             bench_scale_from_env().scale_shift));
  const Dataset data = make_rmat(scale);
  const std::uint64_t num_vertices = distinct_vertices(data.edges);

  print_banner(
      "Figure 8 — live query serving under ingest",
      strfmt("rmat-%u (|E|=%s), %llu queries, %llu readers, %u ranks",
             scale, with_commas(data.edges.size()).c_str(),
             static_cast<unsigned long long>(query_target),
             static_cast<unsigned long long>(reader_count), ranks));

  BenchReport report("fig8_serving", "Live query serving under ingest");
  report.doc()["config"] = comm_config_json();
  report.doc()["config"]["memory"] = memory_config_json();
  report.doc()["config"]["queries"] = query_target;
  report.doc()["config"]["readers"] = reader_count;
  report.doc()["config"]["scale"] = scale;
  report.doc()["config"]["refresh_ms"] = refresh_ms;

  // --- Phase A: no-reader baseline update throughput --------------------
  const SaturationResult base = measure_saturation(
      data.edges, ranks, repeats,
      [&](Engine& engine) { attach_served(engine, data); });
  std::printf("baseline ingest (no readers): %s events/s\n",
              rate(base.events_per_second).c_str());
  {
    Json row = run_row(data.name, ranks, base.events, base.seconds,
                       base.events_per_second);
    row["mode"] = "baseline";
    for (const auto& [k, v] : base.obs.members()) row[k] = v;
    report.add_run(std::move(row));
  }

  // --- Phase B: mixed read/write ----------------------------------------
  // Same mean-over-repeats convention as measure_saturation: on an
  // oversubscribed host a single run's ratio is dominated by scheduler
  // noise, so one fresh engine + reader fleet per repeat, rates averaged,
  // query latency histograms merged across all repeats.
  obs::HistogramSnapshot lat;
  std::vector<double> mixed_rates, mixed_secs;
  std::uint64_t mixed_events = 0;
  serve::ServeStats sstats;
  obs::GaugeSample gauges;
  Json mixed_obs = Json::object();
  for (int rep = 0; rep < repeats; ++rep) {
    EngineConfig cfg;
    cfg.num_ranks = ranks;
    apply_obs_env(cfg);
    apply_comm_env(cfg);
    Engine engine(cfg);
    const ServeSetup setup = attach_served(engine, data);

    serve::QueryService qs(
        engine, {.refresh_period_ms = static_cast<std::uint32_t>(refresh_ms),
                 .top_k = 16});
    qs.serve(setup.bfs_id, serve::ViewRole::kDistance);
    qs.serve(setup.cc_id, serve::ViewRole::kComponent);
    qs.serve(setup.deg_id, serve::ViewRole::kDegree);
    qs.start();

    std::atomic<bool> ingest_running{true};
    std::atomic<std::uint64_t> issued{0};
    std::vector<obs::LatencyHistogram> hists(reader_count);
    std::vector<std::thread> readers;
    for (std::uint64_t t = 0; t < reader_count; ++t) {
      readers.emplace_back([&, t] {
        Xoshiro256 rng(0xf1885e41ULL + t * 977 +
                       static_cast<std::uint64_t>(rep));
        obs::LatencyHistogram& hist = hists[t];
        for (;;) {
          // Paced bursts while ingest runs (readers must not starve the
          // rank threads — the throughput gate measures ingest with this
          // load); full speed once ingest is done, to drain the quota.
          // Large bursts at a long period rather than tiny ones at a short
          // period: per-query cost is ~0.2 us, so the tax on the rank
          // threads is wakeup preemptions, not query work.
          const bool live = ingest_running.load(std::memory_order_acquire);
          const std::uint64_t burst = live ? 256 : 4096;
          const std::uint64_t begin = issued.fetch_add(burst);
          if (begin >= query_target) break;
          const std::uint64_t end = std::min(begin + burst, query_target);
          for (std::uint64_t q = begin; q < end; ++q) {
            const auto u = static_cast<VertexId>(rng.bounded(num_vertices));
            const auto v = static_cast<VertexId>(rng.bounded(num_vertices));
            const auto t0 = std::chrono::steady_clock::now();
            const std::uint64_t kind = rng.bounded(100);
            if (kind < 40) {
              (void)qs.distance(setup.bfs_id, u);
            } else if (kind < 60) {
              (void)qs.component_of(setup.cc_id, u);
            } else if (kind < 80) {
              (void)qs.connected(setup.cc_id, u, v);
            } else if (kind < 90) {
              (void)qs.reachable(setup.bfs_id, u);
            } else {
              (void)qs.top_k_degree(setup.deg_id, 8);
            }
            hist.record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()));
          }
          if (live) std::this_thread::sleep_for(std::chrono::milliseconds(8));
        }
      });
    }

    const StreamSet streams = make_streams(
        data.edges, ranks,
        StreamOptions{.seed = 7 + static_cast<std::uint64_t>(rep)});
    const IngestStats mixed = engine.ingest(streams);
    ingest_running.store(false, std::memory_order_release);
    for (auto& r : readers) r.join();
    qs.stop();
    qs.refresh_all();

    for (auto& h : hists) lat.merge(h.snapshot());
    mixed_rates.push_back(mixed.events_per_second);
    mixed_secs.push_back(mixed.seconds);
    mixed_events = mixed.events;
    sstats = qs.stats();
    if (rep == repeats - 1) {
      gauges = engine.sample_gauges();
      mixed_obs = engine_obs_json(engine);
    }
  }

  const double mixed_eps = mean(mixed_rates);
  const double p50_us = static_cast<double>(lat.p50()) / 1e3;
  const double p99_us = static_cast<double>(lat.p99()) / 1e3;
  const double ratio =
      base.events_per_second > 0 ? mixed_eps / base.events_per_second : 0.0;

  std::printf("mixed ingest (with readers):  %s events/s (ratio %.2f)\n",
              rate(mixed_eps).c_str(), ratio);
  std::printf("queries: %s served, p50 %.1f us, p99 %.1f us\n",
              with_commas(lat.count).c_str(), p50_us, p99_us);
  std::printf("views: %llu refreshes/repeat, read-epoch lag %llu events\n",
              static_cast<unsigned long long>(sstats.refreshes),
              static_cast<unsigned long long>(sstats.read_epoch_lag_events));

  {
    Json row = run_row(data.name, ranks, mixed_events, mean(mixed_secs),
                       mixed_eps);
    row["mode"] = "mixed";
    row["queries"] = lat.count;
    row["query_p50_us"] = p50_us;
    row["query_p99_us"] = p99_us;
    row["reader_threads"] = reader_count;
    row["throughput_ratio"] = ratio;
    row["serve"] = sstats.to_json();
    for (const auto& [k, v] : mixed_obs.members()) row[k] = v;
    report.add_run(std::move(row));
  }

  // --- Phase C: conflict-scheduled gate admission with write-path spans --
  // A full serving plane this time (gate + periodic view publisher), so
  // every admitted batch's span can close at its covering publish and the
  // report carries a write-to-readable freshness distribution. Updates are
  // submitted in gate-batch-sized chunks — a streaming client, not one
  // giant enqueue — so queue time reflects admission, not the benchmark's
  // own backlog. REMO_SERVE_SPANS=0 turns the recorder off; the A/B pair
  // (bench/results/BENCH_fig8_spans_{off,on}.json) holds tracing overhead
  // to the <= 3% budget documented in docs/OBSERVABILITY.md.
  const bool spans_on = env_u64("REMO_SERVE_SPANS", 1) != 0;
  std::vector<double> gate_rates, gate_walls;
  std::uint64_t gate_events = 0;
  obs::SpanCounts span_counts{};
  Json gate_stats_json = Json::object();
  Json spans_json = Json::object();
  for (int rep = 0; rep < repeats; ++rep) {
    EngineConfig gcfg;
    gcfg.num_ranks = ranks;
    apply_comm_env(gcfg);
    Engine gengine(gcfg);
    const ServeSetup gsetup = attach_served(gengine, data);

    obs::SpanRecorder rec({.sample_shift = 0});
    obs::SpanRecorder* spans = spans_on ? &rec : nullptr;
    serve::QueryService gqs(
        gengine, {.refresh_period_ms = static_cast<std::uint32_t>(refresh_ms),
                  .top_k = 16,
                  .spans = spans});
    gqs.serve(gsetup.bfs_id, serve::ViewRole::kDistance);
    gqs.serve(gsetup.cc_id, serve::ViewRole::kComponent);
    gqs.serve(gsetup.deg_id, serve::ViewRole::kDegree);
    gqs.start();

    constexpr std::size_t kChunk = 4096;
    serve::WriteGate gate(gengine, {.batch_limit = kChunk,
                                    .dispatch_threads = 2,
                                    .spans = spans});
    std::vector<EdgeEvent> events;
    events.reserve(data.edges.size());
    for (const Edge& e : data.edges)
      events.push_back({e.src, e.dst, e.weight, EdgeOp::kAdd});
    const double t0 = now_s();
    for (std::size_t i = 0; i < events.size(); i += kChunk) {
      const std::size_t n = std::min(kChunk, events.size() - i);
      gate.submit_batch({events.begin() + static_cast<std::ptrdiff_t>(i),
                         events.begin() + static_cast<std::ptrdiff_t>(i + n)});
    }
    gate.flush();
    gengine.drain();
    const double secs = now_s() - t0;
    gqs.refresh_all();  // covering publish: closes every remaining span
    gqs.stop();
    gate_events = events.size();
    gate_walls.push_back(secs);
    gate_rates.push_back(
        secs > 0 ? static_cast<double>(events.size()) / secs : 0.0);
    if (rep != repeats - 1) continue;

    // Last repeat's structured detail goes into the report row; rates are
    // averaged across all repeats.
    gate_stats_json = gate.stats().to_json();
    const serve::WriteGateStats gst = gate.stats();
    std::printf(
        "gate ingest: %s events/s — %llu waves (%llu parallel, %llu "
        "fallback), occupancy %.1f\n",
        rate(mean(gate_rates)).c_str(),
        static_cast<unsigned long long>(gst.waves),
        static_cast<unsigned long long>(gst.parallel_waves),
        static_cast<unsigned long long>(gst.serial_fallback_batches),
        gst.mean_wave_occupancy);
    if (spans_on) {
      span_counts = rec.counts();
      std::printf(
          "spans: %llu/%llu closed — write-to-readable p50 %.1f ms, p99 "
          "%.1f ms\n",
          static_cast<unsigned long long>(span_counts.completed),
          static_cast<unsigned long long>(span_counts.batches_sampled),
          static_cast<double>(span_counts.freshness_p50_ns) / 1e6,
          static_cast<double>(span_counts.freshness_p99_ns) / 1e6);
      const obs::SpanSnapshot sn = rec.snapshot();
      Json sp = Json::object();
      sp["sampled"] = sn.batches_sampled;
      sp["completed"] = sn.completed;
      sp["open"] = sn.open;
      sp["dropped"] = sn.dropped_open;
      sp["freshness_p50_ms"] =
          static_cast<double>(sn.freshness.hist.p50()) / 1e6;
      sp["freshness_p99_ms"] =
          static_cast<double>(sn.freshness.hist.p99()) / 1e6;
      Json stages = Json::object();
      for (std::size_t i = 0; i < obs::kWriteStageCount; ++i) {
        Json e = Json::object();
        e["p50_ms"] = static_cast<double>(sn.stages[i].hist.p50()) / 1e6;
        e["p99_ms"] = static_cast<double>(sn.stages[i].hist.p99()) / 1e6;
        stages[obs::write_stage_name(static_cast<obs::WriteStage>(i))] = e;
      }
      sp["stages"] = stages;
      spans_json = std::move(sp);
    }
  }
  const double gate_eps = mean(gate_rates);
  {
    Json row = run_row(data.name, ranks, gate_events, mean(gate_walls),
                       gate_eps);
    row["mode"] = "gate";
    row["gate"] = gate_stats_json;
    row["spans_enabled"] = spans_on;
    if (spans_on) row["spans"] = spans_json;
    report.add_run(std::move(row));
  }

  // --- Embedded acceptance gates (CI's serving-smoke job asserts these) --
  // Freshness budget: under a saturating phase-C ingest, epoch cuts can
  // stay in flight as long as the rank backlog keeps refilling, so the
  // worst batch's write-to-readable time is bounded by the phase wall
  // itself, plus refresh-relative slack for the closing publishes. The
  // gate therefore asserts "no span outlived the workload that produced
  // it" — a leaked span or a stalled publisher blows straight past it —
  // rather than an absolute number a loaded CI host can't honour.
  // Span counts come from the last repeat, so the limit uses that
  // repeat's wall time.
  const double freshness_limit_ms =
      (gate_walls.empty() ? 0.0 : gate_walls.back()) * 1000.0 +
      static_cast<double>(refresh_ms) * 20.0 + 2000.0;
  Json gates = Json::object();
  gates["query_p99_ms"] = p99_us / 1e3;
  gates["query_p99_ms_limit"] = 20.0;
  gates["throughput_ratio"] = ratio;
  gates["throughput_ratio_min"] = 0.85;
  gates["queries_total"] = lat.count;
  gates["convergence_lag_events"] = gauges.convergence_lag_events;
  bool pass = p99_us / 1e3 <= 20.0 && ratio >= 0.85 &&
              gauges.convergence_lag_events == 0;
  gates["spans_enabled"] = spans_on;
  if (spans_on) {
    const double fresh_p50_ms =
        static_cast<double>(span_counts.freshness_p50_ns) / 1e6;
    const double fresh_p99_ms =
        static_cast<double>(span_counts.freshness_p99_ns) / 1e6;
    gates["freshness_p50_ms"] = fresh_p50_ms;
    gates["freshness_p99_ms"] = fresh_p99_ms;
    gates["freshness_p99_ms_limit"] = freshness_limit_ms;
    gates["spans_sampled"] = span_counts.batches_sampled;
    gates["spans_completed"] = span_counts.completed;
    gates["spans_open"] = span_counts.open;
    gates["spans_dropped"] = span_counts.dropped_open;
    const bool spans_ok = span_counts.batches_sampled > 0 &&
                          span_counts.completed == span_counts.batches_sampled &&
                          span_counts.open == 0 && span_counts.dropped_open == 0;
    gates["spans_complete"] = spans_ok;
    pass = pass && spans_ok && fresh_p99_ms <= freshness_limit_ms;
  }
  gates["pass"] = pass;
  report.set("gates", std::move(gates));
  report.write();
  return 0;
}
