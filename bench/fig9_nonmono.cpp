// Figure 9 — non-monotone incremental algorithms vs recompute-from-scratch
// (DESIGN.md §8, EXPERIMENTS.md). An rmat base graph absorbs batches of
// in-place edge-weight mutations; two arms process every batch:
//
//   memo     the live engine: PageRankDelta (memo-delta) folds each
//            mutation as a local rescale; WeightedSssp (memo-path) relaxes
//            decreases and repairs increases. State stays queryable
//            throughout.
//   scratch  the batch-analytics strawman: refold the surviving edge list,
//            rebuild the CSR, and rerun the static oracle after every
//            batch (static_pagerank / Dijkstra).
//
// The paper's claim transfers from the monotone family: the memoized
// incremental arms touch only the mutated neighbourhoods, so per-batch
// work is proportional to the damage, not to |E|. The committed A/B pair
// bench/results/BENCH_fig9_nonmono_{scratch,memo}.json is gated in CI with
// `remo bench-compare` (events_per_second must not regress from scratch to
// memo).
//
// Arm selection: REMO_FIG9_ARM = "memo" | "scratch" | "both" (default).
// Algorithm selection: REMO_FIG9_ALGO = "pagerank" | "wsssp" | "both"
// (default). Lineage amplification (visitors per mutation) rides along in
// each memo row's "lineage" block when REMO_OBS_LINEAGE=1.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.hpp"

using namespace remo;
using namespace remo::bench;

namespace {

struct ArmResult {
  double seconds = 0;          // total across batches
  double batch_seconds = 0;    // mean per batch
  Json obs = Json::object();
};

std::string env_or(const char* name, const char* dflt) {
  const char* s = std::getenv(name);
  return s && *s ? s : dflt;
}

/// Fold base + the first `upto` mutations per unordered pair.
EdgeList fold_topology(const EdgeList& base, const std::vector<EdgeEvent>& muts,
                       std::size_t upto) {
  RobinHoodMap<std::uint64_t, Edge> live;
  const auto key_of = [](VertexId a, VertexId b) {
    return event_pair_key(EdgeEvent{a, b, 1, EdgeOp::kAdd});
  };
  for (const Edge& e : base) live.get_or_insert(key_of(e.src, e.dst)) = e;
  for (std::size_t i = 0; i < upto; ++i)
    live.get_or_insert(key_of(muts[i].src, muts[i].dst)) =
        Edge{muts[i].src, muts[i].dst, muts[i].weight};
  EdgeList out;
  live.for_each([&](const std::uint64_t&, Edge& e) { out.push_back(e); });
  return out;
}

}  // namespace

int main() {
  const int repeats = repeats_from_env(1);
  const DatasetScale scale = bench_scale_from_env();
  const std::uint32_t rmat_scale =
      static_cast<std::uint32_t>(std::max(6, 13 + scale.scale_shift));
  const RankId ranks = ranks_from_env({4}).back();
  const std::string arm = env_or("REMO_FIG9_ARM", "both");
  const std::string algo = env_or("REMO_FIG9_ALGO", "both");
  // Serving tolerance, shared by both pagerank arms (the memo program's
  // publish threshold and the oracle's sweep eps) so neither side gets a
  // precision discount. The figure's operating point is 1e-2: an
  // incremental cascade stays *local* only while the batch's perturbation
  // mass sits below n * tolerance — past that every vertex re-broadcasts
  // for dozens of graph-wide rounds and a tight serial sweep wins on raw
  // constant factors (measured: tol 1e-6 on rmat-13 is >100x slower than
  // recompute; the 1e-9 program default exists for the fuzz oracle, where
  // exactness is the point and time is free). The memo row embeds the
  // *measured* served-rank error against a 1e-12 oracle, so the trade is
  // visible in the JSON, not buried here.
  const double pr_tol = std::atof(env_or("REMO_FIG9_TOL", "1e-2").c_str());

  // Base topology: deduped rmat with deterministic varied weights, so the
  // mutation stream (which needs one well-defined weight per pair) and the
  // static oracles see the same graph.
  Dataset data = make_rmat(rmat_scale, /*seed=*/scale.seed);
  EdgeList base;
  {
    RobinHoodMap<std::uint64_t, std::uint8_t> seen;
    std::uint32_t i = 0;
    for (const Edge& e : data.edges) {
      if (e.src == e.dst) continue;
      auto [slot, fresh] = seen.find_or_emplace(
          event_pair_key(EdgeEvent{e.src, e.dst, 1, EdgeOp::kAdd}),
          [] { return std::uint8_t{1}; });
      if (fresh)
        base.push_back(Edge{e.src, e.dst, static_cast<Weight>(1 + (i++ % 7))});
    }
  }

  // Small fixed batches: the online regime this figure is about. A batch
  // that rewrites a sizeable fraction of |E| perturbs every vertex's rank,
  // and no incremental scheme can beat a single full sweep on that — the
  // interesting (and realistic) operating point is damage << |E|.
  constexpr std::size_t kBatches = 8;
  constexpr std::size_t batch_events = 64;
  const std::vector<EdgeEvent> mutations = make_weight_mutations(
      base, {.num_events = static_cast<std::uint32_t>(kBatches * batch_events),
             .min_weight = 1,
             .max_weight = 8,
             .seed = scale.seed});

  print_banner(
      "Figure 9 — non-monotone incremental vs recompute-from-scratch",
      strfmt("rmat-%u (|E|=%s), %zu mutation batches x %s, %u ranks, %d repeats",
             rmat_scale, with_commas(base.size()).c_str(), kBatches,
             with_commas(batch_events).c_str(), ranks, repeats));

  const CsrGraph probe = CsrGraph::build(with_reverse_edges(base));
  const auto cc = static_cc_union_find(probe);
  RobinHoodMap<StateWord, std::uint64_t> sizes;
  for (const StateWord l : cc) ++sizes.get_or_insert(l);
  StateWord best_label = 0;
  std::uint64_t best = 0;
  sizes.for_each([&](const StateWord& l, std::uint64_t& n) {
    if (n > best) {
      best = n;
      best_label = l;
    }
  });
  VertexId source = 0;
  for (CsrGraph::Dense v = 0; v < probe.num_vertices(); ++v)
    if (cc[v] == best_label) {
      source = probe.external_of(v);
      break;
    }

  BenchReport report("fig9_nonmono",
                     "non-monotone incremental vs recompute-from-scratch");
  report.set("rmat_scale", Json(static_cast<double>(rmat_scale)));
  report.set("batches", Json(static_cast<double>(kBatches)));
  report.set("batch_events", Json(static_cast<double>(batch_events)));
  report.set("pagerank_tolerance", Json(pr_tol));

  const bool run_memo = arm == "memo" || arm == "both";
  const bool run_scratch = arm == "scratch" || arm == "both";
  // In single-arm mode the arm is recorded at report level, NOT per row:
  // bench-compare folds every string row field into the run identity, so a
  // per-row "arm" would stop the scratch rows from ever pairing with the
  // memo rows and the events_per_second gate would silently never apply.
  const bool both_arms = run_memo && run_scratch;
  if (!both_arms) report.set("arm", Json(arm));
  const bool run_pr = algo == "pagerank" || algo == "both";
  const bool run_ws = algo == "wsssp" || algo == "both";

  const std::uint64_t mut_events = mutations.size();
  const auto emit = [&](const char* name, const char* which_arm,
                        const ArmResult& r) {
    Json row = run_row(strfmt("rmat-%u", rmat_scale), ranks, mut_events,
                       r.seconds,
                       r.seconds > 0 ? static_cast<double>(mut_events) / r.seconds
                                     : 0.0);
    row["algorithm"] = name;
    if (both_arms) row["arm"] = which_arm;
    row["batch_seconds"] = r.batch_seconds;
    for (const auto& [key, value] : r.obs.members()) row[key] = value;
    report.add_run(std::move(row));
    std::printf("%-10s %-8s total %8.3fs   per-batch %8.4fs   %s\n", name,
                which_arm, r.seconds, r.batch_seconds,
                rate(r.seconds > 0 ? static_cast<double>(mut_events) / r.seconds
                                   : 0.0)
                    .c_str());
  };


  // Final topology after every batch has been applied — the fixpoint both
  // memo arms must be standing on when the stream ends.
  const EdgeList final_topology = fold_topology(base, mutations, mut_events);

  // --- memo arm: live engines absorb the mutation batches ------------------
  // `verify` runs once, after the timed batches, against the final
  // topology: the served-accuracy numbers it returns are embedded in the
  // JSON row so the figure carries its own error bars (the pagerank arm's
  // loose serving tolerance is a measured trade, not a hidden one).
  const auto memo_arm = [&](auto&& attach, bool needs_repair, auto&& verify) {
    ArmResult out;
    std::vector<double> totals;
    for (int rep = 0; rep < repeats; ++rep) {
      EngineConfig cfg;
      cfg.num_ranks = ranks;
      apply_obs_env(cfg);
      apply_comm_env(cfg);
      apply_memory_env(cfg);
      Engine engine(cfg);
      const ProgramId id = attach(engine);
      std::vector<EdgeEvent> adds;
      adds.reserve(base.size());
      for (const Edge& e : base)
        adds.push_back(EdgeEvent{e.src, e.dst, e.weight, EdgeOp::kAdd});
      engine.ingest(split_events(std::move(adds), ranks, /*shuffle=*/true,
                                 7 + static_cast<std::uint64_t>(rep)));
      Timer t;
      for (std::size_t b = 0; b < kBatches; ++b) {
        std::vector<EdgeEvent> batch(
            mutations.begin() + static_cast<std::ptrdiff_t>(b * batch_events),
            mutations.begin() +
                static_cast<std::ptrdiff_t>((b + 1) * batch_events));
        engine.ingest(split_events_keyed(std::move(batch), ranks, 11 + b));
        if (needs_repair) engine.repair(id);
      }
      totals.push_back(t.seconds());
      if (rep == repeats - 1) {
        out.obs = engine_obs_json(engine);
        const Json checked = verify(engine, id);
        for (const auto& [key, value] : checked.members())
          out.obs[key] = value;
        write_lineage_from_env(engine);
      }
    }
    out.seconds = mean(totals);
    out.batch_seconds = out.seconds / static_cast<double>(kBatches);
    return out;
  };

  // --- scratch arm: rebuild CSR + static oracle after every batch ----------
  const auto scratch_arm = [&](auto&& oracle) {
    ArmResult out;
    std::vector<double> totals;
    for (int rep = 0; rep < repeats; ++rep) {
      Timer t;
      for (std::size_t b = 1; b <= kBatches; ++b) {
        const EdgeList folded = fold_topology(base, mutations, b * batch_events);
        const CsrGraph g = CsrGraph::build(with_reverse_edges(folded));
        oracle(g);
      }
      totals.push_back(t.seconds());
    }
    out.seconds = mean(totals);
    out.batch_seconds = out.seconds / static_cast<double>(kBatches);
    return out;
  };

  if (run_pr) {
    if (run_memo)
      emit("pagerank", "memo",
           memo_arm(
               [&](Engine& e) {
                 return e.attach(std::make_shared<PageRankDelta>(
                     PageRankDelta::Options{.tolerance = pr_tol}));
               },
               /*needs_repair=*/false,
               [&](Engine& e, ProgramId id) {
                 // Served-rank error against a tight (1e-12) oracle on the
                 // final topology: what the loose publish tolerance
                 // actually cost, not what the worst-case bound allows.
                 // Absolute error concentrates at hubs (an absolute
                 // per-vertex mass threshold lets a degree-k hub absorb up
                 // to ~k unpublished ratios), and hub ranks are large — so
                 // the relative figure is the one that matters for a
                 // ranking workload.
                 const CsrGraph g =
                     CsrGraph::build(with_reverse_edges(final_topology));
                 const auto oracle = static_pagerank(g, {.eps = 1e-12});
                 double max_abs = 0.0, max_rel = 0.0;
                 for (CsrGraph::Dense v = 0; v < g.num_vertices(); ++v) {
                   const StateWord s = e.state_of(id, g.external_of(v));
                   const double got =
                       s == 0 ? 0.15 : std::bit_cast<double>(s);
                   const double err = std::abs(got - oracle[v]);
                   max_abs = std::max(max_abs, err);
                   max_rel = std::max(max_rel, err / oracle[v]);
                 }
                 Json j = Json::object();
                 j["served_rank_max_abs_err"] = max_abs;
                 j["served_rank_max_rel_err"] = max_rel;
                 return j;
               }));
    if (run_scratch)
      emit("pagerank", "scratch",
           scratch_arm([&](const CsrGraph& g) {
             (void)static_pagerank(g, {.eps = pr_tol});
           }));
  }
  if (run_ws) {
    if (run_memo)
      emit("wsssp", "memo",
           memo_arm(
               [&](Engine& e) {
                 auto [id, p] = e.attach_make<WeightedSssp>(source);
                 e.inject_init(id, source);
                 return id;
               },
               /*needs_repair=*/true,
               [&](Engine& e, ProgramId id) {
                 // Distances are exact (min-plus has no tolerance): any
                 // mismatch against Dijkstra on the final topology is a
                 // bug, and the committed evidence pins the count at 0.
                 const CsrGraph g =
                     CsrGraph::build(with_reverse_edges(final_topology));
                 const auto oracle = static_sssp_dijkstra(g, g.dense_of(source));
                 std::uint64_t mismatches = 0;
                 for (CsrGraph::Dense v = 0; v < g.num_vertices(); ++v)
                   if (e.state_of(id, g.external_of(v)) != oracle[v])
                     ++mismatches;
                 Json j = Json::object();
                 j["distance_mismatches"] =
                     static_cast<double>(mismatches);
                 return j;
               }));
    if (run_scratch)
      emit("wsssp", "scratch", scratch_arm([&](const CsrGraph& g) {
             (void)static_sssp_dijkstra(g, g.dense_of(source));
           }));
  }

  report.write();
  return 0;
}
