// google-benchmark micro benches for the storage substrate: RobinHoodMap
// vs std::unordered_map, and the two-tier adjacency under skew.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "common/rng.hpp"
#include "gen/rmat.hpp"
#include "storage/degaware_store.hpp"
#include "storage/robin_hood_map.hpp"

namespace {

using namespace remo;

void BM_RobinHoodInsert(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    RobinHoodMap<std::uint64_t, std::uint64_t> m;
    m.reserve(n);
    Xoshiro256 rng(1);
    for (std::uint64_t i = 0; i < n; ++i) m.insert_or_assign(rng(), i);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_RobinHoodInsert)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_StdUnorderedInsert(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    std::unordered_map<std::uint64_t, std::uint64_t> m;
    m.reserve(n);
    Xoshiro256 rng(1);
    for (std::uint64_t i = 0; i < n; ++i) m.insert_or_assign(rng(), i);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_StdUnorderedInsert)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_RobinHoodLookupHit(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  RobinHoodMap<std::uint64_t, std::uint64_t> m;
  Xoshiro256 fill(1);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < n; ++i) {
    keys.push_back(fill());
    m.insert_or_assign(keys.back(), i);
  }
  std::size_t idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.find(keys[idx]));
    idx = (idx + 1) % keys.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RobinHoodLookupHit)->Arg(1 << 16);

void BM_StdUnorderedLookupHit(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  std::unordered_map<std::uint64_t, std::uint64_t> m;
  Xoshiro256 fill(1);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < n; ++i) {
    keys.push_back(fill());
    m.emplace(keys.back(), i);
  }
  std::size_t idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.find(keys[idx]));
    idx = (idx + 1) % keys.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdUnorderedLookupHit)->Arg(1 << 16);

void BM_DegAwareInsertRmat(benchmark::State& state) {
  RmatParams p;
  p.scale = 14;
  p.edge_factor = 8;
  const EdgeList edges = generate_rmat(p);
  for (auto _ : state) {
    DegAwareStore store;
    for (const Edge& e : edges) store.insert_edge(e.src, e.dst, e.weight);
    benchmark::DoNotOptimize(store.edge_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges.size()) *
                          state.iterations());
}
BENCHMARK(BM_DegAwareInsertRmat);

void BM_DegAwareNeighbourScan(benchmark::State& state) {
  RmatParams p;
  p.scale = 14;
  p.edge_factor = 8;
  const EdgeList edges = generate_rmat(p);
  DegAwareStore store;
  for (const Edge& e : edges) store.insert_edge(e.src, e.dst, e.weight);
  for (auto _ : state) {
    std::uint64_t arcs = 0;
    store.for_each_vertex([&](VertexId, TwoTierAdjacency& adj) {
      adj.for_each([&](VertexId, EdgeProp&) { ++arcs; });
    });
    benchmark::DoNotOptimize(arcs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(store.edge_count()) *
                          state.iterations());
}
BENCHMARK(BM_DegAwareNeighbourScan);

}  // namespace
