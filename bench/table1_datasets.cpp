// Table I — "Graphs used in experiments": name, #Vertices, #Edges,
// on-disk space. The paper lists Friendster / Twitter / SK2005 / Webgraph
// / RMAT(SCALE); we list the synthetic stand-ins plus what they substitute
// (DESIGN.md §3) and additionally report the resident size of the dynamic
// store after ingestion.
#include <cstdio>

#include "bench_util.hpp"

using namespace remo;
using namespace remo::bench;

int main() {
  print_banner("Table I — dataset inventory",
               "paper columns: Name, #Vertices, #Edges, OnDiskSpace; plus our "
               "in-memory DegAwareStore footprint");

  std::printf("%-18s %-26s %14s %14s %12s %14s\n", "Name", "StandsFor", "#Vertices",
              "#Edges(dir)", "OnDisk", "StoreBytes");

  BenchReport report("table1", "dataset inventory");
  for (const Dataset& d : table1_datasets(bench_scale_from_env())) {
    const std::uint64_t verts = distinct_vertices(d.edges);
    const std::uint64_t disk = d.edges.size() * 20;  // binary record size

    Engine engine(EngineConfig{.num_ranks = 1});
    engine.ingest(make_streams(d.edges, 1));
    const std::size_t resident = engine.store_memory_bytes();

    std::printf("%-18s %-26s %14s %14s %12s %14s\n", d.name.c_str(),
                d.stands_for.c_str(), with_commas(verts).c_str(),
                with_commas(d.edges.size()).c_str(), human_bytes(disk).c_str(),
                human_bytes(resident).c_str());

    Json row = Json::object();
    row["dataset"] = d.name;
    row["stands_for"] = d.stands_for;
    row["vertices"] = verts;
    row["edges_directed"] = static_cast<std::uint64_t>(d.edges.size());
    row["on_disk_bytes"] = disk;
    row["store_bytes"] = static_cast<std::uint64_t>(resident);
    report.add_run(std::move(row));
  }
  report.write();
  std::printf("\nRMAT convention (paper): 2^SCALE vertices, 16x undirected edge "
              "factor; graphs made\nundirected by materialising reverse edges at "
              "ingest (doubling stored arcs).\n");
  return 0;
}
