// Writing your own REMO algorithm.
//
// The paper's recipe (Section II-B): find the state that evolves
// monotonically, express the repair as a recursive update event, and the
// engine gives you asynchrony, live queries, and snapshots for free.
//
// Here: **K-hop neighbourhood membership** — "is this vertex within K hops
// of the watch vertex?" The state is min(level, K+1) clamped at the
// horizon, so cascades stop after K hops no matter how large the graph
// gets: a bounded, cheap variant of BFS that is exactly what a
// notification service wants ("alert me when anyone gets within 3 hops of
// the compromised machine").
#include <atomic>
#include <cstdio>

#include "remo/remo.hpp"

using namespace remo;

namespace {

class KHopWatch : public VertexProgram {
 public:
  KHopWatch(VertexId watch, StateWord k) : watch_(watch), k_(k) {}

  std::string name() const override { return "k-hop-watch"; }

  // Identity: "farther than K" — encoded as k_+2 so the lattice is finite
  // and the redundancy filter applies cleanly.
  StateWord identity() const override { return k_ + 2; }
  bool no_worse(StateWord a, StateWord b) const override { return a <= b; }
  bool update_is_redundant(StateWord nbr_cache, StateWord value) const override {
    return nbr_cache <= value;
  }

  void init(VertexContext& ctx) override {
    ctx.set_value(1);
    ctx.update_all_nbrs(1);
  }

  void on_reverse_add(VertexContext& ctx, VertexId nbr, StateWord nbr_val,
                      Weight w) override {
    on_update(ctx, nbr, nbr_val, w);
  }

  void on_update(VertexContext& ctx, VertexId from, StateWord from_val,
                 Weight /*w*/) override {
    const StateWord mine = ctx.value();
    if (from_val <= k_ && mine > from_val + 1) {
      ctx.set_value(from_val + 1);
      // The one twist over plain BFS: never propagate past the horizon.
      if (from_val + 1 <= k_) ctx.update_all_nbrs(from_val + 1);
    } else if (mine <= k_ && from_val > mine + 1) {
      ctx.update_single_nbr(from, mine);  // help the sender converge
    }
  }

 private:
  VertexId watch_;
  StateWord k_;
};

}  // namespace

int main() {
  constexpr VertexId kWatch = 0;  // the "compromised machine"
  constexpr StateWord kHops = 3;

  Engine engine(EngineConfig{.num_ranks = 4});
  auto [watch_id, watch] = engine.attach_make<KHopWatch>(kWatch, kHops);
  engine.inject_init(watch_id, kWatch);

  // Real-time reaction: announce every machine entering the 3-hop ball.
  std::atomic<int> inside{0};
  engine.when_any(watch_id,
                  [](StateWord d) { return d <= kHops + 1; },  // level<=K+1 ⇒ ≤K hops
                  [&](VertexId v, StateWord d) {
                    inside.fetch_add(1);
                    if (inside.load() <= 8)
                      std::printf("[watch] machine %llu is now %llu hop(s) away\n",
                                  static_cast<unsigned long long>(v),
                                  static_cast<unsigned long long>(d - 1));
                  });

  // A growing network: preferential attachment around a few routers.
  PrefAttachParams p;
  p.num_vertices = 30000;
  p.edges_per_vertex = 6;
  p.seed = 99;
  const EdgeList network = generate_pref_attach(p);

  Timer t;
  engine.ingest(make_streams(network, 4));

  const Snapshot ball = engine.collect_quiescent(watch_id);
  std::uint64_t per_ring[8] = {};
  for (const auto& [v, d] : ball)
    if (d >= 1 && d <= kHops + 1) ++per_ring[d - 1];

  std::printf("\nnetwork of %s links ingested in %.3f s\n",
              with_commas(network.size()).c_str(), t.seconds());
  std::printf("%d machines inside the %llu-hop ball of machine %llu:\n",
              inside.load(), static_cast<unsigned long long>(kHops),
              static_cast<unsigned long long>(kWatch));
  for (StateWord d = 1; d <= kHops; ++d)
    std::printf("  ring %llu: %s machines\n", static_cast<unsigned long long>(d),
                with_commas(per_ring[d]).c_str());

  // The horizon really bounds the cascade: nothing beyond K+1 is stored.
  for (const auto& [v, d] : ball)
    if (d > kHops + 1) {
      std::printf("BUG: state beyond horizon at %llu\n",
                  static_cast<unsigned long long>(v));
      return 1;
    }
  return 0;
}
