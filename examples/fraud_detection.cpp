// Fraud detection on a live payment network — the paper's motivating
// "financial fraud detection" use case (Section I).
//
// A synthetic payment stream flows through the engine. A Multi S-T
// connectivity program maintains, for every account, which *flagged*
// accounts can reach it through payment chains. A "when_any" query raises
// an alert the instant any account becomes reachable from two or more
// flagged accounts — in real time, at single-payment granularity, without
// snapshots.
#include <atomic>
#include <cstdio>
#include <vector>

#include "remo/remo.hpp"

using namespace remo;

namespace {

// A payment network: mostly organic traffic (preferential attachment — a
// few busy exchanges, many small accounts) plus two "mule chains" that
// secretly connect the flagged accounts to a common collector.
struct Workload {
  EdgeList payments;
  std::vector<VertexId> flagged;
  VertexId collector;
};

Workload make_workload() {
  Workload w;
  PrefAttachParams p;
  p.num_vertices = 20000;
  p.edges_per_vertex = 6;
  p.seed = 2024;
  w.payments = generate_pref_attach(p);

  // Two flagged accounts outside the organic id range, plus mule chains
  // that eventually meet at the collector account. The flagged accounts
  // also transact with the organic economy (that is what makes them
  // dangerous: their taint propagates through ordinary payment chains).
  w.flagged = {900001, 900002};
  w.collector = 950000;
  w.payments.push_back({w.flagged[0], 5, 1});
  w.payments.push_back({w.flagged[1], 77, 1});
  for (std::size_t chain = 0; chain < w.flagged.size(); ++chain) {
    VertexId prev = w.flagged[chain];
    for (int hop = 0; hop < 4; ++hop) {
      const VertexId mule = 910000 + static_cast<VertexId>(chain) * 100 +
                            static_cast<VertexId>(hop);
      w.payments.push_back({prev, mule, 1});
      prev = mule;
    }
    w.payments.push_back({prev, w.collector, 1});
  }
  return w;
}

}  // namespace

int main() {
  const Workload w = make_workload();

  EngineConfig cfg;
  cfg.num_ranks = 4;
  Engine engine(cfg);

  auto [st_id, st] = engine.attach_make<MultiStConnectivity>(w.flagged);

  // Alert when any account is reachable from >= 2 flagged sources. Print
  // the first few; afterwards just count (the taint eventually floods the
  // whole connected economy — realistic, and the census below reports it).
  std::atomic<int> alerts{0};
  engine.when_any(st_id,
                  [](StateWord mask) { return __builtin_popcountll(mask) >= 2; },
                  [&](VertexId account, StateWord mask) {
                    if (alerts.fetch_add(1) < 5)
                      std::printf("[ALERT] account %llu reachable from %d flagged "
                                  "accounts (mask=0x%llx)\n",
                                  static_cast<unsigned long long>(account),
                                  __builtin_popcountll(mask),
                                  static_cast<unsigned long long>(mask));
                  });

  // Dedicated point query on the suspected collector.
  engine.when(st_id, w.collector, [](StateWord mask) { return mask != 0; },
              [](VertexId account, StateWord) {
                std::printf("[watch] collector %llu first touched by a flagged "
                            "flow\n",
                            static_cast<unsigned long long>(account));
              });

  inject_st_sources(engine, st_id, *st);

  // Stream the payments through four concurrent feeds, shuffled — payment
  // order across feeds is not coordinated, exactly the paper's multi-stream
  // ingestion model.
  Timer t;
  const StreamSet feeds = make_streams(w.payments, 4, StreamOptions{.seed = 99});
  const IngestStats stats = engine.ingest(feeds);

  std::printf("\nprocessed %s payments in %.3f s (%.2fM events/s), %d alert "
              "vertices\n",
              with_commas(stats.events).c_str(), stats.seconds,
              stats.events_per_second / 1e6, alerts.load());

  // Post-hoc audit: how much of the network can each flagged account reach?
  const Snapshot snap = engine.collect_quiescent(st_id);
  std::uint64_t reach[2] = {0, 0};
  for (const auto& [v, mask] : snap) {
    if (mask & 1) ++reach[0];
    if (mask & 2) ++reach[1];
  }
  for (std::size_t i = 0; i < w.flagged.size(); ++i)
    std::printf("flagged %llu reaches %s accounts\n",
                static_cast<unsigned long long>(w.flagged[i]),
                with_commas(reach[i]).c_str());
  return alerts.load() > 0 ? 0 : 1;  // the mule chains must be detected
}
