// Quickstart: the degree-tracking example of Section II-A plus a live BFS.
//
//   $ ./quickstart
//
// Walks through the whole public API in ~80 lines: build an engine, attach
// programs, register "when" queries, feed edge events, collect a snapshot.
#include <cstdio>

#include "remo/remo.hpp"

using namespace remo;

int main() {
  // 1. An engine with four shared-nothing ranks on an undirected graph.
  EngineConfig cfg;
  cfg.num_ranks = 4;
  Engine engine(cfg);

  // 2. Attach algorithms. Programs are stateless logic; all per-vertex
  //    state lives inside the engine's rank-local stores.
  auto [deg_id, degree] = engine.attach_make<DegreeTracker>();
  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(/*source=*/0);

  // 3. "When" queries — the paper's Section II-A example: a callback when
  //    a vertex's degree crosses a threshold...
  engine.when(deg_id, /*vertex=*/0, [](StateWord d) { return d >= 3; },
              [](VertexId v, StateWord d) {
                std::printf("[trigger] vertex %llu reached degree %llu\n",
                            static_cast<unsigned long long>(v),
                            static_cast<unsigned long long>(d));
              });
  //    ...and a "When is vertex 5 connected to the BFS source?" query.
  engine.when(bfs_id, /*vertex=*/5,
              [](StateWord level) { return level != kInfiniteState; },
              [](VertexId v, StateWord level) {
                std::printf("[trigger] vertex %llu became reachable at level %llu\n",
                            static_cast<unsigned long long>(v),
                            static_cast<unsigned long long>(level));
              });

  // 4. Instantiate the BFS at its source — allowed at any time, even
  //    mid-ingestion.
  engine.inject_init(bfs_id, 0);

  // 5. Feed topology events. Here one by one; production code hands the
  //    engine whole StreamSets (see the other examples).
  const EdgeEvent events[] = {
      {0, 1, 1, EdgeOp::kAdd}, {1, 2, 1, EdgeOp::kAdd}, {2, 3, 1, EdgeOp::kAdd},
      {0, 4, 1, EdgeOp::kAdd}, {4, 5, 1, EdgeOp::kAdd}, {0, 9, 1, EdgeOp::kAdd},
  };
  for (const EdgeEvent& e : events) engine.inject_edge(e);
  engine.drain();  // run to quiescence

  // 6. Query converged local state...
  std::printf("\nBFS levels (source=0):\n");
  for (VertexId v = 0; v <= 5; ++v)
    std::printf("  vertex %llu -> level %llu\n", static_cast<unsigned long long>(v),
                static_cast<unsigned long long>(engine.state_of(bfs_id, v)));

  // 7. ...and collect a global snapshot (here quiescent; collect_versioned
  //    does the same without pausing a live stream).
  const Snapshot snap = engine.collect_quiescent(deg_id);
  std::printf("\ndegree snapshot (%zu vertices):\n", snap.size());
  for (const auto& [v, d] : snap)
    std::printf("  vertex %llu -> degree %llu\n", static_cast<unsigned long long>(v),
                static_cast<unsigned long long>(d));

  std::printf("\nprocessed %llu topology events across %u ranks\n",
              static_cast<unsigned long long>(engine.metrics().topology_events),
              engine.num_ranks());
  return 0;
}
