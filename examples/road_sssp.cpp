// Streaming shortest paths on an evolving road network, with closures.
//
// A grid-shaped road network opens segment by segment (weighted edge adds);
// a dynamic SSSP maintains travel times from a depot. Road closures arrive
// as delete events; Engine::repair() (the Section VI-B decremental
// extension) restores exact distances without recomputing the network.
#include <cstdio>

#include "remo/remo.hpp"

using namespace remo;

namespace {

constexpr std::uint64_t kGrid = 120;  // kGrid x kGrid intersections

VertexId node(std::uint64_t x, std::uint64_t y) { return y * kGrid + x; }

// Deterministic per-segment travel time, 1..9.
Weight travel_time(VertexId a, VertexId b) {
  return 1 + static_cast<Weight>(splitmix64(a * 131 + b) % 9);
}

}  // namespace

int main() {
  // Build the road-opening stream: every grid segment, shuffled (roads
  // open in no particular order).
  EdgeList roads;
  for (std::uint64_t y = 0; y < kGrid; ++y)
    for (std::uint64_t x = 0; x < kGrid; ++x) {
      if (x + 1 < kGrid)
        roads.push_back({node(x, y), node(x + 1, y), travel_time(node(x, y), node(x + 1, y))});
      if (y + 1 < kGrid)
        roads.push_back({node(x, y), node(x, y + 1), travel_time(node(x, y), node(x, y + 1))});
    }
  std::vector<EdgeEvent> opening;
  for (const Edge& e : roads) opening.push_back({e.src, e.dst, e.weight, EdgeOp::kAdd});

  EngineConfig cfg;
  cfg.num_ranks = 4;
  Engine engine(cfg);

  const VertexId depot = node(0, 0);
  auto [sssp_id, sssp] = engine.attach_make<DynamicSssp>(
      depot, DynamicSssp::Options{.support_deletes = true});
  engine.inject_init(sssp_id, depot);

  // Alert the dispatcher the moment the far corner becomes reachable in
  // under 300 time units.
  const VertexId far_corner = node(kGrid - 1, kGrid - 1);
  engine.when(sssp_id, far_corner, [](StateWord d) { return d < 300; },
              [](VertexId, StateWord d) {
                std::printf("[dispatch] far corner reachable in %llu units\n",
                            static_cast<unsigned long long>(d));
              });

  Timer t;
  engine.ingest(split_events(opening, 4, /*shuffle=*/true, /*seed=*/3));
  std::printf("network open: %s segments in %.3f s; depot->far corner = %llu\n",
              with_commas(roads.size()).c_str(), t.seconds(),
              static_cast<unsigned long long>(engine.state_of(sssp_id, far_corner)));

  // Rush hour: close a vertical band of roads in the middle of the grid.
  std::vector<EdgeEvent> closures;
  const std::uint64_t wall_x = kGrid / 2;
  for (std::uint64_t y = 0; y + 1 < kGrid; ++y) {  // leave one gap at the top
    closures.push_back({node(wall_x, y), node(wall_x + 1, y),
                        travel_time(node(wall_x, y), node(wall_x + 1, y)),
                        EdgeOp::kDelete});
  }
  t.reset();
  engine.ingest(split_events(closures, 4));
  engine.repair(sssp_id);
  std::printf("closed %zu segments + repaired in %.3f s; depot->far corner = %llu "
              "(detour through the gap)\n",
              closures.size(), t.seconds(),
              static_cast<unsigned long long>(engine.state_of(sssp_id, far_corner)));

  // Sanity: repair result must equal Dijkstra over the surviving network.
  const auto reference = static_sssp_on_store(engine, depot);
  const StateWord* ref = reference.find(far_corner);
  if (!ref || *ref != engine.state_of(sssp_id, far_corner)) {
    std::printf("MISMATCH vs static Dijkstra!\n");
    return 1;
  }
  std::printf("verified against static Dijkstra on the dynamic store.\n");
  return 0;
}
