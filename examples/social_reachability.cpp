// Social-network reachability analytics: live connected components plus
// BFS influence radius over a growing friendship graph, with global
// snapshots taken *while* the stream keeps flowing (Section III-D's
// versioned collection) — the "query graph state in-between snapshots"
// capability the paper contrasts against batch systems.
#include <cstdio>

#include "remo/remo.hpp"

using namespace remo;

int main() {
  // Friendship formation: preferential attachment, in arrival order — a
  // naturally incremental feed (new user joins, adds friends).
  PrefAttachParams p;
  p.num_vertices = 50000;
  p.edges_per_vertex = 10;
  p.seed = 7;
  const EdgeList friendships = generate_pref_attach(p);

  EngineConfig cfg;
  cfg.num_ranks = 4;
  Engine engine(cfg);

  auto [cc_id, cc] = engine.attach_make<DynamicCc>();
  // Influence radius of user 0 (an early, high-degree user).
  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(0);
  engine.inject_init(bfs_id, 0);

  // Kick off ingestion asynchronously; the main thread plays "analyst",
  // pulling a consistent global picture every so often without pausing
  // the feed.
  const StreamSet feed = make_streams(friendships, 4,
                                      StreamOptions{.shuffle = false});  // arrival order
  engine.ingest_async(feed);

  for (int epoch = 1; epoch <= 3; ++epoch) {
    const Snapshot communities = engine.collect_versioned(cc_id);
    const Snapshot radius = engine.collect_versioned(bfs_id);

    // Community census at this instant.
    RobinHoodMap<StateWord, std::uint64_t> sizes;
    for (const auto& [v, label] : communities) ++sizes.get_or_insert(label);
    std::uint64_t largest = 0;
    sizes.for_each([&](const StateWord&, std::uint64_t& n) {
      if (n > largest) largest = n;
    });

    // Influence histogram: how many users within k hops of user 0.
    std::uint64_t within[5] = {};
    for (const auto& [v, level] : radius)
      if (level >= 1 && level <= 5) ++within[level - 1];

    std::printf("[cut %d] users=%s communities=%s largest=%s | reach of user 0: "
                "1-hop=%s 2-hop=%s 3-hop=%s\n",
                epoch, with_commas(communities.size()).c_str(),
                with_commas(sizes.size()).c_str(), with_commas(largest).c_str(),
                with_commas(within[1]).c_str(), with_commas(within[2]).c_str(),
                with_commas(within[3]).c_str());
  }

  const IngestStats stats = engine.await_quiescence();
  std::printf("\nfeed complete: %s friendships in %.3f s (%.2fM events/s)\n",
              with_commas(stats.events).c_str(), stats.seconds,
              stats.events_per_second / 1e6);

  // Final exact answer, for reference.
  const Snapshot final_cc = engine.collect_quiescent(cc_id);
  RobinHoodMap<StateWord, std::uint64_t> sizes;
  for (const auto& [v, label] : final_cc) ++sizes.get_or_insert(label);
  std::printf("final: %s users in %s communities\n",
              with_commas(final_cc.size()).c_str(),
              with_commas(sizes.size()).c_str());
  return 0;
}
