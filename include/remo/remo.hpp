// remo — incremental graph processing for on-line analytics.
//
// Umbrella header for the public API. See README.md for a tour and
// DESIGN.md for the system inventory.
#pragma once

// Common utilities
#include "common/bitset.hpp"
#include "common/build_info.hpp"
#include "common/hash.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/strfmt.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"

// Observability (histograms, phase timers, chrome-trace export, live
// telemetry: gauges, metrics exporter, stall watchdog)
#include "obs/bench_compare.hpp"
#include "obs/exporter.hpp"
#include "obs/gauges.hpp"
#include "obs/histogram.hpp"
#include "obs/lineage.hpp"
#include "obs/obs_config.hpp"
#include "obs/phase_timer.hpp"
#include "obs/prof.hpp"
#include "obs/span.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

// Dynamic graph storage (DegAwareRHH-style)
#include "storage/adjacency.hpp"
#include "storage/degaware_store.hpp"
#include "storage/robin_hood_map.hpp"

// Static substrate & oracles
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/static_bfs.hpp"
#include "graph/static_cc.hpp"
#include "graph/static_pagerank.hpp"
#include "graph/static_sssp.hpp"
#include "graph/static_st.hpp"

// Workload generation & streams
#include "gen/datasets.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/pref_attach.hpp"
#include "gen/rmat.hpp"
#include "gen/stream.hpp"

// I/O
#include "io/edge_io.hpp"

// Engine & programming model
#include "core/engine.hpp"
#include "core/engine_config.hpp"
#include "core/query.hpp"
#include "core/snapshot.hpp"
#include "core/static_on_dynamic.hpp"
#include "core/vertex_program.hpp"

// Memory & locality plane (huge-page arenas, NUMA topology, rank pinning)
#include "runtime/memory.hpp"
#include "runtime/topology.hpp"

// Query serving plane (epoch-consistent reads, conflict-scheduled writes)
#include "runtime/conflict.hpp"
#include "serve/query_service.hpp"
#include "serve/serving_gauges.hpp"
#include "serve/write_gate.hpp"

// Differential fuzzing & deterministic replay
#include "fuzz/fuzz.hpp"
#include "fuzz/repro.hpp"
#include "fuzz/shrink.hpp"

// REMO algorithms
#include "core/algorithms/degree_tracker.hpp"
#include "core/algorithms/dynamic_bfs.hpp"
#include "core/algorithms/dynamic_cc.hpp"
#include "core/algorithms/dynamic_sssp.hpp"
#include "core/algorithms/multi_st.hpp"
#include "core/algorithms/pagerank_delta.hpp"
#include "core/algorithms/weighted_sssp.hpp"
#include "core/algorithms/wide_st.hpp"
