// Lightweight assertion macros.
//
// REMO_ASSERT is compiled out in NDEBUG builds; REMO_CHECK is always on and
// is used for invariants whose violation would silently corrupt distributed
// state (lost messages, double-frees in the store, ...).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace remo::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "remo: check failed: %s at %s:%d%s%s\n", expr, file, line,
               msg && *msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace remo::detail

#define REMO_CHECK(expr)                                                  \
  do {                                                                    \
    if (!(expr)) ::remo::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define REMO_CHECK_MSG(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) ::remo::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define REMO_ASSERT(expr) ((void)0)
#else
#define REMO_ASSERT(expr) REMO_CHECK(expr)
#endif
