// DynamicBitset: a runtime-sized bitset used by the wide Multi S-T
// connectivity algorithm (more than 64 concurrent sources) and by the
// static oracles to mark visited vertices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace remo {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t nbits, bool value = false)
      : nbits_(nbits), words_(word_count(nbits), value ? ~std::uint64_t{0} : 0) {
    trim();
  }

  std::size_t size() const noexcept { return nbits_; }
  bool empty() const noexcept { return nbits_ == 0; }

  void resize(std::size_t nbits, bool value = false) {
    const std::size_t old_words = words_.size();
    if (value && nbits > nbits_ && old_words > 0) {
      // Fill the tail of the last partially used word before growing.
      const std::size_t tail = nbits_ % 64;
      if (tail != 0) words_.back() |= ~std::uint64_t{0} << tail;
    }
    words_.resize(word_count(nbits), value ? ~std::uint64_t{0} : 0);
    nbits_ = nbits;
    trim();
  }

  bool test(std::size_t i) const {
    REMO_ASSERT(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void set(std::size_t i) {
    REMO_ASSERT(i < nbits_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void reset(std::size_t i) {
    REMO_ASSERT(i < nbits_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  void clear() { words_.assign(words_.size(), 0); }

  std::size_t count() const noexcept {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  bool any() const noexcept {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  bool all() const noexcept { return count() == nbits_; }

  /// this |= other. Sizes must match.
  DynamicBitset& operator|=(const DynamicBitset& other) {
    REMO_CHECK(nbits_ == other.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  DynamicBitset& operator&=(const DynamicBitset& other) {
    REMO_CHECK(nbits_ == other.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  bool operator==(const DynamicBitset& other) const noexcept {
    return nbits_ == other.nbits_ && words_ == other.words_;
  }

  /// True when every bit of `other` is also set in `*this`.
  bool is_superset_of(const DynamicBitset& other) const {
    REMO_CHECK(nbits_ == other.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if ((words_[i] & other.words_[i]) != other.words_[i]) return false;
    return true;
  }

  const std::vector<std::uint64_t>& words() const noexcept { return words_; }

 private:
  static std::size_t word_count(std::size_t nbits) { return (nbits + 63) / 64; }

  // Zero bits past nbits_ so equality/count stay well defined.
  void trim() {
    const std::size_t tail = nbits_ % 64;
    if (tail != 0 && !words_.empty()) words_.back() &= (~std::uint64_t{0}) >> (64 - tail);
  }

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace remo
