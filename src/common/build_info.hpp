// Build provenance baked in at configure time (git SHA, compiler, flags).
// Every BenchReport embeds this in its "config.build" block so committed
// BENCH_*.json evidence is traceable to the exact tree and toolchain that
// produced it, and `remo bench-compare` can refuse cross-toolchain
// comparisons (the SHA itself is masked from the fingerprint — comparing
// two commits is the point of the tool).
#pragma once

#include "common/json.hpp"

namespace remo {

struct BuildInfo {
  const char* git_sha;     ///< short SHA at configure time ("unknown" outside git)
  const char* compiler;    ///< "<id> <version>", e.g. "GNU 12.2.0"
  const char* build_type;  ///< CMAKE_BUILD_TYPE
  const char* cxx_flags;   ///< base + per-build-type flags, whitespace-trimmed
};

/// The provenance of this build (values substituted by CMake).
const BuildInfo& build_info();

/// The same as a JSON object {git_sha, compiler, build_type, cxx_flags}.
Json build_info_json();

}  // namespace remo
