// Hash functions.
//
// splitmix64 is used (a) as the vertex-partitioning hash of Section III-C
// (consistent hashing: owner(v) = hash(v) mod P), (b) as the Robin Hood
// table hash in the storage layer, and (c) for CC's initial labels
// (Algorithm 6 labels a new vertex with hash(ID)).
#pragma once

#include <cstdint>

namespace remo {

/// Finalizer from the splitmix64 generator (Vigna). Full-avalanche 64-bit
/// mix: every output bit depends on every input bit.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two hashes (boost::hash_combine recipe, 64-bit variant).
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) noexcept {
  return seed ^ (splitmix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Default hasher for the Robin Hood tables and the partitioner.
struct SplitMixHash {
  constexpr std::uint64_t operator()(std::uint64_t x) const noexcept {
    return splitmix64(x);
  }
};

}  // namespace remo
