#include "common/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace remo {

double Json::as_double() const {
  switch (type_) {
    case Type::kInt:
      return static_cast<double>(int_);
    case Type::kUint:
      return static_cast<double>(uint_);
    case Type::kDouble:
      return double_;
    default:
      return 0.0;
  }
}

std::int64_t Json::as_int() const {
  switch (type_) {
    case Type::kInt:
      return int_;
    case Type::kUint:
      return static_cast<std::int64_t>(uint_);
    case Type::kDouble:
      return static_cast<std::int64_t>(double_);
    default:
      return 0;
  }
}

std::uint64_t Json::as_uint() const {
  switch (type_) {
    case Type::kInt:
      return static_cast<std::uint64_t>(int_);
    case Type::kUint:
      return uint_;
    case Type::kDouble:
      return static_cast<std::uint64_t>(double_);
    default:
      return 0;
  }
}

Json& Json::operator[](const std::string& key) {
  type_ = Type::kObject;
  for (auto& [k, v] : members_)
    if (k == key) return v;
  members_.emplace_back(key, Json{});
  return members_.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Serialisation
// ---------------------------------------------------------------------------

namespace {

void escape_into(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  char buf[40];
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      out += buf;
      break;
    case Type::kUint:
      std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(uint_));
      out += buf;
      break;
    case Type::kDouble:
      if (std::isfinite(double_)) {
        // %.17g round-trips but litters files with noise digits; %.12g is
        // plenty for timing data and stays stable across runs.
        std::snprintf(buf, sizeof(buf), "%.12g", double_);
        out += buf;
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      break;
    case Type::kString:
      escape_into(out, str_);
      break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& item : items_) {
        if (!first) out.push_back(',');
        first = false;
        newline_indent(out, indent, depth + 1);
        item.dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline_indent(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out.push_back(',');
        first = false;
        newline_indent(out, indent, depth + 1);
        escape_into(out, k);
        out += indent < 0 ? ":" : ": ";
        v.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) newline_indent(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) {
      std::size_t line = 1, col = 1;
      for (std::size_t i = 0; i < pos && i < text.size(); ++i) {
        if (text[i] == '\n') {
          ++line;
          col = 1;
        } else {
          ++col;
        }
      }
      error = std::to_string(line) + ":" + std::to_string(col) + ": " + msg;
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') return parse_string_value(out);
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') return parse_null(out);
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
    return fail("unexpected character");
  }

  bool parse_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text.compare(pos, n, lit) != 0) return fail("invalid literal");
    pos += n;
    return true;
  }

  bool parse_null(Json& out) {
    out = Json{};
    return parse_literal("null");
  }

  bool parse_bool(Json& out) {
    if (text[pos] == 't') {
      out = Json(true);
      return parse_literal("true");
    }
    out = Json(false);
    return parse_literal("false");
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos;
    bool is_float = false;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size()) {
      const char c = text[pos];
      if (c >= '0' && c <= '9') {
        ++pos;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_float = true;
        ++pos;
      } else {
        break;
      }
    }
    const std::string token(text.substr(start, pos - start));
    if (token.empty() || token == "-") return fail("invalid number");
    errno = 0;
    char* end = nullptr;
    if (is_float) {
      const double d = std::strtod(token.c_str(), &end);
      if (end != token.c_str() + token.size()) return fail("invalid number");
      out = Json(d);
      return true;
    }
    if (token[0] == '-') {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end != token.c_str() + token.size() || errno == ERANGE)
        return fail("invalid number");
      out = Json(v);
      return true;
    }
    const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
    if (end != token.c_str() + token.size() || errno == ERANGE)
      return fail("invalid number");
    out = Json(v);
    return true;
  }

  bool parse_string_raw(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return fail("unterminated escape");
        const char esc = text[pos++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9')
                code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("invalid \\u escape");
            }
            // UTF-8 encode (BMP only; surrogate pairs are not needed for
            // the machine-generated artefacts this parser validates).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return fail("invalid escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_string_value(Json& out) {
    std::string s;
    if (!parse_string_raw(s)) return false;
    out = Json(std::move(s));
    return true;
  }

  bool parse_array(Json& out) {
    if (!consume('[')) return false;
    out = Json::array();
    if (peek(']')) {
      ++pos;
      return true;
    }
    while (true) {
      Json item;
      if (!parse_value(item)) return false;
      out.push_back(std::move(item));
      skip_ws();
      if (pos >= text.size()) return fail("unterminated array");
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(Json& out) {
    if (!consume('{')) return false;
    out = Json::object();
    if (peek('}')) {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string_raw(key)) return false;
      if (!consume(':')) return false;
      Json value;
      if (!parse_value(value)) return false;
      out[key] = std::move(value);
      skip_ws();
      if (pos >= text.size()) return fail("unterminated object");
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }
};

}  // namespace

Json Json::parse(std::string_view text, std::string* error) {
  Parser p{text};
  Json out;
  if (!p.parse_value(out)) {
    if (error) *error = p.error;
    return Json{};
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    p.fail("trailing characters after value");
    if (error) *error = p.error;
    return Json{};
  }
  if (error) error->clear();
  return out;
}

}  // namespace remo
