// Minimal JSON value tree: build, serialise, parse.
//
// Backs the observability layer (stats snapshots, chrome-trace metadata,
// BENCH_*.json reports) and the tests that validate those artefacts. Object
// keys keep insertion order so emitted files diff cleanly across runs.
// Integers are stored exactly (64-bit) rather than forced through double,
// so event counters survive a round trip.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace remo {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  Json() = default;  // null
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(long v) : type_(Type::kInt), int_(v) {}
  Json(long long v) : type_(Type::kInt), int_(v) {}
  Json(unsigned v) : type_(Type::kUint), uint_(v) {}
  Json(unsigned long v) : type_(Type::kUint), uint_(v) {}
  Json(unsigned long long v) : type_(Type::kUint), uint_(v) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::kString), str_(s) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept {
    return type_ == Type::kInt || type_ == Type::kUint || type_ == Type::kDouble;
  }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_double() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  const std::string& as_string() const { return str_; }

  // --- Array access ---------------------------------------------------------
  std::size_t size() const noexcept {
    return is_object() ? members_.size() : items_.size();
  }
  bool empty() const noexcept { return size() == 0; }
  void push_back(Json v) {
    type_ = Type::kArray;
    items_.push_back(std::move(v));
  }
  const Json& at(std::size_t i) const { return items_[i]; }
  const std::vector<Json>& items() const { return items_; }

  // --- Object access --------------------------------------------------------
  /// Insert-or-get a member; converts a null value into an object.
  Json& operator[](const std::string& key);
  /// Member lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;
  bool contains(const std::string& key) const { return find(key) != nullptr; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  // --- Serialisation --------------------------------------------------------
  /// Compact when indent < 0; pretty-printed otherwise.
  std::string dump(int indent = -1) const;

  /// Strict-enough parser for the artefacts this repo emits (and for
  /// validating them in tests). On failure returns a null value and, when
  /// `error` is given, a "line:col: message" description.
  static Json parse(std::string_view text, std::string* error = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace remo
