// Deterministic pseudo-random number generation for workload synthesis.
//
// xoshiro256** (Blackman & Vigna) seeded through splitmix64. All generators
// in remo are explicitly seeded so that every experiment is reproducible
// bit-for-bit from its (seed, parameters) pair.
#pragma once

#include <cstdint>

#include "common/hash.hpp"

namespace remo {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x243f6a8885a308d3ULL) noexcept {
    // Seed the four lanes via splitmix64 as recommended by the authors.
    std::uint64_t sm = seed;
    for (auto& lane : s_) {
      sm += 0x9e3779b97f4a7c15ULL;
      lane = splitmix64(sm);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift reduction —
  /// the slight modulo bias is irrelevant for workload generation.
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    __extension__ using u128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<u128>(operator()()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace remo
