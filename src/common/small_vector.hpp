// SmallVector: a vector with inline storage for N elements.
//
// The low-degree tier of the degree-aware adjacency (Section III-B,
// DegAwareRHH's "separate, compact data structure for low-degree vertices")
// keeps its edges inline in the vertex record; only vertices whose degree
// crosses the threshold pay for an out-of-line Robin Hood edge table.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"

namespace remo {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(N > 0, "inline capacity must be positive");
  static_assert(std::is_nothrow_move_constructible_v<T>);

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() noexcept = default;

  SmallVector(const SmallVector& other) { append_range(other.begin(), other.end()); }

  SmallVector(SmallVector&& other) noexcept {
    if (other.is_inline()) {
      for (auto& v : other) emplace_back(std::move(v));
      other.clear();
    } else {
      heap_ = other.heap_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.heap_ = nullptr;
      other.size_ = 0;
      other.capacity_ = N;
    }
  }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      append_range(other.begin(), other.end());
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      destroy_all();
      if (other.is_inline()) {
        size_ = 0;
        capacity_ = N;
        heap_ = nullptr;
        for (auto& v : other) emplace_back(std::move(v));
        other.clear();
      } else {
        heap_ = other.heap_;
        size_ = other.size_;
        capacity_ = other.capacity_;
        other.heap_ = nullptr;
        other.size_ = 0;
        other.capacity_ = N;
      }
    }
    return *this;
  }

  ~SmallVector() { destroy_all(); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool is_inline() const noexcept { return heap_ == nullptr; }

  T* data() noexcept { return is_inline() ? inline_data() : heap_; }
  const T* data() const noexcept { return is_inline() ? inline_data() : heap_; }

  iterator begin() noexcept { return data(); }
  iterator end() noexcept { return data() + size_; }
  const_iterator begin() const noexcept { return data(); }
  const_iterator end() const noexcept { return data() + size_; }

  T& operator[](std::size_t i) {
    REMO_ASSERT(i < size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    REMO_ASSERT(i < size_);
    return data()[i];
  }

  T& back() {
    REMO_ASSERT(size_ > 0);
    return data()[size_ - 1];
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow(capacity_ * 2);
    T* slot = data() + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  void pop_back() {
    REMO_ASSERT(size_ > 0);
    data()[--size_].~T();
  }

  /// Remove the element at `pos` by swapping the last element into its
  /// place. O(1); does not preserve order (adjacency sets are unordered).
  void swap_erase(std::size_t pos) {
    REMO_ASSERT(pos < size_);
    if (pos != size_ - 1) data()[pos] = std::move(data()[size_ - 1]);
    pop_back();
  }

  void clear() {
    destroy_all();
    heap_ = nullptr;
    size_ = 0;
    capacity_ = N;
  }

  void reserve(std::size_t cap) {
    if (cap > capacity_) grow(cap);
  }

 private:
  T* inline_data() noexcept { return std::launder(reinterpret_cast<T*>(inline_storage_)); }
  const T* inline_data() const noexcept {
    return std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  void grow(std::size_t new_cap) {
    new_cap = std::max(new_cap, N * 2);
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T), std::align_val_t{alignof(T)}));
    T* src = data();
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(src[i]));
      src[i].~T();
    }
    if (!is_inline())
      ::operator delete(heap_, std::align_val_t{alignof(T)});
    heap_ = fresh;
    capacity_ = new_cap;
  }

  void destroy_all() {
    T* p = data();
    for (std::size_t i = 0; i < size_; ++i) p[i].~T();
    if (!is_inline())
      ::operator delete(heap_, std::align_val_t{alignof(T)});
  }

  template <typename It>
  void append_range(It first, It last) {
    for (; first != last; ++first) emplace_back(*first);
  }

  alignas(T) unsigned char inline_storage_[sizeof(T) * N];
  T* heap_ = nullptr;  // nullptr while the inline buffer is in use
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace remo
