#include "common/strfmt.hpp"

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <vector>

namespace remo {

std::string strfmt(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string human_bytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  return strfmt("%.2f %s", v, kUnits[unit]);
}

}  // namespace remo
