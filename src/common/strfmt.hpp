// Small printf-style string formatting helper (std::format is not available
// in the toolchain's libstdc++; this keeps call sites terse).
#pragma once

#include <string>

namespace remo {

/// printf-style formatting into a std::string.
[[gnu::format(printf, 1, 2)]] std::string strfmt(const char* fmt, ...);

/// "12,345,678" — human-readable integers for harness tables.
std::string with_commas(std::uint64_t value);

/// "1.23 GB" style byte counts.
std::string human_bytes(std::uint64_t bytes);

}  // namespace remo
