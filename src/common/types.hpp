// Core scalar types shared by every remo subsystem.
#pragma once

#include <cstdint>
#include <limits>

namespace remo {

/// Vertex identifier. Vertices are created implicitly the first time an
/// edge event references them; there is no dense pre-registered ID space.
using VertexId = std::uint64_t;

/// Edge weight. The paper's algorithms use integer weights; SSSP distances
/// are accumulated into 64-bit state so overflow is not a practical concern.
using Weight = std::uint32_t;

/// Rank (process) index inside the shared-nothing communicator.
using RankId = std::uint32_t;

/// Per-vertex algorithm state word. Every REMO algorithm in the paper
/// encodes its monotone state into a single machine word (BFS level, SSSP
/// distance, CC label, S-T connectivity bitmap).
using StateWord = std::uint64_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr StateWord kInfiniteState = std::numeric_limits<StateWord>::max();
inline constexpr Weight kDefaultWeight = 1;

}  // namespace remo
