// Degree tracking — the paper's introductory example of the event-centric
// model (Section II-A): "implement a callback on edge insertion and
// deletion ... resulting in a real-time analysis of a specific vertices
// degree or enabling a user-defined callback if the degree exceeds a
// certain threshold".
//
// The state word is the vertex's current distinct out-degree in the owned
// store (undirected engines count each incident edge once at each end).
// Works with add and delete events without needing Engine::repair().
#pragma once

#include "core/vertex_program.hpp"

namespace remo {

class DegreeTracker : public VertexProgram {
 public:
  std::string name() const override { return "degree"; }
  StateWord identity() const override { return 0; }
  // Degree is monotone only in the add-only regime; under deletes this
  // program is a plain observer, so no_worse stays permissive.
  bool no_worse(StateWord a, StateWord b) const override { return a >= b; }

  void on_add(VertexContext& ctx, VertexId /*nbr*/, Weight /*w*/) override {
    ctx.set_value(ctx.degree());
  }

  void on_reverse_add(VertexContext& ctx, VertexId /*nbr*/, StateWord /*nbr_val*/,
                      Weight /*w*/) override {
    ctx.set_value(ctx.degree());
  }

  void on_delete(VertexContext& ctx, VertexId /*nbr*/, Weight /*w*/) override {
    ctx.set_value(ctx.degree());
  }

  void on_reverse_delete(VertexContext& ctx, VertexId /*nbr*/, Weight /*w*/) override {
    ctx.set_value(ctx.degree());
  }
};

}  // namespace remo
