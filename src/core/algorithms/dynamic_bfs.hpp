// Incremental Breadth First Search (Algorithm 4 of the paper).
//
// Monotone state: the BFS level (source = 1), which only ever decreases as
// edges arrive. The recursive update step doubles as the edge-add repair:
// a new edge either leaves the solution valid (level difference <= 1) or
// starts a repair cascade from the closer endpoint (Section II-B's three
// cases).
//
// Extensions beyond the paper's pseudocode:
//  * deterministic parent tie-break (Section II-D): among equal-level
//    candidates the lowest-id parent wins; the parent lives in the aux word.
//  * decremental support (Section VI-B realisation): on_delete marks repair
//    anchors; Engine::repair() drives the invalidate/probe waves through
//    on_repair_anchor / on_invalidate / on_probe.
#pragma once

#include "core/vertex_program.hpp"

namespace remo {

class DynamicBfs : public VertexProgram {
 public:
  struct Options {
    /// Track parents and break level ties towards the lowest parent id,
    /// making the BFS tree deterministic (Section II-D).
    bool deterministic_parents = false;
    /// Enable Engine::repair() support for delete events.
    bool support_deletes = false;
  };

  explicit DynamicBfs(VertexId source) : source_(source) {}
  DynamicBfs(VertexId source, Options opts) : source_(source), opts_(opts) {}

  std::string name() const override { return "bfs"; }
  StateWord identity() const override { return kInfiniteState; }
  bool no_worse(StateWord a, StateWord b) const override { return a <= b; }
  bool supports_deletes() const override { return opts_.support_deletes; }
  bool update_is_redundant(StateWord nbr_cache, StateWord value) const override {
    // Deterministic-parent mode needs the equal-level offer traffic that
    // this filter would suppress.
    return !opts_.deterministic_parents && nbr_cache <= value;
  }
  // Levels only shrink, so a sender's latest offer subsumes its earlier
  // ones: min-merge. Kept off in deterministic-parent mode for the same
  // reason as update_is_redundant above.
  bool can_combine() const override { return !opts_.deterministic_parents; }
  StateWord combine(StateWord a, StateWord b) const override {
    return a < b ? a : b;
  }

  VertexId source() const noexcept { return source_; }

  void init(VertexContext& ctx) override {
    ctx.set_value(1);
    ctx.set_aux(ctx.vertex());  // the source is its own parent
    ctx.update_all_nbrs(1);
  }

  void on_add(VertexContext& ctx, VertexId nbr, Weight w) override {
    (void)w;
    // Undirected: the Reverse-Add carries our level across, and the far
    // end replies if it can help us — nothing to do here. Directed: push
    // our level forward explicitly (there is no Reverse-Add).
    if (!ctx.undirected() && ctx.value() != kInfiniteState)
      ctx.update_single_nbr(nbr, ctx.value());
  }

  void on_reverse_add(VertexContext& ctx, VertexId nbr, StateWord nbr_val,
                      Weight w) override {
    on_update(ctx, nbr, nbr_val, w);
  }

  void on_update(VertexContext& ctx, VertexId from, StateWord from_val,
                 Weight /*w*/) override {
    const StateWord mine = ctx.value();
    if (from_val != kInfiniteState && mine > from_val + 1) {
      // Case (iii): a shorter path appeared; adopt and cascade.
      ctx.set_value(from_val + 1);
      if (track_parents()) ctx.set_aux(from);
      ctx.update_all_nbrs(from_val + 1);
    } else if (mine != kInfiniteState &&
               (from_val == kInfiniteState || from_val > mine + 1)) {
      // The visitor is the one that can improve: notify it back.
      ctx.update_single_nbr(from, mine);
    } else if (opts_.deterministic_parents && from_val != kInfiniteState &&
               mine == from_val + 1 && from < ctx.aux()) {
      // Equal-level candidate with a smaller id: deterministic tree clause.
      ctx.set_aux(from);
    } else if (opts_.deterministic_parents && mine != kInfiniteState &&
               from_val == mine + 1) {
      // The sender sits exactly one level downstream: offer ourselves as a
      // parent candidate so its tie-break sees every upstream neighbour
      // (case (ii) of Section II-B generates no traffic otherwise).
      ctx.update_single_nbr(from, mine);
    }
  }

  // --- Decremental repair ----------------------------------------------------

  void on_delete(VertexContext& ctx, VertexId nbr, Weight w) override {
    on_reverse_delete(ctx, nbr, w);
  }

  void on_reverse_delete(VertexContext& ctx, VertexId nbr, Weight /*w*/) override {
    if (!opts_.support_deletes) return;
    // Our support may have been severed; let the repair pass decide.
    if (ctx.aux() == nbr) ctx.mark_dirty();
  }

  void on_repair_anchor(VertexContext& ctx) override {
    if (ctx.value() == kInfiniteState || ctx.vertex() == source_) return;
    const StateWord parent = ctx.aux();
    // Re-anchored onto a surviving edge in the meantime? Then nothing broke.
    if (parent != kInfiniteState && ctx.adj() &&
        ctx.adj()->contains(static_cast<VertexId>(parent)))
      return;
    invalidate(ctx);
  }

  void on_invalidate(VertexContext& ctx, VertexId from) override {
    if (ctx.value() == kInfiniteState) return;  // already dead this pass
    if (ctx.aux() != from) return;              // our support is elsewhere
    invalidate(ctx);
  }

  // on_probe: default behaviour (offer our value) is correct for BFS.

 private:
  bool track_parents() const noexcept {
    return opts_.deterministic_parents || opts_.support_deletes;
  }

  void invalidate(VertexContext& ctx) {
    ctx.set_value(kInfiniteState);
    ctx.set_aux(kInfiniteState);
    ctx.mark_invalid();
    ctx.send_invalidate_all_nbrs();
  }

  VertexId source_;
  Options opts_{};
};

}  // namespace remo
