// Incremental Connected Components (Algorithm 6 of the paper).
//
// Label propagation without an initiating vertex: every vertex labels
// itself hash(id) when it first appears, and the dominating (larger) label
// floods each component. Monotone state: the label only ever increases,
// converging to the component-wide maximum of the initial labels — the
// deterministic answer the static oracle (static_cc_labels) computes.
// Requires an undirected engine (connectivity is symmetric).
#pragma once

#include "core/vertex_program.hpp"
#include "graph/static_cc.hpp"  // cc_initial_label: shared with the oracle

namespace remo {

class DynamicCc : public VertexProgram {
 public:
  std::string name() const override { return "cc"; }
  StateWord identity() const override { return 0; }
  bool no_worse(StateWord a, StateWord b) const override { return a >= b; }
  bool update_is_redundant(StateWord nbr_cache, StateWord value) const override {
    return nbr_cache >= value;
  }
  // Labels only grow toward the component maximum: max-merge.
  bool can_combine() const override { return true; }
  StateWord combine(StateWord a, StateWord b) const override {
    return a > b ? a : b;
  }

  void on_add(VertexContext& ctx, VertexId /*nbr*/, Weight /*w*/) override {
    ensure_label(ctx);
  }

  void on_reverse_add(VertexContext& ctx, VertexId nbr, StateWord nbr_val,
                      Weight w) override {
    on_update(ctx, nbr, nbr_val, w);
  }

  void on_update(VertexContext& ctx, VertexId from, StateWord from_val,
                 Weight /*w*/) override {
    ensure_label(ctx);
    const StateWord mine = ctx.value();
    if (mine > from_val) {
      // We dominate: notify the visitor back (it will adopt and cascade).
      ctx.update_single_nbr(from, mine);
    } else if (mine < from_val) {
      ctx.set_value(from_val);
      ctx.update_all_nbrs(from_val);
    }
  }

 private:
  static void ensure_label(VertexContext& ctx) {
    if (ctx.value() == 0) ctx.set_value(cc_initial_label(ctx.vertex()));
  }
};

}  // namespace remo
