// Incremental Single Source Shortest Path (Algorithm 5 of the paper).
//
// Identical recursion to BFS with the hop count replaced by the sum of
// edge weights (paper convention: dist(source) = 1). State decreases
// monotonically; the traversal pattern is data-dependent on the weights.
// Edge weights must be >= 1 (zero-weight edges would break the parent-
// chain acyclicity the decremental repair relies on).
#pragma once

#include "common/assert.hpp"
#include "core/vertex_program.hpp"

namespace remo {

class DynamicSssp : public VertexProgram {
 public:
  struct Options {
    bool deterministic_parents = false;
    bool support_deletes = false;
  };

  explicit DynamicSssp(VertexId source) : source_(source) {}
  DynamicSssp(VertexId source, Options opts) : source_(source), opts_(opts) {}

  std::string name() const override { return "sssp"; }
  StateWord identity() const override { return kInfiniteState; }
  bool no_worse(StateWord a, StateWord b) const override { return a <= b; }
  bool supports_deletes() const override { return opts_.support_deletes; }
  bool update_is_redundant(StateWord nbr_cache, StateWord value) const override {
    return !opts_.deterministic_parents && nbr_cache <= value;
  }
  // Distances only shrink: min-merge, same gating as update_is_redundant.
  bool can_combine() const override { return !opts_.deterministic_parents; }
  StateWord combine(StateWord a, StateWord b) const override {
    return a < b ? a : b;
  }

  VertexId source() const noexcept { return source_; }

  void init(VertexContext& ctx) override {
    ctx.set_value(1);
    ctx.set_aux(ctx.vertex());
    ctx.update_all_nbrs(1);
  }

  void on_add(VertexContext& ctx, VertexId nbr, Weight w) override {
    (void)w;
    if (!ctx.undirected() && ctx.value() != kInfiniteState)
      ctx.update_single_nbr(nbr, ctx.value());
  }

  void on_reverse_add(VertexContext& ctx, VertexId nbr, StateWord nbr_val,
                      Weight w) override {
    on_update(ctx, nbr, nbr_val, w);
  }

  void on_update(VertexContext& ctx, VertexId from, StateWord from_val,
                 Weight w) override {
    REMO_ASSERT(w >= 1);
    const StateWord mine = ctx.value();
    if (from_val != kInfiniteState && mine > from_val + w) {
      ctx.set_value(from_val + w);
      if (track_parents()) ctx.set_aux(from);
      ctx.update_all_nbrs(from_val + w);
    } else if (mine != kInfiniteState &&
               (from_val == kInfiniteState || from_val > mine + w)) {
      ctx.update_single_nbr(from, mine);
    } else if (opts_.deterministic_parents && from_val != kInfiniteState &&
               mine == from_val + w && from < ctx.aux()) {
      ctx.set_aux(from);
    } else if (opts_.deterministic_parents && mine != kInfiniteState &&
               from_val == mine + w) {
      // Offer ourselves as an equal-cost parent candidate (see DynamicBfs).
      ctx.update_single_nbr(from, mine);
    }
  }

  void on_weight_change(VertexContext& ctx, VertexId nbr, Weight old_w,
                        Weight new_w) override {
    // A cheaper edge is a fresh relaxation source: re-offer our distance
    // across it (both owners fire, so the closer end relaxes the other).
    // Increases are NOT handled — this program's repair anchor only checks
    // parent-edge existence, which cannot see a stale-low distance through
    // a surviving edge. WeightedSssp is the increase-capable variant.
    if (new_w < old_w && ctx.value() != kInfiniteState)
      ctx.update_single_nbr(nbr, ctx.value());
  }

  // --- Decremental repair (same strategy as DynamicBfs) -----------------------

  void on_delete(VertexContext& ctx, VertexId nbr, Weight w) override {
    on_reverse_delete(ctx, nbr, w);
  }

  void on_reverse_delete(VertexContext& ctx, VertexId nbr, Weight /*w*/) override {
    if (!opts_.support_deletes) return;
    if (ctx.aux() == nbr) ctx.mark_dirty();
  }

  void on_repair_anchor(VertexContext& ctx) override {
    if (ctx.value() == kInfiniteState || ctx.vertex() == source_) return;
    const StateWord parent = ctx.aux();
    if (parent != kInfiniteState && ctx.adj() &&
        ctx.adj()->contains(static_cast<VertexId>(parent)))
      return;
    invalidate(ctx);
  }

  void on_invalidate(VertexContext& ctx, VertexId from) override {
    if (ctx.value() == kInfiniteState) return;
    if (ctx.aux() != from) return;
    invalidate(ctx);
  }

 private:
  bool track_parents() const noexcept {
    return opts_.deterministic_parents || opts_.support_deletes;
  }

  void invalidate(VertexContext& ctx) {
    ctx.set_value(kInfiniteState);
    ctx.set_aux(kInfiniteState);
    ctx.mark_invalid();
    ctx.send_invalidate_all_nbrs();
  }

  VertexId source_;
  Options opts_{};
};

}  // namespace remo
