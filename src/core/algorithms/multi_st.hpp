// Incremental Multi S-T Connectivity (Algorithm 7 of the paper).
//
// Up to 64 concurrent sources; each vertex's state is a bitmap where bit i
// means "reachable from sources[i]". Monotone: bits are only ever set
// (a convex solution space under the subset order). The superset /
// subset / mixed exchange of Algorithm 7 is implemented verbatim.
// Requires an undirected engine.
#pragma once

#include <vector>

#include "common/assert.hpp"
#include "core/engine.hpp"
#include "core/vertex_program.hpp"

namespace remo {

class MultiStConnectivity : public VertexProgram {
 public:
  explicit MultiStConnectivity(std::vector<VertexId> sources)
      : sources_(std::move(sources)) {
    REMO_CHECK_MSG(sources_.size() <= 64, "use <=64 sources per program");
  }

  std::string name() const override { return "multi-st"; }
  StateWord identity() const override { return 0; }
  bool no_worse(StateWord a, StateWord b) const override { return (a | b) == a; }
  bool update_is_redundant(StateWord nbr_cache, StateWord value) const override {
    return (nbr_cache | value) == nbr_cache;
  }
  // Reachability bitsets only gain bits: union-merge.
  bool can_combine() const override { return true; }
  StateWord combine(StateWord a, StateWord b) const override { return a | b; }

  const std::vector<VertexId>& sources() const noexcept { return sources_; }

  /// Bit index of a source vertex, or -1 when it is not a source.
  int source_index(VertexId v) const noexcept {
    for (std::size_t i = 0; i < sources_.size(); ++i)
      if (sources_[i] == v) return static_cast<int>(i);
    return -1;
  }

  void init(VertexContext& ctx) override {
    const int idx = source_index(ctx.vertex());
    REMO_CHECK_MSG(idx >= 0, "init injected at a non-source vertex");
    const StateWord mask = ctx.value() | (StateWord{1} << idx);
    ctx.set_value(mask);
    ctx.update_all_nbrs(mask);
  }

  // Algorithm 7's add(): "do nothing but wait" — the Reverse-Add carries
  // connectivity across the new edge.

  void on_reverse_add(VertexContext& ctx, VertexId nbr, StateWord nbr_val,
                      Weight w) override {
    on_update(ctx, nbr, nbr_val, w);
  }

  void on_update(VertexContext& ctx, VertexId from, StateWord from_val,
                 Weight /*w*/) override {
    const StateWord mine = ctx.value();
    const StateWord merged = mine | from_val;
    if (mine == from_val) return;  // identical: nothing to exchange
    if (merged == mine) {
      // Pure superset: the visitor is missing bits we hold.
      ctx.update_single_nbr(from, mine);
    } else {
      // Pure subset or mix: apply, broadcast to all (the broadcast reaches
      // the visitor too, completing the exchange in the mixed case).
      ctx.set_value(merged);
      ctx.update_all_nbrs(merged);
    }
  }

 private:
  std::vector<VertexId> sources_;
};

/// Instantiate every source of an attached MultiStConnectivity program
/// (init events may land before, during, or after ingestion).
inline void inject_st_sources(Engine& engine, ProgramId prog,
                              const MultiStConnectivity& st) {
  for (const VertexId s : st.sources()) engine.inject_init(prog, s);
}

}  // namespace remo
