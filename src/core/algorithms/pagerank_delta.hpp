// Incremental PageRank via memoized cumulative ratios (memo-delta).
//
// The first non-monotone program in the engine: rank mass moves both ways,
// so none of the lattice fast paths (visitor coalescing, neighbour-cache
// suppression, repair waves) apply. Instead the program follows the
// Ingress memo-delta recipe — memoize the last *message* per edge — using
// the per-edge memo slot VertexContext exposes:
//
//   cur  r(x)      rank, encoded as an IEEE double in the StateWord;
//                  bit-pattern 0 (the identity) means "never touched" and
//                  decodes to the base mass (1 - d).
//   aux  rho(x)    the out-ratio r(x)/W(x) this vertex last broadcast
//                  (kInfiniteState, the unset aux, decodes to 0), with the
//                  publish-token flag riding its sign bit (ratios are
//                  non-negative, so the bit is free).
//   memo[u]        the last rho heard from neighbour u (cumulative, not a
//                  delta) — deposited by this program itself, since the
//                  engine only auto-deposits for monotone programs.
//
// Invariant: x's contribution inside r(y) is exactly d * w(x,y) * memo,
// where memo is y's slot for x. Messages carry the sender's *cumulative*
// ratio and the receiver folds d * w * (rho - memo), so the invariant is
// re-established by every message regardless of interleaving (per-sender
// FIFO gives per-edge ordering). The payoff is that every topology event
// is a purely local correction:
//
//   delete         retract d * w * memo using the erased edge's slot
//                  (VertexContext::deleted_nbr_memo) — no message over the
//                  dead edge, no repair wave;
//   weight change  rescale: fold d * (w_new - w_old) * memo;
//   add            send our cumulative rho to the new neighbour (its slot
//                  is empty, so it folds the full contribution).
//
// Publishing is deferred, never inline: folding a delta and immediately
// re-broadcasting would multiply the message count by the degree at every
// hop while the amplitude only decays by d — an exponential storm of
// ever-smaller messages (observed first-hand: a 4-vertex graph took ~1e9
// messages to drain to a 1e-9 tolerance). Instead a state-changing
// callback enqueues one self-addressed *publish token* (a kUpdate to
// itself carrying kInfiniteState, a value no real ratio can take) and sets
// the pending flag; every delta that arrives while the token is in flight
// just folds. When the token surfaces the vertex broadcasts its
// accumulated ratio once — if the unpublished outgoing mass
// d * |r - rho_pub * W| still exceeds the tolerance — giving one broadcast
// per drain cycle instead of one per message. Each broadcast round still
// shrinks total unpublished mass by a factor d < 1, so the cascade is
// geometric and quiescence-terminated. Dangling vertices (W = 0) keep
// their rank and push nothing — the static oracle
// (graph/static_pagerank.hpp) uses the identical convention.
//
// Requires an undirected engine (the memo lives on the receiver-side edge)
// and exclusive ownership of the per-edge memo slot — Engine::attach
// rejects co-attachment with other programs. Self-loops are not supported:
// a self-edge's update would be indistinguishable from a publish token.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

#include "core/vertex_program.hpp"

namespace remo {

class PageRankDelta : public VertexProgram {
 public:
  struct Options {
    double damping = 0.85;
    /// Maximum unpublished outgoing mass a vertex may retain. Converged
    /// ranks are within n * tolerance / (1 - damping) of the fixpoint.
    double tolerance = 1e-9;
  };

  PageRankDelta() = default;
  explicit PageRankDelta(Options opts) : opts_(opts) {}

  std::string name() const override { return "pagerank"; }
  StateWord identity() const override { return 0; }
  bool monotone() const override { return false; }
  MemoizationPolicy memoization_policy() const override {
    return MemoizationPolicy::kMemoDelta;
  }
  bool supports_deletes() const override { return true; }

  double damping() const noexcept { return opts_.damping; }
  double base_mass() const noexcept { return 1.0 - opts_.damping; }

  /// Decode a collected StateWord into a rank (identity -> base mass).
  double rank_of(StateWord s) const noexcept {
    return s == 0 ? base_mass() : std::bit_cast<double>(s);
  }

  void on_add(VertexContext& ctx, VertexId nbr, Weight /*w*/) override {
    catch_up(ctx, nbr);
    request_publish(ctx);
  }

  void on_reverse_add(VertexContext& ctx, VertexId nbr, StateWord /*nbr_val*/,
                      Weight /*w*/) override {
    // Same situation as on_add: a new neighbour with an empty memo slot.
    // The carried value is the sender's rank, not its ratio — its own
    // on_add sends us the ratio, so it is ignored here.
    catch_up(ctx, nbr);
    request_publish(ctx);
  }

  void on_update(VertexContext& ctx, VertexId from, StateWord from_val,
                 Weight /*w*/) override {
    if (from == ctx.vertex()) {
      // Our publish token surfaced: every delta enqueued before it has
      // been folded. Broadcast the accumulated ratio (if it moved enough).
      const Published p = published(ctx);
      store_published(ctx, p.rho, /*pending=*/false);
      maybe_publish(ctx);
      return;
    }
    // Scale by the *receiver-side* stored weight: retraction (on_delete)
    // and rescaling (on_weight_change) use the local store too, so the
    // per-edge invariant stays exact under any interleaving.
    if (!ctx.adj() || !ctx.adj()->contains(from)) return;
    const double rho = std::bit_cast<double>(from_val);
    const double heard = memo_value(ctx.nbr_memo(from));
    const double w = static_cast<double>(ctx.edge_weight(from));
    set_rank(ctx, rank(ctx) + opts_.damping * w * (rho - heard));
    ctx.set_nbr_memo(from, from_val);
    request_publish(ctx);
  }

  void on_weight_change(VertexContext& ctx, VertexId nbr, Weight old_w,
                        Weight new_w) override {
    // The neighbour's memoized contribution was scaled by the old weight;
    // rescale it in place, then re-examine our own out-ratio (W changed).
    const double heard = memo_value(ctx.nbr_memo(nbr));
    if (heard != 0.0) {
      const double dw = static_cast<double>(new_w) - static_cast<double>(old_w);
      set_rank(ctx, rank(ctx) + opts_.damping * dw * heard);
    }
    request_publish(ctx);
  }

  void on_delete(VertexContext& ctx, VertexId nbr, Weight w) override {
    retract(ctx, nbr, w);
  }

  void on_reverse_delete(VertexContext& ctx, VertexId nbr, Weight w) override {
    retract(ctx, nbr, w);
  }

  /// Repair is a no-op: deletions are absorbed eagerly above, so the
  /// engine's invalidate-then-reconverge waves have nothing to anchor.
  void on_repair_anchor(VertexContext& /*ctx*/) override {}

  /// Never offer the raw rank as if it were a propagation value — probes
  /// are a monotone-repair mechanism and rank bits would be misread as a
  /// cumulative ratio.
  void on_probe(VertexContext& /*ctx*/, VertexId /*from*/) override {}

 private:
  static constexpr StateWord kPendingBit = StateWord{1} << 63;

  struct Published {
    double rho;    // last broadcast out-ratio
    bool pending;  // a publish token is in flight
  };

  static Published published(const VertexContext& ctx) noexcept {
    const StateWord a = ctx.aux();
    if (a == kInfiniteState) return {0.0, false};
    return {std::bit_cast<double>(a & ~kPendingBit), (a & kPendingBit) != 0};
  }

  static void store_published(VertexContext& ctx, double rho, bool pending) {
    const StateWord bits = std::bit_cast<StateWord>(rho);
    ctx.set_aux(pending ? (bits | kPendingBit) : bits);
  }

  static double memo_value(StateWord m) noexcept {
    return m == kInfiniteState ? 0.0 : std::bit_cast<double>(m);
  }

  double rank(const VertexContext& ctx) const noexcept {
    return rank_of(ctx.value());
  }

  static void set_rank(VertexContext& ctx, double r) {
    ctx.set_value(std::bit_cast<StateWord>(r));
  }

  static double weighted_degree(const VertexContext& ctx) {
    double sum = 0.0;
    if (ctx.adj())
      ctx.adj()->for_each([&](VertexId, const EdgeProp& p) {
        sum += static_cast<double>(p.weight);
      });
    return sum;
  }

  /// A neighbour whose memo slot is empty has seen none of our mass: hand
  /// it the full cumulative ratio (it folds d * w * rho against memo 0).
  void catch_up(VertexContext& ctx, VertexId nbr) {
    const double rho = published(ctx).rho;
    if (rho != 0.0)
      ctx.update_single_nbr(nbr, std::bit_cast<StateWord>(rho));
  }

  void retract(VertexContext& ctx, VertexId /*nbr*/, Weight w) {
    const double heard = memo_value(ctx.deleted_nbr_memo());
    if (heard != 0.0)
      set_rank(ctx,
               rank(ctx) - opts_.damping * static_cast<double>(w) * heard);
    request_publish(ctx);
  }

  /// Schedule one deferred broadcast: the first state-changing event sends
  /// the token, every further delta folds silently behind it.
  void request_publish(VertexContext& ctx) {
    const Published p = published(ctx);
    if (p.pending) return;
    store_published(ctx, p.rho, /*pending=*/true);
    ctx.update_single_nbr(ctx.vertex(), kInfiniteState);
  }

  void maybe_publish(VertexContext& ctx) {
    const double W = weighted_degree(ctx);
    if (W == 0.0) {
      // Dangling: every former neighbour has already retracted our
      // contribution locally. Reset the published ratio so a future add
      // does not catch a new neighbour up to a stale one.
      if (published(ctx).rho != 0.0) store_published(ctx, 0.0, false);
      return;
    }
    const double r = rank(ctx);
    const double rho_pub = published(ctx).rho;
    if (opts_.damping * std::abs(r - rho_pub * W) <= opts_.tolerance) return;
    const double rho = r / W;
    store_published(ctx, rho, /*pending=*/false);
    ctx.update_all_nbrs(std::bit_cast<StateWord>(rho));
  }

  Options opts_{};
};

}  // namespace remo
