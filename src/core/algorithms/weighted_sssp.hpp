// Weighted SSSP with true edge-weight mutations (memo-path).
//
// Same min-plus recursion as DynamicSssp, but weight changes arrive as
// first-class on_weight_change events instead of being decomposed into a
// delete+add pair (which would race the repair wave — the PR 5 stale-update
// family — and transiently orphan the whole subtree under the edge):
//
//   decrease  the edge is a fresh relaxation source: each side re-offers
//             its distance across the now-cheaper edge, and the normal
//             monotone machinery absorbs it — no invalidation at all.
//   increase  only damages a vertex whose *parent* edge grew (its distance
//             was old_w-supported); it marks itself dirty and the next
//             repair wave invalidates-then-reconverges exactly that
//             subtree, per the memo-path policy (DESIGN.md §8).
//
// Because an increase leaves the parent edge in place, the repair anchor
// cannot use DynamicSssp's "parent edge still exists" shortcut — it
// re-derives support from the memoized parent state: the anchor is sound
// only when memo(parent) + w(parent) still equals its distance.
//
// Parents are always tracked (aux) and deletes always supported: the
// memo-path policy is the point of this program. Distances use the paper
// convention dist(source) = 1; weights must be >= 1.
#pragma once

#include "common/assert.hpp"
#include "core/vertex_program.hpp"

namespace remo {

class WeightedSssp : public VertexProgram {
 public:
  explicit WeightedSssp(VertexId source) : source_(source) {}

  std::string name() const override { return "wsssp"; }
  StateWord identity() const override { return kInfiniteState; }
  bool no_worse(StateWord a, StateWord b) const override { return a <= b; }
  MemoizationPolicy memoization_policy() const override {
    return MemoizationPolicy::kMemoPath;
  }
  bool supports_deletes() const override { return true; }
  bool update_is_redundant(StateWord nbr_cache, StateWord value) const override {
    return nbr_cache <= value;
  }
  bool can_combine() const override { return true; }
  StateWord combine(StateWord a, StateWord b) const override {
    return a < b ? a : b;
  }

  VertexId source() const noexcept { return source_; }

  void init(VertexContext& ctx) override {
    ctx.set_value(1);
    ctx.set_aux(ctx.vertex());
    ctx.update_all_nbrs(1);
  }

  void on_add(VertexContext& ctx, VertexId nbr, Weight /*w*/) override {
    if (!ctx.undirected() && ctx.value() != kInfiniteState)
      ctx.update_single_nbr(nbr, ctx.value());
  }

  void on_reverse_add(VertexContext& ctx, VertexId nbr, StateWord nbr_val,
                      Weight w) override {
    on_update(ctx, nbr, nbr_val, w);
  }

  void on_update(VertexContext& ctx, VertexId from, StateWord from_val,
                 Weight w) override {
    REMO_ASSERT(w >= 1);
    const StateWord mine = ctx.value();
    if (from_val != kInfiniteState && mine > from_val + w) {
      ctx.set_value(from_val + w);
      ctx.set_aux(from);
      ctx.update_all_nbrs(from_val + w);
    } else if (mine != kInfiniteState &&
               (from_val == kInfiniteState || from_val > mine + w)) {
      ctx.update_single_nbr(from, mine);
    }
  }

  void on_weight_change(VertexContext& ctx, VertexId nbr, Weight old_w,
                        Weight new_w) override {
    if (new_w < old_w) {
      // The edge got cheaper: re-offer our distance across it. Both sides
      // fire (the event is delivered to each owner), so whichever end is
      // closer relaxes the other; the offer rides the *new* stored weight.
      if (ctx.value() != kInfiniteState)
        ctx.update_single_nbr(nbr, ctx.value());
    } else if (new_w > old_w && ctx.aux() == nbr) {
      // Our distance was computed through this edge at the old weight —
      // it is now stale-low. Queue ourselves for the repair wave.
      ctx.mark_dirty();
    }
  }

  // --- Decremental repair ----------------------------------------------------

  void on_delete(VertexContext& ctx, VertexId nbr, Weight w) override {
    on_reverse_delete(ctx, nbr, w);
  }

  void on_reverse_delete(VertexContext& ctx, VertexId nbr, Weight /*w*/) override {
    if (ctx.aux() == nbr) ctx.mark_dirty();
  }

  void on_repair_anchor(VertexContext& ctx) override {
    if (ctx.value() == kInfiniteState || ctx.vertex() == source_) return;
    const StateWord parent = ctx.aux();
    if (parent != kInfiniteState && ctx.adj()) {
      const VertexId p = static_cast<VertexId>(parent);
      // The edge surviving is necessary but not sufficient: after a weight
      // increase the parent is still adjacent while our distance is stale.
      // Re-derive support from the memoized parent distance instead. An
      // absent memo (edge churned since we last heard the parent) cannot
      // prove support either way — invalidate conservatively; phase B's
      // probes rebuild anything that was actually fine.
      const StateWord memo = ctx.nbr_memo(p);
      if (ctx.adj()->contains(p) && memo != kInfiniteState &&
          memo + ctx.edge_weight(p) == ctx.value())
        return;
    }
    invalidate(ctx);
  }

  void on_invalidate(VertexContext& ctx, VertexId from) override {
    if (ctx.value() == kInfiniteState) return;
    if (ctx.aux() != from) return;
    invalidate(ctx);
  }

 private:
  void invalidate(VertexContext& ctx) {
    ctx.set_value(kInfiniteState);
    ctx.set_aux(kInfiniteState);
    ctx.mark_invalid();
    ctx.send_invalidate_all_nbrs();
  }

  VertexId source_;
};

}  // namespace remo
