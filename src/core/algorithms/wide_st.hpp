// WideStFleet: Multi S-T connectivity beyond 64 sources.
//
// The visitor payload is one machine word, so a single MultiStConnectivity
// program carries at most 64 source bits (exactly the paper's largest
// evaluated configuration, Figure 7). For wider source sets this helper
// composes ceil(n/64) independent programs over the same engine — the
// "multiple algorithms simultaneously on the same underlying dynamic data
// structure" capability of Section I put to work. Each program's flows
// stay independent, so correctness is inherited per 64-source block.
#pragma once

#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/bitset.hpp"
#include "core/algorithms/multi_st.hpp"
#include "core/engine.hpp"

namespace remo {

class WideStFleet {
 public:
  /// Attach ceil(sources/64) MultiStConnectivity programs to `engine`.
  /// Must run while the engine is idle (like any attach).
  WideStFleet(Engine& engine, std::vector<VertexId> sources)
      : engine_(&engine), sources_(std::move(sources)) {
    REMO_CHECK(!sources_.empty());
    for (std::size_t off = 0; off < sources_.size(); off += 64) {
      const std::size_t end = std::min(sources_.size(), off + 64);
      std::vector<VertexId> block(sources_.begin() + static_cast<std::ptrdiff_t>(off),
                                  sources_.begin() + static_cast<std::ptrdiff_t>(end));
      auto [id, prog] = engine.attach_make<MultiStConnectivity>(std::move(block));
      program_ids_.push_back(id);
      programs_.push_back(std::move(prog));
    }
  }

  /// Inject every source's init event (any time, including mid-ingestion).
  void inject_sources() {
    for (std::size_t b = 0; b < programs_.size(); ++b)
      inject_st_sources(*engine_, program_ids_[b], *programs_[b]);
  }

  std::size_t num_sources() const noexcept { return sources_.size(); }
  std::size_t num_programs() const noexcept { return programs_.size(); }
  const std::vector<ProgramId>& program_ids() const noexcept { return program_ids_; }

  /// Full connectivity bitset of one vertex (quiescent read).
  DynamicBitset connectivity_of(VertexId v) const {
    DynamicBitset bits(sources_.size());
    for (std::size_t b = 0; b < programs_.size(); ++b) {
      const StateWord mask = engine_->state_of(program_ids_[b], v);
      for (std::size_t i = 0; i < 64 && b * 64 + i < sources_.size(); ++i)
        if ((mask >> i) & 1) bits.set(b * 64 + i);
    }
    return bits;
  }

  /// How many sources reach `v` (quiescent read).
  std::size_t reach_count(VertexId v) const { return connectivity_of(v).count(); }

  /// Register a "when" trigger on one (vertex, source) pair: fires once,
  /// when `source_index` first reaches `v`.
  TriggerId when_connected(VertexId v, std::size_t source_index, TriggerAction act) {
    REMO_CHECK(source_index < sources_.size());
    const std::size_t block = source_index / 64;
    const StateWord bit = StateWord{1} << (source_index % 64);
    return engine_->when(
        program_ids_[block], v, [bit](StateWord mask) { return (mask & bit) != 0; },
        std::move(act));
  }

 private:
  Engine* engine_;
  std::vector<VertexId> sources_;
  std::vector<ProgramId> program_ids_;
  std::vector<std::shared_ptr<MultiStConnectivity>> programs_;
};

}  // namespace remo
