#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/assert.hpp"
#include "common/strfmt.hpp"
#include "core/engine_detail.hpp"

namespace remo {
namespace detail {

void fire_triggers(ProgramRank& pr, VertexId v, StateWord old_val, StateWord new_val) {
  if (pr.vertex_trigger_count > 0) {
    if (auto* vec = pr.vertex_triggers.find(v)) {
      std::size_t i = 0;
      while (i < vec->size()) {
        if ((*vec)[i].predicate(new_val)) {
          // Retire before running: exactly-once even if the action itself
          // changes state.
          VertexTrigger fired = std::move((*vec)[i]);
          (*vec)[i] = std::move(vec->back());
          vec->pop_back();
          --pr.vertex_trigger_count;
          fired.action(v, new_val);
        } else {
          ++i;
        }
      }
      if (vec->empty()) pr.vertex_triggers.erase(v);
    }
  }
  for (auto& gt : pr.global_triggers)
    if (!gt.predicate(old_val) && gt.predicate(new_val)) gt.action(v, new_val);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// VertexContext
// ---------------------------------------------------------------------------

StateWord VertexContext::value() const {
  const detail::ProgramRank& pr = rt_->progs[prog_];
  if (prev_view_) {
    if (const StateWord* p = pr.prev.find(vertex_)) return *p;
  }
  if (const StateWord* c = pr.cur.find(vertex_)) return *c;
  return rt_->engine->program(prog_).identity();
}

void VertexContext::set_value(StateWord v) {
  detail::ProgramRank& pr = rt_->progs[prog_];
  if (prev_view_) {
    // S_prev mutation: silent (triggers observe live state only).
    pr.prev.insert_or_assign(vertex_, v);
    return;
  }
  Engine& eng = *rt_->engine;
  const StateWord identity = eng.program(prog_).identity();
  const StateWord* c = pr.cur.find(vertex_);
  const StateWord old_val = c ? *c : identity;
  // Copy-on-first-new-epoch-write (Section III-D): freeze S_prev before a
  // new-epoch cause mutates the shared state.
  if (eng.versioned_collection_active() && epoch_ == eng.current_epoch() &&
      !pr.prev.contains(vertex_))
    pr.prev.insert_or_assign(vertex_, old_val);
  pr.cur.insert_or_assign(vertex_, v);
  detail::fire_triggers(pr, vertex_, old_val, v);
}

bool VertexContext::undirected() const {
  return rt_->engine->config().undirected;
}

StateWord VertexContext::aux() const {
  const StateWord* a = rt_->progs[prog_].aux.find(vertex_);
  return a ? *a : kInfiniteState;
}

void VertexContext::set_aux(StateWord v) {
  rt_->progs[prog_].aux.insert_or_assign(vertex_, v);
}

void VertexContext::update_single_nbr(VertexId nbr, StateWord value) {
  rt_->send(Visitor{nbr, vertex_, value, edge_weight(nbr), VisitKind::kUpdate, prog_,
                    epoch_});
}

void VertexContext::update_all_nbrs(StateWord value) {
  if (!adj_) return;
  Engine& eng = *rt_->engine;
  // The cache bounds the neighbour's *live* state only. Old-epoch
  // emissions during a versioned collection also drive receivers' frozen
  // S_prev, which may be arbitrarily behind the live state — never
  // suppress those (nor prev-view emissions, which are old-tagged too).
  // Non-monotone programs additionally opt out wholesale: the cache proof
  // ("a neighbour's live state is no-worse than anything it sent") only
  // holds under a monotone lattice, and deposits are skipped for them too.
  const bool suppressible =
      eng.config().nbr_cache_filter && !prev_view_ &&
      (!eng.versioned_collection_active() || epoch_ == eng.current_epoch()) &&
      eng.program(prog_).monotone();
  const VertexProgram* prog = suppressible ? &eng.program(prog_) : nullptr;
  adj_->for_each([&](VertexId nbr, EdgeProp& prop) {
    if (prog) {
      const StateWord cached = prop.cache_for(prog_);
      if (cached != kInfiniteState && prog->update_is_redundant(cached, value))
        return;
    }
    rt_->send(Visitor{nbr, vertex_, value, prop.weight, VisitKind::kUpdate, prog_,
                      epoch_});
  });
}

void VertexContext::mark_dirty() { rt_->progs[prog_].dirty.push_back(vertex_); }

void VertexContext::mark_invalid() {
  rt_->progs[prog_].invalidated.push_back(vertex_);
}

void VertexContext::send_invalidate_all_nbrs() {
  if (!adj_) return;
  adj_->for_each([&](VertexId nbr, EdgeProp& prop) {
    rt_->send(Visitor{nbr, vertex_, 0, prop.weight, VisitKind::kInvalidate, prog_,
                      epoch_});
  });
}

void VertexContext::send_probe_all_nbrs() {
  if (!adj_) return;
  adj_->for_each([&](VertexId nbr, EdgeProp& prop) {
    rt_->send(Visitor{nbr, vertex_, 0, prop.weight, VisitKind::kProbe, prog_, epoch_});
  });
}

// ---------------------------------------------------------------------------
// Engine — construction / teardown
// ---------------------------------------------------------------------------

namespace {
constexpr auto kPollInterval = std::chrono::microseconds(50);

std::vector<Arena*> rank_arenas(const MemoryPlane& plane, RankId num_ranks) {
  std::vector<Arena*> out(num_ranks, nullptr);
  for (RankId r = 0; r < num_ranks; ++r) out[r] = plane.rank_arena(r);
  return out;
}
}  // namespace

Engine::Engine(EngineConfig cfg)
    : cfg_(cfg),
      memory_plane_(cfg.memory, cfg.pinning, cfg.num_ranks),
      part_(cfg.num_ranks, cfg.partition),
      comm_(cfg.num_ranks, cfg.batch_size, cfg.mailbox_ring_capacity,
            rank_arenas(memory_plane_, cfg.num_ranks)),
      safra_(cfg.num_ranks) {
  REMO_CHECK(cfg_.num_ranks > 0);
  // Anything the memory plane could not deliver (hugetlb tier, NUMA bind,
  // pin slots) is announced up front — degraded, never silent.
  memory_plane_.print_banner_once();
  trace_base_ns_ = obs::monotonic_ns();
  const bool tracing = cfg_.obs.trace && obs::kTraceCompiledIn;
  if (tracing) main_trace_ = std::make_unique<obs::TraceBuffer>(cfg_.obs.trace_capacity);
  if (cfg_.obs.lineage) {
    // CauseId reserves 8 bits for the origin, with 0xFF meaning "main
    // thread" — rank ids must stay below that.
    REMO_CHECK_MSG(cfg_.num_ranks < obs::kMainOrigin,
                   "lineage tracing supports at most 254 ranks");
    main_lineage_ = std::make_unique<obs::LineageTable>(cfg_.obs.lineage_capacity);
  }
  if (cfg_.obs.prof) {
    // Resolve once (the perf_event probe costs a syscall) and give every
    // rank its own backend instance: counter fds are per-thread.
    prof_backend_kind_ = obs::resolve_prof_backend(cfg_.obs.prof_backend);
    if (cfg_.obs.prof_stacks && obs::StackSampler::supported()) {
      stack_sampler_ = std::make_unique<obs::StackSampler>(
          obs::StackSamplerConfig{cfg_.obs.prof_stack_period_us, 48});
      stack_sampler_->start();
    }
  }
  ranks_.reserve(cfg_.num_ranks);
  for (RankId r = 0; r < cfg_.num_ranks; ++r) {
    auto rt = std::make_unique<detail::RankRuntime>(cfg_.store,
                                                    memory_plane_.rank_arena(r));
    rt->engine = this;
    rt->comm = &comm_;
    rt->safra = &safra_;
    rt->part = &part_;
    rt->rank = r;
    rt->drop_nth_update = cfg_.debug.drop_nth_update;
    rt->obs_latency = cfg_.obs.latency;
    rt->obs_phases = cfg_.obs.phase_timers;
    rt->obs_sample_mask =
        (std::uint64_t{1} << (cfg_.obs.latency_sample_shift & 63)) - 1;
    if (tracing) rt->trace = std::make_unique<obs::TraceBuffer>(cfg_.obs.trace_capacity);
    if (cfg_.obs.lineage) {
      rt->lineage = std::make_unique<obs::LineageTable>(cfg_.obs.lineage_capacity);
      rt->lineage_sample_mask =
          (std::uint64_t{1} << (cfg_.obs.lineage_sample_shift & 63)) - 1;
    }
    if (cfg_.obs.prof)
      rt->prof = std::make_unique<obs::RankProfiler>(
          r, obs::make_counter_backend(prof_backend_kind_),
          cfg_.obs.prof_sample_shift);
    ranks_.push_back(std::move(rt));
  }
  threads_.reserve(cfg_.num_ranks);
  for (RankId r = 0; r < cfg_.num_ranks; ++r)
    threads_.emplace_back([this, r] { rank_main(r); });
}

Engine::~Engine() {
  // The stack sampler signals rank threads; stop it before they exit.
  if (stack_sampler_) stack_sampler_->stop();
  shutdown_.store(true, std::memory_order_release);
  comm_.interrupt_all();
  for (auto& t : threads_) t.join();
}

// ---------------------------------------------------------------------------
// Engine — program & event injection API
// ---------------------------------------------------------------------------

ProgramId Engine::attach(std::shared_ptr<VertexProgram> program) {
  std::lock_guard guard(op_mutex_);
  REMO_CHECK_MSG(idle(), "attach() requires a quiescent engine");
  REMO_CHECK_MSG(programs_.size() < 32, "too many programs");
  const ProgramId id = static_cast<ProgramId>(programs_.size());
  // combine() soundness is a lattice argument (vertex_program.hpp): merging
  // two same-sender offers into their combine() is indistinguishable from
  // late delivery only when the program is monotone. A non-monotone program
  // claiming can_combine() would have visitors silently merged whenever
  // coalescing is on — reject the configuration outright rather than
  // corrupt state at runtime.
  REMO_CHECK_MSG(program->monotone() || !program->can_combine(),
                 "can_combine() requires a monotone program");
  // The per-edge cache word is shared by all programs with last-writer-wins
  // semantics (storage/adjacency.hpp). Monotone programs only lose an
  // optimisation when evicted; a memo-delta program stores *load-bearing*
  // cumulative-message memos there, so it must own the slot outright —
  // reject co-attachment in either direction.
  const bool is_delta =
      program->memoization_policy() == MemoizationPolicy::kMemoDelta;
  bool have_delta = false;
  for (const auto& p : programs_)
    have_delta |= p->memoization_policy() == MemoizationPolicy::kMemoDelta;
  REMO_CHECK_MSG(!(is_delta && !programs_.empty()) && !have_delta,
                 "a memo-delta program needs exclusive edge-memo ownership");
  programs_.push_back(std::move(program));
  for (auto& rt : ranks_) rt->progs.emplace_back();
  // Hand the communicator a type-erased combine thunk so same-sender
  // Update visitors can be merged in the send buffers and drained batches
  // (runtime/ cannot name VertexProgram; the engine is idle here, and every
  // later visitor is published-after this write — see Comm::Combiner).
  const VertexProgram* p = programs_.back().get();
  if (cfg_.coalesce && p->can_combine()) {
    comm_.register_combiner(
        id, p, [](const void* prog, StateWord a, StateWord b) {
          return static_cast<const VertexProgram*>(prog)->combine(a, b);
        });
  }
  return id;
}

void Engine::inject_init(ProgramId p, VertexId v) {
  REMO_CHECK(p < programs_.size());
  Visitor vis{v, v, 0, kDefaultWeight, VisitKind::kInit, p,
              epoch_.load(std::memory_order_acquire)};
  comm_.note_injected(vis.epoch);
  safra_.on_basic_send(0);  // modelled as a send from rank 0's environment
  comm_.mailbox(part_.owner(v)).push_one(vis);
}

void Engine::inject_edge(const EdgeEvent& e) {
  const VisitKind kind = e.op == EdgeOp::kAdd ? VisitKind::kAdd : VisitKind::kDelete;
  // Canonical forward orientation in undirected mode — all events of an
  // unordered pair must serialise at one owner (see the stream-pull site in
  // engine_loop.cpp for the race this prevents).
  VertexId fwd_src = e.src, fwd_dst = e.dst;
  if (cfg_.undirected && fwd_dst < fwd_src) std::swap(fwd_src, fwd_dst);
  Visitor vis{fwd_src, fwd_dst, 0, e.weight, kind, Visitor::kTopologyAlgo,
              epoch_.load(std::memory_order_acquire)};
  // Lineage sampling for API injections, mirroring the stream-pull sampler
  // (self-loops skipped — they spawn no propagation). Origin 0xFF marks
  // "main thread"; the atomics keep concurrent injectors safe.
  if (main_lineage_ && e.src != e.dst &&
      (main_lineage_seen_.fetch_add(1, std::memory_order_relaxed) &
       ranks_[0]->lineage_sample_mask) == 0) {
    std::uint32_t seq = main_lineage_seq_.fetch_add(1, std::memory_order_relaxed) &
                        obs::kCauseSeqMask;
    if (seq == 0) seq = 1;
    vis.cause = obs::make_cause(obs::kMainOrigin, seq);
    main_lineage_->record_origin(vis.cause, obs_now());
    // Count the routing handoff as the root spawn, as the stream-pull path
    // does via rt.send — every sampled cause records >= 1 descendant.
    // remote=false: main -> owner is an injection, not a rank-boundary hop.
    main_lineage_->record_spawn(vis.cause, 0, /*remote=*/false);
  }
  comm_.note_injected(vis.epoch);
  // Watermark bump strictly after the in-flight increment: a gauge sampler
  // that observes this count (acquire) therefore also observes the event
  // as in flight (or already applied) — never as missing.
  injected_events_.fetch_add(1, std::memory_order_release);
  safra_.on_basic_send(0);
  comm_.mailbox(part_.owner(vis.target)).push_one(vis);
}

void Engine::inject_vertex_removal(VertexId v) {
  REMO_CHECK_MSG(comm_.in_flight_total() == 0,
                 "inject_vertex_removal() requires quiescence");
  const auto& store = ranks_[part_.owner(v)]->store;
  const TwoTierAdjacency* adj = store.adjacency(v);
  if (!adj) return;
  std::vector<VertexId> nbrs;
  adj->for_each([&](VertexId nbr, const EdgeProp&) { nbrs.push_back(nbr); });
  for (const VertexId nbr : nbrs)
    inject_edge(EdgeEvent{v, nbr, kDefaultWeight, EdgeOp::kDelete});
}

// ---------------------------------------------------------------------------
// Engine — ingestion
// ---------------------------------------------------------------------------

void Engine::ingest_async(const StreamSet& streams) {
  std::lock_guard guard(op_mutex_);
  // Injected events (e.g. a pre-ingestion init) may still be in flight —
  // that is fine; only overlapping stream runs are disallowed.
  REMO_CHECK_MSG(!streams_assigned_.load(std::memory_order_acquire),
                 "a stream set is already assigned");
  for (auto& rt : ranks_) {
    REMO_CHECK(rt->stream_remaining.load(std::memory_order_acquire) == 0);
    rt->streams.clear();
    rt->next_stream = 0;
  }
  for (std::size_t i = 0; i < streams.num_streams(); ++i) {
    auto& rt = *ranks_[i % cfg_.num_ranks];
    rt.streams.push_back(detail::RankRuntime::StreamCursor{&streams.stream(i), 0});
  }
  for (auto& rt : ranks_) {
    std::uint64_t total = 0;
    for (const auto& sc : rt->streams) total += sc.stream->size();
    rt->stream_remaining.store(total, std::memory_order_release);
  }
  ingest_start_ = std::chrono::steady_clock::now();
  ingest_events_ = streams.total_events();
  streams_paused_.store(false, std::memory_order_release);
  streams_assigned_.store(true, std::memory_order_release);
  if (cfg_.termination == TerminationMode::kSafra) safra_.rearm();
  comm_.interrupt_all();
}

bool Engine::idle() const {
  if (!streams_paused_.load(std::memory_order_acquire)) {
    for (const auto& rt : ranks_)
      if (rt->stream_remaining.load(std::memory_order_acquire) != 0) return false;
  }
  return comm_.in_flight_total() == 0;
}

void Engine::await_in_flight_zero() {
  while (comm_.in_flight_total() != 0) std::this_thread::sleep_for(kPollInterval);
}

IngestStats Engine::await_quiescence() {
  // Wait for every stream to be fully pulled...
  for (auto& rt : ranks_) {
    while (rt->stream_remaining.load(std::memory_order_acquire) != 0) {
      REMO_CHECK_MSG(!streams_paused_.load(std::memory_order_acquire),
                     "await_quiescence() while streams are paused would hang");
      std::this_thread::sleep_for(kPollInterval);
    }
  }
  // ...then for the cascades to settle.
  if (cfg_.termination == TerminationMode::kSafra) {
    while (!safra_.terminated()) std::this_thread::sleep_for(kPollInterval);
    // Safra declared termination; the counting invariant must agree.
    REMO_CHECK(comm_.in_flight_total() == 0);
  } else {
    await_in_flight_zero();
  }

  IngestStats stats;
  stats.events = ingest_events_;
  stats.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                ingest_start_)
                      .count();
  stats.events_per_second =
      stats.seconds > 0 ? static_cast<double>(stats.events) / stats.seconds : 0.0;

  std::lock_guard guard(op_mutex_);
  for (auto& rt : ranks_) rt->streams.clear();
  streams_assigned_.store(false, std::memory_order_release);
  return stats;
}

IngestStats Engine::ingest(const StreamSet& streams) {
  ingest_async(streams);
  return await_quiescence();
}

void Engine::drain() {
  if (cfg_.termination == TerminationMode::kSafra) {
    safra_.rearm();
    comm_.interrupt_all();
    while (!safra_.terminated()) std::this_thread::sleep_for(kPollInterval);
    REMO_CHECK(comm_.in_flight_total() == 0);
  } else {
    await_in_flight_zero();
  }
}

void Engine::resume_streams() {
  streams_paused_.store(false, std::memory_order_release);
  comm_.interrupt_all();
}

// ---------------------------------------------------------------------------
// Engine — state access & snapshots
// ---------------------------------------------------------------------------

StateWord Engine::state_of(ProgramId p, VertexId v) const {
  REMO_CHECK(p < programs_.size());
  REMO_CHECK_MSG(comm_.in_flight_total() == 0,
                 "state_of() requires quiescence; use triggers for live reads");
  const auto& rt = *ranks_[part_.owner(v)];
  const StateWord* c = rt.progs[p].cur.find(v);
  return c ? *c : programs_[p]->identity();
}

void Engine::broadcast_control_and_wait(ControlOp op, ProgramId p) {
  control_acks_.store(0, std::memory_order_release);
  main_control_sent_.fetch_add(cfg_.num_ranks, std::memory_order_relaxed);
  for (RankId r = 0; r < cfg_.num_ranks; ++r) {
    Visitor vis{};
    vis.kind = VisitKind::kControl;
    vis.other = static_cast<std::uint64_t>(op);
    vis.algo = p;
    comm_.mailbox(r).push_one(vis);
  }
  while (control_acks_.load(std::memory_order_acquire) < cfg_.num_ranks)
    std::this_thread::sleep_for(kPollInterval);
}

Snapshot Engine::harvest(ProgramId p) {
  broadcast_control_and_wait(ControlOp::kHarvest, p);

  std::vector<Snapshot::Entry> entries;
  for (auto& rt : ranks_) {
    std::lock_guard guard(rt->harvest_mutex);
    entries.insert(entries.end(), rt->harvest_out.begin(), rt->harvest_out.end());
    rt->harvest_out.clear();
  }
  return Snapshot(std::move(entries), programs_[p]->identity());
}

Snapshot Engine::collect_quiescent(ProgramId p) {
  REMO_CHECK(p < programs_.size());
  std::lock_guard guard(op_mutex_);
  const std::uint64_t t0 = main_trace_ ? obs_now() : 0;
  const bool was_paused = streams_paused_.load(std::memory_order_acquire);
  pause_streams();
  await_in_flight_zero();
  Snapshot snap = harvest(p);
  snap.set_epoch(epoch_.load(std::memory_order_acquire));
  if (!was_paused) resume_streams();
  if (main_trace_)
    main_trace_->emit("collect_quiescent", t0, obs_now() - t0, "vertices",
                      snap.size());
  return snap;
}

Snapshot Engine::collect_aux_quiescent(ProgramId p) {
  REMO_CHECK(p < programs_.size());
  std::lock_guard guard(op_mutex_);
  const bool was_paused = streams_paused_.load(std::memory_order_acquire);
  pause_streams();
  await_in_flight_zero();
  std::vector<Snapshot::Entry> entries;
  for (auto& rt : ranks_) {
    rt->progs[p].aux.for_each([&](const VertexId& v, StateWord& a) {
      if (a != kInfiniteState) entries.emplace_back(v, a);
    });
  }
  if (!was_paused) resume_streams();
  return Snapshot(std::move(entries), kInfiniteState);
}

Snapshot Engine::collect_versioned(ProgramId p) {
  REMO_CHECK(p < programs_.size());
  std::lock_guard guard(op_mutex_);
  const std::uint64_t t0 = obs_now();
  // Watermark before the cut: every event counted here registered its
  // in-flight work first (release/acquire pairing, see sample_gauges), so
  // it is provably inside the old epoch this cut is about to drain.
  const std::uint64_t cut_watermark =
      epoch_drain_hook_ ? ingested_watermark() : 0;

  versioned_active_.store(true, std::memory_order_release);
  const std::uint16_t old_epoch = epoch_.fetch_add(1, std::memory_order_acq_rel);
  const std::uint16_t new_epoch = static_cast<std::uint16_t>(old_epoch + 1);
  comm_.interrupt_all();

  // Handshake: once every rank has published the new epoch, no further
  // old-tagged injections can occur, so the old parity counter can only
  // fall to zero.
  for (auto& rt : ranks_) {
    while (rt->epoch_seen.load(std::memory_order_acquire) != new_epoch) {
      std::this_thread::sleep_for(kPollInterval);
      comm_.interrupt_all();  // parked ranks publish on wake
    }
  }
  while (comm_.in_flight(old_epoch & 1) != 0) std::this_thread::sleep_for(kPollInterval);
  const std::uint64_t drained_ns = obs_now();
  if (main_trace_) main_trace_->emit("epoch_drain", t0, drained_ns - t0);
  if (epoch_drain_hook_)
    epoch_drain_hook_(EpochDrainInfo{new_epoch, cut_watermark, t0, drained_ns});

  // The cut is final: S_prev (or the shared state for unsplit vertices) is
  // the global algorithm state at the discretisation point, while new-epoch
  // ingestion continues untouched.
  Snapshot snap = harvest(p);
  snap.set_epoch(new_epoch);
  versioned_active_.store(false, std::memory_order_release);
  if (main_trace_)
    main_trace_->emit("collect_versioned", t0, obs_now() - t0, "vertices",
                      snap.size());
  return snap;
}

// ---------------------------------------------------------------------------
// Engine — "when" queries
// ---------------------------------------------------------------------------

TriggerId Engine::when(ProgramId p, VertexId v, TriggerPredicate pred,
                       TriggerAction act) {
  REMO_CHECK(p < programs_.size());
  auto& rt = *ranks_[part_.owner(v)];
  detail::PendingTrigger pt;
  pt.prog = p;
  pt.is_global = false;
  pt.vertex_trigger = VertexTrigger{v, std::move(pred), std::move(act)};
  {
    std::lock_guard guard(rt.reg_mutex);
    rt.pending_triggers.push_back(std::move(pt));
  }
  rt.has_pending.store(true, std::memory_order_release);
  comm_.mailbox(rt.rank).interrupt();
  return next_trigger_id_++;
}

TriggerId Engine::when_any(ProgramId p, TriggerPredicate pred, TriggerAction act) {
  REMO_CHECK(p < programs_.size());
  for (auto& rt : ranks_) {
    detail::PendingTrigger pt;
    pt.prog = p;
    pt.is_global = true;
    pt.global_trigger = GlobalTrigger{pred, act};
    {
      std::lock_guard guard(rt->reg_mutex);
      rt->pending_triggers.push_back(std::move(pt));
    }
    rt->has_pending.store(true, std::memory_order_release);
    comm_.mailbox(rt->rank).interrupt();
  }
  return next_trigger_id_++;
}

// ---------------------------------------------------------------------------
// Engine — decremental repair (Section VI-B)
// ---------------------------------------------------------------------------

void Engine::repair(ProgramId p) {
  REMO_CHECK(p < programs_.size());
  REMO_CHECK_MSG(programs_[p]->supports_deletes(),
                 "repair() on a program without delete support");
  std::lock_guard guard(op_mutex_);
  const std::uint64_t t0 = main_trace_ ? obs_now() : 0;
  const bool was_paused = streams_paused_.load(std::memory_order_acquire);
  pause_streams();
  await_in_flight_zero();

  // Phase A: invalidation wave from every dirty anchor (asynchronous and
  // concurrent across ranks; quiescence ends the phase).
  broadcast_control_and_wait(ControlOp::kRepairAnchors, p);
  await_in_flight_zero();

  // Phase B: every invalidated vertex probes its neighbourhood; the normal
  // monotone machinery then reconverges.
  broadcast_control_and_wait(ControlOp::kRepairProbes, p);
  await_in_flight_zero();

  if (!was_paused) resume_streams();
  if (main_trace_) main_trace_->emit("repair", t0, obs_now() - t0);
}

void Engine::repair_all() {
  for (ProgramId p = 0; p < programs_.size(); ++p)
    if (programs_[p]->supports_deletes()) repair(p);
}

void Engine::reset_program(ProgramId p) {
  REMO_CHECK(p < programs_.size());
  std::lock_guard guard(op_mutex_);
  REMO_CHECK_MSG(comm_.in_flight_total() == 0, "reset_program() requires quiescence");
  for (auto& rt : ranks_) {
    auto& pr = rt->progs[p];
    pr.cur.clear();
    pr.prev.clear();
    pr.aux.clear();
    pr.dirty.clear();
    pr.invalidated.clear();
    // Edge caches deposited by this program would otherwise let the
    // redundancy filter suppress the rerun's propagation.
    rt->store.for_each_vertex([&](VertexId, TwoTierAdjacency& adj) {
      adj.for_each([&](VertexId, EdgeProp& prop) {
        if (prop.cache_algo == p) prop.clear_cache();
      });
    });
  }
}

// ---------------------------------------------------------------------------
// Engine — introspection
// ---------------------------------------------------------------------------

MetricsSummary Engine::metrics() const {
  MetricsSummary s = MetricsSummary::aggregate(rank_metrics());
  const std::uint64_t main = main_control_sent_.load(std::memory_order_relaxed);
  s.messages_sent += main;
  s.control_messages += main;
  return s;
}

obs::MetricsSnapshot Engine::metrics_snapshot() const {
  obs::MetricsSnapshot s;
  s.per_rank.reserve(ranks_.size());
  for (const auto& rt : ranks_) {
    obs::RankObs ro;
    ro.counters = rt->metrics.snapshot();
    ro.update_latency_ns = rt->update_latency.snapshot();
    ro.phases = rt->phases.snapshot();
    s.update_latency_ns.merge(ro.update_latency_ns);
    s.phases.merge(ro.phases);
    s.per_rank.push_back(std::move(ro));
  }
  s.counters = metrics();  // includes the main thread's control sends
  if (lineage_enabled()) {
    s.lineage_enabled = true;
    s.lineage = lineage_snapshot().summary();
  }
  if (prof_enabled()) s.prof = prof_snapshot();
  return s;
}

bool Engine::prof_enabled() const noexcept { return cfg_.obs.prof; }

obs::ProfSnapshot Engine::prof_snapshot() const {
  obs::ProfSnapshot s;
  if (!prof_enabled()) return s;
  s.enabled = true;
  s.backend = obs::prof_backend_name(prof_backend_kind_);
  s.degraded = prof_backend_kind_ != obs::ProfBackendKind::kPerfEvent;
  s.sample_shift = cfg_.obs.prof_sample_shift;
  s.per_rank.reserve(ranks_.size());
  for (const auto& rt : ranks_) {
    s.available |= rt->prof->available();
    s.per_rank.push_back(rt->prof->snapshot());
  }
  return s;
}

bool Engine::write_prof(const std::string& path) const {
  if (!prof_enabled()) return false;
  const std::string text = prof_snapshot().to_json().dump(2);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

bool Engine::write_folded(const std::string& path) {
  if (!stack_sampler_) return false;
  return stack_sampler_->write_folded(path);
}

bool Engine::lineage_enabled() const noexcept { return main_lineage_ != nullptr; }

obs::LineageSnapshot Engine::lineage_snapshot() const {
  if (!lineage_enabled()) return {};
  std::vector<obs::LineageCellSnapshot> cells;
  std::uint64_t dropped = main_lineage_->dropped();
  for (RankId r = 0; r < cfg_.num_ranks; ++r) {
    const auto rank_cells = ranks_[r]->lineage->snapshot(r);
    cells.insert(cells.end(), rank_cells.begin(), rank_cells.end());
    dropped += ranks_[r]->lineage->dropped();
  }
  const auto main_cells = main_lineage_->snapshot(obs::kMainOrigin);
  cells.insert(cells.end(), main_cells.begin(), main_cells.end());
  return obs::merge_lineage(cells, cfg_.num_ranks, dropped);
}

bool Engine::write_lineage(const std::string& path) const {
  if (!lineage_enabled()) return false;
  const std::string text = lineage_snapshot().to_json().dump();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

bool Engine::tracing_enabled() const noexcept { return main_trace_ != nullptr; }

std::uint64_t Engine::obs_now() const noexcept {
  return obs::monotonic_ns() - trace_base_ns_;
}

std::uint64_t Engine::ingested_watermark() const noexcept {
  std::uint64_t n = injected_events_.load(std::memory_order_acquire);
  for (const auto& rt : ranks_)
    n += rt->gauges.events_ingested.load(std::memory_order_acquire);
  return n;
}

void Engine::set_epoch_drain_hook(EpochDrainHook hook) {
  std::lock_guard guard(op_mutex_);
  epoch_drain_hook_ = std::move(hook);
}

bool Engine::write_trace(const std::string& path,
                         std::vector<obs::TraceTrack> extra_tracks) const {
  if (!tracing_enabled()) return false;
  std::vector<obs::TraceTrack> tracks;
  tracks.reserve(ranks_.size() + 1 + extra_tracks.size());
  for (RankId r = 0; r < cfg_.num_ranks; ++r)
    tracks.push_back(obs::TraceTrack{strfmt("rank %u", r), r,
                                     ranks_[r]->trace->events()});
  tracks.push_back(
      obs::TraceTrack{"main", cfg_.num_ranks, main_trace_->events()});
  for (auto& t : extra_tracks) tracks.push_back(std::move(t));
  return obs::write_chrome_trace(path, "remo engine", tracks);
}

std::vector<RankMetrics> Engine::rank_metrics() const {
  std::vector<RankMetrics> out;
  out.reserve(ranks_.size());
  for (const auto& rt : ranks_) {
    out.push_back(rt->metrics.snapshot());
    // Spill accounting lives in the mailbox (the *receiving* side), so a
    // rank's row reports overflows into its own ingress queue.
    out.back().ring_overflows = comm_.overflows(rt->rank);
  }
  return out;
}

obs::GaugeSample Engine::sample_gauges() const {
  obs::GaugeSample s;
  s.sample_ns = obs_now();

  // Soundness of the watermark advance hinges on read order: take the
  // ingested counts FIRST (acquire), then probe the quiescence indicators.
  // Each ingested event bumps its gauge only after the matching in-flight
  // increment (release), so if the later checks find in-flight == 0 and
  // every queue empty, all events in `ingested` have provably been applied
  // — the count read here is a safe converged watermark.
  std::uint64_t ingested = injected_events_.load(std::memory_order_acquire);
  for (const auto& rt : ranks_)
    ingested += rt->gauges.events_ingested.load(std::memory_order_acquire);

  bool streams_active = false;
  if (streams_assigned_.load(std::memory_order_acquire) &&
      !streams_paused_.load(std::memory_order_acquire)) {
    for (const auto& rt : ranks_)
      if (rt->stream_remaining.load(std::memory_order_acquire) != 0)
        streams_active = true;
  }

  s.per_rank.reserve(ranks_.size());
  for (RankId r = 0; r < cfg_.num_ranks; ++r) {
    const auto& rt = *ranks_[r];
    obs::RankGaugeSample g;
    g.queue_depth = comm_.queue_depth(r);
    g.ring_occupancy = comm_.ring_depth(r);
    g.overflow_depth = comm_.overflow_depth(r);
    g.events_ingested = rt.gauges.events_ingested.load(std::memory_order_relaxed);
    g.events_applied = rt.metrics.topology_events.load();
    g.converged_through = rt.gauges.converged_through.load(std::memory_order_relaxed);
    g.idle = rt.gauges.idle.load(std::memory_order_relaxed);
    if (!(g.idle && g.queue_depth == 0)) {
      const std::uint64_t passive_ns =
          rt.gauges.last_passive_ns.load(std::memory_order_relaxed);
      g.staleness_ns = s.sample_ns > passive_ns ? s.sample_ns - passive_ns : 0;
    }
    g.trace_emitted = rt.trace ? rt.trace->emitted() : 0;
    if (g.idle) ++s.idle_ranks;
    s.queue_depth += g.queue_depth;
    s.events_applied += g.events_applied;
    s.per_rank.push_back(g);
  }
  s.in_flight = comm_.in_flight_total();
  s.events_ingested = ingested;
  s.idle_ratio = static_cast<double>(s.idle_ranks) / cfg_.num_ranks;
  s.quiescent = !streams_active && s.in_flight == 0 && s.queue_depth == 0;

  if (s.quiescent) {
    // Advance the converged watermark (CAS-max keeps it monotone under
    // concurrent samplers) and timestamp the advance for staleness.
    std::uint64_t cur = converged_events_.load(std::memory_order_relaxed);
    while (cur < ingested && !converged_events_.compare_exchange_weak(
                                 cur, ingested, std::memory_order_acq_rel,
                                 std::memory_order_relaxed)) {
    }
    if (cur < ingested) converged_ns_.store(s.sample_ns, std::memory_order_release);
  }
  s.converged_through = converged_events_.load(std::memory_order_acquire);
  s.convergence_lag_events =
      s.events_ingested > s.converged_through
          ? s.events_ingested - s.converged_through
          : 0;
  if (s.convergence_lag_events != 0) {
    const std::uint64_t conv_ns = converged_ns_.load(std::memory_order_acquire);
    s.staleness_ns = s.sample_ns > conv_ns ? s.sample_ns - conv_ns : 0;
  }

  s.safra_mode = cfg_.termination == TerminationMode::kSafra;
  if (s.safra_mode) {
    s.safra_generation = safra_.generation();
    s.safra_probe_rounds = safra_.probe_rounds();
    s.safra_probe_active = safra_.probe_active();
    s.safra_terminated = safra_.terminated();
  }

  if (prof_enabled()) {
    s.prof.present = true;
    s.prof.backend = obs::prof_backend_name(prof_backend_kind_);
    s.prof.degraded = prof_backend_kind_ != obs::ProfBackendKind::kPerfEvent;
    for (const auto& rt : ranks_) {
      const obs::RankProfSnapshot rs = rt->prof->snapshot();
      for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
        s.prof.phase[i] += rs.phase[i];
        s.prof.attributed_ns[i] += rs.attributed_ns[i];
      }
      s.prof.reads += rs.reads;
      s.prof.read_failures += rs.read_failures;
    }
  }
  return s;
}

std::string Engine::stall_dump(RankId flagged) const {
  std::string out;
  if (flagged >= cfg_.num_ranks) return out;
  const auto& rt = *ranks_[flagged];
  const RankMetrics m = rt.metrics.snapshot();
  out += strfmt(
      "rank %u counters: topo %llu, algo %llu, sent %llu (local %llu, remote "
      "%llu, control %llu), edges stored %llu\n",
      flagged, static_cast<unsigned long long>(m.topology_events),
      static_cast<unsigned long long>(m.algorithm_events),
      static_cast<unsigned long long>(m.messages_sent),
      static_cast<unsigned long long>(m.local_messages),
      static_cast<unsigned long long>(m.remote_messages),
      static_cast<unsigned long long>(m.control_messages),
      static_cast<unsigned long long>(m.edges_stored));
  out += strfmt("rank %u stream backlog: %llu events unpulled\n", flagged,
                static_cast<unsigned long long>(
                    rt.stream_remaining.load(std::memory_order_acquire)));
  if (rt.trace) {
    // Best-effort tail: the flagged rank has stopped emitting, so the ring
    // is stable in practice (see TraceBuffer::recent_events).
    const auto recent = rt.trace->recent_events(16);
    out += strfmt("rank %u recent trace slices (newest last, %llu emitted "
                  "lifetime):\n",
                  flagged, static_cast<unsigned long long>(rt.trace->emitted()));
    for (const auto& ev : recent) {
      out += strfmt("  %-18s ts %.6f s dur %.3f us", ev.name ? ev.name : "?",
                    static_cast<double>(ev.ts_ns) / 1e9,
                    static_cast<double>(ev.dur_ns) / 1e3);
      if (ev.arg_name)
        out += strfmt("  %s=%llu", ev.arg_name,
                      static_cast<unsigned long long>(ev.arg_value));
      out += '\n';
    }
  }
  return out;
}

const DegAwareStore& Engine::store(RankId r) const { return ranks_[r]->store; }

std::size_t Engine::total_stored_edges() const {
  std::size_t n = 0;
  for (const auto& rt : ranks_) n += rt->store.edge_count();
  return n;
}

std::size_t Engine::total_stored_vertices() const {
  std::size_t n = 0;
  for (const auto& rt : ranks_) n += rt->store.vertex_count();
  return n;
}

std::size_t Engine::store_memory_bytes() const {
  std::size_t n = 0;
  for (const auto& rt : ranks_) n += rt->store.memory_bytes();
  return n;
}

}  // namespace remo
