// Engine: the on-line incremental graph analytics middleware.
//
// The engine owns N shared-nothing ranks (threads). Each rank owns a
// disjoint vertex partition (consistent hashing, Section III-C), a
// DegAwareRHH-style topology store (Section III-B), and per-program
// algorithm state. Ranks exchange only POD visitor messages over FIFO
// mailboxes — there is no shared algorithm state, no locks on the data
// path, and no atomics beyond the runtime's termination accounting,
// mirroring the paper's "no shared memory (nor locking or atomics)" claim
// at the algorithm level.
//
// Lifecycle: attach programs, then ingest streams (synchronously or
// asynchronously), injecting algorithm init events, "when" queries and
// global-state collections at any time before, during, or after ingestion
// (Section V's "system properties that always held true").
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "core/engine_config.hpp"
#include "core/query.hpp"
#include "core/snapshot.hpp"
#include "core/vertex_program.hpp"
#include "gen/stream.hpp"
#include "obs/gauges.hpp"
#include "obs/lineage.hpp"
#include "obs/prof.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "runtime/comm.hpp"
#include "runtime/metrics.hpp"
#include "runtime/partitioner.hpp"
#include "runtime/safra.hpp"
#include "storage/degaware_store.hpp"

namespace remo {

/// Outcome of one ingestion run (saturation methodology of Section V-A:
/// events are offered as fast as ranks can pull them, so events/second is
/// the maximum real-time rate the configuration can sustain).
struct IngestStats {
  std::uint64_t events = 0;
  double seconds = 0.0;
  double events_per_second = 0.0;
};

class Engine {
 public:
  explicit Engine(EngineConfig cfg = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  RankId num_ranks() const noexcept { return cfg_.num_ranks; }
  const EngineConfig& config() const noexcept { return cfg_; }

  // --- Programs ------------------------------------------------------------

  /// Attach an algorithm. Must be called while the engine is idle. At most
  /// 32 programs per engine. Returns the program slot id.
  ProgramId attach(std::shared_ptr<VertexProgram> program);

  /// Construct-and-attach convenience.
  template <typename P, typename... Args>
  std::pair<ProgramId, std::shared_ptr<P>> attach_make(Args&&... args) {
    auto p = std::make_shared<P>(std::forward<Args>(args)...);
    return {attach(p), p};
  }

  std::size_t num_programs() const noexcept { return programs_.size(); }
  VertexProgram& program(ProgramId p) const { return *programs_[p]; }

  // --- Event injection -------------------------------------------------------

  /// Instantiate program `p` at vertex `v` (e.g. set the BFS source).
  /// Allowed at any time, including mid-ingestion.
  void inject_init(ProgramId p, VertexId v);

  /// Feed a single topology event from the application (the streamless
  /// API used by the examples).
  void inject_edge(const EdgeEvent& e);

  /// Remove a vertex: materialised as the set of edge-delete events for
  /// every edge incident to `v` (the paper's Section III-A footnote:
  /// vertex-related changes are sets of edge changes). Requires
  /// quiescence so the incident edge set is well defined.
  void inject_vertex_removal(VertexId v);

  // --- Ingestion -------------------------------------------------------------

  /// Assign stream i to rank (i mod num_ranks) and start pulling. The set
  /// must outlive the run. Engine must be idle.
  void ingest_async(const StreamSet& streams);

  /// Block until all streams are exhausted and the system is quiescent.
  IngestStats await_quiescence();

  /// ingest_async + await_quiescence.
  IngestStats ingest(const StreamSet& streams);

  /// Process any injected events to quiescence (no streams).
  void drain();

  /// True when streams are exhausted (or none assigned) and no work is in
  /// flight anywhere.
  bool idle() const;

  /// Stop/resume stream pulling; algorithm events keep flowing.
  void pause_streams() { streams_paused_.store(true, std::memory_order_release); }
  void resume_streams();

  // --- State access ----------------------------------------------------------

  /// Local state of one vertex. Requires quiescence (use triggers for live
  /// observation, per Section III-E).
  StateWord state_of(ProgramId p, VertexId v) const;

  /// Pause streams, drain, gather all non-identity state, resume.
  Snapshot collect_quiescent(ProgramId p);

  /// Gather the program's auxiliary per-vertex word (e.g. the BFS/SSSP
  /// parent pointers — the full tree of Section II-C's "global state"
  /// example). Quiescent only; aux state is not versioned.
  Snapshot collect_aux_quiescent(ProgramId p);

  /// Chandy-Lamport-style versioned collection (Section III-D): cut the
  /// streams at "now", keep ingesting the new epoch, and return the state
  /// at the cut once the old epoch drains. Never pauses the streams.
  Snapshot collect_versioned(ProgramId p);

  // --- "When" queries (Section III-E) -----------------------------------------

  /// Fire `act` once, when vertex `v`'s state for program `p` first
  /// satisfies `pred`. If it already does, fires promptly.
  TriggerId when(ProgramId p, VertexId v, TriggerPredicate pred, TriggerAction act);

  /// Fire `act` whenever *any* vertex's state transitions into `pred`
  /// (once per upward crossing — at most once per vertex under add-only
  /// events; delete-era repair may re-cross, see query.hpp). Registration
  /// is prospective: existing satisfied vertices do not fire.
  TriggerId when_any(ProgramId p, TriggerPredicate pred, TriggerAction act);

  // --- Decremental repair (Section VI-B) ---------------------------------------

  /// Run the invalidate/probe repair waves for one delete-capable program.
  /// Requires quiescence (deletes already ingested). Both waves execute
  /// asynchronously and concurrently across ranks.
  void repair(ProgramId p);

  /// repair() for every program with supports_deletes().
  void repair_all();

  /// Clear all algorithm state of one program (topology untouched), e.g.
  /// to rerun a traversal from a different source on the same dynamic
  /// graph. Requires quiescence.
  void reset_program(ProgramId p);

  // --- Introspection ------------------------------------------------------------

  MetricsSummary metrics() const;
  std::vector<RankMetrics> rank_metrics() const;

  /// Full observability snapshot: counters, merged per-update latency
  /// histogram (p50/p90/p99/p999), per-phase wall-clock accounting — per
  /// rank and aggregated.
  ///
  /// Safe to call from any thread concurrently with the event loop: every
  /// cell it reads is a single-writer relaxed atomic, so the snapshot is a
  /// torn-across-counters but per-counter-consistent view (each counter is
  /// some value it actually held; counters need not be from the same
  /// instant). At quiescence the snapshot is exact. See
  /// docs/OBSERVABILITY.md.
  obs::MetricsSnapshot metrics_snapshot() const;

  /// One live-telemetry sample: watermarks (events ingested / applied /
  /// converged-through), convergence lag and staleness, per-rank queue
  /// depths, in-flight message count, and termination-detector state.
  /// Lock-free reads of relaxed/acquire atomics — callable from any thread
  /// at any time without stopping the engine; this is what the
  /// MetricsExporter and StallWatchdog poll. Advances the converged-through
  /// watermark (CAS-max) when it observes the system quiescent, so it is
  /// `const` in the logical sense only. See docs/OBSERVABILITY.md.
  obs::GaugeSample sample_gauges() const;

  /// Render the stall-watchdog's extra diagnostics for a flagged rank:
  /// the rank's counter snapshot plus its most recent trace events (when
  /// tracing is on). Best-effort — the flagged rank is by definition not
  /// emitting, so the trace tail is stable in practice.
  std::string stall_dump(RankId flagged) const;

  /// True when chrome-trace capture is active (config flag set and tracing
  /// compiled in).
  bool tracing_enabled() const noexcept;

  /// Export the captured trace as chrome://tracing JSON — one track per
  /// rank plus one for the main thread's control operations, followed by
  /// any caller-supplied extra tracks (e.g. a SpanRecorder's write-path
  /// flow slices). Call at quiescence (the ring buffers are single-writer).
  /// Returns false when tracing is disabled or the file cannot be written.
  bool write_trace(const std::string& path,
                   std::vector<obs::TraceTrack> extra_tracks = {}) const;

  /// True when causal lineage tracing is active (config flag set).
  bool lineage_enabled() const noexcept;

  /// Merge the per-rank lineage tables into global per-cause records:
  /// visitors spawned/applied, max hop depth, ranks touched, wall-clock
  /// span from ingest to last descendant, and the witness chain
  /// approximating each cause's critical path. Callable from any thread
  /// (relaxed single-writer cells, like metrics_snapshot()); exact at
  /// quiescence. Empty when lineage is disabled.
  obs::LineageSnapshot lineage_snapshot() const;

  /// Dump the merged lineage as a remo-lineage-1 JSON file (the input of
  /// `remo_cli trace-analyze`). Returns false when lineage is disabled or
  /// the file cannot be written.
  bool write_lineage(const std::string& path) const;

  /// True when hardware-counter profiling is active (config flag set).
  bool prof_enabled() const noexcept;

  /// Per-rank × per-phase hardware-counter attribution (obs/prof.hpp).
  /// Callable from any thread (relaxed single-writer accumulators, like
  /// metrics_snapshot()); exact at quiescence. enabled=false when
  /// profiling is off.
  obs::ProfSnapshot prof_snapshot() const;

  /// Dump the counter attribution as a remo-prof-1 JSON file (the input of
  /// `remo_cli trace-analyze --prof`). Returns false when profiling is
  /// disabled or the file cannot be written.
  bool write_prof(const std::string& path) const;

  /// Stop the on-CPU stack sampler (if running) and write the folded
  /// flamegraph-compatible stacks. Returns false when stack sampling was
  /// not enabled or the file cannot be written.
  bool write_folded(const std::string& path);

  /// The on-CPU stack sampler when prof_stacks is on (null otherwise).
  obs::StackSampler* stack_sampler() noexcept { return stack_sampler_.get(); }

  /// Topology store of one rank (requires quiescence for consistent reads).
  const DegAwareStore& store(RankId r) const;

  std::size_t total_stored_edges() const;
  std::size_t total_stored_vertices() const;
  std::size_t store_memory_bytes() const;

  const Partitioner& partitioner() const noexcept { return part_; }

  /// The locality plane: topology snapshot, pin plan, per-rank arenas
  /// (DESIGN.md "Memory & locality"). Its to_json() block rides along in
  /// BENCH reports so A/B locality evidence is self-describing.
  const MemoryPlane& memory_plane() const noexcept { return memory_plane_; }

  /// True while a versioned collection is splitting state (internal, but
  /// harmless to observe).
  bool versioned_collection_active() const noexcept {
    return versioned_active_.load(std::memory_order_acquire);
  }

  std::uint16_t current_epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Engine-relative monotonic nanoseconds — the time base of every trace
  /// slice, gauge sample, and write-path span milestone. Public so external
  /// instrumentation (the serving plane's span stamps) shares the engine's
  /// clock instead of inventing a second origin.
  std::uint64_t obs_now() const noexcept;

  /// Total topology events accepted so far: main-thread API injections plus
  /// per-rank stream pulls (the events_ingested gauge without the rest of a
  /// sample). Monotone; a thread reading this after its own inject_edge
  /// calls gets a count covering them, and the count covers any injector
  /// whose completion happens-before the read.
  std::uint64_t ingested_watermark() const noexcept;

  /// What collect_versioned reports when an epoch cut finishes draining:
  /// the watermark every event inside the cut is counted under, plus the
  /// cut/drain instants (engine clock).
  struct EpochDrainInfo {
    std::uint16_t epoch = 0;         ///< the new epoch stamped on the cut
    std::uint64_t watermark = 0;     ///< ingested watermark at cut start
    std::uint64_t cut_ns = 0;
    std::uint64_t drained_ns = 0;
  };
  using EpochDrainHook = std::function<void(const EpochDrainInfo&)>;

  /// Install (or clear, with an empty function) the epoch-drain hook. The
  /// hook runs on the collecting thread while the engine's op lock is held:
  /// it must be quick and must not call back into engine operations (the
  /// serving plane's SpanRecorder::on_epoch_drained is the intended use).
  void set_epoch_drain_hook(EpochDrainHook hook);

 private:
  friend class VertexContext;

  void rank_main(RankId r);
  void process_visitor(detail::RankRuntime& rt, const Visitor& v);
  void dispatch_visitor(detail::RankRuntime& rt, const Visitor& v);
  void process_topology_add(detail::RankRuntime& rt, const Visitor& v);
  void process_topology_delete(detail::RankRuntime& rt, const Visitor& v);
  void emit_program_reverse(detail::RankRuntime& rt, const Visitor& v, ProgramId p,
                            VisitKind kind);
  template <typename Invoke>
  void dispatch_views(detail::RankRuntime& rt, const Visitor& v, ProgramId p,
                      TwoTierAdjacency* adj, Invoke&& invoke);
  void handle_control(detail::RankRuntime& rt, const Visitor& v);
  void handle_safra_idle(detail::RankRuntime& rt);
  void absorb_pending_triggers(detail::RankRuntime& rt);
  void do_harvest(detail::RankRuntime& rt, ProgramId p);
  void do_repair_anchors(detail::RankRuntime& rt, ProgramId p);
  void do_repair_probes(detail::RankRuntime& rt, ProgramId p);
  void await_in_flight_zero();
  /// Push one control visitor per rank from the main thread and block
  /// until every rank has acknowledged via control_acks_.
  void broadcast_control_and_wait(ControlOp op, ProgramId p);
  Snapshot harvest(ProgramId p);

  EngineConfig cfg_;
  // Declared before comm_ and ranks_ (and thus destroyed after them):
  // arena chunks must outlive every container that bump-allocated from
  // them — mailbox rings, storage shards (ASan-audited teardown order).
  MemoryPlane memory_plane_;
  Partitioner part_;
  Comm comm_;
  SafraRing safra_;

  std::vector<std::shared_ptr<VertexProgram>> programs_;
  std::vector<std::unique_ptr<detail::RankRuntime>> ranks_;
  std::vector<std::thread> threads_;

  std::atomic<bool> shutdown_{false};
  std::atomic<bool> streams_paused_{false};
  std::atomic<bool> streams_assigned_{false};

  // Versioned-collection epoch machinery (Section III-D).
  std::atomic<std::uint16_t> epoch_{0};
  std::atomic<bool> versioned_active_{false};

  // Acknowledgement counters for control fan-outs (harvest / repair).
  std::atomic<std::uint32_t> control_acks_{0};

  // Control visitors the *main thread* pushed (harvest / repair fan-outs).
  // Ranks count their own sends in rank-private metrics; this cell is the
  // main thread's share, folded into the merged counters at snapshot time.
  std::atomic<std::uint64_t> main_control_sent_{0};

  // Serialises collect/repair/ingest phase transitions.
  mutable std::mutex op_mutex_;

  // Write-path span support: invoked by collect_versioned once the old
  // epoch's in-flight work hits zero. Guarded by op_mutex_ (both the setter
  // and the only call site hold it).
  EpochDrainHook epoch_drain_hook_;

  // Current ingestion run bookkeeping (main thread only).
  std::chrono::steady_clock::time_point ingest_start_{};
  std::uint64_t ingest_events_ = 0;

  // Live-telemetry watermarks (docs/OBSERVABILITY.md). `injected_events_`
  // counts topology/init events the *main thread* injected directly
  // (inject_edge / inject_init), bumped with release order AFTER the
  // matching in-flight increment so a sampler that sees the count also
  // sees the in-flight message. The converged watermark is advanced by
  // observers (sample_gauges) via CAS-max when they see the system
  // quiescent; `converged_ns_` timestamps the advance for staleness.
  std::atomic<std::uint64_t> injected_events_{0};
  mutable std::atomic<std::uint64_t> converged_events_{0};
  mutable std::atomic<std::uint64_t> converged_ns_{0};

  // Observability: trace timestamp origin + the main thread's own track.
  std::uint64_t trace_base_ns_ = 0;
  std::unique_ptr<obs::TraceBuffer> main_trace_;

  // Hardware-counter profiling: the backend kind resolved at construction
  // (per-rank RankProfilers live in RankRuntime) and the optional on-CPU
  // stack sampler. The sampler signals rank threads, so the destructor
  // stops it before joining them.
  obs::ProfBackendKind prof_backend_kind_ = obs::ProfBackendKind::kNoop;
  std::unique_ptr<obs::StackSampler> stack_sampler_;

  // Causal lineage: the main thread's own table (for inject_edge origins —
  // ranks own theirs). inject_edge may be called from several application
  // threads, so the sampling counter and sequence are atomics and the
  // table's claim path is a CAS.
  std::unique_ptr<obs::LineageTable> main_lineage_;
  std::atomic<std::uint64_t> main_lineage_seen_{0};
  std::atomic<std::uint32_t> main_lineage_seq_{1};

  std::uint64_t next_trigger_id_ = 1;
};

}  // namespace remo
