// Engine configuration.
#pragma once

#include <atomic>
#include <cstddef>

#include "common/types.hpp"
#include "obs/obs_config.hpp"
#include "runtime/partitioner.hpp"
#include "storage/degaware_store.hpp"

namespace remo {

enum class TerminationMode {
  kCounting,  ///< exact in-flight counting (default; single-host)
  kSafra,     ///< Safra's token ring — message-only, deployable over a network
};

struct EngineConfig {
  /// Number of shared-nothing ranks (the paper's MPI processes).
  RankId num_ranks = 2;

  /// Undirected graphs materialise a Reverse-Add at the far owner for every
  /// Add (Section III-A); directed graphs store each arc once at its source.
  bool undirected = true;

  /// Send-buffer batch size (visitors aggregate per destination rank).
  std::size_t batch_size = 128;

  /// How many stream events a rank pulls per loop iteration once its
  /// mailbox is drained. Small values favour algorithm-event latency;
  /// large values favour raw ingest (the prioritisation trade-off the
  /// paper notes at the end of Section V-C).
  std::size_t stream_chunk = 64;

  TerminationMode termination = TerminationMode::kCounting;

  /// Skip update_all_nbrs sends that the per-edge neighbour-state cache
  /// proves redundant (VertexProgram::update_is_redundant). Sound for
  /// monotone programs; off only for the abl_cache_filter ablation.
  bool nbr_cache_filter = true;

  /// Vertex-to-rank placement (Section III-C; kHash is the paper's).
  PartitionMode partition = PartitionMode::kHash;

  /// Chaos testing: when nonzero, every rank sleeps a random 0..N µs
  /// before each loop iteration (seeded deterministically per rank). Used
  /// by the test suite to widen the asynchronous interleaving space;
  /// never enable in production configurations.
  std::uint32_t chaos_delay_us = 0;

  /// Dynamic graph store tuning.
  StoreConfig store{};

  /// Observability: latency histograms, phase timers, chrome-trace capture
  /// (docs/OBSERVABILITY.md).
  obs::ObsConfig obs{};

  /// Test-only fault injection. `park_rank_while` points at a flag owned by
  /// the test; while it is true, rank `park_rank` spins without processing
  /// its mailbox — simulating a wedged rank so the stall watchdog can be
  /// exercised deterministically. Never set in production configurations.
  struct DebugHooks {
    const std::atomic<bool>* park_rank_while = nullptr;
    RankId park_rank = 0;
  };
  DebugHooks debug{};
};

}  // namespace remo
