// Engine configuration.
#pragma once

#include <atomic>
#include <cstddef>

#include "common/types.hpp"
#include "obs/obs_config.hpp"
#include "runtime/memory.hpp"
#include "runtime/partitioner.hpp"
#include "runtime/topology.hpp"
#include "storage/degaware_store.hpp"

namespace remo {

enum class TerminationMode {
  kCounting,  ///< exact in-flight counting (default; single-host)
  kSafra,     ///< Safra's token ring — message-only, deployable over a network
};

struct EngineConfig {
  /// Number of shared-nothing ranks (the paper's MPI processes).
  RankId num_ranks = 2;

  /// Undirected graphs materialise a Reverse-Add at the far owner for every
  /// Add (Section III-A); directed graphs store each arc once at its source.
  bool undirected = true;

  /// Send-buffer batch size (visitors aggregate per destination rank).
  std::size_t batch_size = 128;

  /// Merge same-(program, target, sender, epoch) Update visitors in the
  /// send buffers and in drained batches via VertexProgram::combine
  /// (monotone programs that opt in with can_combine(); DESIGN.md §6).
  /// Off: every visitor travels and is dispatched verbatim — the A/B arm
  /// for determinism tests and `--no-coalesce`.
  bool coalesce = true;

  /// Per-producer SPSC ring capacity of each mailbox, in visitors (rounded
  /// up to a power of two). Ring-full pushes spill to a mutexed overflow
  /// segment and show up in the ring_overflows counter. Sized so that a
  /// producer burning a full scheduler timeslice while the consumer is
  /// descheduled does not spill: at 1024 slots roughly half of all fig6
  /// messages took the mutex path, erasing the lock-free win. Memory is
  /// ranks^2 rings x capacity x sizeof(Visitor) — ~40 MiB at 8 ranks —
  /// which is the intended trade for a thread-backed single-node deploy;
  /// dial down for large rank counts.
  std::size_t mailbox_ring_capacity = 16384;

  /// How many stream events a rank pulls per loop iteration once its
  /// mailbox is drained. Small values favour algorithm-event latency;
  /// large values favour raw ingest (the prioritisation trade-off the
  /// paper notes at the end of Section V-C).
  std::size_t stream_chunk = 64;

  TerminationMode termination = TerminationMode::kCounting;

  /// Skip update_all_nbrs sends that the per-edge neighbour-state cache
  /// proves redundant (VertexProgram::update_is_redundant). Sound for
  /// monotone programs; off only for the abl_cache_filter ablation.
  bool nbr_cache_filter = true;

  /// Vertex-to-rank placement (Section III-C; kHash is the paper's).
  PartitionMode partition = PartitionMode::kHash;

  /// Chaos testing: when nonzero, every rank sleeps a random 0..N µs
  /// before each loop iteration (seeded deterministically per rank). Used
  /// by the test suite to widen the asynchronous interleaving space;
  /// never enable in production configurations.
  std::uint32_t chaos_delay_us = 0;

  /// Dynamic graph store tuning.
  StoreConfig store{};

  /// Rank-to-core placement (DESIGN.md "Memory & locality"). kNone (the
  /// default) makes no affinity calls; the other modes pin each rank
  /// thread per the sysfs-discovered topology — kNumaSpread keeps ranks
  /// near the node their arena is bound to.
  PinningMode pinning = PinningMode::kNone;

  /// Memory-plane knobs: per-rank huge-page arenas for storage shards and
  /// inbound mailbox rings, NUMA binding. All off by default.
  MemoryConfig memory{};

  /// Observability: latency histograms, phase timers, chrome-trace capture
  /// (docs/OBSERVABILITY.md).
  obs::ObsConfig obs{};

  /// Test-only fault injection and schedule control. Never set any of these
  /// in production configurations.
  ///
  /// `park_rank_while` points at a flag owned by the test; while it is
  /// true, rank `park_rank` spins without processing its mailbox —
  /// simulating a wedged rank so the stall watchdog can be exercised
  /// deterministically.
  ///
  /// `schedule_seed` is the fuzzer's deterministic-schedule hook: when
  /// nonzero, each rank derives its loop-pacing RNG (the chaos-delay
  /// source) from (schedule_seed, rank) instead of the fixed built-in
  /// seed. Together with `chaos_delay_us` this makes the *distribution* of
  /// thread interleavings a pure function of the seed, so a fuzz case
  /// explores the same schedule neighbourhood on every replay — and with
  /// num_ranks == 1 the execution is exactly deterministic.
  ///
  /// `drop_nth_update` is message-loss injection for the fuzzer's
  /// self-test: when nonzero, each rank silently discards every Nth
  /// kUpdate visitor it would send (before any accounting, so quiescence
  /// is still reached — the converged state is simply wrong). This is the
  /// synthetic bug the differential oracle and the repro shrinker are
  /// validated against.
  struct DebugHooks {
    const std::atomic<bool>* park_rank_while = nullptr;
    RankId park_rank = 0;
    std::uint64_t schedule_seed = 0;
    std::uint32_t drop_nth_update = 0;
  };
  DebugHooks debug{};
};

}  // namespace remo
