// Engine internals shared between engine.cpp and engine_loop.cpp.
// Not part of the public API.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include <memory>

#include "common/types.hpp"
#include "core/query.hpp"
#include "core/snapshot.hpp"
#include "gen/stream.hpp"
#include "obs/gauges.hpp"
#include "obs/histogram.hpp"
#include "obs/lineage.hpp"
#include "obs/phase_timer.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "runtime/comm.hpp"
#include "runtime/metrics.hpp"
#include "runtime/partitioner.hpp"
#include "runtime/safra.hpp"
#include "storage/degaware_store.hpp"
#include "storage/robin_hood_map.hpp"

namespace remo {

class Engine;

namespace detail {

/// A trigger registration travelling from the caller's thread to the
/// owning rank's thread.
struct PendingTrigger {
  ProgramId prog = 0;
  bool is_global = false;
  VertexTrigger vertex_trigger;
  GlobalTrigger global_trigger;
};

/// Per-(program, rank) algorithm state.
struct ProgramRank {
  RobinHoodMap<VertexId, StateWord> cur;   ///< live state (S_new)
  RobinHoodMap<VertexId, StateWord> prev;  ///< S_prev during versioned collection
  RobinHoodMap<VertexId, StateWord> aux;   ///< secondary word (parents, ...)
  RobinHoodMap<VertexId, std::vector<VertexTrigger>> vertex_triggers;
  std::size_t vertex_trigger_count = 0;
  std::vector<GlobalTrigger> global_triggers;
  std::vector<VertexId> dirty;        ///< decremental repair anchors
  std::vector<VertexId> invalidated;  ///< phase-A casualties awaiting probes
};

/// Everything a rank thread owns.
struct RankRuntime {
  Engine* engine = nullptr;
  Comm* comm = nullptr;
  SafraRing* safra = nullptr;
  const Partitioner* part = nullptr;
  RankId rank = 0;

  DegAwareStore store;
  std::vector<ProgramRank> progs;
  LiveRankMetrics metrics;

  // Observability (src/obs). Counters/histogram/timers are single-writer
  // (this rank's thread) with relaxed-atomic cells so metrics_snapshot()
  // and sample_gauges() can read concurrently; the trace ring must only be
  // exported at quiescence. The cached config bools keep the hot path at
  // one branch when a facility is off.
  obs::RankGauges gauges;
  obs::LatencyHistogram update_latency;
  obs::PhaseTimers phases;
  std::unique_ptr<obs::TraceBuffer> trace;  // null unless tracing enabled
  // Hardware-counter profiler (obs/prof.hpp); null unless profiling is on.
  // Hooks the same phase boundaries as `phases`, single-writer like it.
  std::unique_ptr<obs::RankProfiler> prof;
  bool obs_latency = false;
  bool obs_phases = false;
  std::uint64_t obs_sample_mask = 0;  // record every (mask+1)-th topo event
  std::uint64_t obs_topo_seen = 0;
  std::uint64_t obs_control_ns = 0;  // scratch: snapshot-drain time in batch

  // Causal lineage (obs/lineage.hpp). The table is single-writer (this
  // rank); `cur_cause`/`cur_hop` are the processing context set around
  // process_visitor so that send() can stamp derived visitors without any
  // per-call-site changes. Both are plain fields — only this rank's thread
  // touches them.
  std::unique_ptr<obs::LineageTable> lineage;  // null unless lineage enabled
  std::uint64_t lineage_sample_mask = 0;  // sample every (mask+1)-th topo event
  std::uint64_t lineage_topo_seen = 0;
  std::uint32_t lineage_next_seq = 1;  // 24-bit, wraps past 0
  obs::CauseId cur_cause = 0;
  std::uint16_t cur_hop = 0;

  // Ingestion stream assignment. A rank may own several concurrent streams
  // (stream i of a StreamSet goes to rank i mod P); it pulls them
  // round-robin, preserving each stream's internal FIFO order. `streams`
  // is written by main under the op mutex while `stream_remaining` is zero
  // (the rank never touches the vector then); the atomic publishes pull
  // progress to the main thread.
  struct StreamCursor {
    const EdgeStream* stream = nullptr;
    std::size_t pos = 0;
  };
  std::vector<StreamCursor> streams;
  std::size_t next_stream = 0;
  std::atomic<std::uint64_t> stream_remaining{0};

  // Fault injection (EngineConfig::DebugHooks::drop_nth_update): when
  // nonzero, every Nth outbound kUpdate from this rank is silently
  // discarded before any accounting sees it — a synthetic lost-message
  // bug for the differential fuzzer's self-test. Single-writer fields.
  std::uint32_t drop_nth_update = 0;
  std::uint64_t update_drop_seq = 0;

  // Versioned-collection handshake: last engine epoch this rank observed
  // at a loop-iteration boundary.
  std::atomic<std::uint16_t> epoch_seen{0};

  // Safra token currently held (if any).
  bool holds_token = false;
  bool token_parked = false;  // restart throttling: forward after one park
  SafraRing::Token token{};

  // Cross-thread trigger registration.
  std::mutex reg_mutex;
  std::vector<PendingTrigger> pending_triggers;
  std::atomic<bool> has_pending{false};

  // Harvest output slot (written by rank, read by main after the ack).
  std::mutex harvest_mutex;
  std::vector<Snapshot::Entry> harvest_out;

  // Receiver-side coalescing scratch (the drained-batch merge pass in
  // rank_main): open-addressing slots invalidated wholesale by bumping
  // the stamp. This rank's thread only.
  struct MergeSlot {
    std::uint32_t stamp = 0;
    std::uint32_t pos = 0;
  };
  std::vector<MergeSlot> merge_slots;
  std::uint32_t merge_stamp = 0;

  explicit RankRuntime(StoreConfig store_cfg, Arena* arena = nullptr)
      : store(store_cfg, arena) {}

  /// Route a visitor to the owner of its target vertex. Taken by value:
  /// when lineage tracing is on, visitors emitted while a caused visitor
  /// is being processed inherit its cause and hop+1 here, so every
  /// emission path (program updates, reverse-adds, invalidations, probes)
  /// is covered without touching the call sites.
  void send(Visitor v) {
    if (drop_nth_update != 0 && v.kind == VisitKind::kUpdate &&
        ++update_drop_seq % drop_nth_update == 0) {
      // Injected message loss: the visitor vanishes before it is counted
      // anywhere, exactly like a send that never happened. Quiescence is
      // unaffected; convergence is silently broken — which is the point.
      return;
    }
    const RankId to = part->owner(v.target);
    if (lineage && v.kind != VisitKind::kControl && v.cause == 0 &&
        cur_cause != 0) {
      v.cause = cur_cause;
      // Saturate: a >65k-hop cascade keeps reporting the max depth
      // rather than wrapping back to the root.
      v.hop = cur_hop == 0xFFFF ? cur_hop
                                : static_cast<std::uint16_t>(cur_hop + 1);
    }
    if (comm->send(rank, to, v)) {
      // Coalesced into an already-buffered visitor: no new message exists,
      // so neither the in-flight counters, Safra's balance, messages_sent,
      // nor the lineage spawn log may see it (the surviving visitor's
      // record covers the cascade edge).
      ++metrics.coalesced_sends;
      return;
    }
    ++metrics.messages_sent;
    if (to != rank)
      ++metrics.remote_messages;
    else
      ++metrics.local_messages;
    if (lineage && v.kind != VisitKind::kControl && v.cause != 0)
      lineage->record_spawn(v.cause, v.hop, to != rank);
    if (v.kind != VisitKind::kControl) safra->on_basic_send(rank);
  }

  /// Send a control visitor to a specific rank (tokens address ranks, not
  /// vertices) and flush so it cannot linger in a send buffer.
  void send_control(RankId to, const Visitor& v) {
    ++metrics.messages_sent;
    ++metrics.control_messages;
    comm->send(rank, to, v);
    comm->flush(rank);
  }

  StateWord cur_value(ProgramId p, VertexId v, StateWord identity) const {
    const StateWord* c = progs[p].cur.find(v);
    return c ? *c : identity;
  }
};

/// Evaluate and fire "when" triggers for a state transition.
void fire_triggers(ProgramRank& pr, VertexId v, StateWord old_val, StateWord new_val);

}  // namespace detail
}  // namespace remo
