// The rank event loop: mailbox draining, stream pulling, visitor dispatch,
// versioned-view handling, control messages, and Safra token circulation.
#include <algorithm>
#include <bit>
#include <chrono>
#include <thread>

#include "common/assert.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/strfmt.hpp"
#include "core/engine.hpp"
#include "core/engine_detail.hpp"

namespace remo {
namespace {

constexpr auto kParkInterval = std::chrono::microseconds(200);

// Passive-iteration pacing. A rank that finds nothing to do yields its
// timeslice a few times before parking — on an oversubscribed host that
// hands the CPU straight to whichever rank *does* have work, and a push
// that lands meanwhile is picked up without the producer paying a futex
// wake (the consumer never advertised `parked_`). Only after
// kYieldIterations empty passes does the rank park, and then with a
// timeout that doubles per further empty pass up to
// kParkInterval << kMaxParkShift. Every state change that matters is
// wakeup-driven (push -> notify, token -> interrupt, ingest/epoch ->
// interrupt_all), so the timed park is purely a liveness backstop and
// lengthening it cannot lose events (DESIGN.md §6).
constexpr std::uint32_t kYieldIterations = 4;
constexpr std::uint32_t kMaxParkShift = 4;  // 200us << 4 = 3.2ms cap

}  // namespace

// ---------------------------------------------------------------------------
// Visitor dispatch with versioned views
// ---------------------------------------------------------------------------

// Invoke a program callback on the right state view(s) (Section III-D):
//  * events of the current epoch run on the live state, emitting visitors
//    tagged with the current epoch;
//  * events of the *previous* epoch at a vertex whose state has split run
//    once on S_prev (emitting old-epoch visitors — "subsequent events
//    inherit the same version") and once on the live state (emitting
//    current-epoch visitors, so new-epoch dissemination stays complete);
//  * old-epoch events at unsplit vertices run once on the shared state,
//    inheriting the old tag.
template <typename Invoke>
void Engine::dispatch_views(detail::RankRuntime& rt, const Visitor& v, ProgramId p,
                            TwoTierAdjacency* adj, Invoke&& invoke) {
  ++rt.metrics.algorithm_events;
  const std::uint16_t cur_epoch = epoch_.load(std::memory_order_acquire);
  const bool old_event =
      versioned_active_.load(std::memory_order_acquire) && v.epoch != cur_epoch;
  if (old_event && rt.progs[p].prev.contains(v.target)) {
    VertexContext prev_ctx(rt, p, v.target, adj, v.epoch, /*prev_view=*/true);
    invoke(prev_ctx);
    VertexContext cur_ctx(rt, p, v.target, adj, cur_epoch, /*prev_view=*/false);
    invoke(cur_ctx);
  } else {
    VertexContext ctx(rt, p, v.target, adj, v.epoch, /*prev_view=*/false);
    invoke(ctx);
  }
}

// Emit the per-program half of a Reverse-Add/Delete: the visitor carries
// this vertex's state (vis_val) to the far endpoint. During a versioned
// collection with a split, both views' values travel under their tags.
void Engine::emit_program_reverse(detail::RankRuntime& rt, const Visitor& v,
                                  ProgramId p, VisitKind kind) {
  detail::ProgramRank& pr = rt.progs[p];
  const StateWord identity = programs_[p]->identity();
  const StateWord cur_val = rt.cur_value(p, v.target, identity);
  const std::uint16_t cur_epoch = epoch_.load(std::memory_order_acquire);
  const bool old_event =
      versioned_active_.load(std::memory_order_acquire) && v.epoch != cur_epoch;
  if (old_event && pr.prev.contains(v.target)) {
    rt.send(Visitor{v.other, v.target, *pr.prev.find(v.target), v.weight, kind, p,
                    v.epoch});
    rt.send(Visitor{v.other, v.target, cur_val, v.weight, kind, p, cur_epoch});
  } else {
    rt.send(Visitor{v.other, v.target, cur_val, v.weight, kind, p, v.epoch});
  }
}

// ---------------------------------------------------------------------------
// Topology events
// ---------------------------------------------------------------------------

void Engine::process_topology_add(detail::RankRuntime& rt, const Visitor& v) {
  ++rt.metrics.topology_events;
  const auto res = rt.store.insert_edge(v.target, v.other, v.weight);
  if (res.new_edge) ++rt.metrics.edges_stored;
  // A re-add of a live edge with a different weight is a weight *change*
  // (last-weight-wins store): programs see on_weight_change, never a
  // delete+add pair that could race the repair wave, and the far side is
  // told via a first-class kWeightChange visitor below.
  const bool weight_changed = !res.new_edge && res.old_weight != v.weight;
  TwoTierAdjacency* const adj = res.adj;  // insert already probed the record
  // Emit the reverse-topology half BEFORE running program callbacks: the
  // callbacks may send updates to the new/changed neighbour, and those
  // updates must queue behind the visitor that materialises the reverse
  // edge on the same FIFO channel — otherwise they arrive at a vertex with
  // no receiver-side edge and the stale-update guard (correctly) drops
  // them. Topology lands on both sides first, then the algorithm reacts.
  if (cfg_.undirected && v.target != v.other) {
    if (weight_changed) {
      // The reverse edge already exists at the far owner; ship the weight
      // mutation as its own visitor (old weight in `value`). One per
      // program so each gets its callback; a bare topology-tagged one when
      // none are attached keeps the two stores consistent.
      if (rt.progs.empty()) {
        rt.send(Visitor{v.other, v.target, res.old_weight, v.weight,
                        VisitKind::kWeightChange, Visitor::kTopologyAlgo,
                        v.epoch});
      } else {
        for (ProgramId p = 0; p < rt.progs.size(); ++p)
          rt.send(Visitor{v.other, v.target, res.old_weight, v.weight,
                          VisitKind::kWeightChange, p, v.epoch});
      }
    } else if (rt.progs.empty()) {
      // Reverse-Add carries the topology change AND this vertex's program
      // state in one visitor (Algorithm 3's REVERSE_ADD does both): the
      // program-tagged handler inserts the reverse edge idempotently before
      // running its callback, so no separate topology visitor is needed
      // unless no program is attached.
      rt.send(Visitor{v.other, v.target, 0, v.weight, VisitKind::kReverseAdd,
                      Visitor::kTopologyAlgo, v.epoch});
    } else {
      for (ProgramId p = 0; p < rt.progs.size(); ++p)
        emit_program_reverse(rt, v, p, VisitKind::kReverseAdd);
    }
  }
  // Handle-invalidation audit (debug): `adj` is only usable across the
  // program loop below because VertexContext exposes no store-mutation API
  // — no callback can grow the vertex map and move the record out from
  // under us. The generation check turns any future violation of that
  // contract into a loud failure instead of a heap-corrupting dangling
  // pointer (see DegAwareStore::InsertResult).
  [[maybe_unused]] const std::uint64_t store_gen = rt.store.generation();
  for (ProgramId p = 0; p < rt.progs.size(); ++p)
    dispatch_views(rt, v, p, adj, [&](VertexContext& ctx) {
      if (weight_changed)
        programs_[p]->on_weight_change(ctx, v.other, res.old_weight, v.weight);
      else
        programs_[p]->on_add(ctx, v.other, v.weight);
    });
  REMO_ASSERT(rt.store.generation() == store_gen);
}

void Engine::process_topology_delete(detail::RankRuntime& rt, const Visitor& v) {
  ++rt.metrics.topology_events;
  // Delete events name only the endpoints; the weight a program must
  // retract (PageRank mass revocation) is whatever the store actually
  // held — under weight mutations that can differ from the event's stamp —
  // and memo-delta programs also need the erased edge's memo slot, which
  // the erase would otherwise destroy before the callback could read it.
  EdgeProp erased{};
  erased.weight = v.weight;
  const bool removed = rt.store.erase_edge(v.target, v.other, &erased);
  if (removed) --rt.metrics.edges_stored;
  const Weight erased_w = erased.weight;
  Visitor dv = v;
  dv.weight = erased_w;
  TwoTierAdjacency* adj = rt.store.adjacency(v.target);
  for (ProgramId p = 0; p < rt.progs.size(); ++p)
    dispatch_views(rt, dv, p, adj, [&](VertexContext& ctx) {
      ctx.deleted_nbr_memo_ = erased.cache_for(p);
      programs_[p]->on_delete(ctx, v.other, erased_w);
    });
  if (cfg_.undirected && removed && v.target != v.other) {
    if (rt.progs.empty()) {
      rt.send(Visitor{v.other, v.target, 0, erased_w, VisitKind::kReverseDelete,
                      Visitor::kTopologyAlgo, v.epoch});
    } else {
      for (ProgramId p = 0; p < rt.progs.size(); ++p)
        emit_program_reverse(rt, dv, p, VisitKind::kReverseDelete);
    }
  }
}

// ---------------------------------------------------------------------------
// Main dispatch
// ---------------------------------------------------------------------------

// Lineage wrapper: processing a caused visitor opens a cause context (so
// rt.send stamps every derived emission), records the application in the
// rank's lineage table, and — when tracing — emits a "cause" slice carrying
// a chrome-trace flow record so the cross-rank cascade is visually linked.
void Engine::process_visitor(detail::RankRuntime& rt, const Visitor& v) {
  if (rt.lineage && v.cause != 0) {
    rt.cur_cause = v.cause;
    rt.cur_hop = v.hop;
    const std::uint64_t t0 = obs_now();
    dispatch_visitor(rt, v);
    const std::uint64_t t1 = obs_now();
    rt.cur_cause = 0;
    rt.cur_hop = 0;
    rt.lineage->record_apply(v.cause, v.hop, v.target, t1);
    if (rt.trace)
      rt.trace->emit_flow(
          "cause", t0, t1 - t0, v.cause,
          v.hop == 0 ? obs::FlowPhase::kStart : obs::FlowPhase::kStep, "cause",
          v.cause);
    return;
  }
  dispatch_visitor(rt, v);
}

void Engine::dispatch_visitor(detail::RankRuntime& rt, const Visitor& v) {
  switch (v.kind) {
    case VisitKind::kAdd:
      process_topology_add(rt, v);
      break;

    case VisitKind::kDelete:
      process_topology_delete(rt, v);
      break;

    case VisitKind::kReverseAdd: {
      // Fused topology + program visitor: materialise the reverse edge
      // first (idempotent — with several programs each one's Reverse-Add
      // re-asserts it), then run the program callback.
      const auto res = rt.store.insert_edge(v.target, v.other, v.weight);
      if (res.new_edge) ++rt.metrics.edges_stored;
      if (v.algo != Visitor::kTopologyAlgo) {
        // Deposit the sender's state into the edge cache (Algorithm 3:
        // this.nbrs.set(vis_ID, vis_val)) — straight into the slot the
        // insert just returned, no re-probe. Same handle audit as
        // process_topology_add: the callback must not mutate the store.
        [[maybe_unused]] const std::uint64_t store_gen = rt.store.generation();
        // The cache bounds the sender's live state only under a monotone
        // lattice; non-monotone programs never consult it, and depositing
        // would evict a monotone co-program's slot for nothing.
        if (programs_[v.algo]->monotone()) res.prop->set_cache(v.algo, v.value);
        dispatch_views(rt, v, v.algo, res.adj, [&](VertexContext& ctx) {
          programs_[v.algo]->on_reverse_add(ctx, v.other, v.value, v.weight);
        });
        REMO_ASSERT(rt.store.generation() == store_gen);
      }
      break;
    }

    case VisitKind::kWeightChange: {
      // Far side of an in-place weight mutation: assert the new weight on
      // the reverse edge (idempotent across programs), then let the
      // program react. `value` carries the old weight from the canonical
      // owner, so every program sees the same old -> new transition
      // regardless of arrival order.
      const auto res = rt.store.insert_edge(v.target, v.other, v.weight);
      if (res.new_edge) ++rt.metrics.edges_stored;  // defensive; see comment
      if (v.algo != Visitor::kTopologyAlgo) {
        const Weight old_w = static_cast<Weight>(v.value);
        dispatch_views(rt, v, v.algo, res.adj, [&](VertexContext& ctx) {
          programs_[v.algo]->on_weight_change(ctx, v.other, old_w, v.weight);
        });
      }
      break;
    }

    case VisitKind::kReverseDelete: {
      EdgeProp erased{};
      erased.weight = v.weight;
      if (rt.store.erase_edge(v.target, v.other, &erased))
        --rt.metrics.edges_stored;
      if (v.algo != Visitor::kTopologyAlgo) {
        TwoTierAdjacency* adj = rt.store.adjacency(v.target);
        dispatch_views(rt, v, v.algo, adj, [&](VertexContext& ctx) {
          ctx.deleted_nbr_memo_ = erased.cache_for(v.algo);
          programs_[v.algo]->on_reverse_delete(ctx, v.other, erased.weight);
        });
      }
      break;
    }

    case VisitKind::kUpdate: {
      TwoTierAdjacency* adj = rt.store.adjacency(v.target);
      EdgeProp* prop = adj ? adj->find(v.other) : nullptr;
      if (!prop && cfg_.undirected && v.target != v.other) {
        // Stale update across a deleted edge. In undirected mode updates
        // are only ever sent to current neighbours, and the complementary
        // insert always reaches the receiver before any update can (the
        // sender learns of the edge through that same visitor chain) — so a
        // missing edge here means a concurrent delete won the race while
        // this update was in flight. (Directed mode stores no receiver-side
        // arc at all, so absence proves nothing there and the guard is
        // skipped.)
        // Applying it would deposit a state the repair wave can never see
        // (the anchor edge is already gone on both sides); dropping it is
        // safe because a future re-add transfers the sender's then-current
        // state in its Reverse-Add. Found by `remo fuzz` (docs/TESTING.md,
        // "The bug hunt").
        break;
      }
      if (prop && programs_[v.algo]->monotone()) prop->set_cache(v.algo, v.value);
      // Relax with the RECEIVER's stored weight, not the one the sender read
      // at send time. A message sent after a weight assertion queues behind
      // the visitor asserting that weight here (same per-producer FIFO), so
      // the local store is always at least as fresh as the carried weight —
      // whereas a pre-change offer can land *after* on_weight_change ran and
      // would re-derive stale state no repair anchor could ever see. Found
      // by `remo fuzz --algo wsssp` (tests/integration/repros).
      const Weight w_now = prop ? prop->weight : v.weight;
      dispatch_views(rt, v, v.algo, adj, [&](VertexContext& ctx) {
        programs_[v.algo]->on_update(ctx, v.other, v.value, w_now);
      });
      break;
    }

    case VisitKind::kInit: {
      TwoTierAdjacency* adj = rt.store.adjacency(v.target);
      dispatch_views(rt, v, v.algo, adj,
                     [&](VertexContext& ctx) { programs_[v.algo]->init(ctx); });
      break;
    }

    case VisitKind::kInvalidate: {
      TwoTierAdjacency* adj = rt.store.adjacency(v.target);
      // The sender's state just worsened: whatever it previously deposited
      // in our edge cache no longer bounds its live state. Reset it so the
      // redundancy filter cannot suppress the reconvergence updates.
      if (adj)
        if (EdgeProp* prop = adj->find(v.other)) prop->clear_cache();
      dispatch_views(rt, v, v.algo, adj, [&](VertexContext& ctx) {
        programs_[v.algo]->on_invalidate(ctx, v.other);
      });
      break;
    }

    case VisitKind::kProbe: {
      TwoTierAdjacency* adj = rt.store.adjacency(v.target);
      dispatch_views(rt, v, v.algo, adj, [&](VertexContext& ctx) {
        programs_[v.algo]->on_probe(ctx, v.other);
      });
      break;
    }

    case VisitKind::kControl:
      REMO_CHECK_MSG(false, "control visitors are handled before dispatch");
      break;
  }
}

// ---------------------------------------------------------------------------
// Control messages
// ---------------------------------------------------------------------------

void Engine::do_harvest(detail::RankRuntime& rt, ProgramId p) {
  const bool obs_on = rt.obs_phases || rt.trace;
  const std::uint64_t t0 = obs_on ? obs_now() : 0;
  const StateWord identity = programs_[p]->identity();
  detail::ProgramRank& pr = rt.progs[p];
  {
    std::lock_guard guard(rt.harvest_mutex);
    rt.harvest_out.clear();
    pr.cur.for_each([&](const VertexId& v, StateWord& cur_val) {
      const StateWord* frozen = pr.prev.find(v);
      const StateWord val = frozen ? *frozen : cur_val;
      if (val != identity) rt.harvest_out.emplace_back(v, val);
    });
  }
  // Retire every program's S_prev: the epoch is over for the whole engine,
  // and stale splits would poison the next collection.
  for (auto& each : rt.progs) each.prev.clear();
  if (obs_on) {
    const std::uint64_t dt = obs_now() - t0;
    rt.obs_control_ns += dt;
    if (rt.trace) rt.trace->emit("harvest", t0, dt, "vertices", rt.harvest_out.size());
  }
  control_acks_.fetch_add(1, std::memory_order_acq_rel);
}

void Engine::do_repair_anchors(detail::RankRuntime& rt, ProgramId p) {
  const bool obs_on = rt.obs_phases || rt.trace;
  const std::uint64_t t0 = obs_on ? obs_now() : 0;
  detail::ProgramRank& pr = rt.progs[p];
  std::vector<VertexId> anchors;
  anchors.swap(pr.dirty);
  std::sort(anchors.begin(), anchors.end());
  anchors.erase(std::unique(anchors.begin(), anchors.end()), anchors.end());
  const std::uint16_t epoch = epoch_.load(std::memory_order_acquire);
  for (const VertexId v : anchors) {
    VertexContext ctx(rt, p, v, rt.store.adjacency(v), epoch, /*prev_view=*/false);
    programs_[p]->on_repair_anchor(ctx);
  }
  comm_.flush(rt.rank);
  if (obs_on) {
    const std::uint64_t dt = obs_now() - t0;
    rt.obs_control_ns += dt;
    if (rt.trace) rt.trace->emit("repair_anchors", t0, dt, "anchors", anchors.size());
  }
  control_acks_.fetch_add(1, std::memory_order_acq_rel);
}

void Engine::do_repair_probes(detail::RankRuntime& rt, ProgramId p) {
  const bool obs_on = rt.obs_phases || rt.trace;
  const std::uint64_t t0 = obs_on ? obs_now() : 0;
  detail::ProgramRank& pr = rt.progs[p];
  std::vector<VertexId> casualties;
  casualties.swap(pr.invalidated);
  std::sort(casualties.begin(), casualties.end());
  casualties.erase(std::unique(casualties.begin(), casualties.end()),
                   casualties.end());
  const std::uint16_t epoch = epoch_.load(std::memory_order_acquire);
  for (const VertexId v : casualties) {
    VertexContext ctx(rt, p, v, rt.store.adjacency(v), epoch, /*prev_view=*/false);
    ctx.send_probe_all_nbrs();
  }
  comm_.flush(rt.rank);
  if (obs_on) {
    const std::uint64_t dt = obs_now() - t0;
    rt.obs_control_ns += dt;
    if (rt.trace)
      rt.trace->emit("repair_probes", t0, dt, "casualties", casualties.size());
  }
  control_acks_.fetch_add(1, std::memory_order_acq_rel);
}

void Engine::handle_control(detail::RankRuntime& rt, const Visitor& v) {
  // Control traffic is counted at the *send* site (send_control for
  // rank-originated tokens, broadcast_control for the main thread), never
  // on receipt — counting both sides would double-book every message and
  // break `local + remote + control == messages_sent`.
  switch (static_cast<ControlOp>(v.other)) {
    case ControlOp::kSafraToken:
      // v.target carries the probe generation; stale tokens die here.
      if (v.target == safra_.generation()) {
        rt.holds_token = true;
        rt.token_parked = false;
        rt.token = SafraRing::Token{std::bit_cast<std::int64_t>(v.value),
                                    v.weight != 0};
      }
      break;
    case ControlOp::kHarvest:
      do_harvest(rt, v.algo);
      break;
    case ControlOp::kRepairAnchors:
      do_repair_anchors(rt, v.algo);
      break;
    case ControlOp::kRepairProbes:
      do_repair_probes(rt, v.algo);
      break;
  }
}

// ---------------------------------------------------------------------------
// Safra circulation (only active in TerminationMode::kSafra)
// ---------------------------------------------------------------------------

void Engine::handle_safra_idle(detail::RankRuntime& rt) {
  if (safra_.terminated()) return;
  const RankId r = rt.rank;

  auto send_token = [&](RankId to, const SafraRing::Token& tok) {
    Visitor v{};
    v.kind = VisitKind::kControl;
    v.other = static_cast<std::uint64_t>(ControlOp::kSafraToken);
    v.value = std::bit_cast<StateWord>(tok.count);
    v.weight = tok.black ? 1 : 0;
    v.target = safra_.generation();
    rt.send_control(to, v);
    comm_.mailbox(to).interrupt();
  };

  if (rt.holds_token) {
    if (rt.token_parked) {
      // A restarted probe waits one park interval before re-circulating so
      // an idle-but-unterminated system doesn't spin tokens continuously.
      rt.token_parked = false;
      rt.holds_token = false;
      send_token(safra_.next(r), rt.token);
      return;
    }
    switch (safra_.on_token(r, rt.token)) {
      case SafraRing::TokenAction::kForward:
        rt.holds_token = false;
        send_token(safra_.next(r), rt.token);
        break;
      case SafraRing::TokenAction::kTerminated:
        rt.holds_token = false;
        break;
      case SafraRing::TokenAction::kRestart:
        rt.token_parked = true;  // forward after the next park
        break;
    }
    return;
  }

  if (r == 0 && safra_.start_probe(0)) send_token(safra_.next(0), SafraRing::Token{});
}

// ---------------------------------------------------------------------------
// Trigger absorption
// ---------------------------------------------------------------------------

void Engine::absorb_pending_triggers(detail::RankRuntime& rt) {
  if (!rt.has_pending.load(std::memory_order_acquire)) return;
  std::vector<detail::PendingTrigger> pending;
  {
    std::lock_guard guard(rt.reg_mutex);
    pending.swap(rt.pending_triggers);
    rt.has_pending.store(false, std::memory_order_release);
  }
  for (auto& pt : pending) {
    detail::ProgramRank& pr = rt.progs[pt.prog];
    if (pt.is_global) {
      pr.global_triggers.push_back(std::move(pt.global_trigger));
      continue;
    }
    // Vertex trigger: fire promptly when already satisfied.
    const StateWord val =
        rt.cur_value(pt.prog, pt.vertex_trigger.vertex, programs_[pt.prog]->identity());
    if (pt.vertex_trigger.predicate(val)) {
      pt.vertex_trigger.action(pt.vertex_trigger.vertex, val);
      continue;
    }
    pr.vertex_triggers.get_or_insert(pt.vertex_trigger.vertex)
        .push_back(std::move(pt.vertex_trigger));
    ++pr.vertex_trigger_count;
  }
}

// ---------------------------------------------------------------------------
// Rank main loop
// ---------------------------------------------------------------------------

void Engine::rank_main(RankId r) {
  detail::RankRuntime& rt = *ranks_[r];
  // Apply the pin plan before any allocation or counter attach: first-touch
  // placement of thread-local state should happen on the planned core, and
  // perf counter fds inherit this thread's CPU affinity.
  if (cfg_.pinning != PinningMode::kNone)
    pin_current_thread(memory_plane_.plan().slots[r].cpu);
  std::vector<Visitor> batch;
  std::uint32_t passive_streak = 0;  // consecutive no-work iterations
  // Loop-pacing RNG (chaos delays). By default a fixed per-rank seed; the
  // deterministic-schedule debug hook re-derives it from the fuzz seed so
  // every replay of a fuzz case explores the same interleaving
  // neighbourhood (engine_config.hpp, DebugHooks::schedule_seed).
  Xoshiro256 chaos_rng(cfg_.debug.schedule_seed != 0
                           ? hash_combine(cfg_.debug.schedule_seed, r + 1)
                           : 0xC4A05ULL * (r + 1));

  // Observability switches, hoisted so the hot path pays one branch each.
  obs::TraceBuffer* const trace = rt.trace.get();
  obs::RankProfiler* const prof = rt.prof.get();
  const bool obs_time = rt.obs_phases || trace != nullptr || prof != nullptr;
  const bool obs_latency = rt.obs_latency;

  // Open this rank's counter group on its own thread (fds are per-thread)
  // and enrol in the on-CPU stack sampler before entering the loop.
  if (prof) prof->attach();
  if (stack_sampler_)
    stack_sampler_->register_current_thread(strfmt("rank %u", r));

  // Test-only fault injection: while the hook flag is up, this rank spins
  // without touching its mailbox — a deterministic "wedged rank" for the
  // stall-watchdog tests. Null in every production configuration.
  const std::atomic<bool>* const park_hook =
      (cfg_.debug.park_rank_while && cfg_.debug.park_rank == r)
          ? cfg_.debug.park_rank_while
          : nullptr;

  // Apply one visitor; topology events (the stream's unit of work) are
  // sampled into the per-update latency histogram.
  const auto process_one = [&](const Visitor& v) {
    if (obs_latency &&
        (v.kind == VisitKind::kAdd || v.kind == VisitKind::kDelete) &&
        (rt.obs_topo_seen++ & rt.obs_sample_mask) == 0) {
      const std::uint64_t t0 = obs::monotonic_ns();
      process_visitor(rt, v);
      rt.update_latency.record(obs::monotonic_ns() - t0);
      return;
    }
    process_visitor(rt, v);
  };

  // Receiver-side coalescing: merge later same-(program, target, sender,
  // epoch) Updates in a drained batch into the earliest occurrence, which
  // then dispatches once with the combined payload. Each merged-away
  // visitor DID travel (it was counted in flight and in Safra's balance by
  // its sender), so it is retired here exactly as if its callback had run
  // as a no-op: note_processed + on_basic_receive, before dispatch of the
  // survivors (DESIGN.md §6). Epoch is part of the key, so a visitor can
  // never smuggle its payload across a versioned-collection boundary.
  // Re-checked every drain, not cached at thread start: rank threads are
  // born in the Engine ctor, before any attach() can register a combiner.
  // The pass runs in fixed-size windows so the probe index stays L2-sized
  // no matter how large a backlogged drain gets: a multi-hundred-thousand
  // visitor batch with a proportionally sized index turns every probe into
  // a cache miss and costs more than the merges save. Duplicates that
  // straddle a window boundary simply both survive — merging any subset of
  // duplicates is sound, and same-sender re-offers cluster temporally, so
  // window-local merging catches nearly all of them.
  const auto coalesce_batch = [&](std::vector<Visitor>& b) {
    constexpr std::size_t kWindow = 8192;      // visitors per merge window
    constexpr std::size_t kSlots = 2 * kWindow;  // 128 KiB of MergeSlot
    if (rt.merge_slots.size() < kSlots) {
      rt.merge_slots.assign(kSlots, {});
      rt.merge_stamp = 0;
    }
    const std::uint64_t mask = kSlots - 1;
    std::size_t w = 0;
    for (std::size_t win = 0; win < b.size(); win += kWindow) {
      if (++rt.merge_stamp == 0) {  // uint32 wrap: hard-reset the slots
        std::fill(rt.merge_slots.begin(), rt.merge_slots.end(),
                  detail::RankRuntime::MergeSlot{});
        rt.merge_stamp = 1;
      }
      const std::size_t end = std::min(b.size(), win + kWindow);
      for (std::size_t i = win; i < end; ++i) {
        const Visitor v = b[i];
        const Comm::Combiner* c =
            v.kind == VisitKind::kUpdate ? comm_.combiner(v.algo) : nullptr;
        if (c == nullptr) {
          b[w++] = v;
          continue;
        }
        std::uint64_t h = splitmix64(v.target);
        h = hash_combine(h, v.other);
        h = hash_combine(h, (static_cast<std::uint64_t>(v.epoch) << 8) | v.algo);
        for (std::uint64_t s = h & mask;; s = (s + 1) & mask) {
          auto& slot = rt.merge_slots[s];
          if (slot.stamp != rt.merge_stamp) {
            slot.stamp = rt.merge_stamp;
            slot.pos = static_cast<std::uint32_t>(w);
            b[w++] = v;
            break;
          }
          Visitor& e = b[slot.pos];
          if (e.kind == VisitKind::kUpdate && e.algo == v.algo &&
              e.target == v.target && e.other == v.other && e.epoch == v.epoch) {
            e.value = c->fn(c->prog, e.value, v.value);
            comm_.note_processed(v.epoch, r);
            safra_.on_basic_receive(r);
            ++rt.metrics.receiver_merges;
            break;
          }
        }
      }
    }
    b.resize(w);
  };

  while (!shutdown_.load(std::memory_order_acquire)) {
    if (park_hook && park_hook->load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      continue;
    }
    if (cfg_.chaos_delay_us != 0) {
      // Chaos mode: random per-iteration delays widen the interleaving
      // space the correctness tests explore.
      std::this_thread::sleep_for(
          std::chrono::microseconds(chaos_rng.bounded(cfg_.chaos_delay_us)));
    }
    // Publish the epoch this iteration operates under (versioned-collection
    // handshake: after the main thread has seen `epoch_seen == new`, no
    // old-tagged injection from this rank can follow).
    const std::uint16_t iter_epoch = epoch_.load(std::memory_order_acquire);
    rt.epoch_seen.store(iter_epoch, std::memory_order_release);

    absorb_pending_triggers(rt);

    // Each loop iteration is attributed wholly to one phase: propagate
    // (mailbox drain), ingest (stream pull), or quiesce (passive), with
    // harvest/repair control work inside a drain re-attributed to
    // snapshot-drain via obs_control_ns.
    const std::uint64_t iter_t0 = obs_time ? obs_now() : 0;
    bool did_work = false;

    // 1) Drain the mailbox + loop-back queue: algorithm events take
    //    priority over new topology pulls (Section V-C's prioritisation).
    if (comm_.drain(r, batch)) {
      did_work = true;
      passive_streak = 0;
      rt.obs_control_ns = 0;
      if (batch.size() > 1 && cfg_.coalesce && comm_.has_combiners())
        coalesce_batch(batch);
      for (const Visitor& v : batch) {
        if (v.kind == VisitKind::kControl) {
          handle_control(rt, v);
        } else {
          safra_.on_basic_receive(r);
          process_one(v);
          comm_.note_processed(v.epoch, r);
        }
      }
      comm_.flush(r);
      if (obs_time) {
        const std::uint64_t dt = obs_now() - iter_t0;
        const std::uint64_t control = std::min(dt, rt.obs_control_ns);
        rt.phases.add(obs::Phase::kPropagate, dt - control);
        if (control) rt.phases.add(obs::Phase::kSnapshotDrain, control);
        if (prof) {
          prof->on_phase(obs::Phase::kPropagate, dt - control);
          if (control) prof->on_phase(obs::Phase::kSnapshotDrain, control);
        }
        if (trace) trace->emit("drain", iter_t0, dt, "events", batch.size());
      }
      continue;
    }

    // 2) Saturation ingest: pull the next chunk from this rank's streams
    //    (round-robin across them — streams are mutually concurrent, each
    //    internally FIFO).
    // Acquire pairs with ingest_async's release store: seeing a nonzero
    // remaining count must also make the just-assigned stream cursors
    // visible (the old mutexed mailbox synchronised this by accident; the
    // lock-free one does not).
    if (rt.stream_remaining.load(std::memory_order_acquire) > 0 &&
        !streams_paused_.load(std::memory_order_acquire)) {
      std::size_t pulled = 0;
      for (; pulled < cfg_.stream_chunk; ++pulled) {
        detail::RankRuntime::StreamCursor* sc = nullptr;
        for (std::size_t tries = 0; tries < rt.streams.size(); ++tries) {
          auto& cand = rt.streams[rt.next_stream];
          rt.next_stream = (rt.next_stream + 1) % rt.streams.size();
          if (cand.pos < cand.stream->size()) {
            sc = &cand;
            break;
          }
        }
        if (!sc) break;
        const EdgeEvent& e = (*sc->stream)[sc->pos++];
        // Canonical forward orientation (undirected): route both (u,v) and
        // (v,u) through the same owner so one stream's add/delete history
        // for an unordered pair is processed in stream order. With mixed
        // orientations the forward visitors land on different ranks and a
        // stale delete can race the later add's Reverse-Add, erasing an
        // edge the stream says survives (found by `remo fuzz`, see
        // docs/TESTING.md "The bug hunt").
        VertexId fwd_src = e.src, fwd_dst = e.dst;
        if (cfg_.undirected && fwd_dst < fwd_src) std::swap(fwd_src, fwd_dst);
        Visitor vis{fwd_src, fwd_dst, 0, e.weight,
                    e.op == EdgeOp::kAdd ? VisitKind::kAdd : VisitKind::kDelete,
                    Visitor::kTopologyAlgo, iter_epoch};
        // Lineage sampling at the origin: every (mask+1)-th pulled event
        // becomes a traced cause. Self-loops are skipped — they spawn no
        // propagation, so a sampled self-loop would only pollute the
        // amplification percentiles with structural zeros.
        if (rt.lineage && e.src != e.dst &&
            (rt.lineage_topo_seen++ & rt.lineage_sample_mask) == 0) {
          vis.cause = obs::make_cause(r, rt.lineage_next_seq);
          rt.lineage_next_seq = (rt.lineage_next_seq + 1) & obs::kCauseSeqMask;
          if (rt.lineage_next_seq == 0) rt.lineage_next_seq = 1;
          rt.lineage->record_origin(vis.cause, obs_now());
        }
        did_work = true;
        if (part_.owner(vis.target) == r) {
          comm_.note_injected(iter_epoch, r);
          // Ingest-watermark bump AFTER the in-flight increment (release
          // store): a gauge sampler that sees the count also sees the
          // event as in flight or applied — never as missing. Single
          // writer, so load+store is a plain increment on x86.
          rt.gauges.events_ingested.store(
              rt.gauges.events_ingested.load(std::memory_order_relaxed) + 1,
              std::memory_order_release);
          rt.stream_remaining.fetch_sub(1, std::memory_order_release);
          process_one(vis);
          comm_.note_processed(iter_epoch, r);
        } else {
          rt.send(vis);  // Comm::send counts it in flight first
          rt.gauges.events_ingested.store(
              rt.gauges.events_ingested.load(std::memory_order_relaxed) + 1,
              std::memory_order_release);
          rt.stream_remaining.fetch_sub(1, std::memory_order_release);
        }
      }
      if (did_work) {
        passive_streak = 0;
        comm_.flush(r);
        if (obs_time) {
          const std::uint64_t dt = obs_now() - iter_t0;
          rt.phases.add(obs::Phase::kIngest, dt);
          if (prof) prof->on_phase(obs::Phase::kIngest, dt);
          if (trace) trace->emit("ingest", iter_t0, dt, "events", pulled);
        }
        continue;
      }
    }

    // 3) Locally passive: flush, circulate termination tokens, park.
    comm_.flush(r);
    const bool stream_passive =
        rt.stream_remaining.load(std::memory_order_relaxed) == 0 ||
        streams_paused_.load(std::memory_order_acquire);
    const bool locally_passive =
        stream_passive && comm_.mailbox(r).empty() && !comm_.local_pending(r);
    if (locally_passive) {
      // Per-rank convergence watermark: everything this rank has applied is
      // settled from its own point of view at this instant.
      rt.gauges.converged_through.store(rt.metrics.topology_events.load(),
                                        std::memory_order_relaxed);
      rt.gauges.last_passive_ns.store(obs_now(), std::memory_order_relaxed);
      if (cfg_.termination == TerminationMode::kSafra) handle_safra_idle(rt);
    }
    rt.gauges.idle.store(true, std::memory_order_relaxed);
    if (passive_streak < kYieldIterations && !rt.token_parked) {
      // Early in an idle spell: give the timeslice away without parking.
      std::this_thread::yield();
    } else {
      // A throttled Safra restart (`token_parked`) must wait out a *timed*
      // park before re-circulating — a yield would let an unterminated
      // probe spin tokens continuously — so it skips the yield phase.
      const std::uint32_t shift =
          passive_streak < kYieldIterations
              ? 0
              : std::min(passive_streak - kYieldIterations, kMaxParkShift);
      comm_.mailbox(r).wait(kParkInterval * (1u << shift));
    }
    ++passive_streak;
    rt.gauges.idle.store(false, std::memory_order_relaxed);
    if (rt.obs_phases || prof) {
      const std::uint64_t dt = obs_now() - iter_t0;
      if (rt.obs_phases) rt.phases.add(obs::Phase::kQuiesce, dt);
      if (prof) prof->on_phase(obs::Phase::kQuiesce, dt);
    }
  }
  // Attribute the tail the sampling stride would otherwise drop.
  if (prof) prof->flush();
}

}  // namespace remo
