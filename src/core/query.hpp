// "When" queries — local-state triggers (Sections II and III-E).
//
// A trigger binds a predicate over a vertex's local algorithm state to a
// user callback.
//
// Add-only regime (the paper's): program state is monotone, so a predicate
// that becomes true stays true, and the paper's two guarantees — no false
// positives and fire-exactly-once — both follow.
//
// Delete-era semantics (Section VI-B engine): repair waves can regress a
// vertex's state (invalidate to identity, then reconverge), so "once true,
// true forever" no longer holds. What the engine actually guarantees:
//
//  * VertexTrigger: fire-exactly-once holds UNCONDITIONALLY — the engine
//    retires the trigger before running its action, including when the
//    satisfying transition happens inside a repair wave. The fired value
//    satisfied the predicate at the instant of firing, but a later delete
//    may invalidate it; a delete/re-add sequence that re-satisfies the
//    predicate does NOT re-fire a retired trigger
//    (tests/engine/test_triggers.cpp pins this).
//
//  * GlobalTrigger: fires on every UPWARD CROSSING of the predicate
//    (!pred(old) && pred(new)). "At most once per vertex" is therefore an
//    add-only-regime property: under deletes, repair can regress a vertex
//    below the predicate and a later re-add can re-cross it, firing again
//    for the same vertex. Deduplicate in the callback if the application
//    needs per-vertex exactly-once under deletes.
//
// docs/SERVING.md relates these live-observation semantics to the serving
// plane's epoch-consistent snapshot reads.
//
// Callbacks run inline on the owning rank's thread, at the instant the
// state transition happens; they must not block and must be thread-safe
// with respect to the caller's own data.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"

namespace remo {

/// Predicate over a vertex's local state word.
using TriggerPredicate = std::function<bool(StateWord)>;

/// Fired with the vertex and the state value that satisfied the predicate.
using TriggerAction = std::function<void(VertexId, StateWord)>;

struct VertexTrigger {
  VertexId vertex = kInvalidVertex;
  TriggerPredicate predicate;
  TriggerAction action;
};

/// A trigger evaluated on *every* vertex state change on the rank that owns
/// the changing vertex ("notify whenever any account connects to a flagged
/// source"). Unlike VertexTrigger it is not retired after firing; it fires
/// once per upward predicate crossing — at most once per vertex in the
/// add-only regime, possibly again per vertex when delete-era repair
/// regresses and re-crosses the predicate (see the header comment).
struct GlobalTrigger {
  TriggerPredicate predicate;
  TriggerAction action;
};

/// Handle for a registered trigger (diagnostics / tests).
using TriggerId = std::uint64_t;

}  // namespace remo
