// "When" queries — local-state triggers (Sections II and III-E).
//
// A trigger binds a predicate over a vertex's local algorithm state to a
// user callback. For REMO programs the predicate is expected to be
// *monotone* (once true, true forever given add-only events): the paper's
// two guarantees — no false positives and fire-exactly-once — then follow,
// and the engine enforces the exactly-once part by retiring a trigger when
// it fires.
//
// Callbacks run inline on the owning rank's thread, at the instant the
// state transition happens; they must not block and must be thread-safe
// with respect to the caller's own data.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"

namespace remo {

/// Predicate over a vertex's local state word.
using TriggerPredicate = std::function<bool(StateWord)>;

/// Fired with the vertex and the state value that satisfied the predicate.
using TriggerAction = std::function<void(VertexId, StateWord)>;

struct VertexTrigger {
  VertexId vertex = kInvalidVertex;
  TriggerPredicate predicate;
  TriggerAction action;
};

/// A trigger evaluated on *every* vertex state change on the rank that owns
/// the changing vertex ("notify whenever any account connects to a flagged
/// source"). Unlike VertexTrigger it is not retired after firing; it fires
/// at most once per vertex.
struct GlobalTrigger {
  TriggerPredicate predicate;
  TriggerAction action;
};

/// Handle for a registered trigger (diagnostics / tests).
using TriggerId = std::uint64_t;

}  // namespace remo
