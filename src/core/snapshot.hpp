// Snapshot: discretised global algorithm state (Section II-C / III-D).
//
// A snapshot holds, for one program, every vertex whose state differs from
// the program's identity at the discretisation point. Produced either by
// Engine::collect_quiescent (drain, then gather) or by
// Engine::collect_versioned (Chandy-Lamport-style epoch split — ingestion
// keeps running while the previous epoch drains).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace remo {

class Snapshot {
 public:
  using Entry = std::pair<VertexId, StateWord>;

  Snapshot() = default;
  Snapshot(std::vector<Entry> entries, StateWord identity)
      : entries_(std::move(entries)), identity_(identity) {
    std::sort(entries_.begin(), entries_.end());
  }

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  /// State of `v` at the snapshot point; identity when untouched.
  StateWord at(VertexId v) const noexcept {
    auto it = std::lower_bound(entries_.begin(), entries_.end(), v,
                               [](const Entry& e, VertexId key) { return e.first < key; });
    return (it != entries_.end() && it->first == v) ? it->second : identity_;
  }

  StateWord identity() const noexcept { return identity_; }
  const std::vector<Entry>& entries() const noexcept { return entries_; }

  /// Engine epoch in force when this snapshot's cut was taken (stamped by
  /// the collect paths; metadata only — not part of value equality).
  /// collect_versioned stamps the post-cut epoch, so snapshots from
  /// successive cuts carry strictly increasing epochs (mod 2^16); the
  /// serving plane's read-epoch pin (docs/SERVING.md) is built on this.
  std::uint16_t epoch() const noexcept { return epoch_; }
  void set_epoch(std::uint16_t e) noexcept { epoch_ = e; }

  auto begin() const noexcept { return entries_.begin(); }
  auto end() const noexcept { return entries_.end(); }

 private:
  std::vector<Entry> entries_;  // sorted by vertex id
  StateWord identity_ = kInfiniteState;
  std::uint16_t epoch_ = 0;
};

}  // namespace remo
