#include "core/static_on_dynamic.hpp"

#include <deque>
#include <queue>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace remo {
namespace {

const TwoTierAdjacency* adjacency_of(const Engine& engine, VertexId v) {
  return engine.store(engine.partitioner().owner(v)).adjacency(v);
}

}  // namespace

RobinHoodMap<VertexId, StateWord> static_bfs_on_store(const Engine& engine,
                                                      VertexId source) {
  RobinHoodMap<VertexId, StateWord> level;
  std::deque<VertexId> frontier;
  level.insert_or_assign(source, 1);
  frontier.push_back(source);
  while (!frontier.empty()) {
    const VertexId u = frontier.front();
    frontier.pop_front();
    const StateWord lu = *level.find(u);
    const TwoTierAdjacency* adj = adjacency_of(engine, u);
    if (!adj) continue;
    adj->for_each([&](VertexId v, const EdgeProp&) {
      if (!level.contains(v)) {
        level.insert_or_assign(v, lu + 1);
        frontier.push_back(v);
      }
    });
  }
  return level;
}

RobinHoodMap<VertexId, StateWord> static_sssp_on_store(const Engine& engine,
                                                       VertexId source) {
  RobinHoodMap<VertexId, StateWord> dist;
  using Entry = std::pair<StateWord, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist.insert_or_assign(source, 1);
  heap.emplace(1, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    const StateWord* cur = dist.find(u);
    if (!cur || *cur != d) continue;
    const TwoTierAdjacency* adj = adjacency_of(engine, u);
    if (!adj) continue;
    adj->for_each([&](VertexId v, const EdgeProp& prop) {
      const StateWord nd = d + prop.weight;
      StateWord& dv = dist.get_or_insert(v);
      if (dv == 0 || nd < dv) {  // freshly inserted entries default to 0
        dv = nd;
        heap.emplace(nd, v);
      }
    });
  }
  return dist;
}

}  // namespace remo
