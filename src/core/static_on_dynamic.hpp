// Static algorithms executed over the dynamic store.
//
// Section V-B's middle bar: "one can use the constructed dynamic
// data-structure and execute any known static algorithm on top of it".
// These walkers traverse the engine's per-rank DegAwareStores directly
// (engine must be quiescent / paused); each state write lands in a dynamic
// hash location rather than a dense CSR buffer, which is exactly the
// static-on-dynamic overhead the paper measures.
#pragma once

#include "common/types.hpp"
#include "core/engine.hpp"
#include "storage/robin_hood_map.hpp"

namespace remo {

/// BFS levels over the engine's current topology (source level 1,
/// unreached vertices absent from the result).
RobinHoodMap<VertexId, StateWord> static_bfs_on_store(const Engine& engine,
                                                      VertexId source);

/// Dijkstra distances over the engine's current topology.
RobinHoodMap<VertexId, StateWord> static_sssp_on_store(const Engine& engine,
                                                       VertexId source);

}  // namespace remo
