// The event-centric programming model (Section III-A, Algorithm 3).
//
// An algorithm is a stateless VertexProgram: a bundle of callbacks invoked
// by the engine when a visitor reaches a vertex. All per-vertex state lives
// in engine-owned, rank-local stores and is reached through the
// VertexContext handed to each callback — programs themselves hold only
// immutable configuration (e.g. the BFS source id), so one instance safely
// serves every rank.
//
// Callback vocabulary (mirrors the paper's virtual add / reverse_add /
// update / init, plus the Section VI-B decremental extension):
//   init          — algorithm instantiation at a vertex, any time
//   on_add        — an out-edge (vertex -> nbr) was just inserted here
//   on_reverse_add— the far side of an undirected insert; nbr_val carries
//                   the adding vertex's state (vis_val)
//   on_update     — algorithm-generated propagation (vis_ID, vis_val)
//   on_delete / on_reverse_delete / on_repair_invalidate / on_invalidate /
//   on_probe      — decremental support; see Engine::repair()
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "storage/adjacency.hpp"

namespace remo {

class Engine;
namespace detail {
struct RankRuntime;
}

/// Program slot index inside an engine.
using ProgramId = std::uint8_t;

/// How a program trades memoized state for propagation containment when the
/// graph mutates (the Ingress taxonomy, DESIGN.md §8). The engine treats
/// this as declarative metadata: it does not allocate anything per policy,
/// but uses it to pick the correct mutation schedule (repair waves vs.
/// direct delta correction) and to gate monotone-only fast paths.
enum class MemoizationPolicy : std::uint8_t {
  /// No memoized support structure: every mutation restarts propagation
  /// from the affected vertices (connected components — recomputing a
  /// label costs one flood either way).
  kMemoFree,
  /// Memoize the dependency path (parent pointers in `aux`): a mutation
  /// invalidates exactly the subtree hanging off the changed edge, then
  /// reconverges it from the intact frontier (BFS/SSSP and the weighted
  /// variant — Engine::repair's invalidate-then-reconverge schedule).
  kMemoPath,
  /// Memoize per-vertex deltas (residuals in `aux`): a mutation is folded
  /// into a local correction that propagates only while it stays above the
  /// tolerance — no global invalidation at all (delta PageRank).
  kMemoDelta,
};

/// Handle to one vertex's state plus the messaging surface, valid only for
/// the duration of a callback. All operations are rank-local or enqueue
/// visitors; nothing blocks.
class VertexContext {
 public:
  /// The vertex being visited.
  VertexId vertex() const noexcept { return vertex_; }

  /// This vertex's current algorithm state (program identity if untouched).
  StateWord value() const;

  /// Overwrite the state. Fires any matching "when" triggers. During a
  /// versioned collection the engine transparently maintains the S_prev /
  /// S_new split (Section III-D) around this call.
  void set_value(StateWord v);

  /// Secondary per-vertex word (e.g. the BFS/SSSP parent pointer used for
  /// deterministic trees and decremental repair). kInfiniteState if unset.
  StateWord aux() const;
  void set_aux(StateWord v);

  /// Owned adjacency of vertex(); nullptr when no out-edges exist yet.
  /// Iterate with adj()->for_each([&](VertexId nbr, EdgeProp& p) { ... }).
  TwoTierAdjacency* adj() const noexcept { return adj_; }

  std::size_t degree() const noexcept { return adj_ ? adj_->degree() : 0; }

  Weight edge_weight(VertexId nbr) const noexcept {
    return adj_ ? adj_->weight_of(nbr) : kDefaultWeight;
  }

  /// Whether the engine materialises reverse edges (EngineConfig::undirected).
  /// Programs use this to decide if an explicit forward push is needed on
  /// on_add (directed mode has no Reverse-Add to carry the value across).
  bool undirected() const;

  /// Per-edge memo slot (Algorithm 3's nbrs.get/set), scoped to this
  /// program. Monotone programs have the engine deposit sender states here
  /// automatically; non-monotone memo-delta programs manage the slot
  /// themselves (the cumulative-message memo that makes deletions local —
  /// DESIGN.md §8). kInfiniteState when absent or owned by another program.
  StateWord nbr_memo(VertexId nbr) const noexcept {
    const EdgeProp* p = adj_ ? adj_->find(nbr) : nullptr;
    return p ? p->cache_for(prog_) : kInfiniteState;
  }
  void set_nbr_memo(VertexId nbr, StateWord value) noexcept {
    // During a versioned collection an old-epoch event at a split vertex
    // runs the callback twice — first on frozen S_prev, then on the live
    // state. The memo is not versioned, so only the live invocation (which
    // always follows) may advance it; a prev-view write would make the
    // live invocation see a zero delta and lose the message.
    if (prev_view_) return;
    if (EdgeProp* p = adj_ ? adj_->find(nbr) : nullptr) p->set_cache(prog_, value);
  }

  /// During on_delete / on_reverse_delete only: the memo slot of the edge
  /// that was just erased (the topology is updated before the callback, so
  /// nbr_memo() can no longer reach it). kInfiniteState otherwise. This is
  /// what lets a memo-delta program retract the departed neighbour's
  /// contribution exactly, with no message over the dead edge.
  StateWord deleted_nbr_memo() const noexcept { return deleted_nbr_memo_; }

  /// Send an Update visitor carrying `value` to one vertex. The weight is
  /// looked up from this vertex's adjacency (paper: getEdgeWeight).
  void update_single_nbr(VertexId nbr, StateWord value);

  /// Send an Update visitor carrying `value` across every owned edge
  /// (paper: update_nbrs).
  void update_all_nbrs(StateWord value);

  /// Decremental support (Section VI-B; see Engine::repair):
  /// flag this vertex as a repair anchor — its program will be asked to
  /// re-examine it when the next repair pass starts.
  void mark_dirty();
  /// Record this vertex as invalidated during repair phase A (it will
  /// probe its neighbourhood in phase B).
  void send_invalidate_all_nbrs();
  void send_probe_all_nbrs();
  void mark_invalid();

 private:
  friend class Engine;
  VertexContext(detail::RankRuntime& rt, ProgramId prog, VertexId vertex,
                TwoTierAdjacency* adj, std::uint16_t epoch, bool prev_view)
      : rt_(&rt), vertex_(vertex), adj_(adj), prog_(prog), epoch_(epoch),
        prev_view_(prev_view) {}

  detail::RankRuntime* rt_;
  VertexId vertex_;
  TwoTierAdjacency* adj_;
  ProgramId prog_;
  std::uint16_t epoch_;
  bool prev_view_;  // operating on S_prev during a versioned collection
  // Set by the engine for delete dispatches (see deleted_nbr_memo()).
  StateWord deleted_nbr_memo_ = kInfiniteState;
};

/// Base class for REMO algorithms.
class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  virtual std::string name() const = 0;

  /// State of a vertex no event has touched (BFS/SSSP: infinity; CC /
  /// S-T / degree: 0).
  virtual StateWord identity() const = 0;

  /// True when `a` is at least as converged as `b` in the program's
  /// monotone order (BFS: a <= b). Drives monotonicity property tests.
  virtual bool no_worse(StateWord a, StateWord b) const { return a <= b; }

  /// Whether the program's state evolves monotonically along no_worse()
  /// during convergence. Monotone programs get the lattice fast paths
  /// (visitor coalescing, neighbour-cache suppression); non-monotone
  /// programs (delta PageRank — rank mass moves both ways) must see every
  /// message, and Engine::attach rejects them if they also claim
  /// can_combine() (coalescing a non-monotone visitor silently corrupts
  /// state: the merged message is not equivalent to the replayed history).
  virtual bool monotone() const { return true; }

  /// Which memoization structure backs this program's incremental updates
  /// (DESIGN.md §8). Purely declarative today — programs implementing
  /// kMemoPath lean on Engine::repair, kMemoDelta programs self-correct in
  /// on_weight_change/on_delete — but surfaced so tooling (fig9 bench,
  /// fuzz case descriptions) can report which policy a run exercised.
  virtual MemoizationPolicy memoization_policy() const {
    return MemoizationPolicy::kMemoFree;
  }

  /// Opt-in for visitor coalescing: true when two Update visitors from the
  /// *same sender* to the *same target* may be merged en route into one
  /// carrying combine(a, b). Sound exactly when the program is monotone
  /// and combine picks a value that is no_worse than both inputs — the
  /// receiver then observes the sender's best offer instead of a replayed
  /// history of dominated ones, which a monotone callback cannot
  /// distinguish from the messages simply arriving late (DESIGN.md §6 has
  /// the proof sketch, including why *cross*-sender merging is unsound).
  /// Default off: programs that react to every message (counting,
  /// non-monotone folds) must see the full stream.
  virtual bool can_combine() const { return false; }

  /// Merge two same-sender Update payloads (consulted only when
  /// can_combine()). Must be commutative, associative, idempotent, and
  /// satisfy no_worse(combine(a, b), a) && no_worse(combine(a, b), b) —
  /// BFS/SSSP: min; CC: max. Property-tested in test_coalescing.cpp.
  virtual StateWord combine(StateWord a, StateWord b) const {
    (void)b;
    return a;
  }

  /// Neighbour-cache suppression (the optimisation Algorithm 3's per-edge
  /// `nbrs` values enable): before update_all_nbrs sends `value` to a
  /// neighbour, the engine consults the last state heard *from* that
  /// neighbour. Return true when that cached state proves the send is
  /// useless. Sound for monotone programs: a neighbour's live state is
  /// always no-worse than anything it ever sent, so if the cached value is
  /// already no-worse than `value`, the receiver can neither improve from
  /// it nor needs to reply (its earlier message was already incorporated
  /// here). Default: never suppress.
  virtual bool update_is_redundant(StateWord nbr_cache, StateWord value) const {
    (void)nbr_cache;
    (void)value;
    return false;
  }

  /// Algorithm instantiation at `ctx.vertex()` (paper: init()).
  virtual void init(VertexContext& ctx) { (void)ctx; }

  /// Edge (vertex -> nbr, weight w) inserted at this owner.
  virtual void on_add(VertexContext& ctx, VertexId nbr, Weight w) {
    (void)ctx;
    (void)nbr;
    (void)w;
  }

  /// Far side of an undirected insert; nbr_val is the adding vertex's
  /// state at add time (vis_val of Algorithm 3's REVERSE_ADD).
  virtual void on_reverse_add(VertexContext& ctx, VertexId nbr, StateWord nbr_val,
                              Weight w) {
    (void)ctx;
    (void)nbr;
    (void)nbr_val;
    (void)w;
  }

  /// Propagation event from `from` carrying its state `from_val` over an
  /// edge of weight w.
  virtual void on_update(VertexContext& ctx, VertexId from, StateWord from_val,
                         Weight w) {
    (void)ctx;
    (void)from;
    (void)from_val;
    (void)w;
  }

  /// The edge (vertex -> nbr) changed weight old_w -> new_w in place
  /// (last-weight-wins re-add of a live edge). Fired instead of on_add, on
  /// both sides of an undirected edge, with the topology already updated.
  /// A weight change is never decomposed into delete+add — that pair would
  /// race the repair wave (the PR 5 stale-update family) and double-count
  /// weight-dependent contributions. Weighted SSSP treats a decrease as a
  /// fresh relaxation source and an increase on its parent edge as damage
  /// to repair; delta PageRank folds the mass difference directly.
  virtual void on_weight_change(VertexContext& ctx, VertexId nbr, Weight old_w,
                                Weight new_w) {
    (void)ctx;
    (void)nbr;
    (void)old_w;
    (void)new_w;
  }

  // --- Decremental extension (Section VI-B) -------------------------------

  /// Whether Engine::repair() should drive this program's delete recovery.
  virtual bool supports_deletes() const { return false; }

  /// Edge (vertex -> nbr) deleted at this owner (topology already updated).
  virtual void on_delete(VertexContext& ctx, VertexId nbr, Weight w) {
    (void)ctx;
    (void)nbr;
    (void)w;
  }

  virtual void on_reverse_delete(VertexContext& ctx, VertexId nbr, Weight w) {
    (void)ctx;
    (void)nbr;
    (void)w;
  }

  /// Repair phase A entry: re-examine a dirty anchor (a vertex whose
  /// support may have been severed). Typically: if the lost neighbour was
  /// this vertex's parent, mark_invalid() + send_invalidate_all_nbrs().
  virtual void on_repair_anchor(VertexContext& ctx) { (void)ctx; }

  /// Repair phase A propagation: neighbour `from` was invalidated.
  virtual void on_invalidate(VertexContext& ctx, VertexId from) {
    (void)ctx;
    (void)from;
  }

  /// Repair phase B: neighbour `from` (invalidated) asks for support.
  /// Default: offer our value if we have one.
  virtual void on_probe(VertexContext& ctx, VertexId from) {
    if (ctx.value() != identity()) ctx.update_single_nbr(from, ctx.value());
  }
};

}  // namespace remo
