#include "fuzz/fuzz.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <memory>
#include <thread>

#include "common/assert.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/strfmt.hpp"
#include "core/algorithms/dynamic_bfs.hpp"
#include "core/algorithms/dynamic_cc.hpp"
#include "core/algorithms/dynamic_sssp.hpp"
#include "core/algorithms/multi_st.hpp"
#include "core/algorithms/pagerank_delta.hpp"
#include "core/algorithms/weighted_sssp.hpp"
#include "core/engine.hpp"
#include "graph/csr.hpp"
#include "graph/static_bfs.hpp"
#include "graph/static_cc.hpp"
#include "graph/static_pagerank.hpp"
#include "graph/static_sssp.hpp"
#include "graph/static_st.hpp"
#include "serve/query_service.hpp"
#include "storage/robin_hood_map.hpp"

namespace remo::fuzz {
namespace {

// Seed-space salts: each derived stream of randomness gets its own lane so
// knob choices never correlate with event choices.
constexpr std::uint64_t kKnobSalt = 0x8f1b'74c3'9a2e'5d07ULL;
constexpr std::uint64_t kEventSalt = 0x3c6e'f372'fe94'f82aULL;
constexpr std::uint64_t kWeightSalt = 0xd1b5'4a32'd192'ed03ULL;
constexpr std::uint64_t kScheduleSalt = 0x94d0'49bb'1331'11ebULL;

// Weights must be a pure function of the unordered endpoint pair: the
// engine collapses parallel edges (last weight wins) while the oracle sees
// one edge per pair, so duplicate adds with differing weights would make
// the converged distances depend on arrival order — a generator artefact,
// not an engine bug.
Weight pair_weight(std::uint64_t pair_key, std::uint64_t seed, Weight max_weight) {
  if (max_weight <= 1) return 1;
  return 1 + static_cast<Weight>(splitmix64(pair_key ^ seed ^ kWeightSalt) %
                                 max_weight);
}

template <typename T, std::size_t N>
T pick(Xoshiro256& rng, const T (&options)[N]) {
  return options[rng.bounded(N)];
}

/// What kind of event stream an algorithm can consume: everything that
/// changes which generator branch fires. Streams are regenerated whenever
/// the matrix cycling (or --algo pinning) lands on an algorithm with a
/// different profile than the seed-random one the events were made for.
struct StreamProfile {
  bool deletes;
  bool mutate_weights;
  friend bool operator==(const StreamProfile&, const StreamProfile&) = default;
};

StreamProfile profile_of(Algo a, const GenOptions& opts) {
  return {algo_supports_deletes(a) && opts.delete_permille > 0,
          algo_mutates_weights(a)};
}

}  // namespace

const char* algo_name(Algo a) noexcept {
  switch (a) {
    case Algo::kBfs: return "bfs";
    case Algo::kSssp: return "sssp";
    case Algo::kCc: return "cc";
    case Algo::kSt: return "st";
    case Algo::kPagerank: return "pagerank";
    case Algo::kWsssp: return "wsssp";
  }
  return "?";
}

bool algo_from_name(const std::string& name, Algo& out) noexcept {
  for (const Algo a : {Algo::kBfs, Algo::kSssp, Algo::kCc, Algo::kSt,
                       Algo::kPagerank, Algo::kWsssp}) {
    if (name == algo_name(a)) {
      out = a;
      return true;
    }
  }
  return false;
}

namespace {

/// Generate the event stream (and source) for `fc` under the given
/// algorithm's profile. Deterministic in (seed, opts, profile).
void gen_events(FuzzCase& fc, const GenOptions& opts, StreamProfile prof) {
  const std::uint64_t seed = fc.seed;
  Xoshiro256 rng(splitmix64(seed ^ kEventSalt));

  // Live unordered pairs, for picking meaningful delete targets (and, in
  // the weight-mutating family, live pairs to re-weight). The map stores
  // each live pair's slot in the vector; erase swaps the tail in.
  struct LivePair {
    VertexId src, dst;
    std::uint64_t key;
  };
  std::vector<LivePair> live;
  RobinHoodMap<std::uint64_t, std::uint32_t> live_slot;

  // Weight drawing: the monotone family keeps weights a pure function of
  // the endpoint pair (see algo_mutates_weights); the non-monotone family
  // draws fresh, so a duplicate add becomes a weight change.
  auto draw_weight = [&](std::uint64_t pair_key) -> Weight {
    if (!prof.mutate_weights) return pair_weight(pair_key, seed, opts.max_weight);
    if (opts.max_weight <= 1) return 1;
    return 1 + static_cast<Weight>(rng.bounded(opts.max_weight));
  };

  fc.events.clear();
  fc.events.reserve(opts.num_events);
  for (std::uint32_t i = 0; i < opts.num_events; ++i) {
    const bool want_delete =
        prof.deletes && !live.empty() && rng.bounded(1000) < opts.delete_permille;
    if (want_delete) {
      if (rng.bounded(16) == 0) {
        // Occasional delete of an edge that does not exist: the engine
        // must treat it as a no-op (no reverse propagation, no repair
        // anchor) — a hazard class worth keeping in the stream.
        const VertexId u = rng.bounded(opts.num_vertices);
        VertexId v = rng.bounded(opts.num_vertices);
        if (v == u) v = (v + 1) % opts.num_vertices;
        const std::uint64_t key = event_pair_key(EdgeEvent{u, v});
        if (!live_slot.contains(key)) {
          fc.events.push_back(EdgeEvent{u, v, 1, EdgeOp::kDelete});
          continue;
        }
      }
      const std::uint32_t slot =
          static_cast<std::uint32_t>(rng.bounded(live.size()));
      const LivePair p = live[slot];
      fc.events.push_back(
          EdgeEvent{p.src, p.dst, draw_weight(p.key), EdgeOp::kDelete});
      live[slot] = live.back();
      live_slot.insert_or_assign(live[slot].key, slot);
      live.pop_back();
      live_slot.erase(p.key);
      continue;
    }
    if (prof.mutate_weights && !live.empty() &&
        rng.bounded(1000) < opts.mutate_permille) {
      // Deliberate weight change: re-add a live pair with a fresh weight.
      // The engine must route this through on_weight_change, never through
      // a delete+add decomposition.
      const LivePair& p = live[rng.bounded(live.size())];
      fc.events.push_back(
          EdgeEvent{p.src, p.dst, draw_weight(p.key), EdgeOp::kAdd});
      continue;
    }
    const VertexId u = rng.bounded(opts.num_vertices);
    VertexId v = rng.bounded(opts.num_vertices);
    if (v == u) v = (v + 1) % opts.num_vertices;  // no self-loops
    const EdgeEvent probe{u, v};
    const std::uint64_t key = event_pair_key(probe);
    fc.events.push_back(EdgeEvent{u, v, draw_weight(key), EdgeOp::kAdd});
    if (!live_slot.contains(key)) {
      live_slot.insert_or_assign(key, static_cast<std::uint32_t>(live.size()));
      live.push_back(LivePair{u, v, key});
    }
  }

  // Source: the first add's source endpoint — guaranteed to exist, and in
  // the graph unless heavy deletion later isolates it (a case the differ
  // handles explicitly).
  fc.source = 0;
  for (const EdgeEvent& e : fc.events) {
    if (e.op == EdgeOp::kAdd) {
      fc.source = e.src;
      break;
    }
  }
}

/// Re-point a case at `algo`, regenerating its events when the stream
/// profile (deletes allowed / weights mutable) differs from what they were
/// generated under.
void retarget_algo(FuzzCase& fc, Algo algo, const GenOptions& opts) {
  const StreamProfile before = profile_of(fc.config.algo, opts);
  const StreamProfile after = profile_of(algo, opts);
  fc.config.algo = algo;
  if (before != after) gen_events(fc, opts, after);
}

}  // namespace

FuzzCase make_case(std::uint64_t seed, const GenOptions& opts) {
  REMO_CHECK(opts.num_vertices >= 2);
  REMO_CHECK(opts.num_events >= 1);
  FuzzCase fc;
  fc.seed = seed;

  // --- Config knobs -------------------------------------------------------
  static constexpr std::uint32_t kRankChoices[] = {1, 2, 4, 8};
  static constexpr std::uint32_t kBatchChoices[] = {1, 4, 32, 128, 256};
  // Tiny rings force the mailbox overflow/spill path; the default exercises
  // the pure lock-free path.
  static constexpr std::uint32_t kRingChoices[] = {8, 64, 1024, 16384};
  static constexpr std::uint32_t kChunkChoices[] = {1, 16, 64};
  static constexpr std::uint32_t kChaosChoices[] = {0, 0, 0, 20, 100};
  static constexpr std::uint32_t kPromoteChoices[] = {2, 8};
  Xoshiro256 knobs(splitmix64(seed ^ kKnobSalt));
  CaseConfig& c = fc.config;
  c.algo = static_cast<Algo>(knobs.bounded(kNumAlgos));
  c.ranks = pick(knobs, kRankChoices);
  c.termination = knobs.bounded(2) == 0 ? TerminationMode::kCounting
                                        : TerminationMode::kSafra;
  c.coalesce = knobs.bounded(2) == 0;
  c.batch_size = pick(knobs, kBatchChoices);
  c.ring_capacity = pick(knobs, kRingChoices);
  c.stream_chunk = pick(knobs, kChunkChoices);
  c.chaos_delay_us = pick(knobs, kChaosChoices);
  c.nbr_cache_filter = knobs.bounded(4) != 0;  // mostly on (the default)
  c.promote_threshold = pick(knobs, kPromoteChoices);
  c.schedule_seed = splitmix64(seed ^ kScheduleSalt) | 1;  // nonzero
  c.streams = c.ranks;

  gen_events(fc, opts, profile_of(c.algo, opts));
  return fc;
}

FuzzCase make_case_indexed(std::uint64_t index, std::uint64_t base_seed,
                           const GenOptions& opts) {
  FuzzCase fc = make_case(hash_combine(splitmix64(base_seed), index), opts);
  // Cycle the coverage-critical axes deterministically: 6 algorithms x 4
  // rank counts x 2 detectors = 48 combos per index window.
  constexpr Algo kAlgos[] = {Algo::kBfs,      Algo::kSssp, Algo::kCc,
                             Algo::kSt,       Algo::kPagerank,
                             Algo::kWsssp};
  constexpr std::uint32_t kRanks[] = {1, 2, 4, 8};
  fc.config.ranks = kRanks[(index / kNumAlgos) % 4];
  fc.config.streams = fc.config.ranks;
  fc.config.termination = ((index / (kNumAlgos * 4)) % 2) == 0
                              ? TerminationMode::kCounting
                              : TerminationMode::kSafra;
  retarget_algo(fc, kAlgos[index % kNumAlgos], opts);
  return fc;
}

EdgeList surviving_edges(const std::vector<EdgeEvent>& events) {
  struct PairState {
    VertexId src = 0, dst = 0;
    Weight weight = kDefaultWeight;
    bool present = false;
  };
  RobinHoodMap<std::uint64_t, std::uint32_t> slot_of;
  std::vector<PairState> pairs;
  for (const EdgeEvent& e : events) {
    const std::uint64_t key = event_pair_key(e);
    auto [slot, fresh] = slot_of.find_or_emplace(key, [&] {
      pairs.emplace_back();
      return static_cast<std::uint32_t>(pairs.size() - 1);
    });
    PairState& p = pairs[*slot];
    if (e.op == EdgeOp::kAdd) {
      p.src = e.src;
      p.dst = e.dst;
      p.weight = e.weight;
      p.present = true;
    } else {
      p.present = false;
    }
  }
  EdgeList out;
  for (const PairState& p : pairs)
    if (p.present) out.push_back(Edge{p.src, p.dst, p.weight});
  return out;
}

RunResult run_case(const FuzzCase& fc, const RunOptions& run) {
  const CaseConfig& c = fc.config;
  REMO_CHECK(c.ranks >= 1 && c.streams >= 1);

  const bool has_deletes =
      std::any_of(fc.events.begin(), fc.events.end(),
                  [](const EdgeEvent& e) { return e.op == EdgeOp::kDelete; });

  EngineConfig cfg;
  cfg.num_ranks = c.ranks;
  cfg.batch_size = c.batch_size;
  cfg.coalesce = c.coalesce;
  cfg.mailbox_ring_capacity = c.ring_capacity;
  cfg.stream_chunk = c.stream_chunk;
  cfg.termination = c.termination;
  cfg.nbr_cache_filter = c.nbr_cache_filter;
  cfg.chaos_delay_us = c.chaos_delay_us;
  cfg.store.promote_threshold = c.promote_threshold;
  cfg.debug.schedule_seed = c.schedule_seed;
  cfg.debug.drop_nth_update = c.drop_nth_update;

  Engine engine(cfg);
  ProgramId id = 0;
  switch (c.algo) {
    case Algo::kBfs: {
      auto [i, p] = engine.attach_make<DynamicBfs>(
          fc.source, DynamicBfs::Options{.deterministic_parents = false,
                                         .support_deletes = has_deletes});
      id = i;
      engine.inject_init(id, fc.source);
      break;
    }
    case Algo::kSssp: {
      auto [i, p] = engine.attach_make<DynamicSssp>(
          fc.source, DynamicSssp::Options{.deterministic_parents = false,
                                          .support_deletes = has_deletes});
      id = i;
      engine.inject_init(id, fc.source);
      break;
    }
    case Algo::kCc:
      id = engine.attach(std::make_shared<DynamicCc>());
      break;
    case Algo::kSt: {
      auto [i, p] = engine.attach_make<MultiStConnectivity>(
          std::vector<VertexId>{fc.source});
      id = i;
      inject_st_sources(engine, id, *p);
      break;
    }
    case Algo::kPagerank:
      // No init: a vertex bootstraps its base mass on first topology touch
      // (on_add publishes whenever the residual exceeds the tolerance).
      id = engine.attach(std::make_shared<PageRankDelta>());
      break;
    case Algo::kWsssp: {
      auto [i, p] = engine.attach_make<WeightedSssp>(fc.source);
      id = i;
      engine.inject_init(id, fc.source);
      break;
    }
  }

  if (run.query_observer) {
    // Query-observer mode: a serving plane auto-refreshes versioned views
    // while the case ingests, and one observer thread hammers the catalog —
    // checking that every pinned view is frozen (two reads agree) and that
    // published versions only move forward. The observer cannot change the
    // verdict (reads only), it just adds serve-plane interleavings.
    serve::QueryService qs(engine,
                           serve::QueryServiceConfig{.refresh_period_ms = 2});
    qs.serve(id);
    qs.start();
    std::atomic<bool> ingest_done{false};
    std::thread observer([&] {
      Xoshiro256 rng(fc.seed ^ 0x9e3779b97f4a7c15ULL);
      std::uint64_t last_version = 0;
      while (!ingest_done.load(std::memory_order_acquire)) {
        const VertexId v = static_cast<VertexId>(rng.bounded(96));
        const auto view = qs.view(id);
        REMO_CHECK_MSG(view->version() >= last_version,
                       "published view version went backwards");
        last_version = view->version();
        const StateWord first = view->at(v);
        REMO_CHECK_MSG(first == view->at(v), "pinned view answer not frozen");
        (void)qs.reachable(id, v);
      }
    });
    engine.ingest(split_events_keyed(fc.events, c.streams, fc.seed));
    ingest_done.store(true, std::memory_order_release);
    observer.join();
    qs.stop();
  } else {
    engine.ingest(split_events_keyed(fc.events, c.streams, fc.seed));
  }
  // Weighted SSSP needs the repair wave even in add-only streams: a weight
  // *increase* on a parent edge marks the child dirty exactly like a delete
  // does. PageRank never needs one — the memo-delta policy absorbs every
  // mutation locally (repair would be a harmless no-op).
  if (c.algo == Algo::kWsssp || (has_deletes && c.algo != Algo::kPagerank))
    engine.repair(id);

  // --- Differential check against the static oracle -----------------------
  RunResult rr;
  const EdgeList surviving = surviving_edges(fc.events);
  rr.surviving_edges = surviving.size();
  const CsrGraph g = CsrGraph::build(with_reverse_edges(surviving));
  const CsrGraph::Dense s = g.dense_of(fc.source);
  const StateWord identity = engine.program(id).identity();

  std::vector<StateWord> oracle;
  switch (c.algo) {
    case Algo::kBfs:
      if (s != CsrGraph::kNoVertex) oracle = static_bfs(g, s);
      break;
    case Algo::kSssp:
    case Algo::kWsssp:
      if (s != CsrGraph::kNoVertex) oracle = static_sssp_dijkstra(g, s);
      break;
    case Algo::kCc:
      oracle = static_cc_union_find(g);
      break;
    case Algo::kSt:
      if (s != CsrGraph::kNoVertex) oracle = static_multi_st(g, {s});
      break;
    case Algo::kPagerank:
      // Stored as raw IEEE bits so the uniform StateWord plumbing (and the
      // repro format) carries them; the comparator decodes.
      for (const double r : static_pagerank(g))
        oracle.push_back(std::bit_cast<StateWord>(r));
      break;
  }

  // Integer-state algorithms diff exactly; PageRank converges to within
  // its publish tolerance of the oracle fixpoint, so its states compare as
  // decoded doubles under kPagerankAtol (identity bits decode to the base
  // mass an untouched/orphaned vertex holds).
  auto states_equal = [&](StateWord got, StateWord want) {
    if (c.algo != Algo::kPagerank) return got == want;
    const PageRankDelta pr;
    return std::abs(pr.rank_of(got) - pr.rank_of(want)) <= kPagerankAtol;
  };

  auto check = [&](VertexId ext, StateWord want) {
    ++rr.vertices_checked;
    const StateWord got = engine.state_of(id, ext);
    if (!states_equal(got, want)) rr.divergences.push_back(Divergence{ext, got, want});
  };

  // Every vertex of the surviving graph. When heavy deletion isolated the
  // source entirely (oracle empty for the source-rooted algorithms),
  // nothing is reachable: every survivor must sit at identity.
  for (CsrGraph::Dense v = 0; v < g.num_vertices(); ++v) {
    const VertexId ext = g.external_of(v);
    if (ext == fc.source) continue;  // handled below, survivor or not
    check(ext, oracle.empty() ? identity : oracle[v]);
  }

  // The source itself (source-rooted algorithms only; CC has no source and
  // its vertex set is exactly the survivors). An isolated source keeps its
  // init state: level/distance 1, or source-bit 1 for multi-ST.
  switch (c.algo) {
    case Algo::kBfs:
    case Algo::kSssp:
    case Algo::kWsssp:
      check(fc.source, s != CsrGraph::kNoVertex ? oracle[s] : 1);
      break;
    case Algo::kSt:
      check(fc.source, s != CsrGraph::kNoVertex ? oracle[s] : 1);
      break;
    case Algo::kCc:
      if (s != CsrGraph::kNoVertex) check(fc.source, oracle[s]);
      break;
    case Algo::kPagerank:
      // No distinguished source, but fc.source is a real vertex the main
      // loop skipped: a survivor diffs against its oracle rank, an
      // isolated one must have retracted back to the base mass (identity
      // decodes to exactly that).
      check(fc.source, s != CsrGraph::kNoVertex ? oracle[s] : identity);
      break;
  }

  // Orphans: vertices that appeared in events but lost every edge. The
  // repair wave must have returned them to identity (delete-capable
  // algorithms only — add-only streams cannot orphan a vertex).
  if (has_deletes) {
    RobinHoodMap<VertexId, std::uint8_t> seen;
    for (const EdgeEvent& e : fc.events) {
      seen.insert_or_assign(e.src, 1);
      seen.insert_or_assign(e.dst, 1);
    }
    seen.for_each([&](const VertexId& ext, std::uint8_t&) {
      if (ext == fc.source) return;
      if (g.dense_of(ext) != CsrGraph::kNoVertex) return;
      check(ext, identity);
    });
  }

  std::sort(rr.divergences.begin(), rr.divergences.end(),
            [](const Divergence& a, const Divergence& b) {
              return a.vertex < b.vertex;
            });
  return rr;
}

std::string describe(const FuzzCase& fc) {
  const CaseConfig& c = fc.config;
  return strfmt(
      "seed=%llu algo=%s ranks=%u term=%s coalesce=%d batch=%u ring=%u "
      "chunk=%u chaos=%uus events=%zu",
      static_cast<unsigned long long>(fc.seed), algo_name(c.algo), c.ranks,
      c.termination == TerminationMode::kSafra ? "safra" : "counting",
      c.coalesce ? 1 : 0, c.batch_size, c.ring_capacity, c.stream_chunk,
      c.chaos_delay_us, fc.events.size());
}

CampaignResult run_campaign(const CampaignOptions& opts) {
  CampaignResult res;
  for (std::uint64_t i = 0; i < opts.num_cases; ++i) {
    FuzzCase fc = make_case_indexed(i, opts.base_seed, opts.gen);
    if (opts.force_algo) retarget_algo(fc, *opts.force_algo, opts.gen);
    const RunResult rr = run_case(fc, opts.run);
    ++res.cases_run;
    const bool keep_going = !opts.on_case || opts.on_case(fc, rr);
    if (!rr.ok()) {
      res.failures.push_back(fc);
      res.failure_results.push_back(rr);
    }
    if (!keep_going) break;
  }
  return res;
}

}  // namespace remo::fuzz
