// remo::fuzz — seeded differential testing of the incremental engine.
//
// The paper's central correctness claim (Section II-D) is that REMO's
// event-driven state monotonically converges to the deterministic answer
// for the graph-so-far, regardless of how events interleave across ranks.
// This subsystem turns that claim into a machine-checked property: a
// seeded generator produces a randomized add/delete event stream plus a
// randomized EngineConfig (rank count, both termination detectors,
// coalescing on/off, ring capacity, batch size, chaos delays, ...), the
// runner drives it to quiescence, and every vertex's converged state is
// diffed against the matching static oracle in src/graph. A divergence is
// a reproducible engine bug: the (seed, config, event stream) triple is
// self-contained, serialisable (repro.hpp), and shrinkable (shrink.hpp).
//
// Determinism contract: the *converged state* is a pure function of the
// event multiset (that is the property under test), so replaying a case
// reproduces the identical state diff on every run even though thread
// schedules vary. The schedule itself is additionally seed-derived via
// EngineConfig::DebugHooks::schedule_seed, so replays explore the same
// interleaving neighbourhood; with ranks == 1 execution is exactly
// deterministic. docs/TESTING.md is the full treatment.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/engine_config.hpp"
#include "gen/stream.hpp"
#include "graph/edge_list.hpp"

namespace remo::fuzz {

/// Which engine algorithm a case runs — each diffs against its own static
/// oracle (static_bfs / static_sssp_dijkstra / static_cc_union_find /
/// static_multi_st / static_pagerank).
enum class Algo : std::uint8_t {
  kBfs = 0,
  kSssp = 1,
  kCc = 2,
  kSt = 3,
  kPagerank = 4,  ///< non-monotone memo-delta family (DESIGN.md §8)
  kWsssp = 5,     ///< weighted SSSP with weight increases AND decreases
};
inline constexpr std::uint32_t kNumAlgos = 6;

const char* algo_name(Algo a) noexcept;
bool algo_from_name(const std::string& name, Algo& out) noexcept;

/// Deletes (and the repair wave they need) are only meaningful for the
/// delete-capable programs; CC and multi-ST streams are add-only.
inline bool algo_supports_deletes(Algo a) noexcept {
  return a == Algo::kBfs || a == Algo::kSssp || a == Algo::kPagerank ||
         a == Algo::kWsssp;
}

/// The deletion-capable non-monotone family additionally ingests weight
/// *mutations*: re-adds of a live pair with a different weight, which the
/// engine routes to on_weight_change. For the legacy monotone family the
/// generator keeps weights a pure function of the endpoint pair (a
/// duplicate add with a differing weight would make the converged state
/// depend on arrival order — a generator artefact, not an engine bug);
/// these two programs are exactly the ones whose semantics make the
/// last-write weight well-defined, so their streams may vary it per event.
inline bool algo_mutates_weights(Algo a) noexcept {
  return a == Algo::kPagerank || a == Algo::kWsssp;
}

/// PageRank converges to within its publish tolerance of the fixpoint, not
/// to bit-equality with the oracle — its states diff under this absolute
/// tolerance (decoded doubles). Every integer-state algorithm stays exact.
inline constexpr double kPagerankAtol = 1e-5;

/// Every EngineConfig knob a case randomizes, in repro-serialisable form.
/// `schedule_seed`/`drop_nth_update` map onto EngineConfig::DebugHooks.
struct CaseConfig {
  Algo algo = Algo::kBfs;
  std::uint32_t ranks = 2;
  std::uint32_t streams = 2;
  TerminationMode termination = TerminationMode::kCounting;
  bool coalesce = true;
  std::uint32_t batch_size = 128;
  std::uint32_t ring_capacity = 16384;
  std::uint32_t stream_chunk = 64;
  std::uint32_t chaos_delay_us = 0;
  bool nbr_cache_filter = true;
  std::uint32_t promote_threshold = 8;
  std::uint64_t schedule_seed = 0;
  std::uint32_t drop_nth_update = 0;  // fault injection (self-test only)

  friend bool operator==(const CaseConfig&, const CaseConfig&) = default;
};

/// A self-contained fuzz case: everything needed to replay a run
/// byte-for-byte. `events` is the generation-order stream; the runner
/// splits it with split_events_keyed(events, config.streams, seed), so the
/// per-stream assignment is a pure function of this struct.
struct FuzzCase {
  std::uint64_t seed = 0;
  CaseConfig config;
  VertexId source = 0;
  std::vector<EdgeEvent> events;

  friend bool operator==(const FuzzCase&, const FuzzCase&) = default;
};

/// Generator tuning.
struct GenOptions {
  std::uint32_t num_vertices = 96;
  std::uint32_t num_events = 600;
  /// Per-event delete probability (‰) where the algorithm supports
  /// deletes; a small slice of these target already-absent edges (no-op
  /// hazard coverage).
  std::uint32_t delete_permille = 250;
  /// Per-event probability (‰) of deliberately re-adding a live pair with
  /// a fresh weight — a weight change — for the algo_mutates_weights
  /// family (organic duplicate adds provide more on top).
  std::uint32_t mutate_permille = 250;
  Weight max_weight = 8;
};

/// Build the case for `seed`: random events plus random config knobs.
/// Deterministic — identical seed and options yield an identical case.
FuzzCase make_case(std::uint64_t seed, const GenOptions& opts = {});

/// As make_case, but the big axes are cycled from the case index so that
/// every window of 48 consecutive indices covers the full
/// {6 algorithms} x {1,2,4,8 ranks} x {both detectors} matrix exactly
/// (the remaining knobs stay seed-random). This is what `remo fuzz` runs.
FuzzCase make_case_indexed(std::uint64_t index, std::uint64_t base_seed,
                           const GenOptions& opts = {});

/// One vertex whose converged state disagrees with the oracle.
struct Divergence {
  VertexId vertex = 0;
  StateWord got = 0;
  StateWord want = 0;

  friend bool operator==(const Divergence&, const Divergence&) = default;
};

struct RunResult {
  std::vector<Divergence> divergences;  ///< sorted by vertex id
  std::size_t vertices_checked = 0;
  std::size_t surviving_edges = 0;
  bool ok() const noexcept { return divergences.empty(); }
};

/// Runner knobs that are NOT part of the case identity (they never change
/// the verdict or the repro serialisation — a repro replays byte-for-byte
/// with or without them).
struct RunOptions {
  /// Query-observer mode (`remo fuzz --query-observer`): while the case
  /// ingests, a serve::QueryService auto-refreshes versioned views of the
  /// program and an observer thread hammers the point-query catalog,
  /// checking every pinned view for internal consistency (frozen answers,
  /// monotone versions). Adds serving-plane interleavings to the fuzzed
  /// schedule space; off by default because it roughly doubles a case's
  /// wall-clock. docs/TESTING.md §fuzzing covers the interplay.
  bool query_observer = false;

  friend bool operator==(const RunOptions&, const RunOptions&) = default;
};

/// Replay a case to quiescence and diff against the static oracle.
/// Deterministic in its verdict: the converged state is
/// schedule-independent, so the divergence list is identical on every
/// replay of the same case (RunOptions never affect it).
RunResult run_case(const FuzzCase& fc, const RunOptions& run = {});

/// The final topology a case's event stream describes: fold per unordered
/// pair in generation order (the keyed split serialises each pair onto one
/// stream, so this order is the one the engine observes). This is the
/// graph the static oracles run on.
EdgeList surviving_edges(const std::vector<EdgeEvent>& events);

/// Human-readable one-line summary of a case's config (logs, CLI).
std::string describe(const FuzzCase& fc);

/// Batch driver: run cases [0, num_cases) via make_case_indexed and
/// collect the failures. `on_case` (optional) observes every result as it
/// lands — the CLI uses it for progress output and early exit.
struct CampaignOptions {
  std::uint64_t base_seed = 1;
  std::uint32_t num_cases = 50;
  GenOptions gen{};
  RunOptions run{};
  /// Pin every case to one algorithm instead of cycling the matrix
  /// (`remo fuzz --algo`); the event stream is regenerated to match the
  /// pinned algorithm's delete/weight-mutation profile.
  std::optional<Algo> force_algo;
  /// Return false to stop the campaign after this case.
  std::function<bool(const FuzzCase&, const RunResult&)> on_case;
};

struct CampaignResult {
  std::uint32_t cases_run = 0;
  std::vector<FuzzCase> failures;
  std::vector<RunResult> failure_results;
};

CampaignResult run_campaign(const CampaignOptions& opts);

}  // namespace remo::fuzz
