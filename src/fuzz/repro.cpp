#include "fuzz/repro.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "common/strfmt.hpp"

namespace remo::fuzz {
namespace {

const char* termination_name(TerminationMode m) noexcept {
  return m == TerminationMode::kSafra ? "safra" : "counting";
}

bool termination_from_name(const std::string& s, TerminationMode& out) {
  if (s == "counting") {
    out = TerminationMode::kCounting;
    return true;
  }
  if (s == "safra") {
    out = TerminationMode::kSafra;
    return true;
  }
  return false;
}

bool fail(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
  return false;
}

// Strict unsigned parse: the whole token must be digits (no sign, no
// trailing junk) so a hand-edited repro with a typo is rejected loudly.
bool parse_u64(const std::string& tok, std::uint64_t& out) {
  if (tok.empty() || tok.size() > 20) return false;
  std::uint64_t v = 0;
  for (const char ch : tok) {
    if (ch < '0' || ch > '9') return false;
    const std::uint64_t d = static_cast<std::uint64_t>(ch - '0');
    if (v > (UINT64_MAX - d) / 10) return false;
    v = v * 10 + d;
  }
  out = v;
  return true;
}

bool parse_u32(const std::string& tok, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(tok, v) || v > UINT32_MAX) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

bool parse_bool(const std::string& tok, bool& out) {
  if (tok == "0") {
    out = false;
    return true;
  }
  if (tok == "1") {
    out = true;
    return true;
  }
  return false;
}

}  // namespace

std::string repro_to_text(const FuzzCase& fc) {
  const CaseConfig& c = fc.config;
  std::string out;
  out.reserve(256 + fc.events.size() * 16);
  out += kReproMagic;
  out += '\n';
  auto kv = [&out](const char* key, const std::string& value) {
    out += key;
    out += ' ';
    out += value;
    out += '\n';
  };
  kv("seed", std::to_string(fc.seed));
  kv("algo", algo_name(c.algo));
  kv("ranks", std::to_string(c.ranks));
  kv("streams", std::to_string(c.streams));
  kv("termination", termination_name(c.termination));
  kv("coalesce", c.coalesce ? "1" : "0");
  kv("batch_size", std::to_string(c.batch_size));
  kv("ring_capacity", std::to_string(c.ring_capacity));
  kv("stream_chunk", std::to_string(c.stream_chunk));
  kv("chaos_delay_us", std::to_string(c.chaos_delay_us));
  kv("nbr_cache_filter", c.nbr_cache_filter ? "1" : "0");
  kv("promote_threshold", std::to_string(c.promote_threshold));
  kv("schedule_seed", std::to_string(c.schedule_seed));
  kv("drop_nth_update", std::to_string(c.drop_nth_update));
  kv("source", std::to_string(fc.source));
  kv("events", std::to_string(fc.events.size()));
  for (const EdgeEvent& e : fc.events) {
    out += e.op == EdgeOp::kAdd ? 'a' : 'd';
    out += ' ';
    out += std::to_string(e.src);
    out += ' ';
    out += std::to_string(e.dst);
    out += ' ';
    out += std::to_string(e.weight);
    out += '\n';
  }
  return out;
}

bool repro_from_text(const std::string& text, FuzzCase& out,
                     std::string* error) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kReproMagic)
    return fail(error, strfmt("bad magic: expected \"%s\"", kReproMagic));

  FuzzCase fc;
  CaseConfig& c = fc.config;
  // Track which keys landed so a truncated header is an error, not a
  // silently defaulted config.
  bool seen[16] = {};
  std::size_t num_events = 0;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) return fail(error, strfmt("line %zu: empty line", line_no));
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos)
      return fail(error, strfmt("line %zu: expected \"key value\"", line_no));
    const std::string key = line.substr(0, sp);
    const std::string val = line.substr(sp + 1);
    bool ok = true;
    if (key == "seed") {
      ok = parse_u64(val, fc.seed);
      seen[0] = true;
    } else if (key == "algo") {
      ok = algo_from_name(val, c.algo);
      seen[1] = true;
    } else if (key == "ranks") {
      ok = parse_u32(val, c.ranks) && c.ranks >= 1;
      seen[2] = true;
    } else if (key == "streams") {
      ok = parse_u32(val, c.streams) && c.streams >= 1;
      seen[3] = true;
    } else if (key == "termination") {
      ok = termination_from_name(val, c.termination);
      seen[4] = true;
    } else if (key == "coalesce") {
      ok = parse_bool(val, c.coalesce);
      seen[5] = true;
    } else if (key == "batch_size") {
      ok = parse_u32(val, c.batch_size) && c.batch_size >= 1;
      seen[6] = true;
    } else if (key == "ring_capacity") {
      ok = parse_u32(val, c.ring_capacity) && c.ring_capacity >= 2;
      seen[7] = true;
    } else if (key == "stream_chunk") {
      ok = parse_u32(val, c.stream_chunk) && c.stream_chunk >= 1;
      seen[8] = true;
    } else if (key == "chaos_delay_us") {
      ok = parse_u32(val, c.chaos_delay_us);
      seen[9] = true;
    } else if (key == "nbr_cache_filter") {
      ok = parse_bool(val, c.nbr_cache_filter);
      seen[10] = true;
    } else if (key == "promote_threshold") {
      ok = parse_u32(val, c.promote_threshold) && c.promote_threshold >= 1;
      seen[11] = true;
    } else if (key == "schedule_seed") {
      ok = parse_u64(val, c.schedule_seed);
      seen[12] = true;
    } else if (key == "drop_nth_update") {
      ok = parse_u32(val, c.drop_nth_update);
      seen[13] = true;
    } else if (key == "source") {
      ok = parse_u64(val, fc.source);
      seen[14] = true;
    } else if (key == "events") {
      std::uint64_t n = 0;
      ok = parse_u64(val, n);
      seen[15] = true;
      if (ok) {
        num_events = static_cast<std::size_t>(n);
        break;  // event lines follow
      }
    } else {
      return fail(error, strfmt("line %zu: unknown key \"%s\"", line_no,
                                key.c_str()));
    }
    if (!ok)
      return fail(error, strfmt("line %zu: bad value for \"%s\"", line_no,
                                key.c_str()));
  }
  for (std::size_t i = 0; i < 16; ++i) {
    if (!seen[i]) {
      static const char* kKeys[16] = {
          "seed",           "algo",          "ranks",
          "streams",        "termination",   "coalesce",
          "batch_size",     "ring_capacity", "stream_chunk",
          "chaos_delay_us", "nbr_cache_filter", "promote_threshold",
          "schedule_seed",  "drop_nth_update",  "source",
          "events"};
      return fail(error, strfmt("missing key \"%s\"", kKeys[i]));
    }
  }

  fc.events.reserve(num_events);
  while (std::getline(in, line)) {
    ++line_no;
    if (fc.events.size() == num_events)
      return fail(error, strfmt("line %zu: more than %zu event lines", line_no,
                                num_events));
    std::istringstream ls(line);
    std::string op, src, dst, weight, extra;
    if (!(ls >> op >> src >> dst >> weight) || (ls >> extra) ||
        (op != "a" && op != "d"))
      return fail(error,
                  strfmt("line %zu: expected \"a|d <src> <dst> <weight>\"",
                         line_no));
    EdgeEvent e;
    e.op = op == "a" ? EdgeOp::kAdd : EdgeOp::kDelete;
    std::uint32_t w = 0;
    if (!parse_u64(src, e.src) || !parse_u64(dst, e.dst) ||
        !parse_u32(weight, w))
      return fail(error, strfmt("line %zu: bad event operand", line_no));
    e.weight = w;
    fc.events.push_back(e);
  }
  if (fc.events.size() != num_events)
    return fail(error, strfmt("expected %zu event lines, found %zu", num_events,
                              fc.events.size()));
  out = std::move(fc);
  return true;
}

bool write_repro(const std::string& path, const FuzzCase& fc,
                 std::string* error) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return fail(error, strfmt("cannot open %s for write", path.c_str()));
  const std::string text = repro_to_text(fc);
  f.write(text.data(), static_cast<std::streamsize>(text.size()));
  f.flush();
  if (!f) return fail(error, strfmt("write to %s failed", path.c_str()));
  return true;
}

bool read_repro(const std::string& path, FuzzCase& out, std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return fail(error, strfmt("cannot open %s", path.c_str()));
  std::ostringstream ss;
  ss << f.rdbuf();
  return repro_from_text(ss.str(), out, error);
}

}  // namespace remo::fuzz
