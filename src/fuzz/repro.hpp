// remo-repro-1 — the self-contained fuzz repro file format.
//
// A repro captures everything run_case needs: the seed, every randomized
// config knob, the source vertex, and the full generation-order event
// stream. The format is line-oriented text so repros diff cleanly in
// review and survive being pasted into bug reports:
//
//   remo-repro-1
//   seed 12345
//   algo bfs
//   ranks 4
//   streams 4
//   termination counting
//   coalesce 1
//   batch_size 128
//   ring_capacity 64
//   stream_chunk 16
//   chaos_delay_us 20
//   nbr_cache_filter 1
//   promote_threshold 8
//   schedule_seed 987654321
//   drop_nth_update 0
//   source 17
//   events 3
//   a 17 4 2
//   a 4 9 1
//   d 17 4 2
//
// Event lines are `a|d <src> <dst> <weight>`. The serialisation is
// canonical: parse(to_text(fc)) == fc and to_text(parse(text)) == text for
// any writer-produced text, so replays are byte-for-byte reproducible
// (docs/TESTING.md, "Repro files").
#pragma once

#include <string>

#include "fuzz/fuzz.hpp"

namespace remo::fuzz {

inline constexpr const char* kReproMagic = "remo-repro-1";

/// Canonical text form of a case.
std::string repro_to_text(const FuzzCase& fc);

/// Parse a repro. Returns false (and sets `*error` when non-null) on any
/// malformed input: wrong magic, missing/unknown keys, bad event lines, or
/// an event count that disagrees with the header.
bool repro_from_text(const std::string& text, FuzzCase& out,
                     std::string* error = nullptr);

/// File convenience wrappers around the text form.
bool write_repro(const std::string& path, const FuzzCase& fc,
                 std::string* error = nullptr);
bool read_repro(const std::string& path, FuzzCase& out,
                std::string* error = nullptr);

}  // namespace remo::fuzz
