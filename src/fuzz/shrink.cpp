#include "fuzz/shrink.hpp"

#include <algorithm>
#include <cstddef>

namespace remo::fuzz {

std::vector<EdgeEvent> shrink_events(std::vector<EdgeEvent> events,
                                     const FailPredicate& still_fails,
                                     ShrinkStats* stats,
                                     std::size_t max_runs) {
  ShrinkStats local;
  ShrinkStats& st = stats ? *stats : local;
  st = ShrinkStats{};
  st.original_size = events.size();

  std::size_t chunk = events.size() / 2;
  if (chunk == 0) chunk = 1;
  while (!events.empty()) {
    bool removed_any = false;
    std::size_t start = 0;
    while (start < events.size()) {
      if (st.runs >= max_runs) {
        st.budget_exhausted = true;
        st.final_size = events.size();
        return events;
      }
      const std::size_t len = std::min(chunk, events.size() - start);
      std::vector<EdgeEvent> candidate;
      candidate.reserve(events.size() - len);
      candidate.insert(candidate.end(), events.begin(),
                       events.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(
          candidate.end(),
          events.begin() + static_cast<std::ptrdiff_t>(start + len),
          events.end());
      ++st.runs;
      if (still_fails(candidate)) {
        events = std::move(candidate);
        removed_any = true;
        // Do NOT advance: the chunk now starting at `start` is untested.
      } else {
        start += len;
      }
    }
    if (chunk == 1 && !removed_any) break;  // 1-minimal
    if (chunk > 1) chunk = chunk / 2;
  }
  st.final_size = events.size();
  return events;
}

}  // namespace remo::fuzz
