// Greedy event-stream minimisation (ddmin-style).
//
// A fresh divergence repro typically carries hundreds of events, almost
// all irrelevant. The shrinker repeatedly deletes contiguous chunks of the
// event stream — halving the chunk size whenever a full pass removes
// nothing — and keeps a deletion iff the case still fails under the
// caller's predicate. Deletion can only shrink per-pair histories (it
// never reorders them), so every candidate remains a well-formed stream
// for the keyed split, and the result is 1-minimal at chunk size 1: no
// single remaining event can be removed without losing the failure.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gen/stream.hpp"

namespace remo::fuzz {

/// Returns true when the candidate event stream still reproduces the
/// failure. Each invocation typically replays a full engine run, so the
/// shrinker budgets predicate calls, not wall time.
using FailPredicate = std::function<bool(const std::vector<EdgeEvent>&)>;

struct ShrinkStats {
  std::size_t runs = 0;           ///< predicate invocations
  std::size_t original_size = 0;  ///< events in the input stream
  std::size_t final_size = 0;     ///< events in the shrunk stream
  bool budget_exhausted = false;  ///< stopped on max_runs, not convergence
};

/// Minimise `events` with respect to `still_fails`. The input MUST fail
/// the predicate already (callers pass a known-bad repro). Stops when a
/// full chunk-size-1 pass removes nothing, or after `max_runs` predicate
/// calls.
std::vector<EdgeEvent> shrink_events(std::vector<EdgeEvent> events,
                                     const FailPredicate& still_fails,
                                     ShrinkStats* stats = nullptr,
                                     std::size_t max_runs = 400);

}  // namespace remo::fuzz
