#include "gen/datasets.hpp"

#include <cstdlib>

#include "gen/pref_attach.hpp"
#include "gen/rmat.hpp"

namespace remo {
namespace {

std::uint64_t shifted(std::uint64_t base, int shift) {
  return shift >= 0 ? base << shift : base >> (-shift);
}

}  // namespace

Dataset make_synth_twitter(const DatasetScale& s) {
  PrefAttachParams p;
  p.num_vertices = shifted(std::uint64_t{1} << 15, s.scale_shift);
  p.edges_per_vertex = 16;
  p.seed = s.seed;
  return Dataset{"synth-twitter", "Twitter [20]", /*undirected=*/true,
                 generate_pref_attach(p)};
}

Dataset make_synth_friendster(const DatasetScale& s) {
  PrefAttachParams p;
  p.num_vertices = shifted(std::uint64_t{1} << 16, s.scale_shift);
  p.edges_per_vertex = 24;
  p.seed = s.seed + 1;
  return Dataset{"synth-friendster", "Friendster [25]", /*undirected=*/true,
                 generate_pref_attach(p)};
}

Dataset make_synth_web(const DatasetScale& s) {
  RmatParams p;
  p.scale = static_cast<std::uint32_t>(15 + s.scale_shift);
  p.edge_factor = 20;
  p.a = 0.65;
  p.b = 0.15;
  p.c = 0.15;
  p.seed = s.seed + 2;
  return Dataset{"synth-web", "SK2005 [26] / Webgraph [27]", /*undirected=*/true,
                 generate_rmat(p)};
}

Dataset make_rmat(std::uint32_t scale, std::uint64_t seed) {
  RmatParams p;
  p.scale = scale;
  p.seed = seed;
  Dataset d{"rmat-" + std::to_string(scale), "RMAT(" + std::to_string(scale) + ")",
            /*undirected=*/true, generate_rmat(p)};
  return d;
}

std::vector<Dataset> table1_datasets(const DatasetScale& s) {
  std::vector<Dataset> out;
  out.push_back(make_synth_friendster(s));
  out.push_back(make_synth_twitter(s));
  out.push_back(make_synth_web(s));
  out.push_back(make_rmat(static_cast<std::uint32_t>(15 + s.scale_shift), s.seed));
  return out;
}

DatasetScale bench_scale_from_env() {
  DatasetScale s;
  if (const char* env = std::getenv("REMO_BENCH_SCALE")) s.scale_shift = std::atoi(env);
  return s;
}

}  // namespace remo
