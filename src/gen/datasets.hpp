// Named synthetic dataset registry — the stand-ins for Table I.
//
// The paper evaluates on Friendster, Twitter, SK2005, Webgraph and RMAT.
// The real datasets are not available offline; per DESIGN.md §3 we
// substitute generators that reproduce their structural character (heavy
// power-law tails for the social graphs, deeper/sparser skew for the web
// crawls) at a scale the host can hold. Every dataset accepts a scale knob
// so benches can shrink or grow uniformly (REMO_BENCH_SCALE).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"

namespace remo {

struct Dataset {
  std::string name;        ///< e.g. "synth-twitter"
  std::string stands_for;  ///< the paper dataset it substitutes
  bool undirected = true;
  EdgeList edges;          ///< directed half; reverse via engine/CSR
};

/// Scale parameter: vertex counts are multiplied by 2^(scale_shift).
/// scale_shift 0 is the default bench size (fits a laptop-class host).
struct DatasetScale {
  int scale_shift = 0;
  std::uint64_t seed = 1;
};

/// synth-twitter: preferential attachment, ~2^16 vertices x 16 edges.
Dataset make_synth_twitter(const DatasetScale& s = {});

/// synth-friendster: preferential attachment, larger and denser tail.
Dataset make_synth_friendster(const DatasetScale& s = {});

/// synth-web: RMAT with stronger skew (a=0.65) — SK2005/Webgraph stand-in.
Dataset make_synth_web(const DatasetScale& s = {});

/// rmat-<scale>: Graph500-parameter RMAT.
Dataset make_rmat(std::uint32_t scale, std::uint64_t seed = 1);

/// All four Table-I-style datasets at the given scale.
std::vector<Dataset> table1_datasets(const DatasetScale& s = {});

/// Reads REMO_BENCH_SCALE from the environment (default 0) so every bench
/// binary scales uniformly.
DatasetScale bench_scale_from_env();

}  // namespace remo
