#include "gen/erdos_renyi.hpp"

#include "common/rng.hpp"

namespace remo {

EdgeList generate_erdos_renyi(const ErdosRenyiParams& p) {
  Xoshiro256 rng(p.seed);
  EdgeList edges;
  edges.reserve(p.num_edges);
  for (std::uint64_t i = 0; i < p.num_edges; ++i) {
    VertexId src = rng.bounded(p.num_vertices);
    VertexId dst = rng.bounded(p.num_vertices);
    if (!p.allow_self_loops) {
      while (dst == src) dst = rng.bounded(p.num_vertices);
    }
    edges.push_back(Edge{src, dst, kDefaultWeight});
  }
  return edges;
}

}  // namespace remo
