// Erdos-Renyi G(n, m): m uniformly random directed edges over n vertices.
// Used by tests as a structure-free counterpoint to the scale-free
// generators (RMAT / preferential attachment).
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace remo {

struct ErdosRenyiParams {
  std::uint64_t num_vertices = 1024;
  std::uint64_t num_edges = 8192;
  bool allow_self_loops = false;
  std::uint64_t seed = 1;
};

EdgeList generate_erdos_renyi(const ErdosRenyiParams& params);

}  // namespace remo
