#include "gen/pref_attach.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace remo {

EdgeList generate_pref_attach(const PrefAttachParams& p) {
  REMO_CHECK(p.seed_clique >= 2);
  REMO_CHECK(p.num_vertices >= p.seed_clique);
  Xoshiro256 rng(p.seed);

  EdgeList edges;
  edges.reserve(p.num_vertices * p.edges_per_vertex);

  // Degree-proportional sampling via the endpoint-list trick: picking a
  // uniformly random endpoint of a uniformly random existing edge selects
  // a vertex with probability proportional to its degree.
  std::vector<VertexId> endpoints;
  endpoints.reserve(2 * p.num_vertices * p.edges_per_vertex);

  auto add_edge = [&](VertexId u, VertexId v) {
    edges.push_back(Edge{u, v, kDefaultWeight});
    endpoints.push_back(u);
    endpoints.push_back(v);
  };

  for (std::uint32_t i = 0; i < p.seed_clique; ++i)
    for (std::uint32_t j = i + 1; j < p.seed_clique; ++j) add_edge(i, j);

  for (VertexId v = p.seed_clique; v < p.num_vertices; ++v) {
    const std::uint32_t m =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(p.edges_per_vertex, v));
    for (std::uint32_t k = 0; k < m; ++k) {
      VertexId target = endpoints[rng.bounded(endpoints.size())];
      if (target == v) target = endpoints[rng.bounded(endpoints.size())];
      add_edge(v, target);
    }
  }
  return edges;
}

}  // namespace remo
