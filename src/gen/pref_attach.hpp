// Preferential attachment (Barabasi-Albert style) generator.
//
// Stand-in for the paper's social-network datasets (Twitter, Friendster):
// each arriving vertex attaches `edges_per_vertex` edges to endpoints
// sampled proportionally to degree, producing the heavy-tailed degree
// distribution that drives the paper's load-balance observations. Unlike
// shuffled RMAT streams, emitting edges in attachment order also gives a
// *naturally incremental* stream: a vertex's edges appear when the vertex
// "joins the network", like real social-graph event feeds.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace remo {

struct PrefAttachParams {
  std::uint64_t num_vertices = 1 << 16;
  std::uint32_t edges_per_vertex = 16;
  /// Size of the fully connected seed clique.
  std::uint32_t seed_clique = 4;
  std::uint64_t seed = 1;
};

EdgeList generate_pref_attach(const PrefAttachParams& params);

}  // namespace remo
