#include "gen/rmat.hpp"

#include "common/hash.hpp"
#include "common/rng.hpp"

namespace remo {

EdgeList generate_rmat(const RmatParams& p) {
  Xoshiro256 rng(p.seed);
  const std::uint64_t n = std::uint64_t{1} << p.scale;
  const std::uint64_t m = n * p.edge_factor;

  EdgeList edges;
  edges.reserve(m);

  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t src = 0, dst = 0;
    for (std::uint32_t bit = 0; bit < p.scale; ++bit) {
      // Jitter the quadrant probabilities per level.
      const double na = p.a * (1.0 - p.noise + 2.0 * p.noise * rng.uniform());
      const double nb = p.b * (1.0 - p.noise + 2.0 * p.noise * rng.uniform());
      const double nc = p.c * (1.0 - p.noise + 2.0 * p.noise * rng.uniform());
      const double nd = (1.0 - p.a - p.b - p.c) *
                        (1.0 - p.noise + 2.0 * p.noise * rng.uniform());
      const double total = na + nb + nc + nd;
      const double r = rng.uniform() * total;
      src <<= 1;
      dst <<= 1;
      if (r < na) {
        // top-left quadrant: no bits
      } else if (r < na + nb) {
        dst |= 1;
      } else if (r < na + nb + nc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    if (p.scramble_ids) {
      // Bijective within the 2^scale id space: hash then mask keeps
      // collisions possible, so instead use a Feistel-free approach —
      // multiply by an odd constant mod 2^scale (a bijection) after a
      // xor-shift, both invertible.
      const std::uint64_t mask = n - 1;
      auto scramble = [&](std::uint64_t x) {
        x ^= x >> (p.scale / 2 + 1);
        x = (x * 0x9e3779b97f4a7c15ULL) & mask;  // odd multiplier: bijection mod 2^scale
        return x;
      };
      src = scramble(src);
      dst = scramble(dst);
    }
    edges.push_back(Edge{src, dst, kDefaultWeight});
  }
  return edges;
}

}  // namespace remo
