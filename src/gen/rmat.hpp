// RMAT (Recursive MATrix) generator with Graph500 parameters.
//
// Table I: "RMAT graphs (Graph500 parameters) have a 16x undirected (32x
// directed) edge factor". RMAT(SCALE) has 2^SCALE vertices and
// 2^SCALE * edgefactor edges before reversal.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace remo {

struct RmatParams {
  std::uint32_t scale = 16;       ///< 2^scale vertices
  std::uint32_t edge_factor = 16; ///< edges per vertex (undirected count)
  double a = 0.57, b = 0.19, c = 0.19;  ///< Graph500; d = 1-a-b-c
  /// Per-level parameter noise, as in the Graph500 reference generator.
  /// Breaks up the artificial self-similarity of pure RMAT.
  double noise = 0.05;
  /// Scramble vertex ids (splitmix64 permutation) so that vertex id order
  /// carries no degree information — matters for consistent hashing.
  bool scramble_ids = true;
  std::uint64_t seed = 1;
};

/// Generate the directed half of an RMAT graph: scale^2 vertices,
/// edge_factor * 2^scale edges (callers add reverse edges for the
/// undirected datasets, matching the paper's "made undirected with reverse
/// edges where needed").
EdgeList generate_rmat(const RmatParams& params);

}  // namespace remo
