#include "gen/stream.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace remo {
namespace {

std::vector<EdgeStream> round_robin(std::vector<EdgeEvent>& events,
                                    std::size_t num_streams) {
  std::vector<std::vector<EdgeEvent>> parts(num_streams);
  for (auto& p : parts) p.reserve(events.size() / num_streams + 1);
  for (std::size_t i = 0; i < events.size(); ++i)
    parts[i % num_streams].push_back(events[i]);
  std::vector<EdgeStream> streams;
  streams.reserve(num_streams);
  for (auto& p : parts) streams.emplace_back(std::move(p));
  return streams;
}

void fisher_yates(std::vector<EdgeEvent>& events, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (std::size_t i = events.size(); i > 1; --i)
    std::swap(events[i - 1], events[rng.bounded(i)]);
}

}  // namespace

StreamSet make_streams(const EdgeList& edges, std::size_t num_streams,
                       const StreamOptions& opts) {
  REMO_CHECK(num_streams > 0);
  std::vector<EdgeEvent> events;
  events.reserve(edges.size());
  Xoshiro256 wrng(opts.seed ^ 0x5bf0'3635'dcf2'd069ULL);
  for (const Edge& e : edges) {
    Weight w = opts.min_weight;
    if (opts.max_weight > opts.min_weight)
      w = opts.min_weight +
          static_cast<Weight>(wrng.bounded(opts.max_weight - opts.min_weight + 1));
    events.push_back(EdgeEvent{e.src, e.dst, w, EdgeOp::kAdd});
  }
  if (opts.shuffle) fisher_yates(events, opts.seed);
  return StreamSet(round_robin(events, num_streams));
}

StreamSet split_events(std::vector<EdgeEvent> events, std::size_t num_streams,
                       bool shuffle, std::uint64_t seed) {
  REMO_CHECK(num_streams > 0);
  if (shuffle) fisher_yates(events, seed);
  return StreamSet(round_robin(events, num_streams));
}

}  // namespace remo
