#include "gen/stream.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/hash.hpp"
#include "storage/robin_hood_map.hpp"

namespace remo {
namespace {

std::vector<EdgeStream> round_robin(std::vector<EdgeEvent>& events,
                                    std::size_t num_streams) {
  std::vector<std::vector<EdgeEvent>> parts(num_streams);
  for (auto& p : parts) p.reserve(events.size() / num_streams + 1);
  for (std::size_t i = 0; i < events.size(); ++i)
    parts[i % num_streams].push_back(events[i]);
  std::vector<EdgeStream> streams;
  streams.reserve(num_streams);
  for (auto& p : parts) streams.emplace_back(std::move(p));
  return streams;
}

void fisher_yates(std::vector<EdgeEvent>& events, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (std::size_t i = events.size(); i > 1; --i)
    std::swap(events[i - 1], events[rng.bounded(i)]);
}

}  // namespace

StreamSet make_streams(const EdgeList& edges, std::size_t num_streams,
                       const StreamOptions& opts) {
  REMO_CHECK(num_streams > 0);
  std::vector<EdgeEvent> events;
  events.reserve(edges.size());
  Xoshiro256 wrng(opts.seed ^ 0x5bf0'3635'dcf2'd069ULL);
  for (const Edge& e : edges) {
    Weight w = opts.min_weight;
    if (opts.max_weight > opts.min_weight)
      w = opts.min_weight +
          static_cast<Weight>(wrng.bounded(opts.max_weight - opts.min_weight + 1));
    events.push_back(EdgeEvent{e.src, e.dst, w, EdgeOp::kAdd});
  }
  if (opts.shuffle) fisher_yates(events, opts.seed);
  return StreamSet(round_robin(events, num_streams));
}

StreamSet split_events(std::vector<EdgeEvent> events, std::size_t num_streams,
                       bool shuffle, std::uint64_t seed) {
  REMO_CHECK(num_streams > 0);
  if (shuffle) fisher_yates(events, seed);
  return StreamSet(round_robin(events, num_streams));
}

std::uint64_t event_pair_key(const EdgeEvent& e) noexcept {
  const VertexId lo = e.src < e.dst ? e.src : e.dst;
  const VertexId hi = e.src < e.dst ? e.dst : e.src;
  return hash_combine(splitmix64(lo), hi);
}

StreamSet split_events_keyed(std::vector<EdgeEvent> events,
                             std::size_t num_streams, std::uint64_t seed) {
  REMO_CHECK(num_streams > 0);
  std::vector<std::vector<EdgeEvent>> parts(num_streams);
  for (auto& p : parts) p.reserve(events.size() / num_streams + 1);
  for (const EdgeEvent& e : events)
    parts[hash_combine(event_pair_key(e), seed) % num_streams].push_back(e);
  std::vector<EdgeStream> streams;
  streams.reserve(num_streams);
  for (auto& p : parts) streams.emplace_back(std::move(p));
  return StreamSet(std::move(streams));
}

std::vector<EdgeEvent> make_weight_mutations(const EdgeList& edges,
                                             const MutationOptions& opts) {
  if (opts.num_events == 0) return {};
  REMO_CHECK(!edges.empty());
  REMO_CHECK(opts.min_weight < opts.max_weight);
  // Collapse duplicate arcs to one representative per unordered pair so the
  // tracked current weight is well-defined, then mutate uniformly over the
  // surviving pairs.
  RobinHoodMap<std::uint64_t, std::uint32_t> index_of;
  std::vector<Edge> pairs;
  std::vector<Weight> current;
  for (const Edge& e : edges) {
    if (e.src == e.dst) continue;
    const std::uint64_t key =
        event_pair_key(EdgeEvent{e.src, e.dst, e.weight, EdgeOp::kAdd});
    auto [slot, fresh] = index_of.find_or_emplace(key, [&] {
      pairs.push_back(e);
      current.push_back(e.weight);
      return static_cast<std::uint32_t>(pairs.size() - 1);
    });
    if (!fresh) current[*slot] = e.weight;  // last add wins, like the store
  }
  REMO_CHECK(!pairs.empty());
  Xoshiro256 rng(opts.seed ^ 0xd1b5'4a32'd192'ed03ULL);
  const std::uint64_t span =
      static_cast<std::uint64_t>(opts.max_weight - opts.min_weight) + 1;
  std::vector<EdgeEvent> out;
  out.reserve(opts.num_events);
  for (std::uint32_t i = 0; i < opts.num_events; ++i) {
    const auto idx = static_cast<std::uint32_t>(rng.bounded(pairs.size()));
    Weight w = current[idx];
    while (w == current[idx])
      w = static_cast<Weight>(opts.min_weight + rng.bounded(span));
    current[idx] = w;
    out.push_back(EdgeEvent{pairs[idx].src, pairs[idx].dst, w, EdgeOp::kAdd});
  }
  return out;
}

std::vector<EdgeEvent> permute_preserving_pairs(std::vector<EdgeEvent> events,
                                                std::uint64_t seed) {
  // Classic linear-extension shuffle: record each event's group (pair key)
  // in input order, Fisher-Yates the *multiset of group labels*, then fill
  // each label occurrence with that group's next pending event. Within a
  // group the original order survives; across groups the order is a
  // uniform random interleaving.
  struct Group {
    std::vector<std::uint32_t> positions;  // input indices, in order
    std::size_t next = 0;
  };
  RobinHoodMap<std::uint64_t, std::uint32_t> group_of;
  std::vector<Group> groups;
  std::vector<std::uint32_t> labels(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    auto [slot, fresh] = group_of.find_or_emplace(event_pair_key(events[i]), [&] {
      groups.emplace_back();
      return static_cast<std::uint32_t>(groups.size() - 1);
    });
    groups[*slot].positions.push_back(static_cast<std::uint32_t>(i));
    labels[i] = *slot;
  }
  Xoshiro256 rng(seed ^ 0x9e37'79b9'7f4a'7c15ULL);
  for (std::size_t i = labels.size(); i > 1; --i)
    std::swap(labels[i - 1], labels[rng.bounded(i)]);
  std::vector<EdgeEvent> out;
  out.reserve(events.size());
  for (const std::uint32_t g : labels)
    out.push_back(events[groups[g].positions[groups[g].next++]]);
  return out;
}

}  // namespace remo
