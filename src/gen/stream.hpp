// Edge event streams — the unit of dynamic ingestion.
//
// Section III-C: "each process can independently ingest pairs of [source,
// destination] graph structure changes (edge events)... (i) each individual
// stream presents its own events in-order, and (ii) events on different
// streams are treated as concurrent." A StreamSet is one EdgeStream per
// rank; the engine saturates by having each rank pull its next event the
// moment local work drains (Section V-A's saturation methodology).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "graph/edge_list.hpp"

namespace remo {

enum class EdgeOp : std::uint8_t {
  kAdd,     ///< incremental topology change (the paper's main regime)
  kDelete,  ///< decremental event (Section VI-B extension)
};

struct EdgeEvent {
  VertexId src = 0;
  VertexId dst = 0;
  Weight weight = kDefaultWeight;
  EdgeOp op = EdgeOp::kAdd;

  friend bool operator==(const EdgeEvent&, const EdgeEvent&) = default;
};

/// One FIFO-ordered event stream. Immutable once built; consumers keep
/// their own cursors.
class EdgeStream {
 public:
  EdgeStream() = default;
  explicit EdgeStream(std::vector<EdgeEvent> events) : events_(std::move(events)) {}

  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }
  const EdgeEvent& operator[](std::size_t i) const noexcept { return events_[i]; }
  const std::vector<EdgeEvent>& events() const noexcept { return events_; }

 private:
  std::vector<EdgeEvent> events_;
};

/// A set of concurrent streams, one per ingesting rank.
class StreamSet {
 public:
  StreamSet() = default;
  explicit StreamSet(std::vector<EdgeStream> streams) : streams_(std::move(streams)) {}

  std::size_t num_streams() const noexcept { return streams_.size(); }
  const EdgeStream& stream(std::size_t i) const noexcept { return streams_[i]; }

  std::size_t total_events() const noexcept {
    std::size_t n = 0;
    for (const auto& s : streams_) n += s.size();
    return n;
  }

 private:
  std::vector<EdgeStream> streams_;
};

struct StreamOptions {
  /// Shuffle events before splitting ("edges are pre-randomized", §V-A).
  bool shuffle = true;
  /// Assign uniform random weights in [min_weight, max_weight]; when
  /// min==max every edge gets that weight (BFS datasets use 1).
  Weight min_weight = 1;
  Weight max_weight = 1;
  std::uint64_t seed = 7;
};

/// Convert an edge list to add-only events, optionally shuffled and
/// weighted, split round-robin into `num_streams` FIFO streams.
StreamSet make_streams(const EdgeList& edges, std::size_t num_streams,
                       const StreamOptions& opts = {});

/// As make_streams but from explicit events (mixed add/delete workloads).
StreamSet split_events(std::vector<EdgeEvent> events, std::size_t num_streams,
                       bool shuffle = false, std::uint64_t seed = 7);

/// Canonical key of the unordered endpoint pair of an event — the unit the
/// engine's undirected serialisation argument (Section III-C) orders by.
std::uint64_t event_pair_key(const EdgeEvent& e) noexcept;

/// Split events into `num_streams` FIFO streams so that all events touching
/// the same unordered endpoint pair land on the SAME stream, in their input
/// order. Different seeds place the pairs differently (distinct
/// interleavings), but per-pair history always stays serialised — the
/// property that keeps a mixed add/delete workload's final topology
/// well-defined under concurrent streams (the fuzzer's generator contract).
StreamSet split_events_keyed(std::vector<EdgeEvent> events,
                             std::size_t num_streams, std::uint64_t seed);

/// Knobs for make_weight_mutations.
struct MutationOptions {
  std::uint32_t num_events = 0;
  Weight min_weight = 1;
  Weight max_weight = 8;
  std::uint64_t seed = 7;
};

/// In-place weight mutations over a live edge list: each event re-adds a
/// uniformly chosen existing pair with a fresh weight that differs from the
/// pair's current one (tracked across the emitted sequence, so every event
/// is a real old != new transition). The engine's last-weight-wins store
/// routes these to VertexProgram::on_weight_change — never a delete+add
/// pair. This is the Figure 9 mutation workload and the deterministic
/// cousin of the fuzzer's mutate_permille branch. Requires
/// min_weight < max_weight and a non-empty edge list when num_events > 0.
std::vector<EdgeEvent> make_weight_mutations(const EdgeList& edges,
                                             const MutationOptions& opts);

/// Seeded random permutation of `events` that preserves the relative order
/// of events sharing an unordered endpoint pair (a uniform linear extension
/// of the per-pair partial order). Composes with split_events_keyed to
/// explore cross-pair interleavings without ever reordering one pair's
/// add/delete history.
std::vector<EdgeEvent> permute_preserving_pairs(std::vector<EdgeEvent> events,
                                                std::uint64_t seed);

}  // namespace remo
