#include "graph/csr.hpp"

namespace remo {

CsrGraph CsrGraph::build(const EdgeList& edges) {
  CsrGraph g;

  // Pass 1: assign dense ids in first-appearance order (src before dst so
  // isolated reverse-only vertices still get ids).
  g.dense_map_.reserve(edges.size() / 4 + 8);
  auto intern = [&](VertexId v) -> Dense {
    if (const Dense* d = g.dense_map_.find(v)) return *d;
    const Dense fresh = g.external_ids_.size();
    g.external_ids_.push_back(v);
    g.dense_map_.insert_or_assign(v, fresh);
    return fresh;
  };
  for (const Edge& e : edges) {
    intern(e.src);
    intern(e.dst);
  }

  const std::size_t n = g.external_ids_.size();
  g.offsets_.assign(n + 1, 0);

  // Pass 2: counting sort by source.
  for (const Edge& e : edges) ++g.offsets_[*g.dense_map_.find(e.src) + 1];
  for (std::size_t v = 0; v < n; ++v) g.offsets_[v + 1] += g.offsets_[v];

  g.targets_.resize(edges.size());
  g.edge_weights_.resize(edges.size());
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    const Dense s = *g.dense_map_.find(e.src);
    const std::uint64_t slot = cursor[s]++;
    g.targets_[slot] = *g.dense_map_.find(e.dst);
    g.edge_weights_[slot] = e.weight;
  }
  return g;
}

}  // namespace remo
