// CsrGraph: the static Compressed Sparse Row substrate.
//
// This is the classical static-graph representation the paper's evaluation
// uses as its baseline (Section V-B: "the static construction has an
// advantage of compression... we can use the CSR format"). Vertex IDs may
// be arbitrary 64-bit values; construction builds a dense remapping so the
// traversal kernels run on cache-friendly 32/64-bit index arrays.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "graph/edge_list.hpp"
#include "storage/robin_hood_map.hpp"

namespace remo {

class CsrGraph {
 public:
  /// Dense vertex index inside the CSR arrays.
  using Dense = std::uint64_t;
  static constexpr Dense kNoVertex = ~Dense{0};

  CsrGraph() = default;

  /// Build from an edge list. Every edge is stored exactly as given —
  /// callers wanting an undirected graph pass `with_reverse_edges(...)`.
  /// Duplicate edges are kept (the traversal kernels tolerate them), which
  /// matches what a dynamic multistream ingest would produce.
  static CsrGraph build(const EdgeList& edges);

  std::size_t num_vertices() const noexcept { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t num_edges() const noexcept { return targets_.size(); }

  /// Dense index of an external vertex id; kNoVertex when absent.
  Dense dense_of(VertexId v) const noexcept {
    const Dense* d = dense_map_.find(v);
    return d ? *d : kNoVertex;
  }

  VertexId external_of(Dense d) const noexcept { return external_ids_[d]; }

  std::span<const Dense> neighbours(Dense v) const noexcept {
    return {targets_.data() + offsets_[v], targets_.data() + offsets_[v + 1]};
  }

  std::span<const Weight> weights(Dense v) const noexcept {
    return {edge_weights_.data() + offsets_[v], edge_weights_.data() + offsets_[v + 1]};
  }

  std::size_t degree(Dense v) const noexcept { return offsets_[v + 1] - offsets_[v]; }

  /// Bytes resident in the CSR arrays (Table I style accounting).
  std::size_t memory_bytes() const noexcept {
    return offsets_.size() * sizeof(std::uint64_t) + targets_.size() * sizeof(Dense) +
           edge_weights_.size() * sizeof(Weight) + external_ids_.size() * sizeof(VertexId) +
           dense_map_.memory_bytes();
  }

 private:
  std::vector<std::uint64_t> offsets_;   // size |V|+1
  std::vector<Dense> targets_;           // size |E|
  std::vector<Weight> edge_weights_;     // size |E|
  std::vector<VertexId> external_ids_;   // dense -> external
  RobinHoodMap<VertexId, Dense> dense_map_;  // external -> dense
};

}  // namespace remo
