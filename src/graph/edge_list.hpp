// Plain edge-list representation used at the boundary between the
// generators, the static (CSR) substrate, and the dynamic engine.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace remo {

struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  Weight weight = kDefaultWeight;

  friend bool operator==(const Edge&, const Edge&) = default;
};

using EdgeList = std::vector<Edge>;

/// Append the reverse of every edge (u,v,w) -> (v,u,w). The static CSR
/// substrate represents undirected graphs this way, matching how the
/// dynamic engine materialises Reverse-Add events.
inline EdgeList with_reverse_edges(const EdgeList& edges) {
  EdgeList out;
  out.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    out.push_back(e);
    out.push_back(Edge{e.dst, e.src, e.weight});
  }
  return out;
}

/// Largest vertex id referenced, or kInvalidVertex for an empty list.
inline VertexId max_vertex_id(const EdgeList& edges) {
  VertexId m = kInvalidVertex;
  for (const Edge& e : edges) {
    const VertexId hi = e.src > e.dst ? e.src : e.dst;
    if (m == kInvalidVertex || hi > m) m = hi;
  }
  return m;
}

}  // namespace remo
