#include "graph/static_bfs.hpp"

#include <vector>

#include "common/assert.hpp"

namespace remo {

std::vector<StateWord> static_bfs(const CsrGraph& g, CsrGraph::Dense source) {
  REMO_CHECK(source < g.num_vertices());
  std::vector<StateWord> level(g.num_vertices(), kInfiniteState);
  std::vector<CsrGraph::Dense> frontier{source};
  std::vector<CsrGraph::Dense> next;
  level[source] = 1;
  StateWord depth = 1;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (const CsrGraph::Dense u : frontier) {
      for (const CsrGraph::Dense v : g.neighbours(u)) {
        if (level[v] == kInfiniteState) {
          level[v] = depth;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return level;
}

BfsTree static_bfs_tree(const CsrGraph& g, CsrGraph::Dense source) {
  BfsTree t;
  t.level = static_bfs(g, source);
  t.parent.assign(g.num_vertices(), CsrGraph::kNoVertex);
  t.parent[source] = source;
  // Second sweep: for every reached vertex pick the lowest-external-id
  // neighbour one level closer to the source.
  for (CsrGraph::Dense v = 0; v < g.num_vertices(); ++v) {
    if (v == source || t.level[v] == kInfiniteState) continue;
    for (const CsrGraph::Dense u : g.neighbours(v)) {
      if (t.level[u] + 1 != t.level[v]) continue;
      if (t.parent[v] == CsrGraph::kNoVertex ||
          g.external_of(u) < g.external_of(t.parent[v]))
        t.parent[v] = u;
    }
  }
  return t;
}

}  // namespace remo
