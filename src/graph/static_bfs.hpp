// Static top-down BFS (Algorithm 1 of the paper, iterative form).
//
// Used (a) as the baseline in the Fig. 3 / Fig. 4 experiments — "run the
// algorithm statically with no further edge ingestion" — and (b) as the
// oracle the dynamic BFS must converge to (DESIGN.md invariant 1).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/csr.hpp"

namespace remo {

/// Levels for every dense vertex. The source has level 1 (the paper's
/// convention: `start_vertex.level = 1`); unreachable vertices hold
/// kInfiniteState.
std::vector<StateWord> static_bfs(const CsrGraph& g, CsrGraph::Dense source);

/// BFS parent array alongside levels, with the deterministic tie-break of
/// Section II-D: among equal-level candidates the parent with the lowest
/// external vertex id wins. parent[source] = source; unreachable vertices
/// hold kNoVertex.
struct BfsTree {
  std::vector<StateWord> level;
  std::vector<CsrGraph::Dense> parent;
};
BfsTree static_bfs_tree(const CsrGraph& g, CsrGraph::Dense source);

}  // namespace remo
