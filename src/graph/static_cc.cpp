#include "graph/static_cc.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>
#include <vector>

namespace remo {
namespace {

// Classic union-find with path halving + union by size.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace

std::vector<StateWord> static_cc_labels(const CsrGraph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<StateWord> label(n);
  for (CsrGraph::Dense v = 0; v < n; ++v) label[v] = cc_initial_label(g.external_of(v));

  // Label propagation to fixpoint; undirected view means we propagate both
  // ways along every stored arc each sweep.
  bool changed = true;
  while (changed) {
    changed = false;
    for (CsrGraph::Dense u = 0; u < n; ++u) {
      for (const CsrGraph::Dense v : g.neighbours(u)) {
        if (label[u] > label[v]) {
          label[v] = label[u];
          changed = true;
        } else if (label[v] > label[u]) {
          label[u] = label[v];
          changed = true;
        }
      }
    }
  }
  return label;
}

std::vector<StateWord> static_cc_union_find(const CsrGraph& g) {
  const std::size_t n = g.num_vertices();
  UnionFind uf(n);
  for (CsrGraph::Dense u = 0; u < n; ++u)
    for (const CsrGraph::Dense v : g.neighbours(u)) uf.unite(u, v);

  std::vector<StateWord> root_label(n, 0);
  for (CsrGraph::Dense v = 0; v < n; ++v) {
    const std::size_t r = uf.find(v);
    root_label[r] = std::max(root_label[r], cc_initial_label(g.external_of(v)));
  }
  std::vector<StateWord> label(n);
  for (CsrGraph::Dense v = 0; v < n; ++v) label[v] = root_label[uf.find(v)];
  return label;
}

std::size_t static_cc_count(const CsrGraph& g) {
  const auto labels = static_cc_union_find(g);
  std::unordered_set<StateWord> distinct(labels.begin(), labels.end());
  return distinct.size();
}

}  // namespace remo
