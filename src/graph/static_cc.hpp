// Static connected components: union-find (oracle) and label propagation
// (second baseline with the same label convention as the dynamic CC).
#pragma once

#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace remo {

/// Label a vertex gets when it first appears (Algorithm 6:
/// `this.value = hash(this.ID)`). Never zero — zero means "unlabelled".
inline StateWord cc_initial_label(VertexId v) noexcept {
  const StateWord h = splitmix64(v);
  return h == 0 ? 1 : h;
}

/// Per-dense-vertex component label: the maximum cc_initial_label() within
/// the component (Algorithm 6's update keeps the dominating — larger —
/// label). Edges are treated as undirected.
std::vector<StateWord> static_cc_labels(const CsrGraph& g);

/// Union-find over the raw edge list; returns labels in the same
/// max-initial-label convention keyed by external vertex id order of the
/// provided CSR. Cross-checks static_cc_labels.
std::vector<StateWord> static_cc_union_find(const CsrGraph& g);

/// Number of connected components in g (undirected view).
std::size_t static_cc_count(const CsrGraph& g);

}  // namespace remo
