#include "graph/static_pagerank.hpp"

#include <cmath>

namespace remo {

std::vector<double> static_pagerank(const CsrGraph& g, PageRankOptions opts) {
  const std::size_t n = g.num_vertices();
  const double base = 1.0 - opts.damping;
  std::vector<double> rank(n, base), next(n);

  // Weighted out-degree per vertex; dangling vertices divide by nothing
  // because they contribute nothing.
  std::vector<double> wdeg(n, 0.0);
  for (std::size_t v = 0; v < n; ++v)
    for (const Weight w : g.weights(v)) wdeg[v] += static_cast<double>(w);

  for (std::size_t iter = 0; iter < opts.max_iters; ++iter) {
    double max_delta = 0.0;
    for (std::size_t x = 0; x < n; ++x) {
      // Pull formulation over the symmetric edge set: w(u, x) is read from
      // x's own row, which carries the same weight as u's (the fuzzer and
      // bench both materialise reverse edges with equal weight).
      double sum = 0.0;
      const auto nbrs = g.neighbours(x);
      const auto ws = g.weights(x);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const std::size_t u = nbrs[i];
        if (wdeg[u] != 0.0)
          sum += static_cast<double>(ws[i]) * rank[u] / wdeg[u];
      }
      next[x] = base + opts.damping * sum;
      max_delta = std::max(max_delta, std::abs(next[x] - rank[x]));
    }
    rank.swap(next);
    if (max_delta <= opts.eps) break;
  }
  return rank;
}

}  // namespace remo
