// Static weighted PageRank: the oracle for the incremental memo-delta
// program (core/algorithms/pagerank_delta.hpp). Identical conventions:
// unnormalised base mass 1 - d per vertex, contributions weighted by edge
// weight over the sender's total weighted degree, dangling vertices keep
// their mass (they push nothing, nothing is redistributed). On the deduped
// undirected edge lists the differential fuzzer feeds it, the fixpoint
//
//   r(x) = (1 - d) + d * sum_{u ~ x} w(u, x) * r(u) / W(u)
//
// is exactly what the live engine converges to within its tolerance.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace remo {

struct PageRankOptions {
  double damping = 0.85;
  /// Jacobi sweeps stop when no rank moved by more than eps.
  double eps = 1e-12;
  std::size_t max_iters = 1000;
};

/// Ranks indexed by dense vertex id. The edge list behind `g` must carry
/// each undirected edge in both directions and no duplicates (duplicates
/// double-count weight — the dynamic store collapses parallel edges).
std::vector<double> static_pagerank(const CsrGraph& g, PageRankOptions opts = {});

}  // namespace remo
