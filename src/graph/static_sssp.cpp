#include "graph/static_sssp.hpp"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace remo {

std::vector<StateWord> static_sssp_dijkstra(const CsrGraph& g, CsrGraph::Dense source) {
  REMO_CHECK(source < g.num_vertices());
  std::vector<StateWord> dist(g.num_vertices(), kInfiniteState);
  using Entry = std::pair<StateWord, CsrGraph::Dense>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 1;
  heap.emplace(1, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) continue;  // stale entry
    const auto nbrs = g.neighbours(u);
    const auto ws = g.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const StateWord nd = d + ws[i];
      if (nd < dist[nbrs[i]]) {
        dist[nbrs[i]] = nd;
        heap.emplace(nd, nbrs[i]);
      }
    }
  }
  return dist;
}

std::vector<StateWord> static_sssp_delta(const CsrGraph& g, CsrGraph::Dense source,
                                         Weight delta) {
  REMO_CHECK(source < g.num_vertices());
  if (delta == 0) {
    // Heuristic: mean weight, at least 1.
    std::uint64_t total = 0, count = 0;
    for (CsrGraph::Dense v = 0; v < g.num_vertices(); ++v)
      for (const Weight w : g.weights(v)) {
        total += w;
        ++count;
      }
    delta = count == 0 ? 1 : static_cast<Weight>(std::max<std::uint64_t>(1, total / count));
  }

  std::vector<StateWord> dist(g.num_vertices(), kInfiniteState);
  std::vector<std::vector<CsrGraph::Dense>> buckets;

  auto bucket_of = [&](StateWord d) { return static_cast<std::size_t>(d / delta); };
  auto push = [&](CsrGraph::Dense v, StateWord d) {
    const std::size_t b = bucket_of(d);
    if (b >= buckets.size()) buckets.resize(b + 1);
    buckets[b].push_back(v);
  };

  dist[source] = 1;
  push(source, 1);

  for (std::size_t b = 0; b < buckets.size(); ++b) {
    // Settle the bucket: light-edge relaxations may reinsert into bucket b.
    std::vector<CsrGraph::Dense> pending;
    while (!buckets[b].empty()) {
      pending.swap(buckets[b]);
      for (const CsrGraph::Dense u : pending) {
        if (bucket_of(dist[u]) != b) continue;  // moved to an earlier bucket
        const StateWord d = dist[u];
        const auto nbrs = g.neighbours(u);
        const auto ws = g.weights(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          const StateWord nd = d + ws[i];
          if (nd < dist[nbrs[i]]) {
            dist[nbrs[i]] = nd;
            push(nbrs[i], nd);
          }
        }
      }
      pending.clear();
    }
  }
  return dist;
}

}  // namespace remo
