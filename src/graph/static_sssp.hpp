// Static single-source shortest paths: Dijkstra (binary heap) and
// delta-stepping. Dijkstra is the oracle for the dynamic SSSP; the
// delta-stepping variant cross-checks it and serves as a second static
// baseline with a different traversal pattern.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/csr.hpp"

namespace remo {

/// Distances with the paper's convention: dist(source) = 1, dist(v) =
/// 1 + (minimum path weight sum). Unreachable: kInfiniteState.
std::vector<StateWord> static_sssp_dijkstra(const CsrGraph& g, CsrGraph::Dense source);

/// Delta-stepping with bucket width `delta` (0 picks a heuristic width).
std::vector<StateWord> static_sssp_delta(const CsrGraph& g, CsrGraph::Dense source,
                                         Weight delta = 0);

}  // namespace remo
