#include "graph/static_st.hpp"

#include <vector>

#include "common/assert.hpp"

namespace remo {

std::vector<StateWord> static_multi_st(const CsrGraph& g,
                                       const std::vector<CsrGraph::Dense>& sources) {
  REMO_CHECK(sources.size() <= 64);
  std::vector<StateWord> mask(g.num_vertices(), 0);
  std::vector<CsrGraph::Dense> stack;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const StateWord bit = StateWord{1} << i;
    REMO_CHECK(sources[i] < g.num_vertices());
    if (mask[sources[i]] & bit) continue;
    mask[sources[i]] |= bit;
    stack.assign(1, sources[i]);
    while (!stack.empty()) {
      const CsrGraph::Dense u = stack.back();
      stack.pop_back();
      for (const CsrGraph::Dense v : g.neighbours(u)) {
        if (!(mask[v] & bit)) {
          mask[v] |= bit;
          stack.push_back(v);
        }
      }
    }
  }
  return mask;
}

std::vector<DynamicBitset> static_multi_st_wide(
    const CsrGraph& g, const std::vector<CsrGraph::Dense>& sources) {
  std::vector<DynamicBitset> mask(g.num_vertices(), DynamicBitset(sources.size()));
  std::vector<CsrGraph::Dense> stack;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    REMO_CHECK(sources[i] < g.num_vertices());
    if (mask[sources[i]].test(i)) continue;
    mask[sources[i]].set(i);
    stack.assign(1, sources[i]);
    while (!stack.empty()) {
      const CsrGraph::Dense u = stack.back();
      stack.pop_back();
      for (const CsrGraph::Dense v : g.neighbours(u)) {
        if (!mask[v].test(i)) {
          mask[v].set(i);
          stack.push_back(v);
        }
      }
    }
  }
  return mask;
}

}  // namespace remo
