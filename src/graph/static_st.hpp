// Static multi S-T connectivity oracle: for a set of sources S, the state
// of vertex v is a bitmap with bit i set iff v is reachable from S[i]
// (Algorithm 7's convention: a source's own bit is set by init()).
#pragma once

#include <vector>

#include "common/bitset.hpp"
#include "common/types.hpp"
#include "graph/csr.hpp"

namespace remo {

/// Up to 64 sources, packed into a StateWord per vertex. Edges are
/// traversed as stored (pass an undirected CSR for undirected semantics).
std::vector<StateWord> static_multi_st(const CsrGraph& g,
                                       const std::vector<CsrGraph::Dense>& sources);

/// Arbitrary source count; one DynamicBitset per vertex.
std::vector<DynamicBitset> static_multi_st_wide(
    const CsrGraph& g, const std::vector<CsrGraph::Dense>& sources);

}  // namespace remo
