#include "io/edge_io.hpp"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>

namespace remo {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_or_throw(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f) throw std::runtime_error("remo: cannot open " + path);
  return f;
}

#pragma pack(push, 1)
struct BinRecord {
  std::uint64_t src;
  std::uint64_t dst;
  std::uint32_t weight;
};
#pragma pack(pop)
static_assert(sizeof(BinRecord) == 20);

}  // namespace

void write_edges_text(const std::string& path, const EdgeList& edges) {
  FilePtr f = open_or_throw(path, "w");
  std::fprintf(f.get(), "# remo edge list: src dst weight\n");
  for (const Edge& e : edges)
    std::fprintf(f.get(), "%llu %llu %u\n", static_cast<unsigned long long>(e.src),
                 static_cast<unsigned long long>(e.dst), e.weight);
  if (std::ferror(f.get())) throw std::runtime_error("remo: write failed: " + path);
}

EdgeList read_edges_text(const std::string& path) {
  FilePtr f = open_or_throw(path, "r");
  EdgeList edges;
  char line[256];
  while (std::fgets(line, sizeof line, f.get())) {
    if (line[0] == '#' || line[0] == '\n' || line[0] == '\0') continue;
    unsigned long long src = 0, dst = 0;
    unsigned weight = kDefaultWeight;
    const int n = std::sscanf(line, "%llu %llu %u", &src, &dst, &weight);
    if (n < 2) throw std::runtime_error("remo: malformed line in " + path + ": " + line);
    edges.push_back(Edge{src, dst, n >= 3 ? static_cast<Weight>(weight) : kDefaultWeight});
  }
  return edges;
}

void write_edges_binary(const std::string& path, const EdgeList& edges) {
  FilePtr f = open_or_throw(path, "wb");
  for (const Edge& e : edges) {
    const BinRecord rec{e.src, e.dst, e.weight};
    if (std::fwrite(&rec, sizeof rec, 1, f.get()) != 1)
      throw std::runtime_error("remo: write failed: " + path);
  }
}

EdgeList read_edges_binary(const std::string& path) {
  FilePtr f = open_or_throw(path, "rb");
  EdgeList edges;
  BinRecord rec;
  while (std::fread(&rec, sizeof rec, 1, f.get()) == 1)
    edges.push_back(Edge{rec.src, rec.dst, rec.weight});
  if (std::ferror(f.get())) throw std::runtime_error("remo: read failed: " + path);
  return edges;
}

}  // namespace remo
