// Edge-list readers/writers.
//
// The paper's dynamic experiments ingest "[source, destination] pairs from
// disk" (Section V-A). Two formats:
//   * text:   one "src dst [weight]" triple per line, '#' comments
//   * binary: little-endian packed records (u64 src, u64 dst, u32 weight)
#pragma once

#include <string>

#include "graph/edge_list.hpp"

namespace remo {

/// Write/read the text format. Throws std::runtime_error on I/O failure.
void write_edges_text(const std::string& path, const EdgeList& edges);
EdgeList read_edges_text(const std::string& path);

/// Write/read the packed binary format.
void write_edges_binary(const std::string& path, const EdgeList& edges);
EdgeList read_edges_binary(const std::string& path);

}  // namespace remo
