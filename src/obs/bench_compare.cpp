#include "obs/bench_compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/strfmt.hpp"

namespace remo::obs {
namespace {

// --- config fingerprint ------------------------------------------------------

/// Collect dotted paths where the two config subtrees differ. `build.git_sha`
/// is masked: comparing two commits of the same code is the tool's purpose.
void diff_config(const Json* a, const Json* b, const std::string& path,
                 std::vector<std::string>& out) {
  if (path == "config.build.git_sha") return;
  const bool ha = a != nullptr && !a->is_null();
  const bool hb = b != nullptr && !b->is_null();
  if (!ha && !hb) return;
  if (ha != hb) {
    out.push_back(path.empty() ? "config" : path);
    return;
  }
  if (a->is_object() && b->is_object()) {
    for (const auto& [key, val] : a->members()) {
      const std::string sub = path.empty() ? key : path + "." + key;
      diff_config(&val, b->find(key), sub, out);
    }
    for (const auto& [key, val] : b->members())
      if (!a->contains(key)) {
        const std::string sub = path.empty() ? key : path + "." + key;
        diff_config(nullptr, &val, sub, out);
      }
    return;
  }
  if (a->dump() != b->dump()) out.push_back(path.empty() ? "config" : path);
}

// --- run matching ------------------------------------------------------------

/// Identity of a run row: every non-numeric scalar field plus "ranks".
/// Numeric results vary between the two reports; the identifying shape
/// (dataset name, variant labels, rank count) must not.
std::string run_identity(const Json& row) {
  std::string id;
  for (const auto& [key, val] : row.members()) {
    const bool identifying =
        val.is_string() || val.is_bool() || key == "ranks";
    if (!identifying) continue;
    if (!id.empty()) id += " ";
    if (val.is_string())
      id += key + "=" + val.as_string();
    else if (val.is_bool())
      id += key + "=" + (val.as_bool() ? "true" : "false");
    else
      id += key + "=" + strfmt("%llu", static_cast<unsigned long long>(val.as_uint()));
  }
  return id.empty() ? "(run)" : id;
}

// --- metric collection -------------------------------------------------------

void collect_numeric(const Json& v, const std::string& path,
                     std::vector<std::pair<std::string, double>>& out) {
  if (v.is_number()) {
    out.emplace_back(path, v.as_double());
    return;
  }
  if (v.is_object()) {
    for (const auto& [key, val] : v.members())
      collect_numeric(val, path.empty() ? key : path + "." + key, out);
  }
  // Arrays inside run rows (bucket lists etc.) are positional noise for a
  // regression gate; skip them.
}

std::string leaf_name(const std::string& path) {
  const auto dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(dot + 1);
}

/// Direction heuristic: throughput-like metrics are higher-better; costs
/// (seconds, latency, misses, RSS) are lower-better.
bool metric_higher_better(const std::string& path) {
  const std::string leaf = leaf_name(path);
  if (leaf.find("per_second") != std::string::npos) return true;
  if (leaf.find("throughput") != std::string::npos) return true;
  if (leaf == "ipc" || leaf.rfind("ipc_", 0) == 0) return true;
  return false;
}

struct Gate {
  bool gated = false;
  double pct = 0;
};

Gate gate_for(const std::string& path, const BenchCompareOptions& opts) {
  const std::string leaf = leaf_name(path);
  if (auto it = opts.gates.find(path); it != opts.gates.end())
    return {true, it->second};
  if (auto it = opts.gates.find(leaf); it != opts.gates.end())
    return {true, it->second};
  if (leaf == "events_per_second") return {true, opts.default_gate_pct};
  return {};
}

void compare_section(const std::string& run_id, const Json& a, const Json& b,
                     const BenchCompareOptions& opts, bool gateable,
                     std::vector<BenchMetricDelta>& out) {
  std::vector<std::pair<std::string, double>> ma, mb;
  collect_numeric(a, "", ma);
  collect_numeric(b, "", mb);
  for (const auto& [path, va] : ma) {
    const auto it = std::find_if(mb.begin(), mb.end(),
                                 [&](const auto& p) { return p.first == path; });
    if (it == mb.end()) continue;
    const double vb = it->second;
    BenchMetricDelta d;
    d.run = run_id;
    d.metric = path;
    d.a = va;
    d.b = vb;
    if (va == 0.0)
      d.pct = vb == 0.0 ? 0.0 : (vb > 0 ? 1 : -1) * 1e9;  // divergent; display caps
    else
      d.pct = (vb - va) / std::fabs(va) * 100.0;
    d.higher_better = metric_higher_better(path);
    if (gateable) {
      const Gate g = gate_for(path, opts);
      d.gated = g.gated;
      d.gate_pct = g.pct;
      if (d.gated) {
        const double bad = d.higher_better ? -d.pct : d.pct;
        d.regression = bad > g.pct;
      }
    }
    out.push_back(std::move(d));
  }
}

}  // namespace

BenchCompareResult bench_compare(const Json& a, const Json& b,
                                 const BenchCompareOptions& opts) {
  BenchCompareResult r;
  r.forced = opts.force;
  if (const Json* n = a.find("name")) r.name_a = n->is_string() ? n->as_string() : "";
  if (const Json* n = b.find("name")) r.name_b = n->is_string() ? n->as_string() : "";

  diff_config(a.find("config"), b.find("config"), "config", r.config_diffs);
  // The name/scale/repeats header rows are config too: comparing fig3 at
  // scale 0 against fig3 at scale -2 is as meaningless as a batch-size flip.
  for (const char* key : {"schema", "name", "scale_shift", "repeats"}) {
    const Json* ka = a.find(key);
    const Json* kb = b.find(key);
    const std::string da = ka ? ka->dump() : "";
    const std::string db = kb ? kb->dump() : "";
    if (da != db) r.config_diffs.push_back(key);
  }
  r.config_mismatch = !r.config_diffs.empty();
  if (r.config_mismatch && !opts.force) return r;

  const Json* runs_a = a.find("runs");
  const Json* runs_b = b.find("runs");
  std::vector<std::pair<std::string, const Json*>> rows_b;
  if (runs_b && runs_b->is_array())
    for (const Json& row : runs_b->items())
      rows_b.emplace_back(run_identity(row), &row);
  std::vector<bool> used_b(rows_b.size(), false);

  if (runs_a && runs_a->is_array()) {
    for (const Json& row : runs_a->items()) {
      const std::string id = run_identity(row);
      std::size_t match = rows_b.size();
      for (std::size_t i = 0; i < rows_b.size(); ++i)
        if (!used_b[i] && rows_b[i].first == id) {
          match = i;
          break;
        }
      if (match == rows_b.size()) {
        r.only_in_a.push_back(id);
        continue;
      }
      used_b[match] = true;
      compare_section(id, row, *rows_b[match].second, opts, /*gateable=*/true,
                      r.deltas);
    }
  }
  for (std::size_t i = 0; i < rows_b.size(); ++i)
    if (!used_b[i]) r.only_in_b.push_back(rows_b[i].first);

  // Process rusage rides along as informational context (gate it only via
  // an explicit --gate, e.g. max_rss_kb=10).
  if (const Json* ra = a.find("rusage"))
    if (const Json* rb = b.find("rusage"))
      compare_section("(process)", *ra, *rb, opts,
                      /*gateable=*/!opts.gates.empty(), r.deltas);
  return r;
}

std::string format_bench_compare(const BenchCompareResult& r) {
  std::string out;
  out += strfmt("bench-compare: %s -> %s\n",
                r.name_a.empty() ? "A" : r.name_a.c_str(),
                r.name_b.empty() ? "B" : r.name_b.c_str());
  if (r.config_mismatch) {
    out += strfmt("config blocks differ (%zu field%s):\n", r.config_diffs.size(),
                  r.config_diffs.size() == 1 ? "" : "s");
    for (const std::string& d : r.config_diffs) out += "  " + d + "\n";
    if (!r.forced) {
      out += "refusing to compare (use --force to override)\n";
      return out;
    }
    out += "--force: comparing anyway\n";
  }

  std::string last_run;
  for (const auto& d : r.deltas) {
    if (d.run != last_run) {
      out += strfmt("\n%s\n", d.run.c_str());
      last_run = d.run;
    }
    const double shown = std::clamp(d.pct, -9999.0, 9999.0);
    std::string flag;
    if (d.regression)
      flag = strfmt("  REGRESSION (gate %.1f%%)", d.gate_pct);
    else if (d.gated)
      flag = strfmt("  ok (gate %.1f%%)", d.gate_pct);
    out += strfmt("  %-40s %14.4g %14.4g  %+8.2f%%%s\n", d.metric.c_str(), d.a,
                  d.b, shown, flag.c_str());
  }
  for (const std::string& id : r.only_in_a)
    out += strfmt("\nonly in A: %s\n", id.c_str());
  for (const std::string& id : r.only_in_b)
    out += strfmt("only in B: %s\n", id.c_str());

  std::size_t gated = 0, regressed = 0;
  for (const auto& d : r.deltas) {
    gated += d.gated ? 1 : 0;
    regressed += d.regression ? 1 : 0;
  }
  out += strfmt("\n%s: %zu metric%s compared, %zu gated, %zu regression%s\n",
                r.ok() ? "PASS" : "FAIL", r.deltas.size(),
                r.deltas.size() == 1 ? "" : "s", gated, regressed,
                regressed == 1 ? "" : "s");
  return out;
}

}  // namespace remo::obs
