// Bench-regression comparison: `remo bench-compare A.json B.json`.
//
// Compares two remo-bench-1 reports (docs/OBSERVABILITY.md) run-by-run,
// printing per-metric percent deltas and gating selected metrics with
// configurable thresholds, so CI can fail a PR that regresses throughput.
// Reports whose config blocks differ (comm knobs, obs knobs, compiler,
// build flags — everything except the git SHA, which is the thing being
// compared) are refused unless forced: a 10% "regression" between
// different batch sizes is an apples-to-oranges artefact, not a finding.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace remo::obs {

struct BenchCompareOptions {
  /// Gate applied to `events_per_second` when no explicit gate names it.
  double default_gate_pct = 3.0;
  /// Explicit gates: metric leaf name (or dotted path) -> allowed % change
  /// in the bad direction. Overrides the default for that metric.
  std::map<std::string, double> gates;
  /// Compare even when the config blocks differ.
  bool force = false;
};

/// One numeric metric present in both reports' matching runs.
struct BenchMetricDelta {
  std::string run;     ///< run identity ("dataset=uk-2007 ranks=4"), or "(process)"
  std::string metric;  ///< dotted path inside the run row ("latency.p99_us")
  double a = 0;
  double b = 0;
  double pct = 0;             ///< (b - a) / a * 100
  bool higher_better = false; ///< direction heuristic (throughput-like names)
  bool gated = false;         ///< a gate applies to this metric
  double gate_pct = 0;        ///< the gate threshold when gated
  bool regression = false;    ///< gated and moved past the gate the bad way
};

struct BenchCompareResult {
  /// Config blocks differ (git SHA masked). When set and not forced, no
  /// deltas are computed.
  bool config_mismatch = false;
  bool forced = false;
  std::vector<std::string> config_diffs;  ///< dotted paths that differ
  std::vector<BenchMetricDelta> deltas;
  std::vector<std::string> only_in_a;  ///< run identities without a partner
  std::vector<std::string> only_in_b;
  std::string name_a, name_b;  ///< report names for display

  bool has_regression() const {
    for (const auto& d : deltas)
      if (d.regression) return true;
    return false;
  }
  /// Exit-zero condition: comparable and no gated metric regressed.
  bool ok() const { return !(config_mismatch && !forced) && !has_regression(); }
};

/// Compare two parsed remo-bench-1 documents.
BenchCompareResult bench_compare(const Json& a, const Json& b,
                                 const BenchCompareOptions& opts = {});

/// Human-readable table (the CLI's output), ending with a PASS/FAIL line.
std::string format_bench_compare(const BenchCompareResult& r);

}  // namespace remo::obs
