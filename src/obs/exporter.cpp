#include "obs/exporter.hpp"

#include <cstdio>
#include <utility>

namespace remo::obs {

MetricsExporter::MetricsExporter(Sampler sampler, Config cfg)
    : sampler_(std::move(sampler)), cfg_(std::move(cfg)) {
  if (cfg_.format == Format::kJsonl) {
    if (cfg_.path == "-" || cfg_.path.empty()) {
      out_ = stdout;
    } else {
      out_ = std::fopen(cfg_.path.c_str(), "w");
      owns_file_ = true;
    }
  }
  // Prometheus mode reopens the file each tick; nothing to hold here.
  thread_ = std::thread([this] { run(); });
}

MetricsExporter::~MetricsExporter() { stop(); }

void MetricsExporter::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;  // first caller owns the join
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (owns_file_ && out_) {
    std::fclose(out_);
    out_ = nullptr;
    owns_file_ = false;
  }
}

std::uint64_t MetricsExporter::samples() const noexcept {
  std::lock_guard lock(mutex_);
  return samples_;
}

GaugeSample MetricsExporter::last_sample() const {
  std::lock_guard lock(mutex_);
  return last_;
}

void MetricsExporter::emit(const GaugeSample& s) {
  if (cfg_.format == Format::kJsonl) {
    if (!out_) return;
    const std::string line = s.to_json().dump();
    std::fwrite(line.data(), 1, line.size(), out_);
    std::fputc('\n', out_);
    std::fflush(out_);
    return;
  }
  // Prometheus text exposition: write a fresh file and move it into place
  // so scrapers never observe a half-written exposition.
  const std::string tmp = cfg_.path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) return;
  const std::string text = s.to_prometheus();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::rename(tmp.c_str(), cfg_.path.c_str());
}

void MetricsExporter::run() {
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      cv_.wait_for(lock, cfg_.period, [this] { return stopping_; });
      if (stopping_) break;
    }
    GaugeSample s = sampler_();
    emit(s);
    std::lock_guard lock(mutex_);
    ++samples_;
    last_ = std::move(s);
  }
  if (cfg_.final_sample) {
    GaugeSample s = sampler_();
    emit(s);
    std::lock_guard lock(mutex_);
    ++samples_;
    last_ = std::move(s);
  }
}

}  // namespace remo::obs
