// MetricsExporter: a background thread that snapshots the live gauges on a
// fixed period and emits them to a file — JSONL flight-recorder records
// (one "remo-gauges-1" object per line) or Prometheus text exposition
// (the file is rewritten atomically-enough each period, node-exporter
// textfile-collector style).
//
// The exporter is deliberately decoupled from the engine: it takes a
// sampler callback (`[&engine] { return engine.sample_gauges(); }`), so it
// can be unit-tested against scripted samples and attached to anything
// that produces GaugeSamples. Sampling cost is a few dozen relaxed loads —
// the engine's hot path is never touched.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/gauges.hpp"

namespace remo::obs {

class MetricsExporter {
 public:
  enum class Format {
    kJsonl,       ///< append one JSON object per sample
    kPrometheus,  ///< rewrite the file with text exposition each sample
  };

  struct Config {
    std::chrono::milliseconds period{100};
    Format format = Format::kJsonl;
    /// Output file; "-" streams JSONL records to stdout.
    std::string path;
    /// Take one final sample when stop() / the destructor runs, so short
    /// runs always leave at least one record.
    bool final_sample = true;
  };

  using Sampler = std::function<GaugeSample()>;

  /// Starts the sampling thread immediately.
  MetricsExporter(Sampler sampler, Config cfg);

  /// Stops and joins (idempotent).
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Stop sampling, flush the final sample (if configured), join.
  void stop();

  /// Samples emitted so far.
  std::uint64_t samples() const noexcept;

  /// Copy of the most recent sample (default-constructed before the first
  /// tick).
  GaugeSample last_sample() const;

 private:
  void run();
  void emit(const GaugeSample& s);

  Sampler sampler_;
  Config cfg_;
  std::FILE* out_ = nullptr;
  bool owns_file_ = false;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::uint64_t samples_ = 0;
  GaugeSample last_;

  std::thread thread_;
};

}  // namespace remo::obs
