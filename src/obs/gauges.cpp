#include "obs/gauges.hpp"

#include "common/strfmt.hpp"

namespace remo::obs {

Json GaugeSample::to_json(bool include_per_rank) const {
  Json j = Json::object();
  j["schema"] = "remo-gauges-1";
  j["ts_ns"] = sample_ns;
  j["events_ingested"] = events_ingested;
  j["events_applied"] = events_applied;
  j["converged_through"] = converged_through;
  j["convergence_lag_events"] = convergence_lag_events;
  j["staleness_ns"] = staleness_ns;
  j["in_flight"] = in_flight;
  j["queue_depth"] = queue_depth;
  j["idle_ranks"] = idle_ranks;
  j["idle_ratio"] = idle_ratio;
  j["quiescent"] = quiescent;
  Json det = Json::object();
  det["mode"] = safra_mode ? "safra" : "counting";
  if (safra_mode) {
    det["generation"] = safra_generation;
    det["probe_rounds"] = safra_probe_rounds;
    det["probe_active"] = safra_probe_active;
    det["terminated"] = safra_terminated;
  }
  j["termination"] = std::move(det);
  if (serving.present) {
    Json s = Json::object();
    s["queries_served"] = serving.queries_served;
    s["refreshes"] = serving.refreshes;
    s["served_programs"] = serving.served_programs;
    s["read_epoch_lag_events"] = serving.read_epoch_lag_events;
    s["view_age_ns"] = serving.view_age_ns;
    if (serving.gate_present) {
      Json g = Json::object();
      g["events_submitted"] = serving.gate_events_submitted;
      g["events_dispatched"] = serving.gate_events_dispatched;
      g["batches"] = serving.gate_batches;
      g["waves"] = serving.gate_waves;
      g["serial_fallback_batches"] = serving.gate_serial_fallback_batches;
      g["mean_wave_occupancy"] = serving.gate_mean_wave_occupancy;
      s["write_gate"] = std::move(g);
    }
    if (serving.spans_present) {
      Json sp = Json::object();
      sp["sampled"] = serving.spans_sampled;
      sp["completed"] = serving.spans_completed;
      sp["open"] = serving.spans_open;
      sp["dropped"] = serving.spans_dropped;
      sp["freshness_p50_ns"] = serving.freshness_p50_ns;
      sp["freshness_p99_ns"] = serving.freshness_p99_ns;
      s["spans"] = std::move(sp);
    }
    j["serving"] = std::move(s);
  }
  if (prof.present) {
    Json p = Json::object();
    p["backend"] = prof.backend;
    p["degraded"] = prof.degraded;
    p["reads"] = prof.reads;
    p["read_failures"] = prof.read_failures;
    Json phases = Json::object();
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      const CounterSet& c = prof.phase[i];
      Json ph = Json::object();
      ph["cycles"] = c[ProfCounter::kCycles];
      ph["instructions"] = c[ProfCounter::kInstructions];
      ph["llc_loads"] = c[ProfCounter::kLlcLoads];
      ph["llc_misses"] = c[ProfCounter::kLlcMisses];
      ph["branch_misses"] = c[ProfCounter::kBranchMisses];
      ph["stalled_cycles"] = c[ProfCounter::kStalledCycles];
      ph["dtlb_loads"] = c[ProfCounter::kDtlbLoads];
      ph["dtlb_misses"] = c[ProfCounter::kDtlbMisses];
      ph["minor_faults"] = c[ProfCounter::kMinorFaults];
      ph["major_faults"] = c[ProfCounter::kMajorFaults];
      ph["task_clock_ns"] = c[ProfCounter::kTaskClockNs];
      ph["attributed_ns"] = prof.attributed_ns[i];
      ph["ipc"] = prof_ipc(c);
      ph["llc_miss_rate"] = prof_llc_miss_rate(c);
      ph["dtlb_miss_rate"] = prof_dtlb_miss_rate(c);
      phases[phase_name(static_cast<Phase>(i))] = std::move(ph);
    }
    p["phases"] = std::move(phases);
    j["prof"] = std::move(p);
  }
  if (include_per_rank) {
    Json ranks = Json::array();
    for (std::size_t r = 0; r < per_rank.size(); ++r) {
      const RankGaugeSample& g = per_rank[r];
      Json jr = Json::object();
      jr["rank"] = r;
      jr["queue_depth"] = g.queue_depth;
      jr["ring_occupancy"] = g.ring_occupancy;
      jr["overflow_depth"] = g.overflow_depth;
      jr["events_ingested"] = g.events_ingested;
      jr["events_applied"] = g.events_applied;
      jr["converged_through"] = g.converged_through;
      jr["staleness_ns"] = g.staleness_ns;
      jr["idle"] = g.idle;
      if (g.trace_emitted) jr["trace_emitted"] = g.trace_emitted;
      ranks.push_back(std::move(jr));
    }
    j["per_rank"] = std::move(ranks);
  }
  return j;
}

std::string prom_sanitize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

void PromWriter::header(std::string_view name, std::string_view help,
                        std::string_view type) {
  const std::string clean = prom_sanitize_name(name);
  for (const std::string& seen : headers_emitted_)
    if (seen == clean) return;
  headers_emitted_.push_back(clean);
  out_ += strfmt("# HELP %s %.*s\n", clean.c_str(), static_cast<int>(help.size()),
                 help.data());
  out_ += strfmt("# TYPE %s %.*s\n", clean.c_str(), static_cast<int>(type.size()),
                 type.data());
}

void PromWriter::value(std::string_view name, std::uint64_t v) {
  out_ += strfmt("%s %llu\n", prom_sanitize_name(name).c_str(),
                 static_cast<unsigned long long>(v));
}

void PromWriter::value(std::string_view name, std::int64_t v) {
  out_ += strfmt("%s %lld\n", prom_sanitize_name(name).c_str(),
                 static_cast<long long>(v));
}

void PromWriter::value(std::string_view name, double v) {
  out_ += strfmt("%s %.9f\n", prom_sanitize_name(name).c_str(), v);
}

void PromWriter::labelled(std::string_view name, std::string_view key,
                          std::string_view label, std::uint64_t v) {
  out_ += strfmt("%s{%.*s=\"%.*s\"} %llu\n", prom_sanitize_name(name).c_str(),
                 static_cast<int>(key.size()), key.data(),
                 static_cast<int>(label.size()), label.data(),
                 static_cast<unsigned long long>(v));
}

void PromWriter::labelled(std::string_view name, std::string_view key,
                          std::string_view label, double v) {
  out_ += strfmt("%s{%.*s=\"%.*s\"} %.9f\n", prom_sanitize_name(name).c_str(),
                 static_cast<int>(key.size()), key.data(),
                 static_cast<int>(label.size()), label.data(), v);
}

std::string GaugeSample::to_prometheus() const {
  PromWriter w;
  w.header("remo_events_ingested_total",
           "Topology events accepted into the system", "counter");
  w.value("remo_events_ingested_total", events_ingested);
  w.header("remo_events_applied_total",
           "Topology events applied (store mutation + local callbacks)",
           "counter");
  w.value("remo_events_applied_total", events_applied);
  w.header("remo_converged_through",
           "Ingested-event watermark through which state is converged", "gauge");
  w.value("remo_converged_through", converged_through);
  w.header("remo_convergence_lag_events",
           "Events ingested but not yet reflected in converged state", "gauge");
  w.value("remo_convergence_lag_events", convergence_lag_events);
  w.header("remo_staleness_seconds",
           "Wall-clock age of the converged watermark (0 when caught up)",
           "gauge");
  w.value("remo_staleness_seconds", static_cast<double>(staleness_ns) / 1e9);
  w.header("remo_in_flight_messages",
           "Basic visitors injected but not fully processed", "gauge");
  w.value("remo_in_flight_messages", static_cast<std::int64_t>(in_flight));
  w.header("remo_idle_ranks", "Ranks currently parked waiting for work", "gauge");
  w.value("remo_idle_ranks", std::uint64_t{idle_ranks});
  w.header("remo_termination_probe_rounds_total",
           "Safra token circuits completed (0 in counting mode)", "counter");
  w.value("remo_termination_probe_rounds_total", safra_probe_rounds);
  w.header("remo_queue_depth",
           "Undrained ingress visitors (mailbox + loop-back)", "gauge");
  for (std::size_t r = 0; r < per_rank.size(); ++r)
    w.labelled("remo_queue_depth", "rank", strfmt("%zu", r),
               per_rank[r].queue_depth);
  w.header("remo_ring_occupancy",
           "Visitors parked in the mailbox SPSC rings", "gauge");
  for (std::size_t r = 0; r < per_rank.size(); ++r)
    w.labelled("remo_ring_occupancy", "rank", strfmt("%zu", r),
               per_rank[r].ring_occupancy);
  w.header("remo_overflow_depth",
           "Visitors in the mailbox overflow segment", "gauge");
  for (std::size_t r = 0; r < per_rank.size(); ++r)
    w.labelled("remo_overflow_depth", "rank", strfmt("%zu", r),
               per_rank[r].overflow_depth);
  w.header("remo_rank_events_applied_total",
           "Topology events applied by each rank", "counter");
  for (std::size_t r = 0; r < per_rank.size(); ++r)
    w.labelled("remo_rank_events_applied_total", "rank", strfmt("%zu", r),
               per_rank[r].events_applied);
  w.header("remo_rank_idle", "1 while the rank is parked", "gauge");
  for (std::size_t r = 0; r < per_rank.size(); ++r)
    w.labelled("remo_rank_idle", "rank", strfmt("%zu", r),
               std::uint64_t{per_rank[r].idle ? 1u : 0u});
  if (serving.present) {
    w.header("remo_serve_queries_total", "Catalog queries answered", "counter");
    w.value("remo_serve_queries_total", serving.queries_served);
    w.header("remo_serve_refreshes_total", "Views published (all programs)",
             "counter");
    w.value("remo_serve_refreshes_total", serving.refreshes);
    w.header("remo_serve_programs", "Active serving slots", "gauge");
    w.value("remo_serve_programs", serving.served_programs);
    w.header("remo_serve_read_epoch_lag_events",
             "Accepted events the stalest published view may be missing",
             "gauge");
    w.value("remo_serve_read_epoch_lag_events", serving.read_epoch_lag_events);
    w.header("remo_serve_view_age_seconds",
             "Age of the oldest active published view", "gauge");
    w.value("remo_serve_view_age_seconds",
            static_cast<double>(serving.view_age_ns) / 1e9);
    if (serving.gate_present) {
      w.header("remo_gate_events_submitted_total",
               "Events enqueued at the write gate", "counter");
      w.value("remo_gate_events_submitted_total", serving.gate_events_submitted);
      w.header("remo_gate_events_dispatched_total",
               "Events the gate injected into the engine", "counter");
      w.value("remo_gate_events_dispatched_total",
              serving.gate_events_dispatched);
      w.header("remo_gate_batches_total", "Batches the gate dispatched",
               "counter");
      w.value("remo_gate_batches_total", serving.gate_batches);
      w.header("remo_gate_waves_total", "Conflict-free waves dispatched",
               "counter");
      w.value("remo_gate_waves_total", serving.gate_waves);
      w.header("remo_gate_serial_fallback_batches_total",
               "Batches injected serially (conflict-dominated)", "counter");
      w.value("remo_gate_serial_fallback_batches_total",
              serving.gate_serial_fallback_batches);
      w.header("remo_gate_mean_wave_occupancy",
               "Mean events per wave over non-fallback batches", "gauge");
      w.value("remo_gate_mean_wave_occupancy", serving.gate_mean_wave_occupancy);
    }
    if (serving.spans_present) {
      w.header("remo_spans_completed_total",
               "Write-path spans closed (batch became readable)", "counter");
      w.value("remo_spans_completed_total", serving.spans_completed);
      w.header("remo_spans_open", "Write-path spans still in flight", "gauge");
      w.value("remo_spans_open", serving.spans_open);
      w.header("remo_freshness_p50_seconds",
               "Median write-to-readable freshness", "gauge");
      w.value("remo_freshness_p50_seconds",
              static_cast<double>(serving.freshness_p50_ns) / 1e9);
      w.header("remo_freshness_p99_seconds",
               "p99 write-to-readable freshness", "gauge");
      w.value("remo_freshness_p99_seconds",
              static_cast<double>(serving.freshness_p99_ns) / 1e9);
    }
  }
  if (prof.present) {
    w.header("remo_prof_backend_info",
             "Resolved profiling backend (1 = active; degraded label set "
             "unless perf_event)",
             "gauge");
    w.labelled("remo_prof_backend_info", "backend", prof.backend,
               std::uint64_t{1});
    w.header("remo_prof_reads_total", "Successful counter-group reads",
             "counter");
    w.value("remo_prof_reads_total", prof.reads);
    w.header("remo_prof_read_failures_total", "Failed counter-group reads",
             "counter");
    w.value("remo_prof_read_failures_total", prof.read_failures);
    w.header("remo_prof_cycles_total", "CPU cycles attributed per phase",
             "counter");
    w.header("remo_prof_instructions_total",
             "Instructions retired attributed per phase", "counter");
    w.header("remo_prof_llc_loads_total", "LLC read accesses per phase",
             "counter");
    w.header("remo_prof_llc_misses_total", "LLC read misses per phase",
             "counter");
    w.header("remo_prof_branch_misses_total", "Branch misses per phase",
             "counter");
    w.header("remo_prof_stalled_cycles_total",
             "Backend-stalled cycles per phase", "counter");
    w.header("remo_prof_dtlb_loads_total", "dTLB read accesses per phase",
             "counter");
    w.header("remo_prof_dtlb_misses_total", "dTLB read misses per phase",
             "counter");
    w.header("remo_prof_minor_faults_total",
             "Minor page faults attributed per phase", "counter");
    w.header("remo_prof_major_faults_total",
             "Major page faults attributed per phase", "counter");
    w.header("remo_prof_task_clock_seconds_total",
             "On-CPU time attributed per phase", "counter");
    w.header("remo_prof_ipc", "Instructions per cycle per phase", "gauge");
    w.header("remo_prof_llc_miss_rate", "LLC read miss rate per phase",
             "gauge");
    w.header("remo_prof_dtlb_miss_rate", "dTLB read miss rate per phase",
             "gauge");
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      const char* ph = phase_name(static_cast<Phase>(i));
      const CounterSet& c = prof.phase[i];
      w.labelled("remo_prof_cycles_total", "phase", ph,
                 c[ProfCounter::kCycles]);
      w.labelled("remo_prof_instructions_total", "phase", ph,
                 c[ProfCounter::kInstructions]);
      w.labelled("remo_prof_llc_loads_total", "phase", ph,
                 c[ProfCounter::kLlcLoads]);
      w.labelled("remo_prof_llc_misses_total", "phase", ph,
                 c[ProfCounter::kLlcMisses]);
      w.labelled("remo_prof_branch_misses_total", "phase", ph,
                 c[ProfCounter::kBranchMisses]);
      w.labelled("remo_prof_stalled_cycles_total", "phase", ph,
                 c[ProfCounter::kStalledCycles]);
      w.labelled("remo_prof_dtlb_loads_total", "phase", ph,
                 c[ProfCounter::kDtlbLoads]);
      w.labelled("remo_prof_dtlb_misses_total", "phase", ph,
                 c[ProfCounter::kDtlbMisses]);
      w.labelled("remo_prof_minor_faults_total", "phase", ph,
                 c[ProfCounter::kMinorFaults]);
      w.labelled("remo_prof_major_faults_total", "phase", ph,
                 c[ProfCounter::kMajorFaults]);
      w.labelled("remo_prof_task_clock_seconds_total", "phase", ph,
                 static_cast<double>(c[ProfCounter::kTaskClockNs]) / 1e9);
      w.labelled("remo_prof_ipc", "phase", ph, prof_ipc(c));
      w.labelled("remo_prof_llc_miss_rate", "phase", ph,
                 prof_llc_miss_rate(c));
      w.labelled("remo_prof_dtlb_miss_rate", "phase", ph,
                 prof_dtlb_miss_rate(c));
    }
  }
  return w.str();
}

namespace {

std::string ns_short(std::uint64_t ns) {
  if (ns >= 10'000'000'000ull)
    return strfmt("%.0fs", static_cast<double>(ns) / 1e9);
  if (ns >= 1'000'000'000ull)
    return strfmt("%.1fs", static_cast<double>(ns) / 1e9);
  if (ns >= 1'000'000ull) return strfmt("%.0fms", static_cast<double>(ns) / 1e6);
  if (ns >= 1'000ull) return strfmt("%.0fus", static_cast<double>(ns) / 1e3);
  return strfmt("%lluns", static_cast<unsigned long long>(ns));
}

}  // namespace

std::string GaugeSample::watch_view() const {
  std::string out;
  out += strfmt(
      "t=%-8s ingested %s  applied %s  lag %s ev / %s  in-flight %lld  idle "
      "%u/%zu%s\n",
      ns_short(sample_ns).c_str(), with_commas(events_ingested).c_str(),
      with_commas(events_applied).c_str(),
      with_commas(convergence_lag_events).c_str(),
      ns_short(staleness_ns).c_str(), static_cast<long long>(in_flight),
      idle_ranks, per_rank.size(), quiescent ? "  [quiescent]" : "");
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    const RankGaugeSample& g = per_rank[r];
    out += strfmt("  rank %-3zu %-5s queue %-9s applied %-12s stale %s\n", r,
                  g.idle ? "idle" : "busy", with_commas(g.queue_depth).c_str(),
                  with_commas(g.events_applied).c_str(),
                  ns_short(g.staleness_ns).c_str());
  }
  return out;
}

}  // namespace remo::obs
