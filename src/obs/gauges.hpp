// Live telemetry gauges: watermarks, convergence lag, queue depths, and
// termination-detector state — readable at any time without stopping the
// engine.
//
// The recording side is spread across the structures that already own the
// numbers: `LiveRankMetrics` (applied-event counters), `Mailbox`/`Comm`
// (queue depths, in-flight), `SafraRing` (probe rounds), and a small
// `RankGauges` cell block per rank (ingest watermark, passive watermark,
// idle flag). Everything is a relaxed atomic updated on writes the hot
// path already performs; `Engine::sample_gauges()` assembles one coherent
//-enough `GaugeSample` from those cells on demand.
//
// Watermark semantics (docs/OBSERVABILITY.md has the full treatment):
//  * `events_ingested`  — topology events accepted into the system (stream
//    pulls + API injections). Monotone.
//  * `events_applied`   — topology events whose store mutation + local
//    callbacks have executed. Monotone; equals ingested at quiescence.
//  * `converged_through`— the ingested-count watermark through which the
//    algorithm state is known converged. Observer-advanced: whenever a
//    sample finds the engine quiescent (no in-flight work, empty queues,
//    passive streams), the watermark jumps to the ingested count read
//    *before* the quiescence checks — those events have provably settled.
//  * `convergence_lag_events = events_ingested - converged_through` — the
//    paper's "how far behind is the answer?" in events.
//  * `staleness_ns`     — wall-clock form: 0 when lag is 0, otherwise time
//    since the converged watermark last advanced.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "obs/phase_timer.hpp"
#include "obs/prof.hpp"

namespace remo::obs {

/// Map a metric name onto the Prometheus exposition charset
/// ([a-zA-Z_:][a-zA-Z0-9_:]*): '-', '.', and anything else illegal become
/// '_', and a leading digit gains a '_' prefix.
std::string prom_sanitize_name(std::string_view name);

/// Prometheus text-exposition builder with promtool-strict hygiene: every
/// name passes through prom_sanitize_name(), and the HELP/TYPE header for
/// a metric is emitted exactly once per exposition no matter how many
/// sample lines reference it (duplicated headers are a parse error under
/// strict checkers).
class PromWriter {
 public:
  /// Emit `# HELP` / `# TYPE` for `name` unless already emitted.
  void header(std::string_view name, std::string_view help, std::string_view type);

  void value(std::string_view name, std::uint64_t v);
  void value(std::string_view name, std::int64_t v);
  void value(std::string_view name, double v);

  /// One labelled sample line: name{key="label"} v.
  void labelled(std::string_view name, std::string_view key,
                std::string_view label, std::uint64_t v);
  void labelled(std::string_view name, std::string_view key,
                std::string_view label, double v);
  /// Smaller integer types would otherwise be ambiguous between the
  /// uint64 and double overloads.
  void labelled(std::string_view name, std::string_view key,
                std::string_view label, int v) {
    labelled(name, key, label, static_cast<std::uint64_t>(v < 0 ? 0 : v));
  }
  void labelled(std::string_view name, std::string_view key,
                std::string_view label, unsigned v) {
    labelled(name, key, label, static_cast<std::uint64_t>(v));
  }

  const std::string& str() const noexcept { return out_; }

 private:
  std::string out_;
  std::vector<std::string> headers_emitted_;
};

/// Per-rank live cells beyond what LiveRankMetrics already tracks. Single
/// writer (the owning rank), relaxed-atomic, padded onto their own line so
/// sampler reads never contend with neighbouring hot state.
struct alignas(64) RankGauges {
  /// Stream events this rank pulled (whether applied locally or routed).
  std::atomic<std::uint64_t> events_ingested{0};
  /// events_applied value at the last instant this rank was locally
  /// passive (ingress empty, nothing buffered, streams drained or paused).
  std::atomic<std::uint64_t> converged_through{0};
  /// Engine-relative time of the last locally-passive instant.
  std::atomic<std::uint64_t> last_passive_ns{0};
  /// True while the rank is parked waiting for work.
  std::atomic<bool> idle{false};
};

/// One rank's row in a gauge sample.
struct RankGaugeSample {
  std::uint64_t queue_depth = 0;        ///< mailbox + loop-back backlog
  std::uint64_t ring_occupancy = 0;     ///< visitors parked in the SPSC rings
  std::uint64_t overflow_depth = 0;     ///< visitors in the overflow segment
  std::uint64_t events_ingested = 0;    ///< stream events pulled by this rank
  std::uint64_t events_applied = 0;     ///< topology events applied here
  std::uint64_t converged_through = 0;  ///< applied watermark at last passive
  std::uint64_t staleness_ns = 0;       ///< 0 when idle; else now - last passive
  std::uint64_t trace_emitted = 0;      ///< trace slices emitted (0 if off)
  bool idle = false;                    ///< parked right now
};

/// Serving-plane gauges riding along in a GaugeSample (schema stays
/// "remo-gauges-1"; the block is emitted only when `present`). Filled by
/// the serving layer — serve::fill_serving_gauges() — so dashboards fed by
/// MetricsExporter see the QueryService/WriteGate/span counters without
/// the obs layer depending on src/serve.
struct ServingGauges {
  bool present = false;

  // QueryService (ServeStats).
  std::uint64_t queries_served = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t served_programs = 0;
  std::uint64_t read_epoch_lag_events = 0;
  std::uint64_t view_age_ns = 0;

  // WriteGate (WriteGateStats); gate_present gates emission.
  bool gate_present = false;
  std::uint64_t gate_events_submitted = 0;
  std::uint64_t gate_events_dispatched = 0;
  std::uint64_t gate_batches = 0;
  std::uint64_t gate_waves = 0;
  std::uint64_t gate_serial_fallback_batches = 0;
  double gate_mean_wave_occupancy = 0.0;

  // Write-path spans (SpanCounts); spans_present gates emission.
  bool spans_present = false;
  std::uint64_t spans_sampled = 0;
  std::uint64_t spans_completed = 0;
  std::uint64_t spans_open = 0;
  std::uint64_t spans_dropped = 0;
  std::uint64_t freshness_p50_ns = 0;
  std::uint64_t freshness_p99_ns = 0;
};

/// Hardware-counter gauges riding along in a GaugeSample (schema stays
/// "remo-gauges-1"; the block is emitted only when `present`). Aggregated
/// across ranks by Engine::sample_gauges() from the per-rank profilers.
struct ProfGauges {
  bool present = false;
  std::string backend;    ///< resolved backend name ("perf_event", ...)
  bool degraded = false;  ///< backend != perf_event
  std::array<CounterSet, kPhaseCount> phase{};  ///< attributed deltas
  std::array<std::uint64_t, kPhaseCount> attributed_ns{};
  std::uint64_t reads = 0;
  std::uint64_t read_failures = 0;
};

/// A point-in-time reading of every live gauge (schema "remo-gauges-1").
struct GaugeSample {
  std::uint64_t sample_ns = 0;  ///< engine-relative monotonic sample time

  // Watermarks & convergence lag.
  std::uint64_t events_ingested = 0;
  std::uint64_t events_applied = 0;
  std::uint64_t converged_through = 0;
  std::uint64_t convergence_lag_events = 0;
  std::uint64_t staleness_ns = 0;

  // Runtime gauges.
  std::int64_t in_flight = 0;      ///< counting detector's live message count
  std::uint64_t queue_depth = 0;   ///< total ingress backlog across ranks
  std::uint32_t idle_ranks = 0;
  double idle_ratio = 0.0;         ///< idle_ranks / ranks
  bool quiescent = false;          ///< this sample observed full quiescence

  // Termination detector.
  bool safra_mode = false;  ///< false = counting detector
  std::uint64_t safra_generation = 0;
  std::uint64_t safra_probe_rounds = 0;
  bool safra_probe_active = false;
  bool safra_terminated = false;

  std::vector<RankGaugeSample> per_rank;

  /// Serving-plane block (absent unless the serving layer filled it).
  ServingGauges serving;

  /// Hardware-counter block (absent unless profiling is enabled).
  ProfGauges prof;

  /// One flight-recorder record (schema "remo-gauges-1"); `dump()` of this
  /// is one JSONL line.
  Json to_json(bool include_per_rank = true) const;

  /// Prometheus text exposition (one scrape's worth, HELP/TYPE included).
  std::string to_prometheus() const;

  /// Refreshing live view: a header plus one line per rank (the CLI's
  /// --watch rendering).
  std::string watch_view() const;
};

}  // namespace remo::obs
