// Log-bucketed latency histogram (HdrHistogram-style, fixed footprint).
//
// The recording side is single-writer (each rank owns one histogram and
// records from its own thread) with relaxed-atomic buckets, so concurrent
// snapshot readers — `Engine::metrics_snapshot()` from the main thread —
// are race-free without any lock on the hot path. Snapshots are plain
// structs that merge across ranks and support percentile extraction.
//
// Bucketing: values 0..15 land in exact unit buckets; larger values use
// one major bucket per power of two, split into 16 linear sub-buckets, so
// the relative quantisation error is bounded by 1/16 (6.25 %) across the
// whole 64-bit range. 976 buckets * 8 B = ~7.6 KB per histogram.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

namespace remo::obs {

namespace hist_detail {

inline constexpr std::uint32_t kSubBits = 4;                 // 16 sub-buckets
inline constexpr std::uint32_t kSubCount = 1u << kSubBits;   // per power of two
// Major groups: values < 16 (group 0) + one group per leading-bit position
// 4..63, each 16 sub-buckets wide.
inline constexpr std::uint32_t kBucketCount = (64 - kSubBits + 1) * kSubCount;

/// Bucket index of a value. Exact for v < 16; otherwise the top kSubBits+1
/// bits select the bucket.
constexpr std::uint32_t bucket_of(std::uint64_t v) noexcept {
  if (v < kSubCount) return static_cast<std::uint32_t>(v);
  const auto h = static_cast<std::uint32_t>(63 - std::countl_zero(v));
  const auto sub = static_cast<std::uint32_t>((v >> (h - kSubBits)) & (kSubCount - 1));
  return (h - kSubBits + 1) * kSubCount + sub;
}

/// Inclusive lower bound of a bucket's value range.
constexpr std::uint64_t bucket_lower(std::uint32_t index) noexcept {
  if (index < kSubCount) return index;
  const std::uint32_t group = index / kSubCount;    // >= 1
  const std::uint32_t sub = index % kSubCount;
  const std::uint32_t h = group + kSubBits - 1;     // leading-bit position
  return (std::uint64_t{1} << h) + (std::uint64_t{sub} << (h - kSubBits));
}

/// Exclusive upper bound of a bucket's value range.
constexpr std::uint64_t bucket_upper(std::uint32_t index) noexcept {
  if (index + 1 < kBucketCount) return bucket_lower(index + 1);
  return ~std::uint64_t{0};
}

}  // namespace hist_detail

/// Mergeable, queryable copy of a histogram's state.
struct HistogramSnapshot {
  std::vector<std::uint64_t> counts;  // kBucketCount entries (empty = zero)
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = ~std::uint64_t{0};
  std::uint64_t max = 0;

  bool empty() const noexcept { return count == 0; }

  double mean() const noexcept {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }

  void merge(const HistogramSnapshot& other) {
    if (other.counts.empty()) return;
    if (counts.empty()) counts.assign(hist_detail::kBucketCount, 0);
    for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
    count += other.count;
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }

  /// Value at percentile p (0..100]: the smallest recorded magnitude v such
  /// that at least p% of samples are <= v, reported as the representative
  /// (upper bound, clamped to the observed max) of v's bucket. Exact for
  /// values < 16; within 6.25 % elsewhere.
  std::uint64_t percentile(double p) const noexcept {
    if (count == 0 || counts.empty()) return 0;
    const double clamped = std::clamp(p, 0.0, 100.0);
    // ceil(p/100 * count), at least 1.
    auto target =
        static_cast<std::uint64_t>(clamped * static_cast<double>(count) / 100.0);
    if (static_cast<double>(target) * 100.0 <
        clamped * static_cast<double>(count))
      ++target;
    if (target == 0) target = 1;
    std::uint64_t seen = 0;
    for (std::uint32_t i = 0; i < counts.size(); ++i) {
      seen += counts[i];
      if (seen >= target) {
        const std::uint64_t hi = hist_detail::bucket_upper(i) - 1;
        return std::min({hi, max});
      }
    }
    return max;
  }

  std::uint64_t p50() const noexcept { return percentile(50.0); }
  std::uint64_t p90() const noexcept { return percentile(90.0); }
  std::uint64_t p99() const noexcept { return percentile(99.0); }
  std::uint64_t p999() const noexcept { return percentile(99.9); }
};

/// Single-writer recording side. Lives inside each rank's runtime.
class LatencyHistogram {
 public:
  LatencyHistogram() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  }

  /// Record one sample (nanoseconds by convention). Writer thread only.
  void record(std::uint64_t v) noexcept {
    counts_[hist_detail::bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    // Single writer: plain read-modify-write on the extrema is safe.
    if (v < min_.load(std::memory_order_relaxed))
      min_.store(v, std::memory_order_relaxed);
    if (v > max_.load(std::memory_order_relaxed))
      max_.store(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  /// Copy out the current state (any thread; coherent enough for live
  /// monitoring, exact once the writer is quiescent).
  HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    s.counts.resize(hist_detail::kBucketCount);
    for (std::uint32_t i = 0; i < hist_detail::kBucketCount; ++i)
      s.counts[i] = counts_[i].load(std::memory_order_relaxed);
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() noexcept {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, hist_detail::kBucketCount> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace remo::obs
