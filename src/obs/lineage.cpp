#include "obs/lineage.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/strfmt.hpp"

namespace remo::obs {

namespace {

// Fibonacci-style multiplicative hash; the table sizes are powers of two.
inline std::size_t cause_slot(CauseId c, std::size_t capacity) noexcept {
  return (static_cast<std::uint64_t>(c) * 0x9E3779B97F4A7C15ull) >> 32 &
         (capacity - 1);
}

inline std::size_t round_up_pow2(std::size_t v) noexcept {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

LineageTable::LineageTable(std::size_t capacity)
    : cells_(round_up_pow2(capacity ? capacity : 1)) {}

LineageCell* LineageTable::find_or_claim(CauseId cause) noexcept {
  const std::size_t cap = cells_.size();
  std::size_t slot = cause_slot(cause, cap);
  // Bound the probe sequence so a full table degrades to counted drops
  // instead of a linear scan per operation.
  const std::size_t max_probe = std::min<std::size_t>(cap, 64);
  for (std::size_t i = 0; i < max_probe; ++i) {
    LineageCell& cell = cells_[(slot + i) & (cap - 1)];
    std::uint32_t cur = cell.cause.load(std::memory_order_relaxed);
    if (cur == cause) return &cell;
    if (cur == 0) {
      // Claim via CAS: rank tables are single-writer (the CAS always
      // succeeds), but the main thread's table may see concurrent
      // injectors racing for the same empty slot.
      if (cell.cause.compare_exchange_strong(cur, cause,
                                             std::memory_order_relaxed))
        return &cell;
      if (cur == cause) return &cell;
    }
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void LineageTable::record_origin(CauseId cause, std::uint64_t ns) noexcept {
  if (LineageCell* cell = find_or_claim(cause))
    cell->first_ns.store(ns, std::memory_order_relaxed);
}

void LineageTable::record_spawn(CauseId cause, std::uint32_t depth,
                                bool remote) noexcept {
  LineageCell* cell = find_or_claim(cause);
  if (!cell) return;
  cell->spawned.fetch_add(1, std::memory_order_relaxed);
  if (remote) cell->remote_spawned.fetch_add(1, std::memory_order_relaxed);
  if (depth > cell->max_depth.load(std::memory_order_relaxed))
    cell->max_depth.store(depth, std::memory_order_relaxed);
}

void LineageTable::record_apply(CauseId cause, std::uint32_t depth,
                                std::uint64_t vertex, std::uint64_t ns) noexcept {
  LineageCell* cell = find_or_claim(cause);
  if (!cell) return;
  cell->applied.fetch_add(1, std::memory_order_relaxed);
  if (depth > cell->max_depth.load(std::memory_order_relaxed))
    cell->max_depth.store(depth, std::memory_order_relaxed);
  if (ns > cell->last_ns.load(std::memory_order_relaxed))
    cell->last_ns.store(ns, std::memory_order_relaxed);
  // A non-origin rank's first touch stands in for first_ns when the origin
  // cell is unavailable (merge prefers the origin's ingest instant).
  if (cell->first_ns.load(std::memory_order_relaxed) == 0)
    cell->first_ns.store(ns, std::memory_order_relaxed);
  if (depth < kWitnessDepths) {
    LineageCell::Witness& w = cell->witness[depth];
    if (ns >= w.ns.load(std::memory_order_relaxed)) {
      w.vertex.store(vertex, std::memory_order_relaxed);
      w.ns.store(ns, std::memory_order_relaxed);
    }
  }
}

std::vector<LineageCellSnapshot> LineageTable::snapshot(std::uint32_t rank) const {
  std::vector<LineageCellSnapshot> out;
  for (const LineageCell& cell : cells_) {
    const CauseId cause = cell.cause.load(std::memory_order_relaxed);
    if (cause == 0) continue;
    LineageCellSnapshot s;
    s.cause = cause;
    s.rank = rank;
    s.max_depth = cell.max_depth.load(std::memory_order_relaxed);
    s.spawned = cell.spawned.load(std::memory_order_relaxed);
    s.remote_spawned = cell.remote_spawned.load(std::memory_order_relaxed);
    s.applied = cell.applied.load(std::memory_order_relaxed);
    s.first_ns = cell.first_ns.load(std::memory_order_relaxed);
    s.last_ns = cell.last_ns.load(std::memory_order_relaxed);
    for (std::uint32_t d = 0; d < kWitnessDepths; ++d) {
      s.witness[d].vertex = cell.witness[d].vertex.load(std::memory_order_relaxed);
      s.witness[d].ns = cell.witness[d].ns.load(std::memory_order_relaxed);
    }
    out.push_back(s);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

LineageSnapshot merge_lineage(const std::vector<LineageCellSnapshot>& cells,
                              std::uint32_t ranks, std::uint64_t dropped) {
  struct Accum {
    LineageRecord rec;
    std::uint64_t origin_first = 0;    ///< origin table's ingest instant
    std::uint64_t fallback_first = 0;  ///< min first-touch elsewhere
    LineageCellSnapshot::Witness witness[kWitnessDepths];
    std::uint32_t witness_rank[kWitnessDepths] = {};
  };
  std::unordered_map<CauseId, Accum> by_cause;
  by_cause.reserve(cells.size());

  for (const LineageCellSnapshot& c : cells) {
    Accum& a = by_cause[c.cause];
    LineageRecord& r = a.rec;
    r.cause = c.cause;
    r.spawned += c.spawned;
    r.remote_spawned += c.remote_spawned;
    r.applied += c.applied;
    r.max_depth = std::max(r.max_depth, c.max_depth);
    if (c.applied > 0) ++r.ranks_touched;
    r.last_ns = std::max(r.last_ns, c.last_ns);
    if (c.first_ns != 0) {
      if (c.rank == cause_origin(c.cause))
        a.origin_first = c.first_ns;
      else if (a.fallback_first == 0 || c.first_ns < a.fallback_first)
        a.fallback_first = c.first_ns;
    }
    // Per depth, keep the latest-applied witness across ranks: the chain of
    // slowest frontier vertices approximates the critical path (and is the
    // exact path when each depth has a single frontier vertex).
    for (std::uint32_t d = 0; d < kWitnessDepths; ++d) {
      if (c.witness[d].vertex == kNoWitness) continue;
      if (a.witness[d].vertex == kNoWitness || c.witness[d].ns >= a.witness[d].ns) {
        a.witness[d] = c.witness[d];
        a.witness_rank[d] = c.rank;
      }
    }
  }

  LineageSnapshot snap;
  snap.ranks = ranks;
  snap.dropped = dropped;
  snap.records.reserve(by_cause.size());
  for (auto& [cause, a] : by_cause) {
    LineageRecord& r = a.rec;
    r.first_ns = a.origin_first ? a.origin_first : a.fallback_first;
    for (std::uint32_t d = 0; d < kWitnessDepths; ++d) {
      if (a.witness[d].vertex == kNoWitness) continue;
      r.path.push_back(
          WitnessStep{d, a.witness[d].vertex, a.witness_rank[d], a.witness[d].ns});
    }
    std::sort(r.path.begin(), r.path.end(),
              [](const WitnessStep& x, const WitnessStep& y) {
                return x.depth < y.depth;
              });
    snap.records.push_back(std::move(r));
  }
  std::sort(snap.records.begin(), snap.records.end(),
            [](const LineageRecord& x, const LineageRecord& y) {
              if (x.span_ns() != y.span_ns()) return x.span_ns() > y.span_ns();
              return x.cause < y.cause;  // deterministic tie-break
            });
  return snap;
}

// ---------------------------------------------------------------------------
// Summary / JSON
// ---------------------------------------------------------------------------

namespace {

template <typename T>
T percentile_of(std::vector<T>& sorted, double p) {
  if (sorted.empty()) return T{};
  std::sort(sorted.begin(), sorted.end());
  const std::size_t idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

LineageSummary LineageSnapshot::summary() const {
  LineageSummary s;
  s.sampled = records.size();
  s.dropped = dropped;
  std::vector<std::uint64_t> visitors;
  std::vector<std::uint32_t> depths;
  visitors.reserve(records.size());
  depths.reserve(records.size());
  for (const LineageRecord& r : records) {
    s.spawned += r.spawned;
    s.remote_spawned += r.remote_spawned;
    s.applied += r.applied;
    visitors.push_back(r.applied);
    depths.push_back(r.max_depth);
  }
  s.visitors_p50 = percentile_of(visitors, 50.0);
  s.visitors_p99 = percentile_of(visitors, 99.0);
  s.depth_p50 = percentile_of(depths, 50.0);
  s.depth_p99 = percentile_of(depths, 99.0);
  s.cross_rank_ratio =
      s.spawned ? static_cast<double>(s.remote_spawned) / static_cast<double>(s.spawned)
                : 0.0;
  return s;
}

Json LineageSummary::to_json() const {
  Json j = Json::object();
  j["sampled"] = sampled;
  j["dropped"] = dropped;
  j["spawned"] = spawned;
  j["remote_spawned"] = remote_spawned;
  j["applied"] = applied;
  j["visitors_p50"] = visitors_p50;
  j["visitors_p99"] = visitors_p99;
  j["depth_p50"] = depth_p50;
  j["depth_p99"] = depth_p99;
  j["cross_rank_ratio"] = cross_rank_ratio;
  return j;
}

Json LineageSnapshot::to_json(std::size_t max_causes) const {
  Json j = Json::object();
  j["schema"] = "remo-lineage-1";
  j["ranks"] = ranks;
  j["summary"] = summary().to_json();
  Json causes = Json::array();
  const std::size_t n =
      max_causes ? std::min(max_causes, records.size()) : records.size();
  for (std::size_t i = 0; i < n; ++i) {
    const LineageRecord& r = records[i];
    Json jr = Json::object();
    jr["cause"] = r.cause;
    jr["origin"] = cause_origin(r.cause);
    jr["seq"] = cause_seq(r.cause);
    jr["spawned"] = r.spawned;
    jr["remote_spawned"] = r.remote_spawned;
    jr["applied"] = r.applied;
    jr["max_depth"] = r.max_depth;
    jr["ranks_touched"] = r.ranks_touched;
    jr["first_ns"] = r.first_ns;
    jr["last_ns"] = r.last_ns;
    jr["span_ns"] = r.span_ns();
    Json path = Json::array();
    for (const WitnessStep& w : r.path) {
      Json jw = Json::object();
      jw["depth"] = w.depth;
      jw["vertex"] = w.vertex;
      jw["rank"] = w.rank;
      jw["ns"] = w.ns;
      path.push_back(std::move(jw));
    }
    jr["path"] = std::move(path);
    causes.push_back(std::move(jr));
  }
  j["causes"] = std::move(causes);
  return j;
}

bool LineageSnapshot::from_json(const Json& doc, LineageSnapshot& out,
                                std::string* error) {
  const auto fail = [&](const char* msg) {
    if (error) *error = msg;
    return false;
  };
  const Json* schema = doc.find("schema");
  if (!schema || !schema->is_string() || schema->as_string() != "remo-lineage-1")
    return fail("not a remo-lineage-1 document");
  const Json* causes = doc.find("causes");
  if (!causes || !causes->is_array()) return fail("missing causes array");
  out = LineageSnapshot{};
  if (const Json* r = doc.find("ranks"))
    out.ranks = static_cast<std::uint32_t>(r->as_uint());
  if (const Json* s = doc.find("summary"))
    if (const Json* d = s->find("dropped")) out.dropped = d->as_uint();
  const auto u64 = [](const Json& j, const char* key) -> std::uint64_t {
    const Json* f = j.find(key);
    return f && f->is_number() ? f->as_uint() : 0;
  };
  for (const Json& jc : causes->items()) {
    if (!jc.is_object()) return fail("cause entry is not an object");
    LineageRecord r;
    r.cause = static_cast<CauseId>(u64(jc, "cause"));
    if (r.cause == 0) return fail("cause entry without a cause id");
    r.spawned = u64(jc, "spawned");
    r.remote_spawned = u64(jc, "remote_spawned");
    r.applied = u64(jc, "applied");
    r.max_depth = static_cast<std::uint32_t>(u64(jc, "max_depth"));
    r.ranks_touched = static_cast<std::uint32_t>(u64(jc, "ranks_touched"));
    r.first_ns = u64(jc, "first_ns");
    r.last_ns = u64(jc, "last_ns");
    if (const Json* path = jc.find("path"); path && path->is_array()) {
      for (const Json& jw : path->items()) {
        WitnessStep w;
        w.depth = static_cast<std::uint32_t>(u64(jw, "depth"));
        w.vertex = u64(jw, "vertex");
        w.rank = static_cast<std::uint32_t>(u64(jw, "rank"));
        w.ns = u64(jw, "ns");
        r.path.push_back(w);
      }
    }
    out.records.push_back(std::move(r));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

namespace {

std::string ns_human(std::uint64_t ns) {
  if (ns >= 1'000'000'000) return strfmt("%.2f s", static_cast<double>(ns) / 1e9);
  if (ns >= 1'000'000) return strfmt("%.2f ms", static_cast<double>(ns) / 1e6);
  if (ns >= 1'000) return strfmt("%.2f us", static_cast<double>(ns) / 1e3);
  return strfmt("%llu ns", static_cast<unsigned long long>(ns));
}

std::string cause_label(CauseId c) {
  const std::uint32_t origin = cause_origin(c);
  if (origin == kMainOrigin) return strfmt("main#%u", cause_seq(c));
  return strfmt("r%u#%u", origin, cause_seq(c));
}

}  // namespace

std::string analyze_lineage(const LineageSnapshot& snap, std::size_t top_k) {
  std::string out;
  const LineageSummary s = snap.summary();
  out += strfmt("lineage: %llu causes sampled, %llu dropped, %u ranks\n",
                static_cast<unsigned long long>(s.sampled),
                static_cast<unsigned long long>(s.dropped), snap.ranks);
  if (s.sampled == 0) return out;
  out += strfmt(
      "amplification: visitors/update p50 %llu p99 %llu, depth p50 %u p99 %u, "
      "cross-rank hop ratio %.3f\n",
      static_cast<unsigned long long>(s.visitors_p50),
      static_cast<unsigned long long>(s.visitors_p99), s.depth_p50, s.depth_p99,
      s.cross_rank_ratio);
  const std::size_t n = std::min(top_k, snap.records.size());
  out += strfmt("top %zu by wall-clock span:\n", n);
  for (std::size_t i = 0; i < n; ++i) {
    const LineageRecord& r = snap.records[i];
    out += strfmt(
        "  #%-3zu %-10s span %-10s visitors %-6llu depth %-3u ranks %-3u "
        "spawned %llu (remote %llu)\n",
        i + 1, cause_label(r.cause).c_str(), ns_human(r.span_ns()).c_str(),
        static_cast<unsigned long long>(r.applied), r.max_depth, r.ranks_touched,
        static_cast<unsigned long long>(r.spawned),
        static_cast<unsigned long long>(r.remote_spawned));
    if (!r.path.empty()) {
      out += "       path:";
      for (const WitnessStep& w : r.path) {
        const std::uint64_t rel = w.ns > r.first_ns ? w.ns - r.first_ns : 0;
        out += strfmt(" d%u v%llu@r%u +%s", w.depth,
                      static_cast<unsigned long long>(w.vertex), w.rank,
                      ns_human(rel).c_str());
        if (&w != &r.path.back()) out += " ->";
      }
      out += '\n';
    }
  }
  return out;
}

std::vector<CauseId> causes_below_descendants(const LineageSnapshot& snap,
                                              std::uint64_t min_descendants) {
  std::vector<CauseId> out;
  for (const LineageRecord& r : snap.records)
    if (r.spawned < min_descendants) out.push_back(r.cause);
  return out;
}

}  // namespace remo::obs
