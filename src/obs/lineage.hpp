// Causal propagation lineage: per-update cause tracking across ranks.
//
// A sampled topology event is stamped with a compact CauseId at ingest;
// every visitor derived from it (program updates, reverse-adds, repair
// probes — anything the processing of a caused visitor sends) inherits the
// cause and a hop depth, so the full recursive cascade of one update is
// attributable after the fact. Each rank records what it sees of each
// cause — visitors spawned, visitors applied, max depth, per-depth witness
// vertices, first/last touch times — into its own single-writer
// LineageTable (relaxed-atomic cells, same discipline as the histograms:
// concurrent readers are race-free, and the view is exact at quiescence).
// `merge_lineage()` folds the per-rank tables into global per-cause
// records: work amplification (visitors per update), propagation depth,
// ranks touched, wall-clock span from ingest to the last descendant, and a
// witness chain approximating the critical path (exact when each depth has
// a single frontier vertex).
//
// CauseId layout (32 bits): [origin:8][sequence:24]. Sequence starts at 1
// and wraps within 24 bits; cause 0 means "untraced". Origin is the
// sampling rank, or kMainOrigin (0xFF) for events injected from the main
// thread via Engine::inject_edge.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace remo::obs {

using CauseId = std::uint32_t;

inline constexpr std::uint32_t kMainOrigin = 0xFF;
inline constexpr std::uint32_t kCauseSeqBits = 24;
inline constexpr std::uint32_t kCauseSeqMask = (1u << kCauseSeqBits) - 1;

constexpr CauseId make_cause(std::uint32_t origin, std::uint32_t seq) noexcept {
  return (origin << kCauseSeqBits) | (seq & kCauseSeqMask);
}
constexpr std::uint32_t cause_origin(CauseId c) noexcept {
  return c >> kCauseSeqBits;
}
constexpr std::uint32_t cause_seq(CauseId c) noexcept { return c & kCauseSeqMask; }

/// Depths 0..kWitnessDepths-1 record a witness vertex; deeper hops still
/// count toward max_depth but carry no per-depth witness.
inline constexpr std::uint32_t kWitnessDepths = 16;

inline constexpr std::uint64_t kNoWitness = ~std::uint64_t{0};

/// One rank's view of one cause. All cells are written by the owning
/// thread only (relaxed atomics let snapshots read concurrently).
struct LineageCell {
  std::atomic<std::uint32_t> cause{0};  ///< 0 = empty slot
  std::atomic<std::uint32_t> max_depth{0};
  std::atomic<std::uint64_t> spawned{0};         ///< caused visitors sent
  std::atomic<std::uint64_t> remote_spawned{0};  ///< ... to another rank
  std::atomic<std::uint64_t> applied{0};         ///< caused visitors applied
  std::atomic<std::uint64_t> first_ns{0};  ///< ingest time at origin; else first touch
  std::atomic<std::uint64_t> last_ns{0};   ///< latest apply completion
  struct Witness {
    std::atomic<std::uint64_t> vertex{kNoWitness};
    std::atomic<std::uint64_t> ns{0};  ///< latest apply at this depth
  };
  Witness witness[kWitnessDepths];
};

/// Plain-struct copy of one nonempty cell (plus the recording rank).
struct LineageCellSnapshot {
  CauseId cause = 0;
  std::uint32_t rank = 0;  ///< table owner (kMainOrigin for the main thread)
  std::uint32_t max_depth = 0;
  std::uint64_t spawned = 0;
  std::uint64_t remote_spawned = 0;
  std::uint64_t applied = 0;
  std::uint64_t first_ns = 0;
  std::uint64_t last_ns = 0;
  struct Witness {
    std::uint64_t vertex = kNoWitness;
    std::uint64_t ns = 0;
  };
  Witness witness[kWitnessDepths];
};

/// Fixed-capacity open-addressed cause table. The write side belongs to
/// one thread (each rank owns one table; the engine's main thread owns one
/// for API injections — claims there go through a CAS so concurrent
/// injectors stay safe). When the table fills, further causes are counted
/// in `dropped()` and silently untracked.
class LineageTable {
 public:
  explicit LineageTable(std::size_t capacity);

  /// Record the ingest instant of a cause sampled by this table's owner.
  void record_origin(CauseId cause, std::uint64_t ns) noexcept;

  /// Record one caused visitor sent (child hop depth `depth`).
  void record_spawn(CauseId cause, std::uint32_t depth, bool remote) noexcept;

  /// Record one caused visitor applied at `vertex`, hop depth `depth`,
  /// finishing at `ns`.
  void record_apply(CauseId cause, std::uint32_t depth, std::uint64_t vertex,
                    std::uint64_t ns) noexcept;

  std::size_t capacity() const noexcept { return cells_.size(); }

  /// Lineage operations lost because the table was full (each untracked
  /// record_* call counts once).
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Copy out every nonempty cell, tagging each with `rank`. Callable
  /// concurrently with the writer (exact at quiescence).
  std::vector<LineageCellSnapshot> snapshot(std::uint32_t rank) const;

 private:
  LineageCell* find_or_claim(CauseId cause) noexcept;

  std::vector<LineageCell> cells_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// One step of a cause's witness chain (the deepest-known frontier vertex
/// per hop depth, latest-applied across ranks).
struct WitnessStep {
  std::uint32_t depth = 0;
  std::uint64_t vertex = 0;
  std::uint32_t rank = 0;
  std::uint64_t ns = 0;
};

/// Merged, global view of one cause's cascade.
struct LineageRecord {
  CauseId cause = 0;
  std::uint64_t spawned = 0;         ///< visitors derived from the update
  std::uint64_t remote_spawned = 0;  ///< ... that crossed a rank boundary
  std::uint64_t applied = 0;         ///< visitor applications (incl. the root)
  std::uint32_t max_depth = 0;
  std::uint32_t ranks_touched = 0;   ///< ranks that applied a caused visitor
  std::uint64_t first_ns = 0;        ///< ingest instant
  std::uint64_t last_ns = 0;         ///< last descendant applied
  std::vector<WitnessStep> path;     ///< witness chain, ascending depth

  std::uint64_t span_ns() const noexcept {
    return last_ns > first_ns ? last_ns - first_ns : 0;
  }
};

/// Aggregate amplification statistics over a set of records — the
/// `lineage` block of stats / bench JSON.
struct LineageSummary {
  std::uint64_t sampled = 0;  ///< causes tracked
  std::uint64_t dropped = 0;  ///< causes lost to table overflow
  std::uint64_t spawned = 0;
  std::uint64_t remote_spawned = 0;
  std::uint64_t applied = 0;
  std::uint64_t visitors_p50 = 0;  ///< applied-visitors-per-update percentiles
  std::uint64_t visitors_p99 = 0;
  std::uint32_t depth_p50 = 0;
  std::uint32_t depth_p99 = 0;
  double cross_rank_ratio = 0.0;  ///< remote_spawned / spawned

  Json to_json() const;
};

/// The merged lineage of one run (schema "remo-lineage-1").
struct LineageSnapshot {
  std::uint32_t ranks = 0;
  std::uint64_t dropped = 0;
  std::vector<LineageRecord> records;  ///< sorted by span_ns, descending

  LineageSummary summary() const;

  /// Full dump, schema "remo-lineage-1" (what `remo_cli trace-analyze`
  /// consumes). `max_causes` caps the per-cause array; 0 = no cap.
  Json to_json(std::size_t max_causes = 0) const;

  /// Parse a remo-lineage-1 document. Returns false (and fills `error`)
  /// on schema mismatch.
  static bool from_json(const Json& doc, LineageSnapshot& out, std::string* error);
};

/// Fold per-rank cell snapshots into global per-cause records.
LineageSnapshot merge_lineage(const std::vector<LineageCellSnapshot>& cells,
                              std::uint32_t ranks, std::uint64_t dropped);

/// Render the trace-analyze report: summary line, amplification stats, and
/// the top-`top_k` most expensive causes (by wall-clock span) with their
/// critical paths.
std::string analyze_lineage(const LineageSnapshot& snap, std::size_t top_k);

/// Causes whose cascade never spawned at least `min_descendants` visitors
/// (the CI smoke gate's "zero recorded descendants" check).
std::vector<CauseId> causes_below_descendants(const LineageSnapshot& snap,
                                              std::uint64_t min_descendants);

}  // namespace remo::obs
