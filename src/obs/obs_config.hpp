// Observability switches, embedded in EngineConfig as `obs`.
#pragma once

#include <cstddef>
#include <cstdint>

namespace remo::obs {

/// Which counter source the profiling layer (obs/prof.hpp) uses. kAuto
/// probes at engine construction: perf_event when the kernel allows
/// self-profiling, else rusage task-clock, else an inert no-op — so the
/// same binary runs in locked-down CI containers.
enum class ProfBackendKind : std::uint8_t {
  kAuto = 0,
  kPerfEvent,
  kRusage,
  kNoop,
};

struct ObsConfig {
  /// Per-update latency histograms (one per rank, merged on snapshot).
  /// When off, topology-event processing skips its two clock reads.
  bool latency = true;

  /// Sample every 2^shift-th topology event into the latency histogram.
  /// 0 records every event and costs ~2 clock reads per event — measured
  /// at 10-18% of saturation ingest throughput on the bench host, which
  /// is why the default amortises to every 64th event (<0.5% overhead;
  /// the uniform stride keeps the percentiles statistically valid).
  std::uint32_t latency_sample_shift = 6;

  /// Per-phase wall-clock accounting (ingest / propagate / quiesce /
  /// snapshot-drain). Two clock reads per *loop iteration* (not per event),
  /// so the cost is amortised over whole batches.
  bool phase_timers = true;

  /// Chrome-trace event capture. Off by default: the hot path then costs
  /// one branch per loop iteration. (Compile with -DREMO_OBS_NO_TRACE to
  /// remove even that.)
  bool trace = false;

  /// Per-rank trace ring capacity (events). When full, oldest slices are
  /// overwritten; the export records how many were dropped.
  std::size_t trace_capacity = std::size_t{1} << 16;

  /// Causal lineage tracing (obs/lineage.hpp): stamp sampled topology
  /// events with a CauseId and account the full derived cascade (visitors,
  /// depth, ranks, wall-clock span) per cause. Off by default; when on,
  /// the hot path pays a counter+mask check per topology event and table
  /// updates only for sampled causes' cascades.
  bool lineage = false;

  /// Sample every 2^shift-th topology event into the lineage table. The
  /// default matches the latency sampler: every 64th event keeps the
  /// stamping + table work under a few percent of ingest throughput while
  /// the uniform stride keeps amplification percentiles valid.
  std::uint32_t lineage_sample_shift = 6;

  /// Per-rank lineage table capacity (causes). Overflow is counted and
  /// dropped, never blocking the hot path.
  std::size_t lineage_capacity = std::size_t{1} << 12;

  /// Hardware-counter profiling (obs/prof.hpp): per-rank counter groups
  /// read at phase boundaries, attributing cycles / instructions / LLC
  /// misses to ingest / propagate / quiesce / snapshot-drain. Off by
  /// default; when on, the loop pays one branch per phase boundary plus a
  /// group-read syscall every 2^prof_sample_shift-th boundary.
  bool prof = false;

  /// Read counters every 2^shift-th phase boundary; pending wall-clock is
  /// attributed proportionally at the next read. The default keeps the
  /// prof-on A/B overhead within the repo's ≤3% budget (see
  /// bench/results/BENCH_fig3_prof_{off,on}.json); 0 reads every boundary.
  std::uint32_t prof_sample_shift = 4;

  /// Counter source; kAuto probes perf_event → rusage → noop.
  ProfBackendKind prof_backend = ProfBackendKind::kAuto;

  /// Sampled on-CPU stacks (folded/flamegraph output) alongside the
  /// counters. Requires prof; costs a SIGPROF + backtrace per rank every
  /// prof_stack_period_us.
  bool prof_stacks = false;

  /// Stack sampling period per rank thread, microseconds.
  std::uint32_t prof_stack_period_us = 1000;
};

}  // namespace remo::obs
