// Observability switches, embedded in EngineConfig as `obs`.
#pragma once

#include <cstddef>
#include <cstdint>

namespace remo::obs {

struct ObsConfig {
  /// Per-update latency histograms (one per rank, merged on snapshot).
  /// When off, topology-event processing skips its two clock reads.
  bool latency = true;

  /// Sample every 2^shift-th topology event into the latency histogram.
  /// 0 records every event and costs ~2 clock reads per event — measured
  /// at 10-18% of saturation ingest throughput on the bench host, which
  /// is why the default amortises to every 64th event (<0.5% overhead;
  /// the uniform stride keeps the percentiles statistically valid).
  std::uint32_t latency_sample_shift = 6;

  /// Per-phase wall-clock accounting (ingest / propagate / quiesce /
  /// snapshot-drain). Two clock reads per *loop iteration* (not per event),
  /// so the cost is amortised over whole batches.
  bool phase_timers = true;

  /// Chrome-trace event capture. Off by default: the hot path then costs
  /// one branch per loop iteration. (Compile with -DREMO_OBS_NO_TRACE to
  /// remove even that.)
  bool trace = false;

  /// Per-rank trace ring capacity (events). When full, oldest slices are
  /// overwritten; the export records how many were dropped.
  std::size_t trace_capacity = std::size_t{1} << 16;

  /// Causal lineage tracing (obs/lineage.hpp): stamp sampled topology
  /// events with a CauseId and account the full derived cascade (visitors,
  /// depth, ranks, wall-clock span) per cause. Off by default; when on,
  /// the hot path pays a counter+mask check per topology event and table
  /// updates only for sampled causes' cascades.
  bool lineage = false;

  /// Sample every 2^shift-th topology event into the lineage table. The
  /// default matches the latency sampler: every 64th event keeps the
  /// stamping + table work under a few percent of ingest throughput while
  /// the uniform stride keeps amplification percentiles valid.
  std::uint32_t lineage_sample_shift = 6;

  /// Per-rank lineage table capacity (causes). Overflow is counted and
  /// dropped, never blocking the hot path.
  std::size_t lineage_capacity = std::size_t{1} << 12;
};

}  // namespace remo::obs
