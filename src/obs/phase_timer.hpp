// Per-rank wall-clock accounting of the event loop's phases.
//
// Each rank classifies every loop iteration into one phase and accumulates
// its duration: ingest (stream pulls + their local processing), propagate
// (mailbox drains: algorithm cascades and routed topology events), quiesce
// (parked or circulating termination tokens), snapshot-drain (harvest and
// repair control work). Separating ingestion from propagation cost is what
// lets two configurations be compared at all (Besta et al.'s streaming
// survey makes this point); the quiesce column shows how much of a run is
// idle-tail rather than work.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>

namespace remo::obs {

enum class Phase : std::uint8_t {
  kIngest = 0,
  kPropagate = 1,
  kQuiesce = 2,
  kSnapshotDrain = 3,
};
inline constexpr std::size_t kPhaseCount = 4;

constexpr const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kIngest:
      return "ingest";
    case Phase::kPropagate:
      return "propagate";
    case Phase::kQuiesce:
      return "quiesce";
    case Phase::kSnapshotDrain:
      return "snapshot_drain";
  }
  return "?";
}

/// Mergeable copy of one timer set, nanoseconds per phase.
struct PhaseSnapshot {
  std::array<std::uint64_t, kPhaseCount> ns{};

  std::uint64_t operator[](Phase p) const noexcept {
    return ns[static_cast<std::size_t>(p)];
  }
  std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (const auto v : ns) t += v;
    return t;
  }
  void merge(const PhaseSnapshot& other) noexcept {
    for (std::size_t i = 0; i < kPhaseCount; ++i) ns[i] += other.ns[i];
  }
};

/// Single-writer accumulator (the owning rank), relaxed-atomic so the main
/// thread can snapshot concurrently.
class PhaseTimers {
 public:
  void add(Phase p, std::uint64_t ns) noexcept {
    ns_[static_cast<std::size_t>(p)].fetch_add(ns, std::memory_order_relaxed);
  }

  PhaseSnapshot snapshot() const noexcept {
    PhaseSnapshot s;
    for (std::size_t i = 0; i < kPhaseCount; ++i)
      s.ns[i] = ns_[i].load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kPhaseCount> ns_{};
};

/// Monotonic nanosecond clock shared by all observability call sites.
inline std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace remo::obs
