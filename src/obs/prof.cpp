#include "obs/prof.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "common/strfmt.hpp"
#include "obs/span.hpp"

#if defined(__linux__)
#include <sys/resource.h>
#include <sys/time.h>
#if __has_include(<linux/perf_event.h>)
#define REMO_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif
#if __has_include(<execinfo.h>)
#define REMO_HAVE_STACK_SAMPLER 1
#include <cxxabi.h>
#include <execinfo.h>
#include <pthread.h>
#include <signal.h>
#endif
#endif  // __linux__

namespace remo::obs {

// ---------------------------------------------------------------------------
// Catalog

const char* prof_counter_name(ProfCounter c) noexcept {
  switch (c) {
    case ProfCounter::kCycles:
      return "cycles";
    case ProfCounter::kInstructions:
      return "instructions";
    case ProfCounter::kLlcLoads:
      return "llc_loads";
    case ProfCounter::kLlcMisses:
      return "llc_misses";
    case ProfCounter::kBranchMisses:
      return "branch_misses";
    case ProfCounter::kStalledCycles:
      return "stalled_cycles";
    case ProfCounter::kDtlbLoads:
      return "dtlb_loads";
    case ProfCounter::kDtlbMisses:
      return "dtlb_misses";
    case ProfCounter::kMinorFaults:
      return "minor_faults";
    case ProfCounter::kMajorFaults:
      return "major_faults";
    case ProfCounter::kTaskClockNs:
      return "task_clock_ns";
  }
  return "?";
}

const char* prof_backend_name(ProfBackendKind k) noexcept {
  switch (k) {
    case ProfBackendKind::kAuto:
      return "auto";
    case ProfBackendKind::kPerfEvent:
      return "perf_event";
    case ProfBackendKind::kRusage:
      return "rusage";
    case ProfBackendKind::kNoop:
      return "noop";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// perf_event backend

#ifdef REMO_HAVE_PERF_EVENT

namespace {

long perf_event_open_raw(perf_event_attr* attr, pid_t pid, int cpu,
                         int group_fd, unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

struct PerfDesc {
  ProfCounter counter;
  std::uint32_t type;
  std::uint64_t config;
  int group;  ///< counters are scheduled per group; leaders are the first
              ///< desc of each group
};

constexpr std::uint64_t kLlcRead =
    PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8);
constexpr std::uint64_t kDtlbRead =
    PERF_COUNT_HW_CACHE_DTLB | (PERF_COUNT_HW_CACHE_OP_READ << 8);

// Leader first within each group: the group-0 cycles counter anchors the
// original seven-event group; members that fail to open (virtualised PMUs
// routinely lack stalled-cycles or LLC events) are dropped individually.
// The dTLB pair (the huge-page A/B evidence) lives in a *second* group
// with its own leader so it never overcommits group 0 — most PMUs schedule
// 4-6 generic counters per group, and a too-big group silently multiplexes
// or refuses members. The page-fault software events ride in group 1
// (software counters always schedule).
constexpr PerfDesc kPerfDescs[] = {
    {ProfCounter::kCycles, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, 0},
    {ProfCounter::kInstructions, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_INSTRUCTIONS, 0},
    {ProfCounter::kLlcLoads, PERF_TYPE_HW_CACHE,
     kLlcRead | (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16), 0},
    {ProfCounter::kLlcMisses, PERF_TYPE_HW_CACHE,
     kLlcRead | (PERF_COUNT_HW_CACHE_RESULT_MISS << 16), 0},
    {ProfCounter::kBranchMisses, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_BRANCH_MISSES, 0},
    {ProfCounter::kStalledCycles, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_STALLED_CYCLES_BACKEND, 0},
    {ProfCounter::kTaskClockNs, PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK,
     0},
    {ProfCounter::kDtlbLoads, PERF_TYPE_HW_CACHE,
     kDtlbRead | (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16), 1},
    {ProfCounter::kDtlbMisses, PERF_TYPE_HW_CACHE,
     kDtlbRead | (PERF_COUNT_HW_CACHE_RESULT_MISS << 16), 1},
    {ProfCounter::kMinorFaults, PERF_TYPE_SOFTWARE,
     PERF_COUNT_SW_PAGE_FAULTS_MIN, 1},
    {ProfCounter::kMajorFaults, PERF_TYPE_SOFTWARE,
     PERF_COUNT_SW_PAGE_FAULTS_MAJ, 1},
};
constexpr std::size_t kPerfDescCount =
    sizeof(kPerfDescs) / sizeof(kPerfDescs[0]);
constexpr int kPerfGroupCount = 2;

perf_event_attr make_attr(const PerfDesc& d, bool leader) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = d.type;
  attr.config = d.config;
  // perf_event_paranoid == 2 still allows user-space self-profiling as
  // long as the kernel/hypervisor are excluded.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.disabled = leader ? 1 : 0;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID;
  return attr;
}

class PerfEventBackend final : public CounterBackend {
 public:
  ~PerfEventBackend() override {
    for (const auto& g : groups_)
      for (const auto& m : g.members) close(m.fd);
  }

  const char* name() const noexcept override { return "perf_event"; }
  std::uint32_t available() const noexcept override { return available_; }

  bool open() override {
    if (!groups_.empty()) return true;  // already open
    for (int gi = 0; gi < kPerfGroupCount; ++gi) {
      Group group;
      for (std::size_t i = 0; i < kPerfDescCount; ++i) {
        if (kPerfDescs[i].group != gi) continue;
        const bool leader = group.members.empty();
        perf_event_attr attr = make_attr(kPerfDescs[i], leader);
        const int fd = static_cast<int>(perf_event_open_raw(
            &attr, 0, -1, leader ? -1 : group.members.front().fd, 0));
        if (fd < 0) {
          // A failed leader drops the whole group (e.g. no dTLB events on
          // this PMU); a failed member is dropped individually.
          if (leader) break;
          continue;
        }
        add_member(group, kPerfDescs[i].counter, fd);
      }
      if (group.members.empty()) continue;
      ioctl(group.members.front().fd, PERF_EVENT_IOC_RESET,
            PERF_IOC_FLAG_GROUP);
      ioctl(group.members.front().fd, PERF_EVENT_IOC_ENABLE,
            PERF_IOC_FLAG_GROUP);
      groups_.push_back(std::move(group));
    }
    return !groups_.empty();
  }

  bool read(CounterSet& out) override {
    if (groups_.empty()) return false;
    bool any = false;
    for (const auto& g : groups_) {
      // PERF_FORMAT_GROUP | PERF_FORMAT_ID layout:
      //   u64 nr; { u64 value; u64 id; } values[nr];
      std::uint64_t buf[1 + 2 * kPerfDescCount];
      const ssize_t want = static_cast<ssize_t>(
          (1 + 2 * g.members.size()) * sizeof(std::uint64_t));
      const ssize_t got = ::read(g.members.front().fd, buf, sizeof(buf));
      if (got < want) continue;
      const std::uint64_t nr = buf[0];
      for (std::uint64_t i = 0; i < nr; ++i) {
        const std::uint64_t value = buf[1 + 2 * i];
        const std::uint64_t id = buf[2 + 2 * i];
        for (const auto& m : g.members)
          if (m.id == id) {
            out[m.counter] = value;
            break;
          }
      }
      any = true;
    }
    return any;
  }

 private:
  struct Member {
    ProfCounter counter;
    int fd;
    std::uint64_t id;
  };
  struct Group {
    std::vector<Member> members;  // front() is the leader
  };

  void add_member(Group& g, ProfCounter c, int fd) {
    std::uint64_t id = 0;
    ioctl(fd, PERF_EVENT_IOC_ID, &id);
    g.members.push_back(Member{c, fd, id});
    available_ |= prof_counter_bit(c);
  }

  std::vector<Group> groups_;
  std::uint32_t available_ = 0;
};

bool perf_event_probe() {
  perf_event_attr attr = make_attr(kPerfDescs[0], /*leader=*/true);
  const int fd =
      static_cast<int>(perf_event_open_raw(&attr, 0, -1, -1, 0));
  if (fd < 0) return false;
  close(fd);
  return true;
}

}  // namespace

#endif  // REMO_HAVE_PERF_EVENT

// ---------------------------------------------------------------------------
// rusage backend (task-clock only)

namespace {

#ifdef __linux__
std::uint64_t timeval_ns(const timeval& tv) {
  return static_cast<std::uint64_t>(tv.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(tv.tv_usec) * 1000ull;
}
#endif

class RusageBackend final : public CounterBackend {
 public:
  const char* name() const noexcept override { return "rusage"; }
  std::uint32_t available() const noexcept override {
#ifdef __linux__
    // Task-clock plus the per-thread fault counters: on PMU-less hosts
    // (every CI container) the minor-fault rate is the locality evidence
    // the dTLB counters would otherwise carry — THP-backed arenas cut it
    // by ~512x on touched memory.
    return prof_counter_bit(ProfCounter::kTaskClockNs) |
           prof_counter_bit(ProfCounter::kMinorFaults) |
           prof_counter_bit(ProfCounter::kMajorFaults);
#else
    return 0;
#endif
  }

  bool open() override {
    CounterSet probe;
    return read(probe);
  }

  bool read([[maybe_unused]] CounterSet& out) override {
#ifdef __linux__
    rusage ru{};
    if (getrusage(RUSAGE_THREAD, &ru) != 0) return false;
    out[ProfCounter::kTaskClockNs] =
        timeval_ns(ru.ru_utime) + timeval_ns(ru.ru_stime);
    out[ProfCounter::kMinorFaults] = static_cast<std::uint64_t>(ru.ru_minflt);
    out[ProfCounter::kMajorFaults] = static_cast<std::uint64_t>(ru.ru_majflt);
    return true;
#else
    return false;
#endif
  }
};

class NoopBackend final : public CounterBackend {
 public:
  const char* name() const noexcept override { return "noop"; }
  std::uint32_t available() const noexcept override { return 0; }
  bool open() override { return false; }
  bool read(CounterSet&) override { return false; }
};

}  // namespace

ProfBackendKind resolve_prof_backend(ProfBackendKind requested) noexcept {
  if (requested != ProfBackendKind::kAuto) return requested;
#ifdef REMO_HAVE_PERF_EVENT
  if (perf_event_probe()) return ProfBackendKind::kPerfEvent;
#endif
#ifdef __linux__
  return ProfBackendKind::kRusage;
#else
  return ProfBackendKind::kNoop;
#endif
}

std::unique_ptr<CounterBackend> make_counter_backend(ProfBackendKind kind) {
  switch (resolve_prof_backend(kind)) {
    case ProfBackendKind::kPerfEvent:
#ifdef REMO_HAVE_PERF_EVENT
      return std::make_unique<PerfEventBackend>();
#else
      return std::make_unique<NoopBackend>();
#endif
    case ProfBackendKind::kRusage:
      return std::make_unique<RusageBackend>();
    case ProfBackendKind::kAuto:  // unreachable after resolve
    case ProfBackendKind::kNoop:
      break;
  }
  return std::make_unique<NoopBackend>();
}

// ---------------------------------------------------------------------------
// ScriptedBackend

ScriptedBackend::ScriptedBackend(std::vector<CounterSet> timeline,
                                 std::uint32_t available_mask)
    : timeline_(std::move(timeline)), available_(available_mask) {}

bool ScriptedBackend::open() { return !open_fails_; }

bool ScriptedBackend::read(CounterSet& out) {
  if (fail_reads_ > 0) {
    --fail_reads_;
    return false;
  }
  if (timeline_.empty()) return false;
  const std::size_t i = std::min(next_, timeline_.size() - 1);
  ++next_;
  out = timeline_[i];
  return true;
}

// ---------------------------------------------------------------------------
// RankProfSnapshot / ProfSnapshot

CounterSet RankProfSnapshot::total() const noexcept {
  CounterSet t;
  for (const auto& p : phase) t += p;
  return t;
}

std::uint64_t RankProfSnapshot::total_attributed_ns() const noexcept {
  std::uint64_t t = 0;
  for (const auto v : attributed_ns) t += v;
  return t;
}

void RankProfSnapshot::merge(const RankProfSnapshot& o) noexcept {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    phase[i] += o.phase[i];
    attributed_ns[i] += o.attributed_ns[i];
  }
  boundaries += o.boundaries;
  reads += o.reads;
  read_failures += o.read_failures;
}

RankProfSnapshot ProfSnapshot::totals() const {
  RankProfSnapshot t;
  t.rank = kProfTotalsRank;
  for (const auto& r : per_rank) t.merge(r);
  return t;
}

double prof_ipc(const CounterSet& c) noexcept {
  const auto cyc = c[ProfCounter::kCycles];
  return cyc ? static_cast<double>(c[ProfCounter::kInstructions]) /
                   static_cast<double>(cyc)
             : 0.0;
}

double prof_llc_miss_rate(const CounterSet& c) noexcept {
  const auto loads = c[ProfCounter::kLlcLoads];
  return loads ? static_cast<double>(c[ProfCounter::kLlcMisses]) /
                     static_cast<double>(loads)
               : 0.0;
}

double prof_branch_miss_per_kinst(const CounterSet& c) noexcept {
  const auto inst = c[ProfCounter::kInstructions];
  return inst ? 1000.0 * static_cast<double>(c[ProfCounter::kBranchMisses]) /
                    static_cast<double>(inst)
              : 0.0;
}

double prof_stalled_frac(const CounterSet& c) noexcept {
  const auto cyc = c[ProfCounter::kCycles];
  return cyc ? static_cast<double>(c[ProfCounter::kStalledCycles]) /
                   static_cast<double>(cyc)
             : 0.0;
}

double prof_dtlb_miss_rate(const CounterSet& c) noexcept {
  const auto loads = c[ProfCounter::kDtlbLoads];
  return loads ? static_cast<double>(c[ProfCounter::kDtlbMisses]) /
                     static_cast<double>(loads)
               : 0.0;
}

namespace {

Json phase_block_json(const CounterSet& c, std::uint64_t attributed_ns) {
  Json b = Json::object();
  for (std::size_t i = 0; i < kProfCounterCount; ++i)
    b[prof_counter_name(static_cast<ProfCounter>(i))] = c.v[i];
  b["attributed_ns"] = attributed_ns;
  b["ipc"] = prof_ipc(c);
  b["llc_miss_rate"] = prof_llc_miss_rate(c);
  b["dtlb_miss_rate"] = prof_dtlb_miss_rate(c);
  return b;
}

Json rank_json(const RankProfSnapshot& r, bool totals) {
  Json j = Json::object();
  if (!totals) j["rank"] = static_cast<std::uint64_t>(r.rank);
  j["boundaries"] = r.boundaries;
  j["reads"] = r.reads;
  j["read_failures"] = r.read_failures;
  Json phases = Json::object();
  for (std::size_t i = 0; i < kPhaseCount; ++i)
    phases[phase_name(static_cast<Phase>(i))] =
        phase_block_json(r.phase[i], r.attributed_ns[i]);
  j["phases"] = phases;
  return j;
}

bool parse_rank_json(const Json& j, RankProfSnapshot& out, std::string* error) {
  if (const Json* rank = j.find("rank"))
    out.rank = static_cast<std::uint32_t>(rank->as_uint());
  if (const Json* v = j.find("boundaries")) out.boundaries = v->as_uint();
  if (const Json* v = j.find("reads")) out.reads = v->as_uint();
  if (const Json* v = j.find("read_failures")) out.read_failures = v->as_uint();
  const Json* phases = j.find("phases");
  if (phases == nullptr) {
    if (error) *error = "rank entry missing phases";
    return false;
  }
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const Json* p = phases->find(phase_name(static_cast<Phase>(i)));
    if (p == nullptr) continue;
    for (std::size_t c = 0; c < kProfCounterCount; ++c)
      if (const Json* v = p->find(prof_counter_name(static_cast<ProfCounter>(c))))
        out.phase[i].v[c] = v->as_uint();
    if (const Json* v = p->find("attributed_ns"))
      out.attributed_ns[i] = v->as_uint();
  }
  return true;
}

}  // namespace

Json ProfSnapshot::to_json() const {
  Json j = Json::object();
  j["schema"] = "remo-prof-1";
  j["enabled"] = enabled;
  j["backend"] = backend;
  j["degraded"] = degraded;
  j["sample_shift"] = static_cast<std::uint64_t>(sample_shift);
  Json names = Json::array();
  for (std::size_t i = 0; i < kProfCounterCount; ++i)
    if (available & prof_counter_bit(static_cast<ProfCounter>(i)))
      names.push_back(Json(prof_counter_name(static_cast<ProfCounter>(i))));
  j["counters"] = names;
  Json ranks = Json::array();
  for (const auto& r : per_rank) ranks.push_back(rank_json(r, false));
  j["per_rank"] = ranks;
  j["totals"] = rank_json(totals(), true);
  return j;
}

bool ProfSnapshot::from_json(const Json& doc, ProfSnapshot& out,
                             std::string* error) {
  const Json* schema = doc.find("schema");
  if (schema == nullptr || schema->as_string() != "remo-prof-1") {
    if (error) *error = "not a remo-prof-1 document";
    return false;
  }
  out = ProfSnapshot{};
  if (const Json* v = doc.find("enabled")) out.enabled = v->as_bool();
  if (const Json* v = doc.find("backend")) out.backend = v->as_string();
  if (const Json* v = doc.find("degraded")) out.degraded = v->as_bool();
  if (const Json* v = doc.find("sample_shift"))
    out.sample_shift = static_cast<std::uint32_t>(v->as_uint());
  if (const Json* names = doc.find("counters"); names && names->is_array()) {
    for (const Json& n : names->items())
      for (std::size_t i = 0; i < kProfCounterCount; ++i)
        if (n.as_string() == prof_counter_name(static_cast<ProfCounter>(i)))
          out.available |= prof_counter_bit(static_cast<ProfCounter>(i));
  }
  const Json* ranks = doc.find("per_rank");
  if (ranks == nullptr || !ranks->is_array()) {
    if (error) *error = "missing per_rank array";
    return false;
  }
  for (const Json& r : ranks->items()) {
    RankProfSnapshot rs;
    if (!parse_rank_json(r, rs, error)) return false;
    out.per_rank.push_back(rs);
  }
  return true;
}

// ---------------------------------------------------------------------------
// RankProfiler

RankProfiler::RankProfiler(std::uint32_t rank,
                           std::unique_ptr<CounterBackend> backend,
                           std::uint32_t sample_shift)
    : rank_(rank),
      backend_(std::move(backend)),
      sample_mask_((std::uint64_t{1} << std::min(sample_shift, 31u)) - 1) {}

void RankProfiler::attach() {
  if (open_) return;
  if (!backend_->open()) return;
  if (!backend_->read(last_)) return;
  open_ = true;
  active_.store(true, std::memory_order_relaxed);
}

void RankProfiler::on_phase(Phase p, std::uint64_t ns) noexcept {
  if (!open_) return;
  boundaries_.fetch_add(1, std::memory_order_relaxed);
  pending_ns_[static_cast<std::size_t>(p)] += ns;
  if ((++boundary_seq_ & sample_mask_) != 0) return;
  sample_now();
}

void RankProfiler::flush() noexcept {
  if (!open_) return;
  sample_now();
}

void RankProfiler::sample_now() noexcept {
  CounterSet now;
  if (!backend_->read(now)) {
    read_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  const CounterSet delta = now.delta_since(last_);
  last_ = now;

  std::uint64_t pend_total = 0;
  std::size_t largest = 0;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    pend_total += pending_ns_[i];
    if (pending_ns_[i] > pending_ns_[largest]) largest = i;
  }
  if (pend_total == 0) return;  // nothing elapsed; drop the (empty) delta

  // Attribute the delta across phases proportionally to their pending
  // wall-clock. Integer shares for every phase but the largest, which
  // takes the remainder — conserves totals exactly and is deterministic.
  __extension__ typedef unsigned __int128 u128;  // exact 64x64/64 shares
  CounterSet assigned_sum;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (pending_ns_[i] == 0 || i == largest) continue;
    for (std::size_t c = 0; c < kProfCounterCount; ++c) {
      const std::uint64_t share = static_cast<std::uint64_t>(
          (static_cast<u128>(delta.v[c]) * pending_ns_[i]) / pend_total);
      assigned_sum.v[c] += share;
      acc_[i][c].fetch_add(share, std::memory_order_relaxed);
    }
    attributed_ns_[i].fetch_add(pending_ns_[i], std::memory_order_relaxed);
  }
  for (std::size_t c = 0; c < kProfCounterCount; ++c)
    acc_[largest][c].fetch_add(delta.v[c] - assigned_sum.v[c],
                               std::memory_order_relaxed);
  attributed_ns_[largest].fetch_add(pending_ns_[largest],
                                    std::memory_order_relaxed);
  pending_ns_.fill(0);
}

RankProfSnapshot RankProfiler::snapshot() const {
  RankProfSnapshot s;
  s.rank = rank_;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    for (std::size_t c = 0; c < kProfCounterCount; ++c)
      s.phase[i].v[c] = acc_[i][c].load(std::memory_order_relaxed);
    s.attributed_ns[i] = attributed_ns_[i].load(std::memory_order_relaxed);
  }
  s.boundaries = boundaries_.load(std::memory_order_relaxed);
  s.reads = reads_.load(std::memory_order_relaxed);
  s.read_failures = read_failures_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Process rusage

ProcRusage read_proc_rusage() noexcept {
  ProcRusage r;
#ifdef __linux__
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    r.user_ns = timeval_ns(ru.ru_utime);
    r.sys_ns = timeval_ns(ru.ru_stime);
    r.max_rss_kb = static_cast<std::uint64_t>(ru.ru_maxrss);
    r.minor_faults = static_cast<std::uint64_t>(ru.ru_minflt);
    r.major_faults = static_cast<std::uint64_t>(ru.ru_majflt);
    r.voluntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nvcsw);
    r.involuntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nivcsw);
  }
#endif
  return r;
}

Json proc_rusage_json(const ProcRusage& r) {
  Json j = Json::object();
  j["user_ns"] = r.user_ns;
  j["sys_ns"] = r.sys_ns;
  j["max_rss_kb"] = r.max_rss_kb;
  j["minor_faults"] = r.minor_faults;
  j["major_faults"] = r.major_faults;
  j["voluntary_ctx_switches"] = r.voluntary_ctx_switches;
  j["involuntary_ctx_switches"] = r.involuntary_ctx_switches;
  return j;
}

// ---------------------------------------------------------------------------
// StackSampler

#ifdef REMO_HAVE_STACK_SAMPLER

namespace {

constexpr std::uint32_t kMaxStackDepth = 64;

// SIGPROF handler scratch: the sampler points the handler at one target at
// a time; the handler captures into the slot and release-stores done.
struct StackScratch {
  void* frames[kMaxStackDepth];
  std::atomic<int> depth{0};
  std::atomic<bool> done{false};
};
StackScratch g_scratch;
std::atomic<bool> g_sampler_running{false};

void stack_signal_handler(int) {
  // backtrace() is not strictly async-signal-safe, but sampling profilers
  // (gperftools, py-spy's native mode) rely on the same glibc behavior:
  // after one warm-up call the unwinder does no further allocation.
  const int depth = backtrace(g_scratch.frames, kMaxStackDepth);
  g_scratch.depth.store(depth, std::memory_order_relaxed);
  g_scratch.done.store(true, std::memory_order_release);
}

std::string demangle_frame(const char* symbol) {
  // backtrace_symbols format: "module(mangled+0x1a) [0xaddr]".
  std::string s(symbol != nullptr ? symbol : "");
  const std::size_t open = s.find('(');
  const std::size_t plus = s.find('+', open == std::string::npos ? 0 : open);
  if (open != std::string::npos && plus != std::string::npos && plus > open + 1) {
    std::string mangled = s.substr(open + 1, plus - open - 1);
    int status = 0;
    char* dem = abi::__cxa_demangle(mangled.c_str(), nullptr, nullptr, &status);
    if (status == 0 && dem != nullptr) {
      std::string out(dem);
      std::free(dem);
      return out;
    }
    return mangled;
  }
  // No symbol: fall back to the module basename + offset.
  const std::size_t bracket = s.find(" [");
  std::string head = bracket == std::string::npos ? s : s.substr(0, bracket);
  const std::size_t slash = head.rfind('/');
  if (slash != std::string::npos) head = head.substr(slash + 1);
  return head.empty() ? "??" : head;
}

}  // namespace

struct StackSampler::Impl {
  Config cfg;
  std::mutex mu;  // guards targets + stacks
  struct Target {
    pthread_t handle;
    std::size_t label;  // index into labels
  };
  std::vector<Target> targets;
  std::vector<std::string> labels;
  // Folded raw stacks: (label index, leaf-first frames) -> count.
  std::map<std::pair<std::size_t, std::vector<void*>>, std::uint64_t> stacks;
  std::thread thread;
  std::atomic<bool> run{false};
  std::atomic<std::uint64_t> samples{0};
  std::atomic<std::uint64_t> missed{0};
  struct sigaction old_action {};
  bool handler_installed = false;

  void loop() {
    while (run.load(std::memory_order_relaxed)) {
      {
        std::lock_guard<std::mutex> lock(mu);
        for (const auto& t : targets) sample_target(t);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(cfg.period_us));
    }
  }

  void sample_target(const Target& t) {
    g_scratch.done.store(false, std::memory_order_relaxed);
    if (pthread_kill(t.handle, SIGPROF) != 0) return;
    // The handler runs on the target thread; wait briefly for it.
    for (int spin = 0; spin < 4000; ++spin) {
      if (g_scratch.done.load(std::memory_order_acquire)) {
        record(t, g_scratch.frames,
               g_scratch.depth.load(std::memory_order_relaxed));
        return;
      }
      std::this_thread::yield();
    }
    missed.fetch_add(1, std::memory_order_relaxed);
  }

  void record(const Target& t, void* const* frames, int depth) {
    const int max =
        std::min<int>(depth, static_cast<int>(std::min(cfg.max_depth,
                                                       kMaxStackDepth)));
    if (max <= 0) return;
    // Skip the handler's own frames (signal trampoline + handler); keep it
    // conservative — symbol filtering at fold time tidies the rest.
    std::vector<void*> key(frames, frames + max);
    ++stacks[{t.label, std::move(key)}];
    samples.fetch_add(1, std::memory_order_relaxed);
  }
};

bool StackSampler::supported() noexcept { return true; }

StackSampler::StackSampler(Config cfg) : impl_(new Impl) { impl_->cfg = cfg; }

StackSampler::~StackSampler() { stop(); }

bool StackSampler::start() {
  if (impl_->run.load(std::memory_order_relaxed)) return true;
  bool expected = false;
  if (!g_sampler_running.compare_exchange_strong(expected, true))
    return false;  // another sampler owns the handler scratch
  struct sigaction sa {};
  sa.sa_handler = stack_signal_handler;
  sa.sa_flags = SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, &impl_->old_action) != 0) {
    g_sampler_running.store(false);
    return false;
  }
  impl_->handler_installed = true;
  // Warm up the unwinder on this thread (glibc backtrace allocates on
  // first use; see handler comment).
  void* warm[4];
  backtrace(warm, 4);
  impl_->run.store(true, std::memory_order_relaxed);
  impl_->thread = std::thread([this] { impl_->loop(); });
  return true;
}

void StackSampler::stop() {
  if (impl_->run.exchange(false)) {
    if (impl_->thread.joinable()) impl_->thread.join();
  }
  if (impl_->handler_installed) {
    sigaction(SIGPROF, &impl_->old_action, nullptr);
    impl_->handler_installed = false;
    g_sampler_running.store(false);
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->targets.clear();
}

bool StackSampler::running() const noexcept {
  return impl_->run.load(std::memory_order_relaxed);
}

void StackSampler::register_current_thread(std::string label) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->labels.push_back(std::move(label));
  impl_->targets.push_back(
      Impl::Target{pthread_self(), impl_->labels.size() - 1});
}

std::uint64_t StackSampler::samples() const noexcept {
  return impl_->samples.load(std::memory_order_relaxed);
}

std::uint64_t StackSampler::missed() const noexcept {
  return impl_->missed.load(std::memory_order_relaxed);
}

std::string StackSampler::folded() {
  stop();
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> lines;
  lines.reserve(impl_->stacks.size());
  for (const auto& [key, count] : impl_->stacks) {
    const auto& [label_idx, frames] = key;
    char** symbols = backtrace_symbols(
        const_cast<void* const*>(frames.data()), static_cast<int>(frames.size()));
    std::string line = impl_->labels[label_idx];
    // frames are leaf-first; folded output wants root-first.
    for (std::size_t i = frames.size(); i-- > 0;) {
      std::string name =
          demangle_frame(symbols != nullptr ? symbols[i] : nullptr);
      // Drop the signal plumbing the capture itself introduced.
      if (name.find("stack_signal_handler") != std::string::npos ||
          name.find("killpg") != std::string::npos ||
          name.find("__restore_rt") != std::string::npos)
        continue;
      line += ';';
      line += name;
    }
    std::free(symbols);
    line += ' ';
    line += std::to_string(count);
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

#else  // !REMO_HAVE_STACK_SAMPLER

struct StackSampler::Impl {
  Config cfg;
};

bool StackSampler::supported() noexcept { return false; }
StackSampler::StackSampler(Config cfg) : impl_(new Impl) { impl_->cfg = cfg; }
StackSampler::~StackSampler() = default;
bool StackSampler::start() { return false; }
void StackSampler::stop() {}
bool StackSampler::running() const noexcept { return false; }
void StackSampler::register_current_thread(std::string) {}
std::uint64_t StackSampler::samples() const noexcept { return 0; }
std::uint64_t StackSampler::missed() const noexcept { return 0; }
std::string StackSampler::folded() { return std::string(); }

#endif  // REMO_HAVE_STACK_SAMPLER

bool StackSampler::write_folded(const std::string& path) {
  const std::string text = folded();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

// ---------------------------------------------------------------------------
// Reports

namespace {

std::string prof_table(const RankProfSnapshot& r, std::uint32_t available) {
  const bool hw = (available & prof_counter_bit(ProfCounter::kCycles)) != 0;
  const bool dtlb =
      (available & prof_counter_bit(ProfCounter::kDtlbLoads)) != 0;
  std::string out;
  out += strfmt("  %-14s %10s %12s %12s %6s %10s %7s %6s %7s %7s\n", "phase",
                "attr_ms", "cycles_k", "instr_k", "ipc", "llc_ld_k", "miss%",
                "stall%", "brm/ki", "dtlb%");
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const CounterSet& c = r.phase[i];
    const double attr_ms =
        static_cast<double>(r.attributed_ns[i]) / 1e6;
    if (hw) {
      out += strfmt(
          "  %-14s %10.1f %12.0f %12.0f %6.2f %10.0f %6.1f%% %5.1f%% %7.2f",
          phase_name(static_cast<Phase>(i)), attr_ms,
          static_cast<double>(c[ProfCounter::kCycles]) / 1e3,
          static_cast<double>(c[ProfCounter::kInstructions]) / 1e3,
          prof_ipc(c), static_cast<double>(c[ProfCounter::kLlcLoads]) / 1e3,
          100.0 * prof_llc_miss_rate(c), 100.0 * prof_stalled_frac(c),
          prof_branch_miss_per_kinst(c));
      if (dtlb)
        out += strfmt(" %6.2f%%\n", 100.0 * prof_dtlb_miss_rate(c));
      else
        out += strfmt(" %7s\n", "-");
    } else {
      out += strfmt("  %-14s %10.1f %12s %12s %6s %10s %7s %6s %7s %7s",
                    phase_name(static_cast<Phase>(i)), attr_ms, "-", "-", "-",
                    "-", "-", "-", "-", "-");
      // The rusage fallback still carries measured locality evidence: the
      // thread's task-clock and its page-fault counters.
      out += strfmt("   task_clock_ms=%.1f minflt=%" PRIu64 " majflt=%" PRIu64
                    "\n",
                    static_cast<double>(c[ProfCounter::kTaskClockNs]) / 1e6,
                    c[ProfCounter::kMinorFaults],
                    c[ProfCounter::kMajorFaults]);
    }
  }
  return out;
}

}  // namespace

std::string format_prof_report(const ProfSnapshot& snap,
                               const SpanSnapshot* spans) {
  std::string out;
  out += strfmt("profiling report (backend: %s, sample shift %u)\n",
                snap.backend.c_str(), snap.sample_shift);
  if (!snap.enabled) {
    out += "  profiling disabled\n";
    return out;
  }
  if (snap.degraded) {
    out += strfmt(
        "  !! degraded backend: %s — hardware counters unavailable "
        "(perf_event access denied or unsupported); wall/task-clock "
        "attribution only\n",
        snap.backend.c_str());
  } else if (snap.available == 0) {
    // A forced perf_event backend on a host with no PMU access opens
    // nothing: say so rather than presenting a healthy table of zeros.
    out +=
        "  !! perf_event backend opened no counters (no PMU on this host?); "
        "all values below are zero — use --prof-backend auto to fall back\n";
  }
  const RankProfSnapshot t = snap.totals();
  out += strfmt("\ntotals (%zu rank%s, %" PRIu64 " reads, %" PRIu64
                " failed, %" PRIu64 " boundaries)\n",
                snap.per_rank.size(), snap.per_rank.size() == 1 ? "" : "s",
                t.reads, t.read_failures, t.boundaries);
  out += prof_table(t, snap.available);
  for (const auto& r : snap.per_rank) {
    out += strfmt("\nrank %u\n", r.rank);
    out += prof_table(r, snap.available);
  }
  if (spans != nullptr) {
    out += strfmt("\nwrite-path join (%" PRIu64
                  " completed spans): stage p50/p99 vs engine-phase "
                  "cycle attribution\n",
                  spans->completed);
    for (std::size_t i = 0; i < kWriteStageCount; ++i) {
      const auto& h = spans->stages[i].hist;
      out += strfmt("  %-14s p50 %10.3f ms   p99 %10.3f ms   count %" PRIu64
                    "\n",
                    write_stage_name(static_cast<WriteStage>(i)),
                    static_cast<double>(h.percentile(50.0)) / 1e6,
                    static_cast<double>(h.percentile(99.0)) / 1e6, h.count);
    }
    const CounterSet tot = t.total();
    if (tot[ProfCounter::kCycles] != 0) {
      const CounterSet& prop =
          t.phase[static_cast<std::size_t>(Phase::kPropagate)];
      out += strfmt(
          "  note: %.1f%% of attributed cycles are in propagate — the "
          "engine-side budget behind kInject/kDrain stage latencies above\n",
          100.0 * static_cast<double>(prop[ProfCounter::kCycles]) /
              static_cast<double>(tot[ProfCounter::kCycles]));
    }
  }
  return out;
}

}  // namespace remo::obs
