// Hardware-counter profiling with phase-level cycle attribution.
//
// RisGraph-class per-update latencies live or die on micro-architectural
// behavior — cache residency, IPC, branch predictability — which wall-clock
// phase timers cannot see. This layer opens a per-rank group of hardware
// counters (cycles, instructions, LLC loads/misses, branch misses, stalled
// cycles, task-clock) via perf_event_open and snapshots deltas at the
// *existing* phase-timer boundaries in Engine::rank_main, attributing each
// delta across the phases that elapsed since the previous read in
// proportion to their wall-clock share. The result is a per-rank ×
// per-phase (ingest / propagate / quiesce / snapshot-drain) IPC and
// miss-rate breakdown: "where do the cycles go" at the granularity the
// phase timers already established.
//
// Backends are pluggable and degrade gracefully:
//
//   perf_event  full counter group (Linux, perf_event_paranoid <= 2)
//   rusage      RUSAGE_THREAD task-clock only (no perf_event access)
//   noop        structure intact, all counters zero (non-Linux / CI)
//   scripted    deterministic timelines for unit tests
//
// `kAuto` probes in that order at engine construction. Anything but
// perf_event is reported as *degraded* so downstream consumers (BENCH
// JSON, trace-analyze) can banner it instead of silently comparing zeros.
//
// Cost model: on_phase() is called at loop-iteration granularity (the
// phase-timer boundaries), and only every 2^sample_shift-th boundary pays
// the group-read syscall; between reads it just accumulates pending
// nanoseconds. The shipped default shift keeps prof-on overhead within the
// repo's ≤3% A/B budget (see bench/results/BENCH_fig3_prof_{off,on}.json).
//
// A sampled on-CPU profile mode (StackSampler) rides along: a sampler
// thread periodically signals registered rank threads with SIGPROF, the
// handler captures a backtrace into a scratch slot, and stacks are folded
// into flamegraph-compatible "frame;frame;frame count" lines.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/obs_config.hpp"
#include "obs/phase_timer.hpp"

namespace remo::obs {

// ---------------------------------------------------------------------------
// Counter catalog

enum class ProfCounter : std::uint8_t {
  kCycles = 0,
  kInstructions,
  kLlcLoads,
  kLlcMisses,
  kBranchMisses,
  kStalledCycles,
  kDtlbLoads,     ///< dTLB load accesses (the huge-page A/B evidence pair)
  kDtlbMisses,    ///< dTLB load misses
  kMinorFaults,   ///< software counter; also fed by the rusage fallback
  kMajorFaults,   ///< software counter; also fed by the rusage fallback
  kTaskClockNs,   ///< software counter; nanoseconds on-CPU
};
inline constexpr std::size_t kProfCounterCount = 11;

const char* prof_counter_name(ProfCounter c) noexcept;

/// One reading (or delta) of every counter. Counters a backend cannot
/// provide stay zero; `available` masks tell consumers which are real.
struct CounterSet {
  std::array<std::uint64_t, kProfCounterCount> v{};

  std::uint64_t operator[](ProfCounter c) const noexcept {
    return v[static_cast<std::size_t>(c)];
  }
  std::uint64_t& operator[](ProfCounter c) noexcept {
    return v[static_cast<std::size_t>(c)];
  }

  CounterSet& operator+=(const CounterSet& o) noexcept {
    for (std::size_t i = 0; i < kProfCounterCount; ++i) v[i] += o.v[i];
    return *this;
  }
  /// Per-counter saturating subtraction (counter wraps/resets clamp to 0).
  CounterSet delta_since(const CounterSet& prev) const noexcept {
    CounterSet d;
    for (std::size_t i = 0; i < kProfCounterCount; ++i)
      d.v[i] = v[i] >= prev.v[i] ? v[i] - prev.v[i] : 0;
    return d;
  }
};

inline constexpr std::uint32_t prof_counter_bit(ProfCounter c) noexcept {
  return 1u << static_cast<std::uint32_t>(c);
}
inline constexpr std::uint32_t kAllProfCounters =
    (1u << kProfCounterCount) - 1;

// ---------------------------------------------------------------------------
// Backends

/// A source of cumulative per-thread counter readings. One instance per
/// profiled thread; open() and read() are called on that thread only.
class CounterBackend {
 public:
  virtual ~CounterBackend() = default;

  virtual const char* name() const noexcept = 0;
  /// Bitmask of ProfCounter bits this backend actually reads (valid after
  /// a successful open()).
  virtual std::uint32_t available() const noexcept = 0;
  /// Acquire resources on the profiled thread. False = backend unusable;
  /// the profiler stays inert (zeros, degraded).
  virtual bool open() = 0;
  /// Cumulative totals since open(). False = transient failure (counted,
  /// never fatal).
  virtual bool read(CounterSet& out) = 0;
};

const char* prof_backend_name(ProfBackendKind k) noexcept;

/// Resolve kAuto to the best backend this process can actually use
/// (probes perf_event with a throwaway counter, then rusage, then noop).
/// Non-auto kinds pass through unchanged.
ProfBackendKind resolve_prof_backend(ProfBackendKind requested) noexcept;

/// Instantiate a backend. kAuto is resolved internally; callers that need
/// to know what was picked resolve first and pass the result.
std::unique_ptr<CounterBackend> make_counter_backend(ProfBackendKind kind);

/// Deterministic backend for tests: read() walks a fixed timeline of
/// cumulative readings, clamping at the final entry.
class ScriptedBackend final : public CounterBackend {
 public:
  explicit ScriptedBackend(std::vector<CounterSet> timeline,
                           std::uint32_t available_mask = kAllProfCounters);

  const char* name() const noexcept override { return "scripted"; }
  std::uint32_t available() const noexcept override { return available_; }
  bool open() override;
  bool read(CounterSet& out) override;

  std::size_t reads_issued() const noexcept { return next_; }
  /// The next `n` read() calls fail (transient-failure injection).
  void fail_next_reads(std::size_t n) noexcept { fail_reads_ = n; }
  void set_open_fails(bool fails) noexcept { open_fails_ = fails; }

 private:
  std::vector<CounterSet> timeline_;
  std::uint32_t available_;
  std::size_t next_ = 0;
  std::size_t fail_reads_ = 0;
  bool open_fails_ = false;
};

// ---------------------------------------------------------------------------
// Per-rank profiler

/// One rank's accumulated attribution. rank == kProfTotalsRank marks a
/// cross-rank merge.
inline constexpr std::uint32_t kProfTotalsRank = ~std::uint32_t{0};

struct RankProfSnapshot {
  std::uint32_t rank = 0;
  /// Counter deltas attributed to each phase.
  std::array<CounterSet, kPhaseCount> phase{};
  /// Wall-clock nanoseconds each phase contributed to attributed reads.
  std::array<std::uint64_t, kPhaseCount> attributed_ns{};
  std::uint64_t boundaries = 0;     ///< on_phase() calls observed
  std::uint64_t reads = 0;          ///< successful counter reads
  std::uint64_t read_failures = 0;  ///< failed counter reads

  CounterSet total() const noexcept;
  std::uint64_t total_attributed_ns() const noexcept;
  void merge(const RankProfSnapshot& o) noexcept;
};

/// Whole-engine profiling state; schema "remo-prof-1" over the wire.
struct ProfSnapshot {
  bool enabled = false;
  std::string backend;  ///< prof_backend_name of the resolved backend
  bool degraded = false;  ///< true unless backend == perf_event
  std::uint32_t sample_shift = 0;
  std::uint32_t available = 0;  ///< ProfCounter bitmask
  std::vector<RankProfSnapshot> per_rank;

  RankProfSnapshot totals() const;

  Json to_json() const;
  static bool from_json(const Json& doc, ProfSnapshot& out,
                        std::string* error);
};

// Derived metrics (0.0 whenever the denominator is 0).
double prof_ipc(const CounterSet& c) noexcept;
double prof_llc_miss_rate(const CounterSet& c) noexcept;
double prof_branch_miss_per_kinst(const CounterSet& c) noexcept;
double prof_stalled_frac(const CounterSet& c) noexcept;
double prof_dtlb_miss_rate(const CounterSet& c) noexcept;

/// Per-rank counter-group owner. Single-writer (the owning rank thread)
/// for on_phase(); accumulators are relaxed atomics so snapshot() can run
/// concurrently from the main thread.
class RankProfiler {
 public:
  /// `sample_shift`: pay the backend read() only every 2^shift-th phase
  /// boundary; pending wall-clock is attributed proportionally at the next
  /// read. 0 reads at every boundary (exact attribution, highest cost).
  RankProfiler(std::uint32_t rank, std::unique_ptr<CounterBackend> backend,
               std::uint32_t sample_shift);

  RankProfiler(const RankProfiler&) = delete;
  RankProfiler& operator=(const RankProfiler&) = delete;

  /// Call once on the profiled thread before the loop: opens the backend
  /// and takes the baseline reading. Safe to skip — the profiler just
  /// stays inert.
  void attach();

  /// Backend opened successfully and counters are flowing.
  bool active() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }
  const char* backend_name() const noexcept { return backend_->name(); }
  std::uint32_t available() const noexcept { return backend_->available(); }

  /// Phase-boundary hook (rank thread only): `ns` wall-clock just spent in
  /// phase `p`. Mirrors PhaseTimers::add call sites exactly.
  void on_phase(Phase p, std::uint64_t ns) noexcept;

  /// Force a counter read now, attributing all pending wall-clock (rank
  /// thread only; used at loop exit so tails are not lost).
  void flush() noexcept;

  RankProfSnapshot snapshot() const;

 private:
  void sample_now() noexcept;

  const std::uint32_t rank_;
  std::unique_ptr<CounterBackend> backend_;
  const std::uint64_t sample_mask_;
  std::atomic<bool> active_{false};
  bool open_ = false;  // rank-thread view of active_

  // Rank-thread-only state between reads.
  CounterSet last_{};
  std::array<std::uint64_t, kPhaseCount> pending_ns_{};
  std::uint64_t boundary_seq_ = 0;

  // Cross-thread-readable accumulators.
  std::array<std::array<std::atomic<std::uint64_t>, kProfCounterCount>,
             kPhaseCount>
      acc_{};
  std::array<std::atomic<std::uint64_t>, kPhaseCount> attributed_ns_{};
  std::atomic<std::uint64_t> boundaries_{0};
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> read_failures_{0};
};

// ---------------------------------------------------------------------------
// Process rusage (always available; the BENCH JSON floor every report
// carries even when perf_event is not usable)

struct ProcRusage {
  std::uint64_t user_ns = 0;
  std::uint64_t sys_ns = 0;
  std::uint64_t max_rss_kb = 0;
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
  std::uint64_t voluntary_ctx_switches = 0;
  std::uint64_t involuntary_ctx_switches = 0;
};

/// RUSAGE_SELF reading (zeros where the platform lacks getrusage).
ProcRusage read_proc_rusage() noexcept;
Json proc_rusage_json(const ProcRusage& r);

// ---------------------------------------------------------------------------
// Sampled on-CPU stacks (folded / flamegraph output)

/// Periodically interrupts registered threads with SIGPROF, captures their
/// backtraces, and folds them into "label;frame;frame count" lines
/// (root-first — `flamegraph.pl` / speedscope compatible). At most one
/// instance may be running at a time (the signal handler needs a global
/// scratch slot). Symbolication happens once, at fold time.
struct StackSamplerConfig {
  std::uint32_t period_us = 1000;  ///< sampling period per target thread
  std::uint32_t max_depth = 48;
};

class StackSampler {
 public:
  using Config = StackSamplerConfig;

  /// Platform support (Linux with <execinfo.h>); false => start() refuses.
  static bool supported() noexcept;

  explicit StackSampler(Config cfg = {});
  ~StackSampler();

  StackSampler(const StackSampler&) = delete;
  StackSampler& operator=(const StackSampler&) = delete;

  /// Spawn the sampler thread. False when unsupported or another sampler
  /// is already running.
  bool start();
  /// Stop sampling and join the sampler thread (idempotent). Must happen
  /// before any registered thread exits.
  void stop();
  bool running() const noexcept;

  /// Register the calling thread as a sampling target under `label`
  /// (used as the folded stack's root frame).
  void register_current_thread(std::string label);

  std::uint64_t samples() const noexcept;
  std::uint64_t missed() const noexcept;  ///< signals with no capture in time

  /// Stop (if running) and render the folded, symbolised stacks, sorted
  /// for determinism.
  std::string folded();
  bool write_folded(const std::string& path);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// ---------------------------------------------------------------------------
// Reports

struct SpanSnapshot;  // obs/span.hpp; joined report only dereferences it in
                      // prof.cpp

/// The `trace-analyze --prof` report: per-rank × per-phase IPC / LLC
/// miss-rate attribution, a degraded-backend banner when applicable, and —
/// when `spans` is given — a join against the write-path span stages so
/// engine-side cycle attribution and write-path latency attribution read
/// side by side.
std::string format_prof_report(const ProfSnapshot& snap,
                               const SpanSnapshot* spans = nullptr);

}  // namespace remo::obs
