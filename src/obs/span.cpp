#include "obs/span.hpp"

#include <algorithm>

#include "common/strfmt.hpp"

namespace remo::obs {

const char* write_stage_name(WriteStage s) noexcept {
  switch (s) {
    case WriteStage::kQueue: return "queue";
    case WriteStage::kPartition: return "partition";
    case WriteStage::kDispatch: return "dispatch";
    case WriteStage::kInject: return "inject";
    case WriteStage::kDrain: return "drain";
    case WriteStage::kPublish: return "publish";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// ExemplarHistogram
// ---------------------------------------------------------------------------

void ExemplarHistogram::record(std::uint64_t v, TraceId trace) {
  if (counts_.empty()) {
    counts_.assign(hist_detail::kBucketCount, 0);
    exemplars_.assign(hist_detail::kBucketCount, Slot{});
  }
  const std::uint32_t b = hist_detail::bucket_of(v);
  ++counts_[b];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  Slot& slot = exemplars_[b];
  // Keep the largest sample; on a tie the incumbent wins, so the exemplar
  // set is a deterministic function of the sample sequence.
  if (slot.trace == 0 || v > slot.value) slot = Slot{trace, v};
}

std::uint64_t ExemplarHistogram::percentile(double p) const {
  HistogramSnapshot h;
  h.counts = counts_;
  h.count = count_;
  h.sum = sum_;
  h.min = min_;
  h.max = max_;
  return h.percentile(p);
}

ExemplarHistogramSnapshot ExemplarHistogram::snapshot() const {
  ExemplarHistogramSnapshot s;
  s.hist.counts = counts_;
  s.hist.count = count_;
  s.hist.sum = sum_;
  s.hist.min = min_;
  s.hist.max = max_;
  for (std::uint32_t b = 0; b < exemplars_.size(); ++b)
    if (exemplars_[b].trace != 0)
      s.exemplars.push_back(Exemplar{b, exemplars_[b].trace, exemplars_[b].value});
  return s;
}

std::vector<Exemplar> ExemplarHistogramSnapshot::at_or_above(
    std::uint64_t value) const {
  std::vector<Exemplar> out;
  for (const Exemplar& e : exemplars)
    if (hist_detail::bucket_upper(e.bucket) > value) out.push_back(e);
  return out;
}

Json ExemplarHistogramSnapshot::to_json() const {
  Json j = Json::object();
  j["count"] = hist.count;
  j["sum_ns"] = hist.sum;
  j["min_ns"] = hist.empty() ? 0 : hist.min;
  j["max_ns"] = hist.max;
  j["p50_ns"] = hist.p50();
  j["p90_ns"] = hist.p90();
  j["p99_ns"] = hist.p99();
  j["p999_ns"] = hist.p999();
  Json buckets = Json::array();
  for (std::uint32_t b = 0; b < hist.counts.size(); ++b) {
    if (hist.counts[b] == 0) continue;
    Json pair = Json::array();
    pair.push_back(std::uint64_t{b});
    pair.push_back(hist.counts[b]);
    buckets.push_back(std::move(pair));
  }
  j["buckets"] = std::move(buckets);
  Json ex = Json::array();
  for (const Exemplar& e : exemplars) {
    Json je = Json::object();
    je["bucket"] = std::uint64_t{e.bucket};
    je["trace"] = std::uint64_t{e.trace};
    je["value_ns"] = e.value_ns;
    ex.push_back(std::move(je));
  }
  j["exemplars"] = std::move(ex);
  return j;
}

namespace {

std::uint64_t json_u64(const Json& j, const char* key) {
  const Json* f = j.find(key);
  return f && f->is_number() ? f->as_uint() : 0;
}

}  // namespace

bool ExemplarHistogramSnapshot::from_json(const Json& doc,
                                          ExemplarHistogramSnapshot& out,
                                          std::string* error) {
  const auto fail = [&](const char* msg) {
    if (error) *error = msg;
    return false;
  };
  if (!doc.is_object()) return fail("histogram entry is not an object");
  out = ExemplarHistogramSnapshot{};
  out.hist.count = json_u64(doc, "count");
  out.hist.sum = json_u64(doc, "sum_ns");
  out.hist.max = json_u64(doc, "max_ns");
  out.hist.min = out.hist.count ? json_u64(doc, "min_ns") : ~std::uint64_t{0};
  if (const Json* buckets = doc.find("buckets"); buckets && buckets->is_array()) {
    for (const Json& pair : buckets->items()) {
      if (!pair.is_array() || pair.size() != 2) return fail("malformed bucket pair");
      const auto b = static_cast<std::uint32_t>(pair.items()[0].as_uint());
      if (b >= hist_detail::kBucketCount) return fail("bucket index out of range");
      if (out.hist.counts.empty())
        out.hist.counts.assign(hist_detail::kBucketCount, 0);
      out.hist.counts[b] = pair.items()[1].as_uint();
    }
  }
  if (const Json* ex = doc.find("exemplars"); ex && ex->is_array()) {
    for (const Json& je : ex->items()) {
      Exemplar e;
      e.bucket = static_cast<std::uint32_t>(json_u64(je, "bucket"));
      e.trace = static_cast<TraceId>(json_u64(je, "trace"));
      e.value_ns = json_u64(je, "value_ns");
      out.exemplars.push_back(e);
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// WriteSpan / SpanSnapshot JSON
// ---------------------------------------------------------------------------

Json WriteSpan::to_json() const {
  Json j = Json::object();
  j["trace"] = std::uint64_t{id};
  j["queued_ns"] = queued_ns;
  j["begin_ns"] = begin_ns;
  j["admitted_ns"] = admitted_ns;
  j["drained_ns"] = drained_ns;
  j["published_ns"] = published_ns;
  j["watermark"] = watermark;
  j["events"] = events;
  j["waves"] = std::uint64_t{waves};
  j["serial_fallback"] = serial_fallback;
  j["total_ns"] = total_ns;
  Json stages = Json::object();
  for (std::size_t s = 0; s < kWriteStageCount; ++s)
    stages[write_stage_name(static_cast<WriteStage>(s))] = stage_ns[s];
  j["stages"] = std::move(stages);
  return j;
}

const WriteSpan* SpanSnapshot::find(TraceId id) const {
  for (const WriteSpan& s : spans)
    if (s.id == id) return &s;
  return nullptr;
}

Json SpanSnapshot::to_json() const {
  Json j = Json::object();
  j["schema"] = "remo-spans-1";
  j["batches_seen"] = batches_seen;
  j["batches_sampled"] = batches_sampled;
  j["completed"] = completed;
  j["open"] = open;
  j["dropped_open"] = dropped_open;
  j["evicted"] = evicted;
  j["freshness"] = freshness.to_json();
  Json stages = Json::object();
  for (std::size_t s = 0; s < kWriteStageCount; ++s)
    stages[write_stage_name(static_cast<WriteStage>(s))] = this->stages[s].to_json();
  j["stages"] = std::move(stages);
  Json spans_json = Json::array();
  for (const WriteSpan& s : spans) spans_json.push_back(s.to_json());
  j["spans"] = std::move(spans_json);
  return j;
}

bool SpanSnapshot::from_json(const Json& doc, SpanSnapshot& out,
                             std::string* error) {
  const auto fail = [&](const char* msg) {
    if (error) *error = msg;
    return false;
  };
  const Json* schema = doc.find("schema");
  if (!schema || !schema->is_string() || schema->as_string() != "remo-spans-1")
    return fail("not a remo-spans-1 document");
  out = SpanSnapshot{};
  out.batches_seen = json_u64(doc, "batches_seen");
  out.batches_sampled = json_u64(doc, "batches_sampled");
  out.completed = json_u64(doc, "completed");
  out.open = json_u64(doc, "open");
  out.dropped_open = json_u64(doc, "dropped_open");
  out.evicted = json_u64(doc, "evicted");
  if (const Json* f = doc.find("freshness"))
    if (!ExemplarHistogramSnapshot::from_json(*f, out.freshness, error))
      return false;
  if (const Json* stages = doc.find("stages"); stages && stages->is_object()) {
    for (std::size_t s = 0; s < kWriteStageCount; ++s) {
      const Json* js = stages->find(write_stage_name(static_cast<WriteStage>(s)));
      if (js && !ExemplarHistogramSnapshot::from_json(*js, out.stages[s], error))
        return false;
    }
  }
  if (const Json* spans = doc.find("spans"); spans && spans->is_array()) {
    for (const Json& js : spans->items()) {
      if (!js.is_object()) return fail("span entry is not an object");
      WriteSpan w;
      w.id = static_cast<TraceId>(json_u64(js, "trace"));
      if (w.id == 0) return fail("span entry without a trace id");
      w.queued_ns = json_u64(js, "queued_ns");
      w.begin_ns = json_u64(js, "begin_ns");
      w.admitted_ns = json_u64(js, "admitted_ns");
      w.drained_ns = json_u64(js, "drained_ns");
      w.published_ns = json_u64(js, "published_ns");
      w.watermark = json_u64(js, "watermark");
      w.events = json_u64(js, "events");
      w.waves = static_cast<std::uint32_t>(json_u64(js, "waves"));
      if (const Json* sf = js.find("serial_fallback"))
        w.serial_fallback = sf->is_bool() && sf->as_bool();
      w.total_ns = json_u64(js, "total_ns");
      if (const Json* st = js.find("stages"); st && st->is_object())
        for (std::size_t s = 0; s < kWriteStageCount; ++s)
          w.stage_ns[s] = json_u64(*st, write_stage_name(static_cast<WriteStage>(s)));
      out.spans.push_back(w);
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// SpanRecorder
// ---------------------------------------------------------------------------

SpanRecorder::SpanRecorder(SpanRecorderConfig cfg)
    : cfg_(cfg), trace_(cfg.trace_capacity) {}

TraceId SpanRecorder::begin_batch(std::uint64_t queued_ns, std::uint64_t now_ns) {
  std::lock_guard guard(mu_);
  const std::uint64_t n = batches_seen_++;
  const std::uint64_t mask = (std::uint64_t{1} << cfg_.sample_shift) - 1;
  if ((n & mask) != 0) return 0;
  if (open_.size() >= cfg_.max_open) {
    ++dropped_open_;
    return 0;
  }
  ++batches_sampled_;
  std::uint32_t seq = next_seq_;
  next_seq_ = (next_seq_ + 1) & kCauseSeqMask;
  if (next_seq_ == 0) next_seq_ = 1;
  WriteSpan span;
  span.id = make_cause(kSpanOrigin, seq);
  span.queued_ns = std::min(queued_ns, now_ns);
  span.begin_ns = now_ns;
  span.stage_ns[static_cast<std::size_t>(WriteStage::kQueue)] =
      now_ns - span.queued_ns;
  open_.push_back(span);
  return span.id;
}

void SpanRecorder::stage(TraceId id, WriteStage s, std::uint64_t dur_ns) {
  if (id == 0) return;
  std::lock_guard guard(mu_);
  // Newest-first: the pumping thread always touches the span it just opened.
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (it->id != id) continue;
    it->stage_ns[static_cast<std::size_t>(s)] += dur_ns;
    return;
  }
}

void SpanRecorder::record_admitted(TraceId id, std::uint64_t watermark,
                                   std::uint64_t now_ns, std::uint64_t events,
                                   std::uint32_t waves, bool serial_fallback) {
  if (id == 0) return;
  std::lock_guard guard(mu_);
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (it->id != id) continue;
    it->admitted_ns = std::max(now_ns, it->begin_ns);
    it->watermark = watermark;
    it->events = events;
    it->waves = waves;
    it->serial_fallback = serial_fallback;
    return;
  }
}

void SpanRecorder::on_epoch_drained(std::uint64_t watermark, std::uint64_t ns) {
  std::lock_guard guard(mu_);
  for (WriteSpan& s : open_) {
    // watermark != 0 is the "admitted" marker: a real admission always
    // stamps the ingested count, which is >= the batch's own events (>= 1).
    // admitted_ns cannot serve — engine-relative time starts at 0.
    if (s.watermark == 0 || s.drained_ns != 0 || s.watermark > watermark)
      continue;
    s.drained_ns = std::max(ns, s.admitted_ns);
    s.stage_ns[static_cast<std::size_t>(WriteStage::kDrain)] =
        s.drained_ns - s.admitted_ns;
  }
}

void SpanRecorder::on_view_published(std::uint64_t watermark, std::uint64_t ns) {
  std::lock_guard guard(mu_);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < open_.size(); ++i) {
    WriteSpan& s = open_[i];
    if (s.watermark != 0 && s.watermark <= watermark) {
      complete_locked(s, ns);
      continue;
    }
    if (kept != i) open_[kept] = s;
    ++kept;
  }
  open_.resize(kept);
}

void SpanRecorder::complete_locked(WriteSpan span, std::uint64_t published_ns) {
  if (span.drained_ns == 0) {
    // No epoch-drain notification reached us before the covering view (the
    // hook is optional): charge the whole wait to kDrain at the publish
    // instant — conservative, and bounded by the same publish.
    span.drained_ns = std::max(published_ns, span.admitted_ns);
    span.stage_ns[static_cast<std::size_t>(WriteStage::kDrain)] =
        span.drained_ns - span.admitted_ns;
  }
  span.published_ns = std::max(published_ns, span.drained_ns);
  span.stage_ns[static_cast<std::size_t>(WriteStage::kPublish)] =
      span.published_ns - span.drained_ns;
  span.total_ns = span.published_ns - span.queued_ns;
  ++completed_;

  freshness_.record(span.total_ns, span.id);
  for (std::size_t s = 0; s < kWriteStageCount; ++s)
    stages_[s].record(span.stage_ns[s], span.id);

  // Perfetto flow chain: queue -> admit -> drain -> publish, linked by the
  // TraceId so the whole write path of one batch lights up in the UI.
  trace_.emit_flow("wp:queue", span.queued_ns, span.begin_ns - span.queued_ns,
                   span.id, FlowPhase::kStart, "events", span.events);
  trace_.emit_flow("wp:admit", span.begin_ns, span.admitted_ns - span.begin_ns,
                   span.id, FlowPhase::kStep, "waves", span.waves);
  trace_.emit_flow("wp:drain", span.admitted_ns,
                   span.drained_ns - span.admitted_ns, span.id, FlowPhase::kStep);
  trace_.emit_flow("wp:publish", span.drained_ns,
                   span.published_ns - span.drained_ns, span.id, FlowPhase::kEnd,
                   "watermark", span.watermark);

  done_.push_back(span);
  while (done_.size() > cfg_.history) {
    done_.pop_front();
    ++evicted_;
  }
}

SpanCounts SpanRecorder::counts() const {
  std::lock_guard guard(mu_);
  SpanCounts c;
  c.batches_seen = batches_seen_;
  c.batches_sampled = batches_sampled_;
  c.completed = completed_;
  c.open = open_.size();
  c.dropped_open = dropped_open_;
  c.freshness_p50_ns = freshness_.percentile(50.0);
  c.freshness_p99_ns = freshness_.percentile(99.0);
  return c;
}

SpanSnapshot SpanRecorder::snapshot() const {
  std::lock_guard guard(mu_);
  SpanSnapshot s;
  s.batches_seen = batches_seen_;
  s.batches_sampled = batches_sampled_;
  s.completed = completed_;
  s.open = open_.size();
  s.dropped_open = dropped_open_;
  s.evicted = evicted_;
  s.freshness = freshness_.snapshot();
  for (std::size_t i = 0; i < kWriteStageCount; ++i)
    s.stages[i] = stages_[i].snapshot();
  s.spans.assign(done_.begin(), done_.end());
  return s;
}

TraceTrack SpanRecorder::trace_track(std::uint32_t tid) const {
  std::lock_guard guard(mu_);
  return TraceTrack{"write-path spans", tid, trace_.events()};
}

// ---------------------------------------------------------------------------
// Tail attribution report
// ---------------------------------------------------------------------------

namespace {

std::string ms_str(std::uint64_t ns) {
  return strfmt("%.3fms", static_cast<double>(ns) / 1e6);
}

std::string ms_str(double ns) { return strfmt("%.3fms", ns / 1e6); }

}  // namespace

std::string format_tail_report(const SpanSnapshot& snap, double tail_percentile) {
  std::string out;
  const HistogramSnapshot& h = snap.freshness.hist;
  out += strfmt(
      "write-to-readable freshness: %llu batches completed (%llu sampled, "
      "%llu still open, %llu dropped)\n",
      static_cast<unsigned long long>(snap.completed),
      static_cast<unsigned long long>(snap.batches_sampled),
      static_cast<unsigned long long>(snap.open),
      static_cast<unsigned long long>(snap.dropped_open));
  if (h.empty()) {
    out += "  no completed spans — nothing to attribute\n";
    return out;
  }
  out += strfmt("  p50 %s  p90 %s  p99 %s  p99.9 %s  max %s\n",
                ms_str(h.p50()).c_str(), ms_str(h.p90()).c_str(),
                ms_str(h.p99()).c_str(), ms_str(h.p999()).c_str(),
                ms_str(h.max).c_str());

  const std::uint64_t threshold = h.percentile(tail_percentile);
  std::vector<const WriteSpan*> tail;
  for (const WriteSpan& s : snap.spans)
    if (s.total_ns >= threshold) tail.push_back(&s);
  out += strfmt("\ntail: spans at or above p%.4g = %s (%zu of %zu retained%s)\n",
                tail_percentile, ms_str(threshold).c_str(), tail.size(),
                snap.spans.size(),
                snap.evicted ? strfmt(", %llu evicted",
                                      static_cast<unsigned long long>(snap.evicted))
                                   .c_str()
                             : "");

  if (!tail.empty()) {
    double total_mean = 0.0;
    std::array<double, kWriteStageCount> stage_mean{};
    for (const WriteSpan* s : tail) {
      total_mean += static_cast<double>(s->total_ns);
      for (std::size_t i = 0; i < kWriteStageCount; ++i)
        stage_mean[i] += static_cast<double>(s->stage_ns[i]);
    }
    total_mean /= static_cast<double>(tail.size());
    for (auto& m : stage_mean) m /= static_cast<double>(tail.size());

    out += strfmt("\n%-10s %12s %8s %12s %12s\n", "stage", "tail mean", "share",
                  "overall p50", "overall p99");
    for (std::size_t i = 0; i < kWriteStageCount; ++i) {
      const HistogramSnapshot& sh = snap.stages[i].hist;
      const double share =
          total_mean > 0.0 ? 100.0 * stage_mean[i] / total_mean : 0.0;
      out += strfmt("%-10s %12s %7.1f%% %12s %12s\n",
                    write_stage_name(static_cast<WriteStage>(i)),
                    ms_str(stage_mean[i]).c_str(), share,
                    ms_str(sh.p50()).c_str(), ms_str(sh.p99()).c_str());
    }
    out += strfmt("%-10s %12s\n", "total", ms_str(total_mean).c_str());
  }

  const std::vector<Exemplar> tail_ex = snap.freshness.at_or_above(threshold);
  out += strfmt("\nexemplars (p%.4g+ buckets):\n", tail_percentile);
  if (tail_ex.empty()) out += "  none\n";
  for (const Exemplar& e : tail_ex) {
    out += strfmt("  bucket [%s, %s) trace 0x%08x value %s",
                  ms_str(hist_detail::bucket_lower(e.bucket)).c_str(),
                  ms_str(hist_detail::bucket_upper(e.bucket)).c_str(), e.trace,
                  ms_str(e.value_ns).c_str());
    if (const WriteSpan* s = snap.find(e.trace)) {
      out += strfmt("\n    span: events=%llu waves=%u%s",
                    static_cast<unsigned long long>(s->events), s->waves,
                    s->serial_fallback ? " (serial fallback)" : "");
      for (std::size_t i = 0; i < kWriteStageCount; ++i)
        out += strfmt(" %s=%s", write_stage_name(static_cast<WriteStage>(i)),
                      ms_str(s->stage_ns[i]).c_str());
      out += "\n";
    } else {
      out += "  (span evicted from history)\n";
    }
  }
  return out;
}

}  // namespace remo::obs
