// Write-path spans: request-level tracing from submission to readability.
//
// Every batch the serving plane's WriteGate admits gets a TraceId (the
// CauseId [origin:8][sequence:24] layout with a reserved origin, so span
// ids never collide with lineage causes) and a SpanRecorder entry that
// accumulates per-stage durations as the batch moves down the write path:
//
//   kQueue      submit() of the batch's oldest event -> pump pickup
//   kPartition  ConflictPartitioner::plan()
//   kDispatch   wave orchestration: fan-out, inter-wave barriers
//   kInject     the pumping thread's own Engine::inject_edge time
//   kDrain      admission complete -> an epoch cut covering the batch drains
//   kPublish    drain -> a StateView covering the batch is swapped in
//
// The sum — oldest submit to first readable view — is the batch's
// **write-to-readable freshness**, the serving plane's core SLO. Spans are
// closed by watermark comparison, not by identity: the gate stamps each
// span with the engine's ingested watermark right after its last
// injection, and every published view carries the watermark sampled before
// its cut, so "view watermark >= span watermark" proves the view contains
// the whole batch (events are counted into the watermark only after their
// in-flight registration, see Engine::sample_gauges()'s soundness note).
//
// Aggregation: per-stage latency histograms (the shared log-bucketing of
// histogram.hpp) with **exemplars** — each bucket remembers the TraceId of
// its largest sample, so a slow percentile links to a concrete traced
// batch whose full milestone record is retained in the completed-span
// ring. Completed spans also stream into an owned TraceBuffer as Perfetto
// flow slices (flow id = TraceId), exported alongside the engine's rank
// tracks. `remo_cli trace-analyze --tail` renders format_tail_report():
// the per-stage attribution of p99+ write-to-readable latency.
//
// Threading: one mutex guards everything. Recording happens at batch
// granularity (a batch is hundreds-to-thousands of events), so the lock is
// far off the per-event hot path; the A/B budget for spans-on is ≤3%.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/histogram.hpp"
#include "obs/lineage.hpp"
#include "obs/trace.hpp"

namespace remo::obs {

/// Same 32-bit layout as CauseId; origin kSpanOrigin marks write-path
/// spans. 0 means "unsampled" (begin_batch declined the batch).
using TraceId = CauseId;

/// Reserved origin byte for span TraceIds (kMainOrigin - 1; rank origins
/// are rank ids, far below).
inline constexpr std::uint32_t kSpanOrigin = 0xFE;

enum class WriteStage : std::uint8_t {
  kQueue = 0,
  kPartition,
  kDispatch,
  kInject,
  kDrain,
  kPublish,
};
inline constexpr std::size_t kWriteStageCount = 6;

const char* write_stage_name(WriteStage s) noexcept;

/// One exemplar: the trace of the largest sample a bucket has seen.
struct Exemplar {
  std::uint32_t bucket = 0;
  TraceId trace = 0;
  std::uint64_t value_ns = 0;
};

struct ExemplarHistogramSnapshot {
  HistogramSnapshot hist;
  std::vector<Exemplar> exemplars;  ///< bucket-ascending, nonempty buckets only

  /// Exemplars whose bucket can contain `value` or anything larger — the
  /// "p99+ buckets" selector of the tail report.
  std::vector<Exemplar> at_or_above(std::uint64_t value) const;

  Json to_json() const;
  static bool from_json(const Json& doc, ExemplarHistogramSnapshot& out,
                        std::string* error);
};

/// Log-bucketed histogram whose buckets carry exemplars. Plain cells — the
/// owner (SpanRecorder) serialises access under its mutex; this is a
/// batch-granularity recorder, not a per-event one.
class ExemplarHistogram {
 public:
  ExemplarHistogram() = default;

  /// Record one sample; the bucket's exemplar keeps the largest value seen
  /// (ties keep the earliest — deterministic under replay).
  void record(std::uint64_t v, TraceId trace);

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t percentile(double p) const;
  ExemplarHistogramSnapshot snapshot() const;

 private:
  struct Slot {
    TraceId trace = 0;
    std::uint64_t value = 0;
  };
  std::vector<std::uint64_t> counts_;  // lazily kBucketCount entries
  std::vector<Slot> exemplars_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

/// One batch's milestone record. All timestamps are engine-relative
/// (Engine::obs_now()); stages are durations.
struct WriteSpan {
  TraceId id = 0;
  std::uint64_t queued_ns = 0;     ///< oldest submit() in the batch
  std::uint64_t begin_ns = 0;      ///< pump pickup
  std::uint64_t admitted_ns = 0;   ///< last injection done, watermark stamped
  std::uint64_t drained_ns = 0;    ///< epoch cut covering the batch drained
  std::uint64_t published_ns = 0;  ///< covering view swapped in
  std::uint64_t watermark = 0;     ///< ingested watermark at admission
  std::uint64_t events = 0;
  std::uint32_t waves = 0;
  bool serial_fallback = false;
  std::array<std::uint64_t, kWriteStageCount> stage_ns{};
  std::uint64_t total_ns = 0;  ///< queued -> published (freshness)

  Json to_json() const;
};

/// Full recorder state (schema "remo-spans-1"): counters, the freshness
/// and per-stage exemplar histograms, and the retained completed spans
/// (oldest first) that exemplar TraceIds resolve against.
struct SpanSnapshot {
  std::uint64_t batches_seen = 0;     ///< begin_batch calls (sampled or not)
  std::uint64_t batches_sampled = 0;  ///< spans opened
  std::uint64_t completed = 0;        ///< spans closed (published)
  std::uint64_t open = 0;             ///< spans still in flight at snapshot
  std::uint64_t dropped_open = 0;     ///< sampled batches dropped (open-table full)
  std::uint64_t evicted = 0;          ///< completed spans evicted from the ring
  ExemplarHistogramSnapshot freshness;
  std::array<ExemplarHistogramSnapshot, kWriteStageCount> stages;
  std::vector<WriteSpan> spans;

  const WriteSpan* find(TraceId id) const;

  Json to_json() const;
  static bool from_json(const Json& doc, SpanSnapshot& out, std::string* error);
};

struct SpanRecorderConfig {
  /// Every 2^shift-th batch gets a span; 0 (default) spans every batch —
  /// affordable because batches are coarse, and the shipped configuration
  /// the ≤3% A/B budget is measured at.
  std::uint32_t sample_shift = 0;
  /// Open spans beyond this are dropped at begin_batch (counted). Bounds
  /// memory if views stop publishing while writes continue.
  std::size_t max_open = 4096;
  /// Completed spans retained for exemplar resolution.
  std::size_t history = 4096;
  /// Perfetto flow-slice ring capacity (4 slices per completed span).
  std::size_t trace_capacity = std::size_t{1} << 14;
};

/// Cheap live summary for gauge sampling (no span copies).
struct SpanCounts {
  std::uint64_t batches_seen = 0;
  std::uint64_t batches_sampled = 0;
  std::uint64_t completed = 0;
  std::uint64_t open = 0;
  std::uint64_t dropped_open = 0;
  std::uint64_t freshness_p50_ns = 0;
  std::uint64_t freshness_p99_ns = 0;
};

class SpanRecorder {
 public:
  explicit SpanRecorder(SpanRecorderConfig cfg = {});

  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  // --- Gate side (the pumping thread) -------------------------------------

  /// Open a span for a batch picked up at `now_ns` whose oldest event was
  /// submitted at `queued_ns`. Returns 0 when the batch is not sampled (or
  /// the open table is full); callers skip further calls on 0. kQueue is
  /// recorded here.
  TraceId begin_batch(std::uint64_t queued_ns, std::uint64_t now_ns);

  /// Add `dur_ns` to one stage of an open span (kPartition/kDispatch/kInject).
  void stage(TraceId id, WriteStage s, std::uint64_t dur_ns);

  /// The batch's last injection returned: stamp the admission watermark
  /// (see file comment for why watermark comparison closes spans soundly).
  /// `watermark` must be nonzero — it is at least the batch's own injected
  /// events — and a nonzero watermark is what marks the span admitted.
  void record_admitted(TraceId id, std::uint64_t watermark, std::uint64_t now_ns,
                       std::uint64_t events, std::uint32_t waves,
                       bool serial_fallback);

  // --- Engine / serving side ----------------------------------------------

  /// An epoch cut with ingested watermark `watermark` finished draining at
  /// `ns` (Engine epoch-drain hook). Closes kDrain for covered spans.
  void on_epoch_drained(std::uint64_t watermark, std::uint64_t ns);

  /// A view with watermark `watermark` became readable at `ns`. Completes
  /// every covered span (recording kDrain at the publish instant when no
  /// drain notification arrived first — conservative by at most the gap
  /// between the two, which the same publish bounds).
  void on_view_published(std::uint64_t watermark, std::uint64_t ns);

  // --- Read side ----------------------------------------------------------

  SpanCounts counts() const;
  SpanSnapshot snapshot() const;

  /// The completed spans' flow slices as one exportable track (pass to
  /// Engine::write_trace as an extra track).
  TraceTrack trace_track(std::uint32_t tid) const;

 private:
  void complete_locked(WriteSpan span, std::uint64_t published_ns);

  mutable std::mutex mu_;
  SpanRecorderConfig cfg_;
  std::uint32_t next_seq_ = 1;
  std::uint64_t batches_seen_ = 0;
  std::uint64_t batches_sampled_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_open_ = 0;
  std::uint64_t evicted_ = 0;
  std::vector<WriteSpan> open_;
  std::deque<WriteSpan> done_;
  ExemplarHistogram freshness_;
  std::array<ExemplarHistogram, kWriteStageCount> stages_;
  TraceBuffer trace_;
};

/// The `trace-analyze --tail` report: freshness percentiles, per-stage
/// attribution over the spans at or above `tail_percentile`, and the tail
/// buckets' exemplar TraceIds resolved to their full spans.
std::string format_tail_report(const SpanSnapshot& snap,
                               double tail_percentile = 99.0);

}  // namespace remo::obs
