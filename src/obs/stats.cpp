#include "obs/stats.hpp"

#include "common/strfmt.hpp"

namespace remo::obs {

Json histogram_to_json(const HistogramSnapshot& h) {
  Json j = Json::object();
  j["count"] = h.count;
  if (h.count > 0) {
    j["min_ns"] = h.min;
    j["mean_ns"] = h.mean();
    j["p50_ns"] = h.p50();
    j["p90_ns"] = h.p90();
    j["p99_ns"] = h.p99();
    j["p999_ns"] = h.p999();
    j["max_ns"] = h.max;
  }
  return j;
}

Json phases_to_json(const PhaseSnapshot& p) {
  Json j = Json::object();
  for (std::size_t i = 0; i < kPhaseCount; ++i)
    j[std::string(phase_name(static_cast<Phase>(i))) + "_ns"] = p.ns[i];
  return j;
}

namespace {

Json counters_to_json(const MetricsSummary& c) {
  Json j = Json::object();
  j["topology_events"] = c.topology_events;
  j["algorithm_events"] = c.algorithm_events;
  j["messages_sent"] = c.messages_sent;
  j["remote_messages"] = c.remote_messages;
  j["local_messages"] = c.local_messages;
  j["control_messages"] = c.control_messages;
  j["edges_stored"] = c.edges_stored;
  j["coalesced_sends"] = c.coalesced_sends;
  j["receiver_merges"] = c.receiver_merges;
  j["ring_overflows"] = c.ring_overflows;
  return j;
}

MetricsSummary summary_of(const RankMetrics& m) {
  MetricsSummary s;
  s.topology_events = m.topology_events;
  s.algorithm_events = m.algorithm_events;
  s.messages_sent = m.messages_sent;
  s.remote_messages = m.remote_messages;
  s.local_messages = m.local_messages;
  s.edges_stored = m.edges_stored;
  s.control_messages = m.control_messages;
  s.coalesced_sends = m.coalesced_sends;
  s.receiver_merges = m.receiver_merges;
  s.ring_overflows = m.ring_overflows;
  return s;
}

}  // namespace

Json MetricsSnapshot::to_json(bool include_per_rank) const {
  Json j = Json::object();
  j["schema"] = "remo-stats-1";
  j["ranks"] = per_rank.size();
  j["counters"] = counters_to_json(counters);
  j["update_latency"] = histogram_to_json(update_latency_ns);
  j["phases"] = phases_to_json(phases);
  if (lineage_enabled) j["lineage"] = lineage.to_json();
  if (prof.enabled) j["prof"] = prof.to_json();
  if (include_per_rank) {
    Json ranks = Json::array();
    for (std::size_t r = 0; r < per_rank.size(); ++r) {
      Json jr = Json::object();
      jr["rank"] = r;
      jr["counters"] = counters_to_json(summary_of(per_rank[r].counters));
      jr["update_latency"] = histogram_to_json(per_rank[r].update_latency_ns);
      jr["phases"] = phases_to_json(per_rank[r].phases);
      ranks.push_back(std::move(jr));
    }
    j["per_rank"] = std::move(ranks);
  }
  return j;
}

namespace {

std::string ns_human(std::uint64_t ns) {
  if (ns >= 1'000'000'000) return strfmt("%.2f s", static_cast<double>(ns) / 1e9);
  if (ns >= 1'000'000) return strfmt("%.2f ms", static_cast<double>(ns) / 1e6);
  if (ns >= 1'000) return strfmt("%.2f us", static_cast<double>(ns) / 1e3);
  return strfmt("%llu ns", static_cast<unsigned long long>(ns));
}

}  // namespace

std::string MetricsSnapshot::to_text() const {
  std::string out;
  out += strfmt("counters (%zu ranks):\n", per_rank.size());
  out += strfmt("  topology_events   %s\n", with_commas(counters.topology_events).c_str());
  out += strfmt("  algorithm_events  %s\n", with_commas(counters.algorithm_events).c_str());
  out += strfmt("  messages_sent     %s (%s local, %s remote, %s control)\n",
                with_commas(counters.messages_sent).c_str(),
                with_commas(counters.local_messages).c_str(),
                with_commas(counters.remote_messages).c_str(),
                with_commas(counters.control_messages).c_str());
  out += strfmt("  edges_stored      %s\n", with_commas(counters.edges_stored).c_str());
  if (counters.coalesced_sends || counters.receiver_merges ||
      counters.ring_overflows) {
    out += strfmt("  coalesced         %s send-side, %s receiver-side (%s ring overflows)\n",
                  with_commas(counters.coalesced_sends).c_str(),
                  with_commas(counters.receiver_merges).c_str(),
                  with_commas(counters.ring_overflows).c_str());
  }
  const HistogramSnapshot& h = update_latency_ns;
  if (h.count > 0) {
    out += strfmt("per-update latency (%s samples):\n", with_commas(h.count).c_str());
    out += strfmt("  p50 %s   p90 %s   p99 %s   p99.9 %s\n",
                  ns_human(h.p50()).c_str(), ns_human(h.p90()).c_str(),
                  ns_human(h.p99()).c_str(), ns_human(h.p999()).c_str());
    out += strfmt("  min %s   mean %s   max %s\n", ns_human(h.min).c_str(),
                  ns_human(static_cast<std::uint64_t>(h.mean())).c_str(),
                  ns_human(h.max).c_str());
  } else {
    out += "per-update latency: no samples (histograms disabled?)\n";
  }
  out += "phase time (summed across ranks):\n";
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto p = static_cast<Phase>(i);
    out += strfmt("  %-15s %s\n", phase_name(p), ns_human(phases[p]).c_str());
  }
  if (lineage_enabled) {
    out += strfmt(
        "lineage (%s causes sampled, %s dropped):\n",
        with_commas(lineage.sampled).c_str(), with_commas(lineage.dropped).c_str());
    out += strfmt(
        "  visitors/update p50 %s p99 %s   depth p50 %u p99 %u   cross-rank "
        "ratio %.3f\n",
        with_commas(lineage.visitors_p50).c_str(),
        with_commas(lineage.visitors_p99).c_str(), lineage.depth_p50,
        lineage.depth_p99, lineage.cross_rank_ratio);
  }
  if (prof.enabled) {
    const RankProfSnapshot t = prof.totals();
    out += strfmt("hardware counters (backend %s%s):\n", prof.backend.c_str(),
                  prof.degraded ? ", DEGRADED" : "");
    const bool hw =
        (prof.available & prof_counter_bit(ProfCounter::kCycles)) != 0;
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      const CounterSet& c = t.phase[i];
      if (hw) {
        out += strfmt("  %-15s ipc %.2f   llc-miss %.1f%%   cycles %s\n",
                      phase_name(static_cast<Phase>(i)), prof_ipc(c),
                      100.0 * prof_llc_miss_rate(c),
                      with_commas(c[ProfCounter::kCycles]).c_str());
      } else {
        out += strfmt("  %-15s task-clock %s\n",
                      phase_name(static_cast<Phase>(i)),
                      ns_human(c[ProfCounter::kTaskClockNs]).c_str());
      }
    }
  }
  return out;
}

}  // namespace remo::obs
