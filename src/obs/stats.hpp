// The engine's consolidated observability snapshot.
//
// `Engine::metrics_snapshot()` returns one of these: flat counters (the
// original six plus local/remote split), the merged per-update latency
// histogram, and per-phase wall-clock accounting — per rank and aggregated.
// `to_json()` is the schema behind `remo ingest --stats-json` and the
// latency block of BENCH_*.json (documented in docs/OBSERVABILITY.md).
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/histogram.hpp"
#include "obs/lineage.hpp"
#include "obs/phase_timer.hpp"
#include "obs/prof.hpp"
#include "runtime/metrics.hpp"

namespace remo::obs {

struct RankObs {
  RankMetrics counters;
  HistogramSnapshot update_latency_ns;
  PhaseSnapshot phases;
};

struct MetricsSnapshot {
  MetricsSummary counters;
  HistogramSnapshot update_latency_ns;  ///< merged across ranks
  PhaseSnapshot phases;                 ///< summed across ranks
  std::vector<RankObs> per_rank;
  bool lineage_enabled = false;
  LineageSummary lineage;  ///< work-amplification aggregates (when enabled)
  ProfSnapshot prof;       ///< hardware-counter attribution (prof.enabled)

  /// Latency percentiles + counters + phases as a JSON object
  /// (schema "remo-stats-1"; see docs/OBSERVABILITY.md).
  Json to_json(bool include_per_rank = true) const;

  /// Human-readable multi-line rendering (the CLI's --stats output).
  std::string to_text() const;
};

/// The percentile block shared by stats snapshots and bench reports:
/// {count, min_ns, mean_ns, p50_ns, p90_ns, p99_ns, p999_ns, max_ns}.
Json histogram_to_json(const HistogramSnapshot& h);

Json phases_to_json(const PhaseSnapshot& p);

}  // namespace remo::obs
