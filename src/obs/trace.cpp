#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "common/json.hpp"

namespace remo::obs {

bool write_chrome_trace(const std::string& path, const std::string& process_name,
                        const std::vector<TraceTrack>& tracks) {
  Json root = Json::object();
  Json events = Json::array();

  // Flow hygiene: a ring wraparound can overwrite a flow's "s" record while
  // later "t"/"f" continuations survive (possibly on another rank's track).
  // Chrome-trace viewers render such orphans as dangling arrows, so collect
  // the ids whose begin is retained and filter continuations against it.
  std::unordered_set<std::uint64_t> begun_flows;
  for (const TraceTrack& track : tracks)
    for (const TraceEvent& e : track.events)
      if (e.flow == FlowPhase::kStart) begun_flows.insert(e.flow_id);

  // Process / thread metadata so Perfetto shows named tracks.
  {
    Json meta = Json::object();
    meta["name"] = "process_name";
    meta["ph"] = "M";
    meta["pid"] = 0;
    meta["tid"] = 0;
    meta["args"]["name"] = process_name;
    events.push_back(std::move(meta));
  }
  for (const TraceTrack& track : tracks) {
    Json meta = Json::object();
    meta["name"] = "thread_name";
    meta["ph"] = "M";
    meta["pid"] = 0;
    meta["tid"] = track.tid;
    meta["args"]["name"] = track.label;
    events.push_back(std::move(meta));
  }

  for (const TraceTrack& track : tracks) {
    // Ring order is append order, which is chronological per writer; sort
    // defensively anyway so the monotonic-per-track guarantee is structural.
    std::vector<TraceEvent> sorted = track.events;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.ts_ns < b.ts_ns;
                     });
    for (const TraceEvent& e : sorted) {
      Json j = Json::object();
      j["name"] = e.name ? e.name : "?";
      j["ph"] = "X";
      j["ts"] = static_cast<double>(e.ts_ns) / 1e3;   // microseconds
      j["dur"] = static_cast<double>(e.dur_ns) / 1e3;
      j["pid"] = 0;
      j["tid"] = track.tid;
      if (e.arg_name) j["args"][e.arg_name] = e.arg_value;
      events.push_back(std::move(j));

      if (e.flow == FlowPhase::kNone) continue;
      if (e.flow != FlowPhase::kStart && !begun_flows.count(e.flow_id))
        continue;  // orphan continuation: its begin was overwritten
      Json f = Json::object();
      f["name"] = e.name ? e.name : "?";
      f["cat"] = "flow";
      f["ph"] = e.flow == FlowPhase::kStart ? "s"
                : e.flow == FlowPhase::kStep ? "t"
                                             : "f";
      f["id"] = e.flow_id;
      f["ts"] = static_cast<double>(e.ts_ns) / 1e3;
      f["pid"] = 0;
      f["tid"] = track.tid;
      if (e.flow != FlowPhase::kStart) f["bp"] = "e";  // bind to enclosing slice
      events.push_back(std::move(f));
    }
  }

  root["traceEvents"] = std::move(events);
  root["displayTimeUnit"] = "ms";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string text = root.dump();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace remo::obs
