// Low-overhead event tracer with chrome://tracing JSON export.
//
// Each rank owns one TraceBuffer (single-writer ring); the engine's main
// thread owns another for control operations. Records are fixed-size PODs —
// a static-string name, a start timestamp, a duration, one optional counter
// argument — appended with no allocation or locking. When the ring wraps
// the oldest slices are overwritten (and counted), so a trace of a long run
// keeps its most recent window instead of growing without bound.
//
// Off-switches:
//  * compile time — build with -DREMO_OBS_NO_TRACE and every emit site
//    compiles to nothing;
//  * runtime — tracing is off unless EngineConfig::obs.trace is set; the
//    hot path then costs a single branch on a cached bool.
//
// The exported file is the Trace Event Format's JSON-object form
// ({"traceEvents": [...]}) with complete ("ph":"X") events; one track per
// rank (tid = rank, "main" on its own tid). Load it in chrome://tracing or
// https://ui.perfetto.dev.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace remo::obs {

#ifdef REMO_OBS_NO_TRACE
inline constexpr bool kTraceCompiledIn = false;
#else
inline constexpr bool kTraceCompiledIn = true;
#endif

/// Flow linkage of a slice: chrome-trace flow events ("s"/"t"/"f") connect
/// slices across tracks so a caused cascade is visually traceable.
enum class FlowPhase : std::uint8_t {
  kNone = 0,   ///< plain slice, no flow record
  kStart = 1,  ///< "s" — the root of a flow (e.g. a cause's hop-0 apply)
  kStep = 2,   ///< "t" — a continuation on any rank
  kEnd = 3,    ///< "f" — an explicit terminator
};

/// One complete slice. `name` and `arg_name` must be string literals (or
/// otherwise outlive the buffer).
struct TraceEvent {
  const char* name = nullptr;
  const char* arg_name = nullptr;  // nullptr = no args object
  std::uint64_t ts_ns = 0;         // slice start, engine-relative
  std::uint64_t dur_ns = 0;
  std::uint64_t arg_value = 0;
  std::uint64_t flow_id = 0;       // nonzero when flow != kNone
  FlowPhase flow = FlowPhase::kNone;
};

/// Single-writer ring of trace events.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity) : ring_(capacity ? capacity : 1) {}

  /// Writer side (owning thread only).
  void emit(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns,
            const char* arg_name = nullptr, std::uint64_t arg_value = 0) noexcept {
    if constexpr (!kTraceCompiledIn) {
      (void)name, (void)ts_ns, (void)dur_ns, (void)arg_name, (void)arg_value;
      return;
    }
    const std::uint64_t seq = next_.load(std::memory_order_relaxed);
    ring_[seq % ring_.size()] = TraceEvent{name, arg_name, ts_ns, dur_ns, arg_value};
    next_.store(seq + 1, std::memory_order_release);
  }

  /// Emit a slice participating in a flow (`flow_id` nonzero). The export
  /// renders the slice plus a flow record bound to it; continuations whose
  /// flow-start was lost to ring wraparound are filtered at export so the
  /// JSON never contains a flow step/end without its begin.
  void emit_flow(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns,
                 std::uint64_t flow_id, FlowPhase phase,
                 const char* arg_name = nullptr,
                 std::uint64_t arg_value = 0) noexcept {
    if constexpr (!kTraceCompiledIn) {
      (void)name, (void)ts_ns, (void)dur_ns, (void)flow_id, (void)phase;
      (void)arg_name, (void)arg_value;
      return;
    }
    const std::uint64_t seq = next_.load(std::memory_order_relaxed);
    ring_[seq % ring_.size()] =
        TraceEvent{name, arg_name, ts_ns, dur_ns, arg_value, flow_id, phase};
    next_.store(seq + 1, std::memory_order_release);
  }

  std::size_t capacity() const noexcept { return ring_.size(); }

  /// Total events emitted over the buffer's lifetime. Readable by any
  /// thread at any time (single writer, atomic sequence).
  std::uint64_t emitted() const noexcept {
    return next_.load(std::memory_order_acquire);
  }

  std::uint64_t dropped() const noexcept {
    const std::uint64_t n = emitted();
    return n > ring_.size() ? n - ring_.size() : 0;
  }

  /// Copy out the retained window in chronological order. Call only while
  /// the writer is quiescent (the engine exports traces at quiescence).
  std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    const std::uint64_t n = emitted();
    const std::uint64_t first = n > ring_.size() ? n - ring_.size() : 0;
    out.reserve(static_cast<std::size_t>(n - first));
    for (std::uint64_t seq = first; seq < n; ++seq)
      out.push_back(ring_[seq % ring_.size()]);
    return out;
  }

  /// Best-effort copy of the newest `max_events` slices, for the stall
  /// watchdog's diagnostic dump. Unlike events(), this may be called while
  /// the writer is live — but it is only coherent when the writer has gone
  /// quiet (the flagged rank in a stall dump is, by definition, the rank
  /// that has stopped emitting). Slices being overwritten mid-copy can
  /// come out mixed; never use for the quiescent export path.
  std::vector<TraceEvent> recent_events(std::size_t max_events) const {
    const std::uint64_t n = emitted();
    const std::uint64_t window = std::min<std::uint64_t>(ring_.size(), n);
    const std::uint64_t first = n - std::min<std::uint64_t>(window, max_events);
    std::vector<TraceEvent> out;
    out.reserve(static_cast<std::size_t>(n - first));
    for (std::uint64_t seq = first; seq < n; ++seq)
      out.push_back(ring_[seq % ring_.size()]);
    return out;
  }

 private:
  std::vector<TraceEvent> ring_;
  std::atomic<std::uint64_t> next_{0};
};

/// One exported track: a label and the buffer's retained events.
struct TraceTrack {
  std::string label;      // e.g. "rank 0", "main"
  std::uint32_t tid = 0;  // chrome-trace thread id
  std::vector<TraceEvent> events;
};

/// Serialise tracks to a chrome://tracing JSON file. Timestamps are
/// converted from nanoseconds to the format's microsecond floats; events
/// within each track are emitted in chronological order. Returns false on
/// I/O failure.
bool write_chrome_trace(const std::string& path, const std::string& process_name,
                        const std::vector<TraceTrack>& tracks);

}  // namespace remo::obs
