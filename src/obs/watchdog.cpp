#include "obs/watchdog.hpp"

#include <cstdio>
#include <utility>

#include "common/strfmt.hpp"

namespace remo::obs {

StallWatchdog::StallWatchdog(Sampler sampler, Config cfg, OnStall on_stall)
    : sampler_(std::move(sampler)),
      cfg_(std::move(cfg)),
      on_stall_(std::move(on_stall)) {
  thread_ = std::thread([this] { run(); });
}

StallWatchdog::~StallWatchdog() { stop(); }

void StallWatchdog::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool StallWatchdog::rank_flagged(std::uint32_t r) const {
  std::lock_guard lock(mutex_);
  return r < watch_.size() && watch_[r].flagged;
}

std::string StallWatchdog::format_dump(const GaugeSample& s, std::uint32_t rank,
                                       std::uint32_t periods) {
  std::string out;
  out += strfmt(
      "=== remo stall watchdog: rank %u made no progress for %u sampling "
      "periods with backlog ===\n",
      rank, periods);
  out += strfmt(
      "watermarks: ingested %s, applied %s, converged_through %s, lag %s "
      "events, staleness %.3f s\n",
      with_commas(s.events_ingested).c_str(),
      with_commas(s.events_applied).c_str(),
      with_commas(s.converged_through).c_str(),
      with_commas(s.convergence_lag_events).c_str(),
      static_cast<double>(s.staleness_ns) / 1e9);
  out += strfmt("in-flight %lld, total queue depth %s, idle ranks %u/%zu\n",
                static_cast<long long>(s.in_flight),
                with_commas(s.queue_depth).c_str(), s.idle_ranks,
                s.per_rank.size());
  if (s.safra_mode) {
    out += strfmt(
        "termination: safra generation %llu, %llu probe rounds, probe %s, "
        "terminated=%d\n",
        static_cast<unsigned long long>(s.safra_generation),
        static_cast<unsigned long long>(s.safra_probe_rounds),
        s.safra_probe_active ? "circulating" : "idle",
        s.safra_terminated ? 1 : 0);
  } else {
    out += "termination: counting detector\n";
  }
  for (std::size_t r = 0; r < s.per_rank.size(); ++r) {
    const RankGaugeSample& g = s.per_rank[r];
    out += strfmt(
        "  rank %-3zu%s %-5s queue %-9s ingested %-12s applied %-12s stale "
        "%.3f s\n",
        r, r == rank ? " <<<" : "    ", g.idle ? "idle" : "busy",
        with_commas(g.queue_depth).c_str(),
        with_commas(g.events_ingested).c_str(),
        with_commas(g.events_applied).c_str(),
        static_cast<double>(g.staleness_ns) / 1e9);
  }
  return out;
}

void StallWatchdog::deliver(const Report& r) {
  if (on_stall_) {
    on_stall_(r);
    return;
  }
  if (!cfg_.dump_path.empty()) {
    if (std::FILE* f = std::fopen(cfg_.dump_path.c_str(), "a")) {
      std::fwrite(r.dump.data(), 1, r.dump.size(), f);
      std::fclose(f);
      return;
    }
  }
  std::fwrite(r.dump.data(), 1, r.dump.size(), stderr);
}

void StallWatchdog::check(const GaugeSample& s) {
  std::vector<Report> reports;
  // While a Safra token is circulating, quiescence detection itself is the
  // system's current work: a rank can legitimately show backlog with a
  // frozen applied counter for several periods (the token must complete
  // whole ring circuits before termination is declared). Hold the
  // no-progress counters — neither advancing them nor resetting them — so
  // a slow-but-progressing probe is never reported as a wedge, yet a rank
  // that was already suspect resumes accumulating once the probe ends.
  const bool probing = s.safra_mode && s.safra_probe_active && !s.safra_terminated;
  {
    std::lock_guard lock(mutex_);
    watch_.resize(s.per_rank.size());
    for (std::size_t r = 0; r < s.per_rank.size(); ++r) {
      const RankGaugeSample& g = s.per_rank[r];
      RankWatch& w = watch_[r];
      const bool progressed = g.events_applied != w.last_applied;
      w.last_applied = g.events_applied;
      if (progressed || g.queue_depth == 0) {
        w.no_progress = 0;
        if (w.flagged && progressed) {
          w.flagged = false;
          Report rep;
          rep.rank = static_cast<std::uint32_t>(r);
          rep.recovered = true;
          rep.sample = s;
          rep.dump = strfmt("=== remo stall watchdog: rank %zu recovered ===\n", r);
          reports.push_back(std::move(rep));
        }
        continue;
      }
      if (probing) continue;  // token in flight: hold, don't accumulate
      ++w.no_progress;
      if (w.no_progress >= cfg_.stall_periods && !w.flagged) {
        w.flagged = true;
        Report rep;
        rep.rank = static_cast<std::uint32_t>(r);
        rep.periods = w.no_progress;
        rep.sample = s;
        rep.dump = format_dump(s, rep.rank, rep.periods);
        if (cfg_.extra_dump) rep.dump += cfg_.extra_dump(rep.rank);
        reports.push_back(std::move(rep));
      }
    }
  }
  for (const Report& rep : reports) {
    if (!rep.recovered) stalls_.fetch_add(1, std::memory_order_acq_rel);
    deliver(rep);
  }
}

void StallWatchdog::run() {
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      cv_.wait_for(lock, cfg_.period, [this] { return stopping_; });
      if (stopping_) return;
    }
    check(sampler_());
  }
}

}  // namespace remo::obs
