// StallWatchdog: flags ranks that have backlog but make no progress.
//
// Built on the same GaugeSamples as the exporter: every period it compares
// each rank's applied-event counter against the previous sample. A rank
// whose queue depth is nonzero while its applied counter has not advanced
// for `stall_periods` consecutive samples is flagged, and a diagnostic
// dump (the full gauge sample, per-rank queue depths, detector state, plus
// whatever the `extra_dump` hook supplies — the engine wires its stall
// dump with the flagged rank's recent trace events) is written instead of
// the system hanging silently. A flagged rank that advances again is
// unflagged, and a recovery line is logged.
//
// Like the exporter, the watchdog is sampler-driven and engine-agnostic,
// so detection logic is unit-testable against scripted samples.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/gauges.hpp"

namespace remo::obs {

class StallWatchdog {
 public:
  struct Config {
    std::chrono::milliseconds period{100};
    /// Consecutive no-progress samples (with backlog) before flagging.
    std::uint32_t stall_periods = 3;
    /// Diagnostic dump destination; empty = stderr.
    std::string dump_path;
    /// Optional extra diagnostics appended to the dump (e.g. the engine's
    /// stall_dump(rank) with recent trace events).
    std::function<std::string(std::uint32_t /*rank*/)> extra_dump;
  };

  struct Report {
    std::uint32_t rank = 0;
    std::uint32_t periods = 0;  ///< no-progress periods when flagged
    bool recovered = false;     ///< true for the recovery notification
    GaugeSample sample;         ///< the sample that triggered the report
    std::string dump;           ///< the rendered diagnostic text
  };

  using Sampler = std::function<GaugeSample()>;
  using OnStall = std::function<void(const Report&)>;

  /// Starts the sampling thread. When `on_stall` is empty the dump is
  /// written to `dump_path` (or stderr); a callback receives the report
  /// instead and owns delivery.
  StallWatchdog(Sampler sampler, Config cfg, OnStall on_stall = {});
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  void stop();

  /// Stall reports produced so far (recoveries not counted).
  std::uint64_t stalls_detected() const noexcept {
    return stalls_.load(std::memory_order_acquire);
  }

  /// True while rank `r` is currently flagged.
  bool rank_flagged(std::uint32_t r) const;

  /// Render the human-readable diagnostic dump for a stalled rank (exposed
  /// for tests and for hosts that deliver reports themselves).
  static std::string format_dump(const GaugeSample& s, std::uint32_t rank,
                                 std::uint32_t periods);

 private:
  struct RankWatch {
    std::uint64_t last_applied = 0;
    std::uint32_t no_progress = 0;
    bool flagged = false;
  };

  void run();
  void check(const GaugeSample& s);
  void deliver(const Report& r);

  Sampler sampler_;
  Config cfg_;
  OnStall on_stall_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::vector<RankWatch> watch_;
  std::atomic<std::uint64_t> stalls_{0};

  std::thread thread_;
};

}  // namespace remo::obs
