// Comm: the shared-nothing communicator.
//
// One mailbox per rank (per-producer SPSC rings, see mailbox.hpp),
// per-destination send buffers (visitors batch up and flush in groups, like
// MPI message aggregation) with an optional coalescing index that merges
// same-key monotone Update visitors before they ever travel, and the
// in-flight accounting that backs both the counting termination detector
// and the epoch-drain logic of versioned snapshots (Section III-D).
//
// Accounting invariant: every *basic* (non-control) visitor increments
// in_flight for its epoch parity before it becomes visible to any consumer
// and decrements only after its callback has fully executed (including the
// sends the callback generated, which were incremented first). Therefore
// in_flight == 0 implies no basic work exists anywhere in the system.
//
// The counters are sharded: one cache-line-padded {injected, processed}
// pair per rank plus one external shard for main-thread injections, so the
// hot path RMWs a line no other rank touches. Readers compute
// in_flight = Σinjected − Σprocessed by summing every *processed* counter
// first, fencing, then summing every *injected* counter. Both families are
// monotone, so for the instant T between the two phases:
//     ΣP(read) ≤ ΣP(T) ≤ ΣI(T) ≤ ΣI(read)
// (the middle inequality is the invariant itself). If the two read sums are
// equal, the chain collapses and in-flight was exactly zero at T — a sound
// quiescence certificate with no retry loop. Non-quiescent reads may be
// transiently low or even negative; pollers just keep polling. DESIGN.md §6
// ("Quiescence and the in-flight invariant") is the full treatment.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/hash.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/message.hpp"

namespace remo {

class Comm {
 public:
  /// Type-erased monotone merge hook (a VertexProgram::combine thunk; the
  /// runtime layer cannot see core/). Registered per program id by the
  /// engine while idle. Slot reads need no atomics: a rank only consults
  /// combiners_[algo] while holding a visitor of program `algo`, and every
  /// such visitor was published through a release/acquire chain (mailbox
  /// ring or overflow mutex) that starts at an injection sequenced after
  /// register_combiner returned — so the slot write happens-before every
  /// read of that slot. has_combiners_ IS atomic, because rank threads
  /// poll it each loop iteration with no such chain.
  using CombineFn = StateWord (*)(const void*, StateWord, StateWord);
  struct Combiner {
    const void* prog = nullptr;
    CombineFn fn = nullptr;
  };

  /// `arenas` (optional, one per rank) back the inbound mailbox rings:
  /// rank r's mailbox — which r alone drains — allocates its slot arrays
  /// from arenas[r], i.e. on the consumer's NUMA node.
  explicit Comm(RankId num_ranks, std::size_t batch_size = 128,
                std::size_t ring_capacity = 16384,
                const std::vector<Arena*>& arenas = {})
      : batch_size_(batch_size),
        shards_(static_cast<std::size_t>(num_ranks) + 1) {
    REMO_CHECK(num_ranks > 0);
    REMO_CHECK(batch_size > 0);
    ranks_.reserve(num_ranks);
    for (RankId r = 0; r < num_ranks; ++r)
      ranks_.push_back(std::make_unique<PerRank>(
          num_ranks, ring_capacity,
          r < arenas.size() ? arenas[r] : nullptr));
  }

  RankId size() const noexcept { return static_cast<RankId>(ranks_.size()); }

  Mailbox& mailbox(RankId r) noexcept { return ranks_[r]->box; }

  /// Register `combine` for program `algo` (engine-idle only; see Combiner).
  void register_combiner(std::uint8_t algo, const void* prog, CombineFn fn) {
    combiners_[algo] = Combiner{prog, fn};
    has_combiners_.store(true, std::memory_order_release);
  }

  /// The merge hook for `algo`, or nullptr when none is registered.
  const Combiner* combiner(std::uint8_t algo) const noexcept {
    return combiners_[algo].fn != nullptr ? &combiners_[algo] : nullptr;
  }

  bool has_combiners() const noexcept {
    return has_combiners_.load(std::memory_order_acquire);
  }

  /// Send a visitor from rank `from` to rank `to`. Must be called from the
  /// owning thread of `from`. Basic visitors are counted; control visitors
  /// bypass accounting (they must not hold off quiescence).
  ///
  /// Returns true when the visitor was *coalesced away*: an Update with the
  /// same (program, target, sender, epoch) key was already buffered for
  /// `to`, and this visitor's payload was merged into it via the program's
  /// combine hook. A coalesced visitor never becomes visible to any
  /// consumer, so it is never counted — not by the in-flight counters, not
  /// by Safra's balance, not by messages_sent (the caller owns those
  /// skips; see RankRuntime::send and DESIGN.md §6).
  ///
  /// Self-sends (`from == to`) take a loop-back fast path: the sender IS
  /// the consumer, so the visitor goes straight onto a thread-private local
  /// queue — no send buffer, no mailbox, no flush round-trip, and no
  /// coalescing (it would only re-order the cheapest path). FIFO among a
  /// rank's self-sends is trivially preserved; cross-sender order into one
  /// mailbox was never guaranteed. Drain via Comm::drain (not the raw
  /// mailbox) to observe the local queue.
  bool send(RankId from, RankId to, const Visitor& v) {
    auto& pr = *ranks_[from];
    if (from == to) {
      if (v.kind != VisitKind::kControl) note_injected(v.epoch, from);
      pr.local.push_back(v);
      pr.local_depth.store(pr.local.size(), std::memory_order_relaxed);
      return false;
    }
    OutBuf& ob = pr.out[to];
    if (v.kind == VisitKind::kUpdate) {
      const Combiner& c = combiners_[v.algo];
      if (c.fn != nullptr && coalesce_into(ob, v, c)) return true;
    }
    if (v.kind != VisitKind::kControl) note_injected(v.epoch, from);
    if (!ob.listed) {
      ob.listed = true;
      pr.dirty.push_back(to);
    }
    ob.buf.push_back(v);
    if (ob.buf.size() >= batch_size_) flush_one(from, to);
    return false;
  }

  /// Consumer-side drain of rank `r`'s ingress: the mailbox plus the
  /// (thread-private) loop-back queue. Must be called from the owning
  /// thread of `r`. Returns false when both were empty; `out` is replaced.
  bool drain(RankId r, std::vector<Visitor>& out) {
    auto& pr = *ranks_[r];
    const bool from_box = pr.box.drain(out);  // clears `out` first
    if (pr.local.empty()) return from_box;
    out.insert(out.end(), pr.local.begin(), pr.local.end());
    pr.local.clear();
    pr.local_depth.store(0, std::memory_order_relaxed);
    return true;
  }

  /// True when rank `r` has undrained loop-back visitors. Owning thread only.
  bool local_pending(RankId r) const noexcept { return !ranks_[r]->local.empty(); }

  /// Ingress backlog of rank `r` — undrained mailbox visitors plus the
  /// loop-back queue — readable by any thread without locks (the per-rank
  /// queue-depth gauge; values are slightly stale, never torn).
  std::size_t queue_depth(RankId r) const noexcept {
    const auto& pr = *ranks_[r];
    return pr.box.approx_depth() + pr.local_depth.load(std::memory_order_relaxed);
  }

  /// SPSC-ring occupancy of rank `r`'s mailbox (gauge).
  std::size_t ring_depth(RankId r) const noexcept {
    return ranks_[r]->box.ring_depth();
  }

  /// Overflow-segment occupancy of rank `r`'s mailbox (gauge).
  std::size_t overflow_depth(RankId r) const noexcept {
    return ranks_[r]->box.overflow_depth();
  }

  /// Visitors that spilled past rank `r`'s rings so far (counter).
  std::uint64_t overflows(RankId r) const noexcept {
    return ranks_[r]->box.overflows();
  }

  /// Push all of rank `from`'s buffered visitors to their mailboxes.
  /// O(dirty destinations), not O(ranks): only buffers touched since the
  /// last flush are visited.
  void flush(RankId from) {
    auto& pr = *ranks_[from];
    if (pr.dirty.empty()) return;
    for (const RankId to : pr.dirty) {
      flush_one(from, to);
      pr.out[to].listed = false;
    }
    pr.dirty.clear();
  }

  /// True when rank `from` has buffered undelivered visitors. Owning
  /// thread only (reads the thread-private dirty list). O(dirty).
  bool has_buffered(RankId from) const noexcept {
    const auto& pr = *ranks_[from];
    return std::any_of(pr.dirty.begin(), pr.dirty.end(),
                       [&](RankId to) { return !pr.out[to].buf.empty(); });
  }

  /// Account for a basic visitor becoming in-flight. `shard` is the rank
  /// doing the accounting; omit it for injections from outside the rank
  /// threads (stream feeders, main-thread init, tests), which share one
  /// external shard. Pair with note_processed (any shard — the sums are
  /// global).
  void note_injected(std::uint16_t epoch) noexcept {
    note_injected(epoch, size());
  }
  void note_injected(std::uint16_t epoch, RankId shard) noexcept {
    shards_[shard].injected[epoch & 1].fetch_add(1, std::memory_order_release);
  }

  void note_processed(std::uint16_t epoch) noexcept {
    note_processed(epoch, size());
  }
  void note_processed(std::uint16_t epoch, RankId shard) noexcept {
    shards_[shard].processed[epoch & 1].fetch_add(1, std::memory_order_release);
  }

  /// Σinjected − Σprocessed for one epoch parity, via the two-phase read
  /// (processed first — see the header comment). == 0 is a sound "was
  /// quiescent" certificate; transient non-quiescent values may be low or
  /// negative and must only ever be compared against zero by pollers.
  std::int64_t in_flight(std::uint16_t epoch_parity) const noexcept {
    const unsigned p = epoch_parity & 1;
    std::uint64_t processed = 0;
    for (const auto& s : shards_)
      processed += s.processed[p].load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::uint64_t injected = 0;
    for (const auto& s : shards_)
      injected += s.injected[p].load(std::memory_order_acquire);
    return static_cast<std::int64_t>(injected - processed);
  }

  /// Both parities in one sound certificate (single fence between the
  /// processed and injected phases, so == 0 still pins one instant).
  std::int64_t in_flight_total() const noexcept {
    std::uint64_t processed = 0;
    for (const auto& s : shards_)
      processed += s.processed[0].load(std::memory_order_acquire) +
                   s.processed[1].load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::uint64_t injected = 0;
    for (const auto& s : shards_)
      injected += s.injected[0].load(std::memory_order_acquire) +
                  s.injected[1].load(std::memory_order_acquire);
    return static_cast<std::int64_t>(injected - processed);
  }

  /// Wake every parked rank (phase transitions, shutdown).
  void interrupt_all() {
    for (auto& r : ranks_) r->box.interrupt();
  }

 private:
  /// One send buffer plus its (lazily built) coalescing index: open
  /// addressing over (program, target, sender, epoch), slots invalidated
  /// wholesale by bumping `stamp` at flush instead of clearing. Capacity is
  /// 2× batch_size rounded up to a power of two, and the buffer never
  /// exceeds batch_size entries between flushes, so load factor stays
  /// ≤ 1/2 and linear probing terminates.
  struct OutBuf {
    struct Slot {
      std::uint32_t stamp = 0;  // valid iff == OutBuf::stamp (0 = never)
      std::uint32_t pos = 0;    // index into buf
    };
    std::vector<Visitor> buf;
    std::vector<Slot> slots;
    std::uint32_t stamp = 0;
    bool listed = false;  // on the owner's dirty-destination list?
  };

  struct PerRank {
    PerRank(RankId n, std::size_t ring_capacity, Arena* arena)
        : box(n, ring_capacity, arena), out(n) {}
    Mailbox box;
    std::vector<OutBuf> out;     // per-destination send buffers
    std::vector<RankId> dirty;   // destinations with listed OutBufs (owner only)
    std::vector<Visitor> local;  // loop-back queue (owning thread only)
    std::atomic<std::size_t> local_depth{0};  // local.size(), lock-free gauge
  };

  struct alignas(64) Shard {
    std::atomic<std::uint64_t> injected[2]{};
    std::atomic<std::uint64_t> processed[2]{};
  };

  /// Merge `v` into an already-buffered same-key Update, or claim an index
  /// slot for the append the caller is about to do. Returns true iff
  /// merged (the caller must then treat `v` as never having existed).
  bool coalesce_into(OutBuf& ob, const Visitor& v, const Combiner& c) {
    if (ob.slots.empty()) {
      std::size_t cap = 8;
      while (cap < 2 * batch_size_) cap <<= 1;
      ob.slots.assign(cap, OutBuf::Slot{});
      ob.stamp = 1;
    }
    const std::uint64_t mask = ob.slots.size() - 1;
    std::uint64_t h = splitmix64(v.target);
    h = hash_combine(h, v.other);
    h = hash_combine(h, (static_cast<std::uint64_t>(v.epoch) << 8) | v.algo);
    for (std::uint64_t i = h & mask;; i = (i + 1) & mask) {
      OutBuf::Slot& s = ob.slots[i];
      if (s.stamp != ob.stamp) {
        s.stamp = ob.stamp;
        s.pos = static_cast<std::uint32_t>(ob.buf.size());
        return false;
      }
      Visitor& e = ob.buf[s.pos];
      if (e.kind == VisitKind::kUpdate && e.algo == v.algo &&
          e.target == v.target && e.other == v.other && e.epoch == v.epoch) {
        e.value = c.fn(c.prog, e.value, v.value);
        return true;
      }
    }
  }

  void flush_one(RankId from, RankId to) {
    OutBuf& ob = ranks_[from]->out[to];
    if (!ob.buf.empty()) {
      ranks_[to]->box.push_from(
          from, std::span<const Visitor>(ob.buf.data(), ob.buf.size()));
      ob.buf.clear();
    }
    if (!ob.slots.empty() && ++ob.stamp == 0) {  // uint32 wrap: hard-reset
      std::fill(ob.slots.begin(), ob.slots.end(), OutBuf::Slot{});
      ob.stamp = 1;
    }
  }

  std::size_t batch_size_;
  std::vector<std::unique_ptr<PerRank>> ranks_;
  // One shard per rank plus shards_[size()] for external injections; each
  // counter pair is indexed by epoch parity (at most two epochs are ever
  // active — the engine serialises versioned collections).
  std::vector<Shard> shards_;
  Combiner combiners_[256] = {};
  std::atomic<bool> has_combiners_{false};
};

}  // namespace remo
