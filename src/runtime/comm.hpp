// Comm: the shared-nothing communicator.
//
// One mailbox per rank, per-destination send buffers (visitors batch up and
// flush in groups, like MPI message aggregation), and the in-flight
// accounting that backs both the counting termination detector and the
// epoch-drain logic of versioned snapshots (Section III-D).
//
// Accounting invariant: every *basic* (non-control) visitor increments
// in_flight for its epoch parity before it becomes visible to any consumer
// and decrements only after its callback has fully executed (including the
// sends the callback generated, which were incremented first). Therefore
// in_flight == 0 implies no basic work exists anywhere in the system.
// DESIGN.md §6 ("Quiescence and the in-flight invariant") is the full
// treatment, message-flow diagram included.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/message.hpp"

namespace remo {

class Comm {
 public:
  explicit Comm(RankId num_ranks, std::size_t batch_size = 128)
      : batch_size_(batch_size) {
    REMO_CHECK(num_ranks > 0);
    ranks_.reserve(num_ranks);
    for (RankId r = 0; r < num_ranks; ++r)
      ranks_.push_back(std::make_unique<PerRank>(num_ranks));
    in_flight_[0] = 0;
    in_flight_[1] = 0;
  }

  RankId size() const noexcept { return static_cast<RankId>(ranks_.size()); }

  Mailbox& mailbox(RankId r) noexcept { return ranks_[r]->box; }

  /// Send a visitor from rank `from` to rank `to`. Must be called from the
  /// owning thread of `from`. Basic visitors are counted; control visitors
  /// bypass accounting (they must not hold off quiescence).
  ///
  /// Self-sends (`from == to`) take a loop-back fast path: the sender IS
  /// the consumer, so the visitor goes straight onto a thread-private local
  /// queue — no send buffer, no mailbox mutex, no flush round-trip. FIFO
  /// among a rank's self-sends is trivially preserved; cross-sender order
  /// into one mailbox was never guaranteed. Drain via Comm::drain (not the
  /// raw mailbox) to observe the local queue.
  void send(RankId from, RankId to, const Visitor& v) {
    if (v.kind != VisitKind::kControl) note_injected(v.epoch);
    if (from == to) {
      auto& pr = *ranks_[from];
      pr.local.push_back(v);
      pr.local_depth.store(pr.local.size(), std::memory_order_relaxed);
      return;
    }
    auto& buf = ranks_[from]->out[to];
    buf.push_back(v);
    if (buf.size() >= batch_size_) flush_one(from, to);
  }

  /// Consumer-side drain of rank `r`'s ingress: the (locked) mailbox plus
  /// the (thread-private) loop-back queue. Must be called from the owning
  /// thread of `r`. Returns false when both were empty; `out` is replaced.
  bool drain(RankId r, std::vector<Visitor>& out) {
    auto& pr = *ranks_[r];
    const bool from_box = pr.box.drain(out);  // clears `out` first
    if (pr.local.empty()) return from_box;
    out.insert(out.end(), pr.local.begin(), pr.local.end());
    pr.local.clear();
    pr.local_depth.store(0, std::memory_order_relaxed);
    return true;
  }

  /// True when rank `r` has undrained loop-back visitors. Owning thread only.
  bool local_pending(RankId r) const noexcept { return !ranks_[r]->local.empty(); }

  /// Ingress backlog of rank `r` — undrained mailbox visitors plus the
  /// loop-back queue — readable by any thread without locks (the per-rank
  /// queue-depth gauge; values are slightly stale, never torn).
  std::size_t queue_depth(RankId r) const noexcept {
    const auto& pr = *ranks_[r];
    return pr.box.approx_depth() + pr.local_depth.load(std::memory_order_relaxed);
  }

  /// Push all of rank `from`'s buffered visitors to their mailboxes.
  void flush(RankId from) {
    for (RankId to = 0; to < size(); ++to) flush_one(from, to);
  }

  bool has_buffered(RankId from) const noexcept {
    for (const auto& buf : ranks_[from]->out)
      if (!buf.empty()) return true;
    return false;
  }

  /// Account for a basic visitor injected from outside a callback (stream
  /// pull, main-thread init). Pair with note_processed.
  void note_injected(std::uint16_t epoch) noexcept {
    in_flight_[epoch & 1].fetch_add(1, std::memory_order_acq_rel);
  }

  void note_processed(std::uint16_t epoch) noexcept {
    [[maybe_unused]] const auto prev =
        in_flight_[epoch & 1].fetch_sub(1, std::memory_order_acq_rel);
    REMO_ASSERT(prev > 0);
  }

  std::int64_t in_flight(std::uint16_t epoch_parity) const noexcept {
    return in_flight_[epoch_parity & 1].load(std::memory_order_acquire);
  }

  std::int64_t in_flight_total() const noexcept {
    return in_flight(0) + in_flight(1);
  }

  /// Wake every parked rank (phase transitions, shutdown).
  void interrupt_all() {
    for (auto& r : ranks_) r->box.interrupt();
  }

 private:
  struct PerRank {
    explicit PerRank(RankId n) : out(n) {}
    Mailbox box;
    std::vector<std::vector<Visitor>> out;  // per-destination send buffers
    std::vector<Visitor> local;  // loop-back queue (owning thread only)
    std::atomic<std::size_t> local_depth{0};  // local.size(), lock-free gauge
  };

  void flush_one(RankId from, RankId to) {
    auto& buf = ranks_[from]->out[to];
    if (buf.empty()) return;
    ranks_[to]->box.push(std::span<const Visitor>(buf.data(), buf.size()));
    buf.clear();
  }

  std::size_t batch_size_;
  std::vector<std::unique_ptr<PerRank>> ranks_;
  // Indexed by epoch parity: at most two epochs are ever active (the engine
  // serialises versioned collections), so parity disambiguates.
  std::atomic<std::int64_t> in_flight_[2];
};

}  // namespace remo
