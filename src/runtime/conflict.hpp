// Conflict-aware batch scheduling for concurrent update admission
// (RisGraph-style "schedule non-conflicting updates in parallel").
//
// Two edge events *conflict* when their initial visitors land on the same
// vertex: the engine serialises a pair's history through the owner of its
// canonical source, so events sharing that vertex must keep their relative
// order, while events with distinct canonical sources commute (the
// fuzzer-tested determinism contract: the converged state is a function of
// the event multiset plus each unordered pair's internal order only).
//
// ConflictPartitioner::plan() turns one in-order batch into a sequence of
// *waves*: within a wave every event has a distinct conflict key (safe to
// admit concurrently); across waves the original order of same-key events
// is preserved. Dispatching waves in order with a barrier between them is
// therefore observationally equivalent to serial in-order admission. See
// docs/SERVING.md for the full soundness argument.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "gen/stream.hpp"
#include "storage/robin_hood_map.hpp"

namespace remo {

/// The vertex whose owning rank receives an event's initial visitor: the
/// canonical source (undirected engines orient every event min->max before
/// routing, so (u,v) and (v,u) collide — exactly the pair-serialisation
/// granularity the determinism contract needs).
inline VertexId conflict_vertex(const EdgeEvent& e, bool undirected) noexcept {
  if (!undirected) return e.src;
  return e.src < e.dst ? e.src : e.dst;
}

/// A batch's wave decomposition. Wave `w` is the index slice
/// `order[wave_begin[w] .. wave_begin[w+1])`; indices refer to the input
/// batch and appear in input order within each wave.
struct WavePlan {
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> wave_begin;  ///< size num_waves()+1, ends at order.size()

  std::size_t num_waves() const noexcept {
    return wave_begin.empty() ? 0 : wave_begin.size() - 1;
  }
  std::size_t wave_size(std::size_t w) const noexcept {
    return wave_begin[w + 1] - wave_begin[w];
  }
  std::size_t max_wave_size() const noexcept {
    std::size_t m = 0;
    for (std::size_t w = 0; w < num_waves(); ++w)
      if (wave_size(w) > m) m = wave_size(w);
    return m;
  }
  /// Mean events per wave — the "conflict-batch occupancy" gauge. 1.0 means
  /// fully serial (every event conflicted); batch-size means fully parallel.
  double mean_occupancy() const noexcept {
    return num_waves() == 0 ? 0.0
                            : static_cast<double>(order.size()) /
                                  static_cast<double>(num_waves());
  }
};

class ConflictPartitioner {
 public:
  /// Greedy earliest-wave assignment over explicit conflict keys: event i
  /// goes to wave (last wave of key_i) + 1, so same-key events occupy
  /// strictly increasing waves (order preserved) and a wave never repeats a
  /// key. Runs in O(n) expected time.
  static WavePlan plan_keys(const std::vector<std::uint64_t>& keys) {
    WavePlan plan;
    const std::size_t n = keys.size();
    if (n == 0) return plan;
    std::vector<std::uint32_t> wave_of(n);
    RobinHoodMap<std::uint64_t, std::uint32_t> next_wave;  // key -> first legal wave
    std::uint32_t num_waves = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t& nw = next_wave.get_or_insert(keys[i]);  // default 0
      wave_of[i] = nw;
      if (nw + 1 > num_waves) num_waves = nw + 1;
      ++nw;
    }
    // Bucket indices wave-major, stable in input order (counting sort).
    plan.wave_begin.assign(num_waves + 1, 0);
    for (std::size_t i = 0; i < n; ++i) ++plan.wave_begin[wave_of[i] + 1];
    for (std::size_t w = 0; w < num_waves; ++w)
      plan.wave_begin[w + 1] += plan.wave_begin[w];
    plan.order.resize(n);
    std::vector<std::uint32_t> cursor(plan.wave_begin.begin(),
                                      plan.wave_begin.end() - 1);
    for (std::size_t i = 0; i < n; ++i)
      plan.order[cursor[wave_of[i]]++] = static_cast<std::uint32_t>(i);
    return plan;
  }

  /// plan_keys over a batch of edge events, keyed by conflict_vertex().
  static WavePlan plan(const std::vector<EdgeEvent>& batch, bool undirected) {
    std::vector<std::uint64_t> keys;
    keys.reserve(batch.size());
    for (const EdgeEvent& e : batch)
      keys.push_back(splitmix64(conflict_vertex(e, undirected)));
    return plan_keys(keys);
  }
};

}  // namespace remo
