// Mailbox: the FIFO ingress queue of a rank.
//
// Multi-producer (every other rank), single-consumer (the owning rank).
// Producers append batches under a mutex; the consumer swaps the whole
// pending vector out, so steady-state cost is one lock per *batch*, not per
// message. Per-producer FIFO order is preserved (a producer's batches are
// appended in send order), which is the ordering guarantee the paper's
// undirected-edge serialisation argument relies on (Section III-C).
#pragma once

#include <condition_variable>
#include <mutex>
#include <span>
#include <vector>

#include "runtime/message.hpp"

namespace remo {

class Mailbox {
 public:
  /// Append a batch of visitors (producer side).
  void push(std::span<const Visitor> batch) {
    if (batch.empty()) return;
    {
      std::lock_guard lock(mutex_);
      pending_.insert(pending_.end(), batch.begin(), batch.end());
    }
    cv_.notify_one();
  }

  void push_one(const Visitor& v) { push(std::span<const Visitor>{&v, 1}); }

  /// Swap out all pending visitors (consumer side). Returns false when the
  /// mailbox was empty. `out` is cleared first.
  bool drain(std::vector<Visitor>& out) {
    out.clear();
    std::lock_guard lock(mutex_);
    if (pending_.empty()) return false;
    out.swap(pending_);
    return true;
  }

  bool empty() const {
    std::lock_guard lock(mutex_);
    return pending_.empty();
  }

  /// Park the consumer until a push arrives or `timeout` elapses. Returns
  /// true when the mailbox is (possibly) non-empty.
  template <typename Duration>
  bool wait(Duration timeout) {
    std::unique_lock lock(mutex_);
    if (!pending_.empty()) return true;
    cv_.wait_for(lock, timeout);
    return !pending_.empty();
  }

  /// Wake a parked consumer without delivering a message (used by the
  /// engine for phase changes).
  void interrupt() { cv_.notify_all(); }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Visitor> pending_;
};

}  // namespace remo
