// Mailbox: the FIFO ingress queue of a rank.
//
// Multi-producer (every other rank), single-consumer (the owning rank).
// Producers append batches under a mutex; the consumer swaps the whole
// pending vector out, so steady-state cost is one lock per *batch*, not per
// message. Per-producer FIFO order is preserved (a producer's batches are
// appended in send order), which is the ordering guarantee the paper's
// undirected-edge serialisation argument relies on (Section III-C).
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <span>
#include <vector>

#include "runtime/message.hpp"

namespace remo {

class Mailbox {
 public:
  /// Append a batch of visitors (producer side).
  void push(std::span<const Visitor> batch) {
    if (batch.empty()) return;
    {
      std::lock_guard lock(mutex_);
      pending_.insert(pending_.end(), batch.begin(), batch.end());
      depth_.store(pending_.size(), std::memory_order_relaxed);
    }
    cv_.notify_one();
  }

  void push_one(const Visitor& v) { push(std::span<const Visitor>{&v, 1}); }

  /// Swap out all pending visitors (consumer side). Returns false when the
  /// mailbox was empty. `out` is cleared first.
  bool drain(std::vector<Visitor>& out) {
    out.clear();
    std::lock_guard lock(mutex_);
    if (pending_.empty()) return false;
    out.swap(pending_);
    depth_.store(0, std::memory_order_relaxed);
    return true;
  }

  /// Undrained visitor count, readable by any thread without taking the
  /// mailbox mutex (the queue-depth gauge). The store always happens under
  /// the mutex, so the value is never torn — merely slightly stale.
  std::size_t approx_depth() const noexcept {
    return depth_.load(std::memory_order_relaxed);
  }

  bool empty() const {
    std::lock_guard lock(mutex_);
    return pending_.empty();
  }

  /// Park the consumer until a push arrives or `timeout` elapses. Returns
  /// true when the mailbox is (possibly) non-empty.
  template <typename Duration>
  bool wait(Duration timeout) {
    std::unique_lock lock(mutex_);
    if (!pending_.empty()) return true;
    cv_.wait_for(lock, timeout);
    return !pending_.empty();
  }

  /// Wake a parked consumer without delivering a message (used by the
  /// engine for phase changes).
  void interrupt() { cv_.notify_all(); }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Visitor> pending_;
  std::atomic<std::size_t> depth_{0};  // pending_.size(), lock-free gauge
};

}  // namespace remo
