// Mailbox: the FIFO ingress queue of a rank.
//
// Multi-producer (every other rank plus the main thread), single-consumer
// (the owning rank). The hot path is lock-free: each *rank* producer owns a
// bounded SPSC ring (single writer, single reader, release/acquire on the
// ring indices), so a steady-state push touches no mutex at all. Two slow
// paths share one mutexed overflow segment: producers without a ring (the
// main thread's push()/push_one()) and ring producers whose ring filled up.
//
// Per-producer FIFO order — the ordering guarantee the paper's
// undirected-edge serialisation argument relies on (Section III-C) — is
// preserved across the ring/overflow boundary by a sticky per-ring `spilled`
// flag: once a producer spills, it keeps appending to the overflow segment
// (never the ring) until the consumer has taken the overflow *and* cleared
// the flag under the same mutex. Thus at any instant a producer's pending
// visitors are [older: its ring] ++ [newer: its overflow entries], and
// drain() empties rings before the overflow segment (re-draining spilled
// rings under the mutex, see drain() for the interleaving proof).
//
// Parking uses an eventcount-style protocol instead of holding a mutex
// around the queue: the consumer raises `parked_`, fences, re-checks
// emptiness, and only then blocks on the condvar; a producer fences after
// publishing and checks `parked_`. The two seq_cst fences guarantee that
// either the consumer sees the new message on its re-check or the producer
// sees `parked_ == true` and rings the condvar — there is no interleaving
// in which a push lands between the re-check and the park without a wakeup
// (DESIGN.md §6). The bounded wait_for is a belt-and-braces liveness
// backstop, not a correctness requirement.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "runtime/memory.hpp"
#include "runtime/message.hpp"

namespace remo {

class Mailbox {
 public:
  /// A mailbox with `producers` SPSC rings (one per rank that may call
  /// push_from) of `ring_capacity` slots each (rounded up to a power of
  /// two). With zero producers every push takes the overflow path — the
  /// configuration standalone tests use.
  ///
  /// `arena` (optional) backs the ring slot arrays. The mailbox belongs to
  /// its consumer, so passing the *consumer rank's* node-bound arena puts
  /// every ring on the node that drains it — the consumer walks all
  /// producers' rings each drain() while each producer writes its one ring
  /// once, so consumer-side placement wins (DESIGN.md "Memory & locality").
  explicit Mailbox(RankId producers = 0, std::size_t ring_capacity = 16384,
                   Arena* arena = nullptr) {
    std::size_t cap = 8;
    while (cap < ring_capacity) cap <<= 1;
    rings_.reserve(producers);
    for (RankId p = 0; p < producers; ++p)
      rings_.push_back(std::make_unique<Ring>(cap, arena));
  }

  RankId producers() const noexcept { return static_cast<RankId>(rings_.size()); }

  /// Append a batch from ring producer `producer` (that producer's thread
  /// only). Lock-free while the ring has room; spills the remainder to the
  /// overflow segment when it fills (counted in overflows()).
  void push_from(RankId producer, std::span<const Visitor> batch) {
    if (batch.empty()) return;
    Ring& ring = *rings_[producer];
    std::size_t taken = 0;
    // The producer is the only writer of `spilled` transitions it cares
    // about ordering against its own pushes; a stale `true` read (consumer
    // cleared it concurrently) merely routes one more batch through the
    // overflow segment, which is always FIFO-safe.
    if (!ring.spilled.load(std::memory_order_relaxed)) {
      const std::uint64_t tail = ring.tail.load(std::memory_order_relaxed);
      if (tail - ring.cached_head > ring.mask) {
        ring.cached_head = ring.head.load(std::memory_order_acquire);
      }
      const std::size_t room =
          static_cast<std::size_t>(ring.mask + 1 - (tail - ring.cached_head));
      taken = batch.size() < room ? batch.size() : room;
      for (std::size_t i = 0; i < taken; ++i)
        ring.slots[(tail + i) & ring.mask] = batch[i];
      ring.tail.store(tail + taken, std::memory_order_release);
    }
    if (taken < batch.size()) {
      {
        std::lock_guard lock(overflow_mutex_);
        // Re-assert under the mutex: from here until the consumer clears
        // the flag (also under this mutex), this producer bypasses its
        // ring, so its overflow entries stay newer than its ring entries.
        ring.spilled.store(true, std::memory_order_relaxed);
        overflow_.insert(overflow_.end(), batch.begin() + taken, batch.end());
        overflow_depth_.store(overflow_.size(), std::memory_order_release);
      }
      overflows_.fetch_add(batch.size() - taken, std::memory_order_relaxed);
    }
    notify();
  }

  /// Append a batch from a producer without a ring (main thread, tests).
  /// Always takes the mutexed overflow segment; FIFO per caller holds
  /// because appends are serialised by the mutex.
  void push(std::span<const Visitor> batch) {
    if (batch.empty()) return;
    {
      std::lock_guard lock(overflow_mutex_);
      overflow_.insert(overflow_.end(), batch.begin(), batch.end());
      overflow_depth_.store(overflow_.size(), std::memory_order_release);
    }
    notify();
  }

  void push_one(const Visitor& v) { push(std::span<const Visitor>{&v, 1}); }

  /// Take all pending visitors (consumer side). Returns false when the
  /// mailbox was empty. `out` is cleared first. Per-producer FIFO: a
  /// producer's ring entries predate its overflow entries (sticky-flag
  /// argument above), and any ring entries that landed *after* the first
  /// ring pass but *before* that producer spilled are re-collected under
  /// the mutex — while its `spilled` flag is set the producer cannot add
  /// ring entries, so the second pass sees everything older than the
  /// overflow entries taken in the same critical section.
  bool drain(std::vector<Visitor>& out) {
    out.clear();
    for (auto& ring : rings_) pop_ring(*ring, out);
    if (overflow_depth_.load(std::memory_order_acquire) != 0) {
      std::lock_guard lock(overflow_mutex_);
      for (auto& ring : rings_) {
        if (ring->spilled.load(std::memory_order_relaxed)) {
          pop_ring(*ring, out);
          // Sequence check on the ring/overflow boundary: while `spilled`
          // is set its owning producer routes every visitor to the overflow
          // segment, so the re-pop above must leave the ring empty. A
          // non-empty ring here would mean ring entries NEWER than the
          // overflow entries taken below — a per-producer FIFO violation
          // (the ordering DESIGN.md §2 and the undirected serialisation
          // argument rely on). Checked before the flag is cleared, while
          // the producer still cannot touch the ring.
          if (ring->tail.load(std::memory_order_acquire) !=
              ring->head.load(std::memory_order_relaxed)) {
            fifo_violations_.fetch_add(1, std::memory_order_relaxed);
            REMO_ASSERT(false && "mailbox: ring grew while spilled");
          }
          ring->spilled.store(false, std::memory_order_relaxed);
        }
      }
      out.insert(out.end(), overflow_.begin(), overflow_.end());
      overflow_.clear();
      overflow_depth_.store(0, std::memory_order_relaxed);
    }
    return !out.empty();
  }

  /// Undrained visitor count, readable by any thread without locks (the
  /// queue-depth gauge). Head is read before tail per ring, so concurrent
  /// consumption can only make the estimate high, never negative.
  std::size_t approx_depth() const noexcept {
    return ring_depth() + overflow_depth();
  }

  /// Occupancy of the SPSC rings alone (the ring-occupancy gauge).
  std::size_t ring_depth() const noexcept {
    std::size_t n = 0;
    for (const auto& ring : rings_) {
      const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
      const std::uint64_t tail = ring->tail.load(std::memory_order_relaxed);
      n += static_cast<std::size_t>(tail - head);
    }
    return n;
  }

  /// Occupancy of the mutexed overflow segment (gauge; updated under the
  /// mutex, read lock-free).
  std::size_t overflow_depth() const noexcept {
    return overflow_depth_.load(std::memory_order_relaxed);
  }

  /// Total visitors that missed their ring and went through the overflow
  /// segment (the ring_overflows counter; ring producers only — push()
  /// traffic is overflow by design and not counted).
  std::uint64_t overflows() const noexcept {
    return overflows_.load(std::memory_order_relaxed);
  }

  /// Times drain() caught a ring holding entries newer than the overflow
  /// entries it was about to take (see the sequence check in drain()).
  /// Always compiled in — any nonzero value is a FIFO-ordering bug.
  std::uint64_t fifo_violations() const noexcept {
    return fifo_violations_.load(std::memory_order_relaxed);
  }

  /// Lock-free emptiness check (consumer-biased; instantaneous like any
  /// concurrent-queue empty()).
  bool empty() const {
    for (const auto& ring : rings_) {
      if (ring->tail.load(std::memory_order_acquire) !=
          ring->head.load(std::memory_order_relaxed))
        return false;
    }
    return overflow_depth_.load(std::memory_order_acquire) == 0;
  }

  /// Park the consumer until a push arrives or `timeout` elapses. Returns
  /// true when the mailbox is (possibly) non-empty. Missed-wakeup freedom:
  /// parked_ is raised *before* the emptiness re-check, with seq_cst
  /// fences on both sides (see notify()), so a concurrent publisher either
  /// loses the race to the re-check (we return true) or observes parked_
  /// and signals the condvar.
  template <typename Duration>
  bool wait(Duration timeout) {
    if (!empty()) return true;
    parked_.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!empty()) {
      parked_.store(false, std::memory_order_relaxed);
      return true;
    }
    {
      std::unique_lock lock(park_mutex_);
      cv_.wait_for(lock, timeout, [&] { return wake_signal_; });
      wake_signal_ = false;
    }
    parked_.store(false, std::memory_order_relaxed);
    return !empty();
  }

  /// Wake a parked consumer without delivering a message (used by the
  /// engine for phase changes).
  void interrupt() {
    {
      std::lock_guard lock(park_mutex_);
      wake_signal_ = true;
    }
    cv_.notify_all();
  }

 private:
  struct alignas(64) Ring {
    Ring(std::size_t cap, Arena* arena)
        : slots(cap, Visitor{}, ArenaAllocator<Visitor>(arena)),
          mask(cap - 1) {}
    std::vector<Visitor, ArenaAllocator<Visitor>> slots;
    std::uint64_t mask;
    // Producer side: writes tail (release); caches head to avoid reading
    // the consumer's line on every push.
    alignas(64) std::atomic<std::uint64_t> tail{0};
    std::uint64_t cached_head = 0;  // producer-private
    // Consumer side.
    alignas(64) std::atomic<std::uint64_t> head{0};
    // Sticky spill marker; see the FIFO argument in the header comment.
    std::atomic<bool> spilled{false};
  };

  void pop_ring(Ring& ring, std::vector<Visitor>& out) {
    std::uint64_t head = ring.head.load(std::memory_order_relaxed);
    const std::uint64_t tail = ring.tail.load(std::memory_order_acquire);
    if (head == tail) return;
    for (; head != tail; ++head) out.push_back(ring.slots[head & ring.mask]);
    // Release: the producer's acquire of `head` orders our slot reads
    // before its slot reuse.
    ring.head.store(head, std::memory_order_release);
  }

  /// Publisher half of the eventcount: fence, then signal iff the consumer
  /// advertised it is parking. Pairs with the fence in wait().
  void notify() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!parked_.load(std::memory_order_relaxed)) return;
    {
      std::lock_guard lock(park_mutex_);
      wake_signal_ = true;
    }
    cv_.notify_all();
  }

  std::vector<std::unique_ptr<Ring>> rings_;

  mutable std::mutex overflow_mutex_;
  std::vector<Visitor> overflow_;
  std::atomic<std::size_t> overflow_depth_{0};  // overflow_.size(), lock-free
  std::atomic<std::uint64_t> overflows_{0};     // ring spill events (visitors)
  std::atomic<std::uint64_t> fifo_violations_{0};  // drain() sequence check

  std::mutex park_mutex_;
  std::condition_variable cv_;
  std::atomic<bool> parked_{false};
  bool wake_signal_ = false;  // guarded by park_mutex_
};

}  // namespace remo
