#include "runtime/memory.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "common/assert.hpp"
#include "common/strfmt.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace remo {

namespace {

constexpr std::size_t kHugePageBytes = std::size_t{2} << 20;

std::size_t round_up(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}

#if defined(__linux__)
/// Bind a fresh mapping to one NUMA node via the raw syscall (no libnuma).
/// Best effort: EPERM/ENOSYS/1-node hosts just leave first-touch placement.
void bind_to_node(void* base, std::size_t len, int node) {
  if (node < 0 || node >= 64) return;
  constexpr int kMpolBind = 2;  // MPOL_BIND (numaif.h, not always packaged)
  unsigned long nodemask = 1UL << node;
  // maxnode counts bits and the kernel wants one past the highest set bit.
  syscall(SYS_mbind, base, len, kMpolBind, &nodemask,
          static_cast<unsigned long>(node + 2), 0UL);
}
#endif

}  // namespace

const char* page_backing_name(PageBacking backing) {
  switch (backing) {
    case PageBacking::kExplicitHuge: return "hugetlb";
    case PageBacking::kThp: return "thp";
    case PageBacking::kPlain: return "plain";
    case PageBacking::kHeap: return "heap";
  }
  return "heap";
}

Arena::Arena(ArenaConfig cfg) : cfg_(cfg) {
  if (cfg_.chunk_bytes < kHugePageBytes) cfg_.chunk_bytes = kHugePageBytes;
  cfg_.chunk_bytes = round_up(cfg_.chunk_bytes, kHugePageBytes);
  // Map the first chunk eagerly so the achieved backing tier is known at
  // construction — MemoryPlane's banner must print before ingest starts,
  // not on the first allocation mid-run.
  std::lock_guard<std::mutex> lock(mutex_);
  chunks_.push_back(map_chunk(cfg_.chunk_bytes));
}

Arena::~Arena() {
  for (Chunk& chunk : chunks_) unmap_chunk(chunk);
}

Arena::Chunk Arena::map_chunk(std::size_t bytes) {
  Chunk chunk;
  chunk.size = round_up(bytes, kHugePageBytes);
#if defined(__linux__)
  void* base = MAP_FAILED;
  if (cfg_.use_huge_pages) {
    base = mmap(nullptr, chunk.size, PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
    if (base != MAP_FAILED) chunk.backing = PageBacking::kExplicitHuge;
  }
  if (base == MAP_FAILED) {
    base = mmap(nullptr, chunk.size, PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (base != MAP_FAILED) {
      chunk.backing = PageBacking::kPlain;
      if (cfg_.use_huge_pages &&
          madvise(base, chunk.size, MADV_HUGEPAGE) == 0)
        chunk.backing = PageBacking::kThp;
    }
  }
  if (base != MAP_FAILED) {
    chunk.base = base;
    bind_to_node(base, chunk.size, cfg_.numa_node);
  }
#endif
  if (chunk.base == nullptr) {
    // mmap refused (or non-Linux): the heap tier. Alignment to 2 MiB keeps
    // the bump math identical across tiers.
    chunk.base = ::operator new(chunk.size, std::align_val_t{kHugePageBytes});
    chunk.backing = PageBacking::kHeap;
  }
  worst_backing_ = std::max(worst_backing_, chunk.backing);
  any_chunk_ = true;
  return chunk;
}

void Arena::unmap_chunk(Chunk& chunk) noexcept {
  if (chunk.base == nullptr) return;
#if defined(__linux__)
  if (chunk.backing != PageBacking::kHeap) {
    munmap(chunk.base, chunk.size);
    chunk.base = nullptr;
    return;
  }
#endif
  ::operator delete(chunk.base, chunk.size,
                    std::align_val_t{kHugePageBytes});
  chunk.base = nullptr;
}

std::size_t Arena::class_log2(std::size_t bytes, std::size_t align) {
  // Over-aligned (> 4 KiB) or huge requests skip the free lists: a
  // recycled block only guarantees min(class, 4 KiB) alignment, and
  // anything past 64 MiB is a one-off table that will never be refilled.
  if (align > 4096) return 0;
  const std::size_t want = std::max({bytes, align, std::size_t{1} << kMinClassLog2});
  if (want > (std::size_t{1} << kMaxClassLog2)) return 0;
  return static_cast<std::size_t>(std::bit_width(std::bit_ceil(want) >> 1));
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  REMO_CHECK_MSG(align != 0 && (align & (align - 1)) == 0,
                 "arena alignment must be a power of two");
  if (bytes == 0) bytes = 1;
  std::lock_guard<std::mutex> lock(mutex_);
  if (const std::size_t cls = class_log2(bytes, align); cls != 0) {
    if (void* head = free_lists_[cls]) {
      // Reuse beats fresh pages: the recycled block is cache-warm, already
      // faulted in, and (when mbind applies) already on this arena's node.
      free_lists_[cls] = *static_cast<void**>(head);
      allocated_ += std::size_t{1} << cls;
      return head;
    }
    // Carve the full class size so the block can round-trip through the
    // free list; min(class, 4 KiB) alignment covers any eligible request.
    bytes = std::size_t{1} << cls;
    align = std::min(bytes, std::size_t{4096});
  }
  Chunk* chunk = &chunks_.back();
  std::size_t offset = round_up(chunk->used, align);
  if (offset + bytes > chunk->size) {
    // Exhausted: oversized requests get a dedicated chunk, normal ones a
    // fresh standard chunk. Old chunks keep their bump memory (live
    // container storage) until arena destruction.
    const std::size_t want = std::max(cfg_.chunk_bytes, round_up(bytes, align));
    chunks_.push_back(map_chunk(want));
    chunk = &chunks_.back();
    offset = 0;
  }
  chunk->used = offset + bytes;
  allocated_ += bytes;
  return static_cast<char*>(chunk->base) + offset;
}

void Arena::deallocate(void* p, std::size_t bytes, std::size_t align) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
  const std::size_t cls = class_log2(bytes, align);
  if (cls == 0) return;  // bump-path block: resident until ~Arena
  std::lock_guard<std::mutex> lock(mutex_);
  *static_cast<void**>(p) = free_lists_[cls];
  free_lists_[cls] = p;
}

PageBacking Arena::backing() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return any_chunk_ ? worst_backing_ : PageBacking::kHeap;
}

std::size_t Arena::allocated_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocated_;
}

std::size_t Arena::reserved_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const Chunk& chunk : chunks_) total += chunk.size;
  return total;
}

MemoryPlane::MemoryPlane(const MemoryConfig& cfg, PinningMode pinning,
                         RankId num_ranks)
    : cfg_(cfg), pinning_(pinning) {
  topo_ = Topology::detect();
  plan_ = plan_pinning(topo_, pinning_, num_ranks);
  if (!cfg_.arenas) return;
  arenas_.reserve(num_ranks);
  for (RankId r = 0; r < num_ranks; ++r) {
    ArenaConfig ac;
    ac.chunk_bytes = cfg_.arena_chunk_bytes;
    ac.use_huge_pages = cfg_.huge_pages;
    if (cfg_.numa_bind && topo_.nodes.size() > 1)
      ac.numa_node = plan_.slots[r].node;
    arenas_.push_back(std::make_unique<Arena>(ac));
  }
}

Arena* MemoryPlane::rank_arena(RankId r) const {
  if (arenas_.empty()) return nullptr;
  REMO_CHECK_MSG(static_cast<std::size_t>(r) < arenas_.size(),
                 "rank out of range for memory plane");
  return arenas_[r].get();
}

bool MemoryPlane::degraded() const { return !degradation_note().empty(); }

std::string MemoryPlane::degradation_note() const {
  std::string note;
  const auto add = [&note](const std::string& line) {
    if (!note.empty()) note += "\n";
    note += line;
  };
  if (pinning_ != PinningMode::kNone && plan_.degraded)
    add("pinning degraded: " + plan_.note);
  else if (cfg_.arenas && cfg_.numa_bind && topo_.degraded)
    add("topology degraded: " + topo_.note);
  if (cfg_.arenas && cfg_.huge_pages && !arenas_.empty()) {
    // Report the weakest tier any rank arena achieved.
    PageBacking worst = PageBacking::kExplicitHuge;
    for (const auto& arena : arenas_)
      worst = std::max(worst, arena->backing());
    if (worst != PageBacking::kExplicitHuge)
      add(strfmt("huge pages degraded: wanted hugetlb, got %s "
                 "(check /proc/sys/vm/nr_hugepages)",
                 page_backing_name(worst)));
  }
  if (cfg_.arenas && cfg_.numa_bind && topo_.nodes.size() <= 1 &&
      !topo_.degraded)
    add("single NUMA node — mbind is a no-op, first-touch only");
  return note;
}

void MemoryPlane::print_banner_once() {
  if (banner_printed_) return;
  banner_printed_ = true;
  const std::string note = degradation_note();
  if (note.empty()) return;
  std::string banner = "!! memory plane degraded:";
  std::size_t pos = 0;
  std::string text = note;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string line =
        text.substr(pos, nl == std::string::npos ? std::string::npos
                                                 : nl - pos);
    banner += "\n!!   " + line;
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  std::fprintf(stderr, "%s\n", banner.c_str());
}

Json MemoryPlane::to_json() const {
  Json j = Json::object();
  j["pinning"] = pinning_mode_name(pinning_);
  j["arenas"] = cfg_.arenas;
  j["huge_pages"] = cfg_.huge_pages;
  j["numa_bind"] = cfg_.numa_bind;
  j["arena_chunk_bytes"] = static_cast<std::uint64_t>(cfg_.arena_chunk_bytes);
  j["numa_nodes"] = static_cast<std::uint64_t>(topo_.nodes.size());
  j["cpus"] = static_cast<std::uint64_t>(topo_.num_cpus());
  j["degraded"] = degraded();
  if (const std::string note = degradation_note(); !note.empty())
    j["degradation_note"] = note;
  if (!arenas_.empty()) {
    PageBacking worst = PageBacking::kExplicitHuge;
    std::uint64_t reserved = 0, allocated = 0;
    for (const auto& arena : arenas_) {
      worst = std::max(worst, arena->backing());
      reserved += arena->reserved_bytes();
      allocated += arena->allocated_bytes();
    }
    j["page_backing"] = page_backing_name(worst);
    j["arena_reserved_bytes"] = reserved;
    j["arena_allocated_bytes"] = allocated;
  }
  Json slots = Json::array();
  for (const PinSlot& slot : plan_.slots) {
    Json s = Json::object();
    s["cpu"] = static_cast<std::int64_t>(slot.cpu);
    s["node"] = static_cast<std::int64_t>(slot.node);
    slots.push_back(std::move(s));
  }
  j["rank_slots"] = std::move(slots);
  return j;
}

}  // namespace remo
