// Locality-aware memory plane: huge-page-backed bump arenas with NUMA
// binding, and the per-rank plumbing that hands each rank's storage shard
// and mailbox rings an allocation handle.
//
// Backing tiers (strongest first), each attempted per chunk:
//   1. mmap(MAP_HUGETLB)        — explicit 2 MiB pages (needs nr_hugepages)
//   2. mmap + madvise(HUGEPAGE) — transparent huge pages (THP "madvise" mode)
//   3. plain anonymous mmap     — 4 KiB pages
//   4. operator new             — non-Linux / mmap-refused fallback
// Degradation below the requested tier is *explicit*: MemoryPlane prints a
// one-time banner and records the achieved tier in its JSON block — never
// silent (DESIGN.md "Memory & locality").
//
// Arenas are chunked bump allocators with power-of-two size-class free
// lists: deallocate returns a block to its class for reuse, so the
// vector-growth / rehash churn of the ingest hot path recycles cache-hot,
// node-local buffers instead of bumping through cold pages forever (the
// heap gets this reuse from malloc; without it, arenas lose ~10% on
// single-node hosts). Chunk memory returns to the OS only at arena
// destruction. The engine therefore destroys its MemoryPlane *after*
// every container that holds arena memory (member order in Engine).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"
#include "runtime/topology.hpp"

namespace remo {

/// Page backing a chunk ended up with (tier actually achieved).
enum class PageBacking : std::uint8_t {
  kExplicitHuge,  ///< mmap(MAP_HUGETLB) succeeded
  kThp,           ///< plain mmap + madvise(MADV_HUGEPAGE) accepted
  kPlain,         ///< plain mmap, no huge-page hint honoured
  kHeap,          ///< operator new (mmap unavailable)
};

const char* page_backing_name(PageBacking backing);

struct ArenaConfig {
  /// Chunk reservation size. A multiple of 2 MiB so the MAP_HUGETLB tier
  /// never fails on length alignment alone.
  std::size_t chunk_bytes = std::size_t{8} << 20;
  /// NUMA node to mbind fresh chunks to (-1: first-touch / no binding).
  int numa_node = -1;
  /// Try the huge-page tiers; false jumps straight to plain pages.
  bool use_huge_pages = true;
};

/// Thread-safe bump allocator over mmap'd chunks with power-of-two
/// size-class free lists. Grows by mapping a new chunk on exhaustion;
/// oversized requests get a dedicated chunk. Freed class-sized blocks are
/// recycled (intrusive per-class lists, so reuse stays on the arena's NUMA
/// node); chunk memory is unmapped only at destruction.
class Arena {
 public:
  explicit Arena(ArenaConfig cfg);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Aligned allocation; never returns nullptr (operator-new tier throws
  /// std::bad_alloc like the heap would). `align` must be a power of two.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Returns class-eligible blocks (<= 64 MiB, align <= 4 KiB) to the
  /// matching free list for reuse; anything else stays resident until
  /// arena destruction (bump semantics). Pass the same size/alignment the
  /// block was allocated with, as std::allocator_traits guarantees.
  void deallocate(void* p, std::size_t bytes,
                  std::size_t align = alignof(std::max_align_t)) noexcept;

  /// Weakest backing tier any chunk landed on (the honest number to
  /// report: one plain-page chunk among huge ones still means TLB misses).
  PageBacking backing() const;

  /// Cumulative bytes handed out (class-rounded; reuse from a free list
  /// counts again — this is allocation traffic, not live bytes).
  std::size_t allocated_bytes() const;
  std::size_t reserved_bytes() const;  ///< bytes mapped in chunks
  int numa_node() const { return cfg_.numa_node; }

 private:
  struct Chunk {
    void* base = nullptr;
    std::size_t size = 0;
    std::size_t used = 0;
    PageBacking backing = PageBacking::kHeap;
  };

  // Free-list size classes: powers of two from 8 B (room for the
  // intrusive next pointer) to 64 MiB. Vector doubling and Robin Hood
  // rehash both free exact power-of-two blocks, so classes fit snugly.
  static constexpr std::size_t kMinClassLog2 = 3;
  static constexpr std::size_t kMaxClassLog2 = 26;
  /// Size-class index for a (bytes, align) request, or 0 when the request
  /// must take the raw bump path (huge or over-aligned).
  static std::size_t class_log2(std::size_t bytes, std::size_t align);

  Chunk map_chunk(std::size_t bytes);
  void unmap_chunk(Chunk& chunk) noexcept;

  ArenaConfig cfg_;
  mutable std::mutex mutex_;
  std::vector<Chunk> chunks_;
  void* free_lists_[kMaxClassLog2 + 1] = {};
  std::size_t allocated_ = 0;
  PageBacking worst_backing_ = PageBacking::kExplicitHuge;
  bool any_chunk_ = false;
};

/// Std-compatible allocator carrying an optional Arena. Null arena ==
/// plain heap (the default everywhere, so existing behaviour is
/// unchanged). Propagates on move/copy/swap so container moves — e.g.
/// RobinHoodMap::rehash's move-then-assign — stay O(1) pointer steals.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (arena_)
      return static_cast<T*>(arena_->allocate(bytes, alignof(T)));
    return static_cast<T*>(
        ::operator new(bytes, std::align_val_t{alignof(T)}));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (arena_) {
      arena_->deallocate(p, n * sizeof(T), alignof(T));
      return;
    }
    ::operator delete(p, n * sizeof(T), std::align_val_t{alignof(T)});
  }

  Arena* arena() const noexcept { return arena_; }

  friend bool operator==(const ArenaAllocator& a,
                         const ArenaAllocator& b) noexcept {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a,
                         const ArenaAllocator& b) noexcept {
    return !(a == b);
  }

 private:
  Arena* arena_ = nullptr;
};

/// Memory-plane knobs (EngineConfig::memory). Everything defaults off so
/// a default-constructed engine allocates exactly as before.
struct MemoryConfig {
  /// Give each rank's storage shard and inbound mailbox rings a
  /// node-bound arena instead of the global heap.
  bool arenas = false;
  /// Attempt the huge-page tiers (explicit, then THP) for arena chunks.
  bool huge_pages = true;
  /// Arena chunk reservation size (multiple of 2 MiB recommended).
  std::size_t arena_chunk_bytes = std::size_t{8} << 20;
  /// mbind arena chunks to the owning rank's NUMA node (no-op on
  /// single-node hosts; first-touch still applies).
  bool numa_bind = true;
};

/// Owns the topology snapshot, the rank pin plan, and (when enabled) one
/// arena per rank bound to that rank's planned node. Constructed by the
/// engine before any rank state so arenas outlive every container.
class MemoryPlane {
 public:
  MemoryPlane(const MemoryConfig& cfg, PinningMode pinning, RankId num_ranks);

  /// The rank's arena, or nullptr when arenas are off (heap behaviour).
  Arena* rank_arena(RankId r) const;

  const Topology& topology() const { return topo_; }
  const PinPlan& plan() const { return plan_; }
  PinningMode pinning() const { return pinning_; }
  const MemoryConfig& config() const { return cfg_; }

  /// True when anything fell below what was asked for: topology fallback,
  /// pin-plan wrap, or a backing tier weaker than requested.
  bool degraded() const;
  /// Human-readable reasons, one per line (empty when !degraded()).
  std::string degradation_note() const;

  /// Print the degradation banner to stderr, once per plane. No output
  /// when nothing degraded or nothing was requested.
  void print_banner_once();

  /// Self-describing block for BENCH reports / stats JSON: pinning mode,
  /// arena state, achieved backing, per-rank node map, degradation note.
  Json to_json() const;

 private:
  MemoryConfig cfg_;
  PinningMode pinning_;
  Topology topo_;
  PinPlan plan_;
  std::vector<std::unique_ptr<Arena>> arenas_;
  bool banner_printed_ = false;
};

}  // namespace remo
