// Visitor messages — the only thing ranks exchange.
//
// The runtime is shared-nothing: algorithm and topology state live strictly
// inside the owning rank, and all coordination happens through these POD
// visitor records (the analogue of HavoqGT's visitor objects serialised
// over MPI, Figure 2 of the paper).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace remo {

/// The event vocabulary of the programming model (Section III-A) plus the
/// decremental extension (Section VI-B) and runtime-internal control.
enum class VisitKind : std::uint8_t {
  kInit,         ///< algorithm instantiation at a vertex (e.g. BFS source)
  kAdd,          ///< edge add at the owner of the edge source
  kReverseAdd,   ///< second half of an undirected edge add
  kUpdate,       ///< algorithm-generated propagation (no topology change)
  kDelete,       ///< edge delete at the owner of the edge source
  kReverseDelete,///< second half of an undirected edge delete
  kInvalidate,   ///< decremental repair phase A wave (Section VI-B)
  kProbe,        ///< decremental repair phase B support request
  kWeightChange, ///< far side of an in-place edge-weight mutation: `value`
                 ///< carries the old weight, `weight` the new one. Never
                 ///< decomposed into kReverseDelete + kReverseAdd — that
                 ///< pair would race the repair wave (DESIGN.md §8).
  kControl,      ///< runtime-internal (termination tokens, markers)
};

/// Control sub-opcodes carried in Visitor::other when kind == kControl.
enum class ControlOp : std::uint64_t {
  kSafraToken = 1,    ///< value = accumulated count, weight = colour (1 black)
  kHarvest = 2,       ///< gather program `algo`'s snapshot slice
  kRepairAnchors = 3, ///< start repair phase A for program `algo`
  kRepairProbes = 4,  ///< start repair phase B for program `algo`
};

/// Fixed-size visitor record. `value` is the sender's algorithm state at
/// send time (the paper's vis_val); `other` is the sender / far endpoint
/// (vis_ID). For wide payloads (e.g. >64-source S-T sets) programs encode
/// an index into rank-local payload tables — the record itself stays POD.
struct Visitor {
  VertexId target = 0;   ///< vertex being visited (owned by receiving rank)
  VertexId other = 0;    ///< vis_ID: the vertex that generated the event
  StateWord value = 0;   ///< vis_val: sender's state (or control payload)
  Weight weight = kDefaultWeight;
  VisitKind kind = VisitKind::kUpdate;
  std::uint8_t algo = kTopologyAlgo;  ///< destination program slot
  std::uint16_t epoch = 0;            ///< snapshot epoch tag (Section III-D)
  std::uint32_t cause = 0;  ///< lineage CauseId; 0 = untraced (obs/lineage.hpp)
  std::uint16_t hop = 0;    ///< hops from the root topology event

  static constexpr std::uint8_t kTopologyAlgo = 0xFF;
};

static_assert(sizeof(Visitor) <= 40, "visitors should stay compact");

}  // namespace remo
