// Per-rank counters, cache-line padded, aggregated by the harness.
#pragma once

#include <cstdint>
#include <vector>

namespace remo {

struct alignas(64) RankMetrics {
  std::uint64_t topology_events = 0;   ///< stream events ingested by this rank
  std::uint64_t algorithm_events = 0;  ///< visitor callbacks executed
  std::uint64_t messages_sent = 0;     ///< visitors sent (local + remote)
  std::uint64_t remote_messages = 0;   ///< visitors that crossed ranks
  std::uint64_t local_messages = 0;    ///< self-sends (loop-back fast path)
  std::uint64_t edges_stored = 0;      ///< directed edges resident
  std::uint64_t control_messages = 0;  ///< termination tokens, markers
};

struct MetricsSummary {
  std::uint64_t topology_events = 0;
  std::uint64_t algorithm_events = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t remote_messages = 0;
  std::uint64_t local_messages = 0;
  std::uint64_t edges_stored = 0;
  std::uint64_t control_messages = 0;

  static MetricsSummary aggregate(const std::vector<RankMetrics>& per_rank) {
    MetricsSummary s;
    for (const auto& m : per_rank) {
      s.topology_events += m.topology_events;
      s.algorithm_events += m.algorithm_events;
      s.messages_sent += m.messages_sent;
      s.remote_messages += m.remote_messages;
      s.local_messages += m.local_messages;
      s.edges_stored += m.edges_stored;
      s.control_messages += m.control_messages;
    }
    return s;
  }
};

}  // namespace remo
