// Per-rank counters, cache-line padded, aggregated by the harness.
//
// Two forms: `LiveRankMetrics` is the recording side living inside each
// rank's runtime — single-writer relaxed-atomic cells so the main thread
// (metrics_snapshot, gauge sampling, the metrics exporter) can read them
// at any time without stopping the engine. `RankMetrics` is the plain
// value snapshot the aggregation and JSON layers consume.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace remo {

/// Single-writer monotone counter with racy-read support. The owner
/// increments with plain load+store pairs (relaxed, no lock prefix — on
/// x86 this compiles to the same `inc` a plain uint64 would); any other
/// thread may `load()` concurrently and sees some recent value. This is
/// the documented relaxed-read semantics of `Engine::metrics_snapshot()`:
/// per-cell values are monotone and never torn, but cells read in one
/// snapshot may lag each other by in-flight work.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter&) = delete;
  RelaxedCounter& operator=(const RelaxedCounter&) = delete;

  /// Writer side (owning thread only).
  void operator++() noexcept { add(1); }
  void operator--() noexcept {
    v_.store(v_.load(std::memory_order_relaxed) - 1, std::memory_order_relaxed);
  }
  void add(std::uint64_t d) noexcept {
    v_.store(v_.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
  }
  void store(std::uint64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }

  /// Reader side (any thread).
  std::uint64_t load() const noexcept { return v_.load(std::memory_order_relaxed); }
  operator std::uint64_t() const noexcept { return load(); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Plain value form of one rank's counters (snapshots, aggregation, JSON).
struct RankMetrics {
  std::uint64_t topology_events = 0;   ///< stream events ingested by this rank
  std::uint64_t algorithm_events = 0;  ///< visitor callbacks executed
  std::uint64_t messages_sent = 0;     ///< visitors sent (local + remote)
  std::uint64_t remote_messages = 0;   ///< visitors that crossed ranks
  std::uint64_t local_messages = 0;    ///< self-sends (loop-back fast path)
  std::uint64_t edges_stored = 0;      ///< directed edges resident
  std::uint64_t control_messages = 0;  ///< termination tokens, markers
  std::uint64_t coalesced_sends = 0;   ///< visitors merged away in send buffers
  std::uint64_t receiver_merges = 0;   ///< visitors merged away after drain
  std::uint64_t ring_overflows = 0;    ///< visitors that spilled past the SPSC rings
};

/// Recording side: same fields as RankMetrics, as RelaxedCounter cells.
/// Written only by the owning rank's thread; readable by any thread.
struct alignas(64) LiveRankMetrics {
  RelaxedCounter topology_events;
  RelaxedCounter algorithm_events;
  RelaxedCounter messages_sent;
  RelaxedCounter remote_messages;
  RelaxedCounter local_messages;
  RelaxedCounter edges_stored;
  RelaxedCounter control_messages;
  RelaxedCounter coalesced_sends;
  RelaxedCounter receiver_merges;

  /// Racy-read value copy (see RelaxedCounter for the semantics).
  /// `ring_overflows` lives in the mailbox, not here — the engine fills it
  /// in when it assembles per-rank snapshots.
  RankMetrics snapshot() const noexcept {
    RankMetrics s;
    s.topology_events = topology_events.load();
    s.algorithm_events = algorithm_events.load();
    s.messages_sent = messages_sent.load();
    s.remote_messages = remote_messages.load();
    s.local_messages = local_messages.load();
    s.edges_stored = edges_stored.load();
    s.control_messages = control_messages.load();
    s.coalesced_sends = coalesced_sends.load();
    s.receiver_merges = receiver_merges.load();
    return s;
  }
};

struct MetricsSummary {
  std::uint64_t topology_events = 0;
  std::uint64_t algorithm_events = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t remote_messages = 0;
  std::uint64_t local_messages = 0;
  std::uint64_t edges_stored = 0;
  std::uint64_t control_messages = 0;
  std::uint64_t coalesced_sends = 0;
  std::uint64_t receiver_merges = 0;
  std::uint64_t ring_overflows = 0;

  static MetricsSummary aggregate(const std::vector<RankMetrics>& per_rank) {
    MetricsSummary s;
    for (const auto& m : per_rank) {
      s.topology_events += m.topology_events;
      s.algorithm_events += m.algorithm_events;
      s.messages_sent += m.messages_sent;
      s.remote_messages += m.remote_messages;
      s.local_messages += m.local_messages;
      s.edges_stored += m.edges_stored;
      s.control_messages += m.control_messages;
      s.coalesced_sends += m.coalesced_sends;
      s.receiver_merges += m.receiver_merges;
      s.ring_overflows += m.ring_overflows;
    }
    return s;
  }
};

}  // namespace remo
