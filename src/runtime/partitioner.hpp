// Consistent-hash partitioner (Section III-C).
//
// owner(v) = hash(v) mod P. Every rank evaluates the same pure function,
// so any rank can route any edge event in O(1) with no directory state —
// the property that lets the infrastructure split the incoming event
// stream across all ranks.
#pragma once

#include "common/hash.hpp"
#include "common/types.hpp"

namespace remo {

enum class PartitionMode {
  kHash,    ///< splitmix64(v) mod P — the paper's choice; id-order agnostic
  kModulo,  ///< v mod P — the naive baseline the hash protects against:
            ///< clustered / strided id spaces skew straight onto ranks
};

class Partitioner {
 public:
  explicit Partitioner(RankId num_ranks, PartitionMode mode = PartitionMode::kHash)
      : num_ranks_(num_ranks), mode_(mode) {}

  RankId owner(VertexId v) const noexcept {
    const std::uint64_t key = mode_ == PartitionMode::kHash ? splitmix64(v) : v;
    return static_cast<RankId>(key % num_ranks_);
  }

  RankId num_ranks() const noexcept { return num_ranks_; }
  PartitionMode mode() const noexcept { return mode_; }

 private:
  RankId num_ranks_;
  PartitionMode mode_;
};

}  // namespace remo
