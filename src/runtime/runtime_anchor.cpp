// Anchor translation unit: proves every runtime header is self-contained.
#include "runtime/comm.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/message.hpp"
#include "runtime/metrics.hpp"
#include "runtime/partitioner.hpp"
#include "runtime/safra.hpp"
