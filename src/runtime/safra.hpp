// Safra's distributed termination detection (EWD 998 formulation).
//
// The paper's middleware determines completion "by a distributed quiescence
// detection algorithm [24]". remo ships two interchangeable detectors: the
// counting detector built into Comm's in-flight accounting (exact, but it
// relies on a shared atomic — cheap on one host, unavailable over a real
// network) and this token-ring algorithm, which uses only point-to-point
// control messages and is the detector a multi-node deployment would run.
//
// Rules (token travels 0 -> N-1 -> N-2 -> ... -> 0):
//  * every rank tracks c_i = basic messages sent - received; a rank turns
//    black when it receives a basic message.
//  * a passive rank i != 0 holding the token forwards (q + c_i, colour')
//    where colour' is black if the rank is black; the rank then whitens.
//  * rank 0 concludes termination when it is passive and white, holds a
//    white token, and q + c_0 == 0; otherwise it whitens and starts a new
//    white probe with q = 0.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace remo {

class SafraRing {
 public:
  struct Token {
    std::int64_t count = 0;
    bool black = false;
  };

  enum class TokenAction {
    kForward,     ///< pass the (mutated) token to the next rank in the ring
    kTerminated,  ///< rank 0 concluded global termination
    kRestart,     ///< rank 0 must launch a fresh probe (token mutated to white/0)
  };

  explicit SafraRing(RankId num_ranks) : states_(num_ranks) {
    for (auto& s : states_) s = std::make_unique<RankState>();
  }

  RankId size() const noexcept { return static_cast<RankId>(states_.size()); }

  /// Ring successor: the token travels towards lower ids.
  RankId next(RankId r) const noexcept { return r == 0 ? size() - 1 : r - 1; }

  void on_basic_send(RankId r) noexcept {
    states_[r]->count.fetch_add(1, std::memory_order_relaxed);
  }

  void on_basic_receive(RankId r) noexcept {
    states_[r]->count.fetch_sub(1, std::memory_order_relaxed);
    states_[r]->black.store(true, std::memory_order_relaxed);
  }

  /// Rank 0, passive and not currently waiting on a probe, kicks off a
  /// white token. Returns false when a probe is already circulating.
  bool start_probe(RankId r) noexcept {
    if (r != 0) return false;
    bool expected = false;
    if (!probe_active_.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel))
      return false;
    states_[0]->black.store(false, std::memory_order_relaxed);
    return true;
  }

  /// A passive rank processes the token it holds. The token is mutated in
  /// place; on kForward the caller sends it to next(r).
  TokenAction on_token(RankId r, Token& token) noexcept {
    RankState& s = *states_[r];
    if (r != 0) {
      token.count += s.count.load(std::memory_order_relaxed);
      if (s.black.load(std::memory_order_relaxed)) token.black = true;
      s.black.store(false, std::memory_order_relaxed);
      return TokenAction::kForward;
    }
    // Rank 0: conclude or restart.
    probe_rounds_.fetch_add(1, std::memory_order_relaxed);
    const bool white_rank = !s.black.load(std::memory_order_relaxed);
    const std::int64_t total = token.count + s.count.load(std::memory_order_relaxed);
    if (!token.black && white_rank && total == 0) {
      terminated_.store(true, std::memory_order_release);
      probe_active_.store(false, std::memory_order_release);
      return TokenAction::kTerminated;
    }
    s.black.store(false, std::memory_order_relaxed);
    token = Token{};  // fresh white probe
    return TokenAction::kRestart;
  }

  bool terminated() const noexcept {
    return terminated_.load(std::memory_order_acquire);
  }

  /// Invalidate any stale token and arm a fresh detection round. Counts
  /// are preserved (messages may legitimately be in flight when a new
  /// phase starts); colours and the terminated flag are cleared, and the
  /// probe generation advances so tokens from previous rounds are ignored
  /// on receipt.
  void rearm() noexcept {
    generation_.fetch_add(1, std::memory_order_acq_rel);
    terminated_.store(false, std::memory_order_release);
    probe_active_.store(false, std::memory_order_release);
  }

  std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  /// Completed token circuits (the token returned to rank 0). A live view
  /// of detector progress: a growing round count with `terminated()` false
  /// means probes keep finding in-flight work.
  std::uint64_t probe_rounds() const noexcept {
    return probe_rounds_.load(std::memory_order_relaxed);
  }

  /// True while a token is circulating (readable by any thread).
  bool probe_active() const noexcept {
    return probe_active_.load(std::memory_order_acquire);
  }

  /// Full reset: only safe when no basic messages are in flight.
  void reset() noexcept {
    rearm();
    for (auto& s : states_) {
      s->count.store(0, std::memory_order_relaxed);
      s->black.store(false, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) RankState {
    std::atomic<std::int64_t> count{0};
    std::atomic<bool> black{false};
  };

  std::vector<std::unique_ptr<RankState>> states_;
  std::atomic<bool> probe_active_{false};
  std::atomic<bool> terminated_{false};
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> probe_rounds_{0};
};

}  // namespace remo
