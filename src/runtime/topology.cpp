#include "runtime/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "common/strfmt.hpp"

#if defined(__linux__)
#include <sched.h>
#endif

namespace remo {

namespace {

/// Read a whole (small) sysfs file; empty string when unreadable.
std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

const char* pinning_mode_name(PinningMode mode) {
  switch (mode) {
    case PinningMode::kNone: return "none";
    case PinningMode::kCompact: return "compact";
    case PinningMode::kScatter: return "scatter";
    case PinningMode::kNumaSpread: return "numa-spread";
  }
  return "none";
}

bool parse_pinning_mode(const std::string& name, PinningMode* out) {
  if (name == "none") *out = PinningMode::kNone;
  else if (name == "compact") *out = PinningMode::kCompact;
  else if (name == "scatter") *out = PinningMode::kScatter;
  else if (name == "numa-spread" || name == "numa_spread")
    *out = PinningMode::kNumaSpread;
  else
    return false;
  return true;
}

std::vector<int> parse_cpu_list(const std::string& text) {
  std::vector<int> cpus;
  std::istringstream in(text);
  std::string chunk;
  while (std::getline(in, chunk, ',')) {
    // Trim whitespace (sysfs files end with '\n').
    const auto b = chunk.find_first_not_of(" \t\n\r");
    if (b == std::string::npos) continue;
    const auto e = chunk.find_last_not_of(" \t\n\r");
    chunk = chunk.substr(b, e - b + 1);
    const auto dash = chunk.find('-');
    char* end = nullptr;
    if (dash == std::string::npos) {
      const long v = std::strtol(chunk.c_str(), &end, 10);
      if (end == chunk.c_str() || *end != '\0' || v < 0) continue;
      cpus.push_back(static_cast<int>(v));
    } else {
      const std::string lo_s = chunk.substr(0, dash);
      const std::string hi_s = chunk.substr(dash + 1);
      const long lo = std::strtol(lo_s.c_str(), &end, 10);
      if (end == lo_s.c_str() || *end != '\0' || lo < 0) continue;
      const long hi = std::strtol(hi_s.c_str(), &end, 10);
      if (end == hi_s.c_str() || *end != '\0' || hi < lo) continue;
      for (long v = lo; v <= hi; ++v) cpus.push_back(static_cast<int>(v));
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

int Topology::num_cpus() const {
  int n = 0;
  for (const TopologyNode& node : nodes) n += static_cast<int>(node.cpus.size());
  return n;
}

int Topology::node_of_cpu(int cpu) const {
  for (const TopologyNode& node : nodes)
    if (std::binary_search(node.cpus.begin(), node.cpus.end(), cpu))
      return node.id;
  return -1;
}

Topology Topology::fallback(int ncpus, std::string why) {
  Topology topo;
  topo.degraded = true;
  topo.note = std::move(why);
  TopologyNode node;
  node.id = 0;
  for (int c = 0; c < std::max(ncpus, 1); ++c) node.cpus.push_back(c);
  topo.nodes.push_back(std::move(node));
  return topo;
}

Topology Topology::from_sysfs(const std::string& root) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const std::string online_nodes = slurp(root + "/devices/system/node/online");
  if (online_nodes.empty())
    return fallback(hw, "no NUMA sysfs tree at " + root +
                            "/devices/system/node — single synthetic node");

  const std::vector<int> node_ids = parse_cpu_list(online_nodes);
  if (node_ids.empty())
    return fallback(hw, "unparseable node/online list — single synthetic node");

  // Offline CPUs must never appear in a pin plan: intersect each node's
  // cpulist with the global online set (absent file == everything online).
  std::set<int> online_cpus;
  bool have_online = false;
  if (const std::string s = slurp(root + "/devices/system/cpu/online");
      !s.empty()) {
    const std::vector<int> v = parse_cpu_list(s);
    online_cpus.insert(v.begin(), v.end());
    have_online = !v.empty();
  }

  Topology topo;
  for (const int id : node_ids) {
    const std::string cpulist =
        slurp(root + "/devices/system/node/node" + std::to_string(id) +
              "/cpulist");
    TopologyNode node;
    node.id = id;
    for (const int cpu : parse_cpu_list(cpulist))
      if (!have_online || online_cpus.count(cpu)) node.cpus.push_back(cpu);
    // Memory-only nodes (no CPUs) still exist as arena targets.
    topo.nodes.push_back(std::move(node));
  }
  if (topo.num_cpus() == 0)
    return fallback(hw, "sysfs nodes listed no online CPUs — single synthetic "
                        "node");
  return topo;
}

Topology Topology::detect() {
#if defined(__linux__)
  return from_sysfs("/sys");
#else
  return fallback(static_cast<int>(std::thread::hardware_concurrency()),
                  "non-Linux host — topology discovery unavailable");
#endif
}

PinPlan plan_pinning(const Topology& topo, PinningMode mode, RankId num_ranks) {
  PinPlan plan;
  plan.slots.resize(num_ranks);
  plan.degraded = topo.degraded;
  plan.note = topo.note;

  // Nodes that actually have CPUs, in id order; memory-only nodes cannot
  // host a rank thread.
  std::vector<const TopologyNode*> cpu_nodes;
  for (const TopologyNode& n : topo.nodes)
    if (!n.cpus.empty()) cpu_nodes.push_back(&n);
  if (cpu_nodes.empty()) {
    plan.degraded = true;
    plan.note = "no CPUs discovered — all ranks unpinned";
    return plan;
  }

  // Flatten into (cpu, node) pairs in the order the mode walks them.
  std::vector<PinSlot> order;
  switch (mode) {
    case PinningMode::kNone:
    case PinningMode::kCompact:
      for (const TopologyNode* n : cpu_nodes)
        for (const int cpu : n->cpus) order.push_back({cpu, n->id});
      break;
    case PinningMode::kScatter:
    case PinningMode::kNumaSpread: {
      // Round-robin across nodes; kNumaSpread is the same walk (each
      // node's CPUs are visited in order, so same-node ranks get distinct
      // cores before any repeats) — the two modes differ only once ranks
      // exceed CPUs, where spread wraps per-node instead of globally.
      std::vector<std::size_t> cursor(cpu_nodes.size(), 0);
      bool any = true;
      while (any) {
        any = false;
        for (std::size_t i = 0; i < cpu_nodes.size(); ++i) {
          if (cursor[i] < cpu_nodes[i]->cpus.size()) {
            order.push_back(
                {cpu_nodes[i]->cpus[cursor[i]++], cpu_nodes[i]->id});
            any = true;
          }
        }
      }
      break;
    }
  }

  for (RankId r = 0; r < num_ranks; ++r) {
    const PinSlot& slot = order[r % order.size()];
    plan.slots[r].node = slot.node;  // arena affinity even under kNone
    if (mode != PinningMode::kNone) plan.slots[r].cpu = slot.cpu;
  }
  if (mode != PinningMode::kNone &&
      static_cast<std::size_t>(num_ranks) > order.size()) {
    plan.degraded = true;
    plan.note = strfmt("%u ranks > %zu online CPUs — pin slots wrap",
                       static_cast<unsigned>(num_ranks), order.size());
  }
  return plan;
}

bool pin_current_thread(int cpu) {
#if defined(__linux__)
  if (cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace remo
