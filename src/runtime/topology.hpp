// CPU/NUMA topology discovery and rank-to-core pinning plans.
//
// Parsed directly from sysfs (no hwloc dependency): node ids from
// /sys/devices/system/node/online, each node's CPU set from
// node<k>/cpulist, intersected with /sys/devices/system/cpu/online so
// offline CPUs never land in a pin plan. Hosts without a NUMA sysfs tree
// (containers, non-Linux) degrade to a single synthetic node covering
// every online CPU — callers see `degraded = true` plus a note, never a
// silent fallback (DESIGN.md "Memory & locality").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace remo {

/// How rank threads are placed on cores (EngineConfig::pinning).
enum class PinningMode {
  kNone,        ///< no affinity calls at all (default; inherit the scheduler)
  kCompact,     ///< fill node 0's cores first, then node 1, ... (cache sharing)
  kScatter,     ///< round-robin across nodes (maximise memory bandwidth)
  kNumaSpread,  ///< like scatter, but ranks on the same node get distinct cores
                ///< before any core is reused (the arena-affinity default)
};

const char* pinning_mode_name(PinningMode mode);

/// Parse a user-facing mode name ("none" | "compact" | "scatter" |
/// "numa-spread"/"numa_spread"). Returns false and leaves `out` untouched
/// on an unknown name.
bool parse_pinning_mode(const std::string& name, PinningMode* out);

/// One NUMA node and its online CPUs (sorted ascending).
struct TopologyNode {
  int id = 0;
  std::vector<int> cpus;
};

/// The machine as seen through sysfs. Immutable after detection.
struct Topology {
  std::vector<TopologyNode> nodes;
  bool degraded = false;  ///< true when sysfs was absent/unparseable
  std::string note;       ///< human-readable reason when degraded

  /// Total online CPUs across all nodes.
  int num_cpus() const;

  /// Node owning `cpu`, or -1 when the CPU is unknown.
  int node_of_cpu(int cpu) const;

  /// Probe the live host (`/sys`). Falls back to a single synthetic node
  /// covering std::thread::hardware_concurrency() CPUs when the sysfs
  /// tree is missing — `degraded` is set and `note` says why.
  static Topology detect();

  /// Probe a scripted sysfs tree rooted at `root` (tests point this at
  /// fixture directories; production uses detect() == from_sysfs("/sys")).
  static Topology from_sysfs(const std::string& root);

  /// The no-sysfs fallback: one node, `ncpus` CPUs, degraded flag set.
  static Topology fallback(int ncpus, std::string why);
};

/// Parse a sysfs CPU-list string ("0-3,5,7-8") into sorted CPU ids.
/// Malformed chunks are skipped; an empty/invalid string yields {}.
std::vector<int> parse_cpu_list(const std::string& text);

/// Where one rank should run.
struct PinSlot {
  int cpu = -1;   ///< -1: leave this rank unpinned
  int node = -1;  ///< preferred NUMA node for the rank's arena (-1: any)
};

/// A full placement: one slot per rank plus degradation provenance.
struct PinPlan {
  std::vector<PinSlot> slots;
  bool degraded = false;
  std::string note;
};

/// Build the rank-to-core placement for `num_ranks` ranks under `mode`.
/// More ranks than CPUs wraps around (slots repeat CPUs) and marks the
/// plan degraded. kNone yields all-unpinned slots (nodes still assigned
/// round-robin so arenas can bind even without affinity).
PinPlan plan_pinning(const Topology& topo, PinningMode mode, RankId num_ranks);

/// Pin the calling thread to `cpu` via sched_setaffinity. Returns false
/// (without raising) when unsupported or refused — callers surface this
/// through the degraded banner, never a crash.
bool pin_current_thread(int cpu);

}  // namespace remo
