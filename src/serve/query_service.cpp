#include "serve/query_service.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

#include "common/assert.hpp"
#include "obs/span.hpp"

namespace remo::serve {
namespace {

constexpr std::size_t kMaxServePrograms = 32;  // Engine::attach's cap

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Json ServeStats::to_json() const {
  Json j = Json::object();
  j["queries_served"] = queries_served;
  j["refreshes"] = refreshes;
  j["served_programs"] = served_programs;
  j["read_epoch_lag_events"] = read_epoch_lag_events;
  j["view_age_ns"] = view_age_ns;
  return j;
}

QueryService::QueryService(Engine& engine, QueryServiceConfig cfg)
    : engine_(engine), cfg_(cfg) {
  slots_.reserve(kMaxServePrograms);
  for (std::size_t i = 0; i < kMaxServePrograms; ++i)
    slots_.push_back(std::make_unique<Slot>());
  if (cfg_.spans) {
    obs::SpanRecorder* rec = cfg_.spans;
    engine_.set_epoch_drain_hook([rec](const Engine::EpochDrainInfo& info) {
      rec->on_epoch_drained(info.watermark, info.drained_ns);
    });
  }
}

QueryService::~QueryService() {
  stop();
  if (cfg_.spans) engine_.set_epoch_drain_hook({});
}

void QueryService::serve(ProgramId p, ViewRole role) {
  REMO_CHECK(p < engine_.num_programs());
  Slot& s = *slots_[p];
  {
    std::lock_guard guard(refresh_mutex_);
    s.role = role;
  }
  publish(p);
  s.active.store(true, std::memory_order_release);
}

void QueryService::start() {
  if (cfg_.refresh_period_ms == 0 || refresher_.joinable()) return;
  {
    std::lock_guard guard(stop_mutex_);
    stopping_ = false;
  }
  refresher_ = std::thread([this] { refresher_main(); });
}

void QueryService::stop() {
  {
    std::lock_guard guard(stop_mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (refresher_.joinable()) refresher_.join();
}

void QueryService::refresher_main() {
  for (;;) {
    {
      std::unique_lock guard(stop_mutex_);
      stop_cv_.wait_for(guard, std::chrono::milliseconds(cfg_.refresh_period_ms),
                        [this] { return stopping_; });
      if (stopping_) return;
    }
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const ProgramId p = static_cast<ProgramId>(i);
      if (!slots_[i]->active.load(std::memory_order_acquire)) continue;
      if (cfg_.repair_on_refresh && engine_.program(p).supports_deletes())
        engine_.repair(p);
      publish(p);
    }
  }
}

void QueryService::refresh(ProgramId p) {
  REMO_CHECK(p < engine_.num_programs());
  publish(p);
}

void QueryService::refresh_all() {
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i]->active.load(std::memory_order_acquire))
      publish(static_cast<ProgramId>(i));
}

void QueryService::publish(ProgramId p) {
  std::lock_guard guard(refresh_mutex_);
  Slot& s = *slots_[p];
  // Watermark before the cut: every event counted here is either inside
  // the cut or ordered before it, so "lag = ingested_now - watermark" never
  // under-reports what a view might be missing.
  const obs::GaugeSample g = engine_.sample_gauges();
  Snapshot snap = engine_.collect_versioned(p);
  auto view = std::make_shared<StateView>(
      std::move(snap), next_version_.fetch_add(1, std::memory_order_relaxed),
      g.events_ingested, now_ns());
  // kRank piggybacks on the degree precompute: positive doubles sort the
  // same as their bit patterns, and the unpublished identity (0) sorts
  // last, so one StateWord partial_sort serves both roles.
  if ((s.role == ViewRole::kDegree || s.role == ViewRole::kRank) &&
      cfg_.top_k > 0) {
    auto& top = view->top_;
    top.assign(view->snap_.begin(), view->snap_.end());
    const std::size_t k = std::min(cfg_.top_k, top.size());
    std::partial_sort(top.begin(), top.begin() + k, top.end(),
                      [](const auto& a, const auto& b) {
                        if (a.second != b.second) return a.second > b.second;
                        return a.first < b.first;
                      });
    top.resize(k);
  }
  {
    std::lock_guard view_guard(s.mu);
    s.view = std::move(view);
  }
  refreshes_.fetch_add(1, std::memory_order_relaxed);
  // The view is readable now: complete every span whose admission
  // watermark it covers (the pre-cut watermark sample above makes
  // "covers" sound — see the SpanRecorder file comment).
  if (cfg_.spans)
    cfg_.spans->on_view_published(g.events_ingested, engine_.obs_now());
}

std::shared_ptr<const StateView> QueryService::pin(ProgramId p) const {
  const Slot& s = *slots_[p];
  REMO_CHECK_MSG(s.active.load(std::memory_order_acquire),
                 "query on a program not registered via serve()");
  std::lock_guard guard(s.mu);
  return s.view;
}

std::shared_ptr<const StateView> QueryService::view(ProgramId p) const {
  return pin(p);
}

StateWord QueryService::state(ProgramId p, VertexId v) const {
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  return pin(p)->at(v);
}

bool QueryService::reachable(ProgramId p, VertexId v) const {
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  const auto view = pin(p);
  return view->at(v) != view->snapshot().identity();
}

StateWord QueryService::component_of(ProgramId p, VertexId v) const {
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  return pin(p)->at(v);
}

bool QueryService::connected(ProgramId p, VertexId u, VertexId v) const {
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  const auto view = pin(p);
  const StateWord lu = view->at(u);
  return lu != view->snapshot().identity() && lu == view->at(v);
}

std::vector<std::pair<VertexId, StateWord>> QueryService::top_k_degree(
    ProgramId p, std::size_t k) const {
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  const auto view = pin(p);
  const auto& top = view->top();
  const std::size_t n = std::min(k, top.size());
  return {top.begin(), top.begin() + n};
}

namespace {
double decode_rank(StateWord s, double damping) noexcept {
  return s == 0 ? 1.0 - damping : std::bit_cast<double>(s);
}
}  // namespace

double QueryService::rank_of(ProgramId p, VertexId v, double damping) const {
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  return decode_rank(pin(p)->at(v), damping);
}

std::vector<std::pair<VertexId, double>> QueryService::top_k_rank(
    ProgramId p, std::size_t k, double damping) const {
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  const auto view = pin(p);
  const auto& top = view->top();
  const std::size_t n = std::min(k, top.size());
  std::vector<std::pair<VertexId, double>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.emplace_back(top[i].first, decode_rank(top[i].second, damping));
  return out;
}

ServeStats QueryService::stats() const {
  ServeStats st;
  st.queries_served = queries_served_.load(std::memory_order_relaxed);
  st.refreshes = refreshes_.load(std::memory_order_relaxed);
  std::uint64_t oldest_wm = ~0ull, oldest_pub = ~0ull;
  for (const auto& slot : slots_) {
    if (!slot->active.load(std::memory_order_acquire)) continue;
    ++st.served_programs;
    std::lock_guard guard(slot->mu);
    oldest_wm = std::min(oldest_wm, slot->view->watermark());
    oldest_pub = std::min(oldest_pub, slot->view->publish_ns());
  }
  if (st.served_programs > 0) {
    const obs::GaugeSample g = engine_.sample_gauges();
    st.read_epoch_lag_events =
        g.events_ingested > oldest_wm ? g.events_ingested - oldest_wm : 0;
    const std::uint64_t now = now_ns();
    st.view_age_ns = now > oldest_pub ? now - oldest_pub : 0;
  }
  return st;
}

}  // namespace remo::serve
