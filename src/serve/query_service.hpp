// QueryService — the front door for concurrent point queries against live
// vertex state (docs/SERVING.md).
//
// The engine's state_of() requires quiescence; a serving workload cannot
// wait for that. The service instead publishes immutable StateViews built
// from Engine::collect_versioned — the Chandy-Lamport-style epoch cut that
// never pauses ingestion — and answers every query from a *pinned* view.
// Pinning a view (a shared_ptr copy) is the read-epoch pin: the answer set
// a reader computes is the program's exact converged state at one cut, so
// readers can never observe a half-applied delete wave or a torn repair —
// those intermediate states are simply never published.
//
// Consistency contract (stated precisely in docs/SERVING.md, verified by
// tests/serve/test_query_service.cpp under TSan):
//  * every answer equals some published versioned snapshot's state;
//  * views carry monotonically increasing versions; staleness is bounded
//    by the refresh period plus one epoch-drain;
//  * queries on one pinned view are mutually consistent (same cut).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"
#include "core/engine.hpp"
#include "core/snapshot.hpp"

namespace remo::obs {
class SpanRecorder;
}

namespace remo::serve {

/// How the service interprets a program's state words — which catalog
/// queries apply and whether a refresh precomputes extras (top-k).
enum class ViewRole : std::uint8_t {
  kGeneric,    ///< state()/reachable() only
  kDistance,   ///< DynamicBfs/DynamicSssp/WeightedSssp: distance + reachability
  kComponent,  ///< DynamicCc: component_of + connected
  kDegree,     ///< DegreeTracker: degree + top_k_degree
  kRank,       ///< PageRankDelta: rank_of + top_k_rank (bit-cast doubles)
};

/// One immutable published cut of one program's state. Readers hold these
/// by shared_ptr; a handle stays valid (and frozen) after newer views are
/// published.
class StateView {
 public:
  StateView() = default;
  StateView(Snapshot snap, std::uint64_t version, std::uint64_t watermark,
            std::uint64_t publish_ns)
      : snap_(std::move(snap)),
        version_(version),
        watermark_(watermark),
        publish_ns_(publish_ns) {}

  /// State of `v` at this cut (program identity when untouched).
  StateWord at(VertexId v) const noexcept { return snap_.at(v); }

  const Snapshot& snapshot() const noexcept { return snap_; }
  /// Service-local publication counter, strictly increasing.
  std::uint64_t version() const noexcept { return version_; }
  /// Engine epoch stamped on the cut (Snapshot::epoch()).
  std::uint16_t epoch() const noexcept { return snap_.epoch(); }
  /// events_ingested gauge sampled just before the cut: everything counted
  /// here is included in (or ordered before) this view.
  std::uint64_t watermark() const noexcept { return watermark_; }
  std::uint64_t publish_ns() const noexcept { return publish_ns_; }

  /// Precomputed top-k (value desc, vertex asc) — filled at publish time
  /// for ViewRole::kDegree, empty otherwise.
  const std::vector<std::pair<VertexId, StateWord>>& top() const noexcept {
    return top_;
  }

 private:
  friend class QueryService;
  Snapshot snap_;
  std::uint64_t version_ = 0;
  std::uint64_t watermark_ = 0;
  std::uint64_t publish_ns_ = 0;
  std::vector<std::pair<VertexId, StateWord>> top_;
};

struct QueryServiceConfig {
  /// Background refresh period; 0 disables the refresher thread (manual
  /// refresh()/refresh_all() only). start() is a no-op at 0.
  std::uint32_t refresh_period_ms = 50;
  /// Run decremental repair for delete-capable programs before each
  /// background refresh, so published views reflect deletes promptly.
  /// repair() pauses streams for the wave — leave off for pure-add
  /// workloads.
  bool repair_on_refresh = false;
  /// Entries precomputed per kDegree view.
  std::size_t top_k = 16;
  /// Write-path span recorder (docs/OBSERVABILITY.md §spans). When set,
  /// the service installs the engine's epoch-drain hook for the recorder
  /// and notifies it after every view publish, closing write-to-readable
  /// spans whose admission watermark the view covers. The recorder must
  /// outlive the service.
  obs::SpanRecorder* spans = nullptr;
};

/// Serving counters (docs/OBSERVABILITY.md §serving). Point-in-time; the
/// lag/age fields are computed against the engine at stats() time.
struct ServeStats {
  std::uint64_t queries_served = 0;   ///< catalog queries answered
  std::uint64_t refreshes = 0;        ///< views published (all programs)
  std::uint64_t served_programs = 0;  ///< active serving slots
  /// Read-epoch lag: engine events_ingested minus the OLDEST active view's
  /// watermark — how many accepted events the most stale published answer
  /// set can be missing.
  std::uint64_t read_epoch_lag_events = 0;
  /// Age of the oldest active view (monotonic-clock ns).
  std::uint64_t view_age_ns = 0;

  Json to_json() const;
};

class QueryService {
 public:
  /// The engine must outlive the service; destroy the service first.
  explicit QueryService(Engine& engine, QueryServiceConfig cfg = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Register program `p` for serving and publish its first view (an
  /// immediate refresh). Call before readers query `p`; registrations are
  /// cheap and idempotent (re-serving updates the role).
  void serve(ProgramId p, ViewRole role = ViewRole::kGeneric);

  /// Start the background refresher (no-op when refresh_period_ms == 0 or
  /// already running).
  void start();
  /// Stop the background refresher; published views stay queryable.
  void stop();

  /// Cut a fresh view of `p` now and publish it. Thread-safe; serialised
  /// against the background refresher.
  void refresh(ProgramId p);
  void refresh_all();

  /// Pin the current view of `p` — the epoch-consistent read handle. All
  /// reads through one handle see one cut.
  std::shared_ptr<const StateView> view(ProgramId p) const;

  // --- Point-query catalog (each pins the current view internally) --------

  /// Program state at the current view's cut (distance for kDistance,
  /// component label for kComponent, degree for kDegree).
  StateWord state(ProgramId p, VertexId v) const;
  /// BFS/SSSP distance; kInfiniteState when unreached at the cut.
  StateWord distance(ProgramId p, VertexId v) const { return state(p, v); }
  /// s-t reachability against the program's instantiated source(s): true
  /// iff `v`'s state differs from the program identity at the cut.
  bool reachable(ProgramId p, VertexId v) const;
  /// Component label at the cut (0 = not yet touched by any edge).
  StateWord component_of(ProgramId p, VertexId v) const;
  /// True iff `u` and `v` carry the same non-identity component label at
  /// the cut. Two untouched vertices are NOT reported connected.
  bool connected(ProgramId p, VertexId u, VertexId v) const;
  /// Top-k vertices by state (degree for kDegree views), value desc then
  /// vertex asc, clipped to the view's precomputed list (cfg.top_k).
  std::vector<std::pair<VertexId, StateWord>> top_k_degree(ProgramId p,
                                                           std::size_t k) const;
  /// Decoded PageRank score at the cut (kRank views). State words are the
  /// bit pattern of the vertex's rank (PageRankDelta's encoding); the
  /// identity word 0 decodes to the base mass 1 - damping — a vertex no
  /// edge has touched yet. `damping` must match the served program's.
  double rank_of(ProgramId p, VertexId v, double damping = 0.85) const;
  /// Top-k vertices by decoded rank, desc then vertex asc. Sound because
  /// ranks are positive doubles, whose bit patterns order identically to
  /// their values — the kDegree precompute is reused verbatim.
  std::vector<std::pair<VertexId, double>> top_k_rank(
      ProgramId p, std::size_t k, double damping = 0.85) const;

  ServeStats stats() const;

 private:
  struct Slot {
    std::atomic<bool> active{false};
    ViewRole role = ViewRole::kGeneric;
    mutable std::mutex mu;                  // guards `view`
    std::shared_ptr<const StateView> view;  // never null once active
  };

  std::shared_ptr<const StateView> pin(ProgramId p) const;
  void publish(ProgramId p);
  void refresher_main();

  Engine& engine_;
  QueryServiceConfig cfg_;
  std::vector<std::unique_ptr<Slot>> slots_;  // one per engine program slot

  std::mutex refresh_mutex_;  // serialises publish() across callers
  std::atomic<std::uint64_t> next_version_{1};
  mutable std::atomic<std::uint64_t> queries_served_{0};
  std::atomic<std::uint64_t> refreshes_{0};

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread refresher_;
};

}  // namespace remo::serve
