// Bridge from the serving plane's stats to the obs layer's gauge stream:
// fill_serving_gauges() copies ServeStats / WriteGateStats / SpanCounts
// into GaugeSample::serving, so a MetricsExporter sampler that wraps
// Engine::sample_gauges() surfaces the whole serving plane in Prometheus
// and JSONL output. Lives in src/serve (not src/obs) so the dependency
// points the right way: obs defines the plain ServingGauges struct, serve
// knows how to fill it.
#pragma once

#include "obs/gauges.hpp"
#include "obs/span.hpp"
#include "serve/query_service.hpp"
#include "serve/write_gate.hpp"

namespace remo::serve {

/// Fill `sample.serving` from whichever serving components exist (any may
/// be nullptr). Each source is a lock-protected stats read — cheap at
/// exporter cadence, not per-event.
inline void fill_serving_gauges(obs::GaugeSample& sample,
                                const QueryService* service,
                                const WriteGate* gate,
                                const obs::SpanRecorder* spans) {
  obs::ServingGauges& out = sample.serving;
  if (!service && !gate && !spans) return;
  out.present = true;
  if (service) {
    const ServeStats st = service->stats();
    out.queries_served = st.queries_served;
    out.refreshes = st.refreshes;
    out.served_programs = st.served_programs;
    out.read_epoch_lag_events = st.read_epoch_lag_events;
    out.view_age_ns = st.view_age_ns;
  }
  if (gate) {
    const WriteGateStats gs = gate->stats();
    out.gate_present = true;
    out.gate_events_submitted = gs.events_submitted;
    out.gate_events_dispatched = gs.events_dispatched;
    out.gate_batches = gs.batches;
    out.gate_waves = gs.waves;
    out.gate_serial_fallback_batches = gs.serial_fallback_batches;
    out.gate_mean_wave_occupancy = gs.mean_wave_occupancy;
  }
  if (spans) {
    const obs::SpanCounts sc = spans->counts();
    out.spans_present = true;
    out.spans_sampled = sc.batches_sampled;
    out.spans_completed = sc.completed;
    out.spans_open = sc.open;
    out.spans_dropped = sc.dropped_open;
    out.freshness_p50_ns = sc.freshness_p50_ns;
    out.freshness_p99_ns = sc.freshness_p99_ns;
  }
}

}  // namespace remo::serve
