#include "serve/write_gate.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/span.hpp"

namespace remo::serve {

Json WriteGateStats::to_json() const {
  Json j = Json::object();
  j["events_submitted"] = events_submitted;
  j["events_dispatched"] = events_dispatched;
  j["batches"] = batches;
  j["waves"] = waves;
  j["parallel_waves"] = parallel_waves;
  j["serial_fallback_batches"] = serial_fallback_batches;
  j["max_wave_size"] = max_wave_size;
  j["mean_wave_occupancy"] = mean_wave_occupancy;
  return j;
}

WriteGate::WriteGate(Engine& engine, WriteGateConfig cfg)
    : engine_(engine), cfg_(cfg) {
  REMO_CHECK(cfg_.batch_limit > 0);
  REMO_CHECK(cfg_.dispatch_threads > 0);
}

WriteGate::~WriteGate() {
  flush();
  {
    std::lock_guard guard(work_mutex_);
    workers_stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void WriteGate::submit(const EdgeEvent& e) {
  std::unique_lock guard(pending_mutex_);
  if (cfg_.spans && pending_.empty()) pending_oldest_ns_ = engine_.obs_now();
  pending_.push_back(e);
  {
    std::lock_guard stats_guard(stats_mutex_);
    ++stats_.events_submitted;
  }
  if (pending_.size() >= cfg_.batch_limit && !pump_active_) pump_locked(guard);
}

void WriteGate::submit_batch(const std::vector<EdgeEvent>& events) {
  std::unique_lock guard(pending_mutex_);
  if (cfg_.spans && pending_.empty() && !events.empty())
    pending_oldest_ns_ = engine_.obs_now();
  pending_.insert(pending_.end(), events.begin(), events.end());
  {
    std::lock_guard stats_guard(stats_mutex_);
    stats_.events_submitted += events.size();
  }
  if (pending_.size() >= cfg_.batch_limit && !pump_active_) pump_locked(guard);
}

std::size_t WriteGate::flush() {
  std::unique_lock guard(pending_mutex_);
  std::size_t dispatched = 0;
  for (;;) {
    if (pump_active_) {
      // Another thread is pumping: wait for it, then re-check — events it
      // admits were submitted before ours, so order is preserved.
      pump_cv_.wait(guard, [this] { return !pump_active_; });
      continue;
    }
    if (pending_.empty()) return dispatched;
    dispatched += pump_locked(guard);
  }
}

std::size_t WriteGate::pump_locked(std::unique_lock<std::mutex>& guard) {
  // Precondition: guard holds pending_mutex_ and no pump is active. A
  // single pump at a time keeps batch admission in submission order.
  pump_active_ = true;
  std::size_t dispatched = 0;
  std::vector<EdgeEvent> local, chunk;
  while (!pending_.empty()) {
    local.clear();
    local.swap(pending_);
    // Every chunk of this swap inherits the swap's oldest-submit stamp —
    // later chunks have waited at least that long, so kQueue never
    // under-reports.
    const std::uint64_t queued_ns = pending_oldest_ns_;
    pending_oldest_ns_ = 0;
    guard.unlock();
    for (std::size_t off = 0; off < local.size(); off += cfg_.batch_limit) {
      const std::size_t n = std::min(cfg_.batch_limit, local.size() - off);
      chunk.assign(local.begin() + static_cast<std::ptrdiff_t>(off),
                   local.begin() + static_cast<std::ptrdiff_t>(off + n));
      dispatch_batch(chunk, queued_ns);
    }
    dispatched += local.size();
    guard.lock();
  }
  pump_active_ = false;
  pump_cv_.notify_all();
  return dispatched;
}

void WriteGate::dispatch_batch(const std::vector<EdgeEvent>& batch,
                               std::uint64_t queued_ns) {
  if (batch.empty()) return;
  obs::SpanRecorder* rec = cfg_.spans;
  const std::uint64_t t_begin = rec ? engine_.obs_now() : 0;
  const obs::TraceId span =
      rec ? rec->begin_batch(queued_ns ? queued_ns : t_begin, t_begin) : 0;

  const WavePlan plan =
      ConflictPartitioner::plan(batch, engine_.config().undirected);
  std::uint64_t t_plan = t_begin;
  if (span) {
    t_plan = engine_.obs_now();
    rec->stage(span, obs::WriteStage::kPartition, t_plan - t_begin);
  }

  if (plan.mean_occupancy() < cfg_.min_occupancy) {
    // Conflict-dominated batch (e.g. a hot pair's history): wave barriers
    // would serialise it anyway, so skip straight to in-order injection.
    for (const EdgeEvent& e : batch) engine_.inject_edge(e);
    if (span) {
      const std::uint64_t t_done = engine_.obs_now();
      rec->stage(span, obs::WriteStage::kInject, t_done - t_plan);
      rec->record_admitted(span, engine_.ingested_watermark(), t_done,
                           batch.size(),
                           static_cast<std::uint32_t>(plan.num_waves()), true);
    }
    std::lock_guard stats_guard(stats_mutex_);
    ++stats_.batches;
    ++stats_.serial_fallback_batches;
    stats_.events_dispatched += batch.size();
    return;
  }

  std::uint64_t inject_ns = 0;  // the pumping thread's own injection time
  std::uint64_t* inj = span ? &inject_ns : nullptr;
  std::uint64_t parallel_waves = 0;
  for (std::size_t w = 0; w < plan.num_waves(); ++w) {
    const std::uint32_t* idx = plan.order.data() + plan.wave_begin[w];
    const std::size_t n = plan.wave_size(w);
    if (n < cfg_.min_wave_parallel || cfg_.dispatch_threads <= 1) {
      inject_slice_timed(batch, idx, n, inj);
    } else {
      dispatch_wave_parallel(batch, idx, n, inj);
      ++parallel_waves;
    }
  }
  if (span) {
    // The wave barrier has completed every worker's injections (their
    // watermark bumps happen-before this read), so the watermark stamped
    // here covers the whole batch. Dispatch = orchestration wall time the
    // pumping thread did NOT spend injecting: fan-out plus barrier waits.
    const std::uint64_t t_done = engine_.obs_now();
    const std::uint64_t wall = t_done - t_plan;
    rec->stage(span, obs::WriteStage::kInject, inject_ns);
    rec->stage(span, obs::WriteStage::kDispatch,
               wall > inject_ns ? wall - inject_ns : 0);
    rec->record_admitted(span, engine_.ingested_watermark(), t_done,
                         batch.size(),
                         static_cast<std::uint32_t>(plan.num_waves()), false);
  }

  std::lock_guard stats_guard(stats_mutex_);
  ++stats_.batches;
  stats_.events_dispatched += batch.size();
  stats_.waves += plan.num_waves();
  stats_.parallel_waves += parallel_waves;
  stats_.max_wave_size = std::max<std::uint64_t>(stats_.max_wave_size,
                                                 plan.max_wave_size());
  occupancy_waves_ += plan.num_waves();
  occupancy_events_ += batch.size();
}

void WriteGate::inject_slice(const std::vector<EdgeEvent>& batch,
                             const std::uint32_t* idx, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) engine_.inject_edge(batch[idx[i]]);
}

void WriteGate::inject_slice_timed(const std::vector<EdgeEvent>& batch,
                                   const std::uint32_t* idx, std::size_t n,
                                   std::uint64_t* inject_ns) {
  if (!inject_ns) {
    inject_slice(batch, idx, n);
    return;
  }
  const std::uint64_t t0 = engine_.obs_now();
  inject_slice(batch, idx, n);
  *inject_ns += engine_.obs_now() - t0;
}

void WriteGate::ensure_workers() {
  if (!workers_.empty()) return;
  const std::size_t helpers = cfg_.dispatch_threads - 1;
  jobs_.resize(helpers);
  workers_.reserve(helpers);
  for (std::size_t w = 0; w < helpers; ++w)
    workers_.emplace_back([this, w] { worker_main(w); });
}

void WriteGate::dispatch_wave_parallel(const std::vector<EdgeEvent>& batch,
                                       const std::uint32_t* idx, std::size_t n,
                                       std::uint64_t* inject_ns) {
  ensure_workers();
  const std::size_t threads = std::min(cfg_.dispatch_threads, n);
  const std::size_t per = (n + threads - 1) / threads;
  {
    std::lock_guard guard(work_mutex_);
    wave_remaining_ = 0;
    for (std::size_t t = 1; t < threads; ++t) {
      const std::size_t begin = per * t;
      if (begin >= n) break;
      jobs_[t - 1] = WaveJob{&batch, idx + begin, std::min(per, n - begin)};
      ++wave_remaining_;
    }
    ++wave_generation_;
  }
  work_cv_.notify_all();
  // This thread takes slice 0.
  inject_slice_timed(batch, idx, std::min(per, n), inject_ns);
  // The inter-wave barrier: same-key events live in different waves, so
  // the next wave must not start until every injection of this one is in
  // its destination mailbox (FIFO per rank ⇒ per-pair order preserved).
  std::unique_lock guard(work_mutex_);
  done_cv_.wait(guard, [this] { return wave_remaining_ == 0; });
}

void WriteGate::worker_main(std::size_t worker) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    WaveJob job;
    {
      std::unique_lock guard(work_mutex_);
      work_cv_.wait(guard, [&] {
        return workers_stop_ ||
               (wave_generation_ != seen_generation && jobs_[worker].n > 0);
      });
      if (workers_stop_) return;
      seen_generation = wave_generation_;
      job = jobs_[worker];
      jobs_[worker].n = 0;
    }
    inject_slice(*job.batch, job.idx, job.n);
    {
      std::lock_guard guard(work_mutex_);
      --wave_remaining_;
    }
    done_cv_.notify_one();
  }
}

WriteGateStats WriteGate::stats() const {
  std::lock_guard guard(stats_mutex_);
  WriteGateStats out = stats_;
  out.mean_wave_occupancy =
      occupancy_waves_ == 0
          ? 0.0
          : static_cast<double>(occupancy_events_) /
                static_cast<double>(occupancy_waves_);
  return out;
}

}  // namespace remo::serve
