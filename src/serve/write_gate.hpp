// WriteGate — conflict-scheduled concurrent update admission
// (docs/SERVING.md, "the write side").
//
// Applications on the serving plane produce updates from many threads. The
// gate batches pending events, partitions each batch into conflict-free
// waves (ConflictPartitioner: distinct canonical-target vertices within a
// wave, per-key order preserved across waves), and injects each wave's
// events into the engine concurrently — Engine::inject_edge is
// multi-thread-safe and the in-flight accounting counts an injection
// before it becomes visible, so quiescence detection and lineage stamping
// stay exact. A barrier between waves plus the engine's FIFO per-rank
// admission queue keeps every unordered pair's history serialised, which
// is the exact precondition of the engine's determinism contract; the
// result is observationally equivalent to serial in-order injection.
//
// Degenerate batches (everything conflicting on one vertex) fall back to
// plain serial injection rather than paying wave overhead — the
// "batch fallback on conflict" path, pinned by tests/serve/test_write_gate.cpp.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "core/engine.hpp"
#include "gen/stream.hpp"
#include "runtime/conflict.hpp"

namespace remo::obs {
class SpanRecorder;
}

namespace remo::serve {

struct WriteGateConfig {
  /// Events pulled per pump; submit() auto-pumps when pending reaches this.
  std::size_t batch_limit = 1024;
  /// Waves narrower than this run inline on the pumping thread (fan-out
  /// overhead would exceed the win). Skewed batches degrade gracefully:
  /// a hub vertex's long conflict chain becomes a tail of narrow waves
  /// that inject inline while the wide head waves still fan out.
  std::size_t min_wave_parallel = 4;
  /// Whole-batch fallback: when the mean events-per-wave drops below this
  /// (conflict-dominated batch — e.g. one pair's history), wave barriers
  /// would serialise admission anyway, so inject the batch serially
  /// in-order instead.
  double min_occupancy = 2.0;
  /// Concurrent injector threads per wave (1 = always serial). The pumping
  /// thread is one of them; dispatch_threads-1 workers are spawned lazily.
  std::size_t dispatch_threads = 2;
  /// Write-path span recorder (docs/OBSERVABILITY.md §spans). When set,
  /// every dispatched batch gets a TraceId and per-stage timing
  /// (queue/partition/dispatch/inject), stamped on the engine's clock. The
  /// recorder must outlive the gate. nullptr = zero instrumentation cost.
  obs::SpanRecorder* spans = nullptr;
};

struct WriteGateStats {
  std::uint64_t events_submitted = 0;
  std::uint64_t events_dispatched = 0;
  std::uint64_t batches = 0;
  std::uint64_t waves = 0;           ///< waves dispatched (incl. inline ones)
  std::uint64_t parallel_waves = 0;  ///< waves fanned out across injectors
  std::uint64_t serial_fallback_batches = 0;
  std::uint64_t max_wave_size = 0;
  /// Mean events per wave over all non-fallback batches — the
  /// conflict-batch occupancy gauge (docs/OBSERVABILITY.md §serving).
  double mean_wave_occupancy = 0.0;

  Json to_json() const;
};

class WriteGate {
 public:
  /// The engine must outlive the gate; the gate reads
  /// engine.config().undirected for conflict keying.
  explicit WriteGate(Engine& engine, WriteGateConfig cfg = {});
  ~WriteGate();  // flushes pending events, then stops the injectors

  WriteGate(const WriteGate&) = delete;
  WriteGate& operator=(const WriteGate&) = delete;

  /// Enqueue one event (any thread). May pump a full batch inline.
  void submit(const EdgeEvent& e);
  void submit_batch(const std::vector<EdgeEvent>& events);

  /// Dispatch everything pending; returns events injected. The events are
  /// admitted (in the engine's mailboxes) on return, not yet converged —
  /// pair with Engine::drain()/await_quiescence() as usual.
  std::size_t flush();

  WriteGateStats stats() const;

 private:
  std::size_t pump_locked(std::unique_lock<std::mutex>& pending_guard);
  void dispatch_batch(const std::vector<EdgeEvent>& batch,
                      std::uint64_t queued_ns);
  void dispatch_wave_parallel(const std::vector<EdgeEvent>& batch,
                              const std::uint32_t* idx, std::size_t n,
                              std::uint64_t* inject_ns);
  void inject_slice(const std::vector<EdgeEvent>& batch,
                    const std::uint32_t* idx, std::size_t n);
  /// inject_slice, accumulating its wall time into *inject_ns when the
  /// dispatched batch is span-sampled (inject_ns nonnull).
  void inject_slice_timed(const std::vector<EdgeEvent>& batch,
                          const std::uint32_t* idx, std::size_t n,
                          std::uint64_t* inject_ns);
  void ensure_workers();
  void worker_main(std::size_t worker);

  Engine& engine_;
  WriteGateConfig cfg_;

  std::mutex pending_mutex_;
  std::vector<EdgeEvent> pending_;
  /// Submit instant of the oldest event in `pending_` (engine clock),
  /// stamped on the empty->nonempty transition — the span kQueue origin.
  /// 0 when pending_ is empty or spans are off.
  std::uint64_t pending_oldest_ns_ = 0;
  bool pump_active_ = false;  // one pump at a time keeps batches in order
  std::condition_variable pump_cv_;

  // Lazily-started persistent injector workers; a wave is split into
  // slices, workers count down `wave_remaining_` and the pumping thread
  // waits on it (the inter-wave barrier).
  struct WaveJob {
    const std::vector<EdgeEvent>* batch = nullptr;
    const std::uint32_t* idx = nullptr;
    std::size_t n = 0;
  };
  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<WaveJob> jobs_;       // one slot per worker
  std::uint64_t wave_generation_ = 0;
  std::size_t wave_remaining_ = 0;
  bool workers_stop_ = false;
  std::vector<std::thread> workers_;

  mutable std::mutex stats_mutex_;
  WriteGateStats stats_;
  std::uint64_t occupancy_waves_ = 0;   // waves counted into the occupancy mean
  std::uint64_t occupancy_events_ = 0;  // events in those waves
};

}  // namespace remo::serve
