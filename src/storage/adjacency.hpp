// Degree-aware adjacency container (the per-vertex half of DegAwareRHH).
//
// Low-degree vertices — the overwhelming majority in scale-free graphs —
// keep their edges in a compact inline array inside the vertex record.
// Once a vertex's degree crosses `promote_threshold`, its edges move into
// an open-addressing Robin Hood table, which keeps O(1) duplicate detection
// and deletion for the heavy hitters. This mirrors Section III-B: "a
// separate, compact data structure for low-degree vertices" combined with
// Robin-Hood-hashed high-degree storage.
#pragma once

#include <cstdint>

#include "common/small_vector.hpp"
#include "common/types.hpp"
#include "storage/robin_hood_map.hpp"

namespace remo {

/// Per-edge properties: the weight, and the cached algorithm state of the
/// neighbour at the far end. The cache corresponds to `nbrs.set(vis_ID,
/// vis_val)` in the paper's Algorithm 3 — visitors deposit their sender's
/// state so callbacks can consult neighbour values without messaging.
/// One cache word is shared by all attached programs; `cache_algo` tags
/// the program that last wrote it, so each program only ever trusts its
/// own deposits (the paper's prototype ran a single algorithm — with
/// several, the last writer per edge wins and the others simply lose the
/// redundancy-filter optimisation on that edge).
struct EdgeProp {
  static constexpr std::uint8_t kNoCacheOwner = 0xFF;

  Weight weight = kDefaultWeight;
  std::uint8_t cache_algo = kNoCacheOwner;
  StateWord nbr_cache = kInfiniteState;

  StateWord cache_for(std::uint8_t algo) const noexcept {
    return cache_algo == algo ? nbr_cache : kInfiniteState;
  }

  void set_cache(std::uint8_t algo, StateWord value) noexcept {
    cache_algo = algo;
    nbr_cache = value;
  }

  void clear_cache() noexcept {
    cache_algo = kNoCacheOwner;
    nbr_cache = kInfiniteState;
  }
};

class TwoTierAdjacency {
 public:
  static constexpr std::uint32_t kDefaultPromoteThreshold = 8;

  TwoTierAdjacency() = default;

  /// Arena-backed edge table (the promoted tier; the inline tier lives in
  /// the vertex record itself, which the store already placed). nullptr:
  /// heap, identical to the default constructor.
  explicit TwoTierAdjacency(Arena* arena) : table_(arena) {}

  std::size_t degree() const noexcept {
    return promoted() ? table_.size() : inline_.size();
  }

  /// Handle-stability epoch for EdgeProp* obtained from find()/insert_get():
  /// unchanged generation ⟹ the pointer still addresses the same edge.
  /// Bumps on inline-tier reallocation, swap_erase, promotion, and every
  /// table-tier resident move (RobinHoodMap::generation()). NOTE this does
  /// not cover the record itself moving inside DegAwareStore's vertex map —
  /// use DegAwareStore::generation() for that outer layer.
  std::uint64_t generation() const noexcept {
    return gen_ + table_.generation();
  }

  bool promoted() const noexcept { return table_.size() != 0 || promoted_flag_; }

  /// Insert an edge to `nbr`, or update its weight when it already exists.
  /// Returns true when the edge is new. Parallel edges collapse into one
  /// (keeping the latest weight); the multigraph event count is tracked by
  /// the engine, not the store.
  bool insert(VertexId nbr, Weight w, std::uint32_t promote_threshold) {
    return insert_get(nbr, w, promote_threshold).second;
  }

  /// insert() that also hands back the edge's property slot, so callers
  /// that deposit into the neighbour cache right after inserting (the
  /// Reverse-Add hot path) skip a second probe. The pointer is valid until
  /// the next mutation of this adjacency — precisely: until generation()
  /// changes. Re-resolve with find() after any interleaved insert/erase.
  /// When the edge already existed, `old_w` (if given) receives the weight
  /// it carried before this call overwrote it — the engine uses this to
  /// distinguish a weight *change* from a fresh insert so non-monotone
  /// programs see on_weight_change instead of a spurious on_add.
  std::pair<EdgeProp*, bool> insert_get(VertexId nbr, Weight w,
                                        std::uint32_t promote_threshold,
                                        Weight* old_w = nullptr) {
    if (!promoted()) {
      for (auto& e : inline_) {
        if (e.nbr == nbr) {
          if (old_w) *old_w = e.prop.weight;
          e.prop.weight = w;
          return {&e.prop, false};
        }
      }
      if (inline_.size() < promote_threshold) {
        // A full inline buffer reallocates on append: existing EdgeProp
        // handles die with it.
        if (inline_.size() == inline_.capacity()) ++gen_;
        inline_.emplace_back(InlineEdge{nbr, EdgeProp{.weight = w}});
        return {&inline_.back().prop, true};
      }
      promote();
    }
    auto [prop, fresh] =
        table_.find_or_emplace(nbr, [&] { return EdgeProp{.weight = w}; });
    if (!fresh) {
      if (old_w) *old_w = prop->weight;
      prop->weight = w;
    }
    return {prop, fresh};
  }

  /// Remove the edge to `nbr`; returns true when it existed. `erased`
  /// (if given) receives a copy of the edge's properties — delete events
  /// name only the endpoints, but weight-dependent programs must retract
  /// the *stored* weight, and memo-delta programs the memoized message
  /// riding in the cache slot (PageRank mass revocation; DESIGN.md §8).
  bool erase(VertexId nbr, EdgeProp* erased = nullptr) {
    if (!promoted()) {
      for (std::size_t i = 0; i < inline_.size(); ++i) {
        if (inline_[i].nbr == nbr) {
          if (erased) *erased = inline_[i].prop;
          inline_.swap_erase(i);  // moves the tail edge: handles die
          ++gen_;
          return true;
        }
      }
      return false;
    }
    if (erased) {
      if (const EdgeProp* p = table_.find(nbr)) *erased = *p;
    }
    return table_.erase(nbr);
  }

  EdgeProp* find(VertexId nbr) noexcept {
    if (!promoted()) {
      for (auto& e : inline_)
        if (e.nbr == nbr) return &e.prop;
      return nullptr;
    }
    return table_.find(nbr);
  }

  const EdgeProp* find(VertexId nbr) const noexcept {
    return const_cast<TwoTierAdjacency*>(this)->find(nbr);
  }

  bool contains(VertexId nbr) const noexcept { return find(nbr) != nullptr; }

  Weight weight_of(VertexId nbr) const noexcept {
    const EdgeProp* p = find(nbr);
    return p ? p->weight : kDefaultWeight;
  }

  /// Visit every neighbour: `fn(VertexId, EdgeProp&)`.
  template <typename Fn>
  void for_each(Fn&& fn) {
    if (!promoted()) {
      for (auto& e : inline_) fn(e.nbr, e.prop);
    } else {
      table_.for_each([&](const VertexId& nbr, EdgeProp& prop) { fn(nbr, prop); });
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    const_cast<TwoTierAdjacency*>(this)->for_each(
        [&](VertexId nbr, EdgeProp& prop) { fn(nbr, static_cast<const EdgeProp&>(prop)); });
  }

  std::size_t memory_bytes() const noexcept {
    std::size_t bytes = sizeof(*this);
    if (promoted())
      bytes += table_.memory_bytes();
    else if (!inline_.is_inline())
      bytes += inline_.capacity() * sizeof(InlineEdge);
    return bytes;
  }

 private:
  struct InlineEdge {
    VertexId nbr;
    EdgeProp prop;
  };

  void promote() {
    ++gen_;  // every inline edge moves into the table
    table_.reserve(inline_.size() * 2);
    for (auto& e : inline_) table_.insert_or_assign(e.nbr, e.prop);
    inline_.clear();
    promoted_flag_ = true;
  }

  SmallVector<InlineEdge, 2> inline_;
  RobinHoodMap<VertexId, EdgeProp> table_;
  // A promoted vertex whose table becomes empty again (all edges deleted)
  // stays promoted; demotion churn is not worth the bookkeeping.
  bool promoted_flag_ = false;
  std::uint64_t gen_ = 0;  // inline-tier half of generation()
};

}  // namespace remo
