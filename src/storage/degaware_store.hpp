// DegAwareStore: the per-rank dynamic graph topology store.
//
// One Robin Hood table maps vertex IDs to vertex records; each record owns
// a degree-aware adjacency (TwoTierAdjacency). A rank stores exactly the
// out-edges of the vertices it owns (Section III-C: "the directed edge will
// be co-located with the source vertex"); for undirected graphs the engine
// materialises the reverse edge at the other owner via a Reverse-Add event.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "storage/adjacency.hpp"
#include "storage/robin_hood_map.hpp"

namespace remo {

struct StoreConfig {
  /// Degree at which a vertex's adjacency is promoted from the compact
  /// inline tier to a Robin Hood edge table.
  std::uint32_t promote_threshold = TwoTierAdjacency::kDefaultPromoteThreshold;
};

class DegAwareStore {
 public:
  struct InsertResult {
    bool new_vertex;  ///< the source vertex record was created by this call
    bool new_edge;    ///< the edge did not previously exist
    /// The source vertex's adjacency and the inserted edge's property slot
    /// — handed back so the ingest hot path does not pay further probes to
    /// re-find what the insert just touched. Valid until the next mutation
    /// of the store.
    TwoTierAdjacency* adj;
    EdgeProp* prop;
  };

  DegAwareStore() = default;
  explicit DegAwareStore(StoreConfig cfg) : cfg_(cfg) {}

  /// Insert directed edge src -> dst with weight w. Creates the source
  /// vertex record on first touch.
  InsertResult insert_edge(VertexId src, VertexId dst, Weight w) {
    auto [record, fresh] = touch(src);
    auto [prop, new_edge] = record->adj.insert_get(dst, w, cfg_.promote_threshold);
    edge_count_ += new_edge ? 1 : 0;
    return {fresh, new_edge, &record->adj, prop};
  }

  /// Remove directed edge src -> dst; returns true when it existed.
  bool erase_edge(VertexId src, VertexId dst) {
    VertexRecord* rec = vertices_.find(src);
    if (!rec) return false;
    const bool removed = rec->adj.erase(dst);
    edge_count_ -= removed ? 1 : 0;
    return removed;
  }

  /// Ensure a vertex record exists (vertex add without edges).
  bool insert_vertex(VertexId v) { return touch(v).second; }

  bool has_vertex(VertexId v) const noexcept { return vertices_.contains(v); }

  bool has_edge(VertexId src, VertexId dst) const noexcept {
    const VertexRecord* rec = vertices_.find(src);
    return rec && rec->adj.contains(dst);
  }

  std::size_t degree(VertexId v) const noexcept {
    const VertexRecord* rec = vertices_.find(v);
    return rec ? rec->adj.degree() : 0;
  }

  Weight edge_weight(VertexId src, VertexId dst) const noexcept {
    const VertexRecord* rec = vertices_.find(src);
    return rec ? rec->adj.weight_of(dst) : kDefaultWeight;
  }

  /// Mutable adjacency of `v`, or nullptr when the vertex is unknown.
  TwoTierAdjacency* adjacency(VertexId v) noexcept {
    VertexRecord* rec = vertices_.find(v);
    return rec ? &rec->adj : nullptr;
  }

  const TwoTierAdjacency* adjacency(VertexId v) const noexcept {
    const VertexRecord* rec = vertices_.find(v);
    return rec ? &rec->adj : nullptr;
  }

  std::size_t vertex_count() const noexcept { return vertices_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }

  /// Visit every owned vertex: `fn(VertexId, TwoTierAdjacency&)`.
  template <typename Fn>
  void for_each_vertex(Fn&& fn) {
    vertices_.for_each([&](const VertexId& v, VertexRecord& rec) { fn(v, rec.adj); });
  }

  template <typename Fn>
  void for_each_vertex(Fn&& fn) const {
    vertices_.for_each(
        [&](const VertexId& v, const VertexRecord& rec) { fn(v, rec.adj); });
  }

  std::size_t memory_bytes() const noexcept {
    std::size_t bytes = vertices_.memory_bytes();
    vertices_.for_each([&](const VertexId&, const VertexRecord& rec) {
      bytes += rec.adj.memory_bytes();
    });
    return bytes;
  }

  const StoreConfig& config() const noexcept { return cfg_; }

 private:
  struct VertexRecord {
    TwoTierAdjacency adj;
  };

  std::pair<VertexRecord*, bool> touch(VertexId v) {
    return vertices_.find_or_emplace(v, [] { return VertexRecord{}; });
  }

  StoreConfig cfg_{};
  RobinHoodMap<VertexId, VertexRecord> vertices_;
  std::size_t edge_count_ = 0;
};

}  // namespace remo
