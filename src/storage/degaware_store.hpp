// DegAwareStore: the per-rank dynamic graph topology store.
//
// One Robin Hood table maps vertex IDs to vertex records; each record owns
// a degree-aware adjacency (TwoTierAdjacency). A rank stores exactly the
// out-edges of the vertices it owns (Section III-C: "the directed edge will
// be co-located with the source vertex"); for undirected graphs the engine
// materialises the reverse edge at the other owner via a Reverse-Add event.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "storage/adjacency.hpp"
#include "storage/robin_hood_map.hpp"

namespace remo {

struct StoreConfig {
  /// Degree at which a vertex's adjacency is promoted from the compact
  /// inline tier to a Robin Hood edge table.
  std::uint32_t promote_threshold = TwoTierAdjacency::kDefaultPromoteThreshold;
};

class DegAwareStore {
 public:
  struct InsertResult {
    bool new_vertex;  ///< the source vertex record was created by this call
    bool new_edge;    ///< the edge did not previously exist
    /// When `new_edge` is false, the weight the edge carried before this
    /// insert overwrote it (last-weight-wins). Re-adds with a different
    /// weight are weight *changes* — the engine routes them to
    /// VertexProgram::on_weight_change rather than on_add, so a mutation
    /// is never split into a delete+add racing the repair wave.
    Weight old_weight = kDefaultWeight;
    /// The source vertex's adjacency and the inserted edge's property slot
    /// — handed back so the ingest hot path does not pay further probes to
    /// re-find what the insert just touched.
    ///
    /// Lifetime (the handle-invalidation contract, audited by the debug
    /// asserts in engine_loop.cpp): BOTH pointers die the moment any other
    /// vertex record is touched — `adj` points into the vertex map, which
    /// can rehash or Robin-Hood-displace records on any insert, and `prop`
    /// points into that (movable) record's inline buffer or edge table.
    /// They are guaranteed valid only while generation() is unchanged;
    /// after interleaved store mutations, re-resolve via adjacency()/find()
    /// or assert no growth happened.
    TwoTierAdjacency* adj;
    EdgeProp* prop;
  };

  DegAwareStore() = default;

  /// `arena` (optional) backs the vertex map and every promoted edge table
  /// so the whole shard lives on the owning rank's NUMA node; it must
  /// outlive the store. nullptr keeps today's heap behaviour.
  explicit DegAwareStore(StoreConfig cfg, Arena* arena = nullptr)
      : cfg_(cfg), arena_(arena), vertices_(arena) {}

  /// Insert directed edge src -> dst with weight w. Creates the source
  /// vertex record on first touch.
  InsertResult insert_edge(VertexId src, VertexId dst, Weight w) {
    auto [record, fresh] = touch(src);
    Weight old_w = kDefaultWeight;
    auto [prop, new_edge] =
        record->adj.insert_get(dst, w, cfg_.promote_threshold, &old_w);
    edge_count_ += new_edge ? 1 : 0;
    return {fresh, new_edge, old_w, &record->adj, prop};
  }

  /// Remove directed edge src -> dst; returns true when it existed.
  /// `erased` (if given) receives the removed edge's properties — delete
  /// events carry only endpoints, but programs must retract the weight and
  /// memoized state the store actually held.
  bool erase_edge(VertexId src, VertexId dst, EdgeProp* erased = nullptr) {
    VertexRecord* rec = vertices_.find(src);
    if (!rec) return false;
    const bool removed = rec->adj.erase(dst, erased);
    edge_count_ -= removed ? 1 : 0;
    return removed;
  }

  /// Ensure a vertex record exists (vertex add without edges).
  bool insert_vertex(VertexId v) { return touch(v).second; }

  bool has_vertex(VertexId v) const noexcept { return vertices_.contains(v); }

  bool has_edge(VertexId src, VertexId dst) const noexcept {
    const VertexRecord* rec = vertices_.find(src);
    return rec && rec->adj.contains(dst);
  }

  std::size_t degree(VertexId v) const noexcept {
    const VertexRecord* rec = vertices_.find(v);
    return rec ? rec->adj.degree() : 0;
  }

  Weight edge_weight(VertexId src, VertexId dst) const noexcept {
    const VertexRecord* rec = vertices_.find(src);
    return rec ? rec->adj.weight_of(dst) : kDefaultWeight;
  }

  /// Mutable adjacency of `v`, or nullptr when the vertex is unknown.
  TwoTierAdjacency* adjacency(VertexId v) noexcept {
    VertexRecord* rec = vertices_.find(v);
    return rec ? &rec->adj : nullptr;
  }

  const TwoTierAdjacency* adjacency(VertexId v) const noexcept {
    const VertexRecord* rec = vertices_.find(v);
    return rec ? &rec->adj : nullptr;
  }

  std::size_t vertex_count() const noexcept { return vertices_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }

  /// Handle-stability epoch of the vertex map: while unchanged, every
  /// TwoTierAdjacency* (and the records they live in) handed out by
  /// insert_edge()/adjacency() is still addressable. Bumps whenever vertex
  /// records move (map growth, Robin Hood displacement, erase shift). Note
  /// EdgeProp* handles additionally require the owning adjacency's own
  /// generation() to be unchanged.
  std::uint64_t generation() const noexcept { return vertices_.generation(); }

  /// Visit every owned vertex: `fn(VertexId, TwoTierAdjacency&)`.
  template <typename Fn>
  void for_each_vertex(Fn&& fn) {
    vertices_.for_each([&](const VertexId& v, VertexRecord& rec) { fn(v, rec.adj); });
  }

  template <typename Fn>
  void for_each_vertex(Fn&& fn) const {
    vertices_.for_each(
        [&](const VertexId& v, const VertexRecord& rec) { fn(v, rec.adj); });
  }

  std::size_t memory_bytes() const noexcept {
    std::size_t bytes = vertices_.memory_bytes();
    vertices_.for_each([&](const VertexId&, const VertexRecord& rec) {
      bytes += rec.adj.memory_bytes();
    });
    return bytes;
  }

  const StoreConfig& config() const noexcept { return cfg_; }

 private:
  struct VertexRecord {
    TwoTierAdjacency adj;
  };

  std::pair<VertexRecord*, bool> touch(VertexId v) {
    // Fresh records inherit the store's arena so their promoted edge
    // tables land on the same node as the vertex map.
    return vertices_.find_or_emplace(
        v, [this] { return VertexRecord{TwoTierAdjacency(arena_)}; });
  }

  StoreConfig cfg_{};
  Arena* arena_ = nullptr;
  RobinHoodMap<VertexId, VertexRecord> vertices_;
  std::size_t edge_count_ = 0;
};

}  // namespace remo
