// Open-addressing hash map with Robin Hood hashing and backward-shift
// deletion — the building block of the DegAwareRHH-style dynamic graph
// store (Section III-B, [18] Iwabuchi et al., GABB'16).
//
// Design notes:
//  * power-of-two capacity, structure-of-arrays layout: one byte of probe
//    metadata per slot (0 = empty, k = probe distance k-1), keys and values
//    in separate arrays. Lookups touch the metadata array almost
//    exclusively — 64 slots of metadata per cache line keeps the probe walk
//    L2-resident even for tables whose keys have long spilled to memory,
//    which is what gives the structure its locality advantage over
//    node-based maps for high-degree adjacency sets. (An interleaved
//    {key, meta} slot layout was measured and rejected: it costs a full
//    cache line per probe step and regressed lookups ~20% on 64k-entry
//    tables.)
//  * Robin Hood insertion: a probing element displaces a resident whose
//    probe distance is shorter, keeping the variance of probe lengths small.
//  * backward-shift deletion: no tombstones, so long-lived dynamic graphs
//    do not degrade as edges churn.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/hash.hpp"
#include "runtime/memory.hpp"

namespace remo {

template <typename Key, typename Value, typename Hash = SplitMixHash>
class RobinHoodMap {
 public:
  static constexpr std::size_t kMinCapacity = 8;
  static constexpr double kMaxLoad = 0.875;

  RobinHoodMap() = default;

  explicit RobinHoodMap(std::size_t expected) { reserve(expected); }

  /// Back the three slot arrays with `arena` (nullptr: plain heap, the
  /// default-constructed behaviour). The arena must outlive the map.
  explicit RobinHoodMap(Arena* arena)
      : meta_(ArenaAllocator<std::uint8_t>(arena)),
        keys_(ArenaAllocator<Key>(arena)),
        values_(ArenaAllocator<Value>(arena)) {}

  /// The backing arena, or nullptr for heap-backed maps.
  Arena* arena() const noexcept { return meta_.get_allocator().arena(); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return meta_.size(); }

  /// Handle-stability epoch. A `Value*` obtained from find()/
  /// find_or_emplace()/get_or_insert() stays valid exactly as long as
  /// generation() is unchanged: the counter bumps whenever resident
  /// entries can move — a rehash (growth), a Robin Hood displacement
  /// during insert, or a backward-shift erase. Callers holding a handle
  /// across interleaved mutations must either re-resolve the key or
  /// assert the generation did not change (the DegAwareStore ingest hot
  /// path does the latter, see engine_loop.cpp).
  std::uint64_t generation() const noexcept { return generation_; }

  void clear() {
    meta_.assign(meta_.size(), 0);
    size_ = 0;
    ++generation_;  // every outstanding handle is dead
  }

  void reserve(std::size_t expected) {
    std::size_t want = kMinCapacity;
    while (static_cast<double>(expected) > kMaxLoad * static_cast<double>(want)) want <<= 1;
    if (want > meta_.size()) rehash(want);
  }

  /// Insert or overwrite. Returns true when the key was newly inserted.
  bool insert_or_assign(const Key& key, Value value) {
    auto [slot, fresh] = find_or_emplace(key, [&] { return std::move(value); });
    if (!fresh) *slot = std::move(value);  // make() untouched `value` on a hit
    return fresh;
  }

  /// operator[]-style access: default-constructs a missing entry.
  Value& get_or_insert(const Key& key) {
    return *find_or_emplace(key, [] { return Value{}; }).first;
  }

  /// Single-probe upsert: locate `key`, or insert `make()` at the slot the
  /// failed lookup already identified — the probe that proves absence is
  /// the same probe that finds the Robin Hood insertion point, so the
  /// edge-ingest hot path pays one metadata walk instead of the two a
  /// find-then-insert pair costs. `make` is invoked only on a miss.
  /// Returns {&value, newly_inserted}.
  template <typename Make>
  std::pair<Value*, bool> find_or_emplace(const Key& key, Make&& make) {
    if (!meta_.empty() &&
        static_cast<double>(size_ + 1) <=
            kMaxLoad * static_cast<double>(meta_.size())) {
      const std::size_t mask = meta_.size() - 1;
      std::size_t idx = Hash{}(static_cast<std::uint64_t>(key)) & mask;
      std::uint8_t dist = 1;
      while (dist != 255) {
        const std::uint8_t m = meta_[idx];
        if (m == dist && keys_[idx] == key) return {&values_[idx], false};
        if (m == 0) {
          keys_[idx] = key;
          values_[idx] = make();
          meta_[idx] = dist;
          ++size_;
          return {&values_[idx], true};
        }
        if (m < dist) {
          // Robin Hood early exit proves absence: claim this slot and
          // push the displaced (shallower) resident onward. Residents
          // move: outstanding handles die.
          ++generation_;
          Key moved_key = std::move(keys_[idx]);
          Value moved_val = std::move(values_[idx]);
          std::uint8_t moved_dist = m;
          keys_[idx] = key;
          values_[idx] = make();
          meta_[idx] = dist;
          ++size_;
          std::size_t j = (idx + 1) & mask;
          ++moved_dist;
          while (true) {
            if (meta_[j] == 0) {
              keys_[j] = std::move(moved_key);
              values_[j] = std::move(moved_val);
              meta_[j] = moved_dist;
              return {&values_[idx], true};
            }
            if (meta_[j] < moved_dist) {
              std::swap(keys_[j], moved_key);
              std::swap(values_[j], moved_val);
              std::swap(meta_[j], moved_dist);
            }
            j = (j + 1) & mask;
            ++moved_dist;
            if (moved_dist == 255) {
              // Pathological clustering: grow (rehash recounts size_ from
              // the table, so the in-flight displaced element is simply
              // added after), then re-locate our entry — the rehash moved
              // it.
              rehash(meta_.size() * 2);
              insert_new(std::move(moved_key), std::move(moved_val));
              Value* v = find(key);
              REMO_ASSERT(v != nullptr);
              return {v, true};
            }
          }
        }
        idx = (idx + 1) & mask;
        ++dist;
      }
    }
    // Slow path: empty table, load-factor growth due, or a pathological
    // probe sequence. Two probes here, amortised away by the resize.
    if (Value* v = find(key)) return {v, false};
    insert_new(key, make());
    Value* v = find(key);
    REMO_ASSERT(v != nullptr);
    return {v, true};
  }

  Value* find(const Key& key) noexcept {
    return const_cast<Value*>(static_cast<const RobinHoodMap*>(this)->find(key));
  }

  const Value* find(const Key& key) const noexcept {
    if (meta_.empty()) return nullptr;
    const std::size_t mask = meta_.size() - 1;
    std::size_t idx = Hash{}(static_cast<std::uint64_t>(key)) & mask;
    std::uint8_t dist = 1;
    while (true) {
      const std::uint8_t m = meta_[idx];
      if (m == 0 || m < dist) return nullptr;  // Robin Hood early exit
      if (m == dist && keys_[idx] == key) return &values_[idx];
      idx = (idx + 1) & mask;
      ++dist;
      // Probe distances are capped by rehashing before they overflow.
      REMO_ASSERT(dist != 0);
    }
  }

  bool contains(const Key& key) const noexcept { return find(key) != nullptr; }

  /// Erase by key. Returns true when an entry was removed.
  bool erase(const Key& key) {
    if (meta_.empty()) return false;
    const std::size_t mask = meta_.size() - 1;
    std::size_t idx = Hash{}(static_cast<std::uint64_t>(key)) & mask;
    std::uint8_t dist = 1;
    while (true) {
      const std::uint8_t m = meta_[idx];
      if (m == 0 || m < dist) return false;
      if (m == dist && keys_[idx] == key) break;
      idx = (idx + 1) & mask;
      ++dist;
    }
    // Backward-shift: slide the following cluster segment one slot left
    // until an empty slot or a distance-1 (home) element is reached.
    // Residents move: outstanding handles die.
    ++generation_;
    std::size_t hole = idx;
    std::size_t next = (hole + 1) & mask;
    while (meta_[next] > 1) {
      keys_[hole] = std::move(keys_[next]);
      values_[hole] = std::move(values_[next]);
      meta_[hole] = static_cast<std::uint8_t>(meta_[next] - 1);
      hole = next;
      next = (next + 1) & mask;
    }
    meta_[hole] = 0;
    --size_;
    return true;
  }

  /// Visit every (key, value) pair. `fn(const Key&, Value&)`.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < meta_.size(); ++i)
      if (meta_[i] != 0) fn(keys_[i], values_[i]);
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < meta_.size(); ++i)
      if (meta_[i] != 0) fn(keys_[i], values_[i]);
  }

  /// Mean probe distance (1 = direct hit); diagnostic for the micro bench.
  double mean_probe_distance() const noexcept {
    if (size_ == 0) return 0.0;
    std::uint64_t total = 0;
    for (auto m : meta_)
      if (m != 0) total += m;
    return static_cast<double>(total) / static_cast<double>(size_);
  }

  /// Approximate resident bytes (for Table I style accounting).
  std::size_t memory_bytes() const noexcept {
    return meta_.size() * (sizeof(std::uint8_t) + sizeof(Key) + sizeof(Value));
  }

 private:
  void insert_new(Key k, Value v) {
    if (meta_.empty() ||
        static_cast<double>(size_ + 1) > kMaxLoad * static_cast<double>(meta_.size()))
      rehash(meta_.empty() ? kMinCapacity : meta_.size() * 2);

    const std::size_t mask = meta_.size() - 1;
    std::size_t idx = Hash{}(static_cast<std::uint64_t>(k)) & mask;
    std::uint8_t dist = 1;
    while (true) {
      if (meta_[idx] == 0) {
        keys_[idx] = std::move(k);
        values_[idx] = std::move(v);
        meta_[idx] = dist;
        ++size_;
        return;
      }
      if (meta_[idx] < dist) {
        // Rob the rich: displace the shallower resident (handles die).
        ++generation_;
        std::swap(keys_[idx], k);
        std::swap(values_[idx], v);
        std::swap(meta_[idx], dist);
      }
      idx = (idx + 1) & mask;
      ++dist;
      if (dist == 255) {  // pathological clustering: grow and restart
        rehash(meta_.size() * 2);
        insert_new(std::move(k), std::move(v));
        return;
      }
    }
  }

  void rehash(std::size_t new_cap) {
    ++generation_;  // every resident moves
    // Moved-from vectors keep (a copy of) their allocator, so the assign/
    // resize below re-acquires from the same arena the old arrays used.
    auto old_meta = std::move(meta_);
    auto old_keys = std::move(keys_);
    auto old_values = std::move(values_);
    meta_.assign(new_cap, 0);
    keys_.resize(new_cap);
    values_.resize(new_cap);
    size_ = 0;
    for (std::size_t i = 0; i < old_meta.size(); ++i)
      if (old_meta[i] != 0) insert_new(std::move(old_keys[i]), std::move(old_values[i]));
  }

  std::vector<std::uint8_t, ArenaAllocator<std::uint8_t>> meta_;
  std::vector<Key, ArenaAllocator<Key>> keys_;
  mutable std::vector<Value, ArenaAllocator<Value>> values_;
  std::size_t size_ = 0;
  std::uint64_t generation_ = 0;  // handle-stability epoch (see generation())
};

}  // namespace remo
