// StdStore: a node-based std::unordered_map adjacency store with the same
// interface as DegAwareStore. This is the "baseline implementation" the
// paper's Section III-B says DegAwareRHH significantly improves over; it
// exists purely for the storage ablation (bench/abl_storage).
#pragma once

#include <unordered_map>

#include "common/types.hpp"
#include "storage/adjacency.hpp"

namespace remo {

class StdStore {
 public:
  struct InsertResult {
    bool new_vertex;
    bool new_edge;
  };

  InsertResult insert_edge(VertexId src, VertexId dst, Weight w) {
    auto [it, fresh_vertex] = vertices_.try_emplace(src);
    auto [eit, fresh_edge] = it->second.try_emplace(dst, EdgeProp{.weight = w});
    if (!fresh_edge) eit->second.weight = w;
    edge_count_ += fresh_edge ? 1 : 0;
    return {fresh_vertex, fresh_edge};
  }

  bool erase_edge(VertexId src, VertexId dst) {
    auto it = vertices_.find(src);
    if (it == vertices_.end()) return false;
    const bool removed = it->second.erase(dst) != 0;
    edge_count_ -= removed ? 1 : 0;
    return removed;
  }

  bool insert_vertex(VertexId v) { return vertices_.try_emplace(v).second; }

  bool has_vertex(VertexId v) const { return vertices_.count(v) != 0; }

  bool has_edge(VertexId src, VertexId dst) const {
    auto it = vertices_.find(src);
    return it != vertices_.end() && it->second.count(dst) != 0;
  }

  std::size_t degree(VertexId v) const {
    auto it = vertices_.find(v);
    return it == vertices_.end() ? 0 : it->second.size();
  }

  std::size_t vertex_count() const noexcept { return vertices_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }

  template <typename Fn>
  void for_each_neighbour(VertexId v, Fn&& fn) {
    auto it = vertices_.find(v);
    if (it == vertices_.end()) return;
    for (auto& [nbr, prop] : it->second) fn(nbr, prop);
  }

 private:
  std::unordered_map<VertexId, std::unordered_map<VertexId, EdgeProp>> vertices_;
  std::size_t edge_count_ = 0;
};

}  // namespace remo
