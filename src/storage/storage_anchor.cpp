// Anchor translation unit: proves every storage header is self-contained.
#include "storage/adjacency.hpp"
#include "storage/degaware_store.hpp"
#include "storage/robin_hood_map.hpp"
#include "storage/std_store.hpp"
