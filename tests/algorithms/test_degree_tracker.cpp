// Degree tracking (the Section II-A example) including delete events and
// threshold triggers.
#include <gtest/gtest.h>

#include "../support.hpp"

namespace remo::test {
namespace {

TEST(DegreeTracker, MatchesStoreDegreesAfterIngest) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 100, .num_edges = 400, .seed = 4});
  Engine engine(EngineConfig{.num_ranks = 3});
  auto [id, deg] = engine.attach_make<DegreeTracker>();
  engine.ingest(make_streams(edges, 3));

  const CsrGraph g = undirected_csr(edges);
  for (CsrGraph::Dense v = 0; v < g.num_vertices(); ++v) {
    const VertexId ext = g.external_of(v);
    const auto owner = engine.partitioner().owner(ext);
    EXPECT_EQ(engine.state_of(id, ext), engine.store(owner).degree(ext));
  }
}

TEST(DegreeTracker, CountsDistinctNeighboursNotEvents) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, deg] = engine.attach_make<DegreeTracker>();
  engine.inject_edge({1, 2, 1, EdgeOp::kAdd});
  engine.inject_edge({1, 2, 1, EdgeOp::kAdd});  // duplicate
  engine.inject_edge({1, 3, 1, EdgeOp::kAdd});
  engine.drain();
  EXPECT_EQ(engine.state_of(id, 1), 2u);
}

TEST(DegreeTracker, DeleteDecreasesDegree) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, deg] = engine.attach_make<DegreeTracker>();
  engine.inject_edge({1, 2, 1, EdgeOp::kAdd});
  engine.inject_edge({1, 3, 1, EdgeOp::kAdd});
  engine.drain();
  EXPECT_EQ(engine.state_of(id, 1), 2u);
  engine.inject_edge({1, 2, 1, EdgeOp::kDelete});
  engine.drain();
  EXPECT_EQ(engine.state_of(id, 1), 1u);
  EXPECT_EQ(engine.state_of(id, 2), 0u);
}

TEST(DegreeTracker, ThresholdTriggerFiresOnce) {
  // "enabling a user-defined callback if the degree exceeds a certain
  // threshold" (Section II-A).
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, deg] = engine.attach_make<DegreeTracker>();

  std::atomic<int> fires{0};
  std::atomic<StateWord> seen{0};
  engine.when(id, 5, [](StateWord d) { return d >= 3; },
              [&](VertexId, StateWord d) {
                fires.fetch_add(1);
                seen.store(d);
              });

  for (VertexId nbr = 100; nbr < 110; ++nbr) {
    engine.inject_edge({5, nbr, 1, EdgeOp::kAdd});
    engine.drain();
  }
  EXPECT_EQ(fires.load(), 1);
  EXPECT_EQ(seen.load(), 3u);
}

TEST(DegreeTracker, WhenAnyFindsHubs) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, deg] = engine.attach_make<DegreeTracker>();

  std::mutex mu;
  std::vector<VertexId> hubs;
  engine.when_any(id, [](StateWord d) { return d >= 4; },
                  [&](VertexId v, StateWord) {
                    std::lock_guard g(mu);
                    hubs.push_back(v);
                  });

  // Star around vertex 9 plus a sparse ring.
  EdgeList edges;
  for (VertexId v = 20; v < 28; ++v) edges.push_back({9, v, 1});
  for (VertexId v = 40; v < 44; ++v) edges.push_back({v, v + 1, 1});
  engine.ingest(make_streams(edges, 2));

  std::lock_guard g(mu);
  ASSERT_EQ(hubs.size(), 1u);
  EXPECT_EQ(hubs[0], 9u);
}

}  // namespace
}  // namespace remo::test
