// Dynamic BFS vs the static oracle (DESIGN.md invariant 1) across rank
// counts, stream splits, init timing, and graph families.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "../support.hpp"

namespace remo::test {
namespace {

EdgeList er_graph(std::uint64_t n, std::uint64_t m, std::uint64_t seed) {
  return generate_erdos_renyi({.num_vertices = n, .num_edges = m, .seed = seed});
}

TEST(DynamicBfs, SmallGraphExactLevels) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(0);
  engine.inject_init(bfs_id, 0);
  const StreamSet streams = make_streams(small_graph(), 2);
  engine.ingest(streams);

  EXPECT_EQ(engine.state_of(bfs_id, 0), 1u);
  EXPECT_EQ(engine.state_of(bfs_id, 1), 2u);
  EXPECT_EQ(engine.state_of(bfs_id, 2), 3u);
  EXPECT_EQ(engine.state_of(bfs_id, 3), 4u);
  EXPECT_EQ(engine.state_of(bfs_id, 4), 4u);
  EXPECT_EQ(engine.state_of(bfs_id, 5), 4u);
  // Disconnected pair stays unreached.
  EXPECT_EQ(engine.state_of(bfs_id, 6), kInfiniteState);
  EXPECT_EQ(engine.state_of(bfs_id, 7), kInfiniteState);
}

// Property sweep: ranks x streams x seed. Dynamic BFS maintained during
// shuffled concurrent ingestion must equal static BFS on the final graph.
class BfsOracleSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(BfsOracleSweep, MatchesStaticOracle) {
  const auto [ranks, streams, seed] = GetParam();
  const EdgeList edges = er_graph(256, 1024, seed);
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  Engine engine(EngineConfig{.num_ranks = static_cast<RankId>(ranks)});
  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(source);
  engine.inject_init(bfs_id, source);
  engine.ingest(make_streams(edges, streams, StreamOptions{.seed = seed}));

  const auto oracle = static_bfs(g, g.dense_of(source));
  expect_matches_oracle(engine, bfs_id, g, oracle);
}

INSTANTIATE_TEST_SUITE_P(
    RanksStreamsSeeds, BfsOracleSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4), ::testing::Values(1, 2, 4),
                       ::testing::Values(7u, 99u)));

TEST(DynamicBfs, InitAfterIngestionAlsoConverges) {
  const EdgeList edges = er_graph(200, 800, 3);
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  Engine engine(EngineConfig{.num_ranks = 3});
  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(source);
  engine.ingest(make_streams(edges, 3));
  engine.inject_init(bfs_id, source);  // instantiate on the finished graph
  engine.drain();

  expect_matches_oracle(engine, bfs_id, g, static_bfs(g, g.dense_of(source)));
}

TEST(DynamicBfs, IncrementalPrefixesStayCorrect) {
  // Ingest in chunks; after each chunk, the maintained state must match
  // the oracle on the graph-so-far ("query graph state in-between").
  const EdgeList edges = er_graph(128, 512, 11);
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(edges[0].src);
  engine.inject_init(bfs_id, edges[0].src);

  const std::size_t kChunk = 128;
  for (std::size_t off = 0; off < edges.size(); off += kChunk) {
    EdgeList chunk(edges.begin() + off,
                   edges.begin() + std::min(edges.size(), off + kChunk));
    const StreamSet streams = make_streams(chunk, 2, StreamOptions{.shuffle = false});
    engine.ingest(streams);

    EdgeList prefix(edges.begin(),
                    edges.begin() + std::min(edges.size(), off + kChunk));
    const CsrGraph g = undirected_csr(prefix);
    expect_matches_oracle(engine, bfs_id, g,
                          static_bfs(g, g.dense_of(edges[0].src)));
  }
}

TEST(DynamicBfs, DirectedModeFollowsArcDirection) {
  // 0 -> 1 -> 2, and 3 -> 2: vertex 3 must stay unreached from 0.
  const EdgeList edges = {{0, 1, 1}, {1, 2, 1}, {3, 2, 1}};
  EngineConfig cfg;
  cfg.num_ranks = 2;
  cfg.undirected = false;
  Engine engine(cfg);
  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(0);
  engine.inject_init(bfs_id, 0);
  engine.ingest(make_streams(edges, 2));
  EXPECT_EQ(engine.state_of(bfs_id, 0), 1u);
  EXPECT_EQ(engine.state_of(bfs_id, 1), 2u);
  EXPECT_EQ(engine.state_of(bfs_id, 2), 3u);
  EXPECT_EQ(engine.state_of(bfs_id, 3), kInfiniteState);
}

TEST(DynamicBfs, ResetProgramAllowsRerunFromNewSource) {
  const EdgeList edges = er_graph(100, 400, 21);
  const CsrGraph g = undirected_csr(edges);
  Engine engine(EngineConfig{.num_ranks = 2});
  const VertexId s1 = vertex_in_largest_cc(g);
  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(s1);
  engine.inject_init(bfs_id, s1);
  engine.ingest(make_streams(edges, 2));
  expect_matches_oracle(engine, bfs_id, g, static_bfs(g, g.dense_of(s1)));

  // Rerun from another vertex on the same dynamic topology.
  const VertexId s2 = g.external_of((g.dense_of(s1) + 1) % g.num_vertices());
  engine.reset_program(bfs_id);
  engine.inject_init(bfs_id, s2);
  engine.drain();
  expect_matches_oracle(engine, bfs_id, g, static_bfs(g, g.dense_of(s2)));
}

}  // namespace
}  // namespace remo::test
