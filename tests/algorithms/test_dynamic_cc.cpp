// Dynamic Connected Components vs the union-find oracle.
#include <gtest/gtest.h>

#include <tuple>

#include "../support.hpp"

namespace remo::test {
namespace {

TEST(DynamicCc, TwoComponentsGetDistinctDominatingLabels) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, cc] = engine.attach_make<DynamicCc>();
  engine.ingest(make_streams(small_graph(), 2));

  // Component {0..5}: everyone shares one label.
  const StateWord big = engine.state_of(id, 0);
  for (VertexId v = 1; v <= 5; ++v) EXPECT_EQ(engine.state_of(id, v), big);
  // Component {6,7}: a different shared label.
  const StateWord pair = engine.state_of(id, 6);
  EXPECT_EQ(engine.state_of(id, 7), pair);
  EXPECT_NE(big, pair);
  // The label is the component's maximum initial label.
  StateWord expect_big = 0;
  for (VertexId v = 0; v <= 5; ++v)
    expect_big = std::max(expect_big, cc_initial_label(v));
  EXPECT_EQ(big, expect_big);
}

class CcOracleSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(CcOracleSweep, MatchesUnionFind) {
  const auto [ranks, seed] = GetParam();
  // Sparse ER: leaves many components, which stresses label merging.
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 400, .num_edges = 500, .seed = seed});
  const CsrGraph g = undirected_csr(edges);

  Engine engine(EngineConfig{.num_ranks = static_cast<RankId>(ranks)});
  auto [id, cc] = engine.attach_make<DynamicCc>();
  engine.ingest(make_streams(edges, static_cast<std::size_t>(ranks),
                             StreamOptions{.seed = seed}));

  expect_matches_oracle(engine, id, g, static_cc_union_find(g));
}

INSTANTIATE_TEST_SUITE_P(RanksSeeds, CcOracleSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1u, 2u, 3u, 4u)));

TEST(DynamicCc, ComponentMergeCascadesThroughBridge) {
  // Grow two chains, then bridge them: the dominating label must flood the
  // dominated chain end to end.
  Engine engine(EngineConfig{.num_ranks = 3});
  auto [id, cc] = engine.attach_make<DynamicCc>();
  EdgeList left, right;
  for (VertexId v = 0; v < 20; ++v) left.push_back({v, v + 1, 1});
  for (VertexId v = 100; v < 120; ++v) right.push_back({v, v + 1, 1});
  EdgeList both = left;
  both.insert(both.end(), right.begin(), right.end());
  engine.ingest(make_streams(both, 3));

  const StateWord l = engine.state_of(id, 0);
  const StateWord r = engine.state_of(id, 100);
  ASSERT_NE(l, r);

  engine.inject_edge({20, 100, 1, EdgeOp::kAdd});  // the bridge
  engine.drain();
  const StateWord merged = std::max(l, r);
  for (VertexId v = 0; v <= 20; ++v) EXPECT_EQ(engine.state_of(id, v), merged);
  for (VertexId v = 100; v <= 120; ++v) EXPECT_EQ(engine.state_of(id, v), merged);
}

TEST(DynamicCc, LabelPropagationOracleAgreesWithUnionFind) {
  // Cross-check the two static oracles against each other (they share the
  // label convention with the dynamic program).
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 300, .num_edges = 350, .seed = 17});
  const CsrGraph g = undirected_csr(edges);
  EXPECT_EQ(static_cc_labels(g), static_cc_union_find(g));
}

TEST(DynamicCc, SingletonEdgeVertexLabelsItself) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, cc] = engine.attach_make<DynamicCc>();
  engine.inject_edge({42, 43, 1, EdgeOp::kAdd});
  engine.drain();
  const StateWord expect = std::max(cc_initial_label(42), cc_initial_label(43));
  EXPECT_EQ(engine.state_of(id, 42), expect);
  EXPECT_EQ(engine.state_of(id, 43), expect);
}

}  // namespace
}  // namespace remo::test
