// Dynamic SSSP vs Dijkstra oracle, weighted streams, decreasing-weight
// updates, and cross-checks against BFS on unit weights.
#include <gtest/gtest.h>

#include <tuple>

#include "../support.hpp"

namespace remo::test {
namespace {

StreamSet weighted_streams(const EdgeList& edges, std::size_t n) {
  std::vector<EdgeEvent> events;
  for (const Edge& e : edges) events.push_back({e.src, e.dst, e.weight, EdgeOp::kAdd});
  return split_events(std::move(events), n, /*shuffle=*/true, /*seed=*/5);
}

TEST(DynamicSssp, WeightedDiamondTakesCheapPath) {
  const EdgeList edges = {{0, 1, 5}, {1, 2, 1}, {0, 3, 1}, {3, 2, 1}};
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, sssp] = engine.attach_make<DynamicSssp>(0);
  engine.inject_init(id, 0);
  engine.ingest(weighted_streams(edges, 2));
  EXPECT_EQ(engine.state_of(id, 0), 1u);
  EXPECT_EQ(engine.state_of(id, 3), 2u);
  EXPECT_EQ(engine.state_of(id, 2), 3u);
  EXPECT_EQ(engine.state_of(id, 1), 4u);  // 0-3-2-1 (3) beats 0-1 (5): 1+1+1+1
}

class SsspOracleSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t, int>> {};

TEST_P(SsspOracleSweep, MatchesDijkstra) {
  const auto [ranks, seed, max_w] = GetParam();
  // Canonical undirected edges: random weights per edge are only sound
  // when each unordered pair appears exactly once in the stream.
  const EdgeList edges = dedupe_undirected(
      generate_erdos_renyi({.num_vertices = 200, .num_edges = 900, .seed = seed}));
  Engine engine(EngineConfig{.num_ranks = static_cast<RankId>(ranks)});

  const StreamOptions opts{.shuffle = true,
                           .min_weight = 1,
                           .max_weight = static_cast<Weight>(max_w),
                           .seed = seed};
  const StreamSet streams = make_streams(edges, static_cast<std::size_t>(ranks), opts);

  // Rebuild the weighted edge list exactly as streamed so the oracle sees
  // identical weights.
  EdgeList weighted;
  for (std::size_t s = 0; s < streams.num_streams(); ++s)
    for (const EdgeEvent& e : streams.stream(s).events())
      weighted.push_back(Edge{e.src, e.dst, e.weight});

  const CsrGraph g = undirected_csr(weighted);
  const VertexId source = vertex_in_largest_cc(g);

  auto [id, sssp] = engine.attach_make<DynamicSssp>(source);
  engine.inject_init(id, source);
  engine.ingest(streams);

  const auto oracle = static_sssp_dijkstra(g, g.dense_of(source));
  expect_matches_oracle(engine, id, g, oracle);
}

INSTANTIATE_TEST_SUITE_P(RanksSeedsWeights, SsspOracleSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(13u, 14u, 15u),
                                            ::testing::Values(1, 16, 255)));

TEST(DynamicSssp, UnitWeightsAgreeWithBfs) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 150, .num_edges = 600, .seed = 8});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  Engine engine(EngineConfig{.num_ranks = 3});
  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(source);
  auto [sssp_id, sssp] = engine.attach_make<DynamicSssp>(source);
  engine.inject_init(bfs_id, source);
  engine.inject_init(sssp_id, source);
  engine.ingest(make_streams(edges, 3));

  for (CsrGraph::Dense v = 0; v < g.num_vertices(); ++v) {
    const VertexId ext = g.external_of(v);
    EXPECT_EQ(engine.state_of(bfs_id, ext), engine.state_of(sssp_id, ext))
        << "vertex " << ext;
  }
}

TEST(DynamicSssp, ReducingEdgeWeightImprovesDistances) {
  // Section II-B: "similar logic applies for edge updates limited only to
  // reducing edge weight" — re-adding an edge with a smaller weight acts
  // as a weight decrease.
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, sssp] = engine.attach_make<DynamicSssp>(0);
  engine.inject_init(id, 0);
  engine.inject_edge({0, 1, 10, EdgeOp::kAdd});
  engine.inject_edge({1, 2, 10, EdgeOp::kAdd});
  engine.drain();
  EXPECT_EQ(engine.state_of(id, 2), 21u);

  engine.inject_edge({0, 1, 2, EdgeOp::kAdd});  // weight decrease
  engine.drain();
  EXPECT_EQ(engine.state_of(id, 1), 3u);
  EXPECT_EQ(engine.state_of(id, 2), 13u);
}

}  // namespace
}  // namespace remo::test
