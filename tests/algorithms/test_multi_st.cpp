// Multi S-T Connectivity vs the static reachability-mask oracle.
#include <gtest/gtest.h>

#include <tuple>

#include "../support.hpp"

namespace remo::test {
namespace {

TEST(MultiSt, SingleSourceReachabilityOnSmallGraph) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, st] = engine.attach_make<MultiStConnectivity>(std::vector<VertexId>{0});
  inject_st_sources(engine, id, *st);
  engine.ingest(make_streams(small_graph(), 2));

  for (VertexId v = 0; v <= 5; ++v) EXPECT_EQ(engine.state_of(id, v), 1u) << v;
  EXPECT_EQ(engine.state_of(id, 6), 0u);
  EXPECT_EQ(engine.state_of(id, 7), 0u);
}

TEST(MultiSt, TwoSourcesInDifferentComponents) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, st] =
      engine.attach_make<MultiStConnectivity>(std::vector<VertexId>{0, 6});
  inject_st_sources(engine, id, *st);
  engine.ingest(make_streams(small_graph(), 2));

  for (VertexId v = 0; v <= 5; ++v) EXPECT_EQ(engine.state_of(id, v), 0b01u) << v;
  EXPECT_EQ(engine.state_of(id, 6), 0b10u);
  EXPECT_EQ(engine.state_of(id, 7), 0b10u);
}

class MultiStOracleSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(MultiStOracleSweep, MatchesStaticMasks) {
  const auto [ranks, num_sources, seed] = GetParam();
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 300, .num_edges = 500, .seed = seed});
  const CsrGraph g = undirected_csr(edges);

  std::vector<VertexId> sources;
  Xoshiro256 rng(seed * 77 + 1);
  while (sources.size() < static_cast<std::size_t>(num_sources)) {
    const VertexId s = g.external_of(rng.bounded(g.num_vertices()));
    if (std::find(sources.begin(), sources.end(), s) == sources.end())
      sources.push_back(s);
  }

  Engine engine(EngineConfig{.num_ranks = static_cast<RankId>(ranks)});
  auto [id, st] = engine.attach_make<MultiStConnectivity>(sources);
  inject_st_sources(engine, id, *st);
  engine.ingest(make_streams(edges, static_cast<std::size_t>(ranks),
                             StreamOptions{.seed = seed}));

  std::vector<CsrGraph::Dense> dense_sources;
  for (const VertexId s : sources) dense_sources.push_back(g.dense_of(s));
  expect_matches_oracle(engine, id, g, static_multi_st(g, dense_sources));
}

INSTANTIATE_TEST_SUITE_P(RanksSourcesSeeds, MultiStOracleSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 4, 16, 64),
                                            ::testing::Values(5u, 6u)));

TEST(MultiSt, SourceInjectedMidStreamStillConverges) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 200, .num_edges = 400, .seed = 9});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, st] =
      engine.attach_make<MultiStConnectivity>(std::vector<VertexId>{source});
  const StreamSet streams = make_streams(edges, 2);
  engine.ingest_async(streams);
  inject_st_sources(engine, id, *st);  // while ingestion runs
  engine.await_quiescence();

  expect_matches_oracle(engine, id, g,
                        static_multi_st(g, {g.dense_of(source)}));
}

TEST(MultiSt, WhenQueryFiresOnConnection) {
  // "When is vertex A connected to vertex B?" — the Section I headline.
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, st] = engine.attach_make<MultiStConnectivity>(std::vector<VertexId>{0});
  inject_st_sources(engine, id, *st);

  std::atomic<int> fires{0};
  engine.when(id, /*vertex=*/3, [](StateWord s) { return (s & 1) != 0; },
              [&](VertexId, StateWord) { fires.fetch_add(1); });

  engine.inject_edge({0, 1, 1, EdgeOp::kAdd});
  engine.inject_edge({2, 3, 1, EdgeOp::kAdd});
  engine.drain();
  EXPECT_EQ(fires.load(), 0);  // no path 0..3 yet: no false positive

  engine.inject_edge({1, 2, 1, EdgeOp::kAdd});  // completes the path
  engine.drain();
  EXPECT_EQ(fires.load(), 1);

  engine.inject_edge({0, 3, 1, EdgeOp::kAdd});  // second path: no re-fire
  engine.drain();
  EXPECT_EQ(fires.load(), 1);
}

}  // namespace
}  // namespace remo::test
