// WideStFleet: >64-source connectivity composed from 64-bit blocks.
#include <gtest/gtest.h>

#include "../support.hpp"

namespace remo::test {
namespace {

TEST(WideSt, OneHundredSourcesMatchOracle) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 300, .num_edges = 600, .seed = 33});
  const CsrGraph g = undirected_csr(edges);

  std::vector<VertexId> sources;
  for (CsrGraph::Dense s = 0; s < 100; ++s)
    sources.push_back(g.external_of(s % g.num_vertices()));

  Engine engine(EngineConfig{.num_ranks = 3});
  WideStFleet fleet(engine, sources);
  EXPECT_EQ(fleet.num_sources(), 100u);
  EXPECT_EQ(fleet.num_programs(), 2u);
  fleet.inject_sources();
  engine.ingest(make_streams(edges, 3));

  std::vector<CsrGraph::Dense> dense_sources;
  for (const VertexId s : sources) dense_sources.push_back(g.dense_of(s));
  const auto oracle = static_multi_st_wide(g, dense_sources);

  for (CsrGraph::Dense v = 0; v < g.num_vertices(); ++v) {
    const DynamicBitset got = fleet.connectivity_of(g.external_of(v));
    ASSERT_EQ(got.size(), oracle[v].size());
    EXPECT_TRUE(got == oracle[v]) << "vertex " << g.external_of(v);
  }
}

TEST(WideSt, ReachCountAndTriggers) {
  // Chain 0-1-2; sources 0..69 are all vertex 0 duplicates? No — use a
  // star of 70 sources all connected to hub 1000.
  std::vector<VertexId> sources;
  EdgeList edges;
  for (VertexId s = 0; s < 70; ++s) {
    sources.push_back(s);
    edges.push_back({s, 1000, 1});
  }
  edges.push_back({1000, 2000, 1});

  Engine engine(EngineConfig{.num_ranks = 2});
  WideStFleet fleet(engine, sources);

  std::atomic<int> fires{0};
  fleet.when_connected(/*vertex=*/2000, /*source_index=*/69,
                       [&](VertexId, StateWord) { fires.fetch_add(1); });

  fleet.inject_sources();
  engine.ingest(make_streams(edges, 2));

  EXPECT_EQ(fleet.reach_count(2000), 70u);
  EXPECT_EQ(fleet.reach_count(1000), 70u);
  EXPECT_EQ(fleet.reach_count(5), 70u);  // sources reach each other via hub
  EXPECT_EQ(fires.load(), 1);
}

TEST(WideSt, ExactlySixtyFourUsesOneProgram) {
  Engine engine(EngineConfig{.num_ranks = 2});
  std::vector<VertexId> sources(64);
  for (VertexId s = 0; s < 64; ++s) sources[s] = s;
  WideStFleet fleet(engine, sources);
  EXPECT_EQ(fleet.num_programs(), 1u);
}

}  // namespace
}  // namespace remo::test
