#!/bin/sh
# CLI round-trip: generate -> stats -> ingest (+snapshot) must all succeed
# and agree with each other. $1 = path to the remo binary.
set -eu

REMO="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== generate =="
"$REMO" generate --kind rmat --scale 10 --out "$WORK/g.bin" --seed 3
test -s "$WORK/g.bin"

echo "== generate text =="
"$REMO" generate --kind ba --scale 8 --out "$WORK/g.txt" --seed 3
head -2 "$WORK/g.txt"

echo "== stats =="
"$REMO" stats --graph "$WORK/g.bin" | tee "$WORK/stats.out"
grep -q "edges (directed):    16,384" "$WORK/stats.out"

echo "== ingest CON =="
"$REMO" ingest --graph "$WORK/g.bin" --ranks 2 --algo none

echo "== ingest BFS + snapshot =="
"$REMO" ingest --graph "$WORK/g.bin" --ranks 3 --algo bfs --source 0 \
    --snapshot "$WORK/levels.txt" | tee "$WORK/ingest.out"
grep -q "snapshot written" "$WORK/ingest.out"
test -s "$WORK/levels.txt"
# The source itself must appear at level 1.
grep -q "^0 1$" "$WORK/levels.txt"

echo "== ingest CC under Safra termination =="
"$REMO" ingest --graph "$WORK/g.txt" --ranks 2 --algo cc --safra

echo "== observability: --stats / --stats-json / --trace =="
"$REMO" ingest --graph "$WORK/g.bin" --ranks 2 --algo bfs --source 0 \
    --stats --stats-json "$WORK/stats.json" --trace "$WORK/trace.json" \
    | tee "$WORK/obs.out"
grep -q "per-update latency" "$WORK/obs.out"
grep -q "p50" "$WORK/obs.out"
grep -q "stats written" "$WORK/obs.out"
grep -q "trace written" "$WORK/obs.out"
test -s "$WORK/stats.json"
test -s "$WORK/trace.json"
grep -q '"schema": "remo-stats-1"' "$WORK/stats.json"
grep -q '"p50_ns"' "$WORK/stats.json"
grep -q '"p99_ns"' "$WORK/stats.json"
grep -q '"local_messages"' "$WORK/stats.json"
grep -q '"traceEvents"' "$WORK/trace.json"
grep -q '"ph":"X"' "$WORK/trace.json"
grep -q '"thread_name"' "$WORK/trace.json"

echo "== causal lineage: --lineage-out -> trace-analyze =="
"$REMO" ingest --graph "$WORK/g.bin" --ranks 4 --algo bfs --source 0 \
    --lineage-out "$WORK/lineage.json" --lineage-sample 4 \
    | tee "$WORK/lineage.out"
grep -q "causes sampled" "$WORK/lineage.out"
grep -q "lineage written" "$WORK/lineage.out"
grep -q '"schema":"remo-lineage-1"' "$WORK/lineage.json"
"$REMO" trace-analyze --lineage "$WORK/lineage.json" --top 3 \
    --min-descendants 1 | tee "$WORK/analyze.out"
grep -q "amplification: visitors/update" "$WORK/analyze.out"
grep -q "top 3 by wall-clock span" "$WORK/analyze.out"
grep -q "path: d0 " "$WORK/analyze.out"
grep -q "sampled causes spawned >= 1" "$WORK/analyze.out"
# The gate must fail when the bar is impossibly high.
if "$REMO" trace-analyze --lineage "$WORK/lineage.json" \
    --min-descendants 1000000 >/dev/null 2>&1; then
  echo "expected gate failure"; exit 1
fi

echo "== usage error paths =="
if "$REMO" bogus-command 2>/dev/null; then echo "expected failure"; exit 1; fi
if "$REMO" ingest 2>/dev/null; then echo "expected failure"; exit 1; fi

echo "CLI OK"
