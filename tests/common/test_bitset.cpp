#include <gtest/gtest.h>

#include "common/bitset.hpp"

namespace remo::test {
namespace {

TEST(Bitset, SetTestResetRoundTrip) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_FALSE(b.any());
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(Bitset, FilledConstructionTrimsTail) {
  DynamicBitset b(70, true);
  EXPECT_EQ(b.count(), 70u);
  EXPECT_TRUE(b.all());
}

TEST(Bitset, ResizeGrowsWithValue) {
  DynamicBitset b(10, true);
  b.resize(100, true);
  EXPECT_EQ(b.count(), 100u);
  b.resize(150, false);
  EXPECT_EQ(b.count(), 100u);
  EXPECT_FALSE(b.test(149));
}

TEST(Bitset, OrAndEquality) {
  DynamicBitset a(128), b(128);
  a.set(3);
  a.set(100);
  b.set(100);
  b.set(127);
  DynamicBitset u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3u);
  EXPECT_TRUE(u.is_superset_of(a));
  EXPECT_TRUE(u.is_superset_of(b));
  EXPECT_FALSE(a.is_superset_of(b));
  DynamicBitset i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(100));
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(u == u);
}

TEST(Bitset, ClearZeroesEverything) {
  DynamicBitset b(65, true);
  b.clear();
  EXPECT_FALSE(b.any());
  EXPECT_EQ(b.size(), 65u);
}

}  // namespace
}  // namespace remo::test
