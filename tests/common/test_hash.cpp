#include <gtest/gtest.h>

#include <set>

#include "common/hash.hpp"

namespace remo::test {
namespace {

TEST(Hash, SplitMixIsDeterministic) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_EQ(splitmix64(12345), splitmix64(12345));
}

TEST(Hash, SplitMixAvoidsTrivialCollisions) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 100000; ++i) seen.insert(splitmix64(i));
  EXPECT_EQ(seen.size(), 100000u);
}

TEST(Hash, SplitMixAvalanche) {
  // Flipping a single input bit should flip roughly half the output bits.
  int total_flipped = 0;
  const int samples = 256;
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t x = splitmix64(static_cast<std::uint64_t>(i) * 0x1234567);
    const std::uint64_t a = splitmix64(x);
    const std::uint64_t b = splitmix64(x ^ (1ULL << (i % 64)));
    total_flipped += __builtin_popcountll(a ^ b);
  }
  const double mean = static_cast<double>(total_flipped) / samples;
  EXPECT_GT(mean, 24.0);
  EXPECT_LT(mean, 40.0);
}

TEST(Hash, CombineDependsOnOrder) {
  EXPECT_NE(hash_combine(splitmix64(1), 2), hash_combine(splitmix64(2), 1));
}

TEST(Hash, PartitioningIsBalanced) {
  // splitmix64 mod P should spread sequential vertex ids evenly.
  constexpr int kRanks = 8;
  std::uint64_t counts[kRanks] = {};
  for (std::uint64_t v = 0; v < 80000; ++v) ++counts[splitmix64(v) % kRanks];
  for (const std::uint64_t c : counts) {
    EXPECT_GT(c, 80000 / kRanks * 0.9);
    EXPECT_LT(c, 80000 / kRanks * 1.1);
  }
}

}  // namespace
}  // namespace remo::test
