#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/json.hpp"

namespace remo::test {
namespace {

TEST(Json, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_EQ(j.dump(), "null");
}

TEST(Json, ScalarDump) {
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(3.5).dump(), "3.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, ExactSixtyFourBitIntegers) {
  // Counters must survive serialisation without double rounding.
  const std::uint64_t big = 18446744073709551615ull;  // 2^64 - 1
  EXPECT_EQ(Json(big).dump(), "18446744073709551615");
  const std::int64_t neg = INT64_MIN;
  EXPECT_EQ(Json(static_cast<long long>(neg)).dump(), "-9223372036854775808");

  std::string err;
  const Json round = Json::parse("18446744073709551615", &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(round.as_uint(), big);
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd\te").dump(), "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j["zebra"] = 1;
  j["alpha"] = 2;
  j["mid"] = 3;
  EXPECT_EQ(j.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
  ASSERT_EQ(j.members().size(), 3u);
  EXPECT_EQ(j.members()[0].first, "zebra");
  // operator[] on an existing key updates in place, no reorder.
  j["alpha"] = 9;
  EXPECT_EQ(j.members()[1].first, "alpha");
  EXPECT_EQ(j.find("alpha")->as_int(), 9);
}

TEST(Json, NestedBuildAndLookup) {
  Json j = Json::object();
  j["outer"]["inner"] = 5;  // auto-creates the intermediate object
  j["list"].push_back(1);
  j["list"].push_back("two");
  ASSERT_TRUE(j.find("outer")->is_object());
  EXPECT_EQ(j.find("outer")->find("inner")->as_int(), 5);
  ASSERT_TRUE(j.find("list")->is_array());
  EXPECT_EQ(j.find("list")->at(1).as_string(), "two");
  EXPECT_EQ(j.find("missing"), nullptr);
  EXPECT_FALSE(j.contains("missing"));
}

TEST(Json, RoundTripCompact) {
  Json j = Json::object();
  j["name"] = "bench";
  j["count"] = std::uint64_t{123456789012345ull};
  j["rate"] = 1234.5;
  j["ok"] = true;
  j["nothing"] = nullptr;
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back(2);
  j["xs"] = std::move(arr);

  std::string err;
  const Json back = Json::parse(j.dump(), &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(back.find("name")->as_string(), "bench");
  EXPECT_EQ(back.find("count")->as_uint(), 123456789012345ull);
  EXPECT_DOUBLE_EQ(back.find("rate")->as_double(), 1234.5);
  EXPECT_TRUE(back.find("ok")->as_bool());
  EXPECT_TRUE(back.find("nothing")->is_null());
  ASSERT_EQ(back.find("xs")->size(), 2u);
  EXPECT_EQ(back.find("xs")->at(0).as_int(), 1);
}

TEST(Json, RoundTripPretty) {
  Json j = Json::object();
  j["a"] = 1;
  j["b"].push_back(Json::object());
  const std::string pretty = j.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  std::string err;
  const Json back = Json::parse(pretty, &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(back.find("a")->as_int(), 1);
}

TEST(Json, ParseNumberForms) {
  std::string err;
  EXPECT_EQ(Json::parse("0", &err).as_int(), 0);
  EXPECT_EQ(Json::parse("-42", &err).as_int(), -42);
  EXPECT_DOUBLE_EQ(Json::parse("2.5e3", &err).as_double(), 2500.0);
  EXPECT_DOUBLE_EQ(Json::parse("-0.125", &err).as_double(), -0.125);
  ASSERT_TRUE(err.empty()) << err;
  // Negative integers stay integral, not float.
  EXPECT_EQ(Json::parse("-42", &err).type(), Json::Type::kInt);
  EXPECT_EQ(Json::parse("42", &err).type(), Json::Type::kUint);
}

TEST(Json, ParseUnicodeEscapes) {
  std::string err;
  const Json j = Json::parse("\"\\u0041\\u00e9\\u20ac\"", &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(j.as_string(), "A\xC3\xA9\xE2\x82\xAC");  // A, e-acute, euro sign
}

TEST(Json, ParseWhitespaceTolerant) {
  std::string err;
  const Json j = Json::parse("  {\n \"k\" :\t[ 1 , 2 ]\r\n}  ", &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(j.find("k")->size(), 2u);
}

TEST(Json, ParseErrorsReportPosition) {
  std::string err;
  EXPECT_TRUE(Json::parse("{\"a\": }", &err).is_null());
  EXPECT_FALSE(err.empty());

  EXPECT_TRUE(Json::parse("[1, 2", &err).is_null());
  EXPECT_NE(err.find(':'), std::string::npos);  // line:col prefix

  EXPECT_TRUE(Json::parse("", &err).is_null());
  EXPECT_FALSE(err.empty());

  EXPECT_TRUE(Json::parse("{} trailing", &err).is_null());
  EXPECT_NE(err.find("trailing"), std::string::npos);

  EXPECT_TRUE(Json::parse("truth", &err).is_null());
  EXPECT_FALSE(err.empty());
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::array().dump(2), "[]");
  EXPECT_EQ(Json::object().dump(2), "{}");
  std::string err;
  EXPECT_TRUE(Json::parse("[]", &err).is_array());
  EXPECT_TRUE(Json::parse("{}", &err).is_object());
  ASSERT_TRUE(err.empty());
}

}  // namespace
}  // namespace remo::test
