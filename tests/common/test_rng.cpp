#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace remo::test {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.bounded(37);
    EXPECT_LT(v, 37u);
  }
}

TEST(Rng, BoundedCoversRange) {
  Xoshiro256 rng(9);
  bool hit[10] = {};
  for (int i = 0; i < 1000; ++i) hit[rng.bounded(10)] = true;
  for (const bool h : hit) EXPECT_TRUE(h);
}

TEST(Rng, UniformIsInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

}  // namespace
}  // namespace remo::test
