#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/small_vector.hpp"

namespace remo::test {
namespace {

TEST(SmallVector, StaysInlineUpToCapacity) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.is_inline());
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
  v.push_back(4);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, SwapEraseRemovesWithoutOrder) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 6; ++i) v.push_back(i);
  v.swap_erase(1);  // last element moves into slot 1
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v[1], 5);
  std::vector<int> contents(v.begin(), v.end());
  std::sort(contents.begin(), contents.end());
  EXPECT_EQ(contents, (std::vector<int>{0, 2, 3, 4, 5}));
}

TEST(SmallVector, CopyAndMoveSemantics) {
  SmallVector<std::string, 2> v;
  v.push_back("alpha");
  v.push_back("beta");
  v.push_back("gamma");  // spills to heap

  SmallVector<std::string, 2> copy(v);
  EXPECT_EQ(copy.size(), 3u);
  EXPECT_EQ(copy[2], "gamma");

  SmallVector<std::string, 2> moved(std::move(v));
  EXPECT_EQ(moved.size(), 3u);
  EXPECT_EQ(moved[0], "alpha");

  SmallVector<std::string, 2> assigned;
  assigned = copy;
  EXPECT_EQ(assigned.size(), 3u);
  assigned = std::move(moved);
  EXPECT_EQ(assigned.size(), 3u);
  EXPECT_EQ(assigned[1], "beta");
}

TEST(SmallVector, MoveOfInlineVectorCopiesElements) {
  SmallVector<std::string, 4> v;
  v.push_back("x");
  SmallVector<std::string, 4> moved(std::move(v));
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0], "x");
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move): defined by impl
}

TEST(SmallVector, ClearReturnsToInline) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  v.clear();
  EXPECT_TRUE(v.is_inline());
  EXPECT_TRUE(v.empty());
  v.push_back(1);
  EXPECT_EQ(v.back(), 1);
}

TEST(SmallVector, PopBackDestroysElements) {
  SmallVector<std::string, 2> v;
  v.push_back("a");
  v.push_back("b");
  v.pop_back();
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.back(), "a");
}

TEST(SmallVector, ReserveKeepsContents) {
  SmallVector<int, 2> v;
  v.push_back(1);
  v.push_back(2);
  v.reserve(128);
  EXPECT_GE(v.capacity(), 128u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
}

}  // namespace
}  // namespace remo::test
