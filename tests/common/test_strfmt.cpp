#include <gtest/gtest.h>

#include "common/strfmt.hpp"

namespace remo::test {
namespace {

TEST(Strfmt, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("%d + %d = %d", 2, 2, 4), "2 + 2 = 4");
  EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strfmt("%s", "hello"), "hello");
  EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(Strfmt, LongStringsDoNotTruncate) {
  const std::string big(5000, 'x');
  EXPECT_EQ(strfmt("%s", big.c_str()).size(), 5000u);
}

TEST(Strfmt, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(1000000000ULL), "1,000,000,000");
}

TEST(Strfmt, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512.00 B");
  EXPECT_EQ(human_bytes(2048), "2.00 KB");
  EXPECT_EQ(human_bytes(3ULL * 1024 * 1024 * 1024), "3.00 GB");
}

}  // namespace
}  // namespace remo::test
