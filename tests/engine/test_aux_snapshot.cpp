// Auxiliary-state collection: the BFS/SSSP parent trees (the "entire BFS
// tree ... each vertex has a data point referring to its level and its
// parent vertex", Section II-C).
#include <gtest/gtest.h>

#include "../support.hpp"

namespace remo::test {
namespace {

TEST(AuxSnapshot, BfsParentTreeIsValid) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 200, .num_edges = 800, .seed = 52});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  Engine engine(EngineConfig{.num_ranks = 3});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(
      source, DynamicBfs::Options{.deterministic_parents = true});
  engine.inject_init(id, source);
  engine.ingest(make_streams(edges, 3));

  const Snapshot levels = engine.collect_quiescent(id);
  const Snapshot parents = engine.collect_aux_quiescent(id);

  // Every reached vertex (except the source) has a parent one level up,
  // adjacent in the graph.
  for (const auto& [v, level] : levels) {
    if (v == source) {
      EXPECT_EQ(parents.at(v), source);
      continue;
    }
    const StateWord parent = parents.at(v);
    ASSERT_NE(parent, kInfiniteState) << "vertex " << v << " has no parent";
    EXPECT_EQ(levels.at(static_cast<VertexId>(parent)), level - 1);
    const CsrGraph::Dense dv = g.dense_of(v);
    bool adjacent = false;
    for (const CsrGraph::Dense u : g.neighbours(dv))
      adjacent |= g.external_of(u) == parent;
    EXPECT_TRUE(adjacent) << "parent of " << v << " not adjacent";
  }
}

TEST(AuxSnapshot, DeterministicParentsMatchStaticTree) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 150, .num_edges = 600, .seed = 53});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(
      source, DynamicBfs::Options{.deterministic_parents = true});
  engine.inject_init(id, source);
  engine.ingest(make_streams(edges, 2));

  const Snapshot parents = engine.collect_aux_quiescent(id);
  const BfsTree tree = static_bfs_tree(g, g.dense_of(source));
  for (CsrGraph::Dense v = 0; v < g.num_vertices(); ++v) {
    if (tree.parent[v] == CsrGraph::kNoVertex) continue;
    EXPECT_EQ(parents.at(g.external_of(v)), g.external_of(tree.parent[v]))
        << "vertex " << g.external_of(v);
  }
}

TEST(AuxSnapshot, ProgramWithoutAuxYieldsEmpty) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, cc] = engine.attach_make<DynamicCc>();
  engine.ingest(make_streams(small_graph(), 2));
  EXPECT_TRUE(engine.collect_aux_quiescent(id).empty());
}

}  // namespace
}  // namespace remo::test
