// Monotonic visitor coalescing (DESIGN.md §6): the combine-hook algebra
// every opted-in program must satisfy, the accounting soundness of merging
// visitors away (in-flight exactly zero at quiescence, message partition
// intact), and end-to-end determinism — a coalesced run converges to the
// same states as a --no-coalesce run.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../support.hpp"

namespace remo::test {
namespace {

// A value spread that covers the interesting corners of every program's
// state lattice: zero, small levels/distances, bit patterns (MultiSt),
// large labels (CC picks max), and the BFS/SSSP identity.
std::vector<StateWord> sample_states(const VertexProgram& p) {
  return {0,    1,          2,          3,          7,          8,
          42,   0x5555,     0xAAAA,     1u << 20,   (1u << 20) + 1,
          1000, 0xFFFFFFFF, p.identity()};
}

// combine must be commutative, associative, idempotent, and dominate both
// inputs in the program's monotone order — exactly the algebra that makes
// merging en-route indistinguishable from late delivery for a monotone
// callback (the soundness argument in DESIGN.md §6).
void expect_combine_is_sound(const VertexProgram& p, const char* name) {
  ASSERT_TRUE(p.can_combine()) << name;
  const std::vector<StateWord> xs = sample_states(p);
  for (const StateWord a : xs) {
    EXPECT_EQ(p.combine(a, a), a) << name << ": not idempotent at " << a;
    for (const StateWord b : xs) {
      const StateWord ab = p.combine(a, b);
      EXPECT_EQ(ab, p.combine(b, a))
          << name << ": not commutative at (" << a << ", " << b << ")";
      EXPECT_TRUE(p.no_worse(ab, a) && p.no_worse(ab, b))
          << name << ": combine(" << a << ", " << b << ") = " << ab
          << " is worse than an input";
      for (const StateWord c : xs) {
        EXPECT_EQ(p.combine(ab, c), p.combine(a, p.combine(b, c)))
            << name << ": not associative at (" << a << ", " << b << ", " << c
            << ")";
      }
    }
  }
  // The identity element absorbs into anything without changing it.
  for (const StateWord a : xs)
    EXPECT_EQ(p.combine(a, p.identity()), a)
        << name << ": identity() is not neutral";
}

TEST(CombineAlgebra, BfsIsMin) {
  expect_combine_is_sound(DynamicBfs(0), "DynamicBfs");
  EXPECT_EQ(DynamicBfs(0).combine(3, 5), 3u);
}

TEST(CombineAlgebra, SsspIsMin) {
  expect_combine_is_sound(DynamicSssp(0), "DynamicSssp");
  EXPECT_EQ(DynamicSssp(0).combine(9, 4), 4u);
}

TEST(CombineAlgebra, CcIsMax) {
  expect_combine_is_sound(DynamicCc(), "DynamicCc");
  EXPECT_EQ(DynamicCc().combine(3, 5), 5u);
}

TEST(CombineAlgebra, MultiStIsBitwiseOr) {
  expect_combine_is_sound(MultiStConnectivity({1, 2}), "MultiStConnectivity");
  EXPECT_EQ(MultiStConnectivity({1, 2}).combine(0b0101, 0b0011), 0b0111u);
}

TEST(CombineAlgebra, DeterministicParentsOptsOut) {
  // With deterministic parent selection, equal-level updates are *not*
  // interchangeable (the tie-break depends on arrival), so coalescing
  // must be off for exactly that mode.
  DynamicBfs::Options det;
  det.deterministic_parents = true;
  EXPECT_FALSE(DynamicBfs(0, det).can_combine());
  DynamicSssp::Options sdet;
  sdet.deterministic_parents = true;
  EXPECT_FALSE(DynamicSssp(0, sdet).can_combine());
  EXPECT_TRUE(DynamicBfs(0).can_combine());  // default mode opts in
}

// ---------------------------------------------------------------------------
// End-to-end: coalesced runs vs the no-coalesce reference.

EdgeList coalescing_workload() {
  // Dense enough that a vertex improves several times during convergence,
  // re-sending to the same neighbours within one batch window — the
  // pattern coalescing exists for.
  return generate_erdos_renyi({.num_vertices = 2000, .num_edges = 16000, .seed = 11});
}

TEST(Coalescing, CoalescedRunMatchesNoCoalesceRunAndOracle) {
  const EdgeList edges = coalescing_workload();
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  auto run = [&](bool coalesce) {
    EngineConfig cfg{.num_ranks = 4};
    cfg.coalesce = coalesce;
    cfg.batch_size = 512;  // wide merge window
    auto engine = std::make_unique<Engine>(cfg);
    auto [bfs_id, bfs] = engine->attach_make<DynamicBfs>(source);
    auto [cc_id, cc] = engine->attach_make<DynamicCc>();
    engine->inject_init(bfs_id, source);
    engine->ingest(make_streams(edges, 4, StreamOptions{.seed = 13}));
    const Snapshot b = engine->collect_quiescent(bfs_id);
    const Snapshot c = engine->collect_quiescent(cc_id);
    const MetricsSummary m = engine->metrics();
    return std::tuple(std::move(b), std::move(c), m);
  };

  const auto [bfs_on, cc_on, m_on] = run(true);
  const auto [bfs_off, cc_off, m_off] = run(false);

  // Both runs converge to the oracle, hence to each other — final states
  // are independent of whether dominated updates travelled.
  expect_snapshot_matches_oracle(bfs_on, g, static_bfs(g, g.dense_of(source)));
  expect_snapshot_matches_oracle(bfs_off, g, static_bfs(g, g.dense_of(source)));
  expect_snapshot_matches_oracle(cc_on, g, static_cc_union_find(g));
  expect_snapshot_matches_oracle(cc_off, g, static_cc_union_find(g));

  // The coalesced run actually coalesced; the reference run provably not.
  EXPECT_GT(m_on.coalesced_sends + m_on.receiver_merges, 0u);
  EXPECT_EQ(m_off.coalesced_sends, 0u);
  EXPECT_EQ(m_off.receiver_merges, 0u);
}

TEST(Coalescing, MessagePartitionExcludesCoalescedSends) {
  // `local + remote + control == messages_sent` (PR 1's partition
  // invariant) must survive coalescing: a merged-away visitor was never
  // sent, so it lands in none of the four counters.
  const EdgeList edges = coalescing_workload();
  EngineConfig cfg{.num_ranks = 3};
  cfg.batch_size = 512;
  Engine engine(cfg);
  auto [id, bfs] = engine.attach_make<DynamicBfs>(edges.front().src);
  engine.inject_init(id, edges.front().src);
  engine.ingest(make_streams(edges, 3, StreamOptions{.seed = 5}));
  (void)engine.collect_quiescent(id);

  const obs::MetricsSnapshot snap = engine.metrics_snapshot();
  EXPECT_EQ(snap.counters.local_messages + snap.counters.remote_messages +
                snap.counters.control_messages,
            snap.counters.messages_sent);
  for (const auto& r : snap.per_rank)
    EXPECT_EQ(r.counters.local_messages + r.counters.remote_messages +
                  r.counters.control_messages,
              r.counters.messages_sent);
  EXPECT_GT(snap.counters.coalesced_sends + snap.counters.receiver_merges, 0u);
}

TEST(Coalescing, InFlightExactlyZeroAtQuiescence) {
  // The sharded in-flight counters must read exactly zero at every
  // quiescent point even though coalesced sends skip the injected side and
  // receiver merges retire on the processed side — randomised multi-rank
  // ingest, mid-stream versioned collections, repeated across seeds.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const EdgeList edges = generate_erdos_renyi(
        {.num_vertices = 1200, .num_edges = 9600, .seed = 100 + seed});
    const RankId ranks = static_cast<RankId>(1 + seed);  // 2, 3, 4
    EngineConfig cfg{.num_ranks = ranks};
    Engine engine(cfg);
    const VertexId source = edges.front().src;
    auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(source);
    auto [cc_id, cc] = engine.attach_make<DynamicCc>();
    engine.inject_init(bfs_id, source);

    // ingest_async holds a reference: the set must outlive the run.
    const StreamSet streams = make_streams(edges, ranks, StreamOptions{.seed = seed});
    engine.ingest_async(streams);
    (void)engine.collect_versioned(bfs_id);  // epoch-drain mid-stream
    engine.await_quiescence();
    EXPECT_EQ(engine.sample_gauges().in_flight, 0)
        << "seed " << seed << " ranks " << unsigned(ranks);

    (void)engine.collect_quiescent(cc_id);
    EXPECT_EQ(engine.sample_gauges().in_flight, 0);
  }
}

TEST(Coalescing, ConfigKnobDisablesMergingEntirely) {
  const EdgeList edges = coalescing_workload();
  EngineConfig cfg{.num_ranks = 2};
  cfg.coalesce = false;
  Engine engine(cfg);
  auto [id, bfs] = engine.attach_make<DynamicBfs>(edges.front().src);
  engine.inject_init(id, edges.front().src);
  engine.ingest(make_streams(edges, 2, StreamOptions{.seed = 9}));
  const MetricsSummary m = engine.metrics();
  EXPECT_EQ(m.coalesced_sends, 0u);
  EXPECT_EQ(m.receiver_merges, 0u);
}

TEST(Coalescing, DeterministicParentsRunNeverMerges) {
  // A program that opts out via can_combine() must see the full message
  // stream even when the engine-level knob is on (the default).
  const EdgeList edges = coalescing_workload();
  EngineConfig cfg{.num_ranks = 2};
  Engine engine(cfg);
  DynamicBfs::Options det;
  det.deterministic_parents = true;
  auto [id, bfs] = engine.attach_make<DynamicBfs>(edges.front().src, det);
  engine.inject_init(id, edges.front().src);
  engine.ingest(make_streams(edges, 2, StreamOptions{.seed = 9}));
  const MetricsSummary m = engine.metrics();
  EXPECT_EQ(m.coalesced_sends, 0u);
  EXPECT_EQ(m.receiver_merges, 0u);
}

}  // namespace
}  // namespace remo::test
