// Engine lifecycle, construction-only ingestion, basic bookkeeping.
#include <gtest/gtest.h>

#include "../support.hpp"

namespace remo::test {
namespace {

TEST(EngineBasic, ConstructsAndShutsDownIdle) {
  EngineConfig cfg;
  cfg.num_ranks = 3;
  Engine engine(cfg);
  EXPECT_EQ(engine.num_ranks(), 3u);
  EXPECT_TRUE(engine.idle());
  EXPECT_EQ(engine.num_programs(), 0u);
}

TEST(EngineBasic, ConstructionOnlyIngestStoresEveryEdge) {
  EngineConfig cfg;
  cfg.num_ranks = 2;
  Engine engine(cfg);
  const EdgeList edges = small_graph();
  const StreamSet streams = make_streams(edges, 2);
  const IngestStats stats = engine.ingest(streams);

  EXPECT_EQ(stats.events, edges.size());
  EXPECT_TRUE(engine.idle());
  // Undirected: every edge stored at both endpoints.
  EXPECT_EQ(engine.total_stored_edges(), edges.size() * 2);
  EXPECT_EQ(engine.total_stored_vertices(), 8u);

  const MetricsSummary m = engine.metrics();
  EXPECT_EQ(m.topology_events, edges.size());
  EXPECT_EQ(m.edges_stored, edges.size() * 2);
}

TEST(EngineBasic, DuplicateEdgesCollapseInStore) {
  Engine engine(EngineConfig{.num_ranks = 2});
  EdgeList edges = small_graph();
  const std::size_t distinct = edges.size();
  edges.insert(edges.end(), edges.begin(), edges.end());  // every edge twice
  engine.ingest(make_streams(edges, 2));
  EXPECT_EQ(engine.total_stored_edges(), distinct * 2);
  EXPECT_EQ(engine.metrics().topology_events, distinct * 2);
}

TEST(EngineBasic, DirectedModeStoresOneArcPerEvent) {
  EngineConfig cfg;
  cfg.num_ranks = 2;
  cfg.undirected = false;
  Engine engine(cfg);
  const EdgeList edges = small_graph();
  engine.ingest(make_streams(edges, 2));
  EXPECT_EQ(engine.total_stored_edges(), edges.size());
}

TEST(EngineBasic, InjectEdgeWithoutStreams) {
  Engine engine(EngineConfig{.num_ranks = 2});
  engine.inject_edge(EdgeEvent{10, 20, 1, EdgeOp::kAdd});
  engine.inject_edge(EdgeEvent{20, 30, 1, EdgeOp::kAdd});
  engine.drain();
  EXPECT_EQ(engine.total_stored_edges(), 4u);
  EXPECT_EQ(engine.store(engine.partitioner().owner(20)).degree(20), 2u);
}

TEST(EngineBasic, DeleteEventRemovesEdgeBothSides) {
  Engine engine(EngineConfig{.num_ranks = 2});
  engine.inject_edge(EdgeEvent{1, 2, 1, EdgeOp::kAdd});
  engine.inject_edge(EdgeEvent{2, 3, 1, EdgeOp::kAdd});
  engine.drain();
  engine.inject_edge(EdgeEvent{1, 2, 1, EdgeOp::kDelete});
  engine.drain();
  EXPECT_EQ(engine.total_stored_edges(), 2u);
  EXPECT_FALSE(engine.store(engine.partitioner().owner(1)).has_edge(1, 2));
  EXPECT_FALSE(engine.store(engine.partitioner().owner(2)).has_edge(2, 1));
}

TEST(EngineBasic, ReingestAfterQuiescenceWorks) {
  Engine engine(EngineConfig{.num_ranks = 2});
  const EdgeList first = {{0, 1, 1}, {1, 2, 1}};
  const EdgeList second = {{2, 3, 1}, {3, 4, 1}};
  const StreamSet s1 = make_streams(first, 2);
  const StreamSet s2 = make_streams(second, 2);
  engine.ingest(s1);
  engine.ingest(s2);
  EXPECT_EQ(engine.total_stored_edges(), 8u);
}

TEST(EngineBasic, RanksPartitionVerticesDisjointly) {
  Engine engine(EngineConfig{.num_ranks = 4});
  const EdgeList edges = small_graph();
  engine.ingest(make_streams(edges, 4));
  // Every stored vertex must live at its partitioner-assigned owner only.
  for (RankId r = 0; r < engine.num_ranks(); ++r) {
    engine.store(r).for_each_vertex([&](VertexId v, const TwoTierAdjacency&) {
      EXPECT_EQ(engine.partitioner().owner(v), r);
    });
  }
}

}  // namespace
}  // namespace remo::test
