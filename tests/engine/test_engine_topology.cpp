// Topology maintenance invariants: reverse-edge symmetry, weights,
// store/oracle agreement, and FIFO-dependent ordering guarantees.
#include <gtest/gtest.h>

#include "../support.hpp"

namespace remo::test {
namespace {

TEST(EngineTopology, UndirectedIngestIsSymmetric) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 128, .num_edges = 512, .seed = 2});
  Engine engine(EngineConfig{.num_ranks = 3});
  engine.ingest(make_streams(edges, 3));

  for (RankId r = 0; r < engine.num_ranks(); ++r) {
    engine.store(r).for_each_vertex([&](VertexId u, const TwoTierAdjacency& adj) {
      adj.for_each([&](VertexId v, const EdgeProp& prop) {
        const auto& peer = engine.store(engine.partitioner().owner(v));
        ASSERT_TRUE(peer.has_edge(v, u)) << u << " -> " << v << " has no reverse";
        EXPECT_EQ(peer.edge_weight(v, u), prop.weight);
      });
    });
  }
}

TEST(EngineTopology, StoreMatchesCsrDegrees) {
  const EdgeList edges = dedupe_undirected(
      generate_erdos_renyi({.num_vertices = 100, .num_edges = 300, .seed = 6}));
  const CsrGraph g = undirected_csr(edges);
  Engine engine(EngineConfig{.num_ranks = 2});
  engine.ingest(make_streams(edges, 2));

  for (CsrGraph::Dense v = 0; v < g.num_vertices(); ++v) {
    const VertexId ext = g.external_of(v);
    EXPECT_EQ(engine.store(engine.partitioner().owner(ext)).degree(ext),
              g.degree(v))
        << "vertex " << ext;
  }
}

TEST(EngineTopology, WeightsSurviveRouting) {
  Engine engine(EngineConfig{.num_ranks = 4});
  std::vector<EdgeEvent> events;
  for (VertexId v = 0; v < 50; ++v)
    events.push_back({v, v + 1000, static_cast<Weight>(v + 7), EdgeOp::kAdd});
  engine.ingest(split_events(events, 4));
  for (VertexId v = 0; v < 50; ++v) {
    const auto owner = engine.partitioner().owner(v);
    EXPECT_EQ(engine.store(owner).edge_weight(v, v + 1000), v + 7);
    const auto rev_owner = engine.partitioner().owner(v + 1000);
    EXPECT_EQ(engine.store(rev_owner).edge_weight(v + 1000, v), v + 7);
  }
}

TEST(EngineTopology, MixedAddDeleteStreamsLeaveConsistentStore) {
  // Adds followed (in the same stream) by deletes of the same edges: the
  // per-stream FIFO guarantees the delete lands after its add.
  std::vector<EdgeEvent> events;
  for (VertexId v = 0; v < 40; ++v) events.push_back({v, v + 1, 1, EdgeOp::kAdd});
  for (VertexId v = 0; v < 40; v += 2)
    events.push_back({v, v + 1, 1, EdgeOp::kDelete});
  // Single stream: order is preserved end to end.
  Engine engine(EngineConfig{.num_ranks = 3});
  engine.ingest(split_events(events, 1));

  for (VertexId v = 0; v < 40; ++v) {
    const bool expect_present = (v % 2) != 0;
    EXPECT_EQ(engine.store(engine.partitioner().owner(v)).has_edge(v, v + 1),
              expect_present)
        << "edge " << v;
  }
}

TEST(EngineTopology, HighDegreeVertexPromotesToTable) {
  EngineConfig cfg;
  cfg.num_ranks = 2;
  cfg.store.promote_threshold = 4;
  Engine engine(cfg);
  std::vector<EdgeEvent> events;
  for (VertexId nbr = 1; nbr <= 64; ++nbr) events.push_back({0, nbr, 1, EdgeOp::kAdd});
  engine.ingest(split_events(events, 2));

  const auto& store = engine.store(engine.partitioner().owner(0));
  ASSERT_NE(store.adjacency(0), nullptr);
  EXPECT_TRUE(store.adjacency(0)->promoted());
  EXPECT_EQ(store.degree(0), 64u);
}

TEST(EngineTopology, SelfLoopDoesNotDuplicate) {
  Engine engine(EngineConfig{.num_ranks = 2});
  engine.inject_edge({5, 5, 1, EdgeOp::kAdd});
  engine.drain();
  EXPECT_EQ(engine.total_stored_edges(), 1u);
  EXPECT_TRUE(engine.store(engine.partitioner().owner(5)).has_edge(5, 5));
}

TEST(EngineTopology, MemoryAccountingIsPositiveAndGrows) {
  Engine engine(EngineConfig{.num_ranks = 2});
  const std::size_t empty = engine.store_memory_bytes();
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 256, .num_edges = 2048, .seed = 1});
  engine.ingest(make_streams(edges, 2));
  EXPECT_GT(engine.store_memory_bytes(), empty);
}

}  // namespace
}  // namespace remo::test
