// Causal lineage end-to-end (docs/OBSERVABILITY.md, "Causal lineage"): a
// scripted edge stream over 4 ranks whose propagation cascade is fully
// deterministic, so the recorded lineage tree — visitor counts, hop depth,
// ranks touched, witness path — can be asserted exactly, and the
// trace-analyze report must name the same critical path.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "../support.hpp"

namespace remo::test {
namespace {

/// Directed BFS-style relay. Updates carry the sender's level; a receiver
/// adopts sender+1 when that improves its own and forwards the new level.
/// With a simple chain graph every hop is one visitor — the cascade is a
/// path, so the witness chain IS the critical path, exactly.
class RelayProgram : public VertexProgram {
 public:
  std::string name() const override { return "relay"; }
  StateWord identity() const override { return kInfiniteState; }

  void init(VertexContext& ctx) override { ctx.set_value(0); }

  void on_add(VertexContext& ctx, VertexId nbr, Weight) override {
    if (ctx.value() != identity()) ctx.update_single_nbr(nbr, ctx.value());
  }

  void on_update(VertexContext& ctx, VertexId, StateWord from_val,
                 Weight) override {
    const StateWord cand = from_val + 1;
    if (cand < ctx.value()) {
      ctx.set_value(cand);
      ctx.update_all_nbrs(cand);
    }
  }
};

/// 4 ranks, modulo partitioning: vertex v lives on rank v for v in 0..3.
EngineConfig lineage_config() {
  EngineConfig cfg{.num_ranks = 4};
  cfg.undirected = false;  // no reverse-add traffic muddying the cascade
  cfg.partition = PartitionMode::kModulo;
  cfg.obs.lineage = true;
  cfg.obs.lineage_sample_shift = 0;  // trace every topology event
  return cfg;
}

/// Build the scripted scenario: scaffold chain 1->2->3 (inert — no program
/// state yet), init the relay at vertex 0, then close 0->1. That third
/// topology event re-levels the whole chain: its cascade applies at
/// vertices 0,1,2,3 on ranks 0,1,2,3 at hop depths 0,1,2,3.
void run_scripted_cascade(Engine& engine, ProgramId id) {
  engine.inject_edge(EdgeEvent{1, 2, kDefaultWeight, EdgeOp::kAdd});
  engine.inject_edge(EdgeEvent{2, 3, kDefaultWeight, EdgeOp::kAdd});
  engine.drain();
  engine.inject_init(id, 0);
  engine.drain();
  engine.inject_edge(EdgeEvent{0, 1, kDefaultWeight, EdgeOp::kAdd});
  engine.drain();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(LineageEngine, ScriptedCascadeRecordsExactPropagationTree) {
  Engine engine(lineage_config());
  ASSERT_TRUE(engine.lineage_enabled());
  auto [id, relay] = engine.attach_make<RelayProgram>();
  run_scripted_cascade(engine, id);

  // The relay converged: vertex v holds level v.
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(engine.state_of(id, v), v);

  const obs::LineageSnapshot snap = engine.lineage_snapshot();
  EXPECT_EQ(snap.ranks, 4u);
  EXPECT_EQ(snap.dropped, 0u);
  ASSERT_EQ(snap.records.size(), 3u);  // every topology event was sampled

  // The injection order fixes the main-thread cause sequence: the traced
  // update is main#3.
  const obs::CauseId c3 = obs::make_cause(obs::kMainOrigin, 3);
  const obs::LineageRecord* rec = nullptr;
  for (const obs::LineageRecord& r : snap.records)
    if (r.cause == c3) rec = &r;
  ASSERT_NE(rec, nullptr);

  // Exact expected tree: the root add at vertex 0 plus one relayed update
  // per chain hop — 4 applications, depth 3, all 4 ranks. Spawns: the
  // injection handoff plus three relays, of which the relays cross ranks.
  EXPECT_EQ(rec->applied, 4u);
  EXPECT_EQ(rec->spawned, 4u);
  EXPECT_EQ(rec->remote_spawned, 3u);
  EXPECT_EQ(rec->max_depth, 3u);
  EXPECT_EQ(rec->ranks_touched, 4u);
  EXPECT_GE(rec->last_ns, rec->first_ns);
  EXPECT_GT(rec->first_ns, 0u);

  // Witness chain = the exact critical path: depth d applied vertex d on
  // rank d, timestamps non-decreasing along the chain.
  ASSERT_EQ(rec->path.size(), 4u);
  std::uint64_t prev_ns = 0;
  for (std::uint32_t d = 0; d < 4; ++d) {
    EXPECT_EQ(rec->path[d].depth, d);
    EXPECT_EQ(rec->path[d].vertex, d);
    EXPECT_EQ(rec->path[d].rank, d);
    EXPECT_GE(rec->path[d].ns, prev_ns);
    prev_ns = rec->path[d].ns;
  }

  // The scaffold causes (main#1, main#2) were inert adds: one application
  // at their src's rank, the injection handoff as their only spawn.
  for (std::uint32_t seq = 1; seq <= 2; ++seq) {
    const obs::LineageRecord* s = nullptr;
    for (const obs::LineageRecord& r : snap.records)
      if (r.cause == obs::make_cause(obs::kMainOrigin, seq)) s = &r;
    ASSERT_NE(s, nullptr) << "main#" << seq;
    EXPECT_EQ(s->applied, 1u);
    EXPECT_EQ(s->spawned, 1u);
    EXPECT_EQ(s->remote_spawned, 0u);
    EXPECT_EQ(s->max_depth, 0u);
    EXPECT_EQ(s->ranks_touched, 1u);
  }

  // Every sampled cause recorded descendants (the CI smoke gate invariant).
  EXPECT_TRUE(obs::causes_below_descendants(snap, 1).empty());

  // Amplification summary over {1, 1, 4} applications.
  const obs::LineageSummary sum = snap.summary();
  EXPECT_EQ(sum.sampled, 3u);
  EXPECT_EQ(sum.applied, 6u);
  EXPECT_EQ(sum.visitors_p50, 1u);
  EXPECT_EQ(sum.visitors_p99, 4u);
  EXPECT_EQ(sum.depth_p99, 3u);

  // The stats snapshot carries the same block.
  const obs::MetricsSnapshot m = engine.metrics_snapshot();
  ASSERT_TRUE(m.lineage_enabled);
  EXPECT_EQ(m.lineage.sampled, 3u);
  EXPECT_EQ(m.lineage.applied, 6u);
  const Json mj = m.to_json();
  ASSERT_NE(mj.find("lineage"), nullptr);
  EXPECT_EQ(mj.find("lineage")->find("sampled")->as_uint(), 3u);
}

TEST(LineageEngine, DumpAnalyzeRoundTripReportsTheSameCriticalPath) {
  Engine engine(lineage_config());
  auto [id, relay] = engine.attach_make<RelayProgram>();
  run_scripted_cascade(engine, id);

  // Dump exactly as `remo_cli ingest --lineage-out` does, re-read exactly
  // as `remo_cli trace-analyze` does, and check the rendered report names
  // the same chain the in-memory snapshot recorded.
  const std::string path = ::testing::TempDir() + "remo_lineage_engine.json";
  ASSERT_TRUE(engine.write_lineage(path));
  std::string err;
  const Json doc = Json::parse(slurp(path), &err);
  ASSERT_TRUE(err.empty()) << err;
  obs::LineageSnapshot parsed;
  ASSERT_TRUE(obs::LineageSnapshot::from_json(doc, parsed, &err)) << err;
  ASSERT_EQ(parsed.records.size(), 3u);

  const std::string report = obs::analyze_lineage(parsed, 10);
  EXPECT_NE(report.find("lineage: 3 causes sampled"), std::string::npos);
  EXPECT_NE(report.find("main#3"), std::string::npos);
  EXPECT_NE(report.find("d0 v0@r0"), std::string::npos);
  EXPECT_NE(report.find("-> d1 v1@r1"), std::string::npos);
  EXPECT_NE(report.find("-> d2 v2@r2"), std::string::npos);
  EXPECT_NE(report.find("-> d3 v3@r3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(LineageEngine, FlowEventsLinkTheCascadeAcrossRankTracks) {
  EngineConfig cfg = lineage_config();
  cfg.obs.trace = true;
  Engine engine(cfg);
  auto [id, relay] = engine.attach_make<RelayProgram>();
  run_scripted_cascade(engine, id);

  const std::string path = ::testing::TempDir() + "remo_lineage_trace.json";
  ASSERT_TRUE(engine.write_trace(path));
  std::string err;
  const Json doc = Json::parse(slurp(path), &err);
  ASSERT_TRUE(err.empty()) << err;
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  // The traced cascade's flow: one begin (the hop-0 apply on rank 0's
  // track) and one step per relayed hop, on three distinct other tracks,
  // all sharing the cascade's cause id. No continuation may lack a begin.
  const std::uint64_t c3 = obs::make_cause(obs::kMainOrigin, 3);
  std::set<std::uint64_t> begun;
  std::size_t c3_begins = 0, c3_steps = 0;
  std::set<std::int64_t> c3_tracks;
  for (const Json& ev : events->items()) {
    const std::string ph = ev.find("ph")->as_string();
    if (ph != "s" && ph != "t" && ph != "f") continue;
    const std::uint64_t flow = ev.find("id")->as_uint();
    if (ph == "s") begun.insert(flow);
    else EXPECT_TRUE(begun.count(flow)) << "orphan flow continuation " << flow;
    if (flow != c3) continue;
    c3_tracks.insert(ev.find("tid")->as_int());
    if (ph == "s") ++c3_begins;
    else ++c3_steps;
  }
  EXPECT_EQ(c3_begins, 1u);
  EXPECT_EQ(c3_steps, 3u);
  EXPECT_EQ(c3_tracks.size(), 4u);  // the cascade visibly spans all 4 tracks
  std::remove(path.c_str());
}

}  // namespace
}  // namespace remo::test
