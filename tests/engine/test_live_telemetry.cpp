// Live telemetry: watermarks & convergence lag, queue-depth gauges, the
// periodic exporter, and the stall watchdog — all sampled from a running
// engine (docs/OBSERVABILITY.md).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../support.hpp"

namespace remo::test {
namespace {

EdgeList telemetry_edges(std::uint32_t scale = 10) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  p.seed = 5;
  return generate_rmat(p);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(LiveTelemetry, WatermarksConvergeAtQuiescence) {
  const EdgeList edges = telemetry_edges();
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(edges.front().src);
  engine.inject_init(id, edges.front().src);
  const IngestStats stats =
      engine.ingest(make_streams(edges, 2, StreamOptions{.seed = 3}));

  const obs::GaugeSample s = engine.sample_gauges();
  EXPECT_TRUE(s.quiescent);
  EXPECT_EQ(s.in_flight, 0);
  EXPECT_EQ(s.queue_depth, 0u);
  // Every stream event was counted at the pull site and applied at its
  // owner; the observer-advanced watermark caught up in the same sample.
  EXPECT_EQ(s.events_ingested, stats.events);
  EXPECT_EQ(s.events_applied, s.events_ingested);
  EXPECT_EQ(s.converged_through, s.events_ingested);
  EXPECT_EQ(s.convergence_lag_events, 0u);
  EXPECT_EQ(s.staleness_ns, 0u);
  ASSERT_EQ(s.per_rank.size(), 2u);
  std::uint64_t per_rank_ingested = 0, per_rank_applied = 0;
  for (const auto& g : s.per_rank) {
    EXPECT_EQ(g.queue_depth, 0u);
    per_rank_ingested += g.events_ingested;
    per_rank_applied += g.events_applied;
  }
  EXPECT_EQ(per_rank_ingested, s.events_ingested);
  EXPECT_EQ(per_rank_applied, s.events_applied);
  EXPECT_FALSE(s.safra_mode);
}

TEST(LiveTelemetry, InjectedEdgesAdvanceTheIngestWatermark) {
  Engine engine(EngineConfig{.num_ranks = 2});
  for (const Edge& e : small_graph())
    engine.inject_edge(EdgeEvent{e.src, e.dst, e.weight, EdgeOp::kAdd});
  engine.drain();
  const obs::GaugeSample s = engine.sample_gauges();
  EXPECT_EQ(s.events_ingested, small_graph().size());
  EXPECT_EQ(s.events_applied, small_graph().size());
  EXPECT_EQ(s.convergence_lag_events, 0u);
  EXPECT_TRUE(s.quiescent);
}

TEST(LiveTelemetry, SafraDetectorStateIsReported) {
  const EdgeList edges = telemetry_edges(8);
  EngineConfig cfg{.num_ranks = 2};
  cfg.termination = TerminationMode::kSafra;
  Engine engine(cfg);
  engine.ingest(make_streams(edges, 2, StreamOptions{.seed = 3}));
  const obs::GaugeSample s = engine.sample_gauges();
  EXPECT_TRUE(s.safra_mode);
  EXPECT_TRUE(s.safra_terminated);
  EXPECT_GT(s.safra_probe_rounds, 0u);
  EXPECT_EQ(s.convergence_lag_events, 0u);
}

// Satellite of the PR's concurrency fix: metrics_snapshot() and
// sample_gauges() hammered from another thread while the event loop runs.
// Every cell is a single-writer atomic, so concurrent reads must be safe
// (TSan-clean) and each counter individually monotone across samples.
TEST(LiveTelemetry, SnapshotsAreSafeConcurrentWithIngest) {
  const EdgeList edges = telemetry_edges();
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(edges.front().src);
  engine.inject_init(id, edges.front().src);

  std::atomic<bool> stop{false};
  std::uint64_t hammered = 0;
  std::thread hammer([&] {
    std::uint64_t prev_ingested = 0, prev_topo = 0, prev_sent = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const obs::GaugeSample g = engine.sample_gauges();
      EXPECT_GE(g.events_ingested, prev_ingested);
      EXPECT_GE(g.events_ingested, g.converged_through);
      EXPECT_EQ(g.convergence_lag_events,
                g.events_ingested - g.converged_through);
      prev_ingested = g.events_ingested;

      const obs::MetricsSnapshot m = engine.metrics_snapshot();
      EXPECT_GE(m.counters.topology_events, prev_topo);
      EXPECT_GE(m.counters.messages_sent, prev_sent);
      prev_topo = m.counters.topology_events;
      prev_sent = m.counters.messages_sent;
      ++hammered;
    }
  });

  const IngestStats stats =
      engine.ingest(make_streams(edges, 2, StreamOptions{.seed = 3}));
  stop.store(true, std::memory_order_release);
  hammer.join();
  EXPECT_GT(hammered, 0u);

  // After quiescence the live reads are exact.
  const obs::GaugeSample s = engine.sample_gauges();
  EXPECT_EQ(s.events_ingested, stats.events);
  EXPECT_EQ(s.convergence_lag_events, 0u);
  EXPECT_EQ(engine.metrics_snapshot().counters.topology_events,
            engine.metrics().topology_events);
}

// Tentpole acceptance: a deliberately wedged rank (parked via the
// test-only DebugHooks) with backlog is flagged by the watchdog within
// `stall_periods` samples, and the diagnostic dump names it.
TEST(LiveTelemetry, WatchdogDetectsAParkedRankWithBacklog) {
  std::atomic<bool> parked{true};
  EngineConfig cfg{.num_ranks = 2};
  cfg.debug.park_rank_while = &parked;
  cfg.debug.park_rank = 1;
  Engine engine(cfg);

  // Pile events onto rank 1's mailbox; the parked rank never drains them.
  std::vector<VertexId> rank1_owned;
  for (VertexId v = 0; rank1_owned.size() < 8 && v < 10'000; ++v)
    if (engine.partitioner().owner(v) == 1) rank1_owned.push_back(v);
  ASSERT_EQ(rank1_owned.size(), 8u);
  for (std::size_t i = 0; i + 1 < rank1_owned.size(); ++i)
    engine.inject_edge(
        EdgeEvent{rank1_owned[i], rank1_owned[i + 1], 1, EdgeOp::kAdd});

  {
    const obs::GaugeSample s = engine.sample_gauges();
    EXPECT_GT(s.per_rank.at(1).queue_depth, 0u);
    EXPECT_EQ(s.per_rank.at(1).events_applied, 0u);
    EXPECT_FALSE(s.quiescent);
    EXPECT_GT(s.convergence_lag_events, 0u);
  }

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<obs::StallWatchdog::Report> reports;
  obs::StallWatchdog::Config wcfg;
  wcfg.period = std::chrono::milliseconds(10);
  wcfg.stall_periods = 3;
  wcfg.extra_dump = [&](std::uint32_t r) { return engine.stall_dump(r); };
  obs::StallWatchdog dog([&] { return engine.sample_gauges(); }, wcfg,
                         [&](const obs::StallWatchdog::Report& r) {
                           std::lock_guard lock(mutex);
                           reports.push_back(r);
                           cv.notify_all();
                         });

  obs::StallWatchdog::Report first;
  {
    std::unique_lock lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return !reports.empty(); }));
    first = reports.front();
  }
  EXPECT_EQ(first.rank, 1u);
  EXPECT_EQ(first.periods, wcfg.stall_periods);  // within 3 sampling periods
  EXPECT_FALSE(first.recovered);
  EXPECT_TRUE(dog.rank_flagged(1));
  EXPECT_FALSE(dog.rank_flagged(0));
  EXPECT_EQ(dog.stalls_detected(), 1u);
  EXPECT_NE(first.dump.find("rank 1 made no progress"), std::string::npos);
  EXPECT_NE(first.dump.find("<<<"), std::string::npos);
  EXPECT_NE(first.dump.find("rank 1 counters"), std::string::npos);  // extra_dump
  EXPECT_GT(first.sample.per_rank.at(1).queue_depth, 0u);

  // Unpark: the rank drains its backlog, the watchdog reports recovery,
  // and the watermark catches up.
  parked.store(false, std::memory_order_release);
  engine.drain();
  {
    std::unique_lock lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30), [&] {
      return reports.size() >= 2 && reports.back().recovered;
    }));
  }
  EXPECT_FALSE(dog.rank_flagged(1));
  dog.stop();
  const obs::GaugeSample s = engine.sample_gauges();
  EXPECT_EQ(s.convergence_lag_events, 0u);
  EXPECT_TRUE(s.quiescent);
}

TEST(LiveTelemetry, ExporterOnLiveEngineEndsWithQuiescentRecord) {
  const std::string path = ::testing::TempDir() + "remo_live_gauges.jsonl";
  const EdgeList edges = telemetry_edges();
  {
    Engine engine(EngineConfig{.num_ranks = 2});
    obs::MetricsExporter::Config cfg;
    cfg.period = std::chrono::milliseconds(5);
    cfg.path = path;
    obs::MetricsExporter exporter([&] { return engine.sample_gauges(); }, cfg);
    engine.ingest(make_streams(edges, 2, StreamOptions{.seed = 3}));
    exporter.stop();  // final sample records the quiescent state
    EXPECT_GE(exporter.samples(), 1u);
    EXPECT_EQ(exporter.last_sample().convergence_lag_events, 0u);
    EXPECT_TRUE(exporter.last_sample().quiescent);
  }
  std::istringstream in(slurp(path));
  std::string line, last;
  std::uint64_t records = 0;
  while (std::getline(in, line)) {
    std::string err;
    const Json j = Json::parse(line, &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(j.find("schema")->as_string(), "remo-gauges-1");
    last = line;
    ++records;
  }
  ASSERT_GE(records, 1u);
  std::string err;
  const Json final_record = Json::parse(last, &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(final_record.find("convergence_lag_events")->as_uint(), 0u);
  EXPECT_TRUE(final_record.find("quiescent")->as_bool());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace remo::test
