#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "../support.hpp"

namespace remo::test {
namespace {

EdgeList test_edges(std::uint32_t scale = 10) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  p.seed = 5;
  return generate_rmat(p);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(EngineObservability, SnapshotCountersMatchLegacyMetrics) {
  const EdgeList edges = test_edges();
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(edges.front().src);
  engine.inject_init(id, edges.front().src);
  engine.ingest(make_streams(edges, 2, StreamOptions{.seed = 3}));
  // Harvesting a snapshot fans control visitors out from the main thread;
  // they must land in the merged counters or the partition below breaks.
  (void)engine.collect_quiescent(id);

  const MetricsSummary legacy = engine.metrics();
  const obs::MetricsSnapshot snap = engine.metrics_snapshot();
  EXPECT_EQ(snap.counters.topology_events, legacy.topology_events);
  EXPECT_EQ(snap.counters.algorithm_events, legacy.algorithm_events);
  EXPECT_EQ(snap.counters.messages_sent, legacy.messages_sent);
  EXPECT_EQ(snap.counters.edges_stored, legacy.edges_stored);
  ASSERT_EQ(snap.per_rank.size(), 2u);

  // Local + remote partitions the routed sends exactly.
  EXPECT_EQ(snap.counters.local_messages + snap.counters.remote_messages +
                snap.counters.control_messages,
            snap.counters.messages_sent);
  EXPECT_GT(snap.counters.local_messages, 0u);   // self-sends exist at 2 ranks
  EXPECT_GT(snap.counters.remote_messages, 0u);
  EXPECT_GE(snap.counters.control_messages, 2u);  // the harvest fan-out
}

TEST(EngineObservability, MessagePartitionHoldsUnderDeleteHeavyWorkload) {
  // `local + remote + control == messages_sent` must survive the messier
  // paths: delete events (reverse-deletes, cache invalidation), repair
  // waves, and the snapshot drains that interleave control traffic with
  // basic visitors mid-stream.
  const EdgeList edges = test_edges(9);
  std::vector<EdgeEvent> events;
  events.reserve(edges.size() * 2);
  for (const Edge& e : edges)
    events.push_back(EdgeEvent{e.src, e.dst, kDefaultWeight, EdgeOp::kAdd});
  // Delete-heavy: remove roughly 60% of what was added (adds come first in
  // each round-robin stream, so a delete never precedes its add).
  for (std::size_t i = 0; i < edges.size(); ++i)
    if (i % 5 < 3)
      events.push_back(EdgeEvent{edges[i].src, edges[i].dst, kDefaultWeight,
                                 EdgeOp::kDelete});
  const StreamSet streams = split_events(std::move(events), 3);

  Engine engine(EngineConfig{.num_ranks = 3});
  DynamicBfs::Options opts;
  opts.support_deletes = true;  // repair() below needs the delete machinery
  auto [id, bfs] = engine.attach_make<DynamicBfs>(edges.front().src, opts);
  engine.inject_init(id, edges.front().src);
  engine.ingest_async(streams);

  // Mid-stream snapshot drains: both the pausing and the versioned flavour
  // push control fan-outs while basic traffic is still flowing.
  (void)engine.collect_quiescent(id);
  (void)engine.collect_versioned(id);
  engine.await_quiescence();
  engine.repair(id);  // anchors + probes: two more control fan-outs

  const obs::MetricsSnapshot snap = engine.metrics_snapshot();
  EXPECT_EQ(snap.counters.local_messages + snap.counters.remote_messages +
                snap.counters.control_messages,
            snap.counters.messages_sent);
  // Per-rank rows partition too (control sends from the main thread are
  // folded into the aggregate only).
  for (const auto& r : snap.per_rank)
    EXPECT_EQ(r.counters.local_messages + r.counters.remote_messages +
                  r.counters.control_messages,
              r.counters.messages_sent);
  EXPECT_GT(snap.counters.control_messages, 0u);
  EXPECT_EQ(snap.counters.topology_events,
            engine.metrics().topology_events);
}

TEST(EngineObservability, LatencyHistogramPopulates) {
  const EdgeList edges = test_edges();
  EngineConfig cfg{.num_ranks = 2};
  cfg.obs.latency_sample_shift = 0;  // time every event (default amortises)
  Engine engine(cfg);
  engine.ingest(make_streams(edges, 2, StreamOptions{.seed = 3}));

  const obs::MetricsSnapshot snap = engine.metrics_snapshot();
  // At shift 0 every topology event is timed. Ranks process adds at their
  // owner, so sample count equals processed topology events.
  EXPECT_EQ(snap.update_latency_ns.count, snap.counters.topology_events);
  EXPECT_GT(snap.update_latency_ns.p50(), 0u);
  EXPECT_GE(snap.update_latency_ns.p99(), snap.update_latency_ns.p50());
  EXPECT_GE(snap.update_latency_ns.max, snap.update_latency_ns.min);

  // The merged histogram equals the per-rank sum.
  std::uint64_t per_rank_total = 0;
  for (const auto& r : snap.per_rank) per_rank_total += r.update_latency_ns.count;
  EXPECT_EQ(per_rank_total, snap.update_latency_ns.count);
}

TEST(EngineObservability, SamplingReducesSampleCount) {
  const EdgeList edges = test_edges();
  EngineConfig cfg{.num_ranks = 2};
  cfg.obs.latency_sample_shift = 4;  // every 16th event
  Engine engine(cfg);
  engine.ingest(make_streams(edges, 2, StreamOptions{.seed = 3}));

  const obs::MetricsSnapshot snap = engine.metrics_snapshot();
  EXPECT_GT(snap.update_latency_ns.count, 0u);
  EXPECT_LE(snap.update_latency_ns.count,
            snap.counters.topology_events / 16 + 2 * engine.num_ranks());
}

TEST(EngineObservability, DisablingLatencyYieldsNoSamples) {
  const EdgeList edges = test_edges();
  EngineConfig cfg{.num_ranks = 2};
  cfg.obs.latency = false;
  Engine engine(cfg);
  engine.ingest(make_streams(edges, 2, StreamOptions{.seed = 3}));
  EXPECT_EQ(engine.metrics_snapshot().update_latency_ns.count, 0u);
}

TEST(EngineObservability, PhaseTimersAccountIngestAndPropagate) {
  const EdgeList edges = test_edges();
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(edges.front().src);
  engine.inject_init(id, edges.front().src);
  engine.ingest(make_streams(edges, 2, StreamOptions{.seed = 3}));
  const Snapshot s = engine.collect_quiescent(id);
  (void)s;

  const obs::PhaseSnapshot phases = engine.metrics_snapshot().phases;
  EXPECT_GT(phases[obs::Phase::kIngest], 0u);
  EXPECT_GT(phases[obs::Phase::kPropagate], 0u);
  // collect_quiescent ran a harvest on each rank.
  EXPECT_GT(phases[obs::Phase::kSnapshotDrain], 0u);
  EXPECT_GT(phases.total(), 0u);
}

TEST(EngineObservability, StatsJsonHasPercentiles) {
  const EdgeList edges = test_edges();
  Engine engine(EngineConfig{.num_ranks = 2});
  engine.ingest(make_streams(edges, 2, StreamOptions{.seed = 3}));

  const Json j = engine.metrics_snapshot().to_json();
  EXPECT_EQ(j.find("schema")->as_string(), "remo-stats-1");
  EXPECT_EQ(j.find("ranks")->as_uint(), 2u);
  const Json* lat = j.find("update_latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_GT(lat->find("count")->as_uint(), 0u);
  for (const char* key : {"p50_ns", "p90_ns", "p99_ns", "p999_ns"})
    EXPECT_GT(lat->find(key)->as_uint(), 0u) << key;
  ASSERT_NE(j.find("per_rank"), nullptr);
  EXPECT_EQ(j.find("per_rank")->size(), 2u);

  // The JSON must itself round-trip through the parser.
  std::string err;
  Json::parse(j.dump(2), &err);
  EXPECT_TRUE(err.empty()) << err;
}

TEST(EngineObservability, TracingOffByDefault) {
  Engine engine(EngineConfig{.num_ranks = 1});
  EXPECT_FALSE(engine.tracing_enabled());
  EXPECT_FALSE(engine.write_trace(::testing::TempDir() + "never.json"));
}

TEST(EngineObservability, TraceRoundTrip) {
  const EdgeList edges = test_edges();
  EngineConfig cfg{.num_ranks = 2};
  cfg.obs.trace = true;
  Engine engine(cfg);
  auto [id, bfs] = engine.attach_make<DynamicBfs>(edges.front().src);
  engine.inject_init(id, edges.front().src);
  engine.ingest(make_streams(edges, 2, StreamOptions{.seed = 3}));
  const Snapshot s = engine.collect_quiescent(id);
  (void)s;

  ASSERT_EQ(engine.tracing_enabled(), obs::kTraceCompiledIn);
  const std::string path = ::testing::TempDir() + "remo_engine_trace.json";
  if (!obs::kTraceCompiledIn) {
    EXPECT_FALSE(engine.write_trace(path));
    return;
  }
  ASSERT_TRUE(engine.write_trace(path));

  std::string err;
  const Json doc = Json::parse(slurp(path), &err);
  ASSERT_TRUE(err.empty()) << err;
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  // Per-track monotonic timestamps + at least one slice per rank.
  std::map<std::int64_t, double> last_ts;
  std::map<std::int64_t, int> slices_per_track;
  for (const Json& ev : events->items()) {
    if (ev.find("ph")->as_string() != "X") continue;
    const std::int64_t tid = ev.find("tid")->as_int();
    const double ts = ev.find("ts")->as_double();
    if (auto it = last_ts.find(tid); it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "track " << tid;
    }
    last_ts[tid] = ts;
    ++slices_per_track[tid];
  }
  EXPECT_GT(slices_per_track[0], 0);  // rank 0
  EXPECT_GT(slices_per_track[1], 0);  // rank 1
  EXPECT_GT(slices_per_track[2], 0);  // main thread (tid = num_ranks)
  std::remove(path.c_str());
}

}  // namespace
}  // namespace remo::test
