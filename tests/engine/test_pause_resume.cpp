// Stream pause/resume and mid-ingestion quiescent collection.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "../support.hpp"

namespace remo::test {
namespace {

TEST(PauseResume, PausingHaltsPullsAndResumingCompletes) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 300, .num_edges = 30000, .seed = 90});
  Engine engine(EngineConfig{.num_ranks = 2});
  const StreamSet streams = make_streams(edges, 2);
  engine.ingest_async(streams);

  engine.pause_streams();
  // Let in-flight work settle, then observe that ingestion stops moving.
  while (!engine.idle()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const std::uint64_t stored_at_pause = engine.total_stored_edges();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(engine.total_stored_edges(), stored_at_pause);

  engine.resume_streams();
  const IngestStats stats = engine.await_quiescence();
  EXPECT_EQ(stats.events, edges.size());
}

TEST(PauseResume, QuiescentCollectionMidStreamIsAPrefixState) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 300, .num_edges = 20000, .seed = 91});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
  engine.inject_init(id, source);
  const StreamSet streams = make_streams(edges, 2);
  engine.ingest_async(streams);

  // collect_quiescent pauses the streams internally, drains, gathers,
  // resumes — the result must be a consistent BFS prefix state.
  const Snapshot cut = engine.collect_quiescent(id);
  engine.await_quiescence();

  if (cut.at(source) != kInfiniteState) {
    EXPECT_EQ(cut.at(source), 1u);
    for (const auto& [v, level] : cut) {
      if (v == source) continue;
      bool supported = false;
      const CsrGraph::Dense dv = g.dense_of(v);
      for (const CsrGraph::Dense u : g.neighbours(dv))
        if (cut.at(g.external_of(u)) == level - 1) supported = true;
      EXPECT_TRUE(supported) << "vertex " << v;
    }
  }
  expect_matches_oracle(engine, id, g, static_bfs(g, g.dense_of(source)));
}

TEST(PauseResume, CollectionsComposeBackToBack) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 200, .num_edges = 15000, .seed = 92});
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, cc] = engine.attach_make<DynamicCc>();
  const StreamSet streams = make_streams(edges, 2);
  engine.ingest_async(streams);

  // Alternate quiescent and versioned collections while ingesting.
  for (int i = 0; i < 3; ++i) {
    const Snapshot q = engine.collect_quiescent(id);
    const Snapshot v = engine.collect_versioned(id);
    // CC labels only grow; the later cut dominates pointwise.
    for (const auto& [vertex, label] : q) EXPECT_GE(v.at(vertex), label);
  }
  engine.await_quiescence();
  expect_matches_oracle(engine, id, undirected_csr(edges),
                        static_cc_union_find(undirected_csr(edges)));
}

}  // namespace
}  // namespace remo::test
