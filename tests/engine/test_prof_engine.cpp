// Live-engine profiling smoke: counters flow end-to-end on a real ingest
// with the auto-resolved backend, and the noop backend degrades gracefully
// (zeros, degraded flag, no crash) — the CI-container guarantee.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "../support.hpp"

namespace remo::test {
namespace {

EdgeList small_graph() {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = 42;
  return generate_rmat(p);
}

IngestStats run_ingest(Engine& engine, const EdgeList& edges, RankId ranks) {
  const StreamSet streams = make_streams(edges, ranks, StreamOptions{.seed = 7});
  return engine.ingest(streams);
}

TEST(ProfEngine, AutoBackendCountersFlow) {
  EngineConfig cfg;
  cfg.num_ranks = 2;
  cfg.obs.prof = true;
  cfg.obs.prof_sample_shift = 0;  // read every boundary: deterministic flow
  Engine engine(cfg);
  EXPECT_TRUE(engine.prof_enabled());
  run_ingest(engine, small_graph(), cfg.num_ranks);

  const obs::ProfSnapshot snap = engine.prof_snapshot();
  EXPECT_TRUE(snap.enabled);
  EXPECT_FALSE(snap.backend.empty());
  ASSERT_EQ(snap.per_rank.size(), 2u);
  const obs::RankProfSnapshot totals = snap.totals();
  EXPECT_GT(totals.boundaries, 0u) << "phase boundaries must be observed";
  if (snap.backend == "noop") {
    // Container denies both perf_event and thread rusage: nothing to assert
    // beyond survival, which this test just demonstrated.
    EXPECT_TRUE(snap.degraded);
  } else {
    EXPECT_GT(totals.reads, 0u);
    EXPECT_GT(totals.total_attributed_ns(), 0u);
    // Whatever the backend provides must actually accumulate: perf_event
    // gives cycles, rusage gives task-clock.
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < obs::kProfCounterCount; ++i)
      sum += totals.total().v[i];
    EXPECT_GT(sum, 0u);
  }
  if (snap.backend == "perf_event") {
    EXPECT_FALSE(snap.degraded);
    EXPECT_GT(totals.total()[obs::ProfCounter::kCycles], 0u);
    EXPECT_GT(totals.total()[obs::ProfCounter::kInstructions], 0u);
  }
}

TEST(ProfEngine, NoopBackendDegradesGracefully) {
  EngineConfig cfg;
  cfg.num_ranks = 2;
  cfg.obs.prof = true;
  cfg.obs.prof_backend = obs::ProfBackendKind::kNoop;
  Engine engine(cfg);
  const IngestStats stats = run_ingest(engine, small_graph(), cfg.num_ranks);
  EXPECT_GT(stats.events, 0u);

  const obs::ProfSnapshot snap = engine.prof_snapshot();
  EXPECT_TRUE(snap.enabled);
  EXPECT_TRUE(snap.degraded);
  EXPECT_EQ(snap.backend, "noop");
  EXPECT_EQ(snap.available, 0u);
  const obs::RankProfSnapshot totals = snap.totals();
  EXPECT_EQ(totals.reads, 0u);
  for (std::size_t i = 0; i < obs::kProfCounterCount; ++i)
    EXPECT_EQ(totals.total().v[i], 0u);
  // The report still renders, with the degraded banner.
  const std::string report = obs::format_prof_report(snap);
  EXPECT_NE(report.find("degraded backend"), std::string::npos);
}

TEST(ProfEngine, DisabledEngineHasNoProf) {
  EngineConfig cfg;
  cfg.num_ranks = 1;
  Engine engine(cfg);
  EXPECT_FALSE(engine.prof_enabled());
  run_ingest(engine, small_graph(), 1);
  const obs::MetricsSnapshot snap = engine.metrics_snapshot();
  EXPECT_FALSE(snap.prof.enabled);
  EXPECT_EQ(snap.to_json().find("prof"), nullptr);
}

TEST(ProfEngine, SnapshotFlowsIntoStatsAndGauges) {
  EngineConfig cfg;
  cfg.num_ranks = 2;
  cfg.obs.prof = true;
  cfg.obs.prof_sample_shift = 0;
  Engine engine(cfg);
  run_ingest(engine, small_graph(), cfg.num_ranks);

  const Json stats = engine.metrics_snapshot().to_json();
  const Json* prof = stats.find("prof");
  ASSERT_NE(prof, nullptr);
  EXPECT_EQ(prof->find("schema")->as_string(), "remo-prof-1");

  const obs::GaugeSample g = engine.sample_gauges();
  EXPECT_TRUE(g.prof.present);
  EXPECT_FALSE(g.prof.backend.empty());
  ASSERT_NE(g.to_json().find("prof"), nullptr);
}

TEST(ProfEngine, WriteProfRoundTrips) {
  EngineConfig cfg;
  cfg.num_ranks = 2;
  cfg.obs.prof = true;
  cfg.obs.prof_sample_shift = 0;
  Engine engine(cfg);
  run_ingest(engine, small_graph(), cfg.num_ranks);

  const std::string path = ::testing::TempDir() + "prof_round_trip.json";
  ASSERT_TRUE(engine.write_prof(path));
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  std::string error;
  const Json doc = Json::parse(text.str(), &error);
  ASSERT_TRUE(error.empty()) << error;
  obs::ProfSnapshot back;
  ASSERT_TRUE(obs::ProfSnapshot::from_json(doc, back, &error)) << error;
  EXPECT_EQ(back.per_rank.size(), 2u);
  EXPECT_EQ(back.backend, engine.prof_snapshot().backend);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace remo::test
