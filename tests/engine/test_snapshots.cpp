// Global state collection (Sections II-C, III-D): quiescent harvests,
// versioned (Chandy-Lamport-style) collections during live ingestion, and
// snapshot-vs-oracle consistency at the cut.
#include <gtest/gtest.h>

#include "../support.hpp"

namespace remo::test {
namespace {

TEST(Snapshots, QuiescentCollectionMatchesStateOf) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 200, .num_edges = 800, .seed = 5});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  Engine engine(EngineConfig{.num_ranks = 3});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
  engine.inject_init(id, source);
  engine.ingest(make_streams(edges, 3));

  const Snapshot snap = engine.collect_quiescent(id);
  expect_snapshot_matches_oracle(snap, g, static_bfs(g, g.dense_of(source)));
  // Identity vertices are excluded from the entry list.
  for (const auto& [v, val] : snap) EXPECT_NE(val, kInfiniteState);
}

TEST(Snapshots, EmptyProgramYieldsEmptySnapshot) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(0);
  const Snapshot snap = engine.collect_quiescent(id);
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.at(123), kInfiniteState);
}

// The core Section III-D property: a versioned collection cut after prefix
// P of the stream equals the quiescent state of a run that ingested only P —
// while ingestion of the suffix continues during the collection.
TEST(Snapshots, VersionedCollectionEqualsPrefixOracle) {
  const std::uint64_t kSeed = 23;
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 300, .num_edges = 1200, .seed = kSeed});
  const CsrGraph g_full = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g_full);

  // Phase 1: ingest the prefix, collect VERSIONED while the suffix streams
  // in immediately afterwards.
  const std::size_t kPrefix = edges.size() / 2;
  EdgeList prefix(edges.begin(), edges.begin() + kPrefix);
  EdgeList suffix(edges.begin() + kPrefix, edges.end());

  Engine engine(EngineConfig{.num_ranks = 3});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
  engine.inject_init(id, source);
  const StreamSet s1 = make_streams(prefix, 3, StreamOptions{.seed = kSeed});
  engine.ingest(s1);

  // Start the suffix asynchronously, then cut. The cut lands at some point
  // at-or-after the prefix; to make the expected state exact we cut
  // *before* starting the suffix ingestion.
  const Snapshot cut = engine.collect_versioned(id);

  const StreamSet s2 = make_streams(suffix, 3, StreamOptions{.seed = kSeed + 1});
  engine.ingest(s2);

  // The cut must equal the prefix oracle...
  const CsrGraph g_prefix = undirected_csr(prefix);
  expect_snapshot_matches_oracle(cut, g_prefix,
                                 static_bfs(g_prefix, g_prefix.dense_of(source)));
  // ...and the live state the full oracle.
  expect_matches_oracle(engine, id, g_full,
                        static_bfs(g_full, g_full.dense_of(source)));
}

TEST(Snapshots, VersionedCollectionDuringLiveIngestionIsConsistent) {
  // Cut while events are genuinely in flight. The exact cut point is
  // nondeterministic, so validate *consistency*: the snapshot must be a
  // valid BFS level assignment for SOME prefix — checked via causal rules:
  // level(source)=1 and every snapshotted vertex has a snapshotted
  // level-1 predecessor among the final graph's neighbours.
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 400, .num_edges = 4000, .seed = 77});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  Engine engine(EngineConfig{.num_ranks = 3});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
  engine.inject_init(id, source);
  const StreamSet streams = make_streams(edges, 3);
  engine.ingest_async(streams);
  const Snapshot cut = engine.collect_versioned(id);  // mid-flight
  engine.await_quiescence();

  EXPECT_EQ(cut.at(source), 1u);
  for (const auto& [v, level] : cut) {
    if (v == source) continue;
    ASSERT_GT(level, 1u);
    // Some neighbour in the final graph carries level-1 in the snapshot.
    const CsrGraph::Dense dv = g.dense_of(v);
    ASSERT_NE(dv, CsrGraph::kNoVertex);
    bool supported = false;
    for (const CsrGraph::Dense u : g.neighbours(dv))
      if (cut.at(g.external_of(u)) == level - 1) supported = true;
    EXPECT_TRUE(supported) << "vertex " << v << " level " << level
                           << " has no snapshot predecessor";
  }

  // And the final live state is exact.
  expect_matches_oracle(engine, id, g, static_bfs(g, g.dense_of(source)));
}

TEST(Snapshots, RepeatedVersionedCollectionsAreMonotone) {
  // BFS levels only improve; successive cuts must be pointwise no-worse.
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 300, .num_edges = 3000, .seed = 41});
  Engine engine(EngineConfig{.num_ranks = 2});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);
  auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
  engine.inject_init(id, source);

  const StreamSet streams = make_streams(edges, 2);
  engine.ingest_async(streams);
  const Snapshot c1 = engine.collect_versioned(id);
  const Snapshot c2 = engine.collect_versioned(id);
  engine.await_quiescence();
  const Snapshot c3 = engine.collect_quiescent(id);

  for (const auto& [v, lvl1] : c1) {
    EXPECT_LE(c2.at(v), lvl1) << "vertex " << v;
    EXPECT_LE(c3.at(v), lvl1) << "vertex " << v;
  }
  for (const auto& [v, lvl2] : c2) EXPECT_LE(c3.at(v), lvl2) << "vertex " << v;
}

TEST(Snapshots, CollectionForOneProgramDoesNotDisturbAnother) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 200, .num_edges = 1000, .seed = 55});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  Engine engine(EngineConfig{.num_ranks = 2});
  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(source);
  auto [cc_id, cc] = engine.attach_make<DynamicCc>();
  engine.inject_init(bfs_id, source);

  const StreamSet streams = make_streams(edges, 2);
  engine.ingest_async(streams);
  (void)engine.collect_versioned(bfs_id);  // splits state engine-wide
  engine.await_quiescence();

  expect_matches_oracle(engine, bfs_id, g, static_bfs(g, g.dense_of(source)));
  expect_matches_oracle(engine, cc_id, g, static_cc_union_find(g));
}

TEST(Snapshots, SnapshotLookupSemantics) {
  std::vector<Snapshot::Entry> entries = {{5, 50}, {1, 10}, {3, 30}};
  const Snapshot snap(std::move(entries), /*identity=*/kInfiniteState);
  EXPECT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.at(1), 10u);
  EXPECT_EQ(snap.at(3), 30u);
  EXPECT_EQ(snap.at(5), 50u);
  EXPECT_EQ(snap.at(0), kInfiniteState);
  EXPECT_EQ(snap.at(4), kInfiniteState);
  EXPECT_EQ(snap.at(999), kInfiniteState);
}

}  // namespace
}  // namespace remo::test
