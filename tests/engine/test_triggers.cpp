// "When" queries (Section III-E): no false positives, fire-exactly-once,
// prompt firing on already-satisfied registration, and when_any semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

#include "../support.hpp"

namespace remo::test {
namespace {

TEST(Triggers, BfsPathLengthQueryFiresOnceAtThreshold) {
  // "trigger a callback immediately after a node ... has a path shorter
  // than a specified length to the BFS source" (Section V-B).
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(0);
  engine.inject_init(id, 0);

  std::atomic<int> fires{0};
  std::atomic<StateWord> level_at_fire{0};
  engine.when(id, 4, [](StateWord lvl) { return lvl <= 4; },
              [&](VertexId, StateWord lvl) {
                fires.fetch_add(1);
                level_at_fire.store(lvl);
              });

  // Long path first: 0-10-11-12-4 gives level 5 (> 4): must not fire.
  for (const auto& [a, b] : std::vector<std::pair<VertexId, VertexId>>{
           {0, 10}, {10, 11}, {11, 12}, {12, 4}}) {
    engine.inject_edge({a, b, 1, EdgeOp::kAdd});
  }
  engine.drain();
  EXPECT_EQ(fires.load(), 0);

  // Shortcut 0-4: level drops to 2: fires exactly once.
  engine.inject_edge({0, 4, 1, EdgeOp::kAdd});
  engine.drain();
  EXPECT_EQ(fires.load(), 1);
  EXPECT_EQ(level_at_fire.load(), 2u);

  // Further improvements cannot re-fire a retired trigger.
  engine.inject_edge({4, 99, 1, EdgeOp::kAdd});
  engine.drain();
  EXPECT_EQ(fires.load(), 1);
}

TEST(Triggers, RegistrationOnSatisfiedStateFiresPromptly) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(0);
  engine.inject_init(id, 0);
  engine.inject_edge({0, 1, 1, EdgeOp::kAdd});
  engine.drain();
  ASSERT_EQ(engine.state_of(id, 1), 2u);

  std::atomic<int> fires{0};
  engine.when(id, 1, [](StateWord lvl) { return lvl <= 2; },
              [&](VertexId, StateWord) { fires.fetch_add(1); });
  // Absorption happens on the rank thread within its park interval.
  for (int spin = 0; spin < 2000 && fires.load() == 0; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(fires.load(), 1);
}

TEST(Triggers, TriggersDuringSaturatedIngestion) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 300, .num_edges = 1500, .seed = 31});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);
  const auto oracle = static_bfs(g, g.dense_of(source));

  // Pick ten reachable target vertices.
  std::vector<VertexId> targets;
  for (CsrGraph::Dense v = 0; v < g.num_vertices() && targets.size() < 10; ++v)
    if (oracle[v] != kInfiniteState && g.external_of(v) != source)
      targets.push_back(g.external_of(v));

  Engine engine(EngineConfig{.num_ranks = 3});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
  engine.inject_init(id, source);

  std::atomic<int> fires{0};
  for (const VertexId t : targets)
    engine.when(id, t, [](StateWord lvl) { return lvl != kInfiniteState; },
                [&](VertexId, StateWord) { fires.fetch_add(1); });

  engine.ingest(make_streams(edges, 3));
  EXPECT_EQ(fires.load(), static_cast<int>(targets.size()));
}

TEST(Triggers, NoFalsePositiveForUnreachableVertex) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(0);
  engine.inject_init(id, 0);

  std::atomic<int> fires{0};
  engine.when(id, 7, [](StateWord lvl) { return lvl != kInfiniteState; },
              [&](VertexId, StateWord) { fires.fetch_add(1); });

  engine.ingest(make_streams(small_graph(), 2));  // 7 is in the other component
  EXPECT_EQ(fires.load(), 0);
}

TEST(Triggers, WhenAnyFiresAtMostOncePerVertex) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, cc] = engine.attach_make<DynamicCc>();

  std::mutex mu;
  std::set<VertexId> fired;
  bool duplicate = false;
  engine.when_any(id, [](StateWord label) { return label != 0; },
                  [&](VertexId v, StateWord) {
                    std::lock_guard g(mu);
                    duplicate |= !fired.insert(v).second;
                  });

  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 64, .num_edges = 256, .seed = 12});
  engine.ingest(make_streams(edges, 2));

  std::lock_guard g(mu);
  EXPECT_FALSE(duplicate);
  EXPECT_GT(fired.size(), 0u);
  // Every vertex that exists fired exactly once (label transitions 0 -> h).
  EXPECT_EQ(fired.size(), engine.total_stored_vertices());
}

TEST(Triggers, VertexTriggerDoesNotRefireAcrossDeleteReAdd) {
  // Pins the delete-era contract documented in core/query.hpp: a vertex
  // trigger is retired before its action runs, so fire-exactly-once holds
  // even when repair regresses the vertex and a later re-add makes the
  // predicate true a second time.
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(
      0, DynamicBfs::Options{.support_deletes = true});
  engine.inject_init(id, 0);

  std::atomic<int> fires{0};
  engine.when(id, 2, [](StateWord lvl) { return lvl != kInfiniteState; },
              [&](VertexId, StateWord) { fires.fetch_add(1); });

  // Chain 0-1-2: vertex 2 becomes reachable (level 3), fires once.
  engine.inject_edge({0, 1, 1, EdgeOp::kAdd});
  engine.inject_edge({1, 2, 1, EdgeOp::kAdd});
  engine.drain();
  ASSERT_EQ(engine.state_of(id, 2), 3u);
  EXPECT_EQ(fires.load(), 1);

  // Cut 1-2 and repair: vertex 2 regresses to unreachable.
  engine.inject_edge({1, 2, 1, EdgeOp::kDelete});
  engine.drain();
  engine.repair(id);
  ASSERT_EQ(engine.state_of(id, 2), kInfiniteState);

  // Re-add: the predicate crosses upward again, but the trigger retired at
  // its first firing — the count must stay 1.
  engine.inject_edge({1, 2, 1, EdgeOp::kAdd});
  engine.drain();
  ASSERT_EQ(engine.state_of(id, 2), 3u);
  EXPECT_EQ(fires.load(), 1);
}

TEST(Triggers, WhenAnyMayRefirePerVertexUnderDeleteReAdd) {
  // Companion pin: when_any's "at most once per vertex" only holds in the
  // add-only regime. Delete-era repair regresses the vertex below the
  // predicate; the re-add is a fresh upward crossing and fires again
  // (callbacks that need at-most-once must dedupe, see core/query.hpp).
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(
      0, DynamicBfs::Options{.support_deletes = true});
  engine.inject_init(id, 0);

  std::atomic<int> fires_for_2{0};
  engine.when_any(id, [](StateWord lvl) { return lvl != kInfiniteState; },
                  [&](VertexId v, StateWord) {
                    if (v == 2) fires_for_2.fetch_add(1);
                  });

  engine.inject_edge({0, 1, 1, EdgeOp::kAdd});
  engine.inject_edge({1, 2, 1, EdgeOp::kAdd});
  engine.drain();
  EXPECT_EQ(fires_for_2.load(), 1);

  engine.inject_edge({1, 2, 1, EdgeOp::kDelete});
  engine.drain();
  engine.repair(id);
  ASSERT_EQ(engine.state_of(id, 2), kInfiniteState);

  engine.inject_edge({1, 2, 1, EdgeOp::kAdd});
  engine.drain();
  ASSERT_EQ(engine.state_of(id, 2), 3u);
  EXPECT_EQ(fires_for_2.load(), 2);
}

}  // namespace
}  // namespace remo::test
