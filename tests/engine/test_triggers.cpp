// "When" queries (Section III-E): no false positives, fire-exactly-once,
// prompt firing on already-satisfied registration, and when_any semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

#include "../support.hpp"

namespace remo::test {
namespace {

TEST(Triggers, BfsPathLengthQueryFiresOnceAtThreshold) {
  // "trigger a callback immediately after a node ... has a path shorter
  // than a specified length to the BFS source" (Section V-B).
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(0);
  engine.inject_init(id, 0);

  std::atomic<int> fires{0};
  std::atomic<StateWord> level_at_fire{0};
  engine.when(id, 4, [](StateWord lvl) { return lvl <= 4; },
              [&](VertexId, StateWord lvl) {
                fires.fetch_add(1);
                level_at_fire.store(lvl);
              });

  // Long path first: 0-10-11-12-4 gives level 5 (> 4): must not fire.
  for (const auto& [a, b] : std::vector<std::pair<VertexId, VertexId>>{
           {0, 10}, {10, 11}, {11, 12}, {12, 4}}) {
    engine.inject_edge({a, b, 1, EdgeOp::kAdd});
  }
  engine.drain();
  EXPECT_EQ(fires.load(), 0);

  // Shortcut 0-4: level drops to 2: fires exactly once.
  engine.inject_edge({0, 4, 1, EdgeOp::kAdd});
  engine.drain();
  EXPECT_EQ(fires.load(), 1);
  EXPECT_EQ(level_at_fire.load(), 2u);

  // Further improvements cannot re-fire a retired trigger.
  engine.inject_edge({4, 99, 1, EdgeOp::kAdd});
  engine.drain();
  EXPECT_EQ(fires.load(), 1);
}

TEST(Triggers, RegistrationOnSatisfiedStateFiresPromptly) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(0);
  engine.inject_init(id, 0);
  engine.inject_edge({0, 1, 1, EdgeOp::kAdd});
  engine.drain();
  ASSERT_EQ(engine.state_of(id, 1), 2u);

  std::atomic<int> fires{0};
  engine.when(id, 1, [](StateWord lvl) { return lvl <= 2; },
              [&](VertexId, StateWord) { fires.fetch_add(1); });
  // Absorption happens on the rank thread within its park interval.
  for (int spin = 0; spin < 2000 && fires.load() == 0; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(fires.load(), 1);
}

TEST(Triggers, TriggersDuringSaturatedIngestion) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 300, .num_edges = 1500, .seed = 31});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);
  const auto oracle = static_bfs(g, g.dense_of(source));

  // Pick ten reachable target vertices.
  std::vector<VertexId> targets;
  for (CsrGraph::Dense v = 0; v < g.num_vertices() && targets.size() < 10; ++v)
    if (oracle[v] != kInfiniteState && g.external_of(v) != source)
      targets.push_back(g.external_of(v));

  Engine engine(EngineConfig{.num_ranks = 3});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
  engine.inject_init(id, source);

  std::atomic<int> fires{0};
  for (const VertexId t : targets)
    engine.when(id, t, [](StateWord lvl) { return lvl != kInfiniteState; },
                [&](VertexId, StateWord) { fires.fetch_add(1); });

  engine.ingest(make_streams(edges, 3));
  EXPECT_EQ(fires.load(), static_cast<int>(targets.size()));
}

TEST(Triggers, NoFalsePositiveForUnreachableVertex) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(0);
  engine.inject_init(id, 0);

  std::atomic<int> fires{0};
  engine.when(id, 7, [](StateWord lvl) { return lvl != kInfiniteState; },
              [&](VertexId, StateWord) { fires.fetch_add(1); });

  engine.ingest(make_streams(small_graph(), 2));  // 7 is in the other component
  EXPECT_EQ(fires.load(), 0);
}

TEST(Triggers, WhenAnyFiresAtMostOncePerVertex) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, cc] = engine.attach_make<DynamicCc>();

  std::mutex mu;
  std::set<VertexId> fired;
  bool duplicate = false;
  engine.when_any(id, [](StateWord label) { return label != 0; },
                  [&](VertexId v, StateWord) {
                    std::lock_guard g(mu);
                    duplicate |= !fired.insert(v).second;
                  });

  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 64, .num_edges = 256, .seed = 12});
  engine.ingest(make_streams(edges, 2));

  std::lock_guard g(mu);
  EXPECT_FALSE(duplicate);
  EXPECT_GT(fired.size(), 0u);
  // Every vertex that exists fired exactly once (label transitions 0 -> h).
  EXPECT_EQ(fired.size(), engine.total_stored_vertices());
}

}  // namespace
}  // namespace remo::test
