// End-to-end differential self-test: the fuzzer finds nothing on the
// healthy engine, reliably catches an injected fault, replays its verdict
// deterministically, and the shrinker cuts the fault's repro to a sliver —
// the ISSUE's acceptance properties in unit-test form.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/fuzz.hpp"
#include "fuzz/repro.hpp"
#include "fuzz/shrink.hpp"

namespace remo::test {
namespace {

using fuzz::FuzzCase;
using fuzz::GenOptions;
using fuzz::RunResult;

// Small streams keep this suite fast; `remo fuzz --seeds 200` is the
// full-size sweep (CI runs it in the fuzz-smoke job).
GenOptions small_gen() {
  GenOptions g;
  g.num_vertices = 48;
  g.num_events = 160;
  return g;
}

TEST(Differential, MatrixSampleConverges) {
  // One window of 8 indexed cases: every algorithm twice, ranks 1 and 2.
  for (std::uint64_t i = 0; i < 8; ++i) {
    const FuzzCase fc = fuzz::make_case_indexed(i, /*base_seed=*/2026, small_gen());
    const RunResult rr = fuzz::run_case(fc);
    EXPECT_TRUE(rr.ok()) << fuzz::describe(fc) << " diverged at "
                         << rr.divergences.size() << " vertices";
    EXPECT_GT(rr.vertices_checked, 0u);
  }
}

TEST(Differential, CampaignRunsAndReportsCleanly) {
  fuzz::CampaignOptions opts;
  opts.base_seed = 11;
  opts.num_cases = 6;
  opts.gen = small_gen();
  std::uint32_t observed = 0;
  opts.on_case = [&](const FuzzCase&, const RunResult&) {
    ++observed;
    return true;
  };
  const fuzz::CampaignResult res = fuzz::run_campaign(opts);
  EXPECT_EQ(res.cases_run, 6u);
  EXPECT_EQ(observed, 6u);
  EXPECT_TRUE(res.failures.empty());
}

TEST(Differential, CampaignEarlyExitStopsAfterTheCurrentCase) {
  fuzz::CampaignOptions opts;
  opts.num_cases = 10;
  opts.gen = small_gen();
  opts.on_case = [](const FuzzCase&, const RunResult&) { return false; };
  EXPECT_EQ(fuzz::run_campaign(opts).cases_run, 1u);
}

// An injected-fault case: every outbound kUpdate dropped, single rank so
// the run is exactly deterministic. State stops propagating past the
// immediate topology wave, so the converged BFS levels sit above the
// oracle's on any graph with a shortest-path tree deeper than the event
// order happens to build directly.
FuzzCase faulty_case() {
  GenOptions g;
  g.num_vertices = 32;
  g.num_events = 200;
  g.delete_permille = 0;
  FuzzCase fc = fuzz::make_case(424242, g);
  fc.config.algo = fuzz::Algo::kBfs;
  fc.config.ranks = 1;
  fc.config.streams = 1;
  fc.config.termination = TerminationMode::kCounting;
  fc.config.chaos_delay_us = 0;
  fc.config.drop_nth_update = 1;
  return fc;
}

TEST(Differential, InjectedFaultIsCaughtAndReplaysIdentically) {
  const FuzzCase fc = faulty_case();
  const RunResult first = fuzz::run_case(fc);
  ASSERT_FALSE(first.ok())
      << "dropping every update should starve BFS of propagation";
  // The acceptance bar: replaying the repro byte-for-byte reproduces the
  // identical converged-state diff.
  std::string text = fuzz::repro_to_text(fc);
  FuzzCase replayed;
  ASSERT_TRUE(fuzz::repro_from_text(text, replayed));
  const RunResult second = fuzz::run_case(replayed);
  EXPECT_EQ(second.divergences, first.divergences);
}

TEST(Differential, ShrinkerCutsTheInjectedFaultReproToASliver) {
  FuzzCase fc = faulty_case();
  ASSERT_FALSE(fuzz::run_case(fc).ok());

  fuzz::ShrinkStats stats;
  const auto shrunk = fuzz::shrink_events(
      fc.events,
      [&](const std::vector<EdgeEvent>& candidate) {
        FuzzCase probe = fc;
        probe.events = candidate;
        return !fuzz::run_case(probe).ok();
      },
      &stats, /*max_runs=*/400);

  // ISSUE acceptance: <= 10% of the original event count.
  EXPECT_LE(shrunk.size() * 10, fc.events.size())
      << "shrunk to " << shrunk.size() << " of " << fc.events.size();
  // And the shrunk case still reproduces.
  fc.events = shrunk;
  EXPECT_FALSE(fuzz::run_case(fc).ok());
}

TEST(Differential, RanksOneRunsAreBitwiseRepeatable) {
  // With one rank there is no schedule nondeterminism at all: the full
  // result struct — not just the verdict — must repeat.
  const FuzzCase fc = faulty_case();
  const RunResult a = fuzz::run_case(fc);
  const RunResult b = fuzz::run_case(fc);
  EXPECT_EQ(a.divergences, b.divergences);
  EXPECT_EQ(a.vertices_checked, b.vertices_checked);
  EXPECT_EQ(a.surviving_edges, b.surviving_edges);
}

}  // namespace
}  // namespace remo::test
