// remo::fuzz case generator: determinism, matrix coverage, stream shape.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "fuzz/fuzz.hpp"

namespace remo::test {
namespace {

using fuzz::Algo;
using fuzz::FuzzCase;
using fuzz::GenOptions;

TEST(FuzzGenerator, SameSeedSameCase) {
  EXPECT_EQ(fuzz::make_case(42), fuzz::make_case(42));
  EXPECT_NE(fuzz::make_case(42), fuzz::make_case(43));
}

TEST(FuzzGenerator, OptionsAreHonoured) {
  GenOptions opts;
  opts.num_vertices = 16;
  opts.num_events = 100;
  opts.max_weight = 3;
  const FuzzCase fc = fuzz::make_case(7, opts);
  EXPECT_EQ(fc.events.size(), 100u);
  EXPECT_LT(fc.source, 16u);
  for (const EdgeEvent& e : fc.events) {
    EXPECT_LT(e.src, 16u);
    EXPECT_LT(e.dst, 16u);
    EXPECT_GE(e.weight, 1u);
    EXPECT_LE(e.weight, 3u);
  }
}

TEST(FuzzGenerator, IndexedWindowCoversTheFullMatrix) {
  // Any 32 consecutive indices must cover {4 algos} x {1,2,4,8 ranks} x
  // {both detectors} exactly once each.
  for (std::uint64_t base : {0ull, 5ull}) {
    std::set<std::tuple<Algo, std::uint32_t, TerminationMode>> combos;
    for (std::uint64_t i = base; i < base + 32; ++i) {
      const FuzzCase fc = fuzz::make_case_indexed(i, /*base_seed=*/1);
      combos.insert({fc.config.algo, fc.config.ranks, fc.config.termination});
      EXPECT_TRUE(fc.config.ranks == 1 || fc.config.ranks == 2 ||
                  fc.config.ranks == 4 || fc.config.ranks == 8);
    }
    EXPECT_EQ(combos.size(), 32u) << "window starting at " << base;
  }
}

TEST(FuzzGenerator, DeleteEventsOnlyForDeleteCapableAlgos) {
  for (std::uint64_t i = 0; i < 32; ++i) {
    const FuzzCase fc = fuzz::make_case_indexed(i, /*base_seed=*/3);
    bool has_delete = false;
    for (const EdgeEvent& e : fc.events)
      has_delete |= e.op == EdgeOp::kDelete;
    if (!fuzz::algo_supports_deletes(fc.config.algo)) {
      EXPECT_FALSE(has_delete) << "add-only algo got deletes at index " << i;
    }
  }
}

TEST(FuzzGenerator, SurvivingEdgesFoldsPerPair) {
  std::vector<EdgeEvent> events{
      {1, 2, 5, EdgeOp::kAdd},     // pair {1,2} born...
      {2, 1, 7, EdgeOp::kAdd},     // ...weight updated via the other side
      {3, 4, 2, EdgeOp::kAdd},     // pair {3,4} survives untouched
      {1, 2, 7, EdgeOp::kDelete},  // pair {1,2} dies
      {5, 6, 1, EdgeOp::kAdd},     // pair {5,6} born...
      {5, 6, 1, EdgeOp::kDelete},  // ...dies...
      {6, 5, 9, EdgeOp::kAdd},     // ...reborn with the new weight
  };
  const EdgeList survivors = fuzz::surviving_edges(events);
  ASSERT_EQ(survivors.size(), 2u);
  std::set<std::tuple<VertexId, VertexId, Weight>> got;
  for (const Edge& e : survivors) {
    const VertexId lo = e.src < e.dst ? e.src : e.dst;
    const VertexId hi = e.src < e.dst ? e.dst : e.src;
    got.insert({lo, hi, e.weight});
  }
  EXPECT_TRUE(got.count({3, 4, 2}));
  EXPECT_TRUE(got.count({5, 6, 9}));
}

TEST(FuzzGenerator, AlgoNamesRoundTrip) {
  for (Algo a : {Algo::kBfs, Algo::kSssp, Algo::kCc, Algo::kSt,
                 Algo::kPagerank, Algo::kWsssp}) {
    Algo back{};
    ASSERT_TRUE(fuzz::algo_from_name(fuzz::algo_name(a), back));
    EXPECT_EQ(back, a);
  }
  Algo out{};
  EXPECT_FALSE(fuzz::algo_from_name("katz", out));
}

TEST(FuzzGenerator, DescribeMentionsTheBigAxes) {
  const FuzzCase fc = fuzz::make_case(99);
  const std::string line = fuzz::describe(fc);
  EXPECT_NE(line.find(fuzz::algo_name(fc.config.algo)), std::string::npos);
  EXPECT_NE(line.find("seed"), std::string::npos);
}

}  // namespace
}  // namespace remo::test
