// remo-repro-1 serialisation: canonical round trips and strict rejection
// of malformed input (a repro that parses wrong is worse than one that
// does not parse).
#include <gtest/gtest.h>

#include <string>

#include "fuzz/fuzz.hpp"
#include "fuzz/repro.hpp"

namespace remo::test {
namespace {

using fuzz::FuzzCase;

std::string replace_first(std::string text, const std::string& from,
                          const std::string& to) {
  const auto pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << "fixture line missing: " << from;
  if (pos != std::string::npos) text.replace(pos, from.size(), to);
  return text;
}

TEST(Repro, CaseRoundTripsExactly) {
  const FuzzCase fc = fuzz::make_case(123456789);
  const std::string text = fuzz::repro_to_text(fc);
  FuzzCase back;
  std::string err;
  ASSERT_TRUE(fuzz::repro_from_text(text, back, &err)) << err;
  EXPECT_EQ(back, fc);
  // Canonical: re-serialising the parse is byte-identical.
  EXPECT_EQ(fuzz::repro_to_text(back), text);
}

TEST(Repro, DeleteHeavyCaseRoundTrips) {
  // Find a seed whose case actually carries delete events, so the `d` line
  // form is covered.
  fuzz::GenOptions opts;
  opts.delete_permille = 600;
  FuzzCase fc;
  bool has_delete = false;
  for (std::uint64_t seed = 1; seed < 64 && !has_delete; ++seed) {
    fc = fuzz::make_case(seed, opts);
    for (const EdgeEvent& e : fc.events)
      has_delete |= e.op == EdgeOp::kDelete;
  }
  ASSERT_TRUE(has_delete) << "no seed in [1,64) produced a delete stream";
  const std::string text = fuzz::repro_to_text(fc);
  FuzzCase back;
  ASSERT_TRUE(fuzz::repro_from_text(text, back));
  EXPECT_EQ(back, fc);
}

TEST(Repro, FileRoundTrip) {
  const FuzzCase fc = fuzz::make_case(7);
  const std::string path = ::testing::TempDir() + "remo_repro_test.repro";
  std::string err;
  ASSERT_TRUE(fuzz::write_repro(path, fc, &err)) << err;
  FuzzCase back;
  ASSERT_TRUE(fuzz::read_repro(path, back, &err)) << err;
  EXPECT_EQ(back, fc);
}

TEST(Repro, ReadMissingFileFails) {
  FuzzCase out;
  std::string err;
  EXPECT_FALSE(fuzz::read_repro("/nonexistent/dir/x.repro", out, &err));
  EXPECT_FALSE(err.empty());
}

TEST(Repro, RejectsMalformedInput) {
  const FuzzCase fc = fuzz::make_case(5);
  const std::string good = fuzz::repro_to_text(fc);
  FuzzCase out;
  std::string err;
  ASSERT_TRUE(fuzz::repro_from_text(good, out, &err)) << err;

  struct Mutation {
    const char* name;
    std::string text;
  };
  const Mutation bad[] = {
      {"wrong magic", replace_first(good, "remo-repro-1", "remo-repro-9")},
      {"empty input", ""},
      {"missing key", replace_first(good, "\nranks ", "\nwrong_key ")},
      {"garbage number", replace_first(good, "\nranks ", "\nranks x")},
      {"zero ranks", replace_first(good, "\nranks ", "\nranks 0\nranks ")},
      {"bad algo", replace_first(good, "\nalgo ", "\nalgo katz\nalgo ")},
      {"bad op", replace_first(good, "\na ", "\nz ")},
      {"extra token", replace_first(good, "\na ", "\na 1 2 3 4\na ")},
      {"count too high", replace_first(good, "\nevents ", "\nevents 99999\nx ")},
      {"truncated", good.substr(0, good.size() / 2)},
  };
  for (const Mutation& m : bad) {
    err.clear();
    EXPECT_FALSE(fuzz::repro_from_text(m.text, out, &err)) << m.name;
    EXPECT_FALSE(err.empty()) << m.name << ": rejection must explain itself";
  }
}

}  // namespace
}  // namespace remo::test
