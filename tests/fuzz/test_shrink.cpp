// Greedy event-stream shrinker: convergence, 1-minimality, order
// preservation, and the predicate-call budget.
#include <gtest/gtest.h>

#include <vector>

#include "fuzz/shrink.hpp"

namespace remo::test {
namespace {

std::vector<EdgeEvent> filler(std::size_t n) {
  std::vector<EdgeEvent> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    events.push_back(EdgeEvent{100 + i, 200 + i, 1, EdgeOp::kAdd});
  return events;
}

bool is_marker(const EdgeEvent& e) { return e.src == 1 && e.dst == 2; }

// Fails iff both marker events survive, in order (dst weight 7 before 9).
bool needs_both_markers(const std::vector<EdgeEvent>& events) {
  bool saw_first = false;
  for (const EdgeEvent& e : events) {
    if (!is_marker(e)) continue;
    if (e.weight == 7) saw_first = true;
    if (e.weight == 9 && saw_first) return true;
  }
  return false;
}

TEST(Shrink, ReducesToTheMinimalCore) {
  auto events = filler(200);
  events[37] = EdgeEvent{1, 2, 7, EdgeOp::kAdd};
  events[161] = EdgeEvent{1, 2, 9, EdgeOp::kAdd};
  ASSERT_TRUE(needs_both_markers(events));

  fuzz::ShrinkStats stats;
  const auto shrunk =
      fuzz::shrink_events(events, needs_both_markers, &stats, /*max_runs=*/5000);
  ASSERT_EQ(shrunk.size(), 2u) << "not 1-minimal";
  EXPECT_EQ(shrunk[0].weight, 7u);
  EXPECT_EQ(shrunk[1].weight, 9u);
  EXPECT_EQ(stats.original_size, 200u);
  EXPECT_EQ(stats.final_size, 2u);
  EXPECT_GT(stats.runs, 0u);
  EXPECT_FALSE(stats.budget_exhausted);
}

TEST(Shrink, ResultIsASubsequenceOfTheInput) {
  auto events = filler(64);
  events[10] = EdgeEvent{1, 2, 7, EdgeOp::kAdd};
  events[50] = EdgeEvent{1, 2, 9, EdgeOp::kAdd};
  const auto shrunk = fuzz::shrink_events(events, needs_both_markers);
  // Subsequence check: walk the input, matching shrunk events in order.
  std::size_t j = 0;
  for (const EdgeEvent& e : events)
    if (j < shrunk.size() && e == shrunk[j]) ++j;
  EXPECT_EQ(j, shrunk.size()) << "shrinker reordered or invented events";
}

TEST(Shrink, AlwaysFailingPredicateShrinksToNothing) {
  fuzz::ShrinkStats stats;
  const auto shrunk = fuzz::shrink_events(
      filler(33), [](const std::vector<EdgeEvent>&) { return true; }, &stats);
  EXPECT_TRUE(shrunk.empty());
  EXPECT_FALSE(stats.budget_exhausted);
}

TEST(Shrink, IrreducibleInputSurvivesUntouched) {
  auto events = filler(8);
  // Fails only when every event is present.
  const auto all_present = [](const std::vector<EdgeEvent>& es) {
    return es.size() >= 8;
  };
  const auto shrunk = fuzz::shrink_events(events, all_present);
  EXPECT_EQ(shrunk, events);
}

TEST(Shrink, BudgetStopsTheSearch) {
  auto events = filler(256);
  events[3] = EdgeEvent{1, 2, 7, EdgeOp::kAdd};
  events[250] = EdgeEvent{1, 2, 9, EdgeOp::kAdd};
  fuzz::ShrinkStats stats;
  fuzz::shrink_events(events, needs_both_markers, &stats, /*max_runs=*/3);
  EXPECT_LE(stats.runs, 3u);
  EXPECT_TRUE(stats.budget_exhausted);
}

}  // namespace
}  // namespace remo::test
