#include <gtest/gtest.h>

#include <cstdlib>

#include "gen/datasets.hpp"

namespace remo::test {
namespace {

TEST(Datasets, Table1RegistryHasFourEntries) {
  DatasetScale s;
  s.scale_shift = -4;  // tiny for the test
  const auto all = table1_datasets(s);
  ASSERT_EQ(all.size(), 4u);
  for (const Dataset& d : all) {
    EXPECT_FALSE(d.name.empty());
    EXPECT_FALSE(d.stands_for.empty());
    EXPECT_FALSE(d.edges.empty());
    EXPECT_TRUE(d.undirected);
  }
}

TEST(Datasets, ScaleShiftChangesSize) {
  DatasetScale small{.scale_shift = -5, .seed = 1};
  DatasetScale large{.scale_shift = -3, .seed = 1};
  EXPECT_LT(make_synth_twitter(small).edges.size(),
            make_synth_twitter(large).edges.size());
}

TEST(Datasets, RmatNameEncodesScale) {
  const Dataset d = make_rmat(8);
  EXPECT_EQ(d.name, "rmat-8");
  EXPECT_EQ(d.edges.size(), (1u << 8) * 16u);
}

TEST(Datasets, BenchScaleFromEnv) {
  setenv("REMO_BENCH_SCALE", "-2", 1);
  EXPECT_EQ(bench_scale_from_env().scale_shift, -2);
  unsetenv("REMO_BENCH_SCALE");
  EXPECT_EQ(bench_scale_from_env().scale_shift, 0);
}

}  // namespace
}  // namespace remo::test
