#include <gtest/gtest.h>

#include "gen/erdos_renyi.hpp"

namespace remo::test {
namespace {

TEST(ErdosRenyi, SizeAndRange) {
  const EdgeList e =
      generate_erdos_renyi({.num_vertices = 100, .num_edges = 1000, .seed = 1});
  EXPECT_EQ(e.size(), 1000u);
  for (const Edge& edge : e) {
    EXPECT_LT(edge.src, 100u);
    EXPECT_LT(edge.dst, 100u);
    EXPECT_NE(edge.src, edge.dst);  // self-loops off by default
  }
}

TEST(ErdosRenyi, SelfLoopsWhenAllowed) {
  const EdgeList e = generate_erdos_renyi({.num_vertices = 4,
                                           .num_edges = 5000,
                                           .allow_self_loops = true,
                                           .seed = 2});
  bool any_loop = false;
  for (const Edge& edge : e) any_loop |= edge.src == edge.dst;
  EXPECT_TRUE(any_loop);
}

TEST(ErdosRenyi, Deterministic) {
  const ErdosRenyiParams p{.num_vertices = 64, .num_edges = 128, .seed = 9};
  EXPECT_EQ(generate_erdos_renyi(p), generate_erdos_renyi(p));
}

TEST(ErdosRenyi, RoughlyUniformEndpoints) {
  const EdgeList e =
      generate_erdos_renyi({.num_vertices = 10, .num_edges = 100000, .seed = 3});
  std::uint64_t counts[10] = {};
  for (const Edge& edge : e) ++counts[edge.src];
  for (const std::uint64_t c : counts) {
    EXPECT_GT(c, 8500u);
    EXPECT_LT(c, 11500u);
  }
}

}  // namespace
}  // namespace remo::test
