// make_weight_mutations — the Figure 9 weight-mutation workload generator.
#include <gtest/gtest.h>

#include "../support.hpp"

namespace remo::test {
namespace {

TEST(WeightMutations, EveryEventIsARealTransitionOnALivePair) {
  const EdgeList base = dedupe_undirected(generate_erdos_renyi(
      {.num_vertices = 40, .num_edges = 120, .seed = 9}));
  EdgeList weighted;
  for (const Edge& e : base) weighted.push_back(Edge{e.src, e.dst, 3});
  const auto events = make_weight_mutations(
      weighted, {.num_events = 500, .min_weight = 1, .max_weight = 6, .seed = 9});
  ASSERT_EQ(events.size(), 500u);

  // Track the evolving weight per pair; every event must hit an existing
  // pair, stay inside the bounds, and actually change the weight.
  RobinHoodMap<std::uint64_t, Weight> current;
  for (const Edge& e : weighted)
    current.get_or_insert(event_pair_key(
        EdgeEvent{e.src, e.dst, e.weight, EdgeOp::kAdd})) = e.weight;
  for (const EdgeEvent& e : events) {
    EXPECT_EQ(e.op, EdgeOp::kAdd);
    EXPECT_GE(e.weight, 1u);
    EXPECT_LE(e.weight, 6u);
    Weight* w = current.find(event_pair_key(e));
    ASSERT_NE(w, nullptr) << "mutation invented a pair";
    EXPECT_NE(*w, e.weight) << "mutation kept the old weight";
    *w = e.weight;
  }
}

TEST(WeightMutations, DeterministicPerSeed) {
  const EdgeList base = {{0, 1, 2}, {1, 2, 2}, {2, 3, 2}};
  const MutationOptions opts{.num_events = 50, .max_weight = 9, .seed = 4};
  EXPECT_EQ(make_weight_mutations(base, opts), make_weight_mutations(base, opts));
  const auto other = make_weight_mutations(
      base, {.num_events = 50, .max_weight = 9, .seed = 5});
  EXPECT_NE(make_weight_mutations(base, opts), other);
}

TEST(WeightMutations, DuplicateArcsCollapseLastWriterWins) {
  // The same unordered pair listed twice (with different weights) is one
  // mutable pair whose starting weight is the later entry's.
  const EdgeList base = {{0, 1, 2}, {1, 0, 7}};
  const auto events = make_weight_mutations(
      base, {.num_events = 1, .min_weight = 2, .max_weight = 3, .seed = 1});
  ASSERT_EQ(events.size(), 1u);
  // Starting weight is 7 (last writer), so a draw inside [2,3] is always a
  // change; had the first arc won, weight 2 would have to be excluded.
  EXPECT_NE(events[0].weight, 7u);
}

TEST(WeightMutations, EmptyRequestYieldsNothing) {
  EXPECT_TRUE(make_weight_mutations({}, {.num_events = 0}).empty());
}

}  // namespace
}  // namespace remo::test
