#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gen/pref_attach.hpp"

namespace remo::test {
namespace {

TEST(PrefAttach, EdgeCountMatchesParams) {
  PrefAttachParams p;
  p.num_vertices = 1000;
  p.edges_per_vertex = 4;
  p.seed_clique = 4;
  const EdgeList e = generate_pref_attach(p);
  // clique edges + m per subsequent vertex (capped by current size).
  const std::size_t clique = 4 * 3 / 2;
  EXPECT_EQ(e.size(), clique + (1000 - 4) * 4);
}

TEST(PrefAttach, StreamIsNaturallyIncremental) {
  // After the seed clique, each arriving vertex (the edge source) only
  // attaches to vertices that already joined, and vertices arrive in
  // nondecreasing order — a naturally incremental event feed.
  PrefAttachParams p;
  p.num_vertices = 500;
  p.edges_per_vertex = 3;
  p.seed_clique = 4;
  const EdgeList e = generate_pref_attach(p);
  const std::size_t clique_edges = 4 * 3 / 2;
  VertexId last_src = 0;
  for (std::size_t i = clique_edges; i < e.size(); ++i) {
    EXPECT_LT(e[i].dst, e[i].src);
    EXPECT_GE(e[i].src, last_src);
    last_src = e[i].src;
  }
}

TEST(PrefAttach, ProducesHeavyTail) {
  PrefAttachParams p;
  p.num_vertices = 5000;
  p.edges_per_vertex = 8;
  const EdgeList e = generate_pref_attach(p);
  std::vector<std::uint64_t> degree(5000, 0);
  for (const Edge& edge : e) {
    ++degree[edge.src];
    ++degree[edge.dst];
  }
  const std::uint64_t max_deg = *std::max_element(degree.begin(), degree.end());
  const double mean = 2.0 * static_cast<double>(e.size()) / 5000.0;
  EXPECT_GT(static_cast<double>(max_deg), mean * 10);
}

TEST(PrefAttach, Deterministic) {
  PrefAttachParams p;
  p.num_vertices = 200;
  p.seed = 11;
  EXPECT_EQ(generate_pref_attach(p), generate_pref_attach(p));
}

}  // namespace
}  // namespace remo::test
