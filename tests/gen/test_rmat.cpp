#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gen/rmat.hpp"

namespace remo::test {
namespace {

TEST(Rmat, SizeMatchesScaleAndEdgeFactor) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 16;
  const EdgeList e = generate_rmat(p);
  EXPECT_EQ(e.size(), (1u << 10) * 16u);
  for (const Edge& edge : e) {
    EXPECT_LT(edge.src, 1u << 10);
    EXPECT_LT(edge.dst, 1u << 10);
  }
}

TEST(Rmat, DeterministicPerSeed) {
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 4;
  p.seed = 5;
  EXPECT_EQ(generate_rmat(p), generate_rmat(p));
  RmatParams q = p;
  q.seed = 6;
  EXPECT_NE(generate_rmat(p), generate_rmat(q));
}

TEST(Rmat, DegreeDistributionIsSkewed) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 16;
  p.scramble_ids = false;
  const EdgeList e = generate_rmat(p);
  std::vector<std::uint64_t> degree(1u << 12, 0);
  for (const Edge& edge : e) ++degree[edge.src];
  const std::uint64_t max_deg = *std::max_element(degree.begin(), degree.end());
  const double mean = static_cast<double>(e.size()) / degree.size();
  // Power-law-ish: the hottest vertex far exceeds the mean.
  EXPECT_GT(static_cast<double>(max_deg), mean * 8);
}

TEST(Rmat, ScrambleIsBijective) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.scramble_ids = true;
  const EdgeList e = generate_rmat(p);
  // Scrambling maps within the id space.
  for (const Edge& edge : e) {
    EXPECT_LT(edge.src, 1u << 10);
    EXPECT_LT(edge.dst, 1u << 10);
  }
  // And the skew survives (bijection relabels, it does not flatten).
  std::vector<std::uint64_t> degree(1u << 10, 0);
  for (const Edge& edge : e) ++degree[edge.src];
  const std::uint64_t max_deg = *std::max_element(degree.begin(), degree.end());
  EXPECT_GT(max_deg, 8u * 4u);
}

}  // namespace
}  // namespace remo::test
