#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/erdos_renyi.hpp"
#include "gen/stream.hpp"

namespace remo::test {
namespace {

TEST(Stream, RoundRobinSplitPreservesAllEvents) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 64, .num_edges = 1000, .seed = 1});
  const StreamSet s = make_streams(edges, 3, StreamOptions{.shuffle = false});
  EXPECT_EQ(s.num_streams(), 3u);
  EXPECT_EQ(s.total_events(), edges.size());

  // Multiset of events matches the input.
  std::multiset<std::pair<VertexId, VertexId>> in, out;
  for (const Edge& e : edges) in.emplace(e.src, e.dst);
  for (std::size_t i = 0; i < 3; ++i)
    for (const EdgeEvent& e : s.stream(i).events()) out.emplace(e.src, e.dst);
  EXPECT_EQ(in, out);
}

TEST(Stream, UnshuffledSplitKeepsRelativeOrder) {
  EdgeList edges;
  for (VertexId v = 0; v < 30; ++v) edges.push_back({v, v + 1, 1});
  const StreamSet s = make_streams(edges, 4, StreamOptions{.shuffle = false});
  for (std::size_t i = 0; i < 4; ++i) {
    const auto& ev = s.stream(i).events();
    for (std::size_t k = 0; k + 1 < ev.size(); ++k)
      EXPECT_LT(ev[k].src, ev[k + 1].src);  // original order within stream
  }
}

TEST(Stream, ShuffleIsSeededAndPermutes) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 64, .num_edges = 500, .seed = 2});
  const StreamSet a = make_streams(edges, 2, StreamOptions{.seed = 7});
  const StreamSet b = make_streams(edges, 2, StreamOptions{.seed = 7});
  const StreamSet c = make_streams(edges, 2, StreamOptions{.seed = 8});
  EXPECT_EQ(a.stream(0).events(), b.stream(0).events());
  EXPECT_NE(a.stream(0).events(), c.stream(0).events());
}

TEST(Stream, WeightsDrawnFromRange) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 32, .num_edges = 2000, .seed = 3});
  const StreamSet s =
      make_streams(edges, 1, StreamOptions{.min_weight = 5, .max_weight = 9});
  bool saw_min = false, saw_max = false;
  for (const EdgeEvent& e : s.stream(0).events()) {
    EXPECT_GE(e.weight, 5u);
    EXPECT_LE(e.weight, 9u);
    saw_min |= e.weight == 5;
    saw_max |= e.weight == 9;
  }
  EXPECT_TRUE(saw_min);
  EXPECT_TRUE(saw_max);
}

TEST(Stream, SplitEventsHandlesDeletes) {
  std::vector<EdgeEvent> events = {{1, 2, 1, EdgeOp::kAdd},
                                   {1, 2, 1, EdgeOp::kDelete}};
  const StreamSet s = split_events(events, 1);
  ASSERT_EQ(s.stream(0).size(), 2u);
  EXPECT_EQ(s.stream(0)[0].op, EdgeOp::kAdd);
  EXPECT_EQ(s.stream(0)[1].op, EdgeOp::kDelete);
}

TEST(Stream, EmptyInputYieldsEmptyStreams) {
  const StreamSet s = make_streams({}, 3);
  EXPECT_EQ(s.num_streams(), 3u);
  EXPECT_EQ(s.total_events(), 0u);
}

}  // namespace
}  // namespace remo::test
