// Keyed stream splitting and pair-preserving permutation — the generator
// contracts the fuzzer's soundness rests on: per-pair event history is
// never reordered, so a mixed add/delete stream's final topology is a pure
// function of the event multiset regardless of interleaving.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "gen/stream.hpp"

namespace remo::test {
namespace {

std::vector<EdgeEvent> random_events(std::uint64_t seed, std::size_t n,
                                     VertexId num_vertices) {
  Xoshiro256 rng(seed);
  std::vector<EdgeEvent> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    EdgeEvent e;
    e.src = rng.bounded(num_vertices);
    e.dst = rng.bounded(num_vertices);
    e.weight = static_cast<Weight>(1 + rng.bounded(8));
    e.op = rng.bounded(4) == 0 ? EdgeOp::kDelete : EdgeOp::kAdd;
    events.push_back(e);
  }
  return events;
}

// The per-pair subsequence of `events`, in order.
std::map<std::uint64_t, std::vector<EdgeEvent>> pair_histories(
    const std::vector<EdgeEvent>& events) {
  std::map<std::uint64_t, std::vector<EdgeEvent>> h;
  for (const EdgeEvent& e : events) h[event_pair_key(e)].push_back(e);
  return h;
}

TEST(StreamKeyed, PairKeyIgnoresOrientation) {
  EdgeEvent fwd{3, 9, 1, EdgeOp::kAdd};
  EdgeEvent rev{9, 3, 5, EdgeOp::kDelete};
  EdgeEvent other{3, 10, 1, EdgeOp::kAdd};
  EXPECT_EQ(event_pair_key(fwd), event_pair_key(rev));
  EXPECT_NE(event_pair_key(fwd), event_pair_key(other));
}

TEST(StreamKeyed, SplitKeepsEachPairOnOneStreamInOrder) {
  // With only 24 vertices and 500 events, most pairs repeat — the property
  // is vacuous otherwise.
  const auto events = random_events(11, 500, 24);
  const auto want = pair_histories(events);

  const StreamSet set = split_events_keyed(events, 4, /*seed=*/99);
  ASSERT_EQ(set.num_streams(), 4u);
  EXPECT_EQ(set.total_events(), events.size());

  std::map<std::uint64_t, std::size_t> pair_stream;
  std::map<std::uint64_t, std::vector<EdgeEvent>> got;
  for (std::size_t s = 0; s < set.num_streams(); ++s) {
    for (const EdgeEvent& e : set.stream(s).events()) {
      const auto key = event_pair_key(e);
      auto [it, fresh] = pair_stream.emplace(key, s);
      EXPECT_EQ(it->second, s) << "pair split across streams";
      (void)fresh;
      got[key].push_back(e);
    }
  }
  EXPECT_EQ(got, want) << "per-pair history reordered by the split";
}

TEST(StreamKeyed, SplitSeedVariesPlacementOnly) {
  const auto events = random_events(12, 300, 24);
  const auto want = pair_histories(events);
  bool saw_different_placement = false;
  std::map<std::uint64_t, std::size_t> first_placement;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const StreamSet set = split_events_keyed(events, 4, seed);
    std::map<std::uint64_t, std::vector<EdgeEvent>> got;
    std::map<std::uint64_t, std::size_t> placement;
    for (std::size_t s = 0; s < set.num_streams(); ++s)
      for (const EdgeEvent& e : set.stream(s).events()) {
        got[event_pair_key(e)].push_back(e);
        placement.emplace(event_pair_key(e), s);
      }
    EXPECT_EQ(got, want);
    if (first_placement.empty())
      first_placement = placement;
    else if (placement != first_placement)
      saw_different_placement = true;
  }
  EXPECT_TRUE(saw_different_placement)
      << "three seeds produced identical pair->stream assignments";
}

TEST(StreamKeyed, PermutePreservesPairOrder) {
  const auto events = random_events(13, 400, 16);
  const auto want = pair_histories(events);
  bool saw_reorder = false;
  for (std::uint64_t seed : {5ull, 6ull, 7ull}) {
    const auto shuffled = permute_preserving_pairs(events, seed);
    ASSERT_EQ(shuffled.size(), events.size());
    EXPECT_EQ(pair_histories(shuffled), want)
        << "permutation reordered a pair's history";
    if (shuffled != events) saw_reorder = true;
  }
  EXPECT_TRUE(saw_reorder) << "permutation was the identity on every seed";
}

TEST(StreamKeyed, PermuteIsDeterministicPerSeed) {
  const auto events = random_events(14, 200, 16);
  EXPECT_EQ(permute_preserving_pairs(events, 77),
            permute_preserving_pairs(events, 77));
}

}  // namespace
}  // namespace remo::test
