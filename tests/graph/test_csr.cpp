#include <gtest/gtest.h>

#include <set>

#include "graph/csr.hpp"

namespace remo::test {
namespace {

TEST(Csr, BuildFromSparseIds) {
  const EdgeList edges = {{1000, 5, 1}, {5, 99999, 2}, {1000, 99999, 3}};
  const CsrGraph g = CsrGraph::build(edges);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);

  const auto d1000 = g.dense_of(1000);
  ASSERT_NE(d1000, CsrGraph::kNoVertex);
  EXPECT_EQ(g.external_of(d1000), 1000u);
  EXPECT_EQ(g.degree(d1000), 2u);
  EXPECT_EQ(g.dense_of(123456), CsrGraph::kNoVertex);
}

TEST(Csr, NeighboursAndWeightsAligned) {
  const EdgeList edges = {{1, 2, 10}, {1, 3, 20}, {2, 3, 30}};
  const CsrGraph g = CsrGraph::build(edges);
  const auto d1 = g.dense_of(1);
  const auto nbrs = g.neighbours(d1);
  const auto ws = g.weights(d1);
  ASSERT_EQ(nbrs.size(), 2u);
  ASSERT_EQ(ws.size(), 2u);
  std::set<std::pair<VertexId, Weight>> seen;
  for (std::size_t i = 0; i < nbrs.size(); ++i)
    seen.emplace(g.external_of(nbrs[i]), ws[i]);
  EXPECT_TRUE(seen.count({2, 10}));
  EXPECT_TRUE(seen.count({3, 20}));
}

TEST(Csr, EmptyGraph) {
  const CsrGraph g = CsrGraph::build({});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Csr, DuplicateEdgesAreKept) {
  const EdgeList edges = {{1, 2, 1}, {1, 2, 1}};
  const CsrGraph g = CsrGraph::build(edges);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(g.dense_of(1)), 2u);
}

TEST(Csr, WithReverseEdgesDoublesArcs) {
  const EdgeList edges = {{1, 2, 7}};
  const CsrGraph g = CsrGraph::build(with_reverse_edges(edges));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(g.dense_of(2)), 1u);
  EXPECT_EQ(g.weights(g.dense_of(2))[0], 7u);
}

TEST(Csr, MaxVertexIdHelper) {
  EXPECT_EQ(max_vertex_id({}), kInvalidVertex);
  EXPECT_EQ(max_vertex_id({{3, 9, 1}, {2, 4, 1}}), 9u);
}

TEST(Csr, MemoryBytesNonTrivial) {
  const EdgeList edges = {{1, 2, 1}, {2, 3, 1}};
  const CsrGraph g = CsrGraph::build(edges);
  EXPECT_GT(g.memory_bytes(), 0u);
}

}  // namespace
}  // namespace remo::test
