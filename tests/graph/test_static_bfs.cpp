#include <gtest/gtest.h>

#include "gen/erdos_renyi.hpp"
#include "graph/static_bfs.hpp"

namespace remo::test {
namespace {

CsrGraph chain(std::size_t n) {
  EdgeList e;
  for (VertexId v = 0; v + 1 < n; ++v) {
    e.push_back({v, v + 1, 1});
    e.push_back({v + 1, v, 1});
  }
  return CsrGraph::build(e);
}

TEST(StaticBfs, ChainLevels) {
  const CsrGraph g = chain(10);
  const auto levels = static_bfs(g, g.dense_of(0));
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(levels[g.dense_of(v)], v + 1);
}

TEST(StaticBfs, UnreachableIsInfinite) {
  const EdgeList e = {{0, 1, 1}, {1, 0, 1}, {5, 6, 1}, {6, 5, 1}};
  const CsrGraph g = CsrGraph::build(e);
  const auto levels = static_bfs(g, g.dense_of(0));
  EXPECT_EQ(levels[g.dense_of(1)], 2u);
  EXPECT_EQ(levels[g.dense_of(5)], kInfiniteState);
  EXPECT_EQ(levels[g.dense_of(6)], kInfiniteState);
}

TEST(StaticBfs, TreeParentsAreOneLevelUpAndMinimal) {
  // Diamond with two possible parents for the sink.
  const EdgeList e = {{0, 1, 1}, {1, 0, 1}, {0, 2, 1}, {2, 0, 1},
                      {1, 3, 1}, {3, 1, 1}, {2, 3, 1}, {3, 2, 1}};
  const CsrGraph g = CsrGraph::build(e);
  const BfsTree t = static_bfs_tree(g, g.dense_of(0));
  EXPECT_EQ(t.parent[g.dense_of(0)], g.dense_of(0));
  EXPECT_EQ(g.external_of(t.parent[g.dense_of(3)]), 1u);  // lowest-id parent
  for (VertexId v = 1; v <= 3; ++v) {
    const auto d = g.dense_of(v);
    EXPECT_EQ(t.level[t.parent[d]] + 1, t.level[d]);
  }
}

TEST(StaticBfs, LevelsAreMonotoneAcrossEdges) {
  const EdgeList base = generate_erdos_renyi({.num_vertices = 300, .num_edges = 900,
                                              .seed = 42});
  const CsrGraph g = CsrGraph::build(with_reverse_edges(base));
  const auto levels = static_bfs(g, 0);
  // Triangle inequality over every arc: |level(u) - level(v)| <= 1 when
  // both reached.
  for (CsrGraph::Dense u = 0; u < g.num_vertices(); ++u) {
    if (levels[u] == kInfiniteState) continue;
    for (const CsrGraph::Dense v : g.neighbours(u)) {
      ASSERT_NE(levels[v], kInfiniteState);
      EXPECT_LE(levels[v], levels[u] + 1);
      EXPECT_LE(levels[u], levels[v] + 1);
    }
  }
}

}  // namespace
}  // namespace remo::test
