#include <gtest/gtest.h>

#include <set>

#include "gen/erdos_renyi.hpp"
#include "graph/static_cc.hpp"

namespace remo::test {
namespace {

TEST(StaticCc, InitialLabelIsNonZeroAndDeterministic) {
  for (VertexId v = 0; v < 1000; ++v) {
    EXPECT_NE(cc_initial_label(v), 0u);
    EXPECT_EQ(cc_initial_label(v), cc_initial_label(v));
  }
}

TEST(StaticCc, TwoComponentsTwoLabels) {
  const EdgeList e = {{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1},
                      {5, 6, 1}, {6, 5, 1}};
  const CsrGraph g = CsrGraph::build(e);
  const auto labels = static_cc_union_find(g);
  EXPECT_EQ(labels[g.dense_of(0)], labels[g.dense_of(1)]);
  EXPECT_EQ(labels[g.dense_of(1)], labels[g.dense_of(2)]);
  EXPECT_EQ(labels[g.dense_of(5)], labels[g.dense_of(6)]);
  EXPECT_NE(labels[g.dense_of(0)], labels[g.dense_of(5)]);
  EXPECT_EQ(static_cc_count(g), 2u);
}

TEST(StaticCc, LabelIsComponentMaximum) {
  const EdgeList e = {{10, 20, 1}, {20, 10, 1}, {20, 30, 1}, {30, 20, 1}};
  const CsrGraph g = CsrGraph::build(e);
  const auto labels = static_cc_union_find(g);
  const StateWord expect = std::max(
      {cc_initial_label(10), cc_initial_label(20), cc_initial_label(30)});
  for (const VertexId v : {10u, 20u, 30u}) EXPECT_EQ(labels[g.dense_of(v)], expect);
}

TEST(StaticCc, PropagationEqualsUnionFindOnRandomGraphs) {
  for (const std::uint64_t seed : {1u, 7u, 19u}) {
    const EdgeList base = generate_erdos_renyi(
        {.num_vertices = 400, .num_edges = 450, .seed = seed});
    const CsrGraph g = CsrGraph::build(with_reverse_edges(base));
    EXPECT_EQ(static_cc_labels(g), static_cc_union_find(g)) << "seed " << seed;
  }
}

TEST(StaticCc, ComponentCountMatchesLabelCardinality) {
  const EdgeList base =
      generate_erdos_renyi({.num_vertices = 300, .num_edges = 200, .seed = 3});
  const CsrGraph g = CsrGraph::build(with_reverse_edges(base));
  const auto labels = static_cc_union_find(g);
  const std::set<StateWord> distinct(labels.begin(), labels.end());
  EXPECT_EQ(static_cc_count(g), distinct.size());
}

}  // namespace
}  // namespace remo::test
