// Static weighted PageRank oracle (graph/static_pagerank.hpp).
#include <gtest/gtest.h>

#include <cmath>

#include "../support.hpp"

namespace remo::test {
namespace {

TEST(StaticPagerank, SymmetricPairIsTheUnitFixpoint) {
  const CsrGraph g = undirected_csr({{0, 1, 1}});
  const auto ranks = static_pagerank(g);
  ASSERT_EQ(ranks.size(), 2u);
  EXPECT_NEAR(ranks[0], 1.0, 1e-9);
  EXPECT_NEAR(ranks[1], 1.0, 1e-9);
}

TEST(StaticPagerank, RegularGraphsAreUniform) {
  // Every vertex of a triangle (and any regular graph) has rank exactly 1.
  const CsrGraph g = undirected_csr({{0, 1, 1}, {1, 2, 1}, {2, 0, 1}});
  for (const double r : static_pagerank(g)) EXPECT_NEAR(r, 1.0, 1e-9);
}

TEST(StaticPagerank, StarCentreCollectsTheLeafMass) {
  const CsrGraph g =
      undirected_csr({{0, 1, 1}, {0, 2, 1}, {0, 3, 1}, {0, 4, 1}});
  const auto ranks = static_pagerank(g);
  const double centre = ranks[g.dense_of(0)];
  // Closed form: centre = (1-d)(1+kd)/(1-d^2) with k = 4 leaves, d = 0.85.
  EXPECT_NEAR(centre, 0.15 * (1.0 + 4 * 0.85) / (1.0 - 0.85 * 0.85), 1e-8);
  for (VertexId leaf = 1; leaf <= 4; ++leaf)
    EXPECT_NEAR(ranks[g.dense_of(leaf)], 0.15 + 0.85 * centre / 4.0, 1e-8);
}

TEST(StaticPagerank, WeightsSteerMassTowardsHeavyEdges) {
  // Path 0 -9- 1 -1- 2: vertex 0 gets the lion's share of 1's ratio.
  const CsrGraph g = undirected_csr({{0, 1, 9}, {1, 2, 1}});
  const auto ranks = static_pagerank(g);
  EXPECT_GT(ranks[g.dense_of(0)], ranks[g.dense_of(2)]);
}

TEST(StaticPagerank, RandomGraphSatisfiesTheFixpointEquation) {
  const EdgeList edges = dedupe_undirected(generate_erdos_renyi(
      {.num_vertices = 90, .num_edges = 300, .seed = 19}));
  // Give the pairs varied weights deterministically.
  EdgeList weighted;
  std::uint32_t i = 0;
  for (const Edge& e : edges)
    weighted.push_back(Edge{e.src, e.dst, static_cast<Weight>(1 + (i++ % 7))});
  const CsrGraph g = undirected_csr(weighted);
  const auto ranks = static_pagerank(g);

  // Residual check: r(x) = 0.15 + 0.85 * sum w(u,x) r(u) / W(u).
  std::vector<double> wdeg(g.num_vertices(), 0.0);
  for (CsrGraph::Dense u = 0; u < g.num_vertices(); ++u)
    for (const Weight w : g.weights(u)) wdeg[u] += static_cast<double>(w);
  for (CsrGraph::Dense x = 0; x < g.num_vertices(); ++x) {
    double acc = 0.0;
    const auto nbrs = g.neighbours(x);
    const auto ws = g.weights(x);
    for (std::size_t k = 0; k < nbrs.size(); ++k)
      if (wdeg[nbrs[k]] > 0.0)
        acc += static_cast<double>(ws[k]) * ranks[nbrs[k]] / wdeg[nbrs[k]];
    EXPECT_NEAR(ranks[x], 0.15 + 0.85 * acc, 1e-8);
  }
}

}  // namespace
}  // namespace remo::test
