#include <gtest/gtest.h>

#include "common/hash.hpp"
#include "gen/erdos_renyi.hpp"
#include "graph/static_bfs.hpp"
#include "graph/static_sssp.hpp"

namespace remo::test {
namespace {

CsrGraph weighted_graph(std::uint64_t seed, Weight max_w) {
  EdgeList base =
      generate_erdos_renyi({.num_vertices = 200, .num_edges = 700, .seed = seed});
  EdgeList undirected;
  for (const Edge& e : base) {
    const Weight w = 1 + static_cast<Weight>(splitmix64(e.src * 31 + e.dst) % max_w);
    undirected.push_back({e.src, e.dst, w});
    undirected.push_back({e.dst, e.src, w});
  }
  return CsrGraph::build(undirected);
}

TEST(StaticSssp, HandComputedDiamond) {
  const EdgeList e = {{0, 1, 5}, {1, 0, 5}, {0, 2, 1}, {2, 0, 1},
                      {2, 3, 1}, {3, 2, 1}, {1, 3, 1}, {3, 1, 1}};
  const CsrGraph g = CsrGraph::build(e);
  const auto d = static_sssp_dijkstra(g, g.dense_of(0));
  EXPECT_EQ(d[g.dense_of(0)], 1u);
  EXPECT_EQ(d[g.dense_of(2)], 2u);
  EXPECT_EQ(d[g.dense_of(3)], 3u);
  EXPECT_EQ(d[g.dense_of(1)], 4u);  // via 0-2-3-1
}

TEST(StaticSssp, DijkstraEqualsDeltaStepping) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    for (const Weight max_w : {Weight{1}, Weight{8}, Weight{100}}) {
      const CsrGraph g = weighted_graph(seed, max_w);
      const auto dj = static_sssp_dijkstra(g, 0);
      for (const Weight delta : {Weight{0}, Weight{1}, Weight{4}, Weight{64}}) {
        const auto ds = static_sssp_delta(g, 0, delta);
        ASSERT_EQ(dj, ds) << "seed=" << seed << " max_w=" << max_w
                          << " delta=" << delta;
      }
    }
  }
}

TEST(StaticSssp, UnitWeightsEqualBfs) {
  const EdgeList base =
      generate_erdos_renyi({.num_vertices = 150, .num_edges = 500, .seed = 5});
  const CsrGraph g = CsrGraph::build(with_reverse_edges(base));
  EXPECT_EQ(static_sssp_dijkstra(g, 0), static_bfs(g, 0));
}

TEST(StaticSssp, RelaxationInvariantHolds) {
  const CsrGraph g = weighted_graph(9, 16);
  const auto d = static_sssp_dijkstra(g, 0);
  for (CsrGraph::Dense u = 0; u < g.num_vertices(); ++u) {
    if (d[u] == kInfiniteState) continue;
    const auto nbrs = g.neighbours(u);
    const auto ws = g.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      EXPECT_LE(d[nbrs[i]], d[u] + ws[i]);
  }
}

}  // namespace
}  // namespace remo::test
