#include <gtest/gtest.h>

#include "gen/erdos_renyi.hpp"
#include "graph/static_bfs.hpp"
#include "graph/static_st.hpp"

namespace remo::test {
namespace {

TEST(StaticSt, MasksTrackReachability) {
  // Components {0,1,2} and {5,6}.
  const EdgeList e = {{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1},
                      {5, 6, 1}, {6, 5, 1}};
  const CsrGraph g = CsrGraph::build(e);
  const auto masks = static_multi_st(g, {g.dense_of(0), g.dense_of(5)});
  EXPECT_EQ(masks[g.dense_of(0)], 0b01u);
  EXPECT_EQ(masks[g.dense_of(2)], 0b01u);
  EXPECT_EQ(masks[g.dense_of(5)], 0b10u);
  EXPECT_EQ(masks[g.dense_of(6)], 0b10u);
}

TEST(StaticSt, SourceOwnBitAlwaysSet) {
  const EdgeList e = {{0, 1, 1}, {1, 0, 1}};
  const CsrGraph g = CsrGraph::build(e);
  const auto masks = static_multi_st(g, {g.dense_of(1)});
  EXPECT_EQ(masks[g.dense_of(1)], 1u);
}

TEST(StaticSt, BitSetIffBfsReaches) {
  const EdgeList base =
      generate_erdos_renyi({.num_vertices = 200, .num_edges = 300, .seed = 8});
  const CsrGraph g = CsrGraph::build(with_reverse_edges(base));
  const std::vector<CsrGraph::Dense> sources = {0, 1, 2, 3};
  const auto masks = static_multi_st(g, sources);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const auto levels = static_bfs(g, sources[i]);
    for (CsrGraph::Dense v = 0; v < g.num_vertices(); ++v) {
      const bool reached = levels[v] != kInfiniteState;
      EXPECT_EQ((masks[v] >> i) & 1, reached ? 1u : 0u)
          << "source " << i << " vertex " << v;
    }
  }
}

TEST(StaticSt, WideVariantMatchesPacked) {
  const EdgeList base =
      generate_erdos_renyi({.num_vertices = 150, .num_edges = 250, .seed = 9});
  const CsrGraph g = CsrGraph::build(with_reverse_edges(base));
  std::vector<CsrGraph::Dense> sources;
  for (CsrGraph::Dense s = 0; s < 40; ++s) sources.push_back(s);
  const auto packed = static_multi_st(g, sources);
  const auto wide = static_multi_st_wide(g, sources);
  for (CsrGraph::Dense v = 0; v < g.num_vertices(); ++v)
    for (std::size_t i = 0; i < sources.size(); ++i)
      EXPECT_EQ((packed[v] >> i) & 1, wide[v].test(i) ? 1u : 0u);
}

TEST(StaticSt, WideVariantSupportsOver64Sources) {
  const EdgeList base =
      generate_erdos_renyi({.num_vertices = 200, .num_edges = 600, .seed = 10});
  const CsrGraph g = CsrGraph::build(with_reverse_edges(base));
  std::vector<CsrGraph::Dense> sources;
  for (CsrGraph::Dense s = 0; s < 100; ++s) sources.push_back(s);
  const auto wide = static_multi_st_wide(g, sources);
  for (std::size_t i = 0; i < sources.size(); ++i)
    EXPECT_TRUE(wide[sources[i]].test(i));
}

}  // namespace
}  // namespace remo::test
