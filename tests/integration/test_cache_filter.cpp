// The neighbour-cache redundancy filter must be a pure optimisation:
// identical converged state with the filter on and off, across algorithms,
// deletes + repair, and versioned collections.
#include <gtest/gtest.h>

#include "../support.hpp"

namespace remo::test {
namespace {

Snapshot run_bfs(const EdgeList& edges, VertexId source, bool filter) {
  EngineConfig cfg;
  cfg.num_ranks = 3;
  cfg.nbr_cache_filter = filter;
  Engine engine(cfg);
  auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
  engine.inject_init(id, source);
  engine.ingest(make_streams(edges, 3, StreamOptions{.seed = 5}));
  return engine.collect_quiescent(id);
}

TEST(CacheFilter, OnOffConvergeIdentically) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 300, .num_edges = 1500, .seed = 64});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  const Snapshot off = run_bfs(edges, source, false);
  const Snapshot on = run_bfs(edges, source, true);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.entries().size(); ++i)
    EXPECT_EQ(off.entries()[i], on.entries()[i]);
}

TEST(CacheFilter, CutsMessagesForMinPrograms) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 400, .num_edges = 3000, .seed = 65});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  // One rank, one unshuffled stream: the event schedule is fully
  // deterministic, so message counts are exactly comparable (multi-rank
  // counts vary with thread interleaving).
  std::uint64_t msgs[2];
  for (int mode = 0; mode < 2; ++mode) {
    EngineConfig cfg;
    cfg.num_ranks = 1;
    cfg.nbr_cache_filter = mode == 1;
    Engine engine(cfg);
    auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
    engine.inject_init(id, source);
    engine.drain();  // init settles before the deterministic stream starts
    engine.ingest(make_streams(edges, 1, StreamOptions{.shuffle = false}));
    msgs[mode] = engine.metrics().messages_sent;
    expect_matches_oracle(engine, id, g, static_bfs(g, g.dense_of(source)));
  }
  EXPECT_LT(msgs[1], msgs[0]);
}

TEST(CacheFilter, SoundUnderDeletesAndRepair) {
  const EdgeList edges = dedupe_undirected(
      generate_erdos_renyi({.num_vertices = 150, .num_edges = 500, .seed = 66}));
  const CsrGraph g_full = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g_full);

  EngineConfig cfg;
  cfg.num_ranks = 2;
  cfg.nbr_cache_filter = true;
  Engine engine(cfg);
  auto [id, bfs] = engine.attach_make<DynamicBfs>(
      source, DynamicBfs::Options{.support_deletes = true});
  engine.inject_init(id, source);
  engine.ingest(make_streams(edges, 2));

  Xoshiro256 rng(5);
  EdgeList surviving;
  std::vector<EdgeEvent> deletes;
  for (const Edge& e : edges) {
    if (rng.bounded(100) < 30)
      deletes.push_back({e.src, e.dst, e.weight, EdgeOp::kDelete});
    else
      surviving.push_back(e);
  }
  engine.ingest(split_events(deletes, 2, true, 6));
  engine.repair(id);

  // After the repair waves, new adds must still propagate despite the
  // caches (they were reset along the invalidation paths).
  const CsrGraph g_after = undirected_csr(surviving);
  const CsrGraph::Dense s = g_after.dense_of(source);
  if (s != CsrGraph::kNoVertex) {
    const auto oracle = static_bfs(g_after, s);
    for (CsrGraph::Dense v = 0; v < g_after.num_vertices(); ++v)
      EXPECT_EQ(engine.state_of(id, g_after.external_of(v)), oracle[v]);
  }
}

TEST(CacheFilter, SoundDuringVersionedCollection) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 300, .num_edges = 2500, .seed = 67});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  EngineConfig cfg;
  cfg.num_ranks = 3;
  cfg.nbr_cache_filter = true;
  Engine engine(cfg);
  auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
  engine.inject_init(id, source);
  const StreamSet streams = make_streams(edges, 3);
  engine.ingest_async(streams);
  const Snapshot cut = engine.collect_versioned(id);  // mid-flight
  engine.await_quiescence();

  // The cut must still be a consistent BFS prefix state (see the snapshot
  // suite for the rule) and the final state exact.
  EXPECT_EQ(cut.at(source), 1u);
  expect_matches_oracle(engine, id, g, static_bfs(g, g.dense_of(source)));
}

}  // namespace
}  // namespace remo::test
