// Chaos-mode convergence: random per-rank delays widen the asynchronous
// interleaving space; every invariant must survive unchanged. Also covers
// the kModulo partitioner (the imbalance baseline the paper's consistent
// hashing protects against) — correctness is placement-independent.
#include <gtest/gtest.h>

#include <tuple>

#include "../support.hpp"

namespace remo::test {
namespace {

class ChaosSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t, bool>> {};

TEST_P(ChaosSweep, AllAlgorithmsConvergeUnderRandomDelays) {
  const auto [ranks, seed, modulo_part] = GetParam();
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 200, .num_edges = 800, .seed = seed});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  EngineConfig cfg;
  cfg.num_ranks = static_cast<RankId>(ranks);
  cfg.chaos_delay_us = 50;
  cfg.batch_size = 8;    // small batches: more flush boundaries
  cfg.stream_chunk = 4;  // fine-grained interleaving of pulls and drains
  cfg.partition = modulo_part ? PartitionMode::kModulo : PartitionMode::kHash;
  Engine engine(cfg);

  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(source);
  auto [cc_id, cc] = engine.attach_make<DynamicCc>();
  auto [st_id, st] =
      engine.attach_make<MultiStConnectivity>(std::vector<VertexId>{source});
  engine.inject_init(bfs_id, source);
  inject_st_sources(engine, st_id, *st);

  engine.ingest(make_streams(edges, static_cast<std::size_t>(ranks),
                             StreamOptions{.seed = seed}));

  const CsrGraph::Dense s = g.dense_of(source);
  expect_matches_oracle(engine, bfs_id, g, static_bfs(g, s));
  expect_matches_oracle(engine, cc_id, g, static_cc_union_find(g));
  expect_matches_oracle(engine, st_id, g, static_multi_st(g, {s}));
}

INSTANTIATE_TEST_SUITE_P(RanksSeedsPartition, ChaosSweep,
                         ::testing::Combine(::testing::Values(2, 4),
                                            ::testing::Values(81u, 82u),
                                            ::testing::Bool()));

TEST(Chaos, VersionedCollectionSurvivesDelays) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 200, .num_edges = 1500, .seed = 83});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  EngineConfig cfg;
  cfg.num_ranks = 3;
  cfg.chaos_delay_us = 100;
  Engine engine(cfg);
  auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
  engine.inject_init(id, source);
  const StreamSet streams = make_streams(edges, 3);
  engine.ingest_async(streams);
  const Snapshot cut = engine.collect_versioned(id);
  engine.await_quiescence();

  EXPECT_EQ(cut.at(source), 1u);
  expect_matches_oracle(engine, id, g, static_bfs(g, g.dense_of(source)));
}

TEST(Chaos, SafraSurvivesDelays) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 128, .num_edges = 512, .seed = 84});
  EngineConfig cfg;
  cfg.num_ranks = 4;
  cfg.termination = TerminationMode::kSafra;
  cfg.chaos_delay_us = 100;
  Engine engine(cfg);
  const IngestStats stats = engine.ingest(make_streams(edges, 4));
  EXPECT_EQ(stats.events, edges.size());
  EXPECT_EQ(engine.total_stored_edges(), engine.metrics().edges_stored);
}

}  // namespace
}  // namespace remo::test
