// Engine tuning parameters must never affect correctness: batch size
// (send-buffer flush boundaries), stream chunk (ingest/drain interleaving
// granularity), and the storage promotion threshold all change the
// message schedule — the converged state must not move.
#include <gtest/gtest.h>

#include <tuple>

#include "../support.hpp"

namespace remo::test {
namespace {

class ConfigSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint32_t>> {};

TEST_P(ConfigSweep, TuningParametersPreserveConvergence) {
  const auto [batch, chunk, promote] = GetParam();
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 250, .num_edges = 1000, .seed = 73});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  EngineConfig cfg;
  cfg.num_ranks = 3;
  cfg.batch_size = batch;
  cfg.stream_chunk = chunk;
  cfg.store.promote_threshold = promote;
  Engine engine(cfg);

  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(source);
  auto [cc_id, cc] = engine.attach_make<DynamicCc>();
  engine.inject_init(bfs_id, source);
  engine.ingest(make_streams(edges, 3, StreamOptions{.seed = 73}));

  expect_matches_oracle(engine, bfs_id, g, static_bfs(g, g.dense_of(source)));
  expect_matches_oracle(engine, cc_id, g, static_cc_union_find(g));
}

INSTANTIATE_TEST_SUITE_P(BatchChunkPromote, ConfigSweep,
                         ::testing::Combine(
                             /*batch_size=*/::testing::Values<std::size_t>(1, 7, 1024),
                             /*stream_chunk=*/::testing::Values<std::size_t>(1, 64),
                             /*promote=*/::testing::Values<std::uint32_t>(0, 2, 64)));

TEST(ConfigSweep, ManyRanksSmoke) {
  // More ranks than the host has cores: pure middleware stress.
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 200, .num_edges = 800, .seed = 74});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  EngineConfig cfg;
  cfg.num_ranks = 16;
  Engine engine(cfg);
  auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
  engine.inject_init(id, source);
  engine.ingest(make_streams(edges, 16));
  expect_matches_oracle(engine, id, g, static_bfs(g, g.dense_of(source)));
}

TEST(ConfigSweep, SingleRankDegeneratesToSequential) {
  // P=1: everything is rank-local; still must match the oracle, and no
  // remote messages may occur.
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 150, .num_edges = 600, .seed = 75});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  Engine engine(EngineConfig{.num_ranks = 1});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
  engine.inject_init(id, source);
  engine.ingest(make_streams(edges, 1));
  expect_matches_oracle(engine, id, g, static_bfs(g, g.dense_of(source)));
  EXPECT_EQ(engine.metrics().remote_messages, 0u);
}

}  // namespace
}  // namespace remo::test
