// Cross-module convergence sweep: every REMO algorithm, on every graph
// family (ER, RMAT, preferential attachment), at several rank counts, with
// shuffled concurrent streams — must converge to its static oracle
// (DESIGN.md invariant 1). This is the repository's strongest end-to-end
// property test.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "../support.hpp"

namespace remo::test {
namespace {

EdgeList family_edges(const std::string& family, std::uint64_t seed) {
  if (family == "er")
    return generate_erdos_renyi({.num_vertices = 512, .num_edges = 2048, .seed = seed});
  if (family == "rmat") {
    RmatParams p;
    p.scale = 9;
    p.edge_factor = 8;
    p.seed = seed;
    return generate_rmat(p);
  }
  PrefAttachParams p;
  p.num_vertices = 512;
  p.edges_per_vertex = 4;
  p.seed = seed;
  return generate_pref_attach(p);
}

class ConvergenceSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int, std::uint64_t>> {};

TEST_P(ConvergenceSweep, AllAlgorithmsMatchOracles) {
  const auto [family, ranks, seed] = GetParam();
  const EdgeList edges = family_edges(family, seed);
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  Engine engine(EngineConfig{.num_ranks = static_cast<RankId>(ranks)});
  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(source);
  auto [sssp_id, sssp] = engine.attach_make<DynamicSssp>(source);
  auto [cc_id, cc] = engine.attach_make<DynamicCc>();
  auto [st_id, st] =
      engine.attach_make<MultiStConnectivity>(std::vector<VertexId>{source});
  auto [deg_id, deg] = engine.attach_make<DegreeTracker>();

  engine.inject_init(bfs_id, source);
  engine.inject_init(sssp_id, source);
  inject_st_sources(engine, st_id, *st);

  engine.ingest(make_streams(edges, static_cast<std::size_t>(ranks),
                             StreamOptions{.seed = seed}));

  const CsrGraph::Dense s = g.dense_of(source);
  expect_matches_oracle(engine, bfs_id, g, static_bfs(g, s));
  expect_matches_oracle(engine, sssp_id, g, static_bfs(g, s));  // unit weights
  expect_matches_oracle(engine, cc_id, g, static_cc_union_find(g));
  expect_matches_oracle(engine, st_id, g, static_multi_st(g, {s}));
  for (CsrGraph::Dense v = 0; v < g.num_vertices(); ++v) {
    const VertexId ext = g.external_of(v);
    EXPECT_EQ(engine.state_of(deg_id, ext),
              engine.store(engine.partitioner().owner(ext)).degree(ext));
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesRanksSeeds, ConvergenceSweep,
    ::testing::Combine(::testing::Values(std::string("er"), std::string("rmat"),
                                         std::string("ba")),
                       ::testing::Values(1, 2, 4), ::testing::Values(101u, 202u)));

// Monotonicity invariant (DESIGN.md invariant 2): observe every state
// transition through a global trigger chain and assert per-vertex
// monotone evolution for BFS.
TEST(Monotonicity, BfsLevelsNeverIncreaseDuringIngestion) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 256, .num_edges = 2048, .seed = 3});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(source);

  // Track the last observed level per vertex. The callback runs on the
  // owning rank thread; a mutex-protected map suffices for the test.
  std::mutex mu;
  RobinHoodMap<VertexId, StateWord> last;
  std::atomic<bool> violated{false};
  // A "when_any" with an always-true predicate on finite levels observes
  // the first transition only; instead use per-level global triggers: every
  // improvement passes through set_value, and levels are bounded by the
  // graph diameter, so register thresholds 1..32.
  for (StateWord lvl = 1; lvl <= 32; ++lvl) {
    engine.when_any(id, [lvl](StateWord s) { return s <= lvl; },
                    [&, lvl](VertexId v, StateWord s) {
                      std::lock_guard guard(mu);
                      StateWord& prev = last.get_or_insert(v);
                      if (prev == 0 || s <= prev)
                        prev = s;
                      else
                        violated.store(true);
                      (void)lvl;
                    });
  }

  engine.inject_init(id, source);
  engine.ingest(make_streams(edges, 2));
  EXPECT_FALSE(violated.load());
}

// Determinism (Section II-D): with the tie-break clause, repeated runs
// over differently-shuffled streams produce the identical global state.
TEST(Determinism, ShuffleInvariantFinalState) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 200, .num_edges = 800, .seed = 70});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  Snapshot reference;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    Engine engine(EngineConfig{.num_ranks = 3});
    auto [id, bfs] = engine.attach_make<DynamicBfs>(
        source, DynamicBfs::Options{.deterministic_parents = true});
    engine.inject_init(id, source);
    engine.ingest(make_streams(edges, 3, StreamOptions{.seed = seed}));
    const Snapshot snap = engine.collect_quiescent(id);
    if (seed == 1u) {
      reference = snap;
    } else {
      ASSERT_EQ(snap.size(), reference.size());
      for (std::size_t i = 0; i < snap.entries().size(); ++i)
        EXPECT_EQ(snap.entries()[i], reference.entries()[i]);
    }
  }
}

}  // namespace
}  // namespace remo::test
