// Decremental events (Section VI-B realisation): delete-capable BFS/SSSP
// with Engine::repair() must reconverge to the oracle on the post-delete
// graph; deletes interleaved with adds; repair idempotence.
#include <gtest/gtest.h>

#include <tuple>

#include "../support.hpp"

namespace remo::test {
namespace {

constexpr DynamicBfs::Options kBfsDel{.deterministic_parents = false,
                                      .support_deletes = true};
constexpr DynamicSssp::Options kSsspDel{.deterministic_parents = false,
                                        .support_deletes = true};

TEST(Deletes, BfsChainCutLeavesTailUnreachable) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(0, kBfsDel);
  engine.inject_init(id, 0);
  for (VertexId v = 0; v < 10; ++v) engine.inject_edge({v, v + 1, 1, EdgeOp::kAdd});
  engine.drain();
  ASSERT_EQ(engine.state_of(id, 10), 11u);

  engine.inject_edge({5, 6, 1, EdgeOp::kDelete});
  engine.drain();
  engine.repair(id);

  for (VertexId v = 0; v <= 5; ++v) EXPECT_EQ(engine.state_of(id, v), v + 1);
  for (VertexId v = 6; v <= 10; ++v)
    EXPECT_EQ(engine.state_of(id, v), kInfiniteState) << "vertex " << v;
}

TEST(Deletes, BfsReroutesThroughSurvivingPath) {
  // Ring 0..7: cutting one edge reroutes the far side the long way.
  Engine engine(EngineConfig{.num_ranks = 3});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(0, kBfsDel);
  engine.inject_init(id, 0);
  for (VertexId v = 0; v < 8; ++v)
    engine.inject_edge({v, (v + 1) % 8, 1, EdgeOp::kAdd});
  engine.drain();
  ASSERT_EQ(engine.state_of(id, 4), 5u);
  ASSERT_EQ(engine.state_of(id, 7), 2u);

  engine.inject_edge({7, 0, 1, EdgeOp::kDelete});
  engine.drain();
  engine.repair(id);

  // Now distances follow the single remaining path 0-1-2-...-7.
  for (VertexId v = 0; v < 8; ++v)
    EXPECT_EQ(engine.state_of(id, v), v + 1) << "vertex " << v;
}

class DeleteOracleSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t, int>> {};

TEST_P(DeleteOracleSweep, BfsMatchesOracleAfterRandomDeletes) {
  const auto [ranks, seed, delete_pct] = GetParam();
  const EdgeList edges = dedupe_undirected(
      generate_erdos_renyi({.num_vertices = 200, .num_edges = 700, .seed = seed}));
  const CsrGraph g_full = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g_full);

  Engine engine(EngineConfig{.num_ranks = static_cast<RankId>(ranks)});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(source, kBfsDel);
  engine.inject_init(id, source);
  engine.ingest(make_streams(edges, static_cast<std::size_t>(ranks),
                             StreamOptions{.seed = seed}));

  // Delete a random subset of edges (as delete events through the engine).
  Xoshiro256 rng(seed * 31 + 7);
  EdgeList surviving;
  std::vector<EdgeEvent> deletes;
  for (const Edge& e : edges) {
    if (rng.bounded(100) < static_cast<std::uint64_t>(delete_pct))
      deletes.push_back({e.src, e.dst, e.weight, EdgeOp::kDelete});
    else
      surviving.push_back(e);
  }
  engine.ingest(split_events(deletes, static_cast<std::size_t>(ranks),
                             /*shuffle=*/true, seed));
  engine.repair(id);

  const CsrGraph g_after = undirected_csr(surviving);
  const CsrGraph::Dense s = g_after.dense_of(source);
  if (s == CsrGraph::kNoVertex) {
    // Heavy deletion isolated the source entirely: it keeps its own level
    // and every other vertex must be unreached.
    EXPECT_EQ(engine.state_of(id, source), 1u);
    for (CsrGraph::Dense v = 0; v < g_after.num_vertices(); ++v)
      EXPECT_EQ(engine.state_of(id, g_after.external_of(v)), kInfiniteState);
    return;
  }
  const auto oracle = static_bfs(g_after, s);
  for (CsrGraph::Dense v = 0; v < g_after.num_vertices(); ++v) {
    const VertexId ext = g_after.external_of(v);
    EXPECT_EQ(engine.state_of(id, ext), oracle[v]) << "vertex " << ext;
  }
}

INSTANTIATE_TEST_SUITE_P(RanksSeedsPct, DeleteOracleSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1u, 2u),
                                            ::testing::Values(10, 30, 60)));

TEST(Deletes, SsspMatchesDijkstraAfterDeletes) {
  const EdgeList base = dedupe_undirected(
      generate_erdos_renyi({.num_vertices = 150, .num_edges = 500, .seed = 9}));
  // Deterministic weights derived from endpoints.
  EdgeList edges = base;
  for (Edge& e : edges) e.weight = 1 + static_cast<Weight>(splitmix64(e.src ^ e.dst) % 9);

  std::vector<EdgeEvent> adds;
  for (const Edge& e : edges) adds.push_back({e.src, e.dst, e.weight, EdgeOp::kAdd});

  const CsrGraph g_full = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g_full);

  Engine engine(EngineConfig{.num_ranks = 3});
  auto [id, sssp] = engine.attach_make<DynamicSssp>(source, kSsspDel);
  engine.inject_init(id, source);
  engine.ingest(split_events(adds, 3, /*shuffle=*/true, 1));

  Xoshiro256 rng(99);
  EdgeList surviving;
  std::vector<EdgeEvent> deletes;
  for (const Edge& e : edges) {
    if (rng.bounded(100) < 25)
      deletes.push_back({e.src, e.dst, e.weight, EdgeOp::kDelete});
    else
      surviving.push_back(e);
  }
  engine.ingest(split_events(deletes, 3, /*shuffle=*/true, 2));
  engine.repair(id);

  const CsrGraph g_after = undirected_csr(surviving);
  const CsrGraph::Dense s = g_after.dense_of(source);
  ASSERT_NE(s, CsrGraph::kNoVertex);
  const auto oracle = static_sssp_dijkstra(g_after, s);
  for (CsrGraph::Dense v = 0; v < g_after.num_vertices(); ++v) {
    const VertexId ext = g_after.external_of(v);
    EXPECT_EQ(engine.state_of(id, ext), oracle[v]) << "vertex " << ext;
  }
}

TEST(Deletes, RepairIsIdempotent) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(0, kBfsDel);
  engine.inject_init(id, 0);
  for (VertexId v = 0; v < 6; ++v) engine.inject_edge({v, v + 1, 1, EdgeOp::kAdd});
  engine.drain();
  engine.inject_edge({2, 3, 1, EdgeOp::kDelete});
  engine.drain();
  engine.repair(id);
  const Snapshot first = engine.collect_quiescent(id);
  engine.repair(id);  // nothing dirty: must be a no-op
  const Snapshot second = engine.collect_quiescent(id);
  ASSERT_EQ(first.entries().size(), second.entries().size());
  for (std::size_t i = 0; i < first.entries().size(); ++i)
    EXPECT_EQ(first.entries()[i], second.entries()[i]);
}

TEST(Deletes, VertexRemovalDeletesAllIncidentEdges) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(0, kBfsDel);
  engine.inject_init(id, 0);
  // Star: 0 connected to 1..5; 3 additionally bridges to 10.
  for (VertexId v = 1; v <= 5; ++v) engine.inject_edge({0, v, 1, EdgeOp::kAdd});
  engine.inject_edge({3, 10, 1, EdgeOp::kAdd});
  engine.drain();
  ASSERT_EQ(engine.state_of(id, 10), 3u);

  engine.inject_vertex_removal(3);
  engine.drain();
  engine.repair(id);

  const auto owner3 = engine.partitioner().owner(3);
  EXPECT_EQ(engine.store(owner3).degree(3), 0u);
  EXPECT_FALSE(engine.store(engine.partitioner().owner(0)).has_edge(0, 3));
  EXPECT_EQ(engine.state_of(id, 3), kInfiniteState);
  EXPECT_EQ(engine.state_of(id, 10), kInfiniteState);
  EXPECT_EQ(engine.state_of(id, 4), 2u);  // untouched spokes survive
}

TEST(Deletes, AddAfterRepairReconnects) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(0, kBfsDel);
  engine.inject_init(id, 0);
  for (VertexId v = 0; v < 5; ++v) engine.inject_edge({v, v + 1, 1, EdgeOp::kAdd});
  engine.drain();
  engine.inject_edge({1, 2, 1, EdgeOp::kDelete});
  engine.drain();
  engine.repair(id);
  ASSERT_EQ(engine.state_of(id, 5), kInfiniteState);

  engine.inject_edge({0, 5, 1, EdgeOp::kAdd});  // reconnect from the far end
  engine.drain();
  EXPECT_EQ(engine.state_of(id, 5), 2u);
  EXPECT_EQ(engine.state_of(id, 2), 5u);  // 0-5-4-3-2
}

}  // namespace
}  // namespace remo::test
