// Model-based stress test: a random interleaving of every public
// operation — chunked ingestion, single-event injection, deletes, repair,
// quiescent/versioned/aux collections, trigger registration — against a
// reference model (edge multiset + static oracles). After every quiescent
// point the engine must agree with the model exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "../support.hpp"

namespace remo::test {
namespace {

class Model {
 public:
  void add(VertexId u, VertexId v, Weight w) {
    edges_[key(u, v)] = Edge{u, v, w};
    ever_[key(u, v)] = Edge{u, v, w};
  }
  void remove(VertexId u, VertexId v) { edges_.erase(key(u, v)); }

  EdgeList edges() const { return values(edges_); }
  /// Union of every edge that ever existed (upper bound for programs
  /// without delete support, whose monotone state may go stale).
  EdgeList edges_ever() const { return values(ever_); }

 private:
  static std::uint64_t key(VertexId u, VertexId v) {
    const VertexId lo = std::min(u, v), hi = std::max(u, v);
    return hash_combine(splitmix64(lo), hi);
  }
  static EdgeList values(const std::map<std::uint64_t, Edge>& m) {
    EdgeList out;
    for (const auto& [k, e] : m) out.push_back(e);
    return out;
  }
  std::map<std::uint64_t, Edge> edges_;
  std::map<std::uint64_t, Edge> ever_;
};

class RandomOpsModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomOpsModel, EngineTracksModelThroughRandomOperations) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  constexpr VertexId kVertices = 120;
  const VertexId source = 0;

  Engine engine(EngineConfig{.num_ranks = 3});
  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(
      source, DynamicBfs::Options{.support_deletes = true});
  auto [st_id, st] =
      engine.attach_make<MultiStConnectivity>(std::vector<VertexId>{source});
  engine.inject_init(bfs_id, source);
  inject_st_sources(engine, st_id, *st);

  Model model;
  std::atomic<std::uint64_t> trigger_fires{0};
  bool deletes_since_repair = false;

  auto verify = [&] {
    const EdgeList current = model.edges();
    if (current.empty()) return;
    const CsrGraph g = undirected_csr(current);
    const CsrGraph::Dense s = g.dense_of(source);
    if (s == CsrGraph::kNoVertex) return;  // source currently isolated

    // BFS is delete-capable: exact equality after repair.
    const auto bfs_oracle = static_bfs(g, s);
    for (CsrGraph::Dense v = 0; v < g.num_vertices(); ++v) {
      const VertexId ext = g.external_of(v);
      ASSERT_EQ(engine.state_of(bfs_id, ext), bfs_oracle[v])
          << "bfs vertex " << ext << " seed " << seed;
    }

    // S-T is add-only monotone: its mask must cover reachability over the
    // CURRENT edges (completeness) and stay within reachability over the
    // union of edges that EVER existed (soundness under staleness).
    const auto st_lower = static_multi_st(g, {s});
    const CsrGraph g_ever = undirected_csr(model.edges_ever());
    const auto st_upper = static_multi_st(g_ever, {g_ever.dense_of(source)});
    for (CsrGraph::Dense v = 0; v < g.num_vertices(); ++v) {
      const VertexId ext = g.external_of(v);
      const StateWord got = engine.state_of(st_id, ext);
      ASSERT_EQ(got & st_lower[v], st_lower[v])
          << "st missing current reachability at " << ext << " seed " << seed;
      const CsrGraph::Dense ve = g_ever.dense_of(ext);
      ASSERT_EQ(got | st_upper[ve], st_upper[ve])
          << "st exceeds all-time reachability at " << ext << " seed " << seed;
    }
  };

  for (int step = 0; step < 60; ++step) {
    switch (rng.bounded(10)) {
      case 0:
      case 1:
      case 2: {  // chunked stream ingestion of fresh random edges
        EdgeList chunk;
        const std::uint64_t n = 1 + rng.bounded(40);
        for (std::uint64_t i = 0; i < n; ++i) {
          VertexId u = rng.bounded(kVertices);
          VertexId v = rng.bounded(kVertices);
          if (u == v) v = (v + 1) % kVertices;
          model.add(u, v, 1);
          chunk.push_back({u, v, 1});
        }
        const StreamSet streams =
            make_streams(chunk, 1 + rng.bounded(3), StreamOptions{.seed = rng()});
        engine.ingest(streams);
        break;
      }
      case 3: {  // single-event injections
        for (int i = 0; i < 5; ++i) {
          VertexId u = rng.bounded(kVertices);
          VertexId v = rng.bounded(kVertices);
          if (u == v) v = (v + 1) % kVertices;
          model.add(u, v, 1);
          engine.inject_edge({u, v, 1, EdgeOp::kAdd});
        }
        engine.drain();
        break;
      }
      case 4: {  // delete a few random existing edges
        const EdgeList existing = model.edges();
        if (existing.empty()) break;
        for (int i = 0; i < 3; ++i) {
          const Edge& e = existing[rng.bounded(existing.size())];
          model.remove(e.src, e.dst);
          engine.inject_edge({e.src, e.dst, e.weight, EdgeOp::kDelete});
        }
        engine.drain();
        deletes_since_repair = true;
        break;
      }
      case 5: {  // repair after deletes, then full verify
        engine.repair(bfs_id);
        deletes_since_repair = false;
        verify();
        break;
      }
      case 6: {  // quiescent snapshot must match state_of
        const Snapshot snap = engine.collect_quiescent(st_id);
        for (const auto& [v, mask] : snap)
          ASSERT_EQ(engine.state_of(st_id, v), mask);
        break;
      }
      case 7: {  // versioned snapshot while idle degenerates to quiescent
        const Snapshot a = engine.collect_versioned(bfs_id);
        const Snapshot b = engine.collect_quiescent(bfs_id);
        ASSERT_EQ(a.entries().size(), b.entries().size());
        for (std::size_t i = 0; i < a.entries().size(); ++i)
          ASSERT_EQ(a.entries()[i], b.entries()[i]);
        break;
      }
      case 8: {  // register a trigger on a random vertex
        engine.when(st_id, rng.bounded(kVertices),
                    [](StateWord m) { return m != 0; },
                    [&](VertexId, StateWord) { trigger_fires.fetch_add(1); });
        break;
      }
      default: {  // aux collection sanity (levels' parents exist)
        const Snapshot parents = engine.collect_aux_quiescent(bfs_id);
        for (const auto& [v, parent] : parents)
          ASSERT_NE(parent, kInfiniteState);
        break;
      }
    }
    // BFS is only oracle-comparable when no un-repaired deletes exist.
    if (!deletes_since_repair && rng.bounded(4) == 0) {
      engine.repair(bfs_id);  // no-op repair keeps it comparable
      verify();
    }
  }

  engine.repair(bfs_id);
  verify();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOpsModel,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace remo::test
