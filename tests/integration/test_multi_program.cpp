// Multiple algorithms maintained concurrently over one dynamic topology —
// the design goal the paper's prototype had not reached ("the current
// prototype only supports hooking in one algorithm"); remo implements it.
#include <gtest/gtest.h>

#include "../support.hpp"

namespace remo::test {
namespace {

TEST(MultiProgram, FiveProgramsShareOneIngestion) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 300, .num_edges = 1500, .seed = 44});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  Engine engine(EngineConfig{.num_ranks = 3});
  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(source);
  auto [sssp_id, sssp] = engine.attach_make<DynamicSssp>(source);
  auto [cc_id, cc] = engine.attach_make<DynamicCc>();
  auto [st_id, st] =
      engine.attach_make<MultiStConnectivity>(std::vector<VertexId>{source});
  auto [deg_id, deg] = engine.attach_make<DegreeTracker>();
  engine.inject_init(bfs_id, source);
  engine.inject_init(sssp_id, source);
  inject_st_sources(engine, st_id, *st);

  const IngestStats stats = engine.ingest(make_streams(edges, 3));
  EXPECT_EQ(stats.events, edges.size());

  const CsrGraph::Dense s = g.dense_of(source);
  expect_matches_oracle(engine, bfs_id, g, static_bfs(g, s));
  expect_matches_oracle(engine, sssp_id, g, static_bfs(g, s));
  expect_matches_oracle(engine, cc_id, g, static_cc_union_find(g));
  expect_matches_oracle(engine, st_id, g, static_multi_st(g, {s}));
}

TEST(MultiProgram, TwoBfsFromDifferentSources) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 200, .num_edges = 900, .seed = 45});
  const CsrGraph g = undirected_csr(edges);
  const VertexId s1 = vertex_in_largest_cc(g);
  const VertexId s2 = g.external_of((g.dense_of(s1) + 13) % g.num_vertices());

  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id1, b1] = engine.attach_make<DynamicBfs>(s1);
  auto [id2, b2] = engine.attach_make<DynamicBfs>(s2);
  engine.inject_init(id1, s1);
  engine.inject_init(id2, s2);
  engine.ingest(make_streams(edges, 2));

  expect_matches_oracle(engine, id1, g, static_bfs(g, g.dense_of(s1)));
  expect_matches_oracle(engine, id2, g, static_bfs(g, g.dense_of(s2)));
}

TEST(MultiProgram, ProgramAttachedBetweenRunsSeesOnlyNewCascades) {
  // Attach CC after a first ingestion: its labels derive only from events
  // after attachment, so vertices touched only by run 1 stay unlabelled —
  // algorithm state is event-driven, not topology-scanned. (An
  // application wanting full labels re-runs ingestion or floods inits.)
  const EdgeList first = {{0, 1, 1}, {1, 2, 1}};
  const EdgeList second = {{10, 11, 1}};
  Engine engine(EngineConfig{.num_ranks = 2});
  const StreamSet s1 = make_streams(first, 2);
  engine.ingest(s1);

  auto [cc_id, cc] = engine.attach_make<DynamicCc>();
  const StreamSet s2 = make_streams(second, 2);
  engine.ingest(s2);

  EXPECT_EQ(engine.state_of(cc_id, 0), 0u);  // untouched by run 2
  EXPECT_NE(engine.state_of(cc_id, 10), 0u);
  EXPECT_EQ(engine.state_of(cc_id, 10), engine.state_of(cc_id, 11));
}

TEST(MultiProgram, StaticAlgorithmOnPausedDynamicGraph) {
  // "any known static graph algorithm could be applied on the dynamic
  // graph whose evolution is paused" (Section VI-A).
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 300, .num_edges = 1200, .seed = 46});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  Engine engine(EngineConfig{.num_ranks = 2});
  engine.ingest(make_streams(edges, 2));

  const auto levels = static_bfs_on_store(engine, source);
  const auto oracle = static_bfs(g, g.dense_of(source));
  for (CsrGraph::Dense v = 0; v < g.num_vertices(); ++v) {
    const VertexId ext = g.external_of(v);
    const StateWord* got = levels.find(ext);
    if (oracle[v] == kInfiniteState) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr) << "vertex " << ext;
      EXPECT_EQ(*got, oracle[v]);
    }
  }

  const auto dists = static_sssp_on_store(engine, source);
  for (CsrGraph::Dense v = 0; v < g.num_vertices(); ++v) {
    const VertexId ext = g.external_of(v);
    if (const StateWord* got = dists.find(ext)) {
      EXPECT_EQ(*got, oracle[v]) << "vertex " << ext;  // unit weights
    }
  }
}

}  // namespace
}  // namespace remo::test
