// Replay every checked-in fuzz repro and require zero divergence.
//
// tests/integration/repros/ is the graveyard of engine races the fuzzer
// has caught (docs/TESTING.md, "The bug hunt"): each file is a shrunk
// remo-repro-1 case that once produced a converged-state diff against the
// static oracle. The suite globs the directory, so burying a new bug is
// one `cp fuzz-out/divergence-*.min.repro tests/integration/repros/` —
// no code change.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/fuzz.hpp"
#include "fuzz/repro.hpp"

#ifndef REMO_REPRO_DIR
#error "REMO_REPRO_DIR must point at tests/integration/repros"
#endif

namespace remo::test {
namespace {

std::vector<std::filesystem::path> repro_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(REMO_REPRO_DIR)) {
    if (entry.path().extension() == ".repro") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(Repros, DirectoryIsNotEmpty) {
  // At minimum the two races this PR fixed plus the delete-heavy and
  // adversarial-interleaving suites.
  EXPECT_GE(repro_files().size(), 4u);
}

TEST(Repros, EveryCheckedInReproReplaysClean) {
  for (const auto& path : repro_files()) {
    fuzz::FuzzCase fc;
    std::string err;
    ASSERT_TRUE(fuzz::read_repro(path.string(), fc, &err))
        << path << ": " << err;
    const fuzz::RunResult rr = fuzz::run_case(fc);
    EXPECT_TRUE(rr.ok()) << path.filename() << " regressed ("
                         << fuzz::describe(fc) << "): "
                         << rr.divergences.size() << " divergent vertices";
  }
}

TEST(Repros, RacyCasesStayCleanAcrossRepeatedReplays) {
  // The two fixed races were schedule-dependent (the stale-update one
  // reproduced on ~7 of 8 runs pre-fix). A handful of replays keeps a
  // reintroduced race from slipping through on one lucky schedule.
  for (const char* name : {"orientation-race.repro", "stale-update-race.repro"}) {
    const auto path = std::filesystem::path(REMO_REPRO_DIR) / name;
    fuzz::FuzzCase fc;
    std::string err;
    ASSERT_TRUE(fuzz::read_repro(path.string(), fc, &err)) << err;
    for (int run = 0; run < 5; ++run)
      ASSERT_TRUE(fuzz::run_case(fc).ok())
          << name << " diverged on replay " << run;
  }
}

}  // namespace
}  // namespace remo::test
