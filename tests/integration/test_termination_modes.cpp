// Termination detection: the counting detector vs Safra's token ring
// (Section III-F's "distributed quiescence detection algorithm [24]").
// Safra-mode runs must produce the identical final state, and termination
// must never be declared while work remains (the counting invariant is
// re-checked inside the engine whenever Safra concludes).
#include <gtest/gtest.h>

#include <tuple>

#include "../support.hpp"

namespace remo::test {
namespace {

class SafraSweep : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(SafraSweep, SafraModeConvergesToOracle) {
  const auto [ranks, seed] = GetParam();
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 256, .num_edges = 1024, .seed = seed});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  EngineConfig cfg;
  cfg.num_ranks = static_cast<RankId>(ranks);
  cfg.termination = TerminationMode::kSafra;
  Engine engine(cfg);
  auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
  engine.inject_init(id, source);
  engine.ingest(make_streams(edges, static_cast<std::size_t>(ranks),
                             StreamOptions{.seed = seed}));

  expect_matches_oracle(engine, id, g, static_bfs(g, g.dense_of(source)));
}

INSTANTIATE_TEST_SUITE_P(RanksSeeds, SafraSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4, 7),
                                            ::testing::Values(1u, 2u, 3u)));

TEST(Termination, SafraHandlesRepeatedPhases) {
  EngineConfig cfg;
  cfg.num_ranks = 3;
  cfg.termination = TerminationMode::kSafra;
  Engine engine(cfg);
  auto [id, cc] = engine.attach_make<DynamicCc>();

  for (int round = 0; round < 5; ++round) {
    EdgeList edges;
    for (VertexId v = 0; v < 30; ++v)
      edges.push_back({v + static_cast<VertexId>(round) * 100,
                       v + 1 + static_cast<VertexId>(round) * 100, 1});
    const StreamSet streams = make_streams(edges, 3);
    engine.ingest(streams);
  }
  EXPECT_EQ(engine.total_stored_vertices(), 5u * 31u);
}

TEST(Termination, SafraWithEmptyStreams) {
  EngineConfig cfg;
  cfg.num_ranks = 4;
  cfg.termination = TerminationMode::kSafra;
  Engine engine(cfg);
  const StreamSet empty(std::vector<EdgeStream>{});
  const IngestStats stats = engine.ingest(empty);
  EXPECT_EQ(stats.events, 0u);
}

TEST(Termination, SafraModeSupportsVersionedCollection) {
  // Internal snapshot waits always use the counting accounting; Safra only
  // gates user-facing quiescence. Both must coexist.
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 200, .num_edges = 2000, .seed = 71});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  EngineConfig cfg;
  cfg.num_ranks = 3;
  cfg.termination = TerminationMode::kSafra;
  Engine engine(cfg);
  auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
  engine.inject_init(id, source);
  const StreamSet streams = make_streams(edges, 3);
  engine.ingest_async(streams);
  const Snapshot cut = engine.collect_versioned(id);
  engine.await_quiescence();

  EXPECT_EQ(cut.at(source), 1u);
  expect_matches_oracle(engine, id, g, static_bfs(g, g.dense_of(source)));
}

TEST(Termination, CountingAndSafraAgreeOnFinalState) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 200, .num_edges = 800, .seed = 61});
  const CsrGraph g = undirected_csr(edges);
  const VertexId source = vertex_in_largest_cc(g);

  Snapshot snaps[2];
  for (int mode = 0; mode < 2; ++mode) {
    EngineConfig cfg;
    cfg.num_ranks = 3;
    cfg.termination = mode == 0 ? TerminationMode::kCounting : TerminationMode::kSafra;
    Engine engine(cfg);
    auto [id, bfs] = engine.attach_make<DynamicBfs>(source);
    engine.inject_init(id, source);
    engine.ingest(make_streams(edges, 3));
    snaps[mode] = engine.collect_quiescent(id);
  }
  ASSERT_EQ(snaps[0].size(), snaps[1].size());
  for (std::size_t i = 0; i < snaps[0].entries().size(); ++i)
    EXPECT_EQ(snaps[0].entries()[i], snaps[1].entries()[i]);
}

}  // namespace
}  // namespace remo::test
