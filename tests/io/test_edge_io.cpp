#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "gen/erdos_renyi.hpp"
#include "io/edge_io.hpp"

namespace remo::test {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(EdgeIo, TextRoundTrip) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 50, .num_edges = 200, .seed = 1});
  const std::string path = temp_path("edges.txt");
  write_edges_text(path, edges);
  EXPECT_EQ(read_edges_text(path), edges);
  std::remove(path.c_str());
}

TEST(EdgeIo, BinaryRoundTrip) {
  EdgeList edges =
      generate_erdos_renyi({.num_vertices = 50, .num_edges = 200, .seed = 2});
  edges.push_back({~VertexId{0} - 1, 0, ~Weight{0}});  // extreme values
  const std::string path = temp_path("edges.bin");
  write_edges_binary(path, edges);
  EXPECT_EQ(read_edges_binary(path), edges);
  std::remove(path.c_str());
}

TEST(EdgeIo, TextDefaultsMissingWeight) {
  const std::string path = temp_path("edges_noweight.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "# comment line\n7 9\n1 2 5\n\n");
  std::fclose(f);
  const EdgeList edges = read_edges_text(path);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{7, 9, kDefaultWeight}));
  EXPECT_EQ(edges[1], (Edge{1, 2, 5}));
  std::remove(path.c_str());
}

TEST(EdgeIo, MissingFileThrows) {
  EXPECT_THROW(read_edges_text("/nonexistent/nope.txt"), std::runtime_error);
  EXPECT_THROW(read_edges_binary("/nonexistent/nope.bin"), std::runtime_error);
}

TEST(EdgeIo, MalformedLineThrows) {
  const std::string path = temp_path("edges_bad.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "garbage here\n");
  std::fclose(f);
  EXPECT_THROW(read_edges_text(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(EdgeIo, EmptyListRoundTrips) {
  const std::string path = temp_path("edges_empty.bin");
  write_edges_binary(path, {});
  EXPECT_TRUE(read_edges_binary(path).empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace remo::test
