// PageRankDelta vs the static Jacobi oracle: adds, deletes, weight
// mutations, multi-rank schedules, and the serving-plane kRank catalog.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "../support.hpp"
#include "serve/query_service.hpp"

namespace remo::test {
namespace {

// Converged ranks sit within n * tolerance / (1 - d) of the fixpoint
// (pagerank_delta.hpp); the graphs here are <= a few hundred vertices with
// the default 1e-9 tolerance, so 1e-5 is a comfortable diff bound.
constexpr double kAtol = 1e-5;

void expect_ranks_match(Engine& engine, ProgramId id, const PageRankDelta& pr,
                        const CsrGraph& g, const std::vector<double>& oracle) {
  ASSERT_EQ(oracle.size(), g.num_vertices());
  std::uint64_t mismatches = 0;
  for (CsrGraph::Dense v = 0; v < g.num_vertices() && mismatches < 10; ++v) {
    const VertexId ext = g.external_of(v);
    const double got = pr.rank_of(engine.state_of(id, ext));
    if (std::abs(got - oracle[v]) > kAtol) {
      ++mismatches;
      ADD_FAILURE() << "vertex " << ext << ": dynamic=" << got
                    << " oracle=" << oracle[v];
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

/// Fold a weighted event list per unordered pair (last add wins, delete
/// removes) — the topology the engine converges on.
EdgeList fold_events(const std::vector<EdgeEvent>& events) {
  RobinHoodMap<std::uint64_t, Edge> live;
  for (const EdgeEvent& e : events) {
    const std::uint64_t key = event_pair_key(e);
    if (e.op == EdgeOp::kAdd)
      live.get_or_insert(key) = Edge{e.src, e.dst, e.weight};
    else
      live.erase(key);
  }
  EdgeList out;
  live.for_each([&](const std::uint64_t&, Edge& e) { out.push_back(e); });
  return out;
}

TEST(PageRankDelta, SingleEdgeConvergesToUnitRanks) {
  Engine engine(EngineConfig{.num_ranks = 1});
  auto pr = std::make_shared<PageRankDelta>();
  const ProgramId id = engine.attach(pr);
  engine.ingest(split_events({{0, 1, 1, EdgeOp::kAdd}}, 1));
  // Symmetric two-vertex graph: r = (1-d) + d*r  =>  r = 1 for both.
  EXPECT_NEAR(pr->rank_of(engine.state_of(id, 0)), 1.0, kAtol);
  EXPECT_NEAR(pr->rank_of(engine.state_of(id, 1)), 1.0, kAtol);
}

TEST(PageRankDelta, StarCentreOutranksLeaves) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto pr = std::make_shared<PageRankDelta>();
  const ProgramId id = engine.attach(pr);
  std::vector<EdgeEvent> events;
  for (VertexId leaf = 1; leaf <= 6; ++leaf)
    events.push_back({0, leaf, 1, EdgeOp::kAdd});
  engine.ingest(split_events(std::move(events), 2, /*shuffle=*/true, 3));
  const double centre = pr->rank_of(engine.state_of(id, 0));
  const double leaf = pr->rank_of(engine.state_of(id, 1));
  EXPECT_GT(centre, 2.0);  // exact: (1-d)(1+6d)/(1-d^2) ~ 2.75
  EXPECT_LT(leaf, 1.0);
  EXPECT_NEAR(pr->rank_of(engine.state_of(id, 5)), leaf, kAtol);
}

class PagerankOracleSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(PagerankOracleSweep, MatchesStaticOracle) {
  const auto [ranks, seed] = GetParam();
  const EdgeList edges = dedupe_undirected(generate_erdos_renyi(
      {.num_vertices = 120, .num_edges = 420, .seed = seed}));
  Engine engine(EngineConfig{.num_ranks = static_cast<RankId>(ranks)});
  auto pr = std::make_shared<PageRankDelta>();
  const ProgramId id = engine.attach(pr);

  const StreamOptions opts{
      .shuffle = true, .min_weight = 1, .max_weight = 5, .seed = seed};
  const StreamSet streams = make_streams(edges, static_cast<std::size_t>(ranks), opts);
  EdgeList weighted;
  for (std::size_t s = 0; s < streams.num_streams(); ++s)
    for (const EdgeEvent& e : streams.stream(s).events())
      weighted.push_back(Edge{e.src, e.dst, e.weight});
  engine.ingest(streams);

  const CsrGraph g = undirected_csr(weighted);
  expect_ranks_match(engine, id, *pr, g, static_pagerank(g));
}

INSTANTIATE_TEST_SUITE_P(RanksSeeds, PagerankOracleSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(21u, 22u, 23u)));

TEST(PageRankDelta, WeightMutationsRescaleInPlace) {
  const EdgeList base = dedupe_undirected(generate_erdos_renyi(
      {.num_vertices = 60, .num_edges = 200, .seed = 31}));
  std::vector<EdgeEvent> events;
  for (const Edge& e : base) events.push_back({e.src, e.dst, 2, EdgeOp::kAdd});
  const std::vector<EdgeEvent> mutations = make_weight_mutations(
      fold_events(events), {.num_events = 150, .max_weight = 6, .seed = 31});

  Engine engine(EngineConfig{.num_ranks = 4});
  auto pr = std::make_shared<PageRankDelta>();
  const ProgramId id = engine.attach(pr);
  engine.ingest(split_events(events, 4, /*shuffle=*/true, 5));
  engine.ingest(split_events_keyed(mutations, 4, /*seed=*/9));

  std::vector<EdgeEvent> all = events;
  all.insert(all.end(), mutations.begin(), mutations.end());
  const CsrGraph g = undirected_csr(fold_events(all));
  expect_ranks_match(engine, id, *pr, g, static_pagerank(g));
}

TEST(PageRankDelta, DeletesRetractWithoutRepair) {
  const EdgeList base = dedupe_undirected(generate_erdos_renyi(
      {.num_vertices = 80, .num_edges = 260, .seed = 17}));
  std::vector<EdgeEvent> events;
  for (const Edge& e : base) events.push_back({e.src, e.dst, 1, EdgeOp::kAdd});
  // Delete every third pair after its add (keyed split keeps the order).
  std::vector<EdgeEvent> with_deletes;
  std::size_t i = 0;
  for (const EdgeEvent& e : events) {
    with_deletes.push_back(e);
    if (++i % 3 == 0) {
      EdgeEvent d = e;
      d.op = EdgeOp::kDelete;
      with_deletes.push_back(d);
    }
  }
  Engine engine(EngineConfig{.num_ranks = 3});
  auto pr = std::make_shared<PageRankDelta>();
  const ProgramId id = engine.attach(pr);
  engine.ingest(split_events_keyed(permute_preserving_pairs(with_deletes, 11),
                                   3, /*seed=*/13));
  // No engine.repair(): the memo-delta program absorbs deletes eagerly.
  const CsrGraph g = undirected_csr(fold_events(with_deletes));
  expect_ranks_match(engine, id, *pr, g, static_pagerank(g));
}

TEST(PageRankDelta, ServedRankViewsDecodeAndOrder) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto pr = std::make_shared<PageRankDelta>();
  const ProgramId id = engine.attach(pr);
  std::vector<EdgeEvent> events;
  for (VertexId leaf = 1; leaf <= 5; ++leaf)
    events.push_back({0, leaf, 1, EdgeOp::kAdd});
  engine.ingest(split_events(std::move(events), 2));

  serve::QueryService qs(engine, {.refresh_period_ms = 0, .top_k = 4});
  qs.serve(id, serve::ViewRole::kRank);
  EXPECT_NEAR(qs.rank_of(id, 0), pr->rank_of(engine.state_of(id, 0)), 1e-12);
  // An untouched vertex decodes to the base mass, not to garbage bits.
  EXPECT_NEAR(qs.rank_of(id, 999), pr->base_mass(), 1e-12);
  const auto top = qs.top_k_rank(id, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 0u);  // the star centre dominates
  EXPECT_GT(top[0].second, top[1].second);
  EXPECT_NEAR(top[1].second, top[2].second, kAtol);  // leaves tie
}

TEST(PageRankDeltaDeathTest, MemoDeltaProgramRejectsCoAttachment) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Engine engine(EngineConfig{.num_ranks = 1});
  engine.attach(std::make_shared<PageRankDelta>());
  EXPECT_DEATH(engine.attach_make<DynamicBfs>(0),
               "exclusive edge-memo ownership");
  Engine other(EngineConfig{.num_ranks = 1});
  other.attach_make<DynamicBfs>(0);
  EXPECT_DEATH(other.attach(std::make_shared<PageRankDelta>()),
               "exclusive edge-memo ownership");
}

TEST(PageRankDeltaDeathTest, NonMonotoneCombineIsRejectedAtAttach) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  class BadProgram : public DynamicCc {
   public:
    bool monotone() const override { return false; }
    bool can_combine() const override { return true; }
  };
  Engine engine(EngineConfig{.num_ranks = 1});
  EXPECT_DEATH(engine.attach(std::make_shared<BadProgram>()),
               "monotone program");
}

}  // namespace
}  // namespace remo::test
