// Weight-change routing: a re-add of a live pair with a different weight
// must reach programs as one on_weight_change per side — never a
// delete+add pair, never a duplicate stored edge — with the coalescing
// path and the stale-update drop guard staying out of the way.
#include <gtest/gtest.h>

#include <atomic>

#include "../support.hpp"

namespace remo::test {
namespace {

/// Counts every topology callback; shared across rank threads.
class RoutingProbe : public VertexProgram {
 public:
  std::string name() const override { return "routing-probe"; }
  StateWord identity() const override { return 0; }

  void on_add(VertexContext&, VertexId, Weight) override { ++adds_; }
  void on_reverse_add(VertexContext&, VertexId, StateWord, Weight) override {
    ++reverse_adds_;
  }
  void on_delete(VertexContext&, VertexId, Weight) override { ++deletes_; }
  void on_reverse_delete(VertexContext&, VertexId, Weight) override {
    ++deletes_;
  }
  void on_weight_change(VertexContext&, VertexId, Weight old_w,
                        Weight new_w) override {
    ++weight_changes_;
    last_old_.store(old_w, std::memory_order_relaxed);
    last_new_.store(new_w, std::memory_order_relaxed);
  }

  std::uint64_t adds() const { return adds_.load(); }
  std::uint64_t reverse_adds() const { return reverse_adds_.load(); }
  std::uint64_t deletes() const { return deletes_.load(); }
  std::uint64_t weight_changes() const { return weight_changes_.load(); }
  Weight last_old() const { return last_old_.load(std::memory_order_relaxed); }
  Weight last_new() const { return last_new_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> adds_{0}, reverse_adds_{0}, deletes_{0},
      weight_changes_{0};
  std::atomic<Weight> last_old_{0}, last_new_{0};
};

std::uint64_t stored_edges(const Engine& engine) {
  std::uint64_t total = 0;
  for (const RankMetrics& m : engine.rank_metrics()) total += m.edges_stored;
  return total;
}

TEST(WeightRouting, LiveReAddBecomesOneWeightChangePerSide) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, probe] = engine.attach_make<RoutingProbe>();
  engine.ingest(split_events({{0, 1, 3, EdgeOp::kAdd}}, 1));
  ASSERT_EQ(stored_edges(engine), 2u);  // one directed edge per side
  ASSERT_EQ(probe->weight_changes(), 0u);

  engine.ingest(split_events({{0, 1, 9, EdgeOp::kAdd}}, 1));
  // Both owners saw exactly one old -> new transition; the store did not
  // grow and, critically, nothing was decomposed into delete+add.
  EXPECT_EQ(probe->weight_changes(), 2u);
  EXPECT_EQ(probe->last_old(), 3u);
  EXPECT_EQ(probe->last_new(), 9u);
  EXPECT_EQ(probe->deletes(), 0u);
  EXPECT_EQ(probe->adds() + probe->reverse_adds(), 2u);  // the initial add only
  EXPECT_EQ(stored_edges(engine), 2u);
}

TEST(WeightRouting, SameWeightReAddIsNotAWeightChange) {
  Engine engine(EngineConfig{.num_ranks = 1});
  auto [id, probe] = engine.attach_make<RoutingProbe>();
  engine.ingest(split_events({{0, 1, 3, EdgeOp::kAdd}}, 1));
  engine.ingest(split_events({{0, 1, 3, EdgeOp::kAdd}}, 1));
  EXPECT_EQ(probe->weight_changes(), 0u);
  EXPECT_EQ(stored_edges(engine), 2u);
}

TEST(WeightRouting, NoProgramAttachedStillSyncsBothStores) {
  // The bare-topology kWeightChange visitor must keep the far store's
  // weight in step even with zero programs attached.
  Engine engine(EngineConfig{.num_ranks = 2});
  engine.ingest(split_events({{0, 1, 3, EdgeOp::kAdd}}, 1));
  engine.ingest(split_events({{0, 1, 9, EdgeOp::kAdd}}, 1));
  EXPECT_EQ(stored_edges(engine), 2u);
  // A program attached afterwards relaxes across the post-change weight.
  auto [id, sssp] = engine.attach_make<WeightedSssp>(0);
  engine.inject_init(id, 0);
  engine.await_quiescence();
  EXPECT_EQ(engine.state_of(id, 1), 10u);  // 1 + 9, not 1 + 3
}

TEST(WeightRouting, CoalescedSchedulesRouteMutationsIdentically) {
  // Weight mutations under a coalescing, multi-rank, big-batch config: the
  // distances must land exactly where Dijkstra says regardless of merges.
  const std::vector<EdgeEvent> events = {
      {0, 1, 4, EdgeOp::kAdd}, {1, 2, 4, EdgeOp::kAdd}, {2, 3, 4, EdgeOp::kAdd},
      {0, 3, 9, EdgeOp::kAdd}, {1, 2, 1, EdgeOp::kAdd},  // decrease
      {0, 1, 8, EdgeOp::kAdd},                           // increase
  };
  for (const std::uint32_t ranks : {1u, 2u, 4u}) {
    Engine engine(EngineConfig{.num_ranks = static_cast<RankId>(ranks),
                               .batch_size = 512,
                               .coalesce = true});
    auto [id, sssp] = engine.attach_make<WeightedSssp>(0);
    engine.inject_init(id, 0);
    engine.ingest(split_events_keyed(events, ranks, /*seed=*/3));
    engine.repair(id);
    // Final weights: 0-1=8, 1-2=1, 2-3=4, 0-3=9.
    EXPECT_EQ(engine.state_of(id, 0), 1u) << "ranks=" << ranks;
    EXPECT_EQ(engine.state_of(id, 1), 9u) << "ranks=" << ranks;
    EXPECT_EQ(engine.state_of(id, 2), 10u) << "ranks=" << ranks;
    EXPECT_EQ(engine.state_of(id, 3), 10u) << "ranks=" << ranks;
  }
}

TEST(WeightRouting, MutationRacingDeleteNeverResurrectsTheEdge) {
  // Per-pair FIFO: mutate-then-delete on one stream must leave the edge
  // gone on both sides, with the mutation either applied before the
  // delete or dropped — never re-materialised after it.
  Engine engine(EngineConfig{.num_ranks = 4});
  auto [id, sssp] = engine.attach_make<WeightedSssp>(0);
  engine.inject_init(id, 0);
  const std::vector<EdgeEvent> events = {
      {0, 1, 2, EdgeOp::kAdd},    {1, 2, 2, EdgeOp::kAdd},
      {1, 2, 6, EdgeOp::kAdd},    // mutation...
      {1, 2, 2, EdgeOp::kDelete},  // ...then the pair dies
  };
  engine.ingest(split_events_keyed(events, 4, /*seed=*/5));
  engine.repair(id);
  EXPECT_EQ(stored_edges(engine), 2u);  // only 0-1 survives
  EXPECT_EQ(engine.state_of(id, 1), 3u);
  EXPECT_EQ(engine.state_of(id, 2), kInfiniteState);
}

}  // namespace
}  // namespace remo::test
