// WeightedSssp vs Dijkstra: true weight decreases (absorbed monotonically)
// and increases (repaired via the memo-path anchor), mixed with deletes.
#include <gtest/gtest.h>

#include <tuple>

#include "../support.hpp"

namespace remo::test {
namespace {

/// Fold a weighted event list per unordered pair (last add wins).
EdgeList fold_events(const std::vector<EdgeEvent>& events) {
  RobinHoodMap<std::uint64_t, Edge> live;
  for (const EdgeEvent& e : events) {
    const std::uint64_t key = event_pair_key(e);
    if (e.op == EdgeOp::kAdd)
      live.get_or_insert(key) = Edge{e.src, e.dst, e.weight};
    else
      live.erase(key);
  }
  EdgeList out;
  live.for_each([&](const std::uint64_t&, Edge& e) { out.push_back(e); });
  return out;
}

TEST(WeightedSssp, WeightIncreaseRepairsTheStaleSubtree) {
  // 0 -1- 1 -1- 2, alternative 0 -5- 3 -5- 2. dist(2) = 3 via the top path.
  const std::vector<EdgeEvent> base = {{0, 1, 1, EdgeOp::kAdd},
                                       {1, 2, 1, EdgeOp::kAdd},
                                       {0, 3, 5, EdgeOp::kAdd},
                                       {3, 2, 5, EdgeOp::kAdd}};
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, sssp] = engine.attach_make<WeightedSssp>(0);
  engine.inject_init(id, 0);
  engine.ingest(split_events(base, 2));
  ASSERT_EQ(engine.state_of(id, 2), 3u);

  // Grow the cheap edge 1-2 to 10: dist(2) must fall back to the 0-3-2
  // detour (1 + 5 + 5 = 11), and dist(1) must stay untouched.
  engine.ingest(split_events({{1, 2, 10, EdgeOp::kAdd}}, 1));
  engine.repair(id);
  EXPECT_EQ(engine.state_of(id, 2), 11u);
  EXPECT_EQ(engine.state_of(id, 1), 2u);
}

TEST(WeightedSssp, WeightDecreaseRelaxesWithoutRepair) {
  const std::vector<EdgeEvent> base = {{0, 1, 1, EdgeOp::kAdd},
                                       {1, 2, 1, EdgeOp::kAdd},
                                       {0, 3, 5, EdgeOp::kAdd},
                                       {3, 2, 5, EdgeOp::kAdd}};
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, sssp] = engine.attach_make<WeightedSssp>(0);
  engine.inject_init(id, 0);
  engine.ingest(split_events(base, 2));

  // 0-3 drops to 1: the decrease is a fresh relaxation source, no repair.
  engine.ingest(split_events({{0, 3, 1, EdgeOp::kAdd}}, 1));
  EXPECT_EQ(engine.state_of(id, 3), 2u);
  EXPECT_EQ(engine.state_of(id, 2), 3u);  // still via 0-1-2
}

class WssspMutationSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(WssspMutationSweep, MatchesDijkstraAfterMutations) {
  const auto [ranks, seed] = GetParam();
  const EdgeList base = dedupe_undirected(generate_erdos_renyi(
      {.num_vertices = 150, .num_edges = 550, .seed = seed}));
  std::vector<EdgeEvent> events;
  for (const Edge& e : base) events.push_back({e.src, e.dst, 4, EdgeOp::kAdd});
  const std::vector<EdgeEvent> mutations = make_weight_mutations(
      fold_events(events), {.num_events = 300, .max_weight = 8, .seed = seed});

  std::vector<EdgeEvent> all = events;
  all.insert(all.end(), mutations.begin(), mutations.end());
  const CsrGraph g = undirected_csr(fold_events(all));
  const VertexId source = vertex_in_largest_cc(g);

  Engine engine(EngineConfig{.num_ranks = static_cast<RankId>(ranks)});
  auto [id, sssp] = engine.attach_make<WeightedSssp>(source);
  engine.inject_init(id, source);
  engine.ingest(split_events(events, static_cast<std::size_t>(ranks),
                             /*shuffle=*/true, seed));
  engine.ingest(split_events_keyed(mutations, static_cast<std::size_t>(ranks),
                                   seed ^ 0xabcd));
  engine.repair(id);  // weight increases queue dirty anchors

  const auto oracle = static_sssp_dijkstra(g, g.dense_of(source));
  expect_matches_oracle(engine, id, g, oracle);
}

INSTANTIATE_TEST_SUITE_P(RanksSeeds, WssspMutationSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(41u, 42u, 43u)));

TEST(WeightedSssp, MixedDeletesAndMutationsConverge) {
  const std::uint64_t seed = 77;
  const EdgeList base = dedupe_undirected(generate_erdos_renyi(
      {.num_vertices = 100, .num_edges = 380, .seed = seed}));
  std::vector<EdgeEvent> events;
  for (const Edge& e : base) events.push_back({e.src, e.dst, 3, EdgeOp::kAdd});
  // Interleave: delete every 4th pair, mutate every 3rd surviving one.
  std::vector<EdgeEvent> tail;
  std::size_t i = 0;
  for (const EdgeEvent& e : events) {
    ++i;
    if (i % 4 == 0) {
      EdgeEvent d = e;
      d.op = EdgeOp::kDelete;
      tail.push_back(d);
    } else if (i % 3 == 0) {
      EdgeEvent m = e;
      m.weight = (i % 2 == 0) ? 1 : 7;  // decreases and increases
      tail.push_back(m);
    }
  }
  std::vector<EdgeEvent> all = events;
  all.insert(all.end(), tail.begin(), tail.end());
  const CsrGraph g = undirected_csr(fold_events(all));
  const VertexId source = vertex_in_largest_cc(g);

  Engine engine(EngineConfig{.num_ranks = 4});
  auto [id, sssp] = engine.attach_make<WeightedSssp>(source);
  engine.inject_init(id, source);
  engine.ingest(split_events_keyed(permute_preserving_pairs(all, seed), 4, seed));
  engine.repair(id);

  const auto oracle = static_sssp_dijkstra(g, g.dense_of(source));
  expect_matches_oracle(engine, id, g, oracle);
}

}  // namespace
}  // namespace remo::test
