// Bench-regression comparison (obs/bench_compare.hpp): run matching,
// percent deltas, gate direction, config-fingerprint refusal, --force.
#include <gtest/gtest.h>

#include <string>

#include "common/json.hpp"
#include "obs/bench_compare.hpp"

namespace remo::obs::test {
namespace {

Json make_report(double eps, double seconds, const std::string& sha = "abc",
                 int batch_size = 128) {
  Json doc = Json::object();
  doc["schema"] = "remo-bench-1";
  doc["name"] = "fig3";
  doc["title"] = "saturation";
  doc["scale_shift"] = 0;
  doc["repeats"] = 3;
  Json config = Json::object();
  config["batch_size"] = static_cast<std::uint64_t>(batch_size);
  Json build = Json::object();
  build["git_sha"] = sha;
  build["compiler"] = "GNU 12.2.0";
  config["build"] = build;
  doc["config"] = config;
  Json runs = Json::array();
  Json row = Json::object();
  row["dataset"] = "rmat-16";
  row["ranks"] = 4;
  row["events"] = 1000000;
  row["seconds"] = seconds;
  row["events_per_second"] = eps;
  Json latency = Json::object();
  latency["p99_ns"] = 42000;
  row["latency"] = latency;
  runs.push_back(row);
  doc["runs"] = runs;
  Json ru = Json::object();
  ru["max_rss_kb"] = 50000;
  doc["rusage"] = ru;
  return doc;
}

TEST(BenchCompare, IdenticalReportsPass) {
  const Json a = make_report(1e6, 1.0);
  const BenchCompareResult r = bench_compare(a, a);
  EXPECT_FALSE(r.config_mismatch);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.has_regression());
  ASSERT_FALSE(r.deltas.empty());
  for (const auto& d : r.deltas) EXPECT_EQ(d.pct, 0.0);
}

TEST(BenchCompare, ThroughputDropBeyondGateFails) {
  // 10% slower than baseline, default gate 3% -> regression.
  const Json a = make_report(1e6, 1.0, "aaa");
  const Json b = make_report(0.9e6, 1.11, "bbb");  // SHA differs: still compared
  const BenchCompareResult r = bench_compare(a, b);
  EXPECT_FALSE(r.config_mismatch) << "git_sha must be masked";
  EXPECT_TRUE(r.has_regression());
  EXPECT_FALSE(r.ok());
  bool found = false;
  for (const auto& d : r.deltas)
    if (d.metric == "events_per_second") {
      found = true;
      EXPECT_TRUE(d.gated);
      EXPECT_TRUE(d.regression);
      EXPECT_TRUE(d.higher_better);
      EXPECT_NEAR(d.pct, -10.0, 0.01);
    }
  EXPECT_TRUE(found);
}

TEST(BenchCompare, ThroughputGainPasses) {
  const BenchCompareResult r =
      bench_compare(make_report(1e6, 1.0), make_report(1.2e6, 0.83));
  EXPECT_TRUE(r.ok());  // higher-better metric went up: not a regression
}

TEST(BenchCompare, SmallDropWithinGatePasses) {
  const BenchCompareResult r =
      bench_compare(make_report(1e6, 1.0), make_report(0.98e6, 1.02));
  EXPECT_TRUE(r.ok());  // -2% within the 3% gate
}

TEST(BenchCompare, LowerBetterRegressionDetected) {
  BenchCompareOptions opts;
  opts.gates["p99_ns"] = 5.0;
  // Rebuild with a worse p99 (Json has no array mutation; rebuild the doc).
  Json base = make_report(1e6, 1.0);
  Json doc = Json::object();
  for (const auto& [k, v] : base.members())
    if (k != "runs") doc[k] = v;
  Json row = Json::object();
  for (const auto& [k, v] : base.find("runs")->at(0).members())
    if (k != "latency") row[k] = v;
  Json latency = Json::object();
  latency["p99_ns"] = 63000;  // +50%
  row["latency"] = latency;
  Json runs = Json::array();
  runs.push_back(row);
  doc["runs"] = runs;

  const BenchCompareResult r = bench_compare(base, doc, opts);
  EXPECT_TRUE(r.has_regression());
  bool found = false;
  for (const auto& d : r.deltas)
    if (d.metric == "latency.p99_ns") {
      found = true;
      EXPECT_TRUE(d.gated);
      EXPECT_FALSE(d.higher_better);
      EXPECT_TRUE(d.regression);
    }
  EXPECT_TRUE(found);
}

TEST(BenchCompare, ConfigMismatchRefusedUnlessForced) {
  const Json a = make_report(1e6, 1.0, "abc", /*batch_size=*/128);
  const Json b = make_report(1e6, 1.0, "abc", /*batch_size=*/256);
  const BenchCompareResult refused = bench_compare(a, b);
  EXPECT_TRUE(refused.config_mismatch);
  EXPECT_FALSE(refused.ok());
  EXPECT_TRUE(refused.deltas.empty()) << "refusal computes no deltas";
  ASSERT_FALSE(refused.config_diffs.empty());
  EXPECT_EQ(refused.config_diffs[0], "config.batch_size");

  BenchCompareOptions opts;
  opts.force = true;
  const BenchCompareResult forced = bench_compare(a, b, opts);
  EXPECT_TRUE(forced.config_mismatch);
  EXPECT_TRUE(forced.forced);
  EXPECT_FALSE(forced.deltas.empty());
  EXPECT_TRUE(forced.ok()) << "forced + no regression = pass";
}

TEST(BenchCompare, DifferentBenchNameIsAMismatch) {
  Json b = make_report(1e6, 1.0);
  b["name"] = "fig4";
  const BenchCompareResult r = bench_compare(make_report(1e6, 1.0), b);
  EXPECT_TRUE(r.config_mismatch);
}

TEST(BenchCompare, UnmatchedRunsReported) {
  Json b = make_report(1e6, 1.0);
  Json row = Json::object();
  row["dataset"] = "rmat-20";
  row["ranks"] = 8;
  row["events_per_second"] = 2e6;
  b["runs"].push_back(row);
  const BenchCompareResult r = bench_compare(make_report(1e6, 1.0), b);
  ASSERT_EQ(r.only_in_b.size(), 1u);
  EXPECT_NE(r.only_in_b[0].find("rmat-20"), std::string::npos);
  EXPECT_TRUE(r.only_in_a.empty());
}

TEST(BenchCompare, FormatMentionsVerdict) {
  const std::string pass =
      format_bench_compare(bench_compare(make_report(1e6, 1.0),
                                         make_report(1e6, 1.0)));
  EXPECT_NE(pass.find("PASS"), std::string::npos);
  const std::string fail =
      format_bench_compare(bench_compare(make_report(1e6, 1.0),
                                         make_report(0.5e6, 2.0)));
  EXPECT_NE(fail.find("FAIL"), std::string::npos);
  EXPECT_NE(fail.find("REGRESSION"), std::string::npos);
}

TEST(BenchCompare, RefusalMessageNamesForce) {
  const Json a = make_report(1e6, 1.0, "abc", 128);
  const Json b = make_report(1e6, 1.0, "abc", 256);
  const std::string text = format_bench_compare(bench_compare(a, b));
  EXPECT_NE(text.find("--force"), std::string::npos);
  EXPECT_NE(text.find("config.batch_size"), std::string::npos);
}

}  // namespace
}  // namespace remo::obs::test
